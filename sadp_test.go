package sadp

import (
	"bytes"
	"testing"
)

// TestFacadeEndToEnd drives the public API exactly as README's quickstart
// does and asserts the paper's headline guarantees.
func TestFacadeEndToEnd(t *testing.T) {
	nl := Generate(Spec{
		Name: "facade", Nets: 120, Tracks: 48, Layers: 3,
		Seed: 4, PinCandidates: 2, AvgHPWL: 6, Blockages: 2,
	})
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}

	// Netlist round-trip through the text format.
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	nl2, err := ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl2.Nets) != len(nl.Nets) {
		t.Fatalf("round trip lost nets: %d vs %d", len(nl2.Nets), len(nl.Nets))
	}

	res := Route(nl2, Node10nm(), Defaults())
	if res.Routed == 0 {
		t.Fatal("nothing routed")
	}
	layers, tot := Evaluate(res)
	if len(layers) != nl.Layers {
		t.Fatalf("want %d layer results", nl.Layers)
	}
	if tot.Conflicts != 0 || tot.HardOverlays != 0 || tot.Violations != 0 {
		t.Fatalf("guarantees violated: conf=%d hard=%d viol=%d",
			tot.Conflicts, tot.HardOverlays, tot.Violations)
	}
}

// TestSpecFamiliesExposed sanity-checks the re-exported benchmark
// families and the per-layer oracle entry points.
func TestSpecFamiliesExposed(t *testing.T) {
	if got := len(PaperSpecs(true)); got != 5 {
		t.Fatalf("PaperSpecs(true): %d specs, want 5", got)
	}
	huge := HugeSpecs()
	if len(huge) != 3 || huge[0].Name != "Huge1" {
		t.Fatalf("HugeSpecs: %+v", huge)
	}
	// The oracle facades answer on a routed layer exactly like the
	// internal engines they wrap.
	nl := Generate(Spec{Name: "f", Nets: 30, Tracks: 32, Layers: 2, Seed: 9, PinCandidates: 1, AvgHPWL: 5})
	res := Route(nl, Node10nm(), Defaults())
	ly := res.Layouts()[0]
	if r := DecomposeCut(ly); r.HardOverlays != 0 {
		t.Fatalf("DecomposeCut on a routed layer: %d hard overlays", r.HardOverlays)
	}
	if r := DecomposeTrim(ly); r == nil {
		t.Fatal("DecomposeTrim returned nil")
	}
}

// TestPaperRulesExposed sanity-checks the re-exported rule set.
func TestPaperRulesExposed(t *testing.T) {
	ds := Node10nm()
	if ds.WLine != 20 || ds.DCore != 30 || ds.Pitch() != 40 {
		t.Fatalf("10 nm rules wrong: %+v", ds)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	if opt.Gamma2 != 3 || opt.MaxRipup != 3 {
		t.Fatalf("paper defaults wrong: %+v", opt)
	}
}
