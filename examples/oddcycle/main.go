// Oddcycle demonstrates the paper's core flexibility argument (Fig. 2):
// a three-pattern odd coloring cycle is undecomposable in the SADP trim
// process, but the cut process decomposes it by merging two patterns and
// separating them with a cut pattern — at the price of side overlays no
// longer than one unit.
package main

import (
	"fmt"

	"sadproute"
)

// wire builds a wire rectangle in nm from track coordinates.
func wire(ds sadp.Rules, horiz bool, fixed, c0, c1 int) sadp.Rect {
	p, w := ds.Pitch(), ds.WLine
	if horiz {
		return sadp.Rect{X0: c0 * p, Y0: fixed * p, X1: c1*p + w, Y1: fixed*p + w}
	}
	return sadp.Rect{X0: fixed * p, Y0: c0 * p, X1: fixed*p + w, Y1: c1*p + w}
}

func main() {
	ds := sadp.Node10nm()

	// Three nets: A and B side by side (different masks required), C runs
	// up beside B (different masks required again) and hooks back to touch
	// A with a single-track overlap — closing an odd cycle of "must
	// differ" adjacencies: A≠B, B≠C, C≠A is not two-colorable.
	a := []sadp.Rect{wire(ds, false, 2, 0, 8)}
	b := []sadp.Rect{wire(ds, false, 3, 0, 8)}
	c := []sadp.Rect{
		wire(ds, false, 4, 0, 10),
		wire(ds, true, 10, 1, 4),
		wire(ds, false, 1, 8, 10),
	}
	die := sadp.Rect{X0: -200, Y0: -200, X1: 800, Y1: 800}
	build := func(ca, cb, cc sadp.Color) sadp.Layout {
		return sadp.Layout{Rules: ds, Die: die, Pats: []sadp.Pattern{
			{Net: 0, Color: ca, Rects: a},
			{Net: 1, Color: cb, Rects: b},
			{Net: 2, Color: cc, Rects: c},
		}}
	}

	fmt.Println("== trim process: every 2-coloring of the odd cycle fails ==")
	bestTrim := -1
	for _, asg := range allAssignments() {
		res := sadp.DecomposeTrim(build(asg[0], asg[1], asg[2]))
		bad := len(res.Conflicts) + res.HardOverlays
		if bestTrim < 0 || bad < bestTrim {
			bestTrim = bad
		}
	}
	fmt.Printf("best trim assignment still has %d conflicts/hard overlays\n\n", bestTrim)

	fmt.Println("== cut process: merge + cut decomposes the cycle ==")
	best, bestBad, bestSO := [3]sadp.Color{}, 1<<30, 0.0
	for _, asg := range allAssignments() {
		res := sadp.DecomposeCut(build(asg[0], asg[1], asg[2]))
		bad := len(res.Conflicts) + res.HardOverlays + len(res.Violations)
		if bad < bestBad || (bad == bestBad && res.SideOverlayUnits < bestSO) {
			best, bestBad, bestSO = asg, bad, res.SideOverlayUnits
		}
	}
	fmt.Printf("assignment A=%v B=%v C=%v: %d conflicts/hard overlays, %.1f overlay units\n",
		best[0], best[1], best[2], bestBad, bestSO)
	if bestBad == 0 {
		fmt.Println("odd cycle decomposed by the merge technique ✓ (paper Fig. 2(b))")
	}
}

func allAssignments() [][3]sadp.Color {
	cs := []sadp.Color{sadp.CoreMask, sadp.SecondMask}
	var out [][3]sadp.Color
	for _, a := range cs {
		for _, b := range cs {
			for _, c := range cs {
				out = append(out, [3]sadp.Color{a, b, c})
			}
		}
	}
	return out
}
