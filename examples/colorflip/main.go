// Colorflip demonstrates the value of global color optimization (the
// paper's Section III-C): greedy sequential mask assignment versus the
// globally optimal assignment on a small comb of routed wires.
package main

import (
	"fmt"

	"sadproute"
)

func main() {
	ds := sadp.Node10nm()
	mk := func(horiz bool, fixed, c0, c1 int) sadp.Rect {
		if horiz {
			return sadp.Rect{X0: c0, Y0: fixed, X1: c1 + 1, Y1: fixed + 1}
		}
		return sadp.Rect{X0: fixed, Y0: c0, X1: fixed + 1, Y1: c1 + 1}
	}
	wires := [][]sadp.Rect{
		{mk(true, 0, 0, 9)},
		{mk(true, 1, 0, 9)},
		{mk(true, 2, 0, 9)},
		{mk(true, 4, 0, 9)},
		{mk(true, 6, 0, 9)},
		{mk(false, 11, 0, 6)},
	}
	toNM := func(r sadp.Rect) sadp.Rect {
		p, w := ds.Pitch(), ds.WLine
		return sadp.Rect{X0: r.X0 * p, Y0: r.Y0 * p, X1: (r.X1-1)*p + w, Y1: (r.Y1-1)*p + w}
	}
	build := func(colors []sadp.Color) sadp.Layout {
		ly := sadp.Layout{Rules: ds, Die: sadp.Rect{X0: -200, Y0: -200, X1: 800, Y1: 800}}
		for i, rects := range wires {
			nm := make([]sadp.Rect, len(rects))
			for k, r := range rects {
				nm[k] = toNM(r)
			}
			ly.Pats = append(ly.Pats, sadp.Pattern{Net: i, Color: colors[i], Rects: nm})
		}
		return ly
	}
	score := func(res *sadp.DecompResult) int {
		return res.SideOverlayNM + 100000*(res.HardOverlays+len(res.Conflicts))
	}

	// Greedy sequential: each wire picks the locally cheapest mask given
	// earlier choices (later wires provisionally core) — the fixed-color
	// policy of the prior works.
	greedy := make([]sadp.Color, len(wires))
	for i := range wires {
		for j := range greedy {
			if j > i {
				greedy[j] = sadp.CoreMask
			}
		}
		best, bestCost := sadp.CoreMask, 1<<30
		for _, c := range []sadp.Color{sadp.CoreMask, sadp.SecondMask} {
			greedy[i] = c
			if cost := score(sadp.DecomposeCut(build(greedy))); cost < bestCost {
				best, bestCost = c, cost
			}
		}
		greedy[i] = best
	}
	gres := sadp.DecomposeCut(build(greedy))

	// Global optimum by brute force (the paper's flipping DP finds this on
	// trees in linear time; the instance is small enough to enumerate).
	n := len(wires)
	bestColors := make([]sadp.Color, n)
	bestCost := 1 << 30
	var bestRes *sadp.DecompResult
	for mask := 0; mask < 1<<n; mask++ {
		cols := make([]sadp.Color, n)
		for i := 0; i < n; i++ {
			cols[i] = sadp.CoreMask
			if mask&(1<<i) != 0 {
				cols[i] = sadp.SecondMask
			}
		}
		res := sadp.DecomposeCut(build(cols))
		if cost := score(res); cost < bestCost {
			bestCost = cost
			copy(bestColors, cols)
			bestRes = res
		}
	}

	fmt.Printf("greedy fixed coloring : %v -> %.1f overlay units, %d hard, %d conflicts\n",
		greedy, gres.SideOverlayUnits, gres.HardOverlays, len(gres.Conflicts))
	fmt.Printf("optimal (flip-style)  : %v -> %.1f overlay units, %d hard, %d conflicts\n",
		bestColors, bestRes.SideOverlayUnits, bestRes.HardOverlays, len(bestRes.Conflicts))
}
