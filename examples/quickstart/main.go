// Quickstart: generate a small benchmark, route it with the paper's
// overlay-aware SADP router, and verify the headline guarantees with the
// decomposition oracle.
package main

import (
	"fmt"
	"log"

	"sadproute"
)

func main() {
	// A 64x64-track die (2.56 um at the 10 nm node), three routing layers,
	// 150 two-pin nets.
	nl := sadp.Generate(sadp.Spec{
		Name:          "quickstart",
		Nets:          150,
		Tracks:        64,
		Layers:        3,
		Seed:          42,
		PinCandidates: 1,
		AvgHPWL:       7,
		Blockages:     2,
	})
	if err := nl.Validate(); err != nil {
		log.Fatal(err)
	}

	res := sadp.Route(nl, sadp.Node10nm(), sadp.Defaults())
	_, tot := sadp.Evaluate(res)

	fmt.Printf("routed       : %d/%d nets (%.1f%%)\n", res.Routed, res.Routed+res.Failed, res.Routability())
	fmt.Printf("wirelength   : %d tracks, %d vias\n", res.WirelengthCells, res.Vias)
	fmt.Printf("side overlay : %.1f units (%.0f nm)\n", tot.SideOverlayUnits, float64(tot.SideOverlayNM))
	fmt.Printf("hard overlays: %d (must be 0)\n", tot.HardOverlays)
	fmt.Printf("cut conflicts: %d (must be 0)\n", tot.Conflicts)
	fmt.Printf("CPU          : %v\n", res.CPU)

	if tot.Conflicts != 0 || tot.HardOverlays != 0 {
		log.Fatal("decomposability guarantee violated")
	}
	fmt.Println("layout is SADP-cut decomposable ✓")
}
