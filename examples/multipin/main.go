// Multipin demonstrates the paper's Table IV setting: each pin offers
// several candidate locations and the router picks the pair that routes
// and decomposes best. Compare routability and overlay with the fixed-pin
// version of the same instance.
package main

import (
	"fmt"

	"sadproute"
)

func main() {
	ds := sadp.Node10nm()
	for _, cands := range []int{1, 3} {
		nl := sadp.Generate(sadp.Spec{
			Name:          fmt.Sprintf("multipin-%d", cands),
			Nets:          180,
			Tracks:        64,
			Layers:        3,
			Seed:          9,
			PinCandidates: cands,
			AvgHPWL:       7,
			Blockages:     3,
		})
		res := sadp.Route(nl, ds, sadp.Defaults())
		_, tot := sadp.Evaluate(res)
		fmt.Printf("%d candidate(s)/pin: routability %.1f%%, overlay %.1f units, conflicts %d, CPU %v\n",
			cands, res.Routability(), tot.SideOverlayUnits, tot.Conflicts, res.CPU)
	}
	fmt.Println("\nmultiple pin candidate locations give the router extra freedom —")
	fmt.Println("the paper's Test6-Test10 benchmarks (Table IV) use three per pin.")
}
