package sadp

import (
	"fmt"
	"reflect"
	"testing"

	"sadproute/internal/grid"
	"sadproute/internal/obs"
)

// FuzzScheduleCommitOrder drives the parallel net scheduler with fuzzed
// benchmark shapes and worker counts and checks the tentpole's contract
// from the outside: the committed result equals the serial run exactly
// (commit order is the canonical order, so every path, failure, counter
// and color matches), and no two nets' committed paths ever share a grid
// cell. The decoding is total — every byte string yields a routable
// instance small enough to route twice per input.
func FuzzScheduleCommitOrder(f *testing.F) {
	f.Add([]byte{40, 18, 7, 1, 5, 2, 4})
	f.Add([]byte{12, 12, 3, 2, 3, 0, 2})
	f.Add([]byte{90, 28, 11, 3, 6, 3, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		sp := Spec{
			Name:          "fuzz",
			Nets:          1 + next()%30,
			Tracks:        12 + next()%17,
			Layers:        2 + next()%2,
			Seed:          int64(next()),
			PinCandidates: 1 + next()%3,
			AvgHPWL:       3 + next()%5,
			Blockages:     next() % 4,
		}
		workers := 2 + next()%7
		nl := Generate(sp)
		ds := Node10nm()

		serial := Route(nl, ds, Defaults())

		opt := Defaults()
		opt.NetWorkers = workers
		rec := NewRecorder()
		opt.Obs = rec
		par := Route(nl, ds, opt)

		if par.Routed != serial.Routed || par.Failed != serial.Failed ||
			par.WirelengthCells != serial.WirelengthCells || par.Vias != serial.Vias {
			t.Fatalf("workers=%d totals diverge: serial routed=%d failed=%d wl=%d vias=%d, parallel routed=%d failed=%d wl=%d vias=%d",
				workers, serial.Routed, serial.Failed, serial.WirelengthCells, serial.Vias,
				par.Routed, par.Failed, par.WirelengthCells, par.Vias)
		}
		if !reflect.DeepEqual(par.Paths, serial.Paths) {
			t.Fatalf("workers=%d paths diverge from the serial commit order", workers)
		}
		if !reflect.DeepEqual(par.Colors, serial.Colors) {
			t.Fatalf("workers=%d colors diverge from the serial run", workers)
		}

		// No committed path may overlap a previously committed one: cells
		// are exclusive per net (a net may legitimately revisit its own
		// cells around via stacks).
		owner := make(map[grid.Cell]int)
		for id, path := range par.Paths {
			for _, c := range path {
				if prev, taken := owner[c]; taken && prev != id {
					t.Fatalf("nets %d and %d both committed cell %+v", prev, id, c)
				}
				owner[c] = id
			}
		}

		snap := rec.Snapshot()
		hits := snap.Counter(obs.CtrSchedSpecHits)
		retries := snap.Counter(obs.CtrSchedSpecRetries)
		searches := snap.Counter(obs.CtrSchedSpecSearches)
		if hits+retries > searches {
			t.Fatalf("sched counters inconsistent: hits=%d retries=%d searches=%d (%s)",
				hits, retries, searches, fmt.Sprint(sp))
		}
	})
}
