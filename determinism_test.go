package sadp

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRouteDeterminism guards the ROADMAP's caching/parallelism work: the
// generator must be a pure function of Spec.Seed and the router a pure
// function of its input — two in-process runs produce byte-identical
// netlists and byte-identical routing results.
func TestRouteDeterminism(t *testing.T) {
	sp := Spec{
		Name: "det", Nets: 120, Tracks: 48, Layers: 3, Seed: 77,
		PinCandidates: 2, AvgHPWL: 6, Blockages: 2,
	}
	snapshot := func() (netlistBytes []byte, resultDump string) {
		nl := Generate(sp)
		var buf bytes.Buffer
		if err := WriteNetlist(&buf, nl); err != nil {
			t.Fatal(err)
		}
		res := Route(nl, Node10nm(), Defaults())
		var b bytes.Buffer
		// Everything but CPU time; fmt prints map keys in sorted order, so
		// the dump is canonical.
		fmt.Fprintf(&b, "routed=%d failed=%d wl=%d vias=%d ripups=%d flips=%d\n",
			res.Routed, res.Failed, res.WirelengthCells, res.Vias, res.Ripups, res.Flips)
		fmt.Fprintf(&b, "paths=%v\n", res.Paths)
		fmt.Fprintf(&b, "colors=%v\n", res.Colors)
		layers, tot := Evaluate(res)
		fmt.Fprintf(&b, "totals=%+v\n", tot)
		for i, lr := range layers {
			fmt.Fprintf(&b, "layer%d: so=%d tip=%d hard=%d conf=%d\n",
				i, lr.SideOverlayNM, lr.TipOverlayNM, lr.HardOverlays, len(lr.Conflicts))
		}
		return buf.Bytes(), b.String()
	}

	nl1, run1 := snapshot()
	nl2, run2 := snapshot()
	if !bytes.Equal(nl1, nl2) {
		t.Fatal("bench.Generate is not byte-identical across runs with the same seed")
	}
	if run1 != run2 {
		t.Fatalf("router.Route is not deterministic across runs:\n--- run1\n%s\n--- run2\n%s", run1, run2)
	}
}
