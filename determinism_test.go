package sadp

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/obs"
)

// TestRouteDeterminism guards the ROADMAP's caching/parallelism work: the
// generator must be a pure function of Spec.Seed and the router a pure
// function of its input — two in-process runs produce byte-identical
// netlists, byte-identical routing results, and byte-identical JSONL
// traces (events carry a monotonic sequence number, never wall-clock).
func TestRouteDeterminism(t *testing.T) {
	sp := Spec{
		Name: "det", Nets: 120, Tracks: 48, Layers: 3, Seed: 77,
		PinCandidates: 2, AvgHPWL: 6, Blockages: 2,
	}
	snapshot := func() (netlistBytes []byte, resultDump, trace string) {
		nl := Generate(sp)
		var buf bytes.Buffer
		if err := WriteNetlist(&buf, nl); err != nil {
			t.Fatal(err)
		}
		opt := Defaults()
		rec := NewRecorder()
		var tr bytes.Buffer
		rec.SetTrace(&tr)
		opt.Obs = rec
		res := Route(nl, Node10nm(), opt)
		if err := rec.TraceErr(); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		// Everything but CPU/stage times; fmt prints map keys in sorted
		// order and CountersString excludes durations, so the dump is
		// canonical.
		fmt.Fprintf(&b, "routed=%d failed=%d wl=%d vias=%d\n",
			res.Routed, res.Failed, res.WirelengthCells, res.Vias)
		snap := rec.Snapshot()
		b.WriteString(snap.CountersString())
		// Per-net attribution: NetStats must come back sorted by canonical
		// net id, and its rendering joins the byte-identity contract.
		stats := rec.NetStats()
		for i := 1; i < len(stats); i++ {
			if stats[i-1].Net >= stats[i].Net {
				t.Fatalf("NetStats out of canonical order: net %d before net %d", stats[i-1].Net, stats[i].Net)
			}
		}
		b.WriteString(obs.NetStatsString(stats))
		fmt.Fprintf(&b, "paths=%v\n", res.Paths)
		fmt.Fprintf(&b, "colors=%v\n", res.Colors)
		layers, tot := Evaluate(res)
		fmt.Fprintf(&b, "totals=%+v\n", tot)
		for i, lr := range layers {
			fmt.Fprintf(&b, "layer%d: so=%d tip=%d hard=%d conf=%d\n",
				i, lr.SideOverlayNM, lr.TipOverlayNM, lr.HardOverlays, len(lr.Conflicts))
		}
		return buf.Bytes(), b.String(), tr.String()
	}

	nl1, run1, tr1 := snapshot()
	nl2, run2, tr2 := snapshot()
	if !bytes.Equal(nl1, nl2) {
		t.Fatal("bench.Generate is not byte-identical across runs with the same seed")
	}
	if run1 != run2 {
		t.Fatalf("router.Route is not deterministic across runs:\n--- run1\n%s\n--- run2\n%s", run1, run2)
	}
	if tr1 == "" {
		t.Fatal("trace is empty: the router emitted no events")
	}
	if tr1 != tr2 {
		i := 0
		for i < len(tr1) && i < len(tr2) && tr1[i] == tr2[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("JSONL trace is not byte-identical across runs; first divergence at byte %d:\n--- run1\n...%s\n--- run2\n...%s",
			i, tr1[lo:min(i+120, len(tr1))], tr2[lo:min(i+120, len(tr2))])
	}
	// Sanity: every line is a JSON object with a seq field.
	for ln, line := range strings.Split(strings.TrimSuffix(tr1, "\n"), "\n") {
		if !strings.HasPrefix(line, `{"seq":`) || !strings.HasSuffix(line, "}") {
			t.Fatalf("trace line %d is malformed: %q", ln, line)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRouteDeterminismParallel extends the determinism guarantee to the
// parallel experiment harness: fanning (benchmark × algorithm) cells
// across a worker pool must merge into the same canonical-order Metrics,
// the same per-cell JSONL traces and the same per-net attribution as the
// serial run — workers get private recorders, so concurrency can reorder
// only wall-clock, never results. The net-workers axis joins the matrix
// too: intra-instance parallelism may only populate the sched.* metric
// family, which the dump zeroes.
func TestRouteDeterminismParallel(t *testing.T) {
	specs := []bench.Spec{
		{Name: "detP1", Nets: 90, Tracks: 40, Layers: 3, Seed: 101, PinCandidates: 2, AvgHPWL: 5, Blockages: 2},
		{Name: "detP2", Nets: 110, Tracks: 44, Layers: 3, Seed: 102, PinCandidates: 1, AvgHPWL: 6, Blockages: 2},
	}
	var cells []bench.Cell
	for _, sp := range specs {
		for _, a := range []bench.Algo{bench.AlgoOurs, bench.AlgoTrimGreedy} {
			cells = append(cells, bench.Cell{Spec: sp, Algo: a})
		}
	}
	type traceFile struct {
		bytes.Buffer
	}
	run := func(jobs, netWorkers int) (string, map[string]*traceFile) {
		traces := map[string]*traceFile{}
		var mu sync.Mutex
		cfg := bench.RunConfig{Rules: Node10nm()}
		if netWorkers > 1 {
			opt := Defaults()
			opt.NetWorkers = netWorkers
			cfg.RouterOptions = &opt
		}
		h := bench.Harness{
			Jobs: jobs,
			Cfg:  cfg,
			TraceWriter: func(c bench.Cell) (io.WriteCloser, error) {
				mu.Lock()
				defer mu.Unlock()
				f := &traceFile{}
				traces[c.String()] = f
				return struct {
					io.Writer
					io.Closer
				}{f, io.NopCloser(nil)}, nil
			},
		}
		rows, err := h.Run(cells)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var b bytes.Buffer
		for _, m := range rows {
			m.CPU = 0
			for j := range m.Obs.StageNS {
				m.Obs.StageNS[j] = 0
			}
			m.Obs.ZeroFamily("sched.")
			// NetStats rows must emerge in canonical net order at ANY jobs
			// and net-workers setting: attribution happens in the serial
			// commit phase, so the table is invariant, not just sorted.
			for i := 1; i < len(m.NetStats); i++ {
				if m.NetStats[i-1].Net >= m.NetStats[i].Net {
					t.Fatalf("jobs=%d workers=%d %s: NetStats out of canonical order (net %d before net %d)",
						jobs, netWorkers, m.Bench, m.NetStats[i-1].Net, m.NetStats[i].Net)
				}
			}
			fmt.Fprintf(&b, "%s/%s rout=%.2f so=%.1f conf=%d wl=%d vias=%d ripups=%d\n%s%s",
				m.Bench, m.Algo, m.RoutabilityPct, m.OverlayUnits,
				m.Conflicts+m.HardOverlays, m.Wirelength, m.Vias, m.Ripups,
				m.Obs.CountersString(), obs.NetStatsString(m.NetStats))
		}
		return b.String(), traces
	}
	serial, serialTr := run(1, 1)
	parallel, parallelTr := run(4, 1)
	if serial != parallel {
		t.Fatalf("parallel harness is not deterministic:\n--- jobs=1\n%s\n--- jobs=4\n%s", serial, parallel)
	}
	netpar, netparTr := run(4, 4)
	if serial != netpar {
		t.Fatalf("net-workers=4 run diverges from serial:\n--- workers=1\n%s\n--- workers=4\n%s", serial, netpar)
	}
	if len(serialTr) != 2 {
		t.Fatalf("want 2 traces (one per ours-cell), got %d", len(serialTr))
	}
	for name, s := range serialTr {
		p, ok := parallelTr[name]
		if !ok || s.Len() == 0 {
			t.Fatalf("trace %s missing or empty (parallel present: %v)", name, ok)
		}
		if !bytes.Equal(s.Bytes(), p.Bytes()) {
			t.Fatalf("trace %s is not byte-identical between serial and parallel runs", name)
		}
		if n, ok := netparTr[name]; !ok || !bytes.Equal(s.Bytes(), n.Bytes()) {
			t.Fatalf("trace %s is not byte-identical under net-workers=4 (present: %v)", name, ok)
		}
	}
}
