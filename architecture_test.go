package sadp

import (
	"os"
	"strings"
	"testing"
)

// TestArchitectureCoversPackages is the doc-freshness gate: every
// internal/ package must appear in ARCHITECTURE.md's inventory, so adding
// a package without documenting its place in the system fails CI.
func TestArchitectureCoversPackages(t *testing.T) {
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("ARCHITECTURE.md must exist at the repo root: %v", err)
	}
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	text := string(arch)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if want := "internal/" + e.Name(); !strings.Contains(text, want) {
			t.Errorf("ARCHITECTURE.md does not mention %s — update the package inventory", want)
		}
	}
	// The inverse direction, cheaply: no inventory row for a package that
	// was deleted or renamed.
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "| `internal/") {
			continue
		}
		name := strings.TrimPrefix(line, "| `internal/")
		if i := strings.IndexByte(name, '`'); i >= 0 {
			name = name[:i]
		}
		if _, err := os.Stat("internal/" + name); err != nil {
			t.Errorf("ARCHITECTURE.md lists internal/%s but the package does not exist", name)
		}
	}
}
