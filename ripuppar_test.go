package sadp

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sadproute/internal/grid"
	"sadproute/internal/obs"
)

// ripupCfg is one cell of the rip-up equivalence matrix: the two new
// acceleration paths (incremental dirty-region decomposition and rip-up
// episode speculation) crossed with worker count and the decomposition
// memo cache, because the incremental engine layers its delta keys on the
// cache when both are enabled.
type ripupCfg struct {
	inc     bool
	spec    bool
	workers int
	cache   bool
}

func (c ripupCfg) String() string {
	return fmt.Sprintf("inc=%v spec=%v workers=%d cache=%v", c.inc, c.spec, c.workers, c.cache)
}

// ripupDump routes one spec under a matrix configuration and returns the
// canonical run dump, the raw JSONL trace bytes, and the per-net
// attribution table (see routeDump). The sched.*, decomp.* and ripup.*
// families are zeroed — they describe how the work was executed (waves
// formed, cache hits, splices, speculative adoptions), which legitimately
// varies across the matrix; every other counter and every other byte must
// match the baseline exactly.
func ripupDump(t *testing.T, sp Spec, cfg ripupCfg) (string, string, []obs.NetStat) {
	t.Helper()
	nl := Generate(sp)
	opt := Defaults()
	opt.IncrementalDecomp = cfg.inc
	opt.RipupSpec = cfg.spec
	opt.NetWorkers = cfg.workers
	opt.DecompCache = cfg.cache
	opt.DecompParanoid = true
	rec := NewRecorder()
	var tr bytes.Buffer
	rec.SetTrace(&tr)
	opt.Obs = rec
	res := Route(nl, Node10nm(), opt)
	if err := rec.TraceErr(); err != nil {
		t.Fatal(err)
	}
	// Paranoid mode re-ran the full oracle behind every incremental splice
	// and deep-compared; surface the first divergence loudly.
	if err := res.DecompCacheCheck(); err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	snap := rec.Snapshot()
	snap.ZeroFamily("sched.")
	snap.ZeroFamily("decomp.")
	snap.ZeroFamily("ripup.")
	var b bytes.Buffer
	fmt.Fprintf(&b, "routed=%d failed=%d wl=%d vias=%d\n",
		res.Routed, res.Failed, res.WirelengthCells, res.Vias)
	b.WriteString(snap.CountersString())
	b.WriteString(obs.NetStatsString(rec.NetStats()))
	fmt.Fprintf(&b, "paths=%v\n", res.Paths)
	fmt.Fprintf(&b, "colors=%v\n", res.Colors)
	layers, tot := Evaluate(res)
	fmt.Fprintf(&b, "totals=%+v\n", tot)
	for i, lr := range layers {
		fmt.Fprintf(&b, "layer%d: so=%d tip=%d hard=%d conf=%d\n",
			i, lr.SideOverlayNM, lr.TipOverlayNM, lr.HardOverlays, len(lr.Conflicts))
	}
	return b.String(), tr.String(), rec.NetStats()
}

// TestRipupEquivalenceMatrix is the PR's acceptance gate: every cell of
// {incremental, speculation} x {workers 1, 4} x {cache on, off} produces
// a byte-identical run — paths, colors, overlay totals, every counter
// outside the three execution-strategy families, the per-net attribution
// table (rip-up counts included, compared structurally as well as
// textually), and the raw JSONL trace stream — to the plain serial
// uncached baseline. CI runs this under -race, which also proves the
// episode fleet and the serial commit phase share no unsynchronized
// state.
func TestRipupEquivalenceMatrix(t *testing.T) {
	specs := intraparSpecs[:1]
	if !testing.Short() {
		specs = intraparSpecs[:2]
	}
	for _, sp := range specs {
		t.Run(sp.Name, func(t *testing.T) {
			want, wantTr, wantNS := ripupDump(t, sp, ripupCfg{workers: 1})
			for _, inc := range []bool{false, true} {
				for _, spec := range []bool{false, true} {
					for _, workers := range []int{1, 4} {
						for _, cache := range []bool{false, true} {
							cfg := ripupCfg{inc: inc, spec: spec, workers: workers, cache: cache}
							if cfg == (ripupCfg{workers: 1}) {
								continue
							}
							got, gotTr, gotNS := ripupDump(t, sp, cfg)
							if !reflect.DeepEqual(gotNS, wantNS) {
								t.Fatalf("%v: per-net stats (attempts/rip-ups/fails) diverge from baseline", cfg)
							}
							if got != want {
								t.Fatalf("%v diverges from serial baseline:\n--- baseline\n%s\n--- got\n%s", cfg, want, got)
							}
							if gotTr != wantTr {
								i := 0
								for i < len(wantTr) && i < len(gotTr) && wantTr[i] == gotTr[i] {
									i++
								}
								lo := max(i-120, 0)
								t.Fatalf("%v: trace diverges at byte %d:\n--- baseline\n...%s\n--- got\n...%s",
									cfg, i, wantTr[lo:min(i+120, len(wantTr))], gotTr[lo:min(i+120, len(gotTr))])
							}
						}
					}
				}
			}
		})
	}
}

// TestRipupSpeculationEngages guards against the episode machinery
// silently never running: across the suite with both accelerations on,
// pre-searches must launch and some must survive validation, and the
// adopted/wasted split must account for every launch exactly. Without
// this, the matrix above could pass vacuously with the options inert.
func TestRipupSpeculationEngages(t *testing.T) {
	var searches, adopted, wasted int64
	for _, sp := range intraparSpecs {
		nl := Generate(sp)
		opt := Defaults()
		opt.IncrementalDecomp = true
		opt.RipupSpec = true
		opt.NetWorkers = 4
		rec := NewRecorder()
		opt.Obs = rec
		Route(nl, Node10nm(), opt)
		snap := rec.Snapshot()
		searches += snap.Counter(obs.CtrRipupSpecSearches)
		adopted += snap.Counter(obs.CtrRipupSpecAdopted)
		wasted += snap.Counter(obs.CtrRipupSpecWasted)
	}
	if adopted+wasted != searches {
		t.Fatalf("episode accounting broken: searches=%d adopted=%d wasted=%d", searches, adopted, wasted)
	}
	if searches == 0 {
		t.Fatal("no rip-up episode ever launched a pre-search: the speculation path is degenerate")
	}
	if adopted == 0 {
		t.Error("no episode pre-search was ever adopted: validation rejects everything")
	}
	t.Logf("episodes engaged: %d pre-searches, %d adopted, %d wasted", searches, adopted, wasted)
}

// TestIncrementalDecompEngages is the same vacuity guard for the
// incremental engine: the repair loop and final metrics must score
// unchanged-layout hits, and at least one genuine splice must happen
// somewhere in the suite so the equivalence matrix actually covers the
// splice path.
func TestIncrementalDecompEngages(t *testing.T) {
	var hits, splices, fallbacks int64
	for _, sp := range intraparSpecs {
		nl := Generate(sp)
		opt := Defaults()
		opt.IncrementalDecomp = true
		opt.RipupSpec = true
		opt.NetWorkers = 4
		rec := NewRecorder()
		opt.Obs = rec
		res := Route(nl, Node10nm(), opt)
		EvaluateR(res, rec)
		snap := rec.Snapshot()
		hits += snap.Counter(obs.CtrDecompIncHits)
		splices += snap.Counter(obs.CtrDecompIncSplices)
		fallbacks += snap.Counter(obs.CtrDecompIncFallbacks)
	}
	if hits == 0 {
		t.Error("incremental engine never detected an unchanged layout")
	}
	if splices == 0 {
		t.Error("incremental engine never spliced: every re-decomposition fell back to full recompute")
	}
	t.Logf("incremental engaged: %d hits, %d splices, %d fallbacks", hits, splices, fallbacks)
}

// FuzzRipupSpeculationCommit drives the full accelerated configuration —
// episode speculation at four workers plus incremental decomposition
// under Paranoid — with fuzzed benchmark shapes and checks the contract
// from the outside: the result equals the plain serial run exactly, no
// two nets share a committed cell, the per-net rip-up attribution is
// identical, and the episode accounting balances.
func FuzzRipupSpeculationCommit(f *testing.F) {
	f.Add([]byte{40, 18, 7, 1, 5, 2, 4})
	f.Add([]byte{90, 28, 11, 3, 6, 3, 8})
	f.Add([]byte{23, 5, 200, 2, 2, 1, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		sp := Spec{
			Name:          "fuzz",
			Nets:          1 + next()%30,
			Tracks:        12 + next()%17,
			Layers:        2 + next()%2,
			Seed:          int64(next()),
			PinCandidates: 1 + next()%3,
			AvgHPWL:       3 + next()%5,
			Blockages:     next() % 4,
		}
		nl := Generate(sp)
		ds := Node10nm()

		srec := NewRecorder()
		sopt := Defaults()
		sopt.Obs = srec
		serial := Route(nl, ds, sopt)

		opt := Defaults()
		opt.IncrementalDecomp = true
		opt.RipupSpec = true
		opt.NetWorkers = 4
		opt.DecompParanoid = true
		rec := NewRecorder()
		opt.Obs = rec
		par := Route(nl, ds, opt)

		if err := par.DecompCacheCheck(); err != nil {
			t.Fatalf("incremental splice diverged from the full oracle: %v", err)
		}
		if par.Routed != serial.Routed || par.Failed != serial.Failed ||
			par.WirelengthCells != serial.WirelengthCells || par.Vias != serial.Vias {
			t.Fatalf("totals diverge: serial routed=%d failed=%d wl=%d vias=%d, accelerated routed=%d failed=%d wl=%d vias=%d",
				serial.Routed, serial.Failed, serial.WirelengthCells, serial.Vias,
				par.Routed, par.Failed, par.WirelengthCells, par.Vias)
		}
		if !reflect.DeepEqual(par.Paths, serial.Paths) {
			t.Fatal("paths diverge from the serial commit order")
		}
		if !reflect.DeepEqual(par.Colors, serial.Colors) {
			t.Fatal("colors diverge from the serial run")
		}
		if !reflect.DeepEqual(rec.NetStats(), srec.NetStats()) {
			t.Fatal("per-net attribution (attempts/rip-ups/fails) diverges from the serial run")
		}

		owner := make(map[grid.Cell]int)
		for id, path := range par.Paths {
			for _, c := range path {
				if prev, taken := owner[c]; taken && prev != id {
					t.Fatalf("nets %d and %d both committed cell %+v", prev, id, c)
				}
				owner[c] = id
			}
		}

		snap := rec.Snapshot()
		searches := snap.Counter(obs.CtrRipupSpecSearches)
		adopted := snap.Counter(obs.CtrRipupSpecAdopted)
		wasted := snap.Counter(obs.CtrRipupSpecWasted)
		if adopted+wasted != searches {
			t.Fatalf("episode accounting inconsistent: searches=%d adopted=%d wasted=%d (%s)",
				searches, adopted, wasted, fmt.Sprint(sp))
		}
	})
}
