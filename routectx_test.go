package sadp

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRouteCtxFacade pins the facade contract: a background context is
// byte-identical to Route, and a pre-cancelled one returns ctx.Err()
// before routing any net.
func TestRouteCtxFacade(t *testing.T) {
	nl := Generate(Spec{
		Name: "ctx", Nets: 24, Tracks: 24, Layers: 2, Seed: 6,
		PinCandidates: 1, AvgHPWL: 5,
	})
	want := Route(nl, Node10nm(), Defaults())
	got, err := RouteCtx(context.Background(), nl, Node10nm(), Defaults())
	if err != nil {
		t.Fatalf("RouteCtx(background): %v", err)
	}
	if !reflect.DeepEqual(got.Paths, want.Paths) {
		t.Error("RouteCtx paths differ from Route")
	}
	if !reflect.DeepEqual(got.Colors, want.Colors) {
		t.Error("RouteCtx colors differ from Route")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RouteCtx(cancelled, nl, Node10nm(), Defaults())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RouteCtx err = %v, want context.Canceled", err)
	}
	if len(res.Paths) != 0 {
		t.Errorf("pre-cancelled RouteCtx routed %d nets, want 0", len(res.Paths))
	}
}
