package router_test

import (
	"context"
	"reflect"
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// TestRouteCtxNilAndBackgroundIdentical pins the RouteCtx contract: a run
// under a never-cancelled context commits exactly the paths and colors of
// a context-free Route.
func TestRouteCtxNilAndBackgroundIdentical(t *testing.T) {
	nl := bench.Generate(bench.Spec{
		Name: "ctx-eq", Nets: 20, Tracks: 28, Layers: 3,
		Seed: 41, PinCandidates: 1, AvgHPWL: 7, Blockages: 2,
	})
	ds := rules.Node10nm()

	base := router.Route(nl, ds, router.Defaults())
	got, err := router.RouteCtx(context.Background(), nl, ds, router.Defaults())
	if err != nil {
		t.Fatalf("RouteCtx with a live context returned %v", err)
	}
	if !reflect.DeepEqual(base.Paths, got.Paths) {
		t.Error("RouteCtx paths diverge from Route")
	}
	if !reflect.DeepEqual(base.Colors, got.Colors) {
		t.Error("RouteCtx colors diverge from Route")
	}
	if base.Routed != got.Routed || base.Failed != got.Failed ||
		base.WirelengthCells != got.WirelengthCells || base.Vias != got.Vias {
		t.Errorf("RouteCtx summary diverges: %d/%d/%d/%d vs %d/%d/%d/%d",
			got.Routed, got.Failed, got.WirelengthCells, got.Vias,
			base.Routed, base.Failed, base.WirelengthCells, base.Vias)
	}
}

// TestRouteCtxPreCancelled: a context cancelled before the run starts
// aborts at the first net boundary — no nets are committed and the
// context error is surfaced.
func TestRouteCtxPreCancelled(t *testing.T) {
	nl := bench.Generate(bench.Spec{
		Name: "ctx-pre", Nets: 20, Tracks: 28, Layers: 3,
		Seed: 43, PinCandidates: 1, AvgHPWL: 7, Blockages: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, nw := range []int{0, 4} {
		opt := router.Defaults()
		opt.NetWorkers = nw
		res, err := router.RouteCtx(ctx, nl, rules.Node10nm(), opt)
		if err != context.Canceled {
			t.Errorf("NetWorkers=%d: err = %v, want context.Canceled", nw, err)
		}
		if res == nil {
			t.Fatalf("NetWorkers=%d: partial result is nil", nw)
		}
		if len(res.Paths) != 0 {
			t.Errorf("NetWorkers=%d: pre-cancelled run committed %d paths", nw, len(res.Paths))
		}
	}
}

// countdownCtx is a deterministic mid-run cancellation probe: Err stays
// nil for the first `allow` checks and reports context.Canceled from then
// on. With serial routing the sequence of check points is fixed, so the
// abort lands at the same boundary every run.
type countdownCtx struct {
	context.Context
	allow int
	calls int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.allow {
		return context.Canceled
	}
	return nil
}

// TestRouteCtxMidRunCancel aborts after a fixed number of check points
// and verifies the route stopped early: some nets committed, strictly
// fewer than the full run, with the context error surfaced.
func TestRouteCtxMidRunCancel(t *testing.T) {
	nl := bench.Generate(bench.Spec{
		Name: "ctx-mid", Nets: 30, Tracks: 32, Layers: 3,
		Seed: 47, PinCandidates: 1, AvgHPWL: 8, Blockages: 2,
	})
	ds := rules.Node10nm()
	full := router.Route(nl, ds, router.Defaults())
	if full.Routed < 10 {
		t.Fatalf("fixture too small: full run routed only %d nets", full.Routed)
	}

	ctx := &countdownCtx{Context: context.Background(), allow: 8}
	partial, err := router.RouteCtx(ctx, nl, ds, router.Defaults())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial.Paths) == 0 {
		t.Error("mid-run cancel committed no paths; expected a partial prefix")
	}
	if len(partial.Paths) >= len(full.Paths) {
		t.Errorf("cancelled run committed %d paths, full run %d — cancellation did not stop the route",
			len(partial.Paths), len(full.Paths))
	}
}
