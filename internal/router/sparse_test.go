package router_test

import (
	"reflect"
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/drc"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// sparseSpec is a low-congestion long-net instance at a die size where the
// corridor graph pays off; routeSparse drops the HPWL gate so every net
// engages it.
var sparseSpec = bench.Spec{
	Name: "sparse-t", Nets: 40, Tracks: 220, Layers: 3, Seed: 44,
	PinCandidates: 1, AvgHPWL: 80, Blockages: 6,
}

func routeSparse(t *testing.T, on bool) (*router.Result, obs.Snapshot) {
	t.Helper()
	nl := bench.Generate(sparseSpec)
	opt := router.Defaults()
	opt.SparseSearch = on
	opt.SparseMinHPWL = 4
	opt.Obs = obs.New()
	res := router.Route(nl, rules.Node10nm(), opt)
	snap := opt.Obs.Snapshot()
	return res, snap
}

// TestSparseEngagesAndCutsExpansions is the tentpole's router-level bar:
// on a long-net low-congestion instance the corridor graph must answer
// most first searches (few fallbacks) and slash dense A* expansions, while
// routing everything the dense engine routes.
func TestSparseEngagesAndCutsExpansions(t *testing.T) {
	if testing.Short() {
		t.Skip("routes a 220-track instance twice")
	}
	dres, dsnap := routeSparse(t, false)
	sres, ssnap := routeSparse(t, true)

	searches := ssnap.Counter(obs.CtrSparseSearches)
	fallbacks := ssnap.Counter(obs.CtrSparseFallbacks)
	if searches == 0 {
		t.Fatal("sparse search never engaged")
	}
	if adopted := searches - fallbacks; adopted < searches/2 {
		t.Errorf("adoption rate collapsed: %d adopted of %d", adopted, searches)
	}
	dexp, sexp := dsnap.Counter(obs.CtrAstarExpanded), ssnap.Counter(obs.CtrAstarExpanded)
	if sexp*5 > dexp {
		t.Errorf("sparse run should cut dense expansions at least 5x: dense=%d sparse=%d", dexp, sexp)
	}
	if sres.Routability() < dres.Routability() {
		t.Errorf("sparse degraded routability: %.1f%% vs %.1f%%", sres.Routability(), dres.Routability())
	}
	t.Logf("sparse: searches=%d fallbacks=%d nodes=%d dense_expand=%d vs %d",
		searches, fallbacks, ssnap.Counter(obs.CtrSparseNodes), sexp, dexp)
}

// TestSparseFullInstanceDRCClean decomposes and verifies the sparse-routed
// result end to end: the paper's zero-conflict/zero-hard-overlay guarantee
// and DRC cleanliness must hold exactly as for the dense router.
func TestSparseFullInstanceDRCClean(t *testing.T) {
	if testing.Short() {
		t.Skip("routes and verifies a 220-track instance")
	}
	res, _ := routeSparse(t, true)
	layouts := res.Layouts()
	results, tot := decomp.DecomposeLayers(layouts)
	if tot.Conflicts != 0 || tot.HardOverlays != 0 || tot.Violations != 0 {
		t.Fatalf("guarantees violated: conf=%d hard=%d viol=%d", tot.Conflicts, tot.HardOverlays, tot.Violations)
	}
	var layers []drc.Layer
	for l, ly := range layouts {
		layers = append(layers, drc.FromDecomp(ly, results[l].Materials))
	}
	if rep := drc.CheckDesign(layers, rules.Node10nm()); !rep.Clean() {
		t.Fatalf("DRC violations on sparse-routed design: %+v %v", rep.Layers, rep.ConnErrs)
	}
	if res.Routability() < 90 {
		t.Errorf("routability %.1f%% below floor", res.Routability())
	}
}

// TestSparseDeterministic routes the same instance twice with the lever on
// and demands identical paths, colors and counters.
func TestSparseDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("routes a 220-track instance twice")
	}
	r1, s1 := routeSparse(t, true)
	r2, s2 := routeSparse(t, true)
	if !reflect.DeepEqual(r1.Paths, r2.Paths) {
		t.Fatal("paths differ between identical sparse runs")
	}
	if !reflect.DeepEqual(r1.Colors, r2.Colors) {
		t.Fatal("colors differ between identical sparse runs")
	}
	if s1.CountersString() != s2.CountersString() {
		t.Fatal("counters differ between identical sparse runs")
	}
}

// TestSparseGateKeepsSmallRunsIdentical proves the equivalence the CI
// smoke relies on: below the HPWL gate the corridor graph never engages,
// so a standard-cell-scale run is identical with the lever on or off.
func TestSparseGateKeepsSmallRunsIdentical(t *testing.T) {
	spec := bench.Spec{Name: "gate-t", Nets: 60, Tracks: 60, Layers: 3, Seed: 5,
		PinCandidates: 1, AvgHPWL: 6, Blockages: 2}
	nl := bench.Generate(spec)
	route := func(on bool) (*router.Result, obs.Snapshot) {
		opt := router.Defaults()
		opt.SparseSearch = on
		opt.Obs = obs.New()
		res := router.Route(nl, rules.Node10nm(), opt)
		return res, opt.Obs.Snapshot()
	}
	roff, soff := route(false)
	ron, son := route(true)
	if !reflect.DeepEqual(roff.Paths, ron.Paths) {
		t.Fatal("paths differ below the HPWL gate")
	}
	if son.Counter(obs.CtrSparseSearches) != 0 || son.Counter(obs.CtrSparseFallbacks) != 0 {
		t.Fatalf("corridor engaged below the gate: searches=%d", son.Counter(obs.CtrSparseSearches))
	}
	if soff.CountersString() != son.CountersString() {
		t.Fatal("counters differ below the HPWL gate")
	}
}

// TestSparseIneffectiveUnderNetWorkers documents the serial-only contract:
// with the speculative scheduler active the corridor graph must stay off
// and the result must equal the plain parallel run's.
func TestSparseIneffectiveUnderNetWorkers(t *testing.T) {
	spec := bench.Spec{Name: "nw-t", Nets: 40, Tracks: 80, Layers: 3, Seed: 9,
		PinCandidates: 1, AvgHPWL: 30, Blockages: 2}
	nl := bench.Generate(spec)
	route := func(sparseOn bool) (*router.Result, obs.Snapshot) {
		opt := router.Defaults()
		opt.SparseSearch = sparseOn
		opt.NetWorkers = 4
		opt.Obs = obs.New()
		res := router.Route(nl, rules.Node10nm(), opt)
		return res, opt.Obs.Snapshot()
	}
	roff, _ := route(false)
	ron, son := route(true)
	if son.Counter(obs.CtrSparseSearches) != 0 {
		t.Fatal("corridor graph engaged despite NetWorkers >= 2")
	}
	if !reflect.DeepEqual(roff.Paths, ron.Paths) {
		t.Fatal("SparseSearch changed a NetWorkers run")
	}
}
