package router_test

import (
	"reflect"
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// routeWith routes the given instance with the rip-up accelerations set
// as requested and returns the result plus the final counter snapshot.
func routeWith(t *testing.T, sp bench.Spec, inc, spec bool, workers int) (*router.Result, obs.Snapshot) {
	t.Helper()
	nl := bench.Generate(sp)
	opt := router.Defaults()
	opt.IncrementalDecomp = inc
	opt.RipupSpec = spec
	opt.NetWorkers = workers
	opt.DecompParanoid = true
	rec := obs.New()
	opt.Obs = rec
	res := router.Route(nl, rules.Node10nm(), opt)
	if err := res.DecompCacheCheck(); err != nil {
		t.Fatalf("cache integrity (inc=%v spec=%v w=%d): %v", inc, spec, workers, err)
	}
	return res, rec.Snapshot()
}

// TestRipupAccelerationsMatchSerial proves, inside the router package,
// that incremental decomposition and episode speculation leave the route
// shape untouched: same paths, colors, and totals as the plain serial
// run on a congested instance that exercises the repair loop.
func TestRipupAccelerationsMatchSerial(t *testing.T) {
	sp := smallSpec(150, 36, 2, 5)
	base, _ := routeWith(t, sp, false, false, 1)
	for _, c := range []struct {
		name      string
		inc, spec bool
		workers   int
	}{
		{"incremental", true, false, 1},
		{"speculative", false, true, 4},
		{"combined", true, true, 4},
	} {
		res, snap := routeWith(t, sp, c.inc, c.spec, c.workers)
		if res.Routed != base.Routed || res.Failed != base.Failed ||
			res.WirelengthCells != base.WirelengthCells || res.Vias != base.Vias {
			t.Errorf("%s: totals diverged: routed %d/%d failed %d/%d wl %d/%d vias %d/%d",
				c.name, res.Routed, base.Routed, res.Failed, base.Failed,
				res.WirelengthCells, base.WirelengthCells, res.Vias, base.Vias)
		}
		if !reflect.DeepEqual(res.Paths, base.Paths) {
			t.Errorf("%s: paths diverged from serial", c.name)
		}
		if !reflect.DeepEqual(res.Colors, base.Colors) {
			t.Errorf("%s: colors diverged from serial", c.name)
		}
		if c.spec {
			s, a, w := snap.Counter(obs.CtrRipupSpecSearches),
				snap.Counter(obs.CtrRipupSpecAdopted), snap.Counter(obs.CtrRipupSpecWasted)
			if a+w != s {
				t.Errorf("%s: spec counters inconsistent: %d adopted + %d wasted != %d searches", c.name, a, w, s)
			}
			t.Logf("%s: %d pre-searches, %d adopted, %d wasted", c.name, s, a, w)
		}
		if c.inc {
			h, sl, f := snap.Counter(obs.CtrDecompIncHits),
				snap.Counter(obs.CtrDecompIncSplices), snap.Counter(obs.CtrDecompIncFallbacks)
			t.Logf("%s: %d incremental hits, %d splices, %d fallbacks", c.name, h, sl, f)
		}
	}
}

// TestRipupSpecNeedsWorkers checks the enablement guard: RipupSpec with
// fewer than two net workers must stay serial and launch no episode
// pre-searches.
func TestRipupSpecNeedsWorkers(t *testing.T) {
	sp := smallSpec(120, 40, 1, 7)
	base, _ := routeWith(t, sp, false, false, 1)
	res, snap := routeWith(t, sp, false, true, 1)
	if snap.Counter(obs.CtrRipupSpecSearches) != 0 {
		t.Errorf("spec with 1 worker launched %d pre-searches, want 0",
			snap.Counter(obs.CtrRipupSpecSearches))
	}
	if !reflect.DeepEqual(res.Paths, base.Paths) {
		t.Error("spec with 1 worker changed paths")
	}
}
