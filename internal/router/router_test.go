package router_test

import (
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

func smallSpec(nets, tracks int, cands int, seed int64) bench.Spec {
	return bench.Spec{
		Name: "unit", Nets: nets, Tracks: tracks, Layers: 3,
		Seed: seed, PinCandidates: cands, AvgHPWL: tracks / 8, Blockages: 2,
	}
}

// TestRouteSmokeSmall routes a small random instance and checks the paper's
// headline guarantees against the decomposition oracle: zero cut conflicts,
// zero hard overlays, zero violations.
func TestRouteSmokeSmall(t *testing.T) {
	nl := bench.Generate(smallSpec(120, 40, 1, 7))
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := router.Defaults()
	opt.Obs = obs.New()
	res := router.Route(nl, rules.Node10nm(), opt)
	if res.Routed == 0 {
		t.Fatal("routed no nets")
	}
	if res.Routability() < 70 {
		t.Errorf("routability %.1f%% too low", res.Routability())
	}
	_, tot := decomp.DecomposeLayers(res.Layouts())
	if tot.Conflicts != 0 {
		t.Errorf("cut conflicts = %d, want 0", tot.Conflicts)
	}
	if tot.HardOverlays != 0 {
		t.Errorf("hard overlays = %d, want 0", tot.HardOverlays)
	}
	if tot.Violations != 0 {
		t.Errorf("violations = %d, want 0", tot.Violations)
	}
	snap := opt.Obs.Snapshot()
	if snap.Counter(obs.CtrRouteAttempts) == 0 {
		t.Error("obs recorded no route attempts")
	}
	if snap.Counter(obs.CtrAstarSearches) == 0 {
		t.Error("obs recorded no A* searches")
	}
	t.Logf("routed %d/%d, WL=%d vias=%d ripups=%d overlay=%.1fu CPU=%v",
		res.Routed, res.Routed+res.Failed, res.WirelengthCells, res.Vias,
		snap.Counter(obs.CtrRouteRipups), tot.SideOverlayUnits, res.CPU)
}

// TestRouteMultiPin exercises multiple pin candidate locations.
func TestRouteMultiPin(t *testing.T) {
	nl := bench.Generate(smallSpec(80, 40, 3, 11))
	res := router.Route(nl, rules.Node10nm(), router.Defaults())
	if res.Routability() < 90 {
		t.Errorf("routability %.1f%%", res.Routability())
	}
	_, tot := decomp.DecomposeLayers(res.Layouts())
	if tot.Conflicts != 0 || tot.HardOverlays != 0 || tot.Violations != 0 {
		t.Errorf("conf=%d hard=%d viol=%d, want all 0", tot.Conflicts, tot.HardOverlays, tot.Violations)
	}
}

// TestPathsAreConnected verifies every routed path is a connected chain of
// grid-adjacent cells joining one candidate of each pin.
func TestPathsAreConnected(t *testing.T) {
	nl := bench.Generate(smallSpec(60, 32, 2, 3))
	res := router.Route(nl, rules.Node10nm(), router.Defaults())
	for id, path := range res.Paths {
		if len(path) == 0 {
			t.Fatalf("net %d: empty path", id)
		}
		for i := 1; i < len(path); i++ {
			d := absAll(path[i], path[i-1])
			if d != 1 {
				t.Errorf("net %d: discontinuous at step %d: %v -> %v", id, i, path[i-1], path[i])
			}
		}
		if !hasCand(nl.Nets[id].A, path[0]) || !hasCand(nl.Nets[id].B, path[len(path)-1]) {
			t.Errorf("net %d: endpoints %v..%v not at pin candidates", id, path[0], path[len(path)-1])
		}
	}
}

func hasCand(p netlist.Pin, c grid.Cell) bool {
	for _, x := range p.Candidates {
		if x == c {
			return true
		}
	}
	return false
}

func absAll(a, b grid.Cell) int {
	d := 0
	for _, v := range [3]int{a.X - b.X, a.Y - b.Y, a.L - b.L} {
		if v < 0 {
			v = -v
		}
		d += v
	}
	return d
}
