package router_test

import (
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// TestMediumInstanceGuarantees routes a 300-net instance and asserts the
// zero-conflict/zero-hard-overlay guarantee at medium scale.
func TestMediumInstanceGuarantees(t *testing.T) {
	if testing.Short() {
		t.Skip("medium instance")
	}
	nl := bench.Generate(bench.Spec{Name: "d", Nets: 300, Tracks: 80, Layers: 3, Seed: 7, PinCandidates: 1, AvgHPWL: 8, Blockages: 2})
	opt := router.Defaults()
	opt.Obs = obs.New()
	res := router.Route(nl, rules.Node10nm(), opt)
	_, tot := decomp.DecomposeLayers(res.Layouts())
	snap := opt.Obs.Snapshot()
	t.Logf("routed=%.1f%% rip=%d odd=%d inf=%d win=%d nopath=%d conf=%d hard=%d SO=%.0fu cpu=%v",
		res.Routability(), snap.Counter(obs.CtrRouteRipups), snap.Counter(obs.CtrRipOddCycle),
		snap.Counter(obs.CtrRipInfeasible), snap.Counter(obs.CtrRipWindow), snap.Counter(obs.CtrNoPath),
		tot.Conflicts, tot.HardOverlays, tot.SideOverlayUnits, res.CPU)
	if tot.Conflicts != 0 || tot.HardOverlays != 0 || tot.Violations != 0 {
		t.Errorf("guarantees violated: conf=%d hard=%d viol=%d", tot.Conflicts, tot.HardOverlays, tot.Violations)
	}
	if res.Routability() < 70 {
		t.Errorf("routability %.1f%% below floor", res.Routability())
	}
}
