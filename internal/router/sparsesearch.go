package router

import (
	"sadproute/internal/astar"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/sparse"
)

// sparseSearch tries to answer a net's first search on the corridor graph
// (internal/sparse) instead of the dense grid. The corridor cost model is
// the uniform part of the dense step cost — wirelength, vias, the
// preferred-direction penalty and the pin-via push-off — and every term
// the dense hook can add on top (rip-up penalty inflation, the gamma_2
// lookahead) is >= 0, so the corridor optimum lower-bounds the dense
// optimum. Adoption is exact-or-fallback: the snapped path is repriced
// under the full dense step cost, and only a path whose dense cost equals
// its corridor cost is adopted — that equality proves the path is optimal
// for the dense engine's own cost function. Anything else (budget abort,
// hidden extras on the snapped path) falls back to the dense engine, so
// -sparse never degrades routing quality; it only skips dense searches it
// can prove pointless. A corridor NoPath is adopted directly: corridor
// passability equals grid passability.
//
// done=false means "run the dense engine"; the fallback counter is
// recorded by the caller.
func (st *state) sparseSearch(id int, n netlist.Net) (path []grid.Cell, ok, done bool) {
	st.rec.Inc(obs.CtrSparseSearches)
	cfg := sparse.Config{
		WL:         st.opt.Alpha,
		Via:        st.opt.Beta,
		DirPenalty: st.opt.DirPenalty,
		PinVia:     6 * st.opt.Alpha * astar.Scale,
		MaxExpand:  st.opt.MaxExpand,
	}
	p, cost, out := st.speng.Search(n.A.Candidates, n.B.Candidates, cfg)
	st.rec.Add(obs.CtrSparseNodes, int64(st.speng.Expand))
	switch out {
	case sparse.Aborted:
		return nil, false, false
	case sparse.NoPath:
		st.rec.NetSearch(id, int64(st.speng.Expand))
		return nil, false, true
	}
	if dense, priced := st.repriceDense(id, n, p); !priced || dense != cost {
		return nil, false, false
	}
	st.rec.NetSearch(id, int64(st.speng.Expand))
	return p, true, true
}

// repriceDense walks a candidate path and prices it exactly as the dense
// engine would: base wirelength/via weights plus the full step-cost hook.
func (st *state) repriceDense(id int, n netlist.Net, path []grid.Cell) (int, bool) {
	cfg := st.searchCfg(id, n)
	total := 0
	for i := 1; i < len(path); i++ {
		from, to := path[i-1], path[i]
		step := cfg.WL * astar.Scale
		if to.L != from.L {
			step = cfg.Via * astar.Scale
		}
		extra, ok := cfg.Step(from, to)
		if !ok {
			return 0, false
		}
		total += step + extra
	}
	return total, true
}

// sparseEligible gates corridor engagement per search: the lever must be
// on, the run serial (the speculative schedulers validate dense reads, not
// corridor snapshots), and the net large enough that skipping the dense
// expansion pays for the snapshot. Small nets fall through to the dense
// engine untouched, which keeps standard-cell-scale runs — including the
// CI equivalence smoke — byte-identical with -sparse on or off.
func (st *state) sparseEligible(n netlist.Net) bool {
	return st.sp != nil && n.HPWL() >= st.opt.SparseMinHPWL
}
