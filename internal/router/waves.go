package router

import (
	"time"

	"sadproute/internal/astar"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/obs"
	"sadproute/internal/sched"
)

// searchHaloCells estimates how far beyond its pin bounding box a net's
// first A* search typically wanders (detours around congestion). Part of
// the conflict-dilation heuristic only: a search that strays further is
// caught by the DirtySet validation, never miscommitted.
const searchHaloCells = 8

// specResult is one net's speculative first search, computed against the
// grid as frozen at its wave boundary. path/ok mirror the Engine.Search
// return; read is the search's read region (astar.Engine.ReadBBox); the
// astar statistics are saved so a validated hit can flush exactly what
// the serial search would have recorded; dur feeds the critical-path
// stage timers.
type specResult struct {
	path     []grid.Cell
	ok       bool
	read     geom.Rect
	expand   int
	pushes   int
	pops     int
	heapPeak int
	dur      time.Duration
}

// conflictDilation is the halo added around each net's pin bounding box
// before the pairwise-disjointness test in sched.Waves: the search halo,
// the scenario classification reach (3 cells, beyond d_indep nothing
// classifies), the window-check halo (windowResolve expands by 3), and
// the cut-spacing reach w_spacer + d_cut converted to cells. Heuristic by
// construction — DirtySet validation is what guarantees correctness.
func (st *state) conflictDilation() int {
	pitch := st.ds.Pitch()
	if pitch <= 0 {
		pitch = 1
	}
	spacing := (st.ds.WSpacer + st.ds.DCut + pitch - 1) / pitch
	return searchHaloCells + 3 + 3 + spacing
}

// netBox is the XY bounding box over both pins' candidate cells.
func (st *state) netBox(id int) geom.Rect {
	n := st.nl.Nets[id]
	first := true
	var r geom.Rect
	note := func(c grid.Cell) {
		cr := geom.Rect{X0: c.X, Y0: c.Y, X1: c.X + 1, Y1: c.Y + 1}
		if first {
			r, first = cr, false
			return
		}
		r = r.Union(cr)
	}
	for _, c := range n.A.Candidates {
		note(c)
	}
	for _, c := range n.B.Candidates {
		note(c)
	}
	return r
}

// routeWaves is the NetWorkers >= 2 counterpart of Route's serial net
// loop. It cuts the canonical order into fixed-size waves and, per wave,
// selects the greedy maximal subset of mutually independent nets
// (sched.Waves over dilated pin boxes), speculates that subset's first
// A* searches concurrently against the grid frozen at the wave boundary,
// and then routes the whole wave strictly in canonical order: search()
// consumes a speculative result only when the commit phase has not
// dirtied its read region, so every commit, rip-up, coloring decision and
// trace event happens exactly as in the serial run.
func (st *state) routeWaves(order []int) {
	workers := st.opt.NetWorkers
	dil := st.conflictDilation()
	boxes := make([]geom.Rect, len(st.nl.Nets))
	boxed := make([]bool, len(st.nl.Nets))
	box := func(id int) geom.Rect {
		if !boxed[id] {
			boxes[id] = st.netBox(id).Expand(dil)
			boxed[id] = true
		}
		return boxes[id]
	}
	waves := sched.WavesR(order, box, 0, st.rec)

	st.dirty = &sched.DirtySet{}
	st.spec = make(map[int]*specResult)
	defer func() {
		st.dirty = nil
		st.spec = nil
	}()
	engs := make([]*astar.Engine, workers)
	for i := range engs {
		// Pooled engines with no recorder: speculative searches must not
		// touch the obs counters — the statistics of the searches that
		// survive validation are flushed at their canonical commit slots.
		engs[i] = astar.Acquire(st.g)
	}
	defer func() {
		for _, e := range engs {
			e.Release()
		}
	}()

	for _, wave := range waves {
		if st.canceled() {
			return
		}
		st.rec.Inc(obs.CtrSchedWaves)
		if len(wave.Spec) > 1 {
			stop := st.rec.Span(obs.StageSpeculate)
			results := make([]*specResult, len(wave.Spec))
			sched.Run(len(wave.Spec), workers, func(w, i int) {
				results[i] = st.specSearch(engs[w], wave.Spec[i])
			})
			stop()
			ns := make([]int64, len(results))
			var serial time.Duration
			for i, sp := range results {
				st.spec[wave.Spec[i]] = sp
				ns[i] = int64(sp.dur)
				serial += sp.dur
			}
			st.rec.Add(obs.CtrSchedSpecSearches, int64(len(wave.Spec)))
			st.rec.AddStage(obs.StageSpecSerial, serial)
			st.rec.AddStage(obs.StageSpecMakespan, time.Duration(sched.Makespan(ns, workers)))
		}
		for _, id := range wave.Nets {
			st.routeNet(id)
		}
		st.dirty.Reset()
		clear(st.spec)
	}
}

// specSearch runs one net's first search on a private engine against the
// frozen grid. Read-only with respect to router state: the grid occupancy
// and the penalty map are not mutated anywhere between wave start and the
// commit phase, so concurrent map reads here are race-free.
func (st *state) specSearch(e *astar.Engine, id int) *specResult {
	n := st.nl.Nets[id]
	cfg := st.searchCfg(id, n)
	t0 := time.Now() //lint:allow wallclock per-search duration for the netpar speedup stats; reporting-only
	path, ok := e.Search(int32(id), n.A.Candidates, n.B.Candidates, cfg)
	return &specResult{
		path:     path,
		ok:       ok,
		read:     e.ReadBBox(),
		expand:   e.Expand,
		pushes:   e.Pushes,
		pops:     e.Pops,
		heapPeak: e.HeapPeak,
		dur:      time.Since(t0), //lint:allow wallclock per-search duration for the netpar speedup stats; reporting-only
	}
}

// takeSpec consumes the speculative result for net id, if one exists and
// its read region is untouched by this wave's commits so far. On a hit it
// flushes the saved astar statistics — the identical values the serial
// first search would have recorded at this point. Each result is consumed
// at most once, so rip-up re-searches always run serially.
func (st *state) takeSpec(id int) (*specResult, bool) {
	sp, ok := st.spec[id]
	if !ok {
		return nil, false
	}
	delete(st.spec, id)
	if st.dirty.Intersects(sp.read) {
		st.rec.Inc(obs.CtrSchedSpecRetries)
		return nil, false
	}
	st.rec.Inc(obs.CtrSchedSpecHits)
	st.rec.Inc(obs.CtrAstarSearches)
	st.rec.Add(obs.CtrAstarExpanded, int64(sp.expand))
	st.rec.Add(obs.CtrAstarPushes, int64(sp.pushes))
	st.rec.Add(obs.CtrAstarPops, int64(sp.pops))
	st.rec.Max(obs.GaugeAstarHeapPeak, int64(sp.heapPeak))
	st.rec.Observe(obs.HistAstarExpanded, int64(sp.expand))
	st.rec.NetSearch(id, int64(sp.expand))
	return sp, true
}
