package router

import (
	"os"
	"sort"

	"sadproute/internal/colorflip"
	"sadproute/internal/decomp"
	"sadproute/internal/fragstore"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/obs"
)

// debugWindowEnv is the documented fallback for Options.DebugWindow (see
// README "Verification & static analysis").
var debugWindowEnv = os.Getenv("SADP_DEBUG_WINDOW") != "" //lint:allow getenv documented fallback for Options.DebugWindow, see README

// windowResolve implements the paper's per-net cut conflict check scheme
// (Section III-D) with color-based resolution: decompose a local window
// around the newly routed (and colored) net with the oracle; when the net
// introduced a new cut conflict or violation, try to clear it by re-running
// the component flipping DP with this net's color forced to each mask in
// turn — accepting and locking the first component recoloring whose window
// decomposes cleanly. Only when no coloring clears the window does the net
// get ripped up; hot returns the cells implicated, for targeted rip-up
// cost inflation.
func (st *state) windowResolve(id int) (bad bool, hot []grid.Cell) {
	for l := 0; l < st.nl.Layers; l++ {
		mine := st.frags[l].NetRects(id)
		if len(mine) == 0 {
			continue
		}
		st.rec.Inc(obs.CtrWindowChecks)
		st.rec.NetWindowCheck(id)
		var bbox geom.Rect
		for _, r := range mine {
			bbox = bbox.Union(r)
		}
		window := bbox.Expand(3)

		if st.winNets == nil {
			st.winNets = make(map[int]bool)
		} else {
			clear(st.winNets)
		}
		netsIn := st.winNets
		netsIn[id] = true
		st.frags[l].Query(window, func(f fragstore.Frag) { netsIn[f.Net] = true })
		ids := st.winIDs[:0]
		for n := range netsIn {
			ids = append(ids, n)
		}
		sort.Ints(ids)
		st.winIDs = ids
		st.rec.Observe(obs.HistWindowNets, int64(len(ids)))

		// Baseline: the window without the new net.
		base := st.decompLayer(l, st.windowLayout(l, ids, id))
		baseBad := windowBadness(base)

		// Current coloring.
		cur := st.decompLayer(l, st.windowLayout(l, ids, -1))
		curBad := windowBadness(cur)
		if curBad <= baseBad {
			if st.rec.Tracing() {
				st.rec.Trace("window_check", obs.I("net", id), obs.I("layer", l),
					obs.I("base", baseBad), obs.I("cur", curBad), obs.S("outcome", "clean"))
			}
			continue
		}

		// The net made things worse: try to resolve by recoloring its
		// component with the net's color forced each way.
		comp := st.ocgs[l].Component(id)
		saved := make(map[int]decomp.Color, len(comp))
		for _, n := range comp {
			saved[n] = st.colors[l][n]
		}
		savedLock, hadLock := st.locks[l][id]
		resolved := false
		for _, forced := range [2]decomp.Color{st.colors[l][id], st.colors[l][id].Flip()} {
			st.locks[l][id] = forced
			r := colorflip.OptimizeLockedR(st.ocgs[l], comp, st.locks[l], st.rec)
			if !r.Feasible {
				continue
			}
			if sameColors(r.Colors, saved) {
				// The DP reproduced the assignment the window was just
				// decomposed under, so this attempt would score exactly
				// curBad (> baseBad): reject it without re-running the
				// oracle or touching st.colors at all.
				st.rec.Inc(obs.CtrFlipsRejected)
				continue
			}
			for n, col := range r.Colors {
				st.colors[l][n] = col
			}
			res := st.decompLayer(l, st.windowLayout(l, ids, -1))
			if windowBadness(res) <= baseBad {
				resolved = true
				break
			}
			st.rec.Inc(obs.CtrFlipsRejected)
			for n, col := range saved {
				st.colors[l][n] = col
			}
		}
		if resolved {
			st.rec.Inc(obs.CtrWindowResolved)
			st.rec.Inc(obs.CtrFlipsApplied)
			if st.rec.Tracing() {
				st.rec.Trace("window_check", obs.I("net", id), obs.I("layer", l),
					obs.I("base", baseBad), obs.I("cur", curBad), obs.S("outcome", "resolved"))
			}
			continue
		}
		// No coloring clears the window: restore and rip up.
		if hadLock {
			st.locks[l][id] = savedLock
		} else {
			delete(st.locks[l], id)
		}
		for n, col := range saved {
			st.colors[l][n] = col
		}
		st.rec.Inc(obs.CtrWindowFailed)
		st.rec.NetWindowFail(id)
		if st.rec.Tracing() {
			st.rec.Trace("window_check", obs.I("net", id), obs.I("layer", l),
				obs.I("base", baseBad), obs.I("cur", curBad), obs.S("outcome", "ripup"))
		}
		if st.opt.DebugWindow || debugWindowEnv {
			st.rec.Debugf("WIN net=%d l=%d base=%d cur=%d comp=%d\n",
				id, l, baseBad, curBad, len(comp))
		}
		hot = append(hot, st.conflictCells(cur, l)...)
		bad = true
	}
	return bad, hot
}

// sameColors reports whether the flipping DP's assignment is identical to
// the coloring it started from.
func sameColors(got, cur map[int]decomp.Color) bool {
	if len(got) != len(cur) {
		return false
	}
	for n, c := range got {
		cc, ok := cur[n]
		if !ok || cc != c {
			return false
		}
	}
	return true
}

// decompLayer runs the cut-process oracle on one layer's layout, through
// that layer's memo cache when the run has one (Options.DecompCache).
// Window checks, repair passes and final metrics all funnel through here,
// so they share entries: a repeated window or an unchanged full layer is
// a hit. Cache state is single-goroutine by construction — every caller
// runs in the serial commit phase, even under Options.NetWorkers.
func (st *state) decompLayer(l int, ly decomp.Layout) *decomp.Result {
	if st.caches == nil {
		return decomp.DecomposeCutR(ly, st.rec)
	}
	return st.caches[l].DecomposeCut(ly, st.rec)
}

// decompFullLayer is decompLayer for the FULL per-layer layouts of the
// repair loop: with Options.IncrementalDecomp the layer's incremental
// engine splices the re-derived dirty-region verdict into the previous
// full decomposition instead of recomputing the whole layer per pass.
// Window layouts keep going through decompLayer — they are small, and
// consecutive windows share no edit structure to splice over.
func (st *state) decompFullLayer(l int, ly decomp.Layout) *decomp.Result {
	if st.incs != nil {
		return st.incs[l].DecomposeCut(ly, st.rec)
	}
	return st.decompLayer(l, ly)
}

// windowBadness scores a window decomposition by its forbidden artifacts:
// cut conflicts, violations and hard overlays.
func windowBadness(r *decomp.Result) int {
	return len(r.Conflicts) + len(r.Violations) + r.HardOverlays
}

// windowLayout assembles the oracle input for one layer window. Nets listed
// in ids contribute their full fragment lists; skip is excluded entirely.
func (st *state) windowLayout(l int, ids []int, skip int) decomp.Layout {
	ly := decomp.Layout{Rules: st.ds, Die: st.g.DieNM()}
	for _, n := range ids {
		if n == skip {
			continue
		}
		rects := st.frags[l].NetRects(n)
		if len(rects) == 0 {
			continue
		}
		nm := make([]geom.Rect, len(rects))
		for i, cr := range rects {
			nm[i] = st.g.CellsToNM(cr)
		}
		ly.Pats = append(ly.Pats, decomp.Pattern{Net: n, Color: st.colors[l][n], Rects: nm})
	}
	return ly
}

// conflictCells maps oracle conflict locations back to grid cells on layer
// l for cost inflation.
func (st *state) conflictCells(res *decomp.Result, l int) []grid.Cell {
	var out []grid.Cell
	p := st.ds.Pitch()
	addRect := func(r geom.Rect) {
		x0, y0 := fdiv(r.X0, p), fdiv(r.Y0, p)
		x1, y1 := fdiv(r.X1-1, p)+1, fdiv(r.Y1-1, p)+1
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				c := grid.Cell{X: x, Y: y, L: l}
				if st.g.In(c) {
					out = append(out, c)
				}
			}
		}
	}
	for _, cf := range res.Conflicts {
		addRect(cf.Rect.Expand(p))
	}
	return out
}

// repairConflicts is the post-routing safety net: decompose the full layout
// with the oracle, rip up every net implicated in a remaining cut conflict,
// hard overlay or violation, and reroute it with inflated costs. A few
// passes suffice in practice; anything left shows up honestly in the final
// metrics.
func (st *state) repairConflicts() {
	st.inRepair = true
	defer func() { st.inRepair = false }()
	for pass := 0; pass < 10; pass++ {
		if st.canceled() {
			return
		}
		offenders := st.offenders()
		st.rec.Inc(obs.CtrRepairPasses)
		if st.rec.Tracing() {
			st.rec.Trace("repair_pass", obs.I("pass", pass), obs.I("offenders", len(offenders)))
		}
		if len(offenders) == 0 {
			return
		}
		ep := st.beginRepairEpisode(offenders)
		for _, id := range offenders {
			if _, routed := st.res.Paths[id]; !routed {
				continue
			}
			path := st.res.Paths[id]
			// When the episode's frozen clone pre-applied this rip-up and
			// its penalty bumps, they are PREDICTED mutations: every
			// pre-search already saw them, so they must not land in the
			// episode's dirty set. Everything else routeNet does below —
			// commits, blocker rips, window penalties — is unpredicted and
			// marks st.dirty (= ep.dirty) as usual.
			predicted := ep.hasSlot(id)
			if predicted {
				st.dirty = nil
			}
			st.ripup(id)
			st.res.Routed--
			st.rec.Inc(obs.CtrRepairRips)
			st.rec.NetRipup(id, obs.RipRepair)
			if st.rec.Tracing() {
				st.rec.Trace("ripup", obs.I("net", id), obs.S("cause", "repair"))
			}
			for _, c := range path {
				st.pen[c] += 6 * st.opt.Alpha
			}
			if predicted {
				st.dirty = ep.dirty
			}
			st.routeNet(id)
		}
		st.endEpisode(ep)
	}
	// Terminal guarantee: if anything still conflicts after the repair
	// budget, drop the offenders outright — the paper's router guarantees
	// conflict-free output, trading routability where necessary.
	for _, id := range st.offenders() {
		if _, routed := st.res.Paths[id]; !routed {
			continue
		}
		st.ripup(id)
		st.res.Routed--
		st.res.Failed++
		st.rec.NetRipup(id, obs.RipRepair)
		st.rec.NetFail(id)
		if st.rec.Tracing() {
			st.rec.Trace("route_fail", obs.I("net", id), obs.S("reason", "repair_drop"))
		}
	}
}

// offenders lists the nets implicated in oracle conflicts, hard overlays or
// violations of the current full layout.
func (st *state) offenders() []int {
	bad := map[int]bool{}
	for l, ly := range st.res.Layouts() {
		res := st.decompFullLayer(l, ly)
		for _, cf := range res.Conflicts {
			bad[ly.Pats[cf.Pat].Net] = true
		}
		for _, ov := range res.Overlays {
			if ov.Hard {
				bad[ly.Pats[ov.Pat].Net] = true
			}
		}
		for _, n := range res.BadNets {
			bad[n] = true
		}
	}
	out := make([]int, 0, len(bad))
	for n := range bad {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

func fdiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
