package router

import (
	"time"

	"sadproute/internal/astar"
	"sadproute/internal/grid"
	"sadproute/internal/obs"
	"sadproute/internal/sched"
)

// Rip-up episode speculation (Options.RipupSpec): the serial rip-up and
// repair phases process their nets one at a time, but the LIST of nets is
// known when the phase starts — the repair pass computes its offenders up
// front, and the post-wave reroute drains a queue frozen at that moment.
// An episode freezes a clone of the grid and penalty map with every
// PREDICTED mutation of the phase pre-applied (each offender's rip-up and
// penalty inflation for repair passes; nothing for the pending drain,
// whose nets are already off the grid), then pre-searches every net of
// the episode on idle NetWorkers while the serial loop commits.
//
// Adoption follows the wave-speculation discipline, extended for the
// in-episode ordering: net k's pre-search substitutes for its serial
// first search only when (a) no UNPREDICTED mutation so far — commits,
// blocker rips, window penalties — touched its read region (ep.dirty,
// installed as st.dirty for the episode's duration), and (b) no LATER
// slot's predicted rip-up overlaps it: the clone ripped all offenders up
// front, but the serial search at slot k still sees offenders k+1..n
// routed. When both hold, the serial engine would have read exactly the
// grid and penalties the worker read, so path, statistics and every
// downstream decision are byte-identical to the serial run. Rejected or
// unconsumed pre-searches are counted ripup.spec_wasted and discarded.
type episode struct {
	g   *grid.Grid        // frozen grid clone, predicted rips released
	pen map[grid.Cell]int // frozen penalty clone, predicted bumps applied
	pos map[int]int       // net id -> slot; entries removed as consumed
	res []*specResult     // per-slot pre-search results, written by workers
	// future[s] holds slot s's predicted rip-up cells — the mutations the
	// clone anticipated but the serial run has not performed yet. Nil
	// per-slot for pending-drain episodes (their nets are already ripped).
	future []*sched.DirtySet
	async  *sched.Async
	engs   []*astar.Engine
	dirty  *sched.DirtySet // unpredicted serial mutations, live via st.dirty
	// launched/adopted feed ripup.spec_wasted at episode end.
	launched, adopted int
}

// hasSlot reports whether id's rip-up and penalty bumps were pre-applied
// to the episode's clone, i.e. the serial loop must suppress dirty
// marking for exactly those predicted mutations. Nil-safe.
func (ep *episode) hasSlot(id int) bool {
	if ep == nil {
		return false
	}
	_, ok := ep.pos[id]
	return ok
}

// ripupSpecEnabled gates episode creation: speculation needs spare
// workers and at least two nets (a single net has nobody to overlap
// with).
func (st *state) ripupSpecEnabled(n int) bool {
	return st.opt.RipupSpec && st.opt.NetWorkers >= 2 && n >= 2
}

// beginRepairEpisode opens an episode over one repair pass's offender
// list: the clone rips every still-routed offender and applies the exact
// penalty inflation the serial loop will apply (detect.go repairConflicts),
// so each pre-search sees the state its serial slot would see if no
// earlier reroute interfered. Returns nil when speculation is off or the
// pass is too small; callers pass nil straight to endEpisode.
func (st *state) beginRepairEpisode(offenders []int) *episode {
	ids := make([]int, 0, len(offenders))
	for _, id := range offenders {
		if _, routed := st.res.Paths[id]; routed {
			ids = append(ids, id)
		}
	}
	if !st.ripupSpecEnabled(len(ids)) {
		return nil
	}
	ep := &episode{
		g:      st.g.Clone(),
		pen:    clonePen(st.pen),
		future: make([]*sched.DirtySet, len(ids)),
	}
	for i, id := range ids {
		path := st.res.Paths[id]
		for _, c := range path {
			ep.g.Release(c)
			ep.pen[c] += 6 * st.opt.Alpha
		}
		f := &sched.DirtySet{}
		f.MarkCells(path)
		ep.future[i] = f
	}
	st.launchEpisode(ep, ids)
	return ep
}

// beginPendingEpisode opens an episode over the post-wave reroute queue.
// The queued nets were ripped when they were enqueued — grid and
// penalties already reflect it — so the clone needs no predicted
// mutations and future stays nil: adoption only has to prove no earlier
// reroute of the drain touched the read region. Nets enqueued DURING the
// drain (blocker rips) get no slot and search serially.
func (st *state) beginPendingEpisode() *episode {
	ids := make([]int, 0, len(st.pending))
	seen := make(map[int]bool, len(st.pending))
	for _, id := range st.pending {
		if seen[id] {
			continue
		}
		seen[id] = true
		if _, routed := st.res.Paths[id]; routed {
			continue
		}
		ids = append(ids, id)
	}
	if !st.ripupSpecEnabled(len(ids)) {
		return nil
	}
	ep := &episode{g: st.g.Clone(), pen: clonePen(st.pen)}
	st.launchEpisode(ep, ids)
	return ep
}

// launchEpisode starts the pre-search fleet and installs the episode:
// st.dirty collects every unpredicted serial mutation from here on, and
// search() consults st.ep before running the serial engine. Workers get
// pooled engines bound to the frozen clone and no recorder — a validated
// adoption flushes the saved statistics at its canonical slot, exactly
// like wave speculation.
func (st *state) launchEpisode(ep *episode, ids []int) {
	workers := st.opt.NetWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	ep.pos = make(map[int]int, len(ids))
	for i, id := range ids {
		ep.pos[id] = i
	}
	ep.res = make([]*specResult, len(ids))
	ep.engs = make([]*astar.Engine, workers)
	for i := range ep.engs {
		ep.engs[i] = astar.Acquire(ep.g)
	}
	ep.dirty = &sched.DirtySet{}
	ep.launched = len(ids)
	g, pen := ep.g, ep.pen
	ep.async = sched.Launch(len(ids), workers, func(w, i int) {
		id := ids[i]
		n := st.nl.Nets[id]
		cfg := st.searchCfgOn(g, pen, id, n)
		e := ep.engs[w]
		t0 := time.Now() //lint:allow wallclock per-search duration for the ripup speedup stats; reporting-only
		path, ok := e.Search(int32(id), n.A.Candidates, n.B.Candidates, cfg)
		ep.res[i] = &specResult{
			path:     path,
			ok:       ok,
			read:     e.ReadBBox(),
			expand:   e.Expand,
			pushes:   e.Pushes,
			pops:     e.Pops,
			heapPeak: e.HeapPeak,
			dur:      time.Since(t0), //lint:allow wallclock per-search duration for the ripup speedup stats; reporting-only
		}
	})
	st.rec.Add(obs.CtrRipupSpecSearches, int64(len(ids)))
	st.dirty = ep.dirty
	st.ep = ep
}

// takeEpisodeSpec consumes net id's episode pre-search if it exists and
// validates: joins the one slot it needs (the fleet keeps running), then
// proves the serial engine would have read the same state — no
// unpredicted mutation and no later slot's predicted rip inside the read
// region. The decision depends only on DirtySet geometry, never on
// timing, so counters and traces stay deterministic for a fixed
// configuration. On adoption the saved astar statistics are flushed as
// the serial search would have recorded them.
func (st *state) takeEpisodeSpec(id int) (*specResult, bool) {
	ep := st.ep
	if ep == nil {
		return nil, false
	}
	slot, ok := ep.pos[id]
	if !ok {
		return nil, false
	}
	delete(ep.pos, id)
	ep.async.Wait(slot)
	sp := ep.res[slot]
	if ep.dirty.Intersects(sp.read) {
		return nil, false
	}
	for s := slot + 1; s < len(ep.future); s++ {
		if ep.future[s].Intersects(sp.read) {
			return nil, false
		}
	}
	st.rec.Inc(obs.CtrRipupSpecAdopted)
	st.rec.Inc(obs.CtrAstarSearches)
	st.rec.Add(obs.CtrAstarExpanded, int64(sp.expand))
	st.rec.Add(obs.CtrAstarPushes, int64(sp.pushes))
	st.rec.Add(obs.CtrAstarPops, int64(sp.pops))
	st.rec.Max(obs.GaugeAstarHeapPeak, int64(sp.heapPeak))
	st.rec.Observe(obs.HistAstarExpanded, int64(sp.expand))
	st.rec.NetSearch(id, int64(sp.expand))
	ep.adopted++
	return sp, true
}

// endEpisode joins the fleet, releases the pooled engines, charges the
// unadopted pre-searches to ripup.spec_wasted and records the
// serial-vs-makespan stage pair for the speedup report. Nil-safe, so
// callers need no enabled-check.
func (st *state) endEpisode(ep *episode) {
	if ep == nil {
		return
	}
	ep.async.WaitAll()
	for _, e := range ep.engs {
		e.Release()
	}
	ns := make([]int64, len(ep.res))
	var serial time.Duration
	for i, sp := range ep.res {
		ns[i] = int64(sp.dur)
		serial += sp.dur
	}
	st.rec.Add(obs.CtrRipupSpecWasted, int64(ep.launched-ep.adopted))
	st.rec.AddStage(obs.StageRipupSerial, serial)
	st.rec.AddStage(obs.StageRipupMakespan, time.Duration(sched.Makespan(ns, len(ep.engs))))
	st.dirty = nil
	st.ep = nil
}

// clonePen copies the rip-up penalty map for an episode's frozen view.
func clonePen(pen map[grid.Cell]int) map[grid.Cell]int {
	cp := make(map[grid.Cell]int, len(pen))
	for c, v := range pen {
		cp[c] = v
	}
	return cp
}
