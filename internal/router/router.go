// Package router implements the paper's overlay-aware SADP detailed
// routing algorithm (Section III-E, Figs. 18-19): sequential A*-search
// routing guided by per-layer overlay constraint graphs, with
// rip-up-and-reroute on hard odd cycles and cut conflicts, O(1)
// pseudo-coloring of each routed net, threshold-triggered color flipping,
// and a final full-layout flipping pass.
package router

import (
	"context"
	"sort"
	"time"

	"sadproute/internal/astar"
	"sadproute/internal/colorflip"
	"sadproute/internal/decomp"
	"sadproute/internal/fragstore"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/ocg"
	"sadproute/internal/rules"
	"sadproute/internal/scenario"
	"sadproute/internal/sched"
	"sadproute/internal/sparse"
)

// Options are the user-defined parameters of the algorithm. The zero value
// is not useful; start from Defaults.
type Options struct {
	// Alpha and Beta weigh wirelength and via count in cost equation (5),
	// in engine units (astar.Scale halves apply, so gamma can be 1.5).
	Alpha, Beta int
	// Gamma2 is 2*gamma: the type-2-b geometry penalty of eq. (5) doubled
	// to stay integral (paper gamma = 1.5 -> Gamma2 = 3). Zero disables the
	// penalty (ablation).
	Gamma2 int
	// FlipThresholdNM triggers color flipping when a routed net's induced
	// side overlay exceeds it (paper f_threshold = 10 units -> 200 nm).
	FlipThresholdNM int
	// MaxRipup bounds rip-up-and-reroute iterations per net (paper B = 3).
	MaxRipup int
	// ColorFlip enables the color-flipping algorithm (ablation switch);
	// when false, pseudo-coloring alone decides colors.
	ColorFlip bool
	// WindowCheck enables the per-net cut-conflict check against the
	// decomposition oracle on a local window (Section III-D).
	WindowCheck bool
	// FinalRepair enables the post-routing conflict repair pass: oracle
	// decomposition, then rip-up-and-reroute of conflicting nets.
	FinalRepair bool
	// DirPenalty is the soft preferred-direction cost (engine units) for a
	// planar step against the layer's preferred direction (even layers
	// horizontal, odd vertical). Zero disables it.
	DirPenalty int
	// MaxExpand bounds A* node expansions per attempt (0 = unbounded).
	MaxExpand int
	// DecompCache memoizes the decomposition oracle per layer by layout
	// content (internal/decomp.Cache): window checks, repair passes and the
	// final-metrics evaluation reuse the stored Result whenever they ask
	// about a layout already decomposed this run. Cached Results are shared
	// and immutable (Result carries the //sadp:immutable marker the
	// sadplint immutable rule enforces). Routing
	// output is byte-identical with the cache on or off; turning it off
	// selects the uncached oracle for ablation or debugging.
	DecompCache bool
	// DecompParanoid makes the caches retain a private deep copy of every
	// stored Result so Result.DecompCacheCheck can prove no caller wrote
	// through shared cache data. Test/debug facility: costs one deep copy
	// per cache miss. Implies nothing unless DecompCache is on.
	DecompParanoid bool
	// NetWorkers >= 2 routes waves of mutually independent nets with that
	// many concurrent first-search workers (internal/sched). The result —
	// paths, colors, counters, traces — is byte-identical to the serial
	// router by construction: speculative searches are validated against
	// the cells actually mutated since the wave froze and re-run serially
	// at their canonical slot when stale. 0 or 1 routes serially.
	NetWorkers int
	// IncrementalDecomp routes full-layer oracle queries (repair-pass
	// offender scans and the final-metrics evaluation) through an
	// incremental engine (internal/decomp.Incremental): after a rip-up
	// changes a few nets, only the dirty region is re-derived and spliced
	// into the previous layer verdict. Output is byte-identical with the
	// lever on or off; the decomp.* work counters differ (the oracle runs
	// over sub-layouts), exactly as with DecompCache. Off by default.
	IncrementalDecomp bool
	// RipupSpec pre-searches the nets of the next rip-up episode (a repair
	// pass's offender list, or the pending-reroute queue) on idle
	// NetWorkers while the serial commit phase drains the episode, against
	// a grid clone with the episode's predicted rip-ups applied. A
	// pre-search substitutes for the serial search only when DirtySet
	// validation proves the serial engine would have read the identical
	// grid and penalty state, so paths, colors, counters and traces stay
	// byte-identical to the serial run. Requires NetWorkers >= 2 to have
	// any effect. Off by default.
	RipupSpec bool
	// SparseSearch answers eligible first searches on the corridor graph
	// (internal/sparse) instead of the dense grid: the search expands
	// corridor nodes derived from obstacle boundaries, snaps back to unit
	// tracks, and is adopted only when repricing under the full dense step
	// cost proves the path dense-optimal (exact-or-fallback, see
	// sparseSearch). Routed results stay DRC-equivalent but are not
	// byte-identical to the dense run wherever several optimal paths tie —
	// the engines break ties differently. Effective only in serial runs
	// (NetWorkers < 2); off by default, so default behavior is
	// byte-identical to previous releases.
	SparseSearch bool
	// SparseMinHPWL is the minimum net half-perimeter (in tracks) for a
	// search to engage the corridor graph under SparseSearch. Below it the
	// dense engine is cheap and runs untouched — which also keeps
	// standard-cell-scale benchmarks byte-identical with the lever on or
	// off. Zero engages every net.
	SparseMinHPWL int
	// DebugWindow logs each failed window-resolve attempt (net, layer,
	// badness before/after, component size) through the observability
	// recorder's debug writer (standard error unless redirected via
	// Obs.SetDebug). The SADP_DEBUG_WINDOW environment variable, documented
	// in the README, turns it on as well.
	DebugWindow bool
	// Obs receives counters, stage timings and (when a trace sink is
	// attached) structured trace events. Nil disables observability at a
	// cost of one predicted branch per record point.
	Obs *obs.Recorder
}

// Defaults returns the paper's parameter settings.
func Defaults() Options {
	return Options{
		Alpha:           1,
		Beta:            1,
		Gamma2:          3,
		FlipThresholdNM: 200,
		MaxRipup:        3,
		ColorFlip:       true,
		WindowCheck:     true,
		FinalRepair:     true,
		DirPenalty:      2,
		MaxExpand:       400000,
		DecompCache:     true,
		SparseMinHPWL:   40,
	}
}

// Result is a completed routing run. Diagnostics that used to live here
// (rip-up counts by cause, flips, blocker rips) are now counters on the
// Options.Obs recorder — pass one and read its Snapshot.
type Result struct {
	Routed, Failed  int
	Paths           map[int][]grid.Cell
	Colors          []map[int]decomp.Color // per layer: net -> color
	WirelengthCells int
	Vias            int
	CPU             time.Duration
	Grid            *grid.Grid
	frags           []*fragstore.Store
	nl              *netlist.Netlist
	caches          []*decomp.Cache       // per-layer memo, nil when routed uncached
	incs            []*decomp.Incremental // per-layer incremental engines (Options.IncrementalDecomp)
}

// Routability returns the fraction of nets routed, in percent.
func (r *Result) Routability() float64 {
	total := r.Routed + r.Failed
	if total == 0 {
		return 100
	}
	return 100 * float64(r.Routed) / float64(total)
}

// Layouts exports the routed, colored design as per-layer decomposition
// inputs for the oracle.
func (r *Result) Layouts() []decomp.Layout {
	out := make([]decomp.Layout, len(r.frags))
	for l := range r.frags {
		ly := decomp.Layout{Rules: r.Grid.Rules, Die: r.Grid.DieNM()}
		nets := r.frags[l].NetIDs()
		for _, n := range nets {
			cellRects := r.frags[l].NetRects(n)
			if len(cellRects) == 0 {
				continue
			}
			nm := make([]geom.Rect, len(cellRects))
			for i, cr := range cellRects {
				nm[i] = r.Grid.CellsToNM(cr)
			}
			ly.Pats = append(ly.Pats, decomp.Pattern{
				Net:   n,
				Color: r.Colors[l][n],
				Rects: nm,
			})
		}
		out[l] = ly
	}
	return out
}

// DecomposeLayersR decomposes every routed layer with the cut-process
// oracle and merges the results, going through the run's per-layer memo
// caches when it was routed with Options.DecompCache — the final-metrics
// evaluation then reuses entries the window checks and repair passes
// already paid for. A nil rec disables counter reporting.
func (r *Result) DecomposeLayersR(rec *obs.Recorder) ([]*decomp.Result, decomp.Totals) {
	layouts := r.Layouts()
	if r.incs != nil {
		// Incremental runs prefer the splice path: the repair passes left
		// each layer's baseline behind, so an unchanged layer is a hit and
		// a late edit re-derives only its dirty region.
		out := make([]*decomp.Result, len(layouts))
		var tot decomp.Totals
		for l, ly := range layouts {
			out[l] = r.incs[l].DecomposeCut(ly, rec)
			tot.Accumulate(out[l])
		}
		return out, tot
	}
	if r.caches == nil {
		return decomp.DecomposeLayersR(layouts, rec)
	}
	out := make([]*decomp.Result, len(layouts))
	var tot decomp.Totals
	for l, ly := range layouts {
		out[l] = r.caches[l].DecomposeCut(ly, rec)
		tot.Accumulate(out[l])
	}
	return out, tot
}

// DecompCacheCheck verifies the run's decomposition caches against the
// deep copies retained under Options.DecompParanoid and reports the first
// cached Result some caller mutated — and, for incremental runs, the
// first spliced verdict that diverged from its full recompute. Nil when
// consistent, when the run was routed uncached, or when DecompParanoid
// was off.
func (r *Result) DecompCacheCheck() error {
	for _, c := range r.caches {
		if err := c.CheckIntegrity(); err != nil {
			return err
		}
	}
	for _, inc := range r.incs {
		if err := inc.Check(); err != nil {
			return err
		}
	}
	return nil
}

// state carries the per-run working set.
type state struct {
	nl     *netlist.Netlist
	ds     rules.Set
	g      *grid.Grid
	eng    *astar.Engine
	ocgs   []*ocg.Graph
	frags  []*fragstore.Store
	colors []map[int]decomp.Color
	locks  []map[int]decomp.Color // colors pinned by the cut-conflict check
	pen    map[grid.Cell]int      // rip-up cost inflation
	// sp/speng are the corridor graph and its pooled engine, live only
	// when Options.SparseSearch is effective (serial run). sp mirrors g:
	// commit and ripup forward every cell mutation.
	sp     *sparse.Graph
	speng  *sparse.Engine
	caches []*decomp.Cache       // per-layer decomposition memo (Options.DecompCache)
	incs   []*decomp.Incremental // per-layer incremental decomposition (Options.IncrementalDecomp)
	opt    Options
	res    *Result
	rec    *obs.Recorder // nil-safe observability recorder
	// inRepair enables the window conflict check during the final repair
	// passes regardless of Options.WindowCheck.
	inRepair bool
	// blockerBudget bounds resource rip-ups; pending queues ripped blockers
	// for rerouting.
	blockerBudget int
	pending       []int
	// Speculative-routing state, live only inside routeWaves (NetWorkers
	// >= 2): dirty records the cells mutated since the current wave's grid
	// snapshot, spec holds the wave's unconsumed concurrent first searches.
	// Both are nil in serial runs; DirtySet methods are nil-safe.
	dirty *sched.DirtySet
	spec  map[int]*specResult
	// ep is the live rip-up episode speculation (Options.RipupSpec with
	// NetWorkers >= 2): pre-searches of the episode's predicted rip-ups
	// running against a frozen grid clone. Nil outside an episode.
	ep *episode
	// winNets and winIDs are windowResolve's per-window net set and sorted
	// id list, cleared and reused across windows instead of reallocated.
	winNets map[int]bool
	winIDs  []int
	// ctx is the run context (RouteCtx). Checked at net and pass
	// boundaries only: a run that is never cancelled behaves — and
	// traces — byte-identically to one routed without a context.
	ctx context.Context
}

// canceled reports whether the run context has been cancelled. Nil-safe
// so Route (no context) costs one comparison per check point.
func (st *state) canceled() bool {
	return st.ctx != nil && st.ctx.Err() != nil
}

// Route runs the overlay-aware detailed router on a netlist.
func Route(nl *netlist.Netlist, ds rules.Set, opt Options) *Result {
	res, _ := RouteCtx(nil, nl, ds, opt)
	return res
}

// RouteCtx is Route under a cancellable run context: the long-lived
// serving path (internal/serve job cancellation, graceful drain) aborts a
// route mid-run by cancelling ctx. Cancellation is observed at net,
// wave and repair-pass boundaries — the cheapest points that still bound
// the abort latency by one net attempt — and the partial Result is
// returned together with ctx.Err(). A run whose context is never
// cancelled (including ctx == nil) is byte-identical to Route: the check
// points read ctx.Err() and change no routing decision.
func RouteCtx(ctx context.Context, nl *netlist.Netlist, ds rules.Set, opt Options) (*Result, error) {
	start := time.Now() //lint:allow wallclock Result.CPU reporting column; never influences routing decisions
	rec := opt.Obs
	if opt.DebugWindow || debugWindowEnv {
		// Preserve the DebugWindow contract (diagnostics reach stderr even
		// with no recorder configured) by promoting to a debug-equipped
		// recorder; obs owns the only sanctioned os.Stderr reference.
		rec = obs.EnsureDebug(rec)
	}
	st := &state{
		nl:  nl,
		ds:  ds,
		g:   nl.BuildGrid(ds),
		opt: opt,
		pen: make(map[grid.Cell]int),
		rec: rec,
		ctx: ctx,
	}
	st.eng = astar.Acquire(st.g)
	defer st.eng.Release()
	st.eng.Rec = rec
	if opt.SparseSearch && opt.NetWorkers < 2 {
		st.sp = sparse.NewGraph(st.g)
		st.speng = sparse.Acquire(st.sp)
		defer st.speng.Release()
	}
	st.ocgs = make([]*ocg.Graph, nl.Layers)
	st.frags = make([]*fragstore.Store, nl.Layers)
	st.colors = make([]map[int]decomp.Color, nl.Layers)
	st.locks = make([]map[int]decomp.Color, nl.Layers)
	for l := 0; l < nl.Layers; l++ {
		st.ocgs[l] = ocg.New()
		st.frags[l] = fragstore.New()
		st.colors[l] = make(map[int]decomp.Color)
		st.locks[l] = make(map[int]decomp.Color)
	}
	if opt.DecompCache {
		st.caches = make([]*decomp.Cache, nl.Layers)
		for l := range st.caches {
			st.caches[l] = decomp.NewCache(0)
			st.caches[l].Paranoid = opt.DecompParanoid
		}
	}
	if opt.IncrementalDecomp {
		st.incs = make([]*decomp.Incremental, nl.Layers)
		for l := range st.incs {
			var c *decomp.Cache
			if st.caches != nil {
				c = st.caches[l]
			}
			st.incs[l] = decomp.NewIncremental(c)
			st.incs[l].Paranoid = opt.DecompParanoid
		}
	}
	st.res = &Result{
		Paths:  make(map[int][]grid.Cell),
		Colors: st.colors,
		Grid:   st.g,
		frags:  st.frags,
		nl:     nl,
		caches: st.caches,
		incs:   st.incs,
	}

	// Net ordering: shortest HPWL first (standard detailed-routing order).
	order := make([]int, len(nl.Nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return nl.Nets[order[i]].HPWL() < nl.Nets[order[j]].HPWL()
	})

	st.blockerBudget = len(nl.Nets) / 2
	stopRoute := rec.Span(obs.StageRoute)
	if opt.NetWorkers > 1 && len(order) > 1 {
		st.routeWaves(order)
	} else {
		for _, id := range order {
			if st.canceled() {
				break
			}
			st.routeNet(id)
		}
	}
	// Reroute nets that were ripped up to free resources. With RipupSpec
	// the queue is one episode: its nets are pre-searched on idle workers
	// while the drain commits serially.
	ep := st.beginPendingEpisode()
	for len(st.pending) > 0 && !st.canceled() {
		id := st.pending[0]
		st.pending = st.pending[1:]
		if _, routed := st.res.Paths[id]; routed {
			continue
		}
		st.routeNet(id)
	}
	st.endEpisode(ep)
	stopRoute()

	// Final full-layout color flipping (line 16 of Fig. 19). A cancelled
	// run skips the finishing passes: its partial Result is discarded by
	// the caller, so polishing it is pure latency before the abort.
	if opt.ColorFlip && !st.canceled() {
		stop := rec.Span(obs.StageColorFlip)
		st.flipAll()
		stop()
	}
	// Final conflict repair against the oracle.
	if opt.FinalRepair && !st.canceled() {
		stop := rec.Span(obs.StageFinalRepair)
		st.repairConflicts()
		stop()
	}

	st.res.CPU = time.Since(start) //lint:allow wallclock Result.CPU reporting column; never influences routing decisions
	if ctx != nil {
		return st.res, ctx.Err()
	}
	return st.res, nil
}

// routeNet routes one net with up to MaxRipup rip-up-and-reroute rounds.
func (st *state) routeNet(id int) {
	n := st.nl.Nets[id]
	bonusUsed := false
	for attempt := 0; ; attempt++ {
		if st.canceled() {
			return
		}
		st.rec.Inc(obs.CtrRouteAttempts)
		st.rec.NetAttempt(id)
		if st.rec.Tracing() {
			st.rec.Trace("route_attempt", obs.I("net", id), obs.I("attempt", attempt))
		}
		path, ok := st.search(id, n)
		if !ok {
			// Resource rip-up: discover the nets blocking every corridor,
			// rip them, and retry; they are rerouted afterwards.
			if st.blockerBudget > 0 {
				if blockers := st.findBlockers(id, n); len(blockers) > 0 && len(blockers) <= 4 {
					st.blockerBudget -= len(blockers)
					for _, b := range blockers {
						st.ripupBlocker(b, id)
					}
					continue
				}
			}
			st.res.Failed++
			st.rec.Inc(obs.CtrNoPath)
			st.rec.NetFail(id)
			st.rec.Observe(obs.HistNetAttempts, int64(attempt+1))
			if st.rec.Tracing() {
				st.rec.Trace("route_fail", obs.I("net", id), obs.S("reason", "no_path"))
			}
			return
		}
		st.commit(id, path)
		odd, infeasible, hot := st.updateGraphs(id)
		bad := odd || infeasible
		cause := ""
		ripCause := obs.RipOddCycle
		if odd {
			st.rec.Inc(obs.CtrRipOddCycle)
			cause = "odd_cycle"
		}
		if infeasible {
			st.rec.Inc(obs.CtrRipInfeasible)
			cause = "infeasible"
			ripCause = obs.RipInfeasible
		}
		if !bad {
			// Color first (pseudo-coloring plus threshold flipping), then
			// check cut conflicts against the oracle; the check may resolve
			// a conflict by re-running the flipping DP with this net's
			// color forced, so coloring must precede it.
			st.colorNewNet(id)
			if st.opt.WindowCheck || st.inRepair {
				var wbad bool
				var whot []grid.Cell
				stop := st.rec.Span(obs.StageWindowCheck)
				wbad, whot = st.windowResolve(id)
				stop()
				if wbad {
					bad = true
					cause = "window"
					ripCause = obs.RipWindow
					hot = append(hot, whot...)
					st.rec.Inc(obs.CtrRipWindow)
				}
			}
		}
		if !bad {
			st.res.Routed++
			st.rec.Observe(obs.HistNetAttempts, int64(attempt+1))
			if st.rec.Tracing() {
				wl, vias := pathLen(path)
				st.rec.Trace("route_ok", obs.I("net", id), obs.I("attempt", attempt),
					obs.I("wl", wl), obs.I("vias", vias))
			}
			return
		}
		// Rip up and reroute with inflated costs along the failed path and
		// sharply inflated costs at the offending cells (lines 7-9).
		st.ripup(id)
		st.rec.Inc(obs.CtrRouteRipups)
		st.rec.NetRipup(id, ripCause)
		if st.rec.Tracing() {
			st.rec.Trace("ripup", obs.I("net", id), obs.S("cause", cause))
		}
		if attempt >= st.opt.MaxRipup {
			// Last resort: rip the neighbors participating in the conflict
			// (they reroute later) and grant one bonus attempt.
			if !bonusUsed && st.blockerBudget > 0 {
				if nbrs := st.hotOwners(id, hot); len(nbrs) > 0 && len(nbrs) <= 3 {
					bonusUsed = true
					st.blockerBudget -= len(nbrs)
					for _, b := range nbrs {
						st.ripupBlocker(b, id)
					}
					attempt--
					continue
				}
			}
			st.res.Failed++
			st.rec.NetFail(id)
			st.rec.Observe(obs.HistNetAttempts, int64(attempt+1))
			if st.rec.Tracing() {
				st.rec.Trace("route_fail", obs.I("net", id), obs.S("reason", "ripup_budget"))
			}
			return
		}
		st.dirty.MarkCells(path)
		st.dirty.MarkCells(hot)
		for _, c := range path {
			st.pen[c] += 2 * st.opt.Alpha * astar.Scale
		}
		for _, c := range hot {
			st.pen[c] += 16 * st.opt.Alpha * astar.Scale
		}
	}
}

// ripupBlocker rips an already-routed net to free resources for net id and
// queues it for rerouting.
func (st *state) ripupBlocker(b, id int) {
	st.ripup(b)
	st.res.Routed--
	st.rec.Inc(obs.CtrBlockerRips)
	st.rec.NetRipup(b, obs.RipBlocker)
	if st.rec.Tracing() {
		st.rec.Trace("ripup", obs.I("net", b), obs.S("cause", "blocker"), obs.I("for", id))
	}
	st.pending = append(st.pending, b)
}

// search runs overlay-aware A* (eq. (5)). Under routeWaves or a rip-up
// episode a validated speculative result — computed by a concurrent
// worker against the very grid and penalty state this call would read —
// substitutes for the search; the serial engine runs otherwise.
func (st *state) search(id int, n netlist.Net) ([]grid.Cell, bool) {
	if sp, ok := st.takeEpisodeSpec(id); ok {
		return sp.path, sp.ok
	}
	if sp, ok := st.takeSpec(id); ok {
		return sp.path, sp.ok
	}
	if st.sparseEligible(n) {
		if path, ok, done := st.sparseSearch(id, n); done {
			return path, ok
		}
		st.rec.Inc(obs.CtrSparseFallbacks)
	}
	cfg := st.searchCfg(id, n)
	path, ok := st.eng.Search(int32(id), n.A.Candidates, n.B.Candidates, cfg)
	st.rec.NetSearch(id, int64(st.eng.Expand))
	return path, ok
}

// searchCfg builds the A* configuration of a net's first search; shared
// by the serial path and the speculative workers so both price steps
// identically.
func (st *state) searchCfg(id int, n netlist.Net) astar.Config {
	return st.searchCfgOn(st.g, st.pen, id, n)
}

// searchCfgOn is searchCfg against an explicit grid and penalty map: the
// rip-up episode workers price their searches on the episode's frozen
// clone while the serial engine keeps mutating the real state.
func (st *state) searchCfgOn(g *grid.Grid, pen map[grid.Cell]int, id int, n netlist.Net) astar.Config {
	pins := make(map[grid.Cell]bool, len(n.A.Candidates)+len(n.B.Candidates))
	for _, c := range n.A.Candidates {
		pins[c] = true
	}
	for _, c := range n.B.Candidates {
		pins[c] = true
	}
	return astar.Config{
		WL:        st.opt.Alpha,
		Via:       st.opt.Beta,
		MaxExpand: st.opt.MaxExpand,
		Step:      st.stepCostOn(g, pen, int32(id), pins),
	}
}

// hotOwners returns the routed nets occupying the conflict hot cells (and
// their planar neighborhood), excluding id.
func (st *state) hotOwners(id int, hot []grid.Cell) []int {
	seen := map[int]bool{}
	var out []int
	add := func(c grid.Cell) {
		if !st.g.In(c) {
			return
		}
		if v := st.g.At(c); v >= 0 && int(v) != id && !seen[int(v)] {
			seen[int(v)] = true
			out = append(out, int(v))
		}
	}
	for _, c := range hot {
		add(c)
		add(grid.Cell{X: c.X + 1, Y: c.Y, L: c.L})
		add(grid.Cell{X: c.X - 1, Y: c.Y, L: c.L})
		add(grid.Cell{X: c.X, Y: c.Y + 1, L: c.L})
		add(grid.Cell{X: c.X, Y: c.Y - 1, L: c.L})
	}
	return out
}

// findBlockers runs a soft-occupancy search to identify which routed nets
// stand between the pins of an unroutable net.
func (st *state) findBlockers(id int, n netlist.Net) []int {
	pins := make(map[grid.Cell]bool)
	cfg := astar.Config{
		WL:           st.opt.Alpha,
		Via:          st.opt.Beta,
		MaxExpand:    st.opt.MaxExpand,
		Step:         st.stepCost(int32(id), pins),
		SoftOccupied: 40 * st.opt.Alpha * astar.Scale,
	}
	path, ok := st.eng.Search(int32(id), n.A.Candidates, n.B.Candidates, cfg)
	st.rec.NetSearch(id, int64(st.eng.Expand))
	if !ok {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, c := range path {
		if v := st.g.At(c); v >= 0 && int(v) != id && !seen[int(v)] {
			seen[int(v)] = true
			out = append(out, int(v))
		}
	}
	return out
}

// stepCost adds the rip-up penalties and the type-2-b geometry discourager:
// stepping toward a cell whose forward continuation is blocked by another
// net means the path would either end tip-to-side against that net (a type
// 2-b scenario with unavoidable overlay) or corner alongside it.
func (st *state) stepCost(id int32, pins map[grid.Cell]bool) astar.StepCost {
	return st.stepCostOn(st.g, st.pen, id, pins)
}

// stepCostOn is stepCost against an explicit grid and penalty map (see
// searchCfgOn). Reads only immutable per-run configuration besides its
// arguments, so episode workers can call the returned closure
// concurrently with the serial engine.
func (st *state) stepCostOn(g *grid.Grid, pen map[grid.Cell]int, id int32, pins map[grid.Cell]bool) astar.StepCost {
	return func(from, to grid.Cell) (int, bool) {
		extra := pen[to]
		if to.L != from.L && (pins[from] || pins[to]) {
			// A via directly at a pin leaves a bare one-cell stub — the
			// most conflict-prone SADP geometry (it can be flanked by cut
			// patterns on opposite sides). Push the via off the pin.
			extra += 6 * st.opt.Alpha * astar.Scale
		}
		if to.L == from.L {
			if st.opt.Gamma2 > 0 {
				ahead := grid.Cell{X: to.X + (to.X - from.X), Y: to.Y + (to.Y - from.Y), L: to.L}
				if g.In(ahead) {
					if v := g.At(ahead); v >= 0 && v != id {
						extra += st.opt.Gamma2 * st.opt.Alpha
					}
				}
			}
			if st.opt.DirPenalty > 0 {
				horizStep := to.X != from.X
				if horizStep != (to.L%2 == 0) {
					extra += st.opt.DirPenalty
				}
			}
		}
		return extra, true
	}
}

// commit occupies the path and registers fragments.
func (st *state) commit(id int, path []grid.Cell) {
	st.dirty.MarkCells(path)
	for _, c := range path {
		st.g.Occupy(c, int32(id))
		if st.sp != nil {
			st.sp.Occupy(c)
		}
	}
	st.res.Paths[id] = path
	byLayer := fragstore.CellsByLayer(path, st.nl.Layers)
	for l, cells := range byLayer {
		if len(cells) == 0 {
			continue
		}
		st.frags[l].Add(id, geom.FragmentCells(cells))
	}
	wl, vias := pathLen(path)
	st.res.WirelengthCells += wl
	st.res.Vias += vias
}

// ripup releases a net's cells, fragments, graph edges and colors.
func (st *state) ripup(id int) {
	st.dirty.MarkCells(st.res.Paths[id])
	for _, c := range st.res.Paths[id] {
		st.g.Release(c)
		if st.sp != nil {
			st.sp.Release(c)
		}
	}
	wl, vias := pathLen(st.res.Paths[id])
	st.res.WirelengthCells -= wl
	st.res.Vias -= vias
	delete(st.res.Paths, id)
	for l := 0; l < st.nl.Layers; l++ {
		st.frags[l].RemoveNet(id)
		st.ocgs[l].RemoveNet(id)
		delete(st.colors[l], id)
		delete(st.locks[l], id)
	}
}

func pathLen(path []grid.Cell) (wl, vias int) {
	for i := 1; i < len(path); i++ {
		if path[i].L != path[i-1].L {
			vias++
		} else {
			wl++
		}
	}
	return wl, vias
}

// updateGraphs detects the new net's potential overlay scenarios on every
// layer and merges them into the per-layer constraint graphs; it reports
// whether a hard odd cycle or an infeasible pair arose (lines 5-6), plus
// the cells implicated, for targeted cost inflation.
func (st *state) updateGraphs(id int) (odd, infeasible bool, hot []grid.Cell) {
	reach := 3 // cells: beyond d_indep, nothing classifies
	for l := 0; l < st.nl.Layers; l++ {
		mine := st.frags[l].NetRects(id)
		for _, mr := range mine {
			rect := mr
			st.frags[l].Query(mr.Expand(reach), func(f fragstore.Frag) {
				prof, ok := scenario.Classify(rect, f.Rect, st.ds)
				if !ok {
					return
				}
				var o, inf bool
				if f.Net == id {
					// Self-interaction: both fragments necessarily share a
					// color, so a scenario whose same-color assignments are
					// forbidden (e.g. a sub-d_core U-turn, type 1-a) makes
					// the path undecomposable: treat like an infeasible
					// edge and reroute.
					inf = prof.Forbidden[scenario.CC] && prof.Forbidden[scenario.SS]
				} else {
					o, inf = st.ocgs[l].AddScenario(id, f.Net, prof)
				}
				if o || inf {
					for y := rect.Y0; y < rect.Y1; y++ {
						for x := rect.X0; x < rect.X1; x++ {
							hot = append(hot, grid.Cell{X: x, Y: y, L: l})
						}
					}
				}
				odd = odd || o
				infeasible = infeasible || inf
			})
		}
	}
	return odd, infeasible, hot
}

// colorNewNet pseudo-colors the net on every layer and triggers component
// color flipping when the induced overlay exceeds the threshold
// (lines 11-14).
func (st *state) colorNewNet(id int) {
	for l := 0; l < st.nl.Layers; l++ {
		if !st.frags[l].Has(id) {
			continue
		}
		c := colorflip.PseudoColorLocked(st.ocgs[l], id, st.colors[l], st.locks[l])
		st.colors[l][id] = c
		if !st.opt.ColorFlip {
			continue
		}
		if induced := st.inducedOverlay(l, id); induced > st.opt.FlipThresholdNM {
			nets := st.ocgs[l].Component(id)
			r := colorflip.OptimizeLockedR(st.ocgs[l], nets, st.locks[l], st.rec)
			for n, col := range r.Colors {
				st.colors[l][n] = col
			}
			if r.Feasible {
				st.rec.Inc(obs.CtrFlipsApplied)
			} else {
				st.rec.Inc(obs.CtrFlipsRejected)
			}
			if st.rec.Tracing() {
				feasible := 0
				if r.Feasible {
					feasible = 1
				}
				st.rec.Trace("color_flip", obs.I("net", id), obs.I("layer", l),
					obs.I("comp", len(nets)), obs.I("overlay_nm", induced),
					obs.I("feasible", feasible))
				st.rec.Trace("overlay_delta", obs.I("net", id), obs.I("layer", l),
					obs.I("before_nm", induced), obs.I("after_nm", st.inducedOverlay(l, id)))
			}
		}
	}
}

// inducedOverlay sums the side-overlay cost of the net's edges at current
// colors on one layer.
func (st *state) inducedOverlay(l, id int) int {
	total := 0
	cn := st.colors[l][id]
	for _, e := range st.ocgs[l].Edges(id) {
		o := e.Other(id)
		co, ok := st.colors[l][o]
		if !ok || co == decomp.Unassigned {
			continue
		}
		p := e.ProfileFor(id)
		total += p.Cost[scenario.Of(cn, co)]
	}
	return total
}

// flipAll runs the color-flipping DP on every component of every layer.
func (st *state) flipAll() {
	for l := 0; l < st.nl.Layers; l++ {
		visited := make(map[int]bool)
		nets := make([]int, 0, len(st.colors[l]))
		for n := range st.colors[l] {
			nets = append(nets, n)
		}
		sort.Ints(nets)
		for _, n := range nets {
			if visited[n] {
				continue
			}
			comp := st.ocgs[l].Component(n)
			for _, v := range comp {
				visited[v] = true
			}
			r := colorflip.OptimizeLockedR(st.ocgs[l], comp, st.locks[l], st.rec)
			for v, col := range r.Colors {
				st.colors[l][v] = col
			}
		}
	}
}
