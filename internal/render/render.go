// Package render draws decomposed SADP layouts as SVG (and coarse ASCII)
// for the reproduction of the paper's Figs. 21-22 (Section IV, routed
// layout comparison): target patterns colored by mask, assistant cores,
// merge bridges, and overlay segments.
package render

import (
	"fmt"
	"io"
	"strings"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
)

// SVG writes an SVG rendering of one layer's decomposition restricted to
// the given window (nm coordinates).
func SVG(w io.Writer, ly decomp.Layout, res *decomp.Result, window geom.Rect) error {
	scale := 0.5 // px per nm
	width := float64(window.W()) * scale
	height := float64(window.H()) * scale
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="%.0f" height="%.0f" fill="#fafafa"/>`+"\n", width, height)

	put := func(r geom.Rect, fill string, opacity float64) {
		c := r.Intersect(window)
		if c.Empty() {
			return
		}
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
			float64(c.X0-window.X0)*scale,
			// SVG y grows downward; flip so the layout reads like the paper.
			height-float64(c.Y1-window.Y0)*scale,
			float64(c.W())*scale, float64(c.H())*scale, fill, opacity)
	}

	// Material first (assists, bridges), then targets, then overlays.
	for _, m := range res.Materials {
		switch m.Kind {
		case decomp.MatAssist:
			put(m.Rect, "#b0b0b0", 0.7)
		case decomp.MatBridge:
			put(m.Rect, "#e8a33d", 0.8)
		}
	}
	for _, p := range ly.Pats {
		fill := "#3b6fb6" // core: blue
		if p.Color == decomp.Second {
			fill = "#3f9e4d" // second: green
		}
		for _, r := range p.Rects {
			put(r, fill, 1.0)
		}
	}
	// Overlay segments as red strokes on the boundary.
	for _, o := range res.Overlays {
		if o.Tip {
			continue
		}
		put(overlayRect(o), "#d43a3a", 1.0)
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// overlayRect thickens an overlay boundary segment into a thin rect for
// drawing.
func overlayRect(o decomp.Overlay) geom.Rect {
	const t = 6 // nm stroke
	switch o.Side {
	case decomp.SideLeft:
		return geom.Rect{X0: o.Rect.X0 - t, Y0: o.Lo, X1: o.Rect.X0, Y1: o.Hi}
	case decomp.SideRight:
		return geom.Rect{X0: o.Rect.X1, Y0: o.Lo, X1: o.Rect.X1 + t, Y1: o.Hi}
	case decomp.SideBottom:
		return geom.Rect{X0: o.Lo, Y0: o.Rect.Y0 - t, X1: o.Hi, Y1: o.Rect.Y0}
	default:
		return geom.Rect{X0: o.Lo, Y0: o.Rect.Y1, X1: o.Hi, Y1: o.Rect.Y1 + t}
	}
}

// ASCII renders the window as a track-grid character map: C/S for core and
// second patterns, a for assists, b for bridges, '!' marks cells whose
// pattern carries a (non-tip) overlay.
func ASCII(ly decomp.Layout, res *decomp.Result, window geom.Rect, pitch int) string {
	w := (window.W() + pitch - 1) / pitch
	h := (window.H() + pitch - 1) / pitch
	gridc := make([][]byte, h)
	for i := range gridc {
		gridc[i] = []byte(strings.Repeat(".", w))
	}
	put := func(r geom.Rect, ch byte, force bool) {
		c := r.Intersect(window)
		if c.Empty() {
			return
		}
		for y := (c.Y0 - window.Y0) / pitch; y <= (c.Y1-1-window.Y0)/pitch && y < h; y++ {
			for x := (c.X0 - window.X0) / pitch; x <= (c.X1-1-window.X0)/pitch && x < w; x++ {
				if y < 0 || x < 0 {
					continue
				}
				if force || gridc[y][x] == '.' {
					gridc[y][x] = ch
				}
			}
		}
	}
	for _, m := range res.Materials {
		switch m.Kind {
		case decomp.MatAssist:
			put(m.Rect, 'a', false)
		case decomp.MatBridge:
			put(m.Rect, 'b', false)
		}
	}
	for _, p := range ly.Pats {
		ch := byte('C')
		if p.Color == decomp.Second {
			ch = 'S'
		}
		for _, r := range p.Rects {
			put(r, ch, true)
		}
	}
	for _, o := range res.Overlays {
		if o.Tip {
			continue
		}
		put(overlayRect(o).Expand(2), '!', true)
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- { // top row first
		b.Write(gridc[y])
		b.WriteByte('\n')
	}
	return b.String()
}
