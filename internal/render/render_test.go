package render

import (
	"bytes"
	"strings"
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

func demoLayout() (decomp.Layout, *decomp.Result) {
	ds := rules.Node10nm()
	ly := decomp.Layout{
		Rules: ds,
		Die:   geom.Rect{X0: -200, Y0: -200, X1: 800, Y1: 800},
		Pats: []decomp.Pattern{
			{Net: 0, Color: decomp.Core, Rects: []geom.Rect{{X0: 0, Y0: 200, X1: 180, Y1: 220}}},
			{Net: 1, Color: decomp.Second, Rects: []geom.Rect{{X0: 0, Y0: 240, X1: 180, Y1: 260}}},
		},
	}
	return ly, decomp.DecomposeCut(ly)
}

func TestSVGWellFormed(t *testing.T) {
	ly, res := demoLayout()
	var buf bytes.Buffer
	if err := SVG(&buf, ly, res, geom.Rect{X0: -50, Y0: 150, X1: 250, Y1: 320}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(s, "#3b6fb6") || !strings.Contains(s, "#3f9e4d") {
		t.Fatal("core/second colors missing")
	}
}

func TestASCIIShowsPatterns(t *testing.T) {
	ly, res := demoLayout()
	out := ASCII(ly, res, geom.Rect{X0: -40, Y0: 160, X1: 260, Y1: 320}, ly.Rules.Pitch())
	if !strings.Contains(out, "C") || !strings.Contains(out, "S") {
		t.Fatalf("patterns missing:\n%s", out)
	}
	if !strings.Contains(out, "a") {
		t.Fatalf("assist material missing:\n%s", out)
	}
}

func TestASCIIMarksOverlays(t *testing.T) {
	ds := rules.Node10nm()
	// Second wire at the die floor: its bottom flank cannot fit -> overlay.
	ly := decomp.Layout{
		Rules: ds,
		Die:   geom.Rect{X0: 0, Y0: 0, X1: 600, Y1: 600},
		Pats: []decomp.Pattern{
			{Net: 0, Color: decomp.Second, Rects: []geom.Rect{{X0: 0, Y0: 0, X1: 180, Y1: 20}}},
		},
	}
	res := decomp.DecomposeCut(ly)
	out := ASCII(ly, res, geom.Rect{X0: 0, Y0: 0, X1: 300, Y1: 200}, ds.Pitch())
	if !strings.Contains(out, "!") {
		t.Fatalf("overlay marker missing:\n%s", out)
	}
}
