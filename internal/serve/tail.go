package serve

import "sync"

// tail is an append-only, line-oriented broadcast buffer: the job's
// obs.TraceSink writes JSONL into it, and any number of SSE subscribers
// read complete lines from any offset, blocking on Wait for more. It is
// the in-memory analogue of tailing the trace file — subscribers that
// connect late replay from the start (or any ?from offset) and then
// follow live.
type tail struct {
	mu     sync.Mutex
	lines  []string
	part   []byte
	closed bool
	wake   chan struct{}
}

func newTail() *tail {
	return &tail{wake: make(chan struct{})}
}

// Write implements io.Writer for the trace sink, splitting the byte
// stream into complete lines. The sink emits exactly one full line per
// call, but partial writes are buffered correctly anyway.
func (t *tail) Write(p []byte) (int, error) {
	n := len(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		// The run is over; late writes (there should be none) are dropped
		// rather than resurrecting subscribers.
		return n, nil
	}
	appended := false
	for len(p) > 0 {
		i := -1
		for k, b := range p {
			if b == '\n' {
				i = k
				break
			}
		}
		if i < 0 {
			t.part = append(t.part, p...)
			break
		}
		line := append(t.part, p[:i]...)
		t.part = nil
		t.lines = append(t.lines, string(line))
		appended = true
		p = p[i+1:]
	}
	if appended {
		t.notifyLocked()
	}
	return n, nil
}

// Close marks the stream complete (job reached a terminal state) and
// wakes every subscriber. Idempotent.
func (t *tail) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if len(t.part) > 0 {
		t.lines = append(t.lines, string(t.part))
		t.part = nil
	}
	t.closed = true
	t.notifyLocked()
}

func (t *tail) notifyLocked() {
	close(t.wake)
	t.wake = make(chan struct{})
}

// Lines returns the complete lines at and after offset from, plus whether
// the stream is closed. The returned slice aliases the internal buffer,
// which is append-only — safe to read concurrently.
func (t *tail) Lines(from int) ([]string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.lines) {
		return nil, t.closed
	}
	return t.lines[from:], t.closed
}

// Len returns the number of complete lines and whether the stream is
// closed.
func (t *tail) Len() (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines), t.closed
}

// Wait returns a channel closed at the next append or Close. Fetch the
// channel BEFORE checking Lines: the generation swap makes the check-
// then-wait sequence race-free.
func (t *tail) Wait() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c := make(chan struct{})
		close(c)
		return c
	}
	return t.wake
}
