package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"sadproute/internal/netlist"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// State is a job's lifecycle state. Transitions are strictly
// queued -> running -> {done, failed, canceled}, with the shortcut
// queued -> canceled for jobs cancelled before a worker claims them.
type State string

// Job lifecycle states (docs/sadpd-api.md "Job lifecycle").
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request is the POST /v1/jobs body: the netlist in the internal/netlist
// text format, optional design rules (default: the 10 nm node set) and
// optional router-option overrides applied on top of the paper defaults.
type Request struct {
	// Name is an optional client label echoed in statuses.
	Name string `json:"name,omitempty"`
	// Netlist is the routing instance in the internal/netlist text format
	// (the same bytes cmd/benchgen emits and cmd/sadproute -in consumes).
	Netlist string `json:"netlist"`
	// Rules overrides the design rules; nil selects rules.Node10nm().
	Rules *RulesPayload `json:"rules,omitempty"`
	// Options overrides router parameters; nil fields keep the paper
	// defaults (router.Defaults).
	Options *OptionsPayload `json:"options,omitempty"`
	// Trace controls the per-job deterministic JSONL trace that feeds the
	// SSE events endpoint. Nil means true; false saves the trace overhead
	// and the events stream carries state transitions only.
	Trace *bool `json:"trace,omitempty"`
}

// RulesPayload mirrors rules.Set with JSON names (docs/sadpd-api.md).
type RulesPayload struct {
	WLine    int `json:"w_line"`
	WSpacer  int `json:"w_spacer"`
	WCut     int `json:"w_cut"`
	WCore    int `json:"w_core"`
	DCut     int `json:"d_cut"`
	DCore    int `json:"d_core"`
	DOverlap int `json:"d_overlap"`
}

// OptionsPayload carries optional router.Options overrides. Pointer
// fields distinguish "absent, keep the default" from explicit zeroes.
type OptionsPayload struct {
	Alpha           *int  `json:"alpha,omitempty"`
	Beta            *int  `json:"beta,omitempty"`
	Gamma2          *int  `json:"gamma2,omitempty"`
	FlipThresholdNM *int  `json:"flip_threshold_nm,omitempty"`
	MaxRipup        *int  `json:"max_ripup,omitempty"`
	ColorFlip       *bool `json:"color_flip,omitempty"`
	WindowCheck     *bool `json:"window_check,omitempty"`
	FinalRepair     *bool `json:"final_repair,omitempty"`
	DirPenalty      *int  `json:"dir_penalty,omitempty"`
	MaxExpand       *int  `json:"max_expand,omitempty"`
	DecompCache     *bool `json:"decomp_cache,omitempty"`
	NetWorkers      *int  `json:"net_workers,omitempty"`
}

// apply overlays the non-nil fields onto opt.
func (p *OptionsPayload) apply(opt *router.Options) {
	if p == nil {
		return
	}
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setBool := func(dst *bool, src *bool) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&opt.Alpha, p.Alpha)
	setInt(&opt.Beta, p.Beta)
	setInt(&opt.Gamma2, p.Gamma2)
	setInt(&opt.FlipThresholdNM, p.FlipThresholdNM)
	setInt(&opt.MaxRipup, p.MaxRipup)
	setBool(&opt.ColorFlip, p.ColorFlip)
	setBool(&opt.WindowCheck, p.WindowCheck)
	setBool(&opt.FinalRepair, p.FinalRepair)
	setInt(&opt.DirPenalty, p.DirPenalty)
	setInt(&opt.MaxExpand, p.MaxExpand)
	setBool(&opt.DecompCache, p.DecompCache)
	setInt(&opt.NetWorkers, p.NetWorkers)
}

// SubmitResponse is the 202 body of POST /v1/jobs, snapshotted at
// admission time (so it is deterministic: a worker may already be running
// the job by the time the bytes hit the wire).
type SubmitResponse struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	QueuePos int    `json:"queue_pos"`
}

// JobStatus is the GET /v1/jobs/{id} body and the SSE state/end payload.
type JobStatus struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
	TraceEvents int    `json:"trace_events"`
}

// Summary is the deterministic headline of a finished job: the same
// numbers cmd/sadproute prints, minus every wall-clock field.
type Summary struct {
	Design           string  `json:"design"`
	Nets             int     `json:"nets"`
	GridW            int     `json:"grid_w"`
	GridH            int     `json:"grid_h"`
	Layers           int     `json:"layers"`
	Routed           int     `json:"routed"`
	Failed           int     `json:"failed"`
	RoutabilityPct   float64 `json:"routability_pct"`
	WirelengthCells  int     `json:"wirelength_cells"`
	Vias             int     `json:"vias"`
	SideOverlayUnits float64 `json:"side_overlay_units"`
	SideOverlayNM    int     `json:"side_overlay_nm"`
	TipOverlayNM     int     `json:"tip_overlay_nm"`
	HardOverlays     int     `json:"hard_overlays"`
	Conflicts        int     `json:"cut_conflicts"`
	Violations       int     `json:"violations"`
}

// Result is the GET /v1/jobs/{id}/result body. ResultText is the
// canonical deterministic dump (RenderResultText) — byte-identical to
// cmd/sadproute -result on the same input.
type Result struct {
	ID         string           `json:"id"`
	State      State            `json:"state"`
	Summary    Summary          `json:"summary"`
	Counters   map[string]int64 `json:"counters"`
	ResultText string           `json:"result_text"`
}

// Job is one routing job owned by the Store. All mutable fields are
// guarded by mu; the parsed inputs (nl, ds, opt) are immutable after
// compile.
type Job struct {
	id  string
	req Request

	nl      *netlist.Netlist
	ds      rules.Set
	opt     router.Options
	traceOn bool
	tail    *tail

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  State
	errMsg string
	result *Result
}

// compileRequest validates a Request into a runnable job payload.
func compileRequest(req Request) (*netlist.Netlist, rules.Set, router.Options, error) {
	var opt router.Options
	if strings.TrimSpace(req.Netlist) == "" {
		return nil, rules.Set{}, opt, fmt.Errorf("netlist: empty")
	}
	nl, err := netlist.Read(strings.NewReader(req.Netlist))
	if err != nil {
		return nil, rules.Set{}, opt, err
	}
	ds := rules.Node10nm()
	if req.Rules != nil {
		ds = rules.Set{
			WLine:    req.Rules.WLine,
			WSpacer:  req.Rules.WSpacer,
			WCut:     req.Rules.WCut,
			WCore:    req.Rules.WCore,
			DCut:     req.Rules.DCut,
			DCore:    req.Rules.DCore,
			DOverlap: req.Rules.DOverlap,
		}
		if err := ds.Validate(); err != nil {
			return nil, rules.Set{}, opt, err
		}
	}
	opt = router.Defaults()
	req.Options.apply(&opt)
	if opt.MaxRipup < 0 || opt.MaxExpand < 0 || opt.NetWorkers < 0 {
		return nil, rules.Set{}, opt, fmt.Errorf("options: max_ripup, max_expand and net_workers must be >= 0")
	}
	return nl, ds, opt, nil
}

// bind attaches the run context. Called once at admission (and again for
// journal-recovered jobs, which cross process boundaries).
func (j *Job) bind(base context.Context) {
	j.ctx, j.cancel = context.WithCancel(base)
}

// claim moves a queued job to running; false means the job was cancelled
// while waiting and the worker must skip it.
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// Status snapshots the job for the status endpoint and SSE payloads.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	n, _ := j.tail.Len()
	return JobStatus{
		ID:          j.id,
		Name:        j.req.Name,
		State:       j.state,
		Error:       j.errMsg,
		TraceEvents: n,
	}
}

// StateNow returns the current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// ResultNow returns the stored result, if the job is done.
func (j *Job) ResultNow() (*Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.result != nil
}

// abort cancels the job's context if it is not already terminal. Used by
// the drain deadline path; returns whether a cancellation was issued.
func (j *Job) abort() bool {
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal || j.cancel == nil {
		return false
	}
	j.cancel()
	return true
}
