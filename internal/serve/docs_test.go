package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestAPIDocCoversEndpoints keeps docs/sadpd-api.md in lockstep with the
// server: every registered route (routeTable) must be named in the doc,
// and so must every error code the handlers emit. Adding an endpoint or
// error code without documenting it fails here.
func TestAPIDocCoversEndpoints(t *testing.T) {
	b, err := os.ReadFile("../../docs/sadpd-api.md")
	if err != nil {
		t.Fatalf("docs/sadpd-api.md must exist: %v", err)
	}
	doc := string(b)
	for _, route := range routeTable {
		if !strings.Contains(doc, route) {
			t.Errorf("docs/sadpd-api.md does not document route %q", route)
		}
	}
	for _, code := range []string{
		"bad_request", "too_large", "not_found", "no_result",
		"already_terminal", "queue_full", "draining", "no_stream",
	} {
		if !strings.Contains(doc, "`"+code+"`") {
			t.Errorf("docs/sadpd-api.md does not document error code %q", code)
		}
	}
	for _, state := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		if !strings.Contains(doc, "`"+string(state)+"`") {
			t.Errorf("docs/sadpd-api.md does not document job state %q", state)
		}
	}
}

// TestExamplesFresh replays the checked-in examples/api/request.json
// against a fresh server and byte-compares the live responses with the
// checked-in goldens: the worked example in docs/sadpd-api.md can never
// silently drift from what the daemon actually answers. (The CI smoke
// step runs the same comparison over real HTTP against the sadpd
// binary.)
func TestExamplesFresh(t *testing.T) {
	reqBody, err := os.ReadFile("../../examples/api/request.json")
	if err != nil {
		t.Fatalf("examples/api/request.json must exist: %v", err)
	}
	wantAck, err := os.ReadFile("../../examples/api/submit-response.json")
	if err != nil {
		t.Fatalf("examples/api/submit-response.json must exist: %v", err)
	}
	wantRes, err := os.ReadFile("../../examples/api/result.json")
	if err != nil {
		t.Fatalf("examples/api/result.json must exist: %v", err)
	}

	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, ack)
	}
	if !bytes.Equal(ack, wantAck) {
		t.Errorf("submit ack drifted from examples/api/submit-response.json:\ngot  %s\nwant %s", ack, wantAck)
	}

	if st := waitTerminal(t, ts, "j1"); st.State != StateDone {
		t.Fatalf("example job ended %s (%s)", st.State, st.Error)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/j1/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	res, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if !bytes.Equal(res, wantRes) {
		t.Errorf("result drifted from examples/api/result.json (got %d bytes, want %d) — regenerate the goldens if the change is intended", len(res), len(wantRes))
	}
}

// TestOperationsDocExists keeps the runbook satellite honest: the doc
// must exist and cross-link the pieces it promises.
func TestOperationsDocExists(t *testing.T) {
	b, err := os.ReadFile("../../docs/operations.md")
	if err != nil {
		t.Fatalf("docs/operations.md must exist: %v", err)
	}
	doc := string(b)
	for _, want := range []string{"sadpd", "sadpload", "bench-ledger.md", "sadpd-api.md", "/debug/metrics", "drain"} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/operations.md does not mention %q", want)
		}
	}
}
