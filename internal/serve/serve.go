// Package serve is the routing-as-a-service layer behind cmd/sadpd: a
// stdlib-only HTTP job server that accepts netlist+rules routing jobs as
// JSON, runs them on a bounded worker pool with FIFO admission control,
// and exposes status, results, cancellation and live progress (SSE over
// each job's deterministic internal/obs trace) through the API documented
// in docs/sadpd-api.md.
//
// The package is one of the sanctioned goroutine pools (sadplint
// `goroutine` rule): its worker pool mirrors internal/sched and
// internal/bench — fixed worker count, FIFO hand-off, results keyed by
// job, never by scheduling order. Each job routes with a private
// obs.Recorder and renders its result through RenderResultText, the same
// canonical renderer cmd/sadproute -result uses, so a job's routed result
// is byte-identical to the one-shot CLI run of the same input (proved by
// TestServeSoakByteIdentical and the CI sadpd smoke step).
//
// Determinism note: the server never reads the wall clock. Job IDs are
// sequential, journal records carry no timestamps, and drain deadlines
// come in as caller contexts (cmd/sadpd owns the timer), keeping the
// wallclock lint rule intact with zero allowances.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"sadproute/internal/obs"
	"sadproute/internal/router"
)

// Config parameterizes a Server. The zero value is usable: DefaultWorkers
// routing workers, DefaultQueueDepth queued jobs, no journal.
type Config struct {
	// Workers is the number of concurrent routing workers (jobs routed at
	// once). <= 0 selects DefaultWorkers. Each job may additionally use
	// Options.NetWorkers intra-job workers; see docs/operations.md for
	// sizing the product.
	Workers int
	// QueueDepth bounds the FIFO admission queue (jobs accepted but not
	// yet running). <= 0 selects DefaultQueueDepth. A submit that finds
	// the queue full is rejected with 429 and a Retry-After header.
	QueueDepth int
	// Journal, when non-nil, receives one JSONL record per job submission
	// and per terminal transition, enabling restart recovery via Recover.
	Journal io.Writer
	// BaseCtx is the parent of every job's run context; cancelling it
	// aborts all jobs. Nil means context.Background().
	BaseCtx context.Context
}

// Defaults for Config's zero fields.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 16
	// retryAfterSeconds is the Retry-After hint on 429 responses: the
	// queue drains one routing run at a time, so "shortly" is honest and
	// a fixed value keeps responses deterministic.
	retryAfterSeconds = 1
)

// Server is the sadpd HTTP daemon core: job store + bounded worker pool +
// http.Handler. Create with New, optionally Recover a journal, then serve.
type Server struct {
	cfg   Config
	store *Store
	pool  *pool
	mux   *http.ServeMux

	draining atomic.Bool

	// Service counters for /debug/metrics (server lifecycle, not routing —
	// per-job routing metrics live in each job's obs.Recorder snapshot).
	submitted        atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	canceled         atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	running          atomic.Int64
}

// runGate, when non-nil, makes every job run block until the gate yields
// a value or the job's context is cancelled. Test hook: lets the admission
// and drain tests hold jobs "running" deterministically.
var runGate chan struct{}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BaseCtx == nil {
		cfg.BaseCtx = context.Background()
	}
	s := &Server{
		cfg:   cfg,
		store: NewStore(cfg.Journal),
		pool:  newPool(cfg.QueueDepth),
	}
	s.mux = s.routes()
	s.pool.start(cfg.Workers, s.runJob)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Recover replays a journal written by a previous process into the store
// and re-enqueues every job that never reached a terminal state. Call
// once, before serving traffic.
func (s *Server) Recover(r io.Reader) error {
	recovered, err := s.store.Replay(r)
	if err != nil {
		return err
	}
	for _, j := range recovered {
		j.bind(s.cfg.BaseCtx)
		s.submitted.Add(1)
		if !s.pool.tryEnqueue(j) {
			s.store.Finish(j, StateFailed, "recovery: admission queue full", nil)
			s.failed.Add(1)
		}
	}
	return nil
}

// Drain performs the graceful-shutdown protocol: stop admitting (new
// submits get 503), let the workers finish every queued and running job,
// and — if ctx expires first — cancel whatever is still in flight and
// wait for the workers to observe it. It returns nil on a clean drain and
// an error naming the number of force-cancelled jobs otherwise.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.pool.close()
	done := make(chan struct{})
	go func() {
		s.pool.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	forced := 0
	for _, j := range s.store.List() {
		if j.abort() {
			forced++
		}
	}
	<-done
	return fmt.Errorf("drain deadline exceeded: force-cancelled %d in-flight job(s)", forced)
}

// runJob executes one admitted job: claim (skipping jobs cancelled while
// queued), route under the job context, evaluate, render, finish.
func (s *Server) runJob(j *Job) {
	if !j.claim() {
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	if g := runGate; g != nil {
		select {
		case <-g:
		case <-j.ctx.Done():
		}
	}
	res, err := s.routeJob(j)
	switch {
	case err != nil && j.ctx.Err() != nil:
		s.store.Finish(j, StateCanceled, "canceled: "+j.ctx.Err().Error(), nil)
		s.canceled.Add(1)
	case err != nil:
		s.store.Finish(j, StateFailed, err.Error(), nil)
		s.failed.Add(1)
	default:
		s.store.Finish(j, StateDone, "", res)
		s.completed.Add(1)
	}
}

// routeJob runs the routing pipeline for one job — the exact sequence of
// cmd/sadproute (RouteCtx, then DecomposeLayersR on the same recorder) so
// the counters, trace and rendered result are byte-identical to the
// one-shot CLI. A panic from the routing core is converted to an error:
// one poisoned job must not take the daemon down.
func (s *Server) routeJob(j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	rec := obs.New()
	if j.traceOn {
		rec.SetTrace(j.tail)
	}
	opt := j.opt
	opt.Obs = rec
	rres, rerr := router.RouteCtx(j.ctx, j.nl, j.ds, opt)
	if rerr != nil {
		return nil, rerr
	}
	_, tot := rres.DecomposeLayersR(rec)
	snap := rec.Snapshot()
	if terr := rec.TraceErr(); terr != nil {
		return nil, fmt.Errorf("trace: %w", terr)
	}
	sum := Summarize(j.nl, rres, tot)
	return &Result{
		ID:         j.id,
		State:      StateDone,
		Summary:    sum,
		Counters:   countersMap(&snap),
		ResultText: RenderResultText(j.nl, rres, tot, &snap),
	}, nil
}

// countersMap flattens a snapshot's counters into a name->value map for
// the result JSON (encoding/json emits map keys sorted, so the rendering
// is deterministic).
func countersMap(snap *obs.Snapshot) map[string]int64 {
	m := make(map[string]int64)
	snap.EachCounter(func(name string, v int64) { m[name] = v })
	return m
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// apiError is the uniform error body (docs/sadpd-api.md "Errors").
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, status, apiError{Error: msg, Code: code})
}
