package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// routeTable lists every endpoint the server registers, in documentation
// order. TestAPIDocCoversEndpoints keeps docs/sadpd-api.md in lockstep
// with it, so a route added here without documentation fails the suite.
var routeTable = []string{
	"POST /v1/jobs",
	"GET /v1/jobs",
	"GET /v1/jobs/{id}",
	"GET /v1/jobs/{id}/result",
	"POST /v1/jobs/{id}/cancel",
	"GET /v1/jobs/{id}/events",
	"GET /healthz",
	"GET /debug/metrics",
}

// routes builds the mux from routeTable's patterns.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	return mux
}

// maxRequestBytes bounds a submit body: netlists are text, and the
// largest paper-scale instance (28k nets) serializes well under this.
const maxRequestBytes = 64 << 20

// handleSubmit is POST /v1/jobs: validate, admit (FIFO, bounded), 202.
// 429 + Retry-After when the queue is full, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; not accepting jobs")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	if len(body) > maxRequestBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", maxRequestBytes))
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "parsing JSON: "+err.Error())
		return
	}
	j, err := s.store.Add(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	j.bind(s.cfg.BaseCtx)
	// Snapshot the ack before the pool can touch the job, so the response
	// is deterministic (always "queued", position at admission).
	pos, _ := s.pool.depth()
	ack := SubmitResponse{ID: j.id, State: StateQueued, QueuePos: pos}
	if !s.pool.tryEnqueue(j) {
		s.store.Finish(j, StateCanceled, "rejected: admission queue full", nil)
		s.rejectedFull.Add(1)
		writeError(w, http.StatusTooManyRequests, "queue_full",
			"admission queue is full; retry after the Retry-After delay")
		return
	}
	s.submitted.Add(1)
	writeJSON(w, http.StatusAccepted, ack)
}

// handleList is GET /v1/jobs: every job's status in admission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.List()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, writing 404 on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"))
	}
	return j, ok
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult is GET /v1/jobs/{id}/result: 200 with the Result once the
// job is done; 409 with the current state otherwise.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	res, ok := j.ResultNow()
	if !ok {
		st := j.Status()
		msg := fmt.Sprintf("job %s has no result: state %s", st.ID, st.State)
		if st.Error != "" {
			msg += ": " + st.Error
		}
		writeError(w, http.StatusConflict, "no_result", msg)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleCancel is POST /v1/jobs/{id}/cancel: a queued job is finished as
// canceled immediately; a running job has its context cancelled and the
// worker records the terminal state (RouteCtx observes the cancellation
// at the next net boundary). Cancelling a terminal job is a 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	if st.Terminal() {
		writeError(w, http.StatusConflict, "already_terminal",
			fmt.Sprintf("job %s is already %s", j.id, st))
		return
	}
	// Cancel the context first: if a worker claims the job between our
	// state read and Finish, its RouteCtx aborts immediately anyway.
	if j.cancel != nil {
		j.cancel()
	}
	s.store.Finish(j, StateCanceled, "canceled by client", nil)
	s.canceled.Add(1)
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents is GET /v1/jobs/{id}/events: Server-Sent Events. Grammar
// (docs/sadpd-api.md "SSE event grammar"): one `state` event on
// subscribe, one `trace` event per JSONL trace line (id: = 1-based line
// number; resume with ?from=N or Last-Event-ID), and a final `end` event
// carrying the terminal JobStatus.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "no_stream", "response writer does not support streaming")
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "from must be a non-negative integer")
			return
		}
		from = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			from = n
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sse := func(id int, event string, data any) {
		if id > 0 {
			fmt.Fprintf(w, "id: %d\n", id)
		}
		b, _ := json.Marshal(data)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	}
	sse(0, "state", j.Status())
	fl.Flush()

	i := from
	for {
		wake := j.tail.Wait()
		lines, closed := j.tail.Lines(i)
		if len(lines) > 0 {
			for _, line := range lines {
				i++
				if i > 0 {
					fmt.Fprintf(w, "id: %d\n", i)
				}
				// Trace lines are already JSON; stream them verbatim.
				fmt.Fprintf(w, "event: trace\ndata: %s\n\n", line)
			}
			fl.Flush()
			continue
		}
		if closed {
			sse(0, "end", j.Status())
			fl.Flush()
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	jerr := ""
	if err := s.store.JournalErr(); err != nil {
		jerr = err.Error()
	}
	writeJSON(w, http.StatusOK, struct {
		Status       string `json:"status"`
		JournalError string `json:"journal_error,omitempty"`
	}{Status: status, JournalError: jerr})
}

// serverMetrics is the GET /debug/metrics body: service-level lifecycle
// counters. Per-job routing metrics live in each job's result counters.
type serverMetrics struct {
	JobsSubmitted     int64 `json:"jobs_submitted"`
	JobsCompleted     int64 `json:"jobs_completed"`
	JobsFailed        int64 `json:"jobs_failed"`
	JobsCanceled      int64 `json:"jobs_canceled"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	JobsRunning       int64 `json:"jobs_running"`
	QueueDepth        int   `json:"queue_depth"`
	QueueCapacity     int   `json:"queue_capacity"`
	Workers           int   `json:"workers"`
	Draining          bool  `json:"draining"`
}

// handleMetrics is GET /debug/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.pool.depth()
	writeJSON(w, http.StatusOK, serverMetrics{
		JobsSubmitted:     s.submitted.Load(),
		JobsCompleted:     s.completed.Load(),
		JobsFailed:        s.failed.Load(),
		JobsCanceled:      s.canceled.Load(),
		RejectedQueueFull: s.rejectedFull.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),
		JobsRunning:       s.running.Load(),
		QueueDepth:        depth,
		QueueCapacity:     capacity,
		Workers:           s.cfg.Workers,
		Draining:          s.draining.Load(),
	})
}
