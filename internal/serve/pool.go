package serve

import "sync"

// pool is the bounded FIFO routing-worker pool: a buffered channel is the
// admission queue, a fixed set of goroutines drains it in order. It joins
// internal/sched and internal/bench on the sadplint goroutine-rule
// allowlist under the same discipline those pools follow — fixed worker
// count, results attached to the job (never to scheduling order), and the
// routing work itself single-goroutine per job (intra-job parallelism
// goes through internal/sched's own deterministic pool).
type pool struct {
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newPool(depth int) *pool {
	return &pool{queue: make(chan *Job, depth)}
}

// start launches the workers. Each worker runs admitted jobs one at a
// time until the queue is closed and empty.
func (p *pool) start(workers int, run func(*Job)) {
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				run(j)
			}
		}()
	}
}

// tryEnqueue admits a job if the queue has room and the pool is open.
// Admission is serialized by p.mu, and only admitters send, so the
// full-check and the send cannot race each other or a close.
func (p *pool) tryEnqueue(j *Job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- j:
		return true
	default:
		return false
	}
}

// depth returns the number of queued (not yet claimed) jobs and the
// queue capacity.
func (p *pool) depth() (int, int) {
	return len(p.queue), cap(p.queue)
}

// close stops admission; workers exit after draining the queue.
// Idempotent.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.queue)
}

// wait blocks until every worker has exited (only meaningful after
// close).
func (p *pool) wait() { p.wg.Wait() }
