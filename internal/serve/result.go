package serve

import (
	"fmt"
	"strings"

	"sadproute/internal/decomp"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/router"
)

// Summarize folds a routing result and its oracle totals into the
// deterministic Summary (no wall-clock fields).
func Summarize(nl *netlist.Netlist, res *router.Result, tot decomp.Totals) Summary {
	return Summary{
		Design:           nl.Name,
		Nets:             len(nl.Nets),
		GridW:            nl.W,
		GridH:            nl.H,
		Layers:           nl.Layers,
		Routed:           res.Routed,
		Failed:           res.Failed,
		RoutabilityPct:   res.Routability(),
		WirelengthCells:  res.WirelengthCells,
		Vias:             res.Vias,
		SideOverlayUnits: tot.SideOverlayUnits,
		SideOverlayNM:    tot.SideOverlayNM,
		TipOverlayNM:     tot.TipOverlayNM,
		HardOverlays:     tot.HardOverlays,
		Conflicts:        tot.Conflicts,
		Violations:       tot.Violations,
	}
}

// RenderResultText is the canonical deterministic dump of a routed
// result: summary, every net's committed path, every per-layer color
// assignment, and the obs counter/gauge/histogram block — and nothing
// wall-clock. cmd/sadproute -result writes the same bytes for the same
// input, which is what lets the soak test and the CI sadpd smoke step
// diff a served job against the one-shot CLI for byte-identity.
//
// Iteration is canonical throughout: nets ascend by ID (membership tested
// against the Paths map, never ranged), layers ascend, and the counter
// block is obs.Snapshot.CountersString (declaration order).
func RenderResultText(nl *netlist.Netlist, res *router.Result, tot decomp.Totals, snap *obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s nets %d grid %dx%dx%d\n", nl.Name, len(nl.Nets), nl.W, nl.H, nl.Layers)
	fmt.Fprintf(&b, "routed %d failed %d routability %.2f%%\n", res.Routed, res.Failed, res.Routability())
	fmt.Fprintf(&b, "wirelength_cells %d vias %d\n", res.WirelengthCells, res.Vias)
	fmt.Fprintf(&b, "side_overlay units %.1f nm %d tip_nm %d\n",
		tot.SideOverlayUnits, tot.SideOverlayNM, tot.TipOverlayNM)
	fmt.Fprintf(&b, "hard_overlays %d cut_conflicts %d violations %d\n",
		tot.HardOverlays, tot.Conflicts, tot.Violations)
	b.WriteString("begin paths\n")
	for id := 0; id < len(nl.Nets); id++ {
		path, ok := res.Paths[id]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "path %d", id)
		for _, c := range path {
			fmt.Fprintf(&b, " (%d,%d,%d)", c.X, c.Y, c.L)
		}
		b.WriteByte('\n')
	}
	b.WriteString("end paths\n")
	b.WriteString("begin colors\n")
	for l, colors := range res.Colors {
		for id := 0; id < len(nl.Nets); id++ {
			c, ok := colors[id]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "color %d %d %d\n", l, id, int(c))
		}
	}
	b.WriteString("end colors\n")
	b.WriteString("begin counters\n")
	b.WriteString(snap.CountersString())
	b.WriteString("end counters\n")
	return b.String()
}
