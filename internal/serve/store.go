package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// journalRecord is one line of the JSONL job journal. Two operations:
//
//	{"op":"submit","id":"j1","req":{...}}          — job admitted
//	{"op":"end","id":"j1","state":"done", ...}     — job reached a terminal state
//
// Records carry no timestamps (determinism contract), so a journal of a
// deterministic workload is itself reproducible. Recovery semantics: a
// job with a submit record and no end record was in flight when the
// process died and is re-enqueued on Recover.
type journalRecord struct {
	Op     string  `json:"op"`
	ID     string  `json:"id"`
	Req    Request `json:"req,omitempty"`
	State  State   `json:"state,omitempty"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Store is the in-memory job table, with an optional append-only JSONL
// journal for restart recovery.
type Store struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	seq     int
	journal io.Writer
	jerr    error
}

// NewStore builds a Store; journal may be nil (no persistence).
func NewStore(journal io.Writer) *Store {
	return &Store{jobs: make(map[string]*Job), journal: journal}
}

// JournalErr returns the first journal write error, if any. Jobs keep
// running when the journal fails; the error is surfaced in /healthz so
// operators notice the lost recovery guarantee.
func (s *Store) JournalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jerr
}

// appendLocked journals one record. Callers hold s.mu.
func (s *Store) appendLocked(rec journalRecord) {
	if s.journal == nil || s.jerr != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.jerr = err
		return
	}
	b = append(b, '\n')
	if _, err := s.journal.Write(b); err != nil {
		s.jerr = err
	}
}

// Add validates and admits a request: parse, assign the next sequential
// ID, journal the submission. The job is returned in StateQueued, not yet
// bound to a context or enqueued — the Server does both under its
// admission lock.
func (s *Store) Add(req Request) (*Job, error) {
	nl, ds, opt, err := compileRequest(req)
	if err != nil {
		return nil, err
	}
	traceOn := req.Trace == nil || *req.Trace
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		id:      "j" + strconv.Itoa(s.seq),
		req:     req,
		nl:      nl,
		ds:      ds,
		opt:     opt,
		traceOn: traceOn,
		tail:    newTail(),
		state:   StateQueued,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.appendLocked(journalRecord{Op: "submit", ID: j.id, Req: req})
	return j, nil
}

// Get looks a job up by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every job in admission order.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Finish moves a job to a terminal state, stores the result, journals the
// transition, and closes the job's trace tail (releasing SSE
// subscribers). Finishing an already-terminal job is a no-op, which makes
// the cancel/worker race benign.
func (s *Store) Finish(j *Job, state State, errMsg string, res *Result) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.result = res
	j.mu.Unlock()
	j.tail.Close()
	s.mu.Lock()
	s.appendLocked(journalRecord{Op: "end", ID: j.id, State: state, Error: errMsg, Result: res})
	s.mu.Unlock()
}

// Replay loads a journal written by a previous process. Jobs whose
// terminal record is present are restored read-only (status and result
// queryable); jobs that never ended are returned, in admission order, for
// the caller to re-enqueue. The store's ID sequence resumes after the
// highest replayed ID, so new submissions never collide.
func (s *Store) Replay(r io.Reader) ([]*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recovered []*Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
		}
		switch rec.Op {
		case "submit":
			nl, ds, opt, err := compileRequest(rec.Req)
			if err != nil {
				return nil, fmt.Errorf("journal line %d: job %s: %w", lineNo, rec.ID, err)
			}
			j := &Job{
				id:      rec.ID,
				req:     rec.Req,
				nl:      nl,
				ds:      ds,
				opt:     opt,
				traceOn: rec.Req.Trace == nil || *rec.Req.Trace,
				tail:    newTail(),
				state:   StateQueued,
			}
			if _, dup := s.jobs[rec.ID]; dup {
				return nil, fmt.Errorf("journal line %d: duplicate submit for %s", lineNo, rec.ID)
			}
			s.jobs[rec.ID] = j
			s.order = append(s.order, rec.ID)
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "j")); err == nil && n > s.seq {
				s.seq = n
			}
			recovered = append(recovered, j)
		case "end":
			j, ok := s.jobs[rec.ID]
			if !ok {
				return nil, fmt.Errorf("journal line %d: end for unknown job %s", lineNo, rec.ID)
			}
			j.state = rec.State
			j.errMsg = rec.Error
			j.result = rec.Result
			j.tail.Close()
			for i, r := range recovered {
				if r == j {
					recovered = append(recovered[:i], recovered[i+1:]...)
					break
				}
			}
		default:
			return nil, fmt.Errorf("journal line %d: unknown op %q", lineNo, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recovered, nil
}
