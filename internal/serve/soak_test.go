package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sadproute/internal/router"
)

// soakJobs and soakNetWorkers pin the composition the acceptance bar
// names: at least 8 concurrent jobs, each routing with 4 intra-job net
// workers through internal/sched.
const (
	soakJobs       = 8
	soakNetWorkers = 4
)

// TestServeSoakByteIdentical is the composition proof for the daemon: N
// concurrent jobs, each itself parallel (net_workers), must every one
// produce a result_text byte-identical to a serial in-process route of
// the same input. Run under -race in CI, this is simultaneously the data-
// race soak for the pool/store/tail machinery and the determinism check
// for nested parallelism (job pool × internal/sched waves).
func TestServeSoakByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	srv := New(Config{Workers: soakJobs, QueueDepth: soakJobs * 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	// Distinct inputs per job: different seeds and sizes, so scheduling
	// skew between jobs cannot mask a cross-job state leak.
	type jobCase struct {
		text string
		want string
	}
	cases := make([]jobCase, soakJobs)
	for i := range cases {
		text := genNetlistText(t, "soak", 16+2*i, 24+2*(i%4), int64(100+i))
		// The expected text is the one-shot CLI pipeline with the SAME
		// options the job will compile (net_workers included: the result's
		// counter block records scheduler activity, which legitimately
		// differs between serial and wave-scheduled runs). The variable
		// under test is the daemon's own concurrency — eight of these
		// in flight at once must not perturb a single byte.
		opt := router.Defaults()
		opt.NetWorkers = soakNetWorkers
		cases[i] = jobCase{text: text, want: expectedResultText(t, text, opt)}
	}

	nw := soakNetWorkers
	var wg sync.WaitGroup
	results := make([]string, soakJobs)
	errs := make([]error, soakJobs)
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ack := submitJob(t, ts, Request{
				Name:    "soak",
				Netlist: cases[i].text,
				Options: &OptionsPayload{NetWorkers: &nw},
			})
			st := waitTerminal(t, ts, ack.ID)
			if st.State != StateDone {
				errs[i] = errState{st}
				return
			}
			var res Result
			if code := getJSON(t, ts, "/v1/jobs/"+ack.ID+"/result", &res); code != http.StatusOK {
				errs[i] = errStatusCode(code)
				return
			}
			results[i] = res.ResultText
		}(i)
	}
	wg.Wait()

	for i := range cases {
		if errs[i] != nil {
			t.Errorf("job %d: %v", i, errs[i])
			continue
		}
		if results[i] != cases[i].want {
			t.Errorf("job %d: served result_text (%d bytes) diverges from the serial in-process route (%d bytes)",
				i, len(results[i]), len(cases[i].want))
		}
	}
}

type errState struct{ st JobStatus }

func (e errState) Error() string { return "job ended " + string(e.st.State) + ": " + e.st.Error }

type errStatusCode int

func (e errStatusCode) Error() string { return "result endpoint status " + http.StatusText(int(e)) }
