package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// genNetlistText renders a small generated benchmark to the text format a
// Request carries.
func genNetlistText(t *testing.T, name string, nets, tracks int, seed int64) string {
	t.Helper()
	nl := bench.Generate(bench.Spec{
		Name: name, Nets: nets, Tracks: tracks, Layers: 3,
		Seed: seed, PinCandidates: 1, AvgHPWL: tracks / 4, Blockages: 2,
	})
	var b strings.Builder
	if err := nl.Write(&b); err != nil {
		t.Fatalf("writing netlist: %v", err)
	}
	return b.String()
}

// expectedResultText routes the same netlist text in-process (the
// one-shot CLI pipeline) and renders the canonical dump.
func expectedResultText(t *testing.T, nltext string, opt router.Options) string {
	t.Helper()
	nl, err := netlist.Read(strings.NewReader(nltext))
	if err != nil {
		t.Fatalf("parsing netlist: %v", err)
	}
	rec := obs.New()
	opt.Obs = rec
	res := router.Route(nl, rules.Node10nm(), opt)
	_, tot := res.DecomposeLayersR(rec)
	snap := rec.Snapshot()
	return RenderResultText(nl, res, tot, &snap)
}

// submitJob POSTs a request and decodes the ack, failing the test on a
// non-202.
func submitJob(t *testing.T, ts *httptest.Server, req Request) SubmitResponse {
	t.Helper()
	ack, status := trySubmit(t, ts, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", status)
	}
	return ack
}

// trySubmit POSTs a request and returns the ack (zero on rejection) and
// the HTTP status.
func trySubmit(t *testing.T, ts *httptest.Server, req Request) (SubmitResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var ack SubmitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatalf("decoding ack: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return ack, resp.StatusCode
}

// waitTerminal polls the status endpoint until the job reaches a terminal
// state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// getJSON GETs a path and decodes into v, returning the status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && err != io.EOF {
			t.Fatalf("decoding %s: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestSubmitRouteResult is the happy path: submit, run, fetch the result,
// and check the served result_text is byte-identical to the one-shot
// in-process pipeline on the same input.
func TestSubmitRouteResult(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	nltext := genNetlistText(t, "happy", 24, 32, 7)
	ack := submitJob(t, ts, Request{Name: "happy", Netlist: nltext})
	if ack.ID == "" || ack.State != StateQueued {
		t.Fatalf("unexpected ack: %+v", ack)
	}
	st := waitTerminal(t, ts, ack.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.TraceEvents == 0 {
		t.Error("trace enabled by default, but no trace events recorded")
	}

	var res Result
	if code := getJSON(t, ts, "/v1/jobs/"+ack.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: status %d, want 200", code)
	}
	if res.State != StateDone || res.ID != ack.ID {
		t.Fatalf("unexpected result envelope: id=%s state=%s", res.ID, res.State)
	}
	if res.Summary.Nets != 24 || res.Summary.Design != "happy" {
		t.Errorf("summary mismatch: %+v", res.Summary)
	}
	if len(res.Counters) == 0 {
		t.Error("result carries no counters")
	}

	want := expectedResultText(t, nltext, router.Defaults())
	if res.ResultText != want {
		t.Errorf("result_text diverges from the one-shot pipeline\nserved %d bytes, want %d bytes", len(res.ResultText), len(want))
	}

	// The list endpoint sees the job in admission order.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts, "/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != ack.ID {
		t.Errorf("list mismatch: %+v", list.Jobs)
	}
}

// TestSubmitValidation covers the 400 paths: bad JSON, empty netlist,
// malformed netlist, bad rules, bad options.
func TestSubmitValidation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	post := func(body string) (int, apiError) {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var ae apiError
		json.NewDecoder(resp.Body).Decode(&ae)
		return resp.StatusCode, ae
	}
	for name, body := range map[string]string{
		"bad JSON":          "{not json",
		"empty netlist":     `{"netlist":""}`,
		"malformed netlist": `{"netlist":"grid bogus"}`,
		"bad rules":         `{"netlist":"name x\ngrid 8 8 2\nnet a (0,0,0) -> (2,2,0)\n","rules":{"w_line":-1}}`,
		"bad options":       `{"netlist":"name x\ngrid 8 8 2\nnet a (0,0,0) -> (2,2,0)\n","options":{"net_workers":-2}}`,
	} {
		code, ae := post(body)
		if code != http.StatusBadRequest || ae.Code != "bad_request" {
			t.Errorf("%s: got status %d code %q, want 400 bad_request", name, code, ae.Code)
		}
	}
	if code := getJSON(t, ts, "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, ts, "/v1/jobs/nope/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown job result: status %d, want 404", code)
	}
}

// gatedServer builds a server whose jobs block at the runGate until the
// test feeds the gate or cancels the job. Cleanup restores the hook after
// the pool has fully drained (no worker can still read it).
func gatedServer(t *testing.T, workers, depth int) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	runGate = gate
	srv := New(Config{Workers: workers, QueueDepth: depth})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		close(gate) // release any still-blocked jobs so the drain finishes
		srv.Drain(context.Background())
		runGate = nil
	})
	return srv, ts, gate
}

// waitState polls until the job reaches the given (possibly non-terminal)
// state.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts, "/v1/jobs/"+id, &st)
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestQueueOverflow429 fills the worker and the queue, then expects the
// next submission to be rejected with 429 + Retry-After, and admission to
// resume once the queue drains.
func TestQueueOverflow429(t *testing.T) {
	_, ts, gate := gatedServer(t, 1, 1)
	nltext := genNetlistText(t, "over", 4, 16, 3)

	running := submitJob(t, ts, Request{Netlist: nltext}) // claimed by the worker, blocked at the gate
	waitState(t, ts, running.ID, StateRunning)
	queued := submitJob(t, ts, Request{Netlist: nltext}) // fills the depth-1 queue

	body, _ := json.Marshal(Request{Netlist: nltext})
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var ae apiError
	json.NewDecoder(resp.Body).Decode(&ae)
	if ae.Code != "queue_full" {
		t.Errorf("error code = %q, want queue_full", ae.Code)
	}

	var m serverMetrics
	getJSON(t, ts, "/debug/metrics", &m)
	if m.RejectedQueueFull != 1 || m.QueueDepth != 1 || m.QueueCapacity != 1 || m.JobsRunning != 1 {
		t.Errorf("metrics after overflow: %+v", m)
	}

	// Release both jobs through the gate; admission capacity returns.
	gate <- struct{}{}
	gate <- struct{}{}
	waitTerminal(t, ts, running.ID)
	waitTerminal(t, ts, queued.ID)
	retry := submitJob(t, ts, Request{Netlist: nltext})
	gate <- struct{}{}
	if st := waitTerminal(t, ts, retry.ID); st.State != StateDone {
		t.Fatalf("post-drain submit ended %s, want done", st.State)
	}
}

// TestCancelQueued cancels a job before any worker claims it: immediate
// canceled state, the worker skips it, and its result stays a 409.
func TestCancelQueued(t *testing.T) {
	_, ts, gate := gatedServer(t, 1, 2)
	nltext := genNetlistText(t, "cq", 4, 16, 5)

	running := submitJob(t, ts, Request{Netlist: nltext})
	waitState(t, ts, running.ID, StateRunning)
	queued := submitJob(t, ts, Request{Netlist: nltext})

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != StateCanceled {
		t.Fatalf("cancel queued: status %d state %s", resp.StatusCode, st.State)
	}

	// Cancelling again is a 409 already_terminal.
	resp, err = ts.Client().Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
	var ae apiError
	json.NewDecoder(resp.Body).Decode(&ae)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || ae.Code != "already_terminal" {
		t.Fatalf("re-cancel: status %d code %q, want 409 already_terminal", resp.StatusCode, ae.Code)
	}

	var res Result
	if code := getJSON(t, ts, "/v1/jobs/"+queued.ID+"/result", &res); code != http.StatusConflict {
		t.Errorf("canceled job result: status %d, want 409", code)
	}

	gate <- struct{}{} // release the running job; the canceled one is skipped, not run
	waitTerminal(t, ts, running.ID)
}

// TestCancelRunning cancels a claimed job: the context cancellation
// propagates into RouteCtx (the gate releases on ctx.Done) and the job
// lands canceled with no result.
func TestCancelRunning(t *testing.T) {
	_, ts, _ := gatedServer(t, 1, 2)
	nltext := genNetlistText(t, "cr", 4, 16, 9)

	running := submitJob(t, ts, Request{Netlist: nltext})
	waitState(t, ts, running.ID, StateRunning)

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+running.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: status %d", resp.StatusCode)
	}
	st := waitTerminal(t, ts, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("job ended %s, want canceled", st.State)
	}
	if code := getJSON(t, ts, "/v1/jobs/"+running.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("result after cancel: status %d, want 409", code)
	}
}

// TestDrainClean: with no work in flight, Drain returns nil, submissions
// get 503 draining, and /healthz reports draining.
func TestDrainClean(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	nltext := genNetlistText(t, "dc", 4, 16, 11)
	ack := submitJob(t, ts, Request{Netlist: nltext})
	waitTerminal(t, ts, ack.ID)

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if _, code := trySubmit(t, ts, Request{Netlist: nltext}); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
	var h struct {
		Status string `json:"status"`
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "draining" {
		t.Errorf("healthz status %q, want draining", h.Status)
	}
}

// TestDrainDeadline: a job held running past the drain deadline is
// force-cancelled, Drain reports it, and the job lands canceled.
func TestDrainDeadline(t *testing.T) {
	srv, ts, _ := gatedServer(t, 1, 2)
	nltext := genNetlistText(t, "dd", 4, 16, 13)

	running := submitJob(t, ts, Request{Netlist: nltext})
	waitState(t, ts, running.ID, StateRunning)

	dctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already expired: forces the abort path immediately
	err := srv.Drain(dctx)
	if err == nil || !strings.Contains(err.Error(), "force-cancelled 1") {
		t.Fatalf("drain error = %v, want force-cancelled 1", err)
	}
	st := waitTerminal(t, ts, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("force-drained job ended %s, want canceled", st.State)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    int
	event string
	data  string
}

// readSSE parses a complete SSE stream (the job is terminal, so the
// handler writes everything and returns).
func readSSE(t *testing.T, ts *httptest.Server, path string) []sseEvent {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []sseEvent
	cur := sseEvent{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return events
}

// TestSSEEvents locks the SSE grammar: state, then one trace event per
// JSONL line with 1-based ids, then end with the terminal status; ?from
// resumes mid-stream.
func TestSSEEvents(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	nltext := genNetlistText(t, "sse", 6, 16, 17)
	ack := submitJob(t, ts, Request{Netlist: nltext})
	waitTerminal(t, ts, ack.ID)

	events := readSSE(t, ts, "/v1/jobs/"+ack.ID+"/events")
	if len(events) < 3 {
		t.Fatalf("want >= 3 events (state, traces, end), got %d", len(events))
	}
	if events[0].event != "state" {
		t.Errorf("first event %q, want state", events[0].event)
	}
	last := events[len(events)-1]
	if last.event != "end" {
		t.Fatalf("last event %q, want end", last.event)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(last.data), &st); err != nil || st.State != StateDone {
		t.Fatalf("end payload %q (err %v), want done status", last.data, err)
	}
	traces := events[1 : len(events)-1]
	for i, ev := range traces {
		if ev.event != "trace" {
			t.Fatalf("event %d is %q, want trace", i+1, ev.event)
		}
		if ev.id != i+1 {
			t.Fatalf("trace event %d has id %d, want %d", i, ev.id, i+1)
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ev.data), &m); err != nil {
			t.Fatalf("trace event %d is not JSON: %v", i, err)
		}
	}
	if st.TraceEvents != len(traces) {
		t.Errorf("status reports %d trace events, stream carried %d", st.TraceEvents, len(traces))
	}

	// Resume from an offset: skip the first half of the trace.
	from := len(traces) / 2
	resumed := readSSE(t, ts, fmt.Sprintf("/v1/jobs/%s/events?from=%d", ack.ID, from))
	gotTraces := 0
	for _, ev := range resumed {
		if ev.event == "trace" {
			if gotTraces == 0 && ev.id != from+1 {
				t.Errorf("resumed stream starts at id %d, want %d", ev.id, from+1)
			}
			gotTraces++
		}
	}
	if gotTraces != len(traces)-from {
		t.Errorf("resumed stream carried %d traces, want %d", gotTraces, len(traces)-from)
	}

	// SSE on a no-trace job still delivers state and end.
	off := false
	ack2 := submitJob(t, ts, Request{Netlist: nltext, Trace: &off})
	waitTerminal(t, ts, ack2.ID)
	events2 := readSSE(t, ts, "/v1/jobs/"+ack2.ID+"/events")
	if len(events2) != 2 || events2[0].event != "state" || events2[1].event != "end" {
		t.Errorf("no-trace stream: %+v, want exactly state+end", events2)
	}

	if code := getJSON(t, ts, "/v1/jobs/"+ack.ID+"/events?from=-1", nil); code != http.StatusBadRequest {
		t.Errorf("negative from: status %d, want 400", code)
	}
}

// TestJournalRecovery replays a journal with one finished and one
// unfinished job: the finished one is restored read-only with its result,
// the unfinished one is re-enqueued and runs to completion, and new IDs
// continue after the replayed sequence.
func TestJournalRecovery(t *testing.T) {
	nltext := genNetlistText(t, "jr", 6, 16, 19)

	// Build the journal with a bare Store — no goroutines, fully
	// deterministic: submit j1, finish j1, submit j2 (never finished).
	var journal bytes.Buffer
	st := NewStore(&journal)
	j1, err := st.Add(Request{Name: "first", Netlist: nltext})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	st.Finish(j1, StateDone, "", &Result{ID: j1.id, State: StateDone, ResultText: "restored-result"})
	if _, err := st.Add(Request{Name: "second", Netlist: nltext}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := st.JournalErr(); err != nil {
		t.Fatalf("journal: %v", err)
	}

	srv := New(Config{Workers: 1, QueueDepth: 4})
	if err := srv.Recover(bytes.NewReader(journal.Bytes())); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	// j1 restored terminal, result intact.
	var res Result
	if code := getJSON(t, ts, "/v1/jobs/j1/result", &res); code != http.StatusOK {
		t.Fatalf("restored result: status %d", code)
	}
	if res.ResultText != "restored-result" {
		t.Errorf("restored result_text %q", res.ResultText)
	}

	// j2 re-enqueued and runs to done.
	if st := waitTerminal(t, ts, "j2"); st.State != StateDone {
		t.Fatalf("recovered job ended %s (%s), want done", st.State, st.Error)
	}

	// The ID sequence resumes after the replayed jobs.
	ack := submitJob(t, ts, Request{Netlist: nltext})
	if ack.ID != "j3" {
		t.Errorf("post-recovery ID %s, want j3", ack.ID)
	}
}

// TestReplayErrors covers the journal corruption paths.
func TestReplayErrors(t *testing.T) {
	nltext := genNetlistText(t, "re", 4, 16, 23)
	sub := func(id string) string {
		b, _ := json.Marshal(journalRecord{Op: "submit", ID: id, Req: Request{Netlist: nltext}})
		return string(b) + "\n"
	}
	for name, journal := range map[string]string{
		"bad JSON":    "{oops\n",
		"unknown op":  `{"op":"frobnicate","id":"j1"}` + "\n",
		"dup submit":  sub("j1") + sub("j1"),
		"orphan end":  `{"op":"end","id":"j9","state":"done"}` + "\n",
		"bad netlist": `{"op":"submit","id":"j1","req":{"netlist":"grid bogus"}}` + "\n",
	} {
		st := NewStore(nil)
		if _, err := st.Replay(strings.NewReader(journal)); err == nil {
			t.Errorf("%s: Replay accepted a corrupt journal", name)
		}
	}
}

// TestTail covers the broadcast buffer edge cases directly: partial
// writes, offsets past the end, wake-on-append, wake-on-close.
func TestTail(t *testing.T) {
	tl := newTail()
	tl.Write([]byte("alpha\nbe"))
	tl.Write([]byte("ta\n"))
	if lines, closed := tl.Lines(0); closed || len(lines) != 2 || lines[0] != "alpha" || lines[1] != "beta" {
		t.Fatalf("Lines(0) = %v closed=%v", lines, closed)
	}
	if lines, _ := tl.Lines(5); lines != nil {
		t.Errorf("Lines(5) = %v, want nil", lines)
	}

	wake := tl.Wait()
	select {
	case <-wake:
		t.Fatal("wake channel closed with no append")
	default:
	}
	tl.Write([]byte("gamma\n"))
	select {
	case <-wake:
	case <-time.After(5 * time.Second):
		t.Fatal("append did not wake the subscriber")
	}

	tl.Write([]byte("partial-tail"))
	tl.Close()
	lines, closed := tl.Lines(0)
	if !closed || len(lines) != 4 || lines[3] != "partial-tail" {
		t.Fatalf("after close: lines=%v closed=%v", lines, closed)
	}
	select {
	case <-tl.Wait():
	default:
		t.Error("Wait after close should return a closed channel")
	}
	tl.Close() // idempotent
	tl.Write([]byte("late\n"))
	if n, _ := tl.Len(); n != 4 {
		t.Errorf("write after close appended: len=%d", n)
	}
}
