package grid

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

func TestOccupancy(t *testing.T) {
	g := New(8, 8, 2, rules.Node10nm())
	c := Cell{X: 3, Y: 4, L: 1}
	if g.At(c) != Free {
		t.Fatal("fresh grid must be free")
	}
	g.Occupy(c, 42)
	if g.At(c) != 42 || !g.FreeOrNet(c, 42) || g.FreeOrNet(c, 7) {
		t.Fatal("occupancy semantics wrong")
	}
	g.Release(c)
	if g.At(c) != Free {
		t.Fatal("release failed")
	}
}

func TestBlockIsSticky(t *testing.T) {
	g := New(8, 8, 1, rules.Node10nm())
	g.Block(0, geom.Rect{X0: 2, Y0: 2, X1: 4, Y1: 4})
	c := Cell{X: 3, Y: 3}
	if g.At(c) != Blocked {
		t.Fatal("block failed")
	}
	g.Release(c)
	if g.At(c) != Blocked {
		t.Fatal("release must not clear blockage")
	}
	st := g.Stat()
	if st.BlockedCells != 4 || st.FreeCells != 60 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCellGeometry(t *testing.T) {
	ds := rules.Node10nm()
	g := New(8, 8, 1, ds)
	r := g.CellRect(2, 3)
	if r != (geom.Rect{X0: 80, Y0: 120, X1: 100, Y1: 140}) {
		t.Fatalf("cell rect: %v", r)
	}
	// Adjacent cells leave exactly w_spacer between metals.
	r2 := g.CellRect(3, 3)
	if r2.X0-r.X1 != ds.WSpacer {
		t.Fatalf("adjacent gap: %d", r2.X0-r.X1)
	}
	// A 3-cell horizontal run converts to one contiguous metal rect.
	run := g.CellsToNM(geom.Rect{X0: 2, Y0: 3, X1: 5, Y1: 4})
	if run != (geom.Rect{X0: 80, Y0: 120, X1: 180, Y1: 140}) {
		t.Fatalf("run rect: %v", run)
	}
}

func TestInBounds(t *testing.T) {
	g := New(4, 5, 2, rules.Node10nm())
	for _, c := range []Cell{{-1, 0, 0}, {4, 0, 0}, {0, 5, 0}, {0, 0, 2}} {
		if g.In(c) {
			t.Errorf("cell %v should be out of bounds", c)
		}
	}
	if !g.In(Cell{3, 4, 1}) {
		t.Error("corner cell must be in bounds")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := New(8, 8, 2, rules.Node10nm())
	g.Occupy(Cell{X: 1, Y: 1, L: 0}, 5)
	g.Block(1, geom.Rect{X0: 2, Y0: 2, X1: 4, Y1: 4})

	cp := g.Clone()
	if cp.At(Cell{X: 1, Y: 1, L: 0}) != 5 || cp.At(Cell{X: 3, Y: 3, L: 1}) != Blocked {
		t.Fatal("clone lost occupancy or blockage")
	}
	// Mutating the clone must leave the original untouched, and vice versa.
	cp.Occupy(Cell{X: 6, Y: 6, L: 0}, 9)
	cp.Release(Cell{X: 1, Y: 1, L: 0})
	if g.At(Cell{X: 6, Y: 6, L: 0}) != Free || g.At(Cell{X: 1, Y: 1, L: 0}) != 5 {
		t.Fatal("clone mutation leaked into the original")
	}
	g.Occupy(Cell{X: 7, Y: 0, L: 1}, 3)
	if cp.At(Cell{X: 7, Y: 0, L: 1}) != Free {
		t.Fatal("original mutation leaked into the clone")
	}
	if g.Stat().BlockedCells != cp.Stat().BlockedCells {
		t.Fatal("blockage stats diverged")
	}
}
