// Package grid implements the multi-layer grid-based routing plane of the
// paper's problem formulation (Section II, routing model shared by the
// Section III-E router): a W x H track grid per routing layer, cell
// occupancy by net, routing blockages, and vias between vertically adjacent
// cells of neighboring layers.
//
// Coordinates are track indices (cells); the physical metal rectangle of a
// cell is derived from the design-rule pitch by Set.CellRect.
package grid

import (
	"fmt"

	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// Cell addresses one routing-grid cell on a layer.
type Cell struct {
	X, Y, L int
}

func (c Cell) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.L) }

// Occupancy states below zero; values >= 0 are net ids.
const (
	Free    int32 = -1
	Blocked int32 = -2
)

// Grid is the routing plane. Create with New.
type Grid struct {
	W, H, Layers int
	Rules        rules.Set
	occ          []int32
}

// New returns an empty grid of W x H tracks on the given number of layers.
func New(w, h, layers int, ds rules.Set) *Grid {
	if w <= 0 || h <= 0 || layers <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%dx%d", w, h, layers))
	}
	g := &Grid{W: w, H: h, Layers: layers, Rules: ds}
	g.occ = make([]int32, w*h*layers)
	for i := range g.occ {
		g.occ[i] = Free
	}
	return g
}

// In reports whether c lies inside the grid.
func (g *Grid) In(c Cell) bool {
	return c.X >= 0 && c.X < g.W && c.Y >= 0 && c.Y < g.H && c.L >= 0 && c.L < g.Layers
}

func (g *Grid) idx(c Cell) int { return (c.L*g.H+c.Y)*g.W + c.X }

// At returns the occupancy of c: Free, Blocked, or a net id.
func (g *Grid) At(c Cell) int32 { return g.occ[g.idx(c)] }

// Occupy assigns cell c to net id (no-op checks are the caller's job).
func (g *Grid) Occupy(c Cell, id int32) { g.occ[g.idx(c)] = id }

// Release frees cell c unless it is blocked.
func (g *Grid) Release(c Cell) {
	if i := g.idx(c); g.occ[i] != Blocked {
		g.occ[i] = Free
	}
}

// Clone returns an independent copy of the grid: same dimensions and
// rules, private occupancy array. The router's episode speculation clones
// the grid at a rip-up episode boundary so concurrent pre-searches read a
// frozen view while the serial commit phase keeps mutating the original.
func (g *Grid) Clone() *Grid {
	cp := *g
	cp.occ = append([]int32(nil), g.occ...)
	return &cp
}

// Block marks a rectangle of cells on layer l as routing blockage.
func (g *Grid) Block(l int, r geom.Rect) {
	for y := maxi(0, r.Y0); y < mini(g.H, r.Y1); y++ {
		for x := maxi(0, r.X0); x < mini(g.W, r.X1); x++ {
			g.occ[g.idx(Cell{x, y, l})] = Blocked
		}
	}
}

// FreeOrNet reports whether c is free or already owned by net id (vias and
// reuse of a net's own cells are legal).
func (g *Grid) FreeOrNet(c Cell, id int32) bool {
	v := g.At(c)
	return v == Free || v == id
}

// CellRect returns the metal rectangle of cell c in nm.
func (g *Grid) CellRect(x, y int) geom.Rect {
	p, w := g.Rules.Pitch(), g.Rules.WLine
	return geom.Rect{X0: x * p, Y0: y * p, X1: x*p + w, Y1: y*p + w}
}

// CellsToNM converts a cell-coordinate rectangle (half-open, from
// geom.FragmentCells) to the metal rectangle it occupies in nm.
func (g *Grid) CellsToNM(r geom.Rect) geom.Rect {
	p, w := g.Rules.Pitch(), g.Rules.WLine
	return geom.Rect{
		X0: r.X0 * p, Y0: r.Y0 * p,
		X1: (r.X1-1)*p + w, Y1: (r.Y1-1)*p + w,
	}
}

// DieNM returns the die rectangle in nm.
func (g *Grid) DieNM() geom.Rect {
	p := g.Rules.Pitch()
	return geom.Rect{X0: -p, Y0: -p, X1: g.W*p + p, Y1: g.H*p + p}
}

// Stats summarizes grid occupancy.
type Stats struct {
	Cells, FreeCells, BlockedCells, UsedCells int
}

// Stat computes occupancy statistics.
func (g *Grid) Stat() Stats {
	s := Stats{Cells: len(g.occ)}
	for _, v := range g.occ {
		switch v {
		case Free:
			s.FreeCells++
		case Blocked:
			s.BlockedCells++
		default:
			s.UsedCells++
		}
	}
	return s
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
