package sched

import "sync"

// Async tracks a Launch fleet: n index-addressed tasks running on a
// bounded worker pool. Unlike Run, Launch returns immediately; the caller
// overlaps its own serial work with the fleet and joins per index exactly
// when it needs that task's result. The router's rip-up episode
// speculation is the canonical user: the serial commit phase processes
// offender k while workers pre-search offenders k+1, k+2, ... against a
// frozen grid clone, and Wait(i) blocks only if the pre-search of the
// offender now at the commit slot has not finished yet.
type Async struct {
	done []chan struct{}
	wg   sync.WaitGroup
}

// Launch starts fn(worker, i) for every i in [0, n) across at most
// `workers` goroutines and returns without waiting. Work is handed out in
// index order through a shared channel, so low indexes — the ones the
// caller joins first — start first; which worker runs which index is
// scheduler-dependent, so fn must write only to per-index state. A nil
// return means n <= 0.
func Launch(n, workers int, fn func(worker, i int)) *Async {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	a := &Async{done: make([]chan struct{}, n)}
	for i := range a.done {
		a.done[i] = make(chan struct{})
	}
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	a.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer a.wg.Done()
			for i := range work {
				fn(worker, i)
				close(a.done[i])
			}
		}(w)
	}
	return a
}

// Wait blocks until task i has finished. Nil-safe no-op.
func (a *Async) Wait(i int) {
	if a == nil {
		return
	}
	<-a.done[i]
}

// WaitAll blocks until every task has finished and the workers have
// exited. Nil-safe no-op.
func (a *Async) WaitAll() {
	if a == nil {
		return
	}
	a.wg.Wait()
}
