package sched

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(worker, i) for every i in [0, n) across at most
// `workers` goroutines and returns when all calls have finished. worker
// identifies the executing slot in [0, workers) so callers can hand each
// goroutine its own pooled resources (one astar.Engine per slot). Work is
// handed out through an atomic counter, so which worker runs which index
// is scheduler-dependent — fn must write only to per-index state, which
// makes the overall result deterministic regardless of worker count or
// interleaving.
func Run(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
