package sched

import (
	"sync/atomic"
	"testing"
)

// TestLaunchRunsAll: every index runs exactly once and WaitAll joins the
// whole fleet, across worker counts below, at and above the task count.
func TestLaunchRunsAll(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 37
		var ran [n]int32
		a := Launch(n, workers, func(_, i int) {
			atomic.AddInt32(&ran[i], 1)
		})
		a.WaitAll()
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestLaunchWaitPerIndex: Wait(i) returns only after task i finished. A
// single worker and a release channel serialize the fleet so the test can
// prove Wait(0) does not require the later tasks to have run.
func TestLaunchWaitPerIndex(t *testing.T) {
	release := make(chan struct{})
	var done [3]int32
	a := Launch(3, 1, func(_, i int) {
		if i > 0 {
			<-release
		}
		atomic.StoreInt32(&done[i], 1)
	})
	// One worker hands indexes out in order: task 0 finishes without the
	// release, tasks 1 and 2 block behind it.
	a.Wait(0)
	if atomic.LoadInt32(&done[0]) != 1 {
		t.Fatal("Wait(0) returned before task 0 finished")
	}
	if atomic.LoadInt32(&done[1]) != 0 || atomic.LoadInt32(&done[2]) != 0 {
		t.Fatal("later tasks ran before being released; the single worker should still be blocked")
	}
	close(release)
	a.Wait(2)
	if atomic.LoadInt32(&done[1]) != 1 || atomic.LoadInt32(&done[2]) != 1 {
		t.Fatal("Wait(2) returned before the released tasks finished")
	}
	a.WaitAll()
}

// TestLaunchNilAndBounds: n <= 0 yields a nil fleet whose joins are
// no-ops, and absurd worker counts are clamped rather than crashing.
func TestLaunchNilAndBounds(t *testing.T) {
	if a := Launch(0, 4, func(_, _ int) { t.Error("ran a task of an empty fleet") }); a != nil {
		t.Fatal("Launch(0, ...) returned a non-nil fleet")
	}
	var nilA *Async
	nilA.Wait(0) // must not panic
	nilA.WaitAll()

	var ran int32
	a := Launch(2, -5, func(_, i int) { atomic.AddInt32(&ran, 1) })
	a.WaitAll()
	if ran != 2 {
		t.Fatalf("clamped fleet ran %d of 2 tasks", ran)
	}
}
