// Package sched is the deterministic intra-instance parallel net
// scheduler behind router.Options.NetWorkers — infrastructure for the
// parallelism story rather than a paper section. It routes independent
// nets concurrently on ONE grid while guaranteeing the final layout is
// byte-identical to the serial run, with three pieces:
//
//   - Waves partitions the router's canonical net order into consecutive
//     fixed-size blocks and, within each block, selects the greedy
//     maximal subset of nets whose dilated bounding boxes are pairwise
//     disjoint. The subset's first A* searches can run concurrently
//     against the grid frozen at the wave boundary; the block's other
//     nets route serially in their canonical slot.
//   - Run fans a wave across a bounded worker pool; results land in
//     per-index slots, so worker count never influences outcomes.
//   - DirtySet records every grid cell the commit phase mutates. A
//     speculative search survives to commit only if its read region
//     (astar.Engine.ReadBBox) contains no dirty cell — otherwise the
//     conflict relation was optimistic and the net re-searches serially
//     in its canonical slot. Equivalence to the serial router therefore
//     holds by construction, not by the accuracy of the heuristic.
//
// The conflict relation is heuristic (searches may wander beyond any
// fixed halo); the DirtySet validation is the correctness argument. The
// wave structure is a pure function of the net order and the boxes —
// never of the worker count — so every NetWorkers >= 2 value produces
// the identical schedule, commits, and observability counters.
package sched

import (
	"sadproute/internal/geom"
	"sadproute/internal/obs"
)

// DefaultMaxWave is the block size of the wave partition: how many nets
// of the canonical order one wave covers, and therefore the lookahead
// window the speculated subset is drawn from. The cap is a constant (not
// scaled by worker count) so the wave structure — and with it every
// sched.* counter — is identical for any NetWorkers >= 2.
const DefaultMaxWave = 64

// Wave is one block of the canonical net order. Nets is the consecutive
// run of the order the wave covers — concatenating Nets over all waves
// reproduces the order unchanged, which is the canonical-commit-order
// guarantee. Spec is the subset of Nets whose first A* searches are
// speculated concurrently against the grid frozen at the wave boundary:
// scanning Nets in order, a net joins Spec when its conflict box is
// disjoint from every box already in Spec (greedy maximal independent
// prefix). Nets outside Spec route serially in their canonical slot,
// exactly as in the serial router.
type Wave struct {
	Nets []int
	Spec []int
}

// Waves cuts order into consecutive blocks of maxWave nets (DefaultMaxWave
// when maxWave <= 0) and selects each block's speculation subset.
//
// box(id) is the net's dilated XY bounding box in cell coordinates; two
// nets conflict when their boxes intersect. Layers are ignored: every net
// may route on every layer, so XY separation is the only independence
// the relation can promise. The relation is a precision heuristic only —
// a speculated search invalidated by an earlier commit is caught by the
// DirtySet validation and re-run serially, never miscommitted.
func Waves(order []int, box func(id int) geom.Rect, maxWave int) []Wave {
	return WavesR(order, box, maxWave, nil)
}

// WavesR is Waves reporting each wave's speculated-subset size to an
// observability recorder (the sched.spec_per_wave histogram). The schedule
// is a pure function of order and boxes, so the histogram — like every
// sched.* metric — is identical for any NetWorkers >= 2 and absent from
// serial runs.
func WavesR(order []int, box func(id int) geom.Rect, maxWave int, rec *obs.Recorder) []Wave {
	if maxWave <= 0 {
		maxWave = DefaultMaxWave
	}
	var waves []Wave
	for start := 0; start < len(order); start += maxWave {
		end := start + maxWave
		if end > len(order) {
			end = len(order)
		}
		nets := order[start:end:end]
		spec := make([]int, 0, len(nets))
		boxes := make([]geom.Rect, 0, len(nets))
		for _, id := range nets {
			nb := box(id)
			ok := true
			for _, sb := range boxes {
				if nb.Intersects(sb) {
					ok = false
					break
				}
			}
			if ok {
				spec = append(spec, id)
				boxes = append(boxes, nb)
			}
		}
		waves = append(waves, Wave{Nets: nets, Spec: spec})
		rec.Observe(obs.HistSchedSpecWave, int64(len(spec)))
	}
	return waves
}

// Makespan returns the completion time of scheduling the given task
// durations on `workers` identical machines with the LPT (longest
// processing time first) greedy rule — the hypothetical wall time of one
// wave's speculative searches on a machine with that many free cores.
// Reporting-only: the value feeds stage timers, never routing decisions.
func Makespan(durations []int64, workers int) int64 {
	if len(durations) == 0 {
		return 0
	}
	if workers <= 1 {
		var sum int64
		for _, d := range durations {
			sum += d
		}
		return sum
	}
	sorted := make([]int64, len(durations))
	copy(sorted, durations)
	// Insertion sort, descending; waves are small (<= DefaultMaxWave).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	bins := make([]int64, workers)
	for _, d := range sorted {
		least := 0
		for b := 1; b < len(bins); b++ {
			if bins[b] < bins[least] {
				least = b
			}
		}
		bins[least] += d
	}
	var max int64
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	return max
}
