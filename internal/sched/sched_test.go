package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
)

// boxesFor builds a deterministic pseudo-random box per id.
func boxesFor(n int, seed int64) func(int) geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]geom.Rect, n)
	for i := range boxes {
		x, y := rng.Intn(80), rng.Intn(80)
		boxes[i] = geom.Rect{X0: x, Y0: y, X1: x + 4 + rng.Intn(20), Y1: y + 4 + rng.Intn(20)}
	}
	return func(id int) geom.Rect { return boxes[id] }
}

// TestWavesPartition: concatenating the waves' Nets reproduces the order
// unchanged (the commit phase walks waves in place, so this IS the
// canonical-commit-order guarantee), every wave respects the block size,
// the Spec subset is an in-order subsequence of Nets with pairwise
// disjoint boxes, and Spec is greedy-maximal: every net left out of Spec
// intersects some Spec member selected before it.
func TestWavesPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 65, 200} {
		order := make([]int, n)
		for i := range order {
			order[i] = n - 1 - i // any permutation; descending is fine
		}
		box := boxesFor(n, int64(n)+1)
		for _, cap := range []int{0, 1, 3, DefaultMaxWave} {
			waves := Waves(order, box, cap)
			want := cap
			if want <= 0 {
				want = DefaultMaxWave
			}
			var flat []int
			for _, w := range waves {
				if len(w.Nets) == 0 {
					t.Fatalf("n=%d cap=%d: empty wave", n, cap)
				}
				if len(w.Nets) > want {
					t.Fatalf("n=%d cap=%d: wave of %d exceeds block size %d", n, cap, len(w.Nets), want)
				}
				if len(w.Spec) == 0 || len(w.Spec) > len(w.Nets) {
					t.Fatalf("n=%d cap=%d: Spec size %d for wave of %d", n, cap, len(w.Spec), len(w.Nets))
				}
				for i := 0; i < len(w.Spec); i++ {
					for j := i + 1; j < len(w.Spec); j++ {
						if box(w.Spec[i]).Intersects(box(w.Spec[j])) {
							t.Fatalf("n=%d cap=%d: nets %d and %d share a Spec with intersecting boxes", n, cap, w.Spec[i], w.Spec[j])
						}
					}
				}
				// Spec is an in-order subsequence of Nets, and every net
				// skipped before a given position intersects an earlier
				// Spec member (greedy maximality).
				si := 0
				for _, id := range w.Nets {
					if si < len(w.Spec) && w.Spec[si] == id {
						si++
						continue
					}
					hit := false
					for _, s := range w.Spec[:si] {
						if box(id).Intersects(box(s)) {
							hit = true
							break
						}
					}
					if !hit {
						t.Fatalf("n=%d cap=%d: net %d skipped from Spec without a conflict", n, cap, id)
					}
				}
				if si != len(w.Spec) {
					t.Fatalf("n=%d cap=%d: Spec is not an in-order subsequence of Nets", n, cap)
				}
				flat = append(flat, w.Nets...)
			}
			if len(flat) != len(order) {
				t.Fatalf("n=%d cap=%d: waves cover %d of %d nets", n, cap, len(flat), len(order))
			}
			for i := range flat {
				if flat[i] != order[i] {
					t.Fatalf("n=%d cap=%d: concatenated waves reorder nets at %d: got %d want %d", n, cap, i, flat[i], order[i])
				}
			}
		}
	}
}

// TestWavesWorkerIndependence: the wave structure is a pure function of
// order and boxes — recomputing it must give identical waves (there is no
// worker-count input at all, which is the stronger property).
func TestWavesWorkerIndependence(t *testing.T) {
	order := []int{3, 1, 4, 1, 5, 9, 2, 6}
	box := boxesFor(10, 42)
	a := Waves(order, box, 0)
	b := Waves(order, box, 0)
	if len(a) != len(b) {
		t.Fatalf("wave count differs between identical calls: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Nets) != len(b[i].Nets) || len(a[i].Spec) != len(b[i].Spec) {
			t.Fatalf("wave %d shape differs", i)
		}
	}
}

func TestMakespanBounds(t *testing.T) {
	durs := []int64{7, 3, 9, 1, 4, 4, 2}
	var sum, max int64
	for _, d := range durs {
		sum += d
		if d > max {
			max = d
		}
	}
	if got := Makespan(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %d, want 0", got)
	}
	if got := Makespan(durs, 1); got != sum {
		t.Fatalf("1-worker makespan = %d, want sum %d", got, sum)
	}
	for _, w := range []int{2, 3, 4, len(durs), len(durs) + 5} {
		got := Makespan(durs, w)
		if got < max || got > sum {
			t.Fatalf("%d-worker makespan %d outside [max=%d, sum=%d]", w, got, max, sum)
		}
	}
	if got := Makespan(durs, len(durs)); got != max {
		t.Fatalf("fully parallel makespan = %d, want max %d", got, max)
	}
}

func TestDirtySet(t *testing.T) {
	var d DirtySet
	if d.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	if d.Intersects(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}) {
		t.Fatal("empty set intersects")
	}
	d.MarkCells([]grid.Cell{{X: 5, Y: 7, L: 0}, {X: 20, Y: 3, L: 2}})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	// Layer is intentionally ignored: the set is conservative in XY.
	if !d.Intersects(geom.Rect{X0: 5, Y0: 7, X1: 6, Y1: 8}) {
		t.Fatal("marked cell not detected")
	}
	if d.Intersects(geom.Rect{X0: 6, Y0: 7, X1: 20, Y1: 8}) {
		t.Fatal("false positive between marked cells")
	}
	// The bbox prefilter must not produce false positives inside the hull.
	if d.Intersects(geom.Rect{X0: 10, Y0: 5, X1: 12, Y1: 6}) {
		t.Fatal("bbox prefilter leaked a non-dirty cell")
	}
	d.Reset()
	if d.Len() != 0 || d.Intersects(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}) {
		t.Fatal("Reset did not clear the set")
	}
	// nil receiver is a no-op recorder (serial mode).
	var nilSet *DirtySet
	nilSet.MarkCells([]grid.Cell{{X: 1, Y: 1}})
	if nilSet.Len() != 0 || nilSet.Intersects(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}) {
		t.Fatal("nil DirtySet must ignore marks and intersect nothing")
	}
}

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 5, 33} {
			var hit = make([]atomic.Int32, n)
			var concurrent, peak atomic.Int32
			Run(n, workers, func(worker, i int) {
				c := concurrent.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				hit[i].Add(1)
				concurrent.Add(-1)
			})
			for i := range hit {
				if got := hit[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
			limit := int32(workers)
			if limit < 1 {
				limit = 1
			}
			if n > 0 && peak.Load() > limit {
				t.Fatalf("workers=%d n=%d: %d tasks ran concurrently", workers, n, peak.Load())
			}
		}
	}
}
