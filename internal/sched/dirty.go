package sched

import (
	"sadproute/internal/geom"
	"sadproute/internal/grid"
)

// DirtySet records the XY positions of every grid cell mutated during a
// wave's commit phase (path commits, rip-ups, penalty inflation). A
// speculative search result is valid at its commit slot iff its read
// region contains no dirty cell: then the serial first search would have
// read exactly the same state and computed exactly the same path.
//
// Layers are ignored — a mutation on any layer dirties the XY position —
// which is conservative (may force a redundant re-search) but never
// unsound. All methods are nil-safe no-ops, so the serial router passes a
// nil *DirtySet and pays nothing.
type DirtySet struct {
	cells []geom.Pt
	bbox  geom.Rect // union of cells; valid when len(cells) > 0
}

// MarkCells records the XY positions of cells as mutated.
func (d *DirtySet) MarkCells(cells []grid.Cell) {
	if d == nil {
		return
	}
	for _, c := range cells {
		p := geom.Pt{X: c.X, Y: c.Y}
		if len(d.cells) == 0 {
			d.bbox = geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 1, Y1: p.Y + 1}
		} else {
			d.bbox = d.bbox.Union(geom.Rect{X0: p.X, Y0: p.Y, X1: p.X + 1, Y1: p.Y + 1})
		}
		d.cells = append(d.cells, p)
	}
}

// Intersects reports whether any dirty cell lies inside r.
func (d *DirtySet) Intersects(r geom.Rect) bool {
	if d == nil || len(d.cells) == 0 || !d.bbox.Intersects(r) {
		return false
	}
	for _, p := range d.cells {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Len returns the number of recorded mutations (cells may repeat).
func (d *DirtySet) Len() int {
	if d == nil {
		return 0
	}
	return len(d.cells)
}

// Reset empties the set for the next wave, keeping the backing storage.
func (d *DirtySet) Reset() {
	if d == nil {
		return
	}
	d.cells = d.cells[:0]
}
