package astar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/rules"
)

func mk(w, h, l int) *grid.Grid { return grid.New(w, h, l, rules.Node10nm()) }

func TestStraightLine(t *testing.T) {
	g := mk(10, 10, 1)
	e := New(g)
	path, ok := e.Search(0, []grid.Cell{{X: 0, Y: 5}}, []grid.Cell{{X: 9, Y: 5}}, Config{WL: 1, Via: 1})
	if !ok || len(path) != 10 {
		t.Fatalf("ok=%v len=%d", ok, len(path))
	}
}

func TestAvoidsBlockage(t *testing.T) {
	g := mk(10, 10, 1)
	g.Block(0, geom.Rect{X0: 5, Y0: 0, X1: 6, Y1: 9}) // wall with a gap at y=9
	e := New(g)
	path, ok := e.Search(0, []grid.Cell{{X: 0, Y: 0}}, []grid.Cell{{X: 9, Y: 0}}, Config{WL: 1, Via: 1})
	if !ok {
		t.Fatal("must route around")
	}
	for _, c := range path {
		if g.At(c) == grid.Blocked {
			t.Fatalf("path crosses blockage at %v", c)
		}
	}
	if len(path) < 10+2*9 {
		t.Fatalf("detour too short: %d", len(path))
	}
}

func TestNoPathWhenWalled(t *testing.T) {
	g := mk(10, 10, 1)
	g.Block(0, geom.Rect{X0: 5, Y0: 0, X1: 6, Y1: 10})
	e := New(g)
	if _, ok := e.Search(0, []grid.Cell{{X: 0, Y: 0}}, []grid.Cell{{X: 9, Y: 0}}, Config{WL: 1, Via: 1}); ok {
		t.Fatal("no path should exist")
	}
}

func TestUsesViasAcrossLayers(t *testing.T) {
	g := mk(10, 10, 2)
	g.Block(0, geom.Rect{X0: 5, Y0: 0, X1: 6, Y1: 10}) // full wall on layer 0
	e := New(g)
	path, ok := e.Search(0, []grid.Cell{{X: 0, Y: 0}}, []grid.Cell{{X: 9, Y: 0}}, Config{WL: 1, Via: 1})
	if !ok {
		t.Fatal("layer 1 should bypass the wall")
	}
	sawL1 := false
	for _, c := range path {
		if c.L == 1 {
			sawL1 = true
		}
	}
	if !sawL1 {
		t.Fatal("path never used layer 1")
	}
}

func TestMultiSourceTarget(t *testing.T) {
	g := mk(20, 20, 1)
	e := New(g)
	sources := []grid.Cell{{X: 0, Y: 0}, {X: 0, Y: 19}}
	targets := []grid.Cell{{X: 19, Y: 19}, {X: 2, Y: 0}}
	path, ok := e.Search(0, sources, targets, Config{WL: 1, Via: 1})
	if !ok {
		t.Fatal("no path")
	}
	// Closest pair is (0,0)->(2,0): 3 cells.
	if len(path) != 3 {
		t.Fatalf("should pick the closest candidate pair, got len %d", len(path))
	}
}

func TestSoftOccupied(t *testing.T) {
	g := mk(10, 3, 1)
	// Net 7 occupies a full vertical wall.
	for y := 0; y < 3; y++ {
		g.Occupy(grid.Cell{X: 5, Y: y}, 7)
	}
	e := New(g)
	if _, ok := e.Search(0, []grid.Cell{{X: 0, Y: 1}}, []grid.Cell{{X: 9, Y: 1}}, Config{WL: 1, Via: 1}); ok {
		t.Fatal("hard search must fail")
	}
	path, ok := e.Search(0, []grid.Cell{{X: 0, Y: 1}}, []grid.Cell{{X: 9, Y: 1}}, Config{WL: 1, Via: 1, SoftOccupied: 100})
	if !ok {
		t.Fatal("soft search must pass through")
	}
	crossed := false
	for _, c := range path {
		if g.At(c) == 7 {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("soft path should cross the occupied wall")
	}
}

// TestQuickOptimalVsDijkstra: A* path cost must equal a reference BFS
// (uniform costs) on random blocked grids.
func TestQuickOptimalVsDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := mk(12, 12, 2)
		for i := 0; i < 25; i++ {
			g.Block(rng.Intn(2), geom.Rect{
				X0: rng.Intn(12), Y0: rng.Intn(12),
				X1: rng.Intn(12) + 1, Y1: rng.Intn(12) + 1,
			})
		}
		src := grid.Cell{X: 0, Y: 0, L: 0}
		dst := grid.Cell{X: 11, Y: 11, L: 0}
		if g.At(src) == grid.Blocked || g.At(dst) == grid.Blocked {
			return true
		}
		e := New(g)
		path, ok := e.Search(0, []grid.Cell{src}, []grid.Cell{dst}, Config{WL: 1, Via: 1})
		// Reference BFS (all steps cost 1).
		dist := bfs(g, src)
		want, reach := dist[key(g, dst)]
		if ok != reach {
			return false
		}
		if !ok {
			return true
		}
		return len(path)-1 == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func key(g *grid.Grid, c grid.Cell) int { return (c.L*g.H+c.Y)*g.W + c.X }

func bfs(g *grid.Grid, src grid.Cell) map[int]int {
	dist := map[int]int{key(g, src): 0}
	queue := []grid.Cell{src}
	dirs := [6]grid.Cell{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {L: 1}, {L: -1}}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			n := grid.Cell{X: c.X + d.X, Y: c.Y + d.Y, L: c.L + d.L}
			if !g.In(n) || g.At(n) == grid.Blocked {
				continue
			}
			if _, seen := dist[key(g, n)]; seen {
				continue
			}
			dist[key(g, n)] = dist[key(g, c)] + 1
			queue = append(queue, n)
		}
	}
	return dist
}
