package astar

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/rules"
)

func allocGrid() (*grid.Grid, Config, []grid.Cell, []grid.Cell) {
	g := grid.New(64, 64, 3, rules.Node10nm())
	g.Block(0, geom.Rect{X0: 20, Y0: 10, X1: 44, Y1: 14})
	src := []grid.Cell{{X: 2, Y: 2, L: 0}}
	tgt := []grid.Cell{{X: 60, Y: 58, L: 0}}
	return g, Config{WL: 1, Via: 2}, src, tgt
}

// TestSearchAllocsSteadyState pins the engine's allocation discipline: a
// warmed engine allocates only the returned path (its backtrace slice),
// nothing per node and no closure captures. The bound is generous (the
// backtrace slice grows by doubling) but fails if Search regresses to
// per-call closure or map allocations.
func TestSearchAllocsSteadyState(t *testing.T) {
	g, cfg, src, tgt := allocGrid()
	e := New(g)
	if _, ok := e.Search(-1, src, tgt, cfg); !ok { // warm arrays and queue
		t.Fatal("no path on warm-up")
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, ok := e.Search(-1, src, tgt, cfg); !ok {
			t.Fatal("no path")
		}
	})
	// Path backtrace: one slice, grown by doubling — ~8 allocs for a
	// 120-cell path. Anything above 16 means a per-call regression.
	if avg > 16 {
		t.Fatalf("Search allocates %.1f objects/op in steady state (want <= 16: only the returned path)", avg)
	}
}

// TestPoolRetainsQueueCapacity pins the Acquire/Release contract the
// router's engine pooling relies on: the open-list backing array (and the
// per-cell arrays) survive a pool round-trip, so the next binding's
// searches start with warm capacity.
func TestPoolRetainsQueueCapacity(t *testing.T) {
	g, cfg, src, tgt := allocGrid()
	e := Acquire(g)
	if _, ok := e.Search(-1, src, tgt, cfg); !ok {
		t.Fatal("no path")
	}
	qcap, dcap := cap(e.queue), cap(e.dist)
	if qcap == 0 || dcap == 0 {
		t.Fatal("search left no capacity to retain")
	}
	e.Release()
	e2 := Acquire(g)
	defer e2.Release()
	if e2 != e {
		t.Skip("pool returned a different engine; retention not observable this run")
	}
	if cap(e2.queue) < qcap {
		t.Fatalf("queue capacity dropped across Release/Acquire: %d -> %d", qcap, cap(e2.queue))
	}
	if cap(e2.dist) < dcap {
		t.Fatalf("per-cell capacity dropped across Release/Acquire: %d -> %d", dcap, cap(e2.dist))
	}
	if e2.cfg.Step != nil || e2.Rec != nil {
		t.Fatal("Release must drop hook and recorder references")
	}
}

// BenchmarkSearch is the allocs/op regression benchmark for the satellite:
// run with -benchmem; steady state must stay at path-only allocations.
func BenchmarkSearch(b *testing.B) {
	g, cfg, src, tgt := allocGrid()
	e := New(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Search(-1, src, tgt, cfg); !ok {
			b.Fatal("no path")
		}
	}
}
