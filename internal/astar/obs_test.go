package astar

import (
	"math/rand"
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/obs"
)

// TestSearchStats asserts the per-search statistics are self-consistent and
// flushed to an attached recorder.
func TestSearchStats(t *testing.T) {
	g := mk(16, 16, 2)
	e := New(g)
	rec := obs.New()
	e.Rec = rec
	_, ok := e.Search(0, []grid.Cell{{X: 0, Y: 8}}, []grid.Cell{{X: 15, Y: 8}}, Config{WL: 1, Via: 1})
	if !ok {
		t.Fatal("no path on empty grid")
	}
	if e.Expand == 0 || e.Pushes == 0 || e.Pops == 0 || e.HeapPeak == 0 {
		t.Fatalf("stats not tracked: expand=%d pushes=%d pops=%d peak=%d",
			e.Expand, e.Pushes, e.Pops, e.HeapPeak)
	}
	if e.Pops > e.Pushes {
		t.Errorf("pops %d exceed pushes %d", e.Pops, e.Pushes)
	}
	if e.HeapPeak > e.Pushes {
		t.Errorf("heap peak %d exceeds pushes %d", e.HeapPeak, e.Pushes)
	}
	s := rec.Snapshot()
	if s.Counter(obs.CtrAstarSearches) != 1 {
		t.Errorf("searches = %d, want 1", s.Counter(obs.CtrAstarSearches))
	}
	if s.Counter(obs.CtrAstarExpanded) != int64(e.Expand) {
		t.Errorf("flushed expanded %d != engine %d", s.Counter(obs.CtrAstarExpanded), e.Expand)
	}
	if s.Gauge(obs.GaugeAstarHeapPeak) != int64(e.HeapPeak) {
		t.Errorf("flushed heap peak %d != engine %d", s.Gauge(obs.GaugeAstarHeapPeak), e.HeapPeak)
	}

	// A second search accumulates counters but the gauge tracks the max.
	e.Search(0, []grid.Cell{{X: 0, Y: 0}}, []grid.Cell{{X: 3, Y: 0}}, Config{WL: 1, Via: 1})
	s = rec.Snapshot()
	if s.Counter(obs.CtrAstarSearches) != 2 {
		t.Errorf("searches = %d, want 2", s.Counter(obs.CtrAstarSearches))
	}
}

// benchGrid builds a 64x64x3 grid with scattered blockages — dense enough
// that the search does real work.
func benchGrid() *grid.Grid {
	g := mk(64, 64, 3)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		x, y := rng.Intn(60), rng.Intn(60)
		g.Block(rng.Intn(3), geom.Rect{X0: x, Y0: y, X1: x + 1 + rng.Intn(4), Y1: y + 1 + rng.Intn(4)})
	}
	return g
}

func benchSearch(b *testing.B, rec *obs.Recorder) {
	g := benchGrid()
	e := New(g)
	e.Rec = rec
	cfg := Config{WL: 1, Via: 1, Step: func(from, to grid.Cell) (int, bool) { return 0, true }}
	src := []grid.Cell{{X: 1, Y: 1}}
	dst := []grid.Cell{{X: 62, Y: 62, L: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Search(0, src, dst, cfg); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkSearchBare is the un-instrumented baseline: no recorder
// attached, so the inner loop pays only the plain field increments.
// Compare against BenchmarkSearchInstrumented for the ISSUE's 2% overhead
// acceptance criterion.
func BenchmarkSearchBare(b *testing.B) { benchSearch(b, nil) }

// BenchmarkSearchInstrumented attaches a live recorder: the same search
// plus one atomic flush per Search call.
func BenchmarkSearchInstrumented(b *testing.B) { benchSearch(b, obs.New()) }
