// Package astar implements the grid A*-search engine underlying the
// paper's overlay-aware detailed router (Section III-E): multi-source /
// multi-target search over a 3-D routing grid with a pluggable step-cost
// hook, an admissible Manhattan heuristic, and path backtrace.
//
// Costs are integers in half-wirelength units so that the paper's
// gamma = 1.5 type-2-b weight stays exact.
package astar

import (
	"container/heap"

	"sadproute/internal/grid"
	"sadproute/internal/obs"
)

// StepCost prices a move from one cell to an adjacent cell (planar step or
// via). Returning ok=false forbids the step. The base wirelength/via terms
// are added by the engine; the hook adds scenario-driven penalties.
type StepCost func(from, to grid.Cell) (extra int, ok bool)

// Config parameterizes a search.
type Config struct {
	// WL, Via are the alpha and beta weights of cost equation (5), in
	// engine cost units (use Scale to convert).
	WL, Via int
	// Step is the extra-cost hook (may be nil).
	Step StepCost
	// MaxExpand bounds node expansions; 0 means no bound.
	MaxExpand int
	// SoftOccupied, when positive, makes cells owned by other nets passable
	// at this extra cost per cell instead of impassable — used to discover
	// which nets block an otherwise unroutable connection. Blockages stay
	// impassable.
	SoftOccupied int
}

// Scale is the engine cost multiplier: one grid step of wirelength costs
// WL*Scale implicitly through Config, so fractional weights like gamma=1.5
// remain integral.
const Scale = 2

// Engine holds reusable search state for one grid; it is not safe for
// concurrent use.
type Engine struct {
	g      *grid.Grid
	dist   []int
	stamp  []int32
	parent []int32
	cur    int32
	queue  pq
	// Per-search statistics, reset by Search. The inner loop maintains them
	// as plain field increments (no branches) so the cost is identical
	// whether or not a Recorder is attached.
	Expand   int // node expansions of the last search
	Pushes   int // heap pushes of the last search
	Pops     int // heap pops of the last search
	HeapPeak int // open-list high-water mark of the last search
	// Rec, when non-nil, receives the per-search statistics (counters plus
	// the heap-peak gauge) in one flush at the end of every search.
	Rec *obs.Recorder
}

// New creates an engine bound to g.
func New(g *grid.Grid) *Engine {
	n := g.W * g.H * g.Layers
	return &Engine{
		g:      g,
		dist:   make([]int, n),
		stamp:  make([]int32, n),
		parent: make([]int32, n),
	}
}

func (e *Engine) idx(c grid.Cell) int { return (c.L*e.g.H+c.Y)*e.g.W + c.X }

func (e *Engine) cell(i int) grid.Cell {
	w, h := e.g.W, e.g.H
	return grid.Cell{X: i % w, Y: (i / w) % h, L: i / (w * h)}
}

type pqItem struct {
	idx  int32
	f, g int
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	return q[i].g > q[j].g // prefer deeper nodes on f-ties: straighter paths
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Search finds a minimum-cost path from any source to any target under cfg.
// Occupied and blocked cells are impassable except cells owned by net id.
// The returned path runs source→target inclusive; ok is false when no path
// exists.
func (e *Engine) Search(id int32, sources, targets []grid.Cell, cfg Config) ([]grid.Cell, bool) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, false
	}
	e.cur++
	e.queue = e.queue[:0]
	e.Expand, e.Pushes, e.Pops, e.HeapPeak = 0, 0, 0, 0
	defer e.flushObs()

	tset := make(map[int]bool, len(targets))
	for _, t := range targets {
		if e.g.In(t) {
			tset[e.idx(t)] = true
		}
	}
	if len(tset) == 0 {
		return nil, false
	}
	h := func(c grid.Cell) int {
		best := -1
		for _, t := range targets {
			d := absi(c.X-t.X) + absi(c.Y-t.Y)
			if dl := absi(c.L - t.L); dl > 0 {
				d += dl
			}
			if best < 0 || d < best {
				best = d
			}
		}
		return best * cfg.WL * Scale
	}

	push := func(i int, gcost int, parent int32) {
		if e.stamp[i] == e.cur && e.dist[i] <= gcost {
			return
		}
		e.stamp[i] = e.cur
		e.dist[i] = gcost
		e.parent[i] = parent
		heap.Push(&e.queue, pqItem{idx: int32(i), f: gcost + h(e.cell(i)), g: gcost})
		e.Pushes++
		if n := e.queue.Len(); n > e.HeapPeak {
			e.HeapPeak = n
		}
	}

	for _, s := range sources {
		if !e.g.In(s) || !e.g.FreeOrNet(s, id) {
			continue
		}
		push(e.idx(s), 0, -1)
	}

	var steps = [6]grid.Cell{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {L: 1}, {L: -1}}
	for e.queue.Len() > 0 {
		it := heap.Pop(&e.queue).(pqItem)
		e.Pops++
		i := int(it.idx)
		if e.stamp[i] == e.cur && e.dist[i] < it.g {
			continue // stale entry
		}
		e.Expand++
		if cfg.MaxExpand > 0 && e.Expand > cfg.MaxExpand {
			return nil, false
		}
		if tset[i] {
			return e.trace(i), true
		}
		c := e.cell(i)
		for _, d := range steps {
			nc := grid.Cell{X: c.X + d.X, Y: c.Y + d.Y, L: c.L + d.L}
			if !e.g.In(nc) {
				continue
			}
			step := cfg.WL * Scale
			if d.L != 0 {
				step = cfg.Via * Scale
			}
			if !e.g.FreeOrNet(nc, id) {
				if cfg.SoftOccupied <= 0 || e.g.At(nc) < 0 {
					continue // foreign cell or hard blockage
				}
				step += cfg.SoftOccupied
			}
			if cfg.Step != nil {
				extra, ok := cfg.Step(c, nc)
				if !ok {
					continue
				}
				step += extra
			}
			push(e.idx(nc), it.g+step, int32(i))
		}
	}
	return nil, false
}

// flushObs reports the last search's statistics to the attached Recorder
// in one batch — the inner loop stays free of atomic operations.
func (e *Engine) flushObs() {
	if e.Rec == nil {
		return
	}
	e.Rec.Inc(obs.CtrAstarSearches)
	e.Rec.Add(obs.CtrAstarExpanded, int64(e.Expand))
	e.Rec.Add(obs.CtrAstarPushes, int64(e.Pushes))
	e.Rec.Add(obs.CtrAstarPops, int64(e.Pops))
	e.Rec.Max(obs.GaugeAstarHeapPeak, int64(e.HeapPeak))
}

// trace reconstructs the path ending at index i.
func (e *Engine) trace(i int) []grid.Cell {
	var rev []grid.Cell
	for j := int32(i); j >= 0; j = e.parent[j] {
		rev = append(rev, e.cell(int(j)))
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

func absi(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
