// Package astar implements the grid A*-search engine underlying the
// paper's overlay-aware detailed router (Section III-E): multi-source /
// multi-target search over a 3-D routing grid with a pluggable step-cost
// hook, an admissible Manhattan heuristic, and path backtrace.
//
// Costs are integers in half-wirelength units so that the paper's
// gamma = 1.5 type-2-b weight stays exact.
package astar

import (
	"sync"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/obs"
)

// StepCost prices a move from one cell to an adjacent cell (planar step or
// via). Returning ok=false forbids the step. The base wirelength/via terms
// are added by the engine; the hook adds scenario-driven penalties.
type StepCost func(from, to grid.Cell) (extra int, ok bool)

// Config parameterizes a search.
type Config struct {
	// WL, Via are the alpha and beta weights of cost equation (5), in
	// engine cost units (use Scale to convert).
	WL, Via int
	// Step is the extra-cost hook (may be nil).
	Step StepCost
	// MaxExpand bounds node expansions; 0 means no bound.
	MaxExpand int
	// SoftOccupied, when positive, makes cells owned by other nets passable
	// at this extra cost per cell instead of impassable — used to discover
	// which nets block an otherwise unroutable connection. Blockages stay
	// impassable.
	SoftOccupied int
}

// Scale is the engine cost multiplier: one grid step of wirelength costs
// WL*Scale implicitly through Config, so fractional weights like gamma=1.5
// remain integral.
const Scale = 2

// Engine holds reusable search state for one grid; it is not safe for
// concurrent use. Engines are cheap to rebind (Bind) and poolable
// (Acquire/Release), so a worker routing many instances back to back reuses
// one engine's allocations instead of paying a fresh O(cells) allocation
// per instance.
type Engine struct {
	g      *grid.Grid
	dist   []int
	stamp  []int32
	parent []int32
	tmark  []int32 // target marks for the current search (stamped with cur)
	cur    int32
	queue  pq
	// Per-search statistics, reset by Search. The inner loop maintains them
	// as plain field increments (no branches) so the cost is identical
	// whether or not a Recorder is attached.
	Expand   int // node expansions of the last search
	Pushes   int // heap pushes of the last search
	Pops     int // heap pops of the last search
	HeapPeak int // open-list high-water mark of the last search
	// Read-region tracking for speculative routing (ReadBBox): the XY
	// bounding box of every source, target and expanded cell of the last
	// search. Maintained unconditionally — four compares per expansion.
	rx0, ry0, rx1, ry1 int
	// Rec, when non-nil, receives the per-search statistics (counters plus
	// the heap-peak gauge) in one flush at the end of every search.
	Rec *obs.Recorder
	// cfg and targets are the current search's parameters, held as fields so
	// the hot heuristic/push paths are methods instead of closures — a
	// closure pair plus captured locals escaped to the heap on every Search
	// call before. targets is a reused copy of the caller's slice.
	cfg     Config
	targets []grid.Cell
}

// New creates an engine bound to g.
func New(g *grid.Grid) *Engine {
	e := &Engine{}
	e.Bind(g)
	return e
}

// Bind points the engine at g, reusing the per-cell arrays when they are
// large enough and reallocating only when g exceeds every grid this engine
// has seen. Search state from the previous grid is discarded.
func (e *Engine) Bind(g *grid.Grid) {
	n := g.W * g.H * g.Layers
	e.g = g
	e.cur = 0
	e.queue = e.queue[:0]
	if cap(e.dist) < n {
		e.dist = make([]int, n)
		e.stamp = make([]int32, n)
		e.parent = make([]int32, n)
		e.tmark = make([]int32, n)
		return
	}
	e.dist = e.dist[:n]
	e.stamp = e.stamp[:n]
	e.parent = e.parent[:n]
	e.tmark = e.tmark[:n]
	// Stamps compare against cur, which restarts at 0: clear them so stale
	// entries from the previous binding cannot alias the new search ids.
	clear(e.stamp)
	clear(e.tmark)
}

// enginePool backs Acquire/Release. Pooled engines keep their per-cell
// arrays, so a worker that routes many same-order-of-magnitude instances
// allocates the arrays once instead of once per instance.
var enginePool = sync.Pool{New: func() any { return &Engine{} }}

// Acquire returns a pooled engine bound to g. Callers that route many
// netlists in sequence (the bench harness workers, the baselines) should
// pair it with Release; the engine is NOT safe for concurrent use.
func Acquire(g *grid.Grid) *Engine {
	e := enginePool.Get().(*Engine)
	e.Bind(g)
	return e
}

// Release detaches the engine from its grid and recorder and returns it to
// the pool. The caller must not use the engine afterwards.
func (e *Engine) Release() {
	e.g = nil
	e.Rec = nil
	// Drop references the pool must not retain (the step hook closes over
	// router state); the queue and per-cell arrays keep their capacity.
	e.cfg = Config{}
	e.targets = e.targets[:0]
	enginePool.Put(e)
}

func (e *Engine) idx(c grid.Cell) int { return (c.L*e.g.H+c.Y)*e.g.W + c.X }

func (e *Engine) cell(i int) grid.Cell {
	w, h := e.g.W, e.g.H
	return grid.Cell{X: i % w, Y: (i / w) % h, L: i / (w * h)}
}

type pqItem struct {
	idx  int32
	f, g int
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	return q[i].g > q[j].g // prefer deeper nodes on f-ties: straighter paths
}

// push and pop are the container/heap algorithm specialized to pqItem:
// identical comparison order (so identical tie-breaking and traces), but
// no interface boxing — the boxed pqItem per Push/Pop dominated the
// engine's allocation profile before this.
func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.Less(i, p) {
			break
		}
		q.Swap(i, p)
		i = p
	}
}

func (q *pq) pop() pqItem {
	old := *q
	n := len(old) - 1
	old.Swap(0, n)
	it := old[n]
	*q = old[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && old.Less(r, l) {
			j = r
		}
		if !old.Less(j, i) {
			break
		}
		old.Swap(i, j)
		i = j
	}
	return it
}

// Search finds a minimum-cost path from any source to any target under cfg.
// Occupied and blocked cells are impassable except cells owned by net id.
// The returned path runs source→target inclusive; ok is false when no path
// exists.
func (e *Engine) Search(id int32, sources, targets []grid.Cell, cfg Config) ([]grid.Cell, bool) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, false
	}
	e.cur++
	e.queue = e.queue[:0]
	e.Expand, e.Pushes, e.Pops, e.HeapPeak = 0, 0, 0, 0
	e.rx0, e.ry0, e.rx1, e.ry1 = int(^uint(0)>>1), int(^uint(0)>>1), -1<<30, -1<<30
	for _, s := range sources {
		e.note(s)
	}
	defer e.flushObs()

	// Targets are marked in the reusable tmark array (stamped with the
	// search id) instead of a per-search map: membership tests in the pop
	// loop become one array load and Search stops allocating per call.
	ntargets := 0
	for _, t := range targets {
		e.note(t)
		if !e.g.In(t) {
			continue
		}
		if i := e.idx(t); e.tmark[i] != e.cur {
			e.tmark[i] = e.cur
			ntargets++
		}
	}
	if ntargets == 0 {
		return nil, false
	}
	e.cfg = cfg
	e.targets = append(e.targets[:0], targets...)

	for _, s := range sources {
		if !e.g.In(s) || !e.g.FreeOrNet(s, id) {
			continue
		}
		e.pushNode(e.idx(s), 0, -1)
	}

	var steps = [6]grid.Cell{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {L: 1}, {L: -1}}
	for e.queue.Len() > 0 {
		it := e.queue.pop()
		e.Pops++
		i := int(it.idx)
		if e.stamp[i] == e.cur && e.dist[i] < it.g {
			continue // stale entry
		}
		e.Expand++
		if cfg.MaxExpand > 0 && e.Expand > cfg.MaxExpand {
			return nil, false
		}
		if e.tmark[i] == e.cur {
			return e.trace(i), true
		}
		c := e.cell(i)
		e.note(c)
		for _, d := range steps {
			nc := grid.Cell{X: c.X + d.X, Y: c.Y + d.Y, L: c.L + d.L}
			if !e.g.In(nc) {
				continue
			}
			step := cfg.WL * Scale
			if d.L != 0 {
				step = cfg.Via * Scale
			}
			if !e.g.FreeOrNet(nc, id) {
				if cfg.SoftOccupied <= 0 || e.g.At(nc) < 0 {
					continue // foreign cell or hard blockage
				}
				step += cfg.SoftOccupied
			}
			if cfg.Step != nil {
				extra, ok := cfg.Step(c, nc)
				if !ok {
					continue
				}
				step += extra
			}
			e.pushNode(e.idx(nc), it.g+step, int32(i))
		}
	}
	return nil, false
}

// h is the admissible Manhattan heuristic over the current search's
// targets, in engine cost units.
func (e *Engine) h(c grid.Cell) int {
	best := -1
	for _, t := range e.targets {
		d := absi(c.X-t.X) + absi(c.Y-t.Y)
		if dl := absi(c.L - t.L); dl > 0 {
			d += dl
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best * e.cfg.WL * Scale
}

// pushNode relaxes node i to gcost and pushes it on the open list.
func (e *Engine) pushNode(i, gcost int, parent int32) {
	if e.stamp[i] == e.cur && e.dist[i] <= gcost {
		return
	}
	e.stamp[i] = e.cur
	e.dist[i] = gcost
	e.parent[i] = parent
	e.queue.push(pqItem{idx: int32(i), f: gcost + e.h(e.cell(i)), g: gcost})
	e.Pushes++
	if n := e.queue.Len(); n > e.HeapPeak {
		e.HeapPeak = n
	}
}

// note grows the read-region bounding box to cover c.
func (e *Engine) note(c grid.Cell) {
	if c.X < e.rx0 {
		e.rx0 = c.X
	}
	if c.X > e.rx1 {
		e.rx1 = c.X
	}
	if c.Y < e.ry0 {
		e.ry0 = c.Y
	}
	if c.Y > e.ry1 {
		e.ry1 = c.Y
	}
}

// ReadBBox over-approximates, as an XY bounding box in cell coordinates,
// the set of grid cells whose occupancy or penalty the last Search may have
// read: every expanded cell, every source and target candidate, plus a
// two-cell margin covering neighbor probes and the step-cost hook's
// one-cell lookahead. Any cell outside the box provably did not influence
// the search result, which is exactly the property the speculative net
// scheduler (internal/sched) needs to validate a concurrently computed
// path at commit time.
func (e *Engine) ReadBBox() geom.Rect {
	if e.rx1 < e.rx0 {
		return geom.Rect{}
	}
	return geom.Rect{X0: e.rx0, Y0: e.ry0, X1: e.rx1 + 1, Y1: e.ry1 + 1}.Expand(2)
}

// flushObs reports the last search's statistics to the attached Recorder
// in one batch — the inner loop stays free of atomic operations.
func (e *Engine) flushObs() {
	if e.Rec == nil {
		return
	}
	e.Rec.Inc(obs.CtrAstarSearches)
	e.Rec.Add(obs.CtrAstarExpanded, int64(e.Expand))
	e.Rec.Add(obs.CtrAstarPushes, int64(e.Pushes))
	e.Rec.Add(obs.CtrAstarPops, int64(e.Pops))
	e.Rec.Max(obs.GaugeAstarHeapPeak, int64(e.HeapPeak))
	e.Rec.Observe(obs.HistAstarExpanded, int64(e.Expand))
}

// trace reconstructs the path ending at index i.
func (e *Engine) trace(i int) []grid.Cell {
	var rev []grid.Cell
	for j := int32(i); j >= 0; j = e.parent[j] {
		rev = append(rev, e.cell(int(j)))
	}
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

func absi(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
