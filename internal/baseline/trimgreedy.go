package baseline

import (
	"time"

	"sadproute/internal/decomp"
	"sadproute/internal/fragstore"
	"sadproute/internal/geom"
	"sadproute/internal/netlist"
	"sadproute/internal/rules"
)

// TrimGreedy is the Gao–Pan-style [11] trim-process router: simultaneous
// routing and decomposition where each net's mask assignment is fixed
// greedily the moment it is routed. The trim process has no merge
// technique, so any two same-mask patterns closer than the minimum coloring
// distance conflict, and odd cycles are unresolvable; assistant core
// patterns are not planned, so second-pattern boundaries facing no core
// spacer become overlays.
type TrimGreedy struct {
	// MaxRipup bounds rip-up-and-reroute rounds per net (3, as in the
	// paper's experiments).
	MaxRipup int
}

// Run routes the netlist and returns the result with trim-process layouts.
func (t TrimGreedy) Run(nl *netlist.Netlist, ds rules.Set) *Out {
	start := time.Now() //lint:allow wallclock CPU column of the paper's tables; reporting-only, never fed into routing
	if t.MaxRipup == 0 {
		t.MaxRipup = 3
	}
	c := newCommon(nl, ds)
	defer c.release()
	for _, id := range netOrder(nl) {
		t.routeNet(c, id)
	}
	c.out.Layouts = c.layouts()
	c.out.Trim = true
	c.out.CPU = time.Since(start) //lint:allow wallclock CPU column of the paper's tables; reporting-only
	return c.out
}

func (t TrimGreedy) routeNet(c *common, id int) {
	n := c.nl.Nets[id]
	for attempt := 0; ; attempt++ {
		path, ok := c.search(id, n, 0)
		if !ok {
			c.out.Failed++
			return
		}
		c.commit(id, path)
		// Greedy fixed coloring per layer: pick the mask with fewer
		// spacing conflicts against already-colored neighbors.
		conflicts := 0
		for l := 0; l < c.nl.Layers; l++ {
			if !c.frags[l].Has(id) {
				continue
			}
			col, cnt := greedyTrimColor(c, l, id)
			c.colors[l][id] = col
			conflicts += cnt
		}
		if conflicts == 0 {
			c.out.Routed++
			return
		}
		c.ripup(id, path)
		c.out.Ripups++
		if attempt >= t.MaxRipup {
			// The router cannot place this net without a (modeled)
			// coloring conflict: the net fails. Conflicts its model cannot
			// see (diagonal corners, same-polygon slots, line-end pairs)
			// survive into the oracle's #C count.
			c.out.Failed++
			return
		}
		for _, cell := range path {
			c.pen[cell] += 4
		}
	}
}

// greedyTrimColor counts same-mask spacing conflicts for each color choice
// of net id on layer l and returns the cheaper color.
func greedyTrimColor(c *common, l, id int) (decomp.Color, int) {
	countFor := func(col decomp.Color) int {
		cnt := 0
		seen := map[int]bool{}
		for _, mr := range c.frags[l].NetRects(id) {
			c.frags[l].Query(mr.Expand(2), func(f fragstore.Frag) {
				if f.Net == id || seen[f.Net] {
					return
				}
				oc, ok := c.colors[l][f.Net]
				if !ok || oc != col {
					return
				}
				if trimAdjacent(mr, f.Rect) {
					seen[f.Net] = true
					cnt++
				}
			})
		}
		return cnt
	}
	cc := countFor(decomp.Core)
	cs := countFor(decomp.Second)
	if cc <= cs {
		return decomp.Core, cc
	}
	return decomp.Second, cs
}

// trimAdjacent reports whether two cell rects are within the baselines'
// modeled minimum coloring distance: orthogonally adjacent tracks (20 nm).
// The 28.28 nm corner-diagonal case is inside d_core too, but the baseline
// models (like early LELE checkers) miss it — those conflicts survive into
// the oracle's #C count, as do same-polygon slots.
func trimAdjacent(a, b geom.Rect) bool {
	xt := cellGap(a.X0, a.X1, b.X0, b.X1)
	yt := cellGap(a.Y0, a.Y1, b.Y0, b.Y1)
	if xt == 0 && yt == 0 {
		return false // overlap: same polygon handled elsewhere
	}
	return (xt == 0 && yt == 1) || (xt == 1 && yt == 0)
}

func cellGap(a0, a1, b0, b1 int) int {
	switch {
	case b0 >= a1:
		return b0 - a1 + 1
	case a0 >= b1:
		return a0 - b1 + 1
	default:
		return 0
	}
}
