// Package baseline implements three detailed routers standing in for the
// prior works the paper's Section IV evaluation compares against (see
// DESIGN.md §4 for the substitution argument):
//
//   - TrimGreedy  — the trim-process router of Gao & Pan [11]: routing and
//     decomposition are simultaneous, but net colors are fixed when routed,
//     no assistant core patterns are planned, and the trim process cannot
//     merge patterns, so odd coloring cycles are unresolvable.
//   - CutNoMerge  — the cut-process router of [16]: assistant cores are used
//     and merged with main cores (the overlay source the paper's Fig. 22
//     illustrates), but the merge technique is never applied to decompose
//     odd cycles of target patterns, and colors are fixed when routed.
//   - TrimExhaustive — the multi-pin-candidate router of Du et al. [10]:
//     every candidate pair is routed tentatively and scored with a full
//     window decomposition, giving high quality at orders-of-magnitude
//     higher runtime.
//
// All three share the repository's A* engine and grid substrate so the
// comparison isolates algorithmic differences, exactly as the paper's
// reimplementation of [10] and [16] does.
package baseline

import (
	"sort"
	"time"

	"sadproute/internal/astar"
	"sadproute/internal/decomp"
	"sadproute/internal/fragstore"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/rules"
)

// Out reports a baseline routing run in the same shape as the paper's
// tables.
type Out struct {
	// NaiveAssists marks cut-process layouts to be decomposed with the
	// non-optimizing assist synthesis of ref. [16].
	NaiveAssists    bool
	Routed, Failed  int
	WirelengthCells int
	Vias            int
	Ripups          int
	CPU             time.Duration
	// Layouts is the colored result for oracle evaluation.
	Layouts []decomp.Layout
	// Trim selects which oracle evaluates the layouts (trim vs cut).
	Trim bool
}

// Routability returns the routed fraction in percent.
func (o *Out) Routability() float64 {
	total := o.Routed + o.Failed
	if total == 0 {
		return 100
	}
	return 100 * float64(o.Routed) / float64(total)
}

// common carries the shared baseline state.
type common struct {
	nl     *netlist.Netlist
	ds     rules.Set
	g      *grid.Grid
	eng    *astar.Engine
	frags  []*fragstore.Store
	colors []map[int]decomp.Color
	pen    map[grid.Cell]int
	out    *Out
}

func newCommon(nl *netlist.Netlist, ds rules.Set) *common {
	c := &common{
		nl:  nl,
		ds:  ds,
		g:   nl.BuildGrid(ds),
		pen: make(map[grid.Cell]int),
		out: &Out{},
	}
	c.eng = astar.Acquire(c.g)
	c.frags = make([]*fragstore.Store, nl.Layers)
	c.colors = make([]map[int]decomp.Color, nl.Layers)
	for l := 0; l < nl.Layers; l++ {
		c.frags[l] = fragstore.New()
		c.colors[l] = make(map[int]decomp.Color)
	}
	return c
}

// release returns the pooled A* engine; the common must not search again.
func (c *common) release() {
	c.eng.Release()
	c.eng = nil
}

func (c *common) search(id int, n netlist.Net, soft int) ([]grid.Cell, bool) {
	cfg := astar.Config{
		WL:        1,
		Via:       1,
		MaxExpand: 400000,
		Step: func(from, to grid.Cell) (int, bool) {
			extra := c.pen[to]
			if to.L == from.L {
				horiz := to.X != from.X
				if horiz != (to.L%2 == 0) {
					extra += 2
				}
			}
			return extra, true
		},
		SoftOccupied: soft,
	}
	return c.eng.Search(int32(id), n.A.Candidates, n.B.Candidates, cfg)
}

func (c *common) commit(id int, path []grid.Cell) {
	for _, cell := range path {
		c.g.Occupy(cell, int32(id))
	}
	byLayer := splitLayers(path, c.nl.Layers)
	for l, cells := range byLayer {
		if len(cells) == 0 {
			continue
		}
		c.frags[l].Add(id, geom.FragmentCells(cells))
	}
	wl, vias := pathStats(path)
	c.out.WirelengthCells += wl
	c.out.Vias += vias
}

func (c *common) ripup(id int, path []grid.Cell) {
	for _, cell := range path {
		c.g.Release(cell)
	}
	wl, vias := pathStats(path)
	c.out.WirelengthCells -= wl
	c.out.Vias -= vias
	for l := 0; l < c.nl.Layers; l++ {
		c.frags[l].RemoveNet(id)
		delete(c.colors[l], id)
	}
}

// layouts exports the colored result.
func (c *common) layouts() []decomp.Layout {
	out := make([]decomp.Layout, c.nl.Layers)
	for l := 0; l < c.nl.Layers; l++ {
		ly := decomp.Layout{Rules: c.ds, Die: c.g.DieNM()}
		for _, n := range c.frags[l].NetIDs() {
			rects := c.frags[l].NetRects(n)
			if len(rects) == 0 {
				continue
			}
			nm := make([]geom.Rect, len(rects))
			for i, cr := range rects {
				nm[i] = c.g.CellsToNM(cr)
			}
			ly.Pats = append(ly.Pats, decomp.Pattern{Net: n, Color: c.colors[l][n], Rects: nm})
		}
		out[l] = ly
	}
	return out
}

func pathStats(path []grid.Cell) (wl, vias int) {
	for i := 1; i < len(path); i++ {
		if path[i].L != path[i-1].L {
			vias++
		} else {
			wl++
		}
	}
	return wl, vias
}

func splitLayers(path []grid.Cell, layers int) [][]geom.Pt {
	out := make([][]geom.Pt, layers)
	seen := make(map[grid.Cell]bool, len(path))
	for _, cell := range path {
		if seen[cell] {
			continue
		}
		seen[cell] = true
		out[cell.L] = append(out[cell.L], geom.Pt{X: cell.X, Y: cell.Y})
	}
	return out
}

// netOrder returns net ids sorted by ascending HPWL.
func netOrder(nl *netlist.Netlist) []int {
	order := make([]int, len(nl.Nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return nl.Nets[order[i]].HPWL() < nl.Nets[order[j]].HPWL()
	})
	return order
}
