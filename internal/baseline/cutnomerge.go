package baseline

import (
	"time"

	"sadproute/internal/netlist"
	"sadproute/internal/rules"
)

// CutNoMerge is the [16]-style cut-process router: it uses assistant core
// patterns (and lets them merge with main cores — the severe-overlay
// mechanism of the paper's Fig. 22) but never applies the merge technique
// to decompose odd cycles of target patterns, and fixes each net's color
// when it is routed. Any two adjacent target patterns must therefore take
// different masks (LELE-style two-coloring), odd cycles included.
type CutNoMerge struct {
	MaxRipup int
}

// Run routes the netlist and returns the result with cut-process layouts.
func (t CutNoMerge) Run(nl *netlist.Netlist, ds rules.Set) *Out {
	start := time.Now() //lint:allow wallclock CPU column of the paper's tables; reporting-only, never fed into routing
	if t.MaxRipup == 0 {
		t.MaxRipup = 3
	}
	c := newCommon(nl, ds)
	defer c.release()
	for _, id := range netOrder(nl) {
		t.routeNet(c, id)
	}
	c.out.Layouts = c.layouts()
	c.out.Trim = false
	c.out.NaiveAssists = true
	for i := range c.out.Layouts {
		c.out.Layouts[i].NaiveAssists = true
	}
	c.out.CPU = time.Since(start) //lint:allow wallclock CPU column of the paper's tables; reporting-only
	return c.out
}

func (t CutNoMerge) routeNet(c *common, id int) {
	n := c.nl.Nets[id]
	for attempt := 0; ; attempt++ {
		path, ok := c.search(id, n, 0)
		if !ok {
			c.out.Failed++
			return
		}
		c.commit(id, path)
		conflicts := 0
		for l := 0; l < c.nl.Layers; l++ {
			if !c.frags[l].Has(id) {
				continue
			}
			col, cnt := greedyTrimColor(c, l, id)
			c.colors[l][id] = col
			conflicts += cnt
		}
		if conflicts == 0 {
			c.out.Routed++
			return
		}
		c.ripup(id, path)
		c.out.Ripups++
		if attempt >= t.MaxRipup {
			c.out.Failed++
			return
		}
		for _, cell := range path {
			c.pen[cell] += 4
		}
	}
}
