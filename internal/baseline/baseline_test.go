package baseline_test

import (
	"testing"
	"time"

	"sadproute/internal/baseline"
	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/rules"
)

func instance(cands int) *bench.Spec {
	return &bench.Spec{
		Name: "b", Nets: 80, Tracks: 40, Layers: 3,
		Seed: 3, PinCandidates: cands, AvgHPWL: 5, Blockages: 1,
	}
}

func TestTrimGreedyRuns(t *testing.T) {
	nl := bench.Generate(*instance(1))
	out := baseline.TrimGreedy{}.Run(nl, rules.Node10nm())
	if out.Routed == 0 {
		t.Fatal("routed nothing")
	}
	if !out.Trim {
		t.Fatal("trim baseline must evaluate with the trim oracle")
	}
	_, tot := decomp.DecomposeTrimLayers(out.Layouts)
	// The trim process without assist cores must leave substantial overlay.
	if tot.SideOverlayUnits == 0 {
		t.Fatal("trim baseline with zero overlay is implausible")
	}
}

func TestCutNoMergeRuns(t *testing.T) {
	nl := bench.Generate(*instance(1))
	out := baseline.CutNoMerge{}.Run(nl, rules.Node10nm())
	if out.Routed == 0 {
		t.Fatal("routed nothing")
	}
	if out.Trim || !out.NaiveAssists {
		t.Fatal("no-merge baseline must use the naive-assist cut oracle")
	}
	for _, ly := range out.Layouts {
		if !ly.NaiveAssists {
			t.Fatal("layouts must carry the naive-assist flag")
		}
	}
}

func TestExhaustiveRespectsBudget(t *testing.T) {
	nl := bench.Generate(*instance(3))
	if out := (baseline.TrimExhaustive{Budget: time.Nanosecond}).Run(nl, rules.Node10nm()); out != nil {
		t.Fatal("nanosecond budget must abort (the paper's NA entries)")
	}
	out := baseline.TrimExhaustive{}.Run(nl, rules.Node10nm())
	if out == nil || out.Routed == 0 {
		t.Fatal("unbudgeted run must complete")
	}
}

// TestBaselinesNeverBeatOursOnOverlay is the Table III/IV shape invariant on
// a shared instance.
func TestBaselinesNeverBeatOursOnOverlay(t *testing.T) {
	cfg := bench.RunConfig{Rules: rules.Node10nm(), Budget: time.Minute}
	mustRun := func(algo bench.Algo) bench.Metrics {
		m, err := bench.Run(bench.Generate(*instance(1)), algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ours := mustRun(bench.AlgoOurs)
	tg := mustRun(bench.AlgoTrimGreedy)
	cm := mustRun(bench.AlgoCutNoMerge)
	if ours.Conflicts+ours.HardOverlays != 0 {
		t.Fatalf("ours must be conflict-free, got %d/%d", ours.Conflicts, ours.HardOverlays)
	}
	if ours.OverlayUnits >= tg.OverlayUnits || ours.OverlayUnits >= cm.OverlayUnits {
		t.Fatalf("overlay ordering violated: ours=%.1f trim=%.1f nomerge=%.1f",
			ours.OverlayUnits, tg.OverlayUnits, cm.OverlayUnits)
	}
}
