package baseline

import (
	"context"
	"sort"
	"time"

	"sadproute/internal/decomp"
	"sadproute/internal/fragstore"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/rules"
)

// TrimExhaustive is the Du-et-al.-style [10] multi-pin-candidate trim
// router: for every net it tentatively routes EVERY pin-candidate pair,
// scores each tentative path with a full window decomposition of the trim
// oracle under both mask choices, and commits the best combination. The
// exhaustive candidate sweep with oracle-grade scoring is what gives [10]
// its enormous runtime in the paper's Table IV (> 100000 s on the larger
// benchmarks).
type TrimExhaustive struct {
	MaxRipup int
	// Budget aborts the run when exceeded (the paper reports "NA" for
	// Test9/Test10 after 100000 s); zero means unlimited.
	Budget time.Duration
}

// Run routes the netlist; returns nil when the time budget was exceeded
// (the paper's "NA" entries). It is RunCtx under a context derived from
// Budget.
func (t TrimExhaustive) Run(nl *netlist.Netlist, ds rules.Set) *Out {
	ctx := context.Background()
	if t.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.Budget)
		defer cancel()
	}
	return t.RunCtx(ctx, nl, ds)
}

// RunCtx routes the netlist under ctx and returns nil as soon as ctx is
// canceled or its deadline passes — the paper's "NA" entries. Cancellation
// is checked per candidate pair inside the exhaustive sweep, not only per
// net, so even the multi-hour nets of the paper-scale Table IV abort
// promptly. The bench harness uses this for per-cell budget cancellation.
func (t TrimExhaustive) RunCtx(ctx context.Context, nl *netlist.Netlist, ds rules.Set) *Out {
	start := time.Now() //lint:allow wallclock CPU column of the paper's tables; reporting-only, never fed into routing
	if t.MaxRipup == 0 {
		t.MaxRipup = 3
	}
	c := newCommon(nl, ds)
	defer c.release()
	for _, id := range netOrder(nl) {
		if !t.routeNet(ctx, c, id) {
			return nil
		}
	}
	c.out.Layouts = c.layouts()
	c.out.Trim = true
	c.out.CPU = time.Since(start) //lint:allow wallclock CPU column of the paper's tables; reporting-only
	return c.out
}

// routeNet routes one net; false means the context was canceled mid-sweep.
func (t TrimExhaustive) routeNet(ctx context.Context, c *common, id int) bool {
	n := c.nl.Nets[id]
	for attempt := 0; ; attempt++ {
		path, cols, score, ok := t.bestCandidate(ctx, c, id, n)
		if !ok {
			return false
		}
		if path == nil {
			c.out.Failed++
			return true
		}
		c.commit(id, path)
		for l, col := range cols {
			if c.frags[l].Has(id) {
				c.colors[l][id] = col
			}
		}
		if score == 0 || attempt >= t.MaxRipup {
			c.out.Routed++
			return true
		}
		c.ripup(id, path)
		c.out.Ripups++
		for _, cell := range path {
			c.pen[cell] += 4
		}
	}
}

// bestCandidate sweeps every pin-candidate pair, tentatively routing and
// oracle-scoring each, and returns the cheapest path with its per-layer
// colors and conflict score. ok is false when ctx was canceled during the
// sweep (the partial best is discarded).
func (t TrimExhaustive) bestCandidate(ctx context.Context, c *common, id int, n netlist.Net) ([]grid.Cell, []decomp.Color, int, bool) {
	var bestPath []grid.Cell
	var bestCols []decomp.Color
	bestScore, bestLen := 1<<40, 1<<40
	for _, a := range n.A.Candidates {
		for _, b := range n.B.Candidates {
			if ctx.Err() != nil {
				return nil, nil, 0, false
			}
			sub := netlist.Net{ID: id, A: netlist.Pin{Candidates: []grid.Cell{a}}, B: netlist.Pin{Candidates: []grid.Cell{b}}}
			path, ok := c.search(id, sub, 0)
			if !ok {
				continue
			}
			cols, score := t.scorePath(c, id, path)
			if score < bestScore || (score == bestScore && len(path) < bestLen) {
				bestScore, bestLen = score, len(path)
				bestPath, bestCols = path, cols
			}
		}
	}
	return bestPath, bestCols, bestScore, true
}

// scorePath tentatively commits the path, decomposes a window around it
// with the trim oracle under both mask choices per layer, and returns the
// best colors and the summed conflict-plus-hard-overlay count.
func (t TrimExhaustive) scorePath(c *common, id int, path []grid.Cell) ([]decomp.Color, int) {
	c.commit(id, path)
	defer c.ripup(id, path)
	cols := make([]decomp.Color, c.nl.Layers)
	total := 0
	for l := 0; l < c.nl.Layers; l++ {
		if !c.frags[l].Has(id) {
			continue
		}
		best, bestCol := 1<<40, decomp.Core
		for _, col := range [2]decomp.Color{decomp.Core, decomp.Second} {
			c.colors[l][id] = col
			res := decomp.DecomposeTrim(t.window(c, l, id))
			bad := len(res.Conflicts) + res.HardOverlays + len(res.Violations)
			if bad < best {
				best, bestCol = bad, col
			}
		}
		delete(c.colors[l], id)
		cols[l] = bestCol
		total += best
	}
	return cols, total
}

// window assembles the trim-oracle input around the net's fragments.
func (t TrimExhaustive) window(c *common, l, id int) decomp.Layout {
	var bbox geom.Rect
	for _, r := range c.frags[l].NetRects(id) {
		bbox = bbox.Union(r)
	}
	in := map[int]bool{id: true}
	c.frags[l].Query(bbox.Expand(3), func(f fragstore.Frag) { in[f.Net] = true })
	ids := make([]int, 0, len(in))
	for n := range in {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	ly := decomp.Layout{Rules: c.ds, Die: c.g.DieNM()}
	for _, n := range ids {
		rects := c.frags[l].NetRects(n)
		if len(rects) == 0 {
			continue
		}
		nm := make([]geom.Rect, len(rects))
		for i, cr := range rects {
			nm[i] = c.g.CellsToNM(cr)
		}
		ly.Pats = append(ly.Pats, decomp.Pattern{Net: n, Color: c.colors[l][n], Rects: nm})
	}
	return ly
}
