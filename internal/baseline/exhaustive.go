package baseline

import (
	"sort"
	"time"

	"sadproute/internal/decomp"
	"sadproute/internal/fragstore"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/rules"
)

// TrimExhaustive is the Du-et-al.-style [10] multi-pin-candidate trim
// router: for every net it tentatively routes EVERY pin-candidate pair,
// scores each tentative path with a full window decomposition of the trim
// oracle under both mask choices, and commits the best combination. The
// exhaustive candidate sweep with oracle-grade scoring is what gives [10]
// its enormous runtime in the paper's Table IV (> 100000 s on the larger
// benchmarks).
type TrimExhaustive struct {
	MaxRipup int
	// Budget aborts the run when exceeded (the paper reports "NA" for
	// Test9/Test10 after 100000 s); zero means unlimited.
	Budget time.Duration
}

// Run routes the netlist; returns nil when the time budget was exceeded
// (the paper's "NA" entries).
func (t TrimExhaustive) Run(nl *netlist.Netlist, ds rules.Set) *Out {
	start := time.Now()
	if t.MaxRipup == 0 {
		t.MaxRipup = 3
	}
	c := newCommon(nl, ds)
	for _, id := range netOrder(nl) {
		if t.Budget > 0 && time.Since(start) > t.Budget {
			return nil
		}
		t.routeNet(c, id)
	}
	c.out.Layouts = c.layouts()
	c.out.Trim = true
	c.out.CPU = time.Since(start)
	return c.out
}

func (t TrimExhaustive) routeNet(c *common, id int) {
	n := c.nl.Nets[id]
	for attempt := 0; ; attempt++ {
		path, cols, score := t.bestCandidate(c, id, n)
		if path == nil {
			c.out.Failed++
			return
		}
		c.commit(id, path)
		for l, col := range cols {
			if c.frags[l].Has(id) {
				c.colors[l][id] = col
			}
		}
		if score == 0 || attempt >= t.MaxRipup {
			c.out.Routed++
			return
		}
		c.ripup(id, path)
		c.out.Ripups++
		for _, cell := range path {
			c.pen[cell] += 4
		}
	}
}

// bestCandidate sweeps every pin-candidate pair, tentatively routing and
// oracle-scoring each, and returns the cheapest path with its per-layer
// colors and conflict score.
func (t TrimExhaustive) bestCandidate(c *common, id int, n netlist.Net) ([]grid.Cell, []decomp.Color, int) {
	var bestPath []grid.Cell
	var bestCols []decomp.Color
	bestScore, bestLen := 1<<40, 1<<40
	for _, a := range n.A.Candidates {
		for _, b := range n.B.Candidates {
			sub := netlist.Net{ID: id, A: netlist.Pin{Candidates: []grid.Cell{a}}, B: netlist.Pin{Candidates: []grid.Cell{b}}}
			path, ok := c.search(id, sub, 0)
			if !ok {
				continue
			}
			cols, score := t.scorePath(c, id, path)
			if score < bestScore || (score == bestScore && len(path) < bestLen) {
				bestScore, bestLen = score, len(path)
				bestPath, bestCols = path, cols
			}
		}
	}
	return bestPath, bestCols, bestScore
}

// scorePath tentatively commits the path, decomposes a window around it
// with the trim oracle under both mask choices per layer, and returns the
// best colors and the summed conflict-plus-hard-overlay count.
func (t TrimExhaustive) scorePath(c *common, id int, path []grid.Cell) ([]decomp.Color, int) {
	c.commit(id, path)
	defer c.ripup(id, path)
	cols := make([]decomp.Color, c.nl.Layers)
	total := 0
	for l := 0; l < c.nl.Layers; l++ {
		if !c.frags[l].Has(id) {
			continue
		}
		best, bestCol := 1<<40, decomp.Core
		for _, col := range [2]decomp.Color{decomp.Core, decomp.Second} {
			c.colors[l][id] = col
			res := decomp.DecomposeTrim(t.window(c, l, id))
			bad := len(res.Conflicts) + res.HardOverlays + len(res.Violations)
			if bad < best {
				best, bestCol = bad, col
			}
		}
		delete(c.colors[l], id)
		cols[l] = bestCol
		total += best
	}
	return cols, total
}

// window assembles the trim-oracle input around the net's fragments.
func (t TrimExhaustive) window(c *common, l, id int) decomp.Layout {
	var bbox geom.Rect
	for _, r := range c.frags[l].NetRects(id) {
		bbox = bbox.Union(r)
	}
	in := map[int]bool{id: true}
	c.frags[l].Query(bbox.Expand(3), func(f fragstore.Frag) { in[f.Net] = true })
	ids := make([]int, 0, len(in))
	for n := range in {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	ly := decomp.Layout{Rules: c.ds, Die: c.g.DieNM()}
	for _, n := range ids {
		rects := c.frags[l].NetRects(n)
		if len(rects) == 0 {
			continue
		}
		nm := make([]geom.Rect, len(rects))
		for i, cr := range rects {
			nm[i] = c.g.CellsToNM(cr)
		}
		ly.Pats = append(ly.Pats, decomp.Pattern{Net: n, Color: c.colors[l][n], Rects: nm})
	}
	return ly
}
