package sparse

import (
	"math/rand"
	"testing"

	"sadproute/internal/astar"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/rules"
)

func mk(w, h, l int) *grid.Grid { return grid.New(w, h, l, rules.Node10nm()) }

// uniformHook is the corridor cost model expressed as a dense step-cost
// hook: the differential tests run the dense engine under it, so both
// engines price the identical cost function and must agree on the optimum.
func uniformHook(pins map[grid.Cell]bool, cfg Config) astar.StepCost {
	return func(from, to grid.Cell) (int, bool) {
		extra := 0
		if to.L != from.L {
			if pins[from] || pins[to] {
				extra += cfg.PinVia
			}
		} else {
			horiz := to.X != from.X
			if horiz != (to.L%2 == 0) {
				extra += cfg.DirPenalty
			}
		}
		return extra, true
	}
}

// price computes a path's cost under the corridor model.
func price(path []grid.Cell, pins map[grid.Cell]bool, cfg Config) int {
	hook := uniformHook(pins, cfg)
	total := 0
	for i := 1; i < len(path); i++ {
		step := cfg.WL * astar.Scale
		if path[i].L != path[i-1].L {
			step = cfg.Via * astar.Scale
		}
		extra, _ := hook(path[i-1], path[i])
		total += step + extra
	}
	return total
}

func pinSet(src, tgt []grid.Cell) map[grid.Cell]bool {
	m := map[grid.Cell]bool{}
	for _, c := range src {
		m[c] = true
	}
	for _, c := range tgt {
		m[c] = true
	}
	return m
}

// checkPath asserts a snapped path is a chain of unit steps over free
// cells from a source to a target.
func checkPath(t *testing.T, g *grid.Grid, src, tgt []grid.Cell, path []grid.Cell) {
	t.Helper()
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	in := func(cs []grid.Cell, c grid.Cell) bool {
		for _, v := range cs {
			if v == c {
				return true
			}
		}
		return false
	}
	if !in(src, path[0]) {
		t.Fatalf("path starts at %v, not a source", path[0])
	}
	if !in(tgt, path[len(path)-1]) {
		t.Fatalf("path ends at %v, not a target", path[len(path)-1])
	}
	for i, c := range path {
		if !g.In(c) {
			t.Fatalf("cell %v out of bounds", c)
		}
		if g.At(c) != grid.Free {
			t.Fatalf("cell %v not free (%d)", c, g.At(c))
		}
		if i == 0 {
			continue
		}
		p := path[i-1]
		d := absi(c.X-p.X) + absi(c.Y-p.Y) + absi(c.L-p.L)
		if d != 1 {
			t.Fatalf("non-unit step %v -> %v", p, c)
		}
	}
}

var baseCfg = Config{WL: 1, Via: 1, DirPenalty: 2, PinVia: 12}

// searchBoth runs the corridor engine and the dense engine under the same
// cost model and cross-checks reachability and optimal cost; it returns
// the corridor result.
func searchBoth(t *testing.T, g *grid.Grid, src, tgt []grid.Cell, cfg Config) ([]grid.Cell, int, Outcome) {
	t.Helper()
	sp := NewGraph(g)
	e := Acquire(sp)
	defer e.Release()
	path, cost, out := e.Search(src, tgt, cfg)
	pins := pinSet(src, tgt)
	dpath, dok := astar.New(g).Search(0, src, tgt, astar.Config{WL: cfg.WL, Via: cfg.Via, Step: uniformHook(pins, cfg)})
	if (out == Found) != dok {
		t.Fatalf("reachability disagrees: sparse=%v dense=%v", out, dok)
	}
	if out == Found {
		checkPath(t, g, src, tgt, path)
		if got := price(path, pins, cfg); got != cost {
			t.Fatalf("reported cost %d != repriced %d", cost, got)
		}
		if dcost := price(dpath, pins, cfg); dcost != cost {
			t.Fatalf("sparse cost %d != dense optimum %d", cost, dcost)
		}
	}
	return path, cost, out
}

func TestZeroObstacleDieSingleCorridor(t *testing.T) {
	g := mk(64, 48, 2)
	src := []grid.Cell{{X: 3, Y: 5}}
	tgt := []grid.Cell{{X: 60, Y: 40}}
	sp := NewGraph(g)
	e := NewEngine(sp)
	_, _, out := e.Search(src, tgt, baseCfg)
	if out != Found {
		t.Fatalf("out=%v", out)
	}
	// An empty die contributes no obstacle boundaries: the snapshot is die
	// edges plus pin coordinates only, independent of die area.
	if len(e.xs) > 2+6 || len(e.ys) > 2+6 {
		t.Fatalf("snapshot not sparse on empty die: %d x %d coords", len(e.xs), len(e.ys))
	}
	searchBoth(t, g, src, tgt, baseCfg)
}

func TestFullyBlockedRowSplitsDie(t *testing.T) {
	g := mk(32, 32, 1)
	g.Block(0, geom.Rect{X0: 0, Y0: 16, X1: 32, Y1: 17})
	_, _, out := searchBoth(t, g, []grid.Cell{{X: 4, Y: 4}}, []grid.Cell{{X: 4, Y: 28}}, baseCfg)
	if out != NoPath {
		t.Fatalf("a fully blocked row must split a single-layer die, got %v", out)
	}
	// The same wall on one layer of a two-layer die is bypassed by vias.
	g2 := mk(32, 32, 2)
	g2.Block(0, geom.Rect{X0: 0, Y0: 16, X1: 32, Y1: 17})
	_, _, out = searchBoth(t, g2, []grid.Cell{{X: 4, Y: 4}}, []grid.Cell{{X: 4, Y: 28}}, baseCfg)
	if out != Found {
		t.Fatalf("two-layer die must route around the wall, got %v", out)
	}
}

func TestAdjacentBlockagesShareBoundary(t *testing.T) {
	// Two abutting blockages form one obstacle: the shared internal edge
	// at x=16 must not leave dangling boundary counts, and the corridor
	// search must treat the union as a single wall with a gap above it.
	g := mk(32, 32, 1)
	g.Block(0, geom.Rect{X0: 8, Y0: 0, X1: 16, Y1: 24})
	g.Block(0, geom.Rect{X0: 16, Y0: 0, X1: 24, Y1: 24})
	sp := NewGraph(g)
	for x := 9; x < 23; x++ {
		if sp.cntX[x] != 0 {
			t.Fatalf("interior column %d of merged blockage is marked interesting (%d)", x, sp.cntX[x])
		}
	}
	if sp.cntX[7] == 0 || sp.cntX[24] == 0 {
		t.Fatal("outer boundary columns must be interesting")
	}
	path, _, out := searchBoth(t, g, []grid.Cell{{X: 2, Y: 2}}, []grid.Cell{{X: 30, Y: 2}}, baseCfg)
	if out != Found {
		t.Fatalf("gap above the wall exists, got %v", out)
	}
	for _, c := range path {
		if c.Y >= 24 || c.X < 8 || c.X >= 24 {
			continue
		}
		t.Fatalf("path crosses merged blockage at %v", c)
	}
}

func TestCorridorSnapsAtDieEdges(t *testing.T) {
	// A wall one row below the top edge leaves a single-cell corridor
	// along y=0; the optimal path must squeeze through it, touching cells
	// whose coordinates only the die-edge rule makes interesting.
	g := mk(40, 16, 1)
	g.Block(0, geom.Rect{X0: 10, Y0: 1, X1: 30, Y1: 16})
	path, _, out := searchBoth(t, g, []grid.Cell{{X: 2, Y: 8}}, []grid.Cell{{X: 38, Y: 8}}, baseCfg)
	if out != Found {
		t.Fatalf("edge corridor exists, got %v", out)
	}
	edge := false
	for _, c := range path {
		if c.Y == 0 {
			edge = true
		}
	}
	if !edge {
		t.Fatal("path must use the die-edge corridor at y=0")
	}
}

func TestPinOnDieCornerRoutes(t *testing.T) {
	g := mk(24, 24, 2)
	searchBoth(t, g, []grid.Cell{{X: 0, Y: 0}}, []grid.Cell{{X: 23, Y: 23}}, baseCfg)
}

func TestOccupiedTargetUnreachable(t *testing.T) {
	g := mk(16, 16, 1)
	tgt := grid.Cell{X: 10, Y: 10}
	g.Occupy(tgt, 3)
	_, _, out := searchBoth(t, g, []grid.Cell{{X: 2, Y: 2}}, []grid.Cell{tgt}, baseCfg)
	if out != NoPath {
		t.Fatalf("occupied target must be unreachable, got %v", out)
	}
}

func TestSourceEqualsTarget(t *testing.T) {
	g := mk(16, 16, 1)
	c := grid.Cell{X: 5, Y: 5}
	path, cost, out := searchBoth(t, g, []grid.Cell{c}, []grid.Cell{c}, baseCfg)
	if out != Found || cost != 0 || len(path) != 1 || path[0] != c {
		t.Fatalf("trivial search: path=%v cost=%d out=%v", path, cost, out)
	}
}

// graphsEqual compares the full derived state of two graphs.
func graphsEqual(a, b *Graph) bool {
	if a.W != b.W || a.H != b.H || a.Layers != b.Layers {
		return false
	}
	for x := 0; x < a.W; x++ {
		if a.cntX[x] != b.cntX[x] {
			return false
		}
	}
	for y := 0; y < a.H; y++ {
		if a.cntY[y] != b.cntY[y] {
			return false
		}
	}
	for l := 0; l < a.Layers; l++ {
		for y := 0; y < a.H; y++ {
			ai, bi := a.rowFree[l][y].Intervals(), b.rowFree[l][y].Intervals()
			if len(ai) != len(bi) {
				return false
			}
			for k := range ai {
				if ai[k] != bi[k] {
					return false
				}
			}
		}
		for x := 0; x < a.W; x++ {
			ai, bi := a.colFree[l][x].Intervals(), b.colFree[l][x].Intervals()
			if len(ai) != len(bi) {
				return false
			}
			for k := range ai {
				if ai[k] != bi[k] {
					return false
				}
			}
		}
	}
	return true
}

func TestIncrementalUpdatesMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := mk(48, 40, 3)
	g.Block(1, geom.Rect{X0: 10, Y0: 10, X1: 20, Y1: 30})
	sp := NewGraph(g)
	var owned []grid.Cell
	for step := 0; step < 4000; step++ {
		if len(owned) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(owned))
			c := owned[k]
			owned = append(owned[:k], owned[k+1:]...)
			g.Release(c)
			sp.Release(c)
		} else {
			c := grid.Cell{X: rng.Intn(g.W), Y: rng.Intn(g.H), L: rng.Intn(g.Layers)}
			if g.At(c) != grid.Free {
				continue
			}
			g.Occupy(c, 1)
			sp.Occupy(c)
			owned = append(owned, c)
		}
		if step%500 == 0 {
			if !graphsEqual(sp, NewGraph(g)) {
				t.Fatalf("incremental graph diverged from rebuild at step %d", step)
			}
		}
	}
	if !graphsEqual(sp, NewGraph(g)) {
		t.Fatal("incremental graph diverged from rebuild at end")
	}
}

// randInstance builds a random low-congestion multi-layer instance with
// blockages, committed foreign nets, and multi-candidate pins.
func randInstance(rng *rand.Rand) (*grid.Grid, []grid.Cell, []grid.Cell) {
	w, h := 8+rng.Intn(40), 8+rng.Intn(40)
	layers := 1 + rng.Intn(3)
	g := grid.New(w, h, layers, rules.Node10nm())
	for i, nb := 0, rng.Intn(5); i < nb; i++ {
		bw, bh := 1+rng.Intn(w/2), 1+rng.Intn(h/2)
		x0, y0 := rng.Intn(w-bw+1), rng.Intn(h-bh+1)
		g.Block(rng.Intn(layers), geom.Rect{X0: x0, Y0: y0, X1: x0 + bw, Y1: y0 + bh})
	}
	for i, no := 0, rng.Intn(40); i < no; i++ {
		c := grid.Cell{X: rng.Intn(w), Y: rng.Intn(h), L: rng.Intn(layers)}
		if g.At(c) == grid.Free {
			g.Occupy(c, int32(1+rng.Intn(4)))
		}
	}
	pick := func(n int) []grid.Cell {
		var out []grid.Cell
		for tries := 0; len(out) < n && tries < 50; tries++ {
			c := grid.Cell{X: rng.Intn(w), Y: rng.Intn(h), L: rng.Intn(layers)}
			if g.At(c) == grid.Free {
				out = append(out, c)
			}
		}
		return out
	}
	return g, pick(1 + rng.Intn(3)), pick(1 + rng.Intn(3))
}

func randCfg(rng *rand.Rand) Config {
	wl := 1 + rng.Intn(3)
	return Config{
		WL:         wl,
		Via:        wl + rng.Intn(4), // dense heuristic needs Via >= WL
		DirPenalty: rng.Intn(4),
		PinVia:     rng.Intn(3) * 6,
	}
}

// diffOne cross-checks one random instance; shared by the deterministic
// differential test and the fuzz target.
func diffOne(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g, src, tgt := randInstance(rng)
	if len(src) == 0 || len(tgt) == 0 {
		return
	}
	cfg := randCfg(rng)
	sp := NewGraph(g)
	e := Acquire(sp)
	defer e.Release()
	path, cost, out := e.Search(src, tgt, cfg)
	pins := pinSet(src, tgt)
	dpath, dok := astar.New(g).Search(0, src, tgt, astar.Config{WL: cfg.WL, Via: cfg.Via, Step: uniformHook(pins, cfg)})
	if (out == Found) != dok {
		t.Fatalf("seed %d: reachability disagrees: sparse=%v dense=%v", seed, out, dok)
	}
	if out != Found {
		return
	}
	checkPath(t, g, src, tgt, path)
	if got := price(path, pins, cfg); got != cost {
		t.Fatalf("seed %d: reported cost %d != repriced %d", seed, cost, got)
	}
	if dcost := price(dpath, pins, cfg); dcost != cost {
		t.Fatalf("seed %d: sparse cost %d, dense optimum %d", seed, cost, dcost)
	}
}

func TestDifferentialVsDense(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		diffOne(t, seed)
	}
}

// FuzzSparseDense is the differential correctness bar: on arbitrary
// instances the corridor engine and the dense engine must agree on
// reachability and on the optimal cost under the shared uniform model.
func FuzzSparseDense(f *testing.F) {
	for s := int64(0); s < 16; s++ {
		f.Add(s)
	}
	f.Fuzz(diffOne)
}

// TestMetamorphicMirror mirrors an instance across the x axis: the
// passable region is isomorphic, so the optimal cost must be identical.
func TestMetamorphicMirror(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		g, src, tgt := randInstance(rng)
		if len(src) == 0 || len(tgt) == 0 {
			continue
		}
		cfg := randCfg(rng)
		mg := grid.New(g.W, g.H, g.Layers, rules.Node10nm())
		for l := 0; l < g.Layers; l++ {
			for y := 0; y < g.H; y++ {
				for x := 0; x < g.W; x++ {
					c := grid.Cell{X: x, Y: y, L: l}
					mc := grid.Cell{X: g.W - 1 - x, Y: y, L: l}
					switch v := g.At(c); v {
					case grid.Free:
					case grid.Blocked:
						mg.Block(l, geom.Rect{X0: mc.X, Y0: mc.Y, X1: mc.X + 1, Y1: mc.Y + 1})
					default:
						mg.Occupy(mc, v)
					}
				}
			}
		}
		mirror := func(cs []grid.Cell) []grid.Cell {
			out := make([]grid.Cell, len(cs))
			for i, c := range cs {
				out[i] = grid.Cell{X: g.W - 1 - c.X, Y: c.Y, L: c.L}
			}
			return out
		}
		_, cost, out := NewEngine(NewGraph(g)).Search(src, tgt, cfg)
		_, mcost, mout := NewEngine(NewGraph(mg)).Search(mirror(src), mirror(tgt), cfg)
		if out != mout || (out == Found && cost != mcost) {
			t.Fatalf("seed %d: mirror changed outcome: (%v,%d) vs (%v,%d)", seed, out, cost, mout, mcost)
		}
	}
}

// TestMetamorphicTranslation embeds an instance at two offsets inside a
// larger die whose surroundings are blocked: the optimal cost must not
// depend on the placement.
func TestMetamorphicTranslation(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		g, src, tgt := randInstance(rng)
		if len(src) == 0 || len(tgt) == 0 {
			continue
		}
		cfg := randCfg(rng)
		embed := func(dx, dy int) ([]grid.Cell, int, Outcome) {
			big := grid.New(g.W+10, g.H+10, g.Layers, rules.Node10nm())
			for l := 0; l < g.Layers; l++ {
				// Block everything, then carve the translated instance.
				big.Block(l, geom.Rect{X0: 0, Y0: 0, X1: big.W, Y1: big.H})
			}
			for l := 0; l < g.Layers; l++ {
				for y := 0; y < g.H; y++ {
					for x := 0; x < g.W; x++ {
						v := g.At(grid.Cell{X: x, Y: y, L: l})
						tc := grid.Cell{X: x + dx, Y: y + dy, L: l}
						if v != grid.Blocked {
							// Occupy writes the raw state, so it also carves
							// Free back out of the blocked frame.
							big.Occupy(tc, v)
						}
					}
				}
			}
			move := func(cs []grid.Cell) []grid.Cell {
				out := make([]grid.Cell, len(cs))
				for i, c := range cs {
					out[i] = grid.Cell{X: c.X + dx, Y: c.Y + dy, L: c.L}
				}
				return out
			}
			_, cost, out := NewEngine(NewGraph(big)).Search(move(src), move(tgt), cfg)
			return nil, cost, out
		}
		_, c1, o1 := embed(0, 0)
		_, c2, o2 := embed(7, 4)
		if o1 != o2 || (o1 == Found && c1 != c2) {
			t.Fatalf("seed %d: translation changed outcome: (%v,%d) vs (%v,%d)", seed, o1, c1, o2, c2)
		}
	}
}
