package sparse

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
)

// blockAll blocks a rect on every layer — a full-stack obstacle the search
// cannot hop via another layer.
func blockAll(g *grid.Grid, r geom.Rect) {
	for l := 0; l < g.Layers; l++ {
		g.Block(l, r)
	}
}

// TestWindowedFastPathStaysLocal pins the point of the windowed search: on
// a die far larger than the first margin tier, a short net must be solved
// inside its tier-1 window without the node set ever touching the die
// edges. The snapshot axes are inspected directly (same package).
func TestWindowedFastPathStaysLocal(t *testing.T) {
	g := mk(1200, 1200, 2)
	src := []grid.Cell{{X: 600, Y: 600}}
	tgt := []grid.Cell{{X: 612, Y: 606}}
	sp := NewGraph(g)
	e := Acquire(sp)
	defer e.Release()
	path, cost, out := e.Search(src, tgt, baseCfg)
	if out != Found {
		t.Fatalf("outcome %v, want Found", out)
	}
	checkPath(t, g, src, tgt, path)
	if got := price(path, pinSet(src, tgt), baseCfg); got != cost {
		t.Fatalf("reported cost %d != repriced %d", cost, got)
	}
	// The certificate accepted a tier-1 result, so the last snapshot is
	// the 64-margin window: node coordinates stay near the pins.
	if e.xs[0] < 600-65 || e.xs[len(e.xs)-1] > 612+65 {
		t.Fatalf("x axis escaped the tier-1 window: [%d, %d]", e.xs[0], e.xs[len(e.xs)-1])
	}
	if e.ys[0] < 600-65 || e.ys[len(e.ys)-1] > 606+65 {
		t.Fatalf("y axis escaped the tier-1 window: [%d, %d]", e.ys[0], e.ys[len(e.ys)-1])
	}
	if len(e.xs) > 16 || len(e.ys) > 16 {
		t.Fatalf("empty-window node axes too dense: %d x %d", len(e.xs), len(e.ys))
	}
}

// TestWindowEscalatesPastBlockedWindow forces tier escalation through a
// windowed NoPath: a full-stack wall splits the tier-1 window completely,
// and the only gap lies outside it. The escalated (full-die) result must
// still be the dense optimum.
func TestWindowEscalatesPastBlockedWindow(t *testing.T) {
	g := mk(400, 200, 2)
	// Wall at x=210 from y=30 down to the die edge; the gap y<30 is
	// outside the tier-1 window (y0 = 100-64 = 36).
	blockAll(g, geom.Rect{X0: 210, Y0: 30, X1: 211, Y1: 200})
	src := []grid.Cell{{X: 200, Y: 100}}
	tgt := []grid.Cell{{X: 220, Y: 100}}
	path, _, out := searchBoth(t, g, src, tgt, baseCfg)
	if out != Found {
		t.Fatalf("outcome %v, want Found after escalation", out)
	}
	for _, c := range path {
		if c.X == 210 && c.Y >= 30 {
			t.Fatalf("path crosses the wall at %v", c)
		}
	}
}

// TestWindowCertRejectsEdgeHuggingDetour forces the escalate-on-cost arm:
// the only gap inside the tier-1 window sits exactly on the window edge,
// so a path exists in the window but its cost (base detour plus direction
// penalties and vias) exceeds WL*Scale*(h0+2M) and the certificate cannot
// rule out a cheaper route outside. The escalated result must match the
// dense optimum.
func TestWindowCertRejectsEdgeHuggingDetour(t *testing.T) {
	g := mk(400, 200, 2)
	// Tier-1 window is y ∈ [36, 164]; wall y<164 leaves the gap rows
	// 164..199, whose first row is the window's edge row.
	blockAll(g, geom.Rect{X0: 210, Y0: 0, X1: 211, Y1: 164})
	src := []grid.Cell{{X: 200, Y: 100}}
	tgt := []grid.Cell{{X: 220, Y: 100}}
	if _, _, out := searchBoth(t, g, src, tgt, baseCfg); out != Found {
		t.Fatalf("outcome %v, want Found", out)
	}
}

// TestWindowedNoPathIsAuthoritative pins that NoPath is only ever reported
// by the full-die tier: a target walled in on every layer of a large die
// must come back NoPath (not Aborted, not a false Found), agreeing with
// the dense engine.
func TestWindowedNoPathIsAuthoritative(t *testing.T) {
	g := mk(400, 400, 2)
	blockAll(g, geom.Rect{X0: 340, Y0: 340, X1: 361, Y1: 341}) // north
	blockAll(g, geom.Rect{X0: 340, Y0: 360, X1: 361, Y1: 361}) // south
	blockAll(g, geom.Rect{X0: 340, Y0: 340, X1: 341, Y1: 361}) // west
	blockAll(g, geom.Rect{X0: 360, Y0: 340, X1: 361, Y1: 361}) // east
	src := []grid.Cell{{X: 50, Y: 50}}
	tgt := []grid.Cell{{X: 350, Y: 350}}
	if _, _, out := searchBoth(t, g, src, tgt, baseCfg); out != NoPath {
		t.Fatalf("outcome %v, want NoPath", out)
	}
}

// TestWindowMaxExpandAccruesAcrossTiers pins that the expansion budget is
// shared by all tiers of one Search: a budget too small for even the
// tier-1 window aborts the whole search instead of resetting per tier.
func TestWindowMaxExpandAccruesAcrossTiers(t *testing.T) {
	g := mk(400, 200, 2)
	blockAll(g, geom.Rect{X0: 210, Y0: 30, X1: 211, Y1: 200})
	src := []grid.Cell{{X: 200, Y: 100}}
	tgt := []grid.Cell{{X: 220, Y: 100}}
	sp := NewGraph(g)
	e := Acquire(sp)
	defer e.Release()
	cfg := baseCfg
	cfg.MaxExpand = 4
	if _, _, out := e.Search(src, tgt, cfg); out != Aborted {
		t.Fatalf("outcome %v, want Aborted under a 4-expansion budget", out)
	}
	if e.Expand > 5 { // the pop that trips the budget is itself counted
		t.Fatalf("expanded %d nodes past the budget", e.Expand)
	}
}
