// Package sparse implements a corridor routing graph for large
// low-congestion instances: instead of expanding the dense 3-D grid one
// track at a time, search runs on the Hanan-style product of "interesting"
// coordinates — free columns/rows bordering an obstacle (a blockage or a
// committed net), die edges, and the query's pin coordinates — with
// corridors between adjacent interesting coordinates as weighted edges.
// On a big die with macro blockages the node count tracks obstacle
// complexity, not die area, which is the order-of-magnitude lever ROADMAP
// names for 100k-net instances.
//
// The graph prices corridors in the same integer half-wirelength cost
// units as internal/astar (astar.Scale applies): a planar step costs
// WL*Scale plus DirPenalty when it runs against the layer's preferred
// direction (even layers horizontal, odd vertical), a via costs Via*Scale
// plus PinVia when either via cell is a pin candidate. That model is
// exactly the uniform part of the router's dense step cost — every extra
// the dense hook can add on top (rip-up penalty inflation, the gamma_2
// lookahead) is >= 0 — so a corridor path's cost lower-bounds the dense
// cost of any path and the router can prove dense-optimality of a snapped
// corridor path by repricing it (see internal/router's sparse adoption
// check).
//
// Completeness of the coordinate set follows from a segment-sliding
// argument: any maximal constant-x portion of a path (its vertical runs
// plus the vias linking them) slides sideways as a unit without changing
// the cost model's step counts until it is blocked by an obstacle — which
// makes its column a free column bordering an obstacle, i.e. interesting —
// or reaches a die edge or a pin coordinate. Pin-adjacent coordinates
// (px±1, py±1) are included so a cost-neutral slide never lands a via on a
// pin cell it could have stopped next to. The symmetric argument covers
// constant-y portions, so some minimum-cost path under the model lies on
// the product grid.
package sparse

import (
	"sadproute/internal/grid"
	"sadproute/internal/interval"
)

// Graph is the incrementally-maintained occupancy index a corridor search
// runs against: per-(layer,row) and per-(layer,column) free-interval sets,
// plus boundary refcounts that make the interesting-coordinate snapshot an
// O(W+H) scan instead of an O(cells) rebuild per search. It mirrors one
// grid.Grid; the owner must forward every Occupy/Release so the mirror
// stays exact. Not safe for concurrent use.
type Graph struct {
	W, H, Layers int
	rowFree      [][]interval.Set // [l][y]: free x-intervals of row y on layer l
	colFree      [][]interval.Set // [l][x]: free y-intervals of column x on layer l
	// cntX[x] counts (free cell at column x, obstacle at column x±1) pairs
	// over all rows and layers; cntX[x] > 0 makes x interesting. cntY is
	// the row-axis mirror. int32 keeps the arrays compact; a column's
	// count is bounded by 2*H*Layers, far below overflow.
	cntX, cntY []int32
}

// NewGraph builds the occupancy mirror of g: committed-net cells and
// blockages are obstacles alike (a corridor search never routes a net that
// owns cells, so passable == grid.Free exactly).
func NewGraph(g *grid.Grid) *Graph {
	sp := &Graph{
		W:      g.W,
		H:      g.H,
		Layers: g.Layers,
		cntX:   make([]int32, g.W),
		cntY:   make([]int32, g.H),
	}
	sp.rowFree = make([][]interval.Set, g.Layers)
	sp.colFree = make([][]interval.Set, g.Layers)
	for l := 0; l < g.Layers; l++ {
		sp.rowFree[l] = make([]interval.Set, g.H)
		sp.colFree[l] = make([]interval.Set, g.W)
		for y := 0; y < g.H; y++ {
			set := &sp.rowFree[l][y]
			run := -1
			for x := 0; x < g.W; x++ {
				if g.At(grid.Cell{X: x, Y: y, L: l}) == grid.Free {
					if run < 0 {
						run = x
					}
					continue
				}
				if run >= 0 {
					set.Add(interval.Iv{Lo: run, Hi: x})
					sp.cntX[x-1]++ // free run ends against an obstacle
					run = -1
				}
				if x+1 < g.W && g.At(grid.Cell{X: x + 1, Y: y, L: l}) == grid.Free {
					sp.cntX[x+1]++ // free cell bordered by this obstacle
				}
			}
			if run >= 0 {
				set.Add(interval.Iv{Lo: run, Hi: g.W})
			}
		}
		for x := 0; x < g.W; x++ {
			set := &sp.colFree[l][x]
			run := -1
			for y := 0; y < g.H; y++ {
				if g.At(grid.Cell{X: x, Y: y, L: l}) == grid.Free {
					if run < 0 {
						run = y
					}
					continue
				}
				if run >= 0 {
					set.Add(interval.Iv{Lo: run, Hi: y})
					sp.cntY[y-1]++
					run = -1
				}
				if y+1 < g.H && g.At(grid.Cell{X: x, Y: y + 1, L: l}) == grid.Free {
					sp.cntY[y+1]++
				}
			}
			if run >= 0 {
				set.Add(interval.Iv{Lo: run, Hi: g.H})
			}
		}
	}
	return sp
}

// Free reports whether the mirror considers c passable.
func (sp *Graph) Free(c grid.Cell) bool {
	return sp.rowFree[c.L][c.Y].Contains(c.X)
}

// Occupy marks a free cell as an obstacle, updating the interval sets and
// the boundary refcounts in O(1) interval operations. The caller must
// forward every grid.Occupy (and build-time Block) exactly once.
func (sp *Graph) Occupy(c grid.Cell) {
	row, col := &sp.rowFree[c.L][c.Y], &sp.colFree[c.L][c.X]
	// c stops being a free cell: retire the (c free, neighbor obstacle)
	// witnesses it contributed.
	if c.X > 0 && !row.Contains(c.X-1) {
		sp.cntX[c.X]--
	}
	if c.X+1 < sp.W && !row.Contains(c.X+1) {
		sp.cntX[c.X]--
	}
	if c.Y > 0 && !col.Contains(c.Y-1) {
		sp.cntY[c.Y]--
	}
	if c.Y+1 < sp.H && !col.Contains(c.Y+1) {
		sp.cntY[c.Y]--
	}
	row.Subtract(interval.Iv{Lo: c.X, Hi: c.X + 1})
	col.Subtract(interval.Iv{Lo: c.Y, Hi: c.Y + 1})
	// c becomes an obstacle: its still-free neighbors gain a witness.
	if c.X > 0 && row.Contains(c.X-1) {
		sp.cntX[c.X-1]++
	}
	if c.X+1 < sp.W && row.Contains(c.X+1) {
		sp.cntX[c.X+1]++
	}
	if c.Y > 0 && col.Contains(c.Y-1) {
		sp.cntY[c.Y-1]++
	}
	if c.Y+1 < sp.H && col.Contains(c.Y+1) {
		sp.cntY[c.Y+1]++
	}
}

// Release is the exact mirror of Occupy for a rip-up.
func (sp *Graph) Release(c grid.Cell) {
	row, col := &sp.rowFree[c.L][c.Y], &sp.colFree[c.L][c.X]
	// c stops being an obstacle: its free neighbors lose their witness.
	if c.X > 0 && row.Contains(c.X-1) {
		sp.cntX[c.X-1]--
	}
	if c.X+1 < sp.W && row.Contains(c.X+1) {
		sp.cntX[c.X+1]--
	}
	if c.Y > 0 && col.Contains(c.Y-1) {
		sp.cntY[c.Y-1]--
	}
	if c.Y+1 < sp.H && col.Contains(c.Y+1) {
		sp.cntY[c.Y+1]--
	}
	row.Add(interval.Iv{Lo: c.X, Hi: c.X + 1})
	col.Add(interval.Iv{Lo: c.Y, Hi: c.Y + 1})
	// c becomes free: it witnesses any obstacle neighbors.
	if c.X > 0 && !row.Contains(c.X-1) {
		sp.cntX[c.X]++
	}
	if c.X+1 < sp.W && !row.Contains(c.X+1) {
		sp.cntX[c.X]++
	}
	if c.Y > 0 && !col.Contains(c.Y-1) {
		sp.cntY[c.Y]++
	}
	if c.Y+1 < sp.H && !col.Contains(c.Y+1) {
		sp.cntY[c.Y]++
	}
}
