package sparse

import (
	"sort"
	"sync"

	"sadproute/internal/astar"
	"sadproute/internal/grid"
	"sadproute/internal/interval"
)

// Config parameterizes a corridor search. Costs are in the same engine
// units as astar.Config (astar.Scale applies to WL and Via); DirPenalty
// and PinVia are flat engine-unit extras matching the router's uniform
// step-cost terms.
type Config struct {
	// WL, Via weigh wirelength and via count exactly as astar.Config.
	WL, Via int
	// DirPenalty is the per-step cost of a planar move against the layer's
	// preferred direction (even layers horizontal, odd vertical).
	DirPenalty int
	// PinVia is the extra cost of a via whose either cell is a source or
	// target candidate (the router pushes vias off pins; see
	// router.stepCostOn).
	PinVia int
	// MaxExpand bounds corridor-node expansions; 0 means no bound.
	MaxExpand int
}

// Outcome classifies a corridor search result. NoPath is authoritative —
// corridor passability equals grid passability, so the dense engine cannot
// do better — while Aborted (expansion budget) says nothing about the
// instance and callers must fall back.
type Outcome int

const (
	NoPath Outcome = iota
	Found
	Aborted
)

// Engine holds reusable search state for one Graph; it is not safe for
// concurrent use. Engines follow the same Acquire/Release pool discipline
// as internal/astar: per-node arrays are retained across searches and pool
// round-trips, so steady-state searches allocate only the returned path.
type Engine struct {
	g *Graph
	// xs, ys are the interesting-coordinate snapshot of the current
	// search, sorted ascending and deduplicated.
	xs, ys []int
	// Per-node search state, stamp-versioned like astar.Engine so the
	// arrays never need clearing between searches.
	dist    []int
	stamp   []int32
	parent  []int32
	tmark   []int32
	cur     int32
	queue   spq
	pins    map[grid.Cell]bool
	targets []grid.Cell
	cfg     Config
	// Expand is the corridor-node expansion count of the last search.
	Expand int
}

// NewEngine creates an engine bound to g.
func NewEngine(g *Graph) *Engine {
	return &Engine{g: g}
}

// Bind points the engine at g. Search state sizes to each query's
// snapshot, so rebinding is free.
func (e *Engine) Bind(g *Graph) { e.g = g }

var enginePool = sync.Pool{New: func() any { return &Engine{} }}

// Acquire returns a pooled engine bound to g; pair with Release.
func Acquire(g *Graph) *Engine {
	e := enginePool.Get().(*Engine)
	e.Bind(g)
	return e
}

// Release detaches the engine and returns it to the pool. The caller must
// not use the engine afterwards.
func (e *Engine) Release() {
	e.g = nil
	enginePool.Put(e)
}

type spqItem struct {
	idx  int32
	f, g int
}

// spq orders by f ascending, then g descending (prefer deeper nodes, as
// astar does), then node index ascending — a total order, so the pop
// sequence is deterministic for a given push sequence.
type spq []spqItem

func (q spq) Len() int { return len(q) }
func (q spq) less(i, j int) bool {
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	if q[i].g != q[j].g {
		return q[i].g > q[j].g
	}
	return q[i].idx < q[j].idx
}
func (q spq) swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *spq) push(it spqItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *spq) pop() spqItem {
	old := *q
	n := len(old) - 1
	old.swap(0, n)
	it := old[n]
	*q = old[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && old.less(r, l) {
			j = r
		}
		if !old.less(j, i) {
			break
		}
		old.swap(i, j)
		i = j
	}
	return it
}

// Search finds a minimum-cost source→target path under the corridor cost
// model and returns it snapped to unit grid cells, together with its model
// cost. Sources and targets are candidate cells (the router's pin
// candidates); occupied candidates are unreachable, exactly as in the
// dense engine. The pin set for Config.PinVia is sources ∪ targets.
//
// Search is windowed: it first confines the corridor graph to the pin
// bounding box plus a margin M, which keeps the node count local even on a
// die whose committed nets have made most global coordinates interesting.
// A windowed result is only trusted when it is provably global: any path
// visiting a cell outside the window must exceed WL*Scale*(h0+2M) (h0 the
// minimum pin-to-pin Manhattan distance — exiting the window costs at
// least the 2M detour on top), so a windowed cost within that bound is the
// true optimum. Otherwise the window escalates and the last tier is the
// whole die, whose verdict — including NoPath — is authoritative.
func (e *Engine) Search(sources, targets []grid.Cell, cfg Config) ([]grid.Cell, int, Outcome) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, 0, NoPath
	}
	e.Expand = 0
	bx0, by0 := e.g.W, e.g.H
	bx1, by1 := -1, -1
	h0 := -1
	for _, s := range sources {
		bx0, bx1 = mini(bx0, s.X), maxi(bx1, s.X)
		by0, by1 = mini(by0, s.Y), maxi(by1, s.Y)
		for _, t := range targets {
			if d := absi(s.X-t.X) + absi(s.Y-t.Y); h0 < 0 || d < h0 {
				h0 = d
			}
		}
	}
	for _, t := range targets {
		bx0, bx1 = mini(bx0, t.X), maxi(bx1, t.X)
		by0, by1 = mini(by0, t.Y), maxi(by1, t.Y)
	}
	for _, m := range [2]int{64, 256} {
		x0, y0 := maxi(0, bx0-m), maxi(0, by0-m)
		x1, y1 := mini(e.g.W-1, bx1+m), mini(e.g.H-1, by1+m)
		full := x0 == 0 && y0 == 0 && x1 == e.g.W-1 && y1 == e.g.H-1
		path, cost, out := e.searchWindow(sources, targets, cfg, x0, y0, x1, y1)
		switch {
		case out == Aborted:
			return nil, 0, Aborted
		case full:
			return path, cost, out
		case out == Found && cost <= cfg.WL*astar.Scale*(h0+2*m):
			return path, cost, out
		}
		// NoPath inside the window, or a cost the certificate cannot rule
		// an escape route out of: escalate.
	}
	// Final tier: the whole die. Its verdict needs no certificate.
	return e.searchWindow(sources, targets, cfg, 0, 0, e.g.W-1, e.g.H-1)
}

// searchWindow runs one corridor A* confined to the given coordinate
// window (inclusive). Expansions accrue to e.Expand across tiers, and
// Config.MaxExpand bounds the accrued total.
func (e *Engine) searchWindow(sources, targets []grid.Cell, cfg Config, x0, y0, x1, y1 int) ([]grid.Cell, int, Outcome) {
	e.cfg = cfg
	e.snapshot(sources, targets, x0, y0, x1, y1)
	nx, ny := len(e.xs), len(e.ys)
	e.ensure(nx * ny * e.g.Layers)
	e.cur++
	e.queue = e.queue[:0]

	if e.pins == nil {
		e.pins = make(map[grid.Cell]bool)
	}
	clear(e.pins)
	for _, c := range sources {
		e.pins[c] = true
	}
	for _, c := range targets {
		e.pins[c] = true
	}
	e.targets = append(e.targets[:0], targets...)

	ntargets := 0
	for _, t := range targets {
		if !e.in(t) {
			continue
		}
		if i := e.node(t); e.tmark[i] != e.cur {
			e.tmark[i] = e.cur
			ntargets++
		}
	}
	if ntargets == 0 {
		return nil, 0, NoPath
	}
	for _, s := range sources {
		if !e.in(s) || !e.g.Free(s) {
			continue
		}
		e.push(e.node(s), 0, -1)
	}

	for e.queue.Len() > 0 {
		it := e.queue.pop()
		i := int(it.idx)
		if e.stamp[i] == e.cur && e.dist[i] < it.g {
			continue // stale entry
		}
		e.Expand++
		if cfg.MaxExpand > 0 && e.Expand > cfg.MaxExpand {
			return nil, 0, Aborted
		}
		if e.tmark[i] == e.cur {
			return e.snap(i), it.g, Found
		}
		e.relax(i, it.g)
	}
	return nil, 0, NoPath
}

// snapshot collects the interesting coordinates of the query inside the
// window: window edges (which double as die edges on the full tier), free
// columns/rows bordering an obstacle (from the boundary refcounts), and
// every candidate coordinate ±1 (so a cost-neutral corridor slide can
// always stop next to a pin instead of on it; see the package comment).
func (e *Engine) snapshot(sources, targets []grid.Cell, x0, y0, x1, y1 int) {
	e.xs = e.xs[:0]
	e.ys = e.ys[:0]
	e.xs = append(e.xs, x0, x1)
	e.ys = append(e.ys, y0, y1)
	for x := x0 + 1; x < x1; x++ {
		if e.g.cntX[x] > 0 {
			e.xs = append(e.xs, x)
		}
	}
	for y := y0 + 1; y < y1; y++ {
		if e.g.cntY[y] > 0 {
			e.ys = append(e.ys, y)
		}
	}
	for _, cells := range [2][]grid.Cell{sources, targets} {
		for _, c := range cells {
			for d := -1; d <= 1; d++ {
				if x := c.X + d; x >= x0 && x <= x1 {
					e.xs = append(e.xs, x)
				}
				if y := c.Y + d; y >= y0 && y <= y1 {
					e.ys = append(e.ys, y)
				}
			}
		}
	}
	sort.Ints(e.xs)
	sort.Ints(e.ys)
	e.xs = dedup(e.xs)
	e.ys = dedup(e.ys)
}

func dedup(s []int) []int {
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// ensure sizes the per-node arrays to n, reusing capacity. A reallocation
// restarts the stamp epoch (fresh arrays are zero and cur restarts above
// zero, so no stale state can alias).
func (e *Engine) ensure(n int) {
	if cap(e.dist) < n {
		e.dist = make([]int, n)
		e.stamp = make([]int32, n)
		e.parent = make([]int32, n)
		e.tmark = make([]int32, n)
		e.cur = 0
		return
	}
	e.dist = e.dist[:n]
	e.stamp = e.stamp[:n]
	e.parent = e.parent[:n]
	e.tmark = e.tmark[:n]
}

func (e *Engine) in(c grid.Cell) bool {
	return c.X >= 0 && c.X < e.g.W && c.Y >= 0 && c.Y < e.g.H && c.L >= 0 && c.L < e.g.Layers
}

// node maps a cell whose coordinates are in the snapshot to its node id.
func (e *Engine) node(c grid.Cell) int {
	xi := sort.SearchInts(e.xs, c.X)
	yi := sort.SearchInts(e.ys, c.Y)
	return (c.L*len(e.ys)+yi)*len(e.xs) + xi
}

// coords is the inverse of node.
func (e *Engine) coords(i int) (xi, yi, l int) {
	nx, ny := len(e.xs), len(e.ys)
	return i % nx, (i / nx) % ny, i / (nx * ny)
}

// h is the admissible heuristic: Manhattan distance priced at the uniform
// floor (WL per planar step, Via per layer change; DirPenalty and PinVia
// only ever add).
func (e *Engine) h(i int) int {
	xi, yi, l := e.coords(i)
	x, y := e.xs[xi], e.ys[yi]
	best := -1
	for _, t := range e.targets {
		d := (absi(x-t.X)+absi(y-t.Y))*e.cfg.WL + absi(l-t.L)*e.cfg.Via
		if best < 0 || d < best {
			best = d
		}
	}
	return best * astar.Scale
}

func (e *Engine) push(i, gcost int, parent int32) {
	if e.stamp[i] == e.cur && e.dist[i] <= gcost {
		return
	}
	e.stamp[i] = e.cur
	e.dist[i] = gcost
	e.parent[i] = parent
	e.queue.push(spqItem{idx: int32(i), f: gcost + e.h(i), g: gcost})
}

// relax pushes every corridor neighbor of node i: planar moves to the
// adjacent interesting coordinate when the whole corridor is free, vias
// when both cells are free.
func (e *Engine) relax(i, gcost int) {
	xi, yi, l := e.coords(i)
	nx, ny := len(e.xs), len(e.ys)
	x, y := e.xs[xi], e.ys[yi]
	wl := e.cfg.WL * astar.Scale
	stepX, stepY := wl, wl
	if l%2 == 1 {
		stepX += e.cfg.DirPenalty // odd layers prefer vertical
	} else {
		stepY += e.cfg.DirPenalty // even layers prefer horizontal
	}
	row, col := &e.g.rowFree[l][y], &e.g.colFree[l][x]
	if xi+1 < nx {
		if x2 := e.xs[xi+1]; row.Covers(interval.Iv{Lo: x, Hi: x2 + 1}) {
			e.push(i+1, gcost+(x2-x)*stepX, int32(i))
		}
	}
	if xi > 0 {
		if x2 := e.xs[xi-1]; row.Covers(interval.Iv{Lo: x2, Hi: x + 1}) {
			e.push(i-1, gcost+(x-x2)*stepX, int32(i))
		}
	}
	if yi+1 < ny {
		if y2 := e.ys[yi+1]; col.Covers(interval.Iv{Lo: y, Hi: y2 + 1}) {
			e.push(i+nx, gcost+(y2-y)*stepY, int32(i))
		}
	}
	if yi > 0 {
		if y2 := e.ys[yi-1]; col.Covers(interval.Iv{Lo: y2, Hi: y + 1}) {
			e.push(i-nx, gcost+(y-y2)*stepY, int32(i))
		}
	}
	for dl := -1; dl <= 1; dl += 2 {
		l2 := l + dl
		if l2 < 0 || l2 >= e.g.Layers || !e.g.rowFree[l2][y].Contains(x) {
			continue
		}
		step := e.cfg.Via * astar.Scale
		if e.pins[grid.Cell{X: x, Y: y, L: l}] || e.pins[grid.Cell{X: x, Y: y, L: l2}] {
			step += e.cfg.PinVia
		}
		e.push(i+dl*nx*ny, gcost+step, int32(i))
	}
}

// snap reconstructs the corridor-node path ending at node i and expands
// every corridor edge into unit cell steps, source→target inclusive — the
// same shape the dense engine returns, so commit/DRC/trace layers are
// agnostic to which engine routed the net.
func (e *Engine) snap(i int) []grid.Cell {
	var rev []int32
	for j := int32(i); j >= 0; j = e.parent[j] {
		rev = append(rev, j)
	}
	cell := func(n int32) grid.Cell {
		xi, yi, l := e.coords(int(n))
		return grid.Cell{X: e.xs[xi], Y: e.ys[yi], L: l}
	}
	path := []grid.Cell{cell(rev[len(rev)-1])}
	for k := len(rev) - 2; k >= 0; k-- {
		from, to := cell(rev[k+1]), cell(rev[k])
		dx, dy, dl := sgn(to.X-from.X), sgn(to.Y-from.Y), sgn(to.L-from.L)
		for c := from; c != to; {
			c = grid.Cell{X: c.X + dx, Y: c.Y + dy, L: c.L + dl}
			path = append(path, c)
		}
	}
	return path
}

func sgn(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

func absi(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
