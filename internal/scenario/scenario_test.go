package scenario

import (
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// cellWire builds a straight wire in cell coordinates.
func cellWire(horiz bool, fixed, c0, c1 int) geom.Rect {
	if horiz {
		return geom.Rect{X0: c0, Y0: fixed, X1: c1 + 1, Y1: fixed + 1}
	}
	return geom.Rect{X0: fixed, Y0: c0, X1: fixed + 1, Y1: c1 + 1}
}

// nmRect converts a cell rect to its metal rectangle for the 10 nm node.
func nmRect(r geom.Rect, ds rules.Set) geom.Rect {
	p, w := ds.Pitch(), ds.WLine
	return geom.Rect{
		X0: r.X0 * p, Y0: r.Y0 * p,
		X1: (r.X1-1)*p + w, Y1: (r.Y1-1)*p + w,
	}
}

type canonical struct {
	name     string
	a, b     geom.Rect // cell coords
	wantType string    // "" when no rule expected
}

func canonicals() []canonical {
	return []canonical{
		{"(0,1,par)", cellWire(true, 5, 0, 4), cellWire(true, 6, 0, 4), "1-a"},
		{"(0,2,par)", cellWire(true, 5, 0, 4), cellWire(true, 7, 0, 4), "1-b"},
		{"(1,0,par)", cellWire(true, 5, 0, 4), cellWire(true, 5, 5, 9), "2-a"},
		{"(2,0,par)", cellWire(true, 5, 0, 4), cellWire(true, 5, 6, 10), ""},
		{"(0,1,perp)", cellWire(false, 2, 6, 10), cellWire(true, 5, 0, 4), "2-b"},
		{"(0,2,perp)", cellWire(false, 2, 7, 11), cellWire(true, 5, 0, 4), ""},
		{"(1,1,par)", cellWire(true, 5, 0, 4), cellWire(true, 6, 5, 9), "3-b"},
		{"(1,2,par)", cellWire(true, 5, 0, 4), cellWire(true, 7, 5, 9), "3-a"},
		{"(2,1,par)", cellWire(true, 5, 0, 4), cellWire(true, 6, 6, 10), ""},
		{"(1,1,perp)", cellWire(false, 2, 6, 10), cellWire(true, 5, 3, 7), "3-b"},
		{"(1,2,perp)", cellWire(false, 2, 6, 10), cellWire(true, 4, 3, 7), ""},
	}
}

// TestGoldenAgainstOracle asserts that every scenario profile matches the
// decomposition oracle's verdict on the canonical configurations — the
// machine-checked equivalent of the paper's Table II / Figs. 24-34.
func TestGoldenAgainstOracle(t *testing.T) {
	ds := rules.Node10nm()
	for _, c := range canonicals() {
		prof, ok := Classify(c.a, c.b, ds)
		if (c.wantType != "") != ok {
			t.Errorf("%s: Classify ok=%v, want rule %q", c.name, ok, c.wantType)
			continue
		}
		if !ok {
			// Still verify the oracle sees no side overlay for any coloring.
			for asg := CC; asg <= SS; asg++ {
				res := oracle(c.a, c.b, asg, ds)
				if res.SideOverlayNM != 0 || len(res.Conflicts) != 0 || len(res.Violations) != 0 {
					t.Errorf("%s %v: expected overlay-free scenario, oracle found SO=%d conf=%d viol=%d",
						c.name, asg, res.SideOverlayNM, len(res.Conflicts), len(res.Violations))
				}
			}
			continue
		}
		if prof.Type != c.wantType {
			t.Errorf("%s: type %q, want %q", c.name, prof.Type, c.wantType)
		}
		for asg := CC; asg <= SS; asg++ {
			res := oracle(c.a, c.b, asg, ds)
			badOracle := res.HardOverlays > 0 || len(res.Conflicts) > 0 || len(res.Violations) > 0
			if prof.Forbidden[asg] != badOracle {
				t.Errorf("%s %v: Forbidden=%v but oracle hard=%d conf=%d viol=%d",
					c.name, asg, prof.Forbidden[asg], res.HardOverlays, len(res.Conflicts), len(res.Violations))
			}
			if prof.Cost[asg] != res.SideOverlayNM {
				t.Errorf("%s %v: Cost=%d, oracle side overlay=%d",
					c.name, asg, prof.Cost[asg], res.SideOverlayNM)
			}
			if prof.Conflict[asg] != (len(res.Conflicts) > 0) {
				t.Errorf("%s %v: Conflict=%v, oracle conflicts=%d",
					c.name, asg, prof.Conflict[asg], len(res.Conflicts))
			}
		}
	}
}

func oracle(a, b geom.Rect, asg Assign, ds rules.Set) *decomp.Result {
	ca, cb := asg.Colors()
	ly := decomp.Layout{
		Rules: ds,
		Die:   geom.Rect{X0: -400, Y0: -400, X1: 1000, Y1: 1000},
		Pats: []decomp.Pattern{
			{Net: 0, Color: ca, Rects: []geom.Rect{nmRect(a, ds)}},
			{Net: 1, Color: cb, Rects: []geom.Rect{nmRect(b, ds)}},
		},
	}
	return decomp.DecomposeCut(ly)
}

// TestOrderSymmetry: classifying (b, a) must be the role-swap of (a, b).
func TestOrderSymmetry(t *testing.T) {
	ds := rules.Node10nm()
	for _, c := range canonicals() {
		p1, ok1 := Classify(c.a, c.b, ds)
		p2, ok2 := Classify(c.b, c.a, ds)
		if ok1 != ok2 {
			t.Errorf("%s: ok mismatch %v vs %v", c.name, ok1, ok2)
			continue
		}
		if !ok1 {
			continue
		}
		want := p1.swap()
		if p2.Cost != want.Cost || p2.Forbidden != want.Forbidden || p2.Conflict != want.Conflict {
			t.Errorf("%s: swapped profile mismatch:\n (a,b)=%+v\n (b,a)=%+v", c.name, p1, p2)
		}
	}
}

// TestIndependence: pairs at or beyond d_indep never produce a rule and the
// oracle confirms they are overlay-free for every coloring (Theorem 1).
func TestIndependence(t *testing.T) {
	ds := rules.Node10nm()
	far := []struct {
		name string
		a, b geom.Rect
	}{
		{"3 tracks parallel", cellWire(true, 5, 0, 4), cellWire(true, 8, 0, 4)},
		{"3 tracks collinear", cellWire(true, 5, 0, 4), cellWire(true, 5, 7, 11)},
		{"(2,2) diagonal", cellWire(true, 5, 0, 4), cellWire(true, 7, 6, 10)},
		{"3 tracks perp", cellWire(false, 2, 8, 12), cellWire(true, 5, 0, 4)},
	}
	for _, c := range far {
		if _, ok := Classify(c.a, c.b, ds); ok {
			t.Errorf("%s: expected independent, got a rule", c.name)
		}
		for asg := CC; asg <= SS; asg++ {
			res := oracle(c.a, c.b, asg, ds)
			if res.SideOverlayNM != 0 || len(res.Conflicts) != 0 || len(res.Violations) != 0 {
				t.Errorf("%s %v: oracle SO=%d conf=%d viol=%d, want clean",
					c.name, asg, res.SideOverlayNM, len(res.Conflicts), len(res.Violations))
			}
		}
	}
}

// TestOverlapScaling: type 1-a with single-cell overlap is merge-and-cut
// with a w_line overlay on each side — allowed (tip-to-side friendly), while
// two-cell overlap is hard.
func TestOverlapScaling(t *testing.T) {
	ds := rules.Node10nm()
	// Single cell overlap: A cols 0-4 row 5, B cols 4-8 row 6.
	a := cellWire(true, 5, 0, 4)
	b := cellWire(true, 6, 4, 8)
	p, ok := Classify(a, b, ds)
	if !ok || p.Type != "1-a" {
		t.Fatalf("expected 1-a, got %+v ok=%v", p, ok)
	}
	if p.Forbidden[CC] || p.Cost[CC] != 2*ds.WLine {
		t.Errorf("single-cell overlap CC: got cost %d forbidden %v, want %d allowed",
			p.Cost[CC], p.Forbidden[CC], 2*ds.WLine)
	}
	res := oracle(a, b, CC, ds)
	if res.HardOverlays != 0 || res.SideOverlayNM != 2*ds.WLine {
		t.Errorf("oracle single-cell CC: hard=%d SO=%d", res.HardOverlays, res.SideOverlayNM)
	}
	// Two-cell overlap is a hard overlay.
	b2 := cellWire(true, 6, 3, 8)
	p2, _ := Classify(a, b2, ds)
	if !p2.Forbidden[CC] {
		t.Errorf("two-cell overlap CC should be hard")
	}
	res2 := oracle(a, b2, CC, ds)
	if res2.HardOverlays == 0 {
		t.Errorf("oracle two-cell CC: expected hard overlays")
	}
}
