// Package scenario implements the paper's potential-overlay-scenario
// analysis (Section III-A, Theorems 1-3): classifying a pair of dependent
// rectangles by its geometry relationship (Xmin, Ymin, Dir) and producing
// the color rule for that scenario — the per-assignment side-overlay cost
// and the forbidden assignments (hard overlays and type-A cut conflicts).
//
// The profiles encoded here are the paper's Table II, regenerated from this
// repository's layout-decomposition oracle (package decomp); the golden test
// in this package asserts that every profile matches the oracle verdicts on
// the canonical two-rectangle configurations.
//
// Rectangles are given in routing-grid cell coordinates (track units,
// half-open); costs are reported in nm of side-overlay length.
package scenario

import (
	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// Assign indexes a color assignment of an ordered pattern pair (A, B).
type Assign int

const (
	CC Assign = iota // both core
	CS               // A core, B second
	SC               // A second, B core
	SS               // both second
)

var assignNames = [...]string{"CC", "CS", "SC", "SS"}

func (a Assign) String() string { return assignNames[a] }

// Of returns the Assign index for a concrete color pair.
func Of(ca, cb decomp.Color) Assign {
	i := Assign(0)
	if ca == decomp.Second {
		i += 2
	}
	if cb == decomp.Second {
		i++
	}
	return i
}

// Colors returns the color pair encoded by the assignment.
func (a Assign) Colors() (ca, cb decomp.Color) {
	ca, cb = decomp.Core, decomp.Core
	if a == SC || a == SS {
		ca = decomp.Second
	}
	if a == CS || a == SS {
		cb = decomp.Second
	}
	return ca, cb
}

// Swap exchanges the roles of A and B in the assignment.
func (a Assign) Swap() Assign {
	switch a {
	case CS:
		return SC
	case SC:
		return CS
	default:
		return a
	}
}

// Profile is the color rule of one potential overlay scenario between an
// ordered pattern pair (A, B): Table II distilled to machine form.
type Profile struct {
	// Type is the paper's scenario label (e.g. "1-a", "2-b").
	Type string
	// Cost is the side-overlay length (nm) the scenario induces per
	// assignment.
	Cost [4]int
	// Forbidden marks assignments that produce a hard overlay (side overlay
	// longer than w_line) or a cut conflict — both strictly prohibited.
	Forbidden [4]bool
	// Conflict marks assignments that produce a type-A cut conflict.
	Conflict [4]bool
}

// swap returns the profile with A/B roles exchanged.
func (p Profile) swap() Profile {
	q := p
	for a := CC; a <= SS; a++ {
		q.Cost[a.Swap()] = p.Cost[a]
		q.Forbidden[a.Swap()] = p.Forbidden[a]
		q.Conflict[a.Swap()] = p.Conflict[a]
	}
	return q
}

// Floor returns the minimum cost over allowed assignments, or -1 when every
// assignment is forbidden. A positive floor identifies the paper's type 2-b:
// overlay is unavoidable and the router should discourage the geometry
// itself (the gamma term of eq. (5)).
func (p Profile) Floor() int {
	best := -1
	for a := CC; a <= SS; a++ {
		if p.Forbidden[a] {
			continue
		}
		if best < 0 || p.Cost[a] < best {
			best = p.Cost[a]
		}
	}
	return best
}

// HardSame reports whether the profile forbids all different-color
// assignments (a hard same-color constraint, type 1-b / 2-a).
func (p Profile) HardSame() bool {
	return p.Forbidden[CS] && p.Forbidden[SC] && !p.Forbidden[CC] && !p.Forbidden[SS]
}

// HardDiff reports whether the profile forbids all same-color assignments
// (a hard different-color constraint, type 1-a).
func (p Profile) HardDiff() bool {
	return p.Forbidden[CC] && p.Forbidden[SS] && !p.Forbidden[CS] && !p.Forbidden[SC]
}

// Infeasible reports whether every assignment is forbidden.
func (p Profile) Infeasible() bool {
	return p.Forbidden[CC] && p.Forbidden[CS] && p.Forbidden[SC] && p.Forbidden[SS]
}

// Classify analyzes a pair of rectangles of different nets given in
// grid-cell coordinates and returns the scenario profile for the ordered
// pair (a, b). ok is false when the pair is independent (Theorem 1) or the
// scenario induces no rule (types 2-c, 2-d, 3-d, 3-e).
func Classify(a, b geom.Rect, ds rules.Set) (Profile, bool) {
	xt := trackGap(a.X0, a.X1, b.X0, b.X1)
	yt := trackGap(a.Y0, a.Y1, b.Y0, b.Y1)
	if xt == 0 && yt == 0 {
		return Profile{}, false // overlapping cells: same net or an error
	}
	perp := isPerp(a, b)
	if perp {
		return classifyPerp(a, b, xt, yt, ds)
	}
	return classifyPar(a, b, xt, yt, ds)
}

// trackGap returns the minimum track difference between two cell intervals:
// 0 when they share a track, otherwise the index distance between the
// nearest occupied tracks.
func trackGap(a0, a1, b0, b1 int) int {
	switch {
	case b0 >= a1:
		return b0 - a1 + 1
	case a0 >= b1:
		return a0 - b1 + 1
	default:
		return 0
	}
}

// isPerp reports whether the two rects are orthogonal. Square (1x1) rects
// adopt the partner's orientation, so square pairs and square-wire pairs
// classify as parallel.
func isPerp(a, b geom.Rect) bool {
	oa, ob := a.Orient(), b.Orient()
	if oa == geom.OrientNone || ob == geom.OrientNone {
		return false
	}
	return oa != ob
}

// vertical reports whether the pair's common axis is vertical: for parallel
// pairs the configuration is normalized by swapping x/y so both wires read
// as horizontal.
func bothVertical(a, b geom.Rect) bool {
	oa, ob := a.Orient(), b.Orient()
	if oa == geom.OrientV || ob == geom.OrientV {
		return oa != geom.OrientH && ob != geom.OrientH
	}
	return false
}

// overlapNM converts a cell-interval overlap of o tracks into nm of metal
// overlap: (o-1) pitches plus one line width.
func overlapNM(o int, ds rules.Set) int {
	if o <= 0 {
		return 0
	}
	return (o-1)*ds.Pitch() + ds.WLine
}

func classifyPar(a, b geom.Rect, xt, yt int, ds rules.Set) (Profile, bool) {
	// Normalize to horizontal wires: for a vertical pair swap the axes.
	ox := a.OverlapX(b)
	if bothVertical(a, b) {
		xt, yt = yt, xt
		ox = a.OverlapY(b)
	}
	w := ds.WLine
	switch {
	case yt == 1 && xt == 0:
		// Type 1-a: side-by-side on adjacent tracks. Same colors force a
		// merge+cut along the whole overlap: hard when the overlap exceeds
		// w_line.
		olap := overlapNM(ox, ds)
		p := Profile{Type: "1-a"}
		p.Cost[CC], p.Cost[SS] = 2*olap, 2*olap
		if olap > w {
			p.Forbidden[CC], p.Forbidden[SS] = true, true
		}
		return p, true
	case yt == 2 && xt == 0:
		// Type 1-b: parallel at two tracks. Different colors merge the
		// second pattern's (span-trimmed) assistant core into the core
		// pattern along the directly facing extent: hard when that overlap
		// exceeds w_line.
		olap := overlapNM(ox, ds)
		p := Profile{Type: "1-b"}
		p.Cost[CS] = olap // A is core: overlay lands on A
		p.Cost[SC] = olap
		p.Forbidden[CS] = olap > w
		p.Forbidden[SC] = olap > w
		return p, true
	case yt == 0 && xt == 1:
		// Type 2-a: collinear tip-to-tip at one track. Different colors
		// merge the second pattern's flanks around the core pattern's tip,
		// cutting both of its sides: overlay plus a cut conflict.
		p := Profile{Type: "2-a"}
		p.Cost[CS], p.Cost[SC] = 2*w, 2*w
		p.Conflict[CS], p.Conflict[SC] = true, true
		p.Forbidden[CS], p.Forbidden[SC] = true, true
		return p, true
	case yt == 1 && xt == 1:
		// Type 3-b: corner-diagonal parallel wires. The thick corner merge
		// cuts a unit from each core side; both-second shares assists
		// cleanly.
		p := Profile{Type: "3-b"}
		p.Cost[CC] = 2 * w
		p.Cost[CS], p.Cost[SC] = w, w
		return p, true
	case (yt == 2 && xt == 1) || (yt == 1 && xt == 2):
		if yt == 2 {
			// Type 3-a: diagonal at (1,2). A second pattern's side flank
			// merges into the diagonal core: one unit on the core pattern.
			p := Profile{Type: "3-a"}
			p.Cost[CS], p.Cost[SC] = w, w
			return p, true
		}
		// (2,1): type 3-e, overlay-free.
		return Profile{}, false
	default:
		// (2,0) type 2-c and everything at or beyond d_indep: independent.
		return Profile{}, false
	}
}

func classifyPerp(a, b geom.Rect, xt, yt int, ds rules.Set) (Profile, bool) {
	// Normalize so V is the vertical rect; track whether roles swapped.
	v, h := a, b
	swapped := false
	if a.Orient() == geom.OrientH {
		v, h = b, a
		swapped = true
	}
	// dLong: gap along V's long axis (y); dShort: gap along x.
	dShort := trackGap(v.X0, v.X1, h.X0, h.X1)
	dLong := trackGap(v.Y0, v.Y1, h.Y0, h.Y1)
	_ = xt
	_ = yt
	w := ds.WLine
	var p Profile
	ok := false
	switch {
	case dShort == 0 && dLong == 1:
		// Type 2-b: V's tip one track from H's side. Unavoidable overlay:
		// both-core merges tip-to-side (one unit on H); a second V forces
		// its flanks into H (two units); core V with second H cuts both
		// sides of V's neck — two units plus a cut conflict.
		p = Profile{Type: "2-b"}
		p.Cost[CC], p.Cost[SS] = w, w
		p.Cost[CS], p.Cost[SC] = 2*w, 2*w // CS: V core, H second
		p.Conflict[CS] = true
		p.Forbidden[CS] = true
		ok = true
	case dShort == 1 && dLong == 1:
		// Type 3-b (perpendicular variant): corner-diagonal.
		p = Profile{Type: "3-b"}
		p.Cost[CC] = 2 * w
		p.Cost[CS], p.Cost[SC] = w, w
		ok = true
	default:
		// (0,2)/(2,0) type 2-d, (1,2)/(2,1) type 3-d: overlay-free under
		// optimal assistant-core synthesis.
		return Profile{}, false
	}
	if swapped {
		p = p.swap()
	}
	return p, ok
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
