package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsSafe exercises every method on a nil *Recorder: the
// disabled fast path must be a no-op, never a panic.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Inc(CtrRouteAttempts)
	r.Add(CtrAstarExpanded, 42)
	r.Max(GaugeAstarHeapPeak, 7)
	r.AddStage(StageRoute, time.Second)
	r.Span(StageRoute)()
	r.Trace("ev", I("k", 1))
	r.Debugf("ignored %d\n", 1)
	if r.Tracing() {
		t.Error("nil recorder reports Tracing() true")
	}
	if err := r.TraceErr(); err != nil {
		t.Errorf("nil recorder TraceErr = %v", err)
	}
	s := r.Snapshot()
	if s.Counter(CtrRouteAttempts) != 0 || s.Gauge(GaugeAstarHeapPeak) != 0 || s.Stage(StageRoute) != 0 {
		t.Error("nil recorder snapshot not zero")
	}
}

func TestCountersGaugesStages(t *testing.T) {
	r := New()
	r.Inc(CtrRouteAttempts)
	r.Add(CtrRouteAttempts, 2)
	r.Max(GaugeAstarHeapPeak, 10)
	r.Max(GaugeAstarHeapPeak, 4) // lower: must not regress
	r.AddStage(StageDecompose, 5*time.Millisecond)
	r.AddStage(StageDecompose, 5*time.Millisecond)
	stop := r.Span(StageRoute)
	stop()

	s := r.Snapshot()
	if got := s.Counter(CtrRouteAttempts); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if got := s.Gauge(GaugeAstarHeapPeak); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}
	if got := s.Stage(StageDecompose); got != 10*time.Millisecond {
		t.Errorf("stage = %v, want 10ms", got)
	}
	if s.Stage(StageRoute) < 0 {
		t.Error("span recorded negative duration")
	}
}

// TestEveryIDHasAName guards the parallel name tables against drift when
// new IDs are added.
func TestEveryIDHasAName(t *testing.T) {
	for i := CounterID(0); i < numCounters; i++ {
		if i.String() == "" || strings.HasPrefix(i.String(), "counter(") {
			t.Errorf("counter %d has no name", i)
		}
	}
	for i := GaugeID(0); i < numGauges; i++ {
		if i.String() == "" || strings.HasPrefix(i.String(), "gauge(") {
			t.Errorf("gauge %d has no name", i)
		}
	}
	for i := StageID(0); i < numStages; i++ {
		if i.String() == "" || strings.HasPrefix(i.String(), "stage(") {
			t.Errorf("stage %d has no name", i)
		}
	}
	if CounterID(numCounters).String() == "" {
		t.Error("out-of-range CounterID should still stringify")
	}
}

func TestTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTrace(&buf)
	if !r.Tracing() {
		t.Fatal("Tracing() false after SetTrace")
	}
	r.Trace("route_attempt", I("net", 12), I("attempt", 0))
	r.Trace("ripup", I("net", 12), S("cause", "odd_cycle"))
	r.Trace("quote", S("s", `a"b\c`))

	want := `{"seq":1,"ev":"route_attempt","net":12,"attempt":0}` + "\n" +
		`{"seq":2,"ev":"ripup","net":12,"cause":"odd_cycle"}` + "\n" +
		`{"seq":3,"ev":"quote","s":"a\"b\\c"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("trace bytes:\n got %q\nwant %q", got, want)
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
		}
	}
	if r.TraceErr() != nil {
		t.Errorf("unexpected trace error: %v", r.TraceErr())
	}
	r.SetTrace(nil)
	if r.Tracing() {
		t.Error("Tracing() true after detach")
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestTraceSinkRetainsFirstError(t *testing.T) {
	r := New()
	sink := r.SetTrace(&failWriter{n: 1})
	r.Trace("ok")
	r.Trace("fails")
	r.Trace("dropped")
	if r.TraceErr() == nil {
		t.Fatal("expected retained write error")
	}
	if sink.Seq() != 2 {
		// The dropped event must not advance seq past the failure point.
		t.Errorf("seq = %d, want 2 (drop after first error)", sink.Seq())
	}
}

// TestConcurrentRecording is the package race test (run under -race in CI):
// many goroutines hammer counters, gauges, stages and the trace sink; the
// totals must be exact and the sequence numbers dense.
func TestConcurrentRecording(t *testing.T) {
	const goroutines, perG = 8, 500
	var buf bytes.Buffer
	r := New()
	r.SetTrace(&buf)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Inc(CtrAstarExpanded)
				r.Add(CtrAstarPushes, 2)
				r.Max(GaugeAstarHeapPeak, int64(g*perG+i))
				r.AddStage(StageRoute, time.Nanosecond)
				r.Trace("tick", I("g", g), I("i", i))
			}
		}(g)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counter(CtrAstarExpanded); got != goroutines*perG {
		t.Errorf("expanded = %d, want %d", got, goroutines*perG)
	}
	if got := s.Counter(CtrAstarPushes); got != 2*goroutines*perG {
		t.Errorf("pushes = %d, want %d", got, 2*goroutines*perG)
	}
	if got := s.Gauge(GaugeAstarHeapPeak); got != goroutines*perG-1 {
		t.Errorf("heap peak = %d, want %d", got, goroutines*perG-1)
	}
	if got := s.Stage(StageRoute); got != goroutines*perG*time.Nanosecond {
		t.Errorf("stage route = %v, want %v", got, goroutines*perG*time.Nanosecond)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("trace lines = %d, want %d", len(lines), goroutines*perG)
	}
	seen := make(map[int64]bool, len(lines))
	for _, line := range lines {
		var ev struct {
			Seq int64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Seq < 1 || ev.Seq > int64(len(lines)) || seen[ev.Seq] {
			t.Fatalf("seq %d out of range or duplicated", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestSnapshotFormatting(t *testing.T) {
	r := New()
	r.Add(CtrDecompositions, 9)
	r.Max(GaugeFlipComponentPeak, 3)
	r.AddStage(StageEvaluate, time.Millisecond)
	s := r.Snapshot()

	cs := s.CountersString()
	if !strings.Contains(cs, "decomp.decompositions") || strings.Contains(cs, "stage") {
		t.Errorf("CountersString wrong content:\n%s", cs)
	}
	full := s.String()
	if !strings.Contains(full, "stage   evaluate") {
		t.Errorf("String() missing stage line:\n%s", full)
	}
	// Two snapshots of the same registry format identically (determinism).
	s2 := r.Snapshot()
	if s.CountersString() != s2.CountersString() {
		t.Error("CountersString not stable across snapshots")
	}

	var names []string
	s.EachCounter(func(name string, v int64) { names = append(names, name) })
	if len(names) != int(numCounters) || names[0] != CtrAstarSearches.String() {
		t.Errorf("EachCounter order wrong: %v", names)
	}
	n := 0
	s.EachStage(func(string, time.Duration) { n++ })
	if n != int(numStages) {
		t.Errorf("EachStage visited %d stages, want %d", n, numStages)
	}
}

func TestEnsureDebug(t *testing.T) {
	// nil promotes to a fresh recorder with a debug writer.
	r := EnsureDebug(nil)
	if r == nil {
		t.Fatal("EnsureDebug(nil) returned nil")
	}
	// An existing writer is kept.
	var buf bytes.Buffer
	r2 := New()
	r2.SetDebug(&buf)
	if got := EnsureDebug(r2); got != r2 {
		t.Fatal("EnsureDebug must return the same recorder")
	}
	r2.Debugf("net=%d\n", 7)
	if got := buf.String(); got != "net=7\n" {
		t.Errorf("Debugf wrote %q", got)
	}
}
