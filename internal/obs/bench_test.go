package obs

import (
	"io"
	"testing"
)

// BenchmarkCounterDisabled measures the nil-sink fast path: the cost an
// instrumented hot loop pays when observability is off. It must stay at a
// branch or two (sub-nanosecond on current hardware), keeping instrumented
// code within the ISSUE's 2% overhead budget.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(CtrAstarExpanded)
		r.Add(CtrAstarPushes, 3)
		r.Max(GaugeAstarHeapPeak, int64(i))
	}
}

// BenchmarkCounterEnabled measures the live atomic path.
func BenchmarkCounterEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(CtrAstarExpanded)
		r.Add(CtrAstarPushes, 3)
		r.Max(GaugeAstarHeapPeak, int64(i))
	}
}

// BenchmarkObserveDisabled measures the histogram nil path: like counters,
// a disabled Observe must stay within ~2× of the BenchmarkCounterDisabled
// branch cost.
func BenchmarkObserveDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(HistAstarExpanded, int64(i))
	}
}

// BenchmarkObserveEnabled measures the live bucket-scan-plus-atomic path.
func BenchmarkObserveEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(HistAstarExpanded, int64(i))
	}
}

// BenchmarkNetAttributionDisabled measures the per-net attribution nil
// path — the cost routeNet pays per attempt when observability is off.
func BenchmarkNetAttributionDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.NetAttempt(i)
		r.NetSearch(i, 10)
		r.NetRipup(i, RipWindow)
	}
}

// BenchmarkNetAttributionEnabled measures the live mutex-guarded map path.
// This is per-attempt, not per-node, so tens of nanoseconds are fine.
func BenchmarkNetAttributionEnabled(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.NetSearch(i&255, 10)
	}
}

// BenchmarkSpanDisabled measures a stage span on the nil path.
func BenchmarkSpanDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span(StageRoute)()
	}
}

// BenchmarkTraceEmit measures one event end to end into io.Discard.
func BenchmarkTraceEmit(b *testing.B) {
	r := New()
	r.SetTrace(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Trace("route_attempt", I("net", i), I("attempt", 0))
	}
}

// BenchmarkTraceDisabledGuarded measures the recommended guarded call: a
// Tracing() check means no field slice is ever built when tracing is off.
func BenchmarkTraceDisabledGuarded(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Tracing() {
			r.Trace("route_attempt", I("net", i))
		}
	}
}
