package obs

import (
	"io"
	"strconv"
	"sync"
)

// Field is one key/value pair of a trace event. Construct with I, I64 or S.
type Field struct {
	Key string
	num int64
	str string
	isS bool
}

// I builds an integer field.
func I(key string, v int) Field { return Field{Key: key, num: int64(v)} }

// I64 builds an integer field from an int64.
func I64(key string, v int64) Field { return Field{Key: key, num: v} }

// S builds a string field.
func S(key, v string) Field { return Field{Key: key, str: v, isS: true} }

// TraceSink serializes trace events as JSON Lines. Each event is one
// object:
//
//	{"seq":17,"ev":"route_attempt","net":12,"attempt":0}
//
// "seq" is a monotonic sequence number starting at 1 — deliberately not a
// timestamp, so traces of a deterministic run are byte-identical across
// runs and machines. Keys are emitted in call order after seq and ev.
// The sink is safe for concurrent emitters; the first write error is
// retained (and later emits dropped), surfaced via Err.
type TraceSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	seq int64
	err error
}

// NewTraceSink wraps w. The caller retains ownership of w (closing files,
// flushing buffers).
func NewTraceSink(w io.Writer) *TraceSink {
	return &TraceSink{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
func (s *TraceSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Seq returns the number of events emitted so far.
func (s *TraceSink) Seq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// emit writes one event line. Event names and field keys are compile-time
// identifiers in this repository ([a-z0-9_.]), written verbatim; string
// values are quoted with full JSON escaping.
func (s *TraceSink) emit(ev string, fields []Field) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.seq++
	b := s.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, s.seq, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev)
	for _, f := range fields {
		b = append(b, ',', '"')
		b = append(b, f.Key...)
		b = append(b, '"', ':')
		if f.isS {
			b = strconv.AppendQuote(b, f.str)
		} else {
			b = strconv.AppendInt(b, f.num, 10)
		}
	}
	b = append(b, '}', '\n')
	s.buf = b
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}
