package obs

import (
	"fmt"
	"sort"
	"strings"
)

// RipCause classifies why a routed net was ripped back up. The names match
// the `cause` field of `ripup` trace events (docs/trace-schema.md) so the
// attribution table and the trace agree without a translation layer.
type RipCause uint8

const (
	// RipOddCycle: committing the net made a flip-graph component odd.
	RipOddCycle RipCause = iota
	// RipInfeasible: the decomposition of the committed net is infeasible.
	RipInfeasible
	// RipWindow: a cut-conflict window check failed and recoloring could
	// not resolve it.
	RipWindow
	// RipBlocker: the net was ripped as a blocker of some other net that
	// exhausted its search (the `for` net in the ripup trace event).
	RipBlocker
	// RipRepair: the terminal repair pass ripped the net to clear a
	// remaining hard conflict.
	RipRepair

	numRipCauses
)

var ripCauseNames = [numRipCauses]string{
	RipOddCycle:   "odd_cycle",
	RipInfeasible: "infeasible",
	RipWindow:     "window",
	RipBlocker:    "blocker",
	RipRepair:     "repair",
}

func (c RipCause) String() string {
	if int(c) < len(ripCauseNames) {
		return ripCauseNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// NumRipCauses is the number of distinct rip-up causes (the length of
// NetStat.Ripups).
const NumRipCauses = int(numRipCauses)

// NetStat is the accumulated work attribution for one net, keyed by its
// canonical (input-order) id. Every field is driven by the serial commit
// path of the router, so the table is byte-identical at any NetWorkers or
// cache setting — unlike the sched.*/decomp.* counter families it never
// needs zeroing in equivalence dumps.
type NetStat struct {
	Net       int   // canonical net id
	Attempts  int64 // routing attempts (search + commit tries) across all episodes
	Searches  int64 // A* searches attributed to the net (incl. blocker probes)
	Expanded  int64 // A* nodes expanded by those searches
	Ripups    [NumRipCauses]int64
	WinChecks int64 // cut-conflict windows checked after commits of this net
	WinFailed int64 // window checks that ended in ripping this net
	Fails     int64 // terminal failures (no path / rip-up budget / repair drop)
}

// RipupTotal sums rip-ups over all causes.
func (n *NetStat) RipupTotal() int64 {
	var t int64
	for _, v := range n.Ripups {
		t += v
	}
	return t
}

// netStat returns the stat row for net id, creating it on first touch.
// Callers hold r.netMu.
func (r *Recorder) netStat(net int) *NetStat {
	if r.nets == nil {
		r.nets = make(map[int]*NetStat)
	}
	st := r.nets[net]
	if st == nil {
		st = &NetStat{Net: net}
		r.nets[net] = st
	}
	return st
}

// NetAttempt records one routing attempt for a net. Nil-safe no-op, like
// every Recorder method; the enabled path takes a mutex because net
// attribution events are per-attempt, not per-node — orders of magnitude
// rarer than counter increments.
func (r *Recorder) NetAttempt(net int) {
	if r == nil {
		return
	}
	r.netMu.Lock()
	r.netStat(net).Attempts++
	r.netMu.Unlock()
}

// NetSearch attributes one A* search and its expanded-node count to a net.
func (r *Recorder) NetSearch(net int, expanded int64) {
	if r == nil {
		return
	}
	r.netMu.Lock()
	st := r.netStat(net)
	st.Searches++
	st.Expanded += expanded
	r.netMu.Unlock()
}

// NetRipup records one rip-up of a net with its cause.
func (r *Recorder) NetRipup(net int, cause RipCause) {
	if r == nil {
		return
	}
	r.netMu.Lock()
	r.netStat(net).Ripups[cause]++
	r.netMu.Unlock()
}

// NetWindowCheck records one cut-conflict window check run after a commit
// of the net.
func (r *Recorder) NetWindowCheck(net int) {
	if r == nil {
		return
	}
	r.netMu.Lock()
	r.netStat(net).WinChecks++
	r.netMu.Unlock()
}

// NetWindowFail records a window check that ended by ripping the net.
func (r *Recorder) NetWindowFail(net int) {
	if r == nil {
		return
	}
	r.netMu.Lock()
	r.netStat(net).WinFailed++
	r.netMu.Unlock()
}

// NetFail records a terminal routing failure for the net.
func (r *Recorder) NetFail(net int) {
	if r == nil {
		return
	}
	r.netMu.Lock()
	r.netStat(net).Fails++
	r.netMu.Unlock()
}

// NetStats returns a copy of the attribution table sorted by canonical net
// id — the emission order every consumer (ledger, tracetool, dumps) relies
// on for byte-identical output.
func (r *Recorder) NetStats() []NetStat {
	if r == nil {
		return nil
	}
	r.netMu.Lock()
	out := make([]NetStat, 0, len(r.nets))
	for _, st := range r.nets {
		out = append(out, *st)
	}
	r.netMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Net < out[j].Net })
	return out
}

// NetStatsString renders the attribution table one net per line in
// canonical order, for determinism dumps and -netstats output.
func NetStatsString(stats []NetStat) string {
	var b strings.Builder
	for i := range stats {
		st := &stats[i]
		fmt.Fprintf(&b, "net %4d attempts %3d searches %3d expanded %7d fails %d windows %d/%d rips",
			st.Net, st.Attempts, st.Searches, st.Expanded, st.Fails, st.WinFailed, st.WinChecks)
		for c, v := range st.Ripups {
			if v != 0 {
				fmt.Fprintf(&b, " %s:%d", RipCause(c), v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
