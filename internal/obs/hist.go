package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// HistID names one fixed-bucket histogram. Like the counter enum, the set
// is closed: every histogram the tree observes is declared here, bucket
// boundaries are compile-time constants, and observing is one atomic add —
// so histogram snapshots are as deterministic as counters. A histogram
// never records durations or anything wall-clock-derived; it distributes a
// deterministic per-event quantity (nodes expanded, blobs produced, window
// sizes) over fixed buckets.
type HistID uint8

const (
	// A* engine (internal/astar): nodes expanded per search. The parallel
	// scheduler replays validated speculative searches at their canonical
	// commit slot, so the distribution is byte-identical at any NetWorkers.
	HistAstarExpanded HistID = iota
	// Router (internal/router): attempts consumed per routing episode (one
	// routeNet call; a net ripped as a blocker starts a new episode when it
	// is rerouted). attempts = rip-ups + 1 within the episode.
	HistNetAttempts
	// Cut-conflict window check (internal/router/detect.go): nets inside
	// one checked window, including the net under test.
	HistWindowNets
	// Decomposition oracle (internal/decomp): blobs per decomposition.
	// Cache hits skip the oracle, so — exactly like the decomp.* work
	// counters — equivalence tests comparing cached vs uncached runs zero
	// the decomp.* histogram family before diffing snapshots.
	HistDecompBlobs
	// Intra-instance parallel scheduler (internal/sched): speculated subset
	// size per wave. Exists only in parallel runs (like the sched.*
	// counters); identical for every NetWorkers >= 2.
	HistSchedSpecWave

	numHists
)

// HistBuckets is the bucket count of every histogram: seven bounded
// buckets plus one overflow bucket.
const HistBuckets = 8

var histNames = [numHists]string{
	HistAstarExpanded: "astar.expanded_per_search",
	HistNetAttempts:   "router.attempts_per_episode",
	HistWindowNets:    "window.nets_per_window",
	HistDecompBlobs:   "decomp.blobs_per_decomposition",
	HistSchedSpecWave: "sched.spec_per_wave",
}

// histBounds are the inclusive upper bounds of the first HistBuckets-1
// buckets; values above the last bound land in the overflow bucket. The
// bounds are part of the snapshot schema (docs/trace-schema.md) — changing
// them invalidates ledger comparisons, so treat them like a wire format.
var histBounds = [numHists][HistBuckets - 1]int64{
	HistAstarExpanded: {16, 64, 256, 1024, 4096, 16384, 65536},
	HistNetAttempts:   {1, 2, 3, 4, 5, 6, 8},
	HistWindowNets:    {1, 2, 4, 8, 16, 32, 64},
	HistDecompBlobs:   {1, 2, 4, 8, 16, 32, 64},
	HistSchedSpecWave: {1, 2, 4, 8, 16, 32, 64},
}

func (h HistID) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return fmt.Sprintf("hist(%d)", int(h))
}

// Bounds returns the histogram's inclusive bucket upper bounds (the
// overflow bucket has none).
func (h HistID) Bounds() [HistBuckets - 1]int64 { return histBounds[h] }

// BucketLabel renders bucket i of histogram h ("<=16", ">65536").
func (h HistID) BucketLabel(i int) string {
	if i >= HistBuckets-1 {
		return ">" + strconv.FormatInt(histBounds[h][HistBuckets-2], 10)
	}
	return "<=" + strconv.FormatInt(histBounds[h][i], 10)
}

// bucketOf locates v's bucket by linear scan — seven compares, no search
// structure needed at this size.
func (h HistID) bucketOf(v int64) int {
	for i, b := range histBounds[h] {
		if v <= b {
			return i
		}
	}
	return HistBuckets - 1
}

// Observe adds one observation of v to a histogram. No-op on a nil
// Recorder — one predicted branch, same discipline as Inc/Add.
func (r *Recorder) Observe(h HistID, v int64) {
	if r == nil {
		return
	}
	r.hists[h][h.bucketOf(v)].Add(1)
}

// Hist returns one histogram's bucket counts.
func (s *Snapshot) Hist(h HistID) [HistBuckets]int64 { return s.Hists[h] }

// EachHist calls f for every histogram in declaration order.
func (s *Snapshot) EachHist(f func(id HistID, name string, counts [HistBuckets]int64)) {
	for i := HistID(0); i < numHists; i++ {
		f(i, i.String(), s.Hists[i])
	}
}

// histString renders one histogram line: only non-empty buckets, in bucket
// order, so the line stays short and — being count-only — deterministic.
func histString(h HistID, counts [HistBuckets]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist    %-30s", h.String())
	empty := true
	for i, c := range counts {
		if c == 0 {
			continue
		}
		empty = false
		fmt.Fprintf(&b, " %s:%d", h.BucketLabel(i), c)
	}
	if empty {
		b.WriteString(" -")
	}
	return b.String()
}
