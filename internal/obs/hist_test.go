package obs

import (
	"strings"
	"testing"
)

func TestNilRecorderHistNetStatsSafe(t *testing.T) {
	var r *Recorder
	r.Observe(HistAstarExpanded, 100)
	r.NetAttempt(3)
	r.NetSearch(3, 50)
	r.NetRipup(3, RipWindow)
	r.NetWindowCheck(3)
	r.NetWindowFail(3)
	r.NetFail(3)
	if got := r.NetStats(); got != nil {
		t.Fatalf("nil recorder NetStats = %v, want nil", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	// astar bounds: 16,64,256,1024,4096,16384,65536 — hit the first bucket,
	// an exact bound, an interior value, and overflow.
	r.Observe(HistAstarExpanded, 0)
	r.Observe(HistAstarExpanded, 16)
	r.Observe(HistAstarExpanded, 17)
	r.Observe(HistAstarExpanded, 65536)
	r.Observe(HistAstarExpanded, 65537)
	s := r.Snapshot()
	h := s.Hist(HistAstarExpanded)
	want := [HistBuckets]int64{2, 1, 0, 0, 0, 0, 1, 1}
	if h != want {
		t.Fatalf("astar hist = %v, want %v", h, want)
	}
}

func TestHistogramNamesAndLabels(t *testing.T) {
	for i := HistID(0); i < numHists; i++ {
		if i.String() == "" || strings.HasPrefix(i.String(), "hist(") {
			t.Errorf("histogram %d has no name", i)
		}
		if !strings.Contains(i.String(), ".") {
			t.Errorf("histogram %q lacks a family prefix", i.String())
		}
		bounds := i.Bounds()
		for j := 1; j < len(bounds); j++ {
			if bounds[j] <= bounds[j-1] {
				t.Errorf("histogram %q bounds not strictly increasing: %v", i, bounds)
			}
		}
	}
	if got := HistAstarExpanded.BucketLabel(0); got != "<=16" {
		t.Errorf("BucketLabel(0) = %q, want <=16", got)
	}
	if got := HistAstarExpanded.BucketLabel(HistBuckets - 1); got != ">65536" {
		t.Errorf("overflow label = %q, want >65536", got)
	}
	if got := HistID(200).String(); got != "hist(200)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestHistogramInCountersString(t *testing.T) {
	r := New()
	r.Observe(HistDecompBlobs, 3)
	s := r.Snapshot()
	out := s.CountersString()
	if !strings.Contains(out, "decomp.blobs_per_decomposition") {
		t.Fatalf("CountersString missing histogram line:\n%s", out)
	}
	if !strings.Contains(out, "<=4:1") {
		t.Fatalf("CountersString missing bucket count:\n%s", out)
	}
	// Empty histograms render a placeholder, not nothing, so dumps stay
	// fixed-shape.
	if !strings.Contains(out, "sched.spec_per_wave") {
		t.Fatalf("CountersString missing empty histogram line:\n%s", out)
	}
}

func TestHistogramAccumulate(t *testing.T) {
	a := New()
	b := New()
	a.Observe(HistWindowNets, 2)
	b.Observe(HistWindowNets, 2)
	b.Observe(HistWindowNets, 100)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Accumulate(&sb)
	h := sa.Hist(HistWindowNets)
	if h[1] != 2 || h[HistBuckets-1] != 1 {
		t.Fatalf("accumulated hist = %v", h)
	}
}

func TestEachHist(t *testing.T) {
	r := New()
	r.Observe(HistNetAttempts, 1)
	s := r.Snapshot()
	seen := 0
	s.EachHist(func(id HistID, name string, counts [HistBuckets]int64) {
		seen++
		if id == HistNetAttempts && counts[0] != 1 {
			t.Errorf("EachHist counts for %s = %v", name, counts)
		}
	})
	if seen != int(numHists) {
		t.Fatalf("EachHist visited %d hists, want %d", seen, numHists)
	}
}

func TestNetStatsAttribution(t *testing.T) {
	r := New()
	// Touch nets out of canonical order to prove the sort.
	r.NetAttempt(7)
	r.NetSearch(7, 120)
	r.NetAttempt(2)
	r.NetSearch(2, 40)
	r.NetRipup(2, RipOddCycle)
	r.NetAttempt(2)
	r.NetSearch(2, 55)
	r.NetWindowCheck(2)
	r.NetWindowFail(2)
	r.NetRipup(2, RipWindow)
	r.NetRipup(7, RipBlocker)
	r.NetFail(7)

	stats := r.NetStats()
	if len(stats) != 2 || stats[0].Net != 2 || stats[1].Net != 7 {
		t.Fatalf("NetStats order = %+v, want nets [2 7]", stats)
	}
	n2 := stats[0]
	if n2.Attempts != 2 || n2.Searches != 2 || n2.Expanded != 95 {
		t.Errorf("net 2 work = %+v", n2)
	}
	if n2.Ripups[RipOddCycle] != 1 || n2.Ripups[RipWindow] != 1 || n2.RipupTotal() != 2 {
		t.Errorf("net 2 ripups = %v", n2.Ripups)
	}
	if n2.WinChecks != 1 || n2.WinFailed != 1 || n2.Fails != 0 {
		t.Errorf("net 2 windows/fails = %+v", n2)
	}
	n7 := stats[1]
	if n7.Ripups[RipBlocker] != 1 || n7.Fails != 1 {
		t.Errorf("net 7 = %+v", n7)
	}
}

func TestNetStatsString(t *testing.T) {
	r := New()
	r.NetAttempt(0)
	r.NetRipup(0, RipRepair)
	out := NetStatsString(r.NetStats())
	if !strings.Contains(out, "repair:1") {
		t.Fatalf("NetStatsString missing cause:\n%s", out)
	}
	if strings.Contains(out, "odd_cycle") {
		t.Fatalf("NetStatsString renders zero causes:\n%s", out)
	}
}

func TestRipCauseNames(t *testing.T) {
	want := map[RipCause]string{
		RipOddCycle:   "odd_cycle",
		RipInfeasible: "infeasible",
		RipWindow:     "window",
		RipBlocker:    "blocker",
		RipRepair:     "repair",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("RipCause(%d) = %q, want %q", c, c.String(), name)
		}
	}
	if got := RipCause(99).String(); got != "cause(99)" {
		t.Errorf("out-of-range cause = %q", got)
	}
}
