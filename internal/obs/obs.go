// Package obs is the repository's observability substrate — pure
// infrastructure, tied to no paper section: a stdlib-only metrics registry
// (atomic counters, max-tracking gauges, per-stage duration accumulators)
// plus a structured trace-event sink emitting deterministic JSONL (event
// schema: docs/trace-schema.md).
//
// Design constraints, in order:
//
//  1. Near-zero overhead when disabled. Every Recorder method is safe on a
//     nil receiver and reduces to a single predictable branch, so
//     instrumented code passes a nil *Recorder and pays (almost) nothing —
//     see BenchmarkCounterDisabled. Hot loops that would allocate to build
//     trace fields must guard with Tracing().
//  2. Deterministic traces. Events carry a monotonic sequence number, never
//     wall-clock timestamps, and only deterministic payload fields (net
//     ids, layers, counts, outcomes), so two runs of the same seed produce
//     byte-identical JSONL and traces can be golden-tested.
//  3. Concurrency-safe. Counters, gauges and stage accumulators are
//     atomics; the trace sink serializes writers under a mutex (sequence
//     numbers stay unique and dense, interleaving order is the scheduler's).
//
// Stage timers measure wall time and are therefore NOT deterministic; they
// live in the metrics snapshot, never in the trace. Stages may nest
// (StageDecompose runs inside StageWindowCheck and StageEvaluate), so
// stage durations overlap and do not sum to StageTotal.
package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CounterID names one monotonic counter. The enum is closed: every counter
// the tree increments is declared here so snapshots are fixed-size arrays
// and incrementing is a single atomic add — no map lookups, no allocation.
type CounterID uint8

const (
	// A* engine (internal/astar).
	CtrAstarSearches CounterID = iota
	CtrAstarExpanded
	CtrAstarPushes
	CtrAstarPops
	// Router (internal/router).
	CtrRouteAttempts
	CtrRouteRipups
	CtrRipOddCycle
	CtrRipInfeasible
	CtrRipWindow
	CtrBlockerRips
	CtrNoPath
	CtrRepairPasses
	CtrRepairRips
	// Cut-conflict window check (internal/router/detect.go).
	CtrWindowChecks
	CtrWindowResolved
	CtrWindowFailed
	// Color flipping (internal/colorflip).
	CtrFlipRuns
	CtrFlipInfeasible
	CtrFlipsApplied
	CtrFlipsRejected
	// Decomposition oracle (internal/decomp).
	CtrDecompositions
	CtrDecompBlobs
	CtrDecompBridges
	CtrDecompAssists
	CtrDecompOverlayFrags
	// Decomposition memo cache (internal/decomp, router.Options.DecompCache).
	// A cache hit returns the stored Result without re-running the oracle,
	// so it increments only cache_hits — none of the decomp.* work counters
	// above. Equivalence tests comparing cached vs uncached runs therefore
	// zero the whole decomp.* family before diffing snapshots.
	CtrDecompCacheHits
	CtrDecompCacheMisses
	CtrDecompCacheEvictions
	// Intra-instance parallel net scheduler (internal/sched, driven by
	// router.Options.NetWorkers). These counters exist only in parallel
	// runs; equivalence tests comparing parallel vs serial results zero
	// them before diffing snapshots (every other counter is byte-identical
	// by construction).
	CtrSchedWaves
	CtrSchedSpecSearches
	CtrSchedSpecHits
	CtrSchedSpecRetries
	// Incremental dirty-region decomposition (internal/decomp.Incremental,
	// router.Options.IncrementalDecomp). Like the cache counters these are
	// configuration-dependent: equivalence tests zero the decomp.* family.
	// A hit returns the previous layer Result untouched; a splice re-derives
	// only the dirty region and splices it into the previous Result; a
	// fallback is a full recompute (first sighting of a layer is not
	// counted — only an abandoned incremental attempt is).
	CtrDecompIncHits
	CtrDecompIncSplices
	CtrDecompIncFallbacks
	// Speculative rip-up pre-search (internal/router episode speculation,
	// router.Options.RipupSpec). Exists only in NetWorkers >= 2 runs with
	// the lever on; equivalence tests zero the ripup.* family (the bench
	// ledger routes it beside sched.* in the nondeterministic section).
	// spec_adopted + spec_wasted == spec_searches at the end of a run.
	CtrRipupSpecSearches
	CtrRipupSpecAdopted
	CtrRipupSpecWasted
	// Sparse corridor search (internal/sparse, router.Options.SparseSearch).
	// Configuration-dependent like sched.*/ripup.*: the family exists only
	// with the lever on, so equivalence tests zero it before diffing and
	// the bench ledger routes it beside the other execution-strategy
	// families. searches counts corridor-graph engagements, fallbacks the
	// engagements whose result the exact repricing check rejected (the
	// dense engine then ran as usual), nodes the corridor nodes expanded.
	CtrSparseSearches
	CtrSparseFallbacks
	CtrSparseNodes

	numCounters
)

var counterNames = [numCounters]string{
	CtrAstarSearches:        "astar.searches",
	CtrAstarExpanded:        "astar.expanded",
	CtrAstarPushes:          "astar.pushes",
	CtrAstarPops:            "astar.pops",
	CtrRouteAttempts:        "router.route_attempts",
	CtrRouteRipups:          "router.ripups",
	CtrRipOddCycle:          "router.rip_odd_cycle",
	CtrRipInfeasible:        "router.rip_infeasible",
	CtrRipWindow:            "router.rip_window",
	CtrBlockerRips:          "router.blocker_rips",
	CtrNoPath:               "router.no_path",
	CtrRepairPasses:         "router.repair_passes",
	CtrRepairRips:           "router.repair_rips",
	CtrWindowChecks:         "window.checks",
	CtrWindowResolved:       "window.resolved",
	CtrWindowFailed:         "window.failed",
	CtrFlipRuns:             "colorflip.dp_runs",
	CtrFlipInfeasible:       "colorflip.dp_infeasible",
	CtrFlipsApplied:         "colorflip.flips_applied",
	CtrFlipsRejected:        "colorflip.flips_rejected",
	CtrDecompositions:       "decomp.decompositions",
	CtrDecompBlobs:          "decomp.blobs",
	CtrDecompBridges:        "decomp.bridges",
	CtrDecompAssists:        "decomp.assists",
	CtrDecompOverlayFrags:   "decomp.overlay_frags",
	CtrDecompCacheHits:      "decomp.cache_hits",
	CtrDecompCacheMisses:    "decomp.cache_misses",
	CtrDecompCacheEvictions: "decomp.cache_evictions",
	CtrSchedWaves:           "sched.waves",
	CtrSchedSpecSearches:    "sched.spec_searches",
	CtrSchedSpecHits:        "sched.spec_hits",
	CtrSchedSpecRetries:     "sched.spec_retries",
	CtrDecompIncHits:        "decomp.incremental_hits",
	CtrDecompIncSplices:     "decomp.incremental_splices",
	CtrDecompIncFallbacks:   "decomp.incremental_fallbacks",
	CtrRipupSpecSearches:    "ripup.spec_searches",
	CtrRipupSpecAdopted:     "ripup.spec_adopted",
	CtrRipupSpecWasted:      "ripup.spec_wasted",
	CtrSparseSearches:       "sparse.searches",
	CtrSparseFallbacks:      "sparse.fallbacks",
	CtrSparseNodes:          "sparse.nodes",
}

func (c CounterID) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// GaugeID names one max-tracking gauge (high-water marks).
type GaugeID uint8

const (
	GaugeAstarHeapPeak GaugeID = iota
	GaugeFlipComponentPeak

	numGauges
)

var gaugeNames = [numGauges]string{
	GaugeAstarHeapPeak:     "astar.heap_peak",
	GaugeFlipComponentPeak: "colorflip.component_peak",
}

func (g GaugeID) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return fmt.Sprintf("gauge(%d)", int(g))
}

// StageID names one pipeline stage whose wall time is accumulated.
type StageID uint8

const (
	StageRoute StageID = iota
	StageWindowCheck
	StageColorFlip
	StageFinalRepair
	StageDecompose
	StageEvaluate
	StageTotal
	// Intra-instance parallel routing (internal/sched). StageSpeculate is
	// the wall time of the concurrent speculation phases (nested inside
	// StageRoute); StageSpecSerial sums the individual speculative-search
	// durations (their cost if run back to back); StageSpecMakespan is the
	// LPT-scheduled makespan of those searches across NetWorkers engines —
	// on a single-core box, wall - (serial - makespan) estimates the
	// multi-core critical path (see EXPERIMENTS.md).
	StageSpeculate
	StageSpecSerial
	StageSpecMakespan
	// Speculative rip-up pre-search (router.Options.RipupSpec).
	// StageRipupSerial sums the durations of the episode pre-searches;
	// StageRipupMakespan is their LPT-scheduled makespan across NetWorkers
	// engines — the same critical-path convention as the StageSpec* pair.
	StageRipupSerial
	StageRipupMakespan

	numStages
)

var stageNames = [numStages]string{
	StageRoute:         "route",
	StageWindowCheck:   "window_check",
	StageColorFlip:     "color_flip",
	StageFinalRepair:   "final_repair",
	StageDecompose:     "decompose",
	StageEvaluate:      "evaluate",
	StageTotal:         "total",
	StageSpeculate:     "speculate",
	StageSpecSerial:    "spec_serial",
	StageSpecMakespan:  "spec_makespan",
	StageRipupSerial:   "ripup_serial",
	StageRipupMakespan: "ripup_makespan",
}

func (s StageID) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Recorder is the metrics registry plus optional trace and debug sinks.
// All methods are safe on a nil receiver (they no-op), which is the
// disabled fast path: instrumented code holds a possibly-nil *Recorder and
// never branches on configuration itself.
type Recorder struct {
	counters [numCounters]atomic.Int64
	gauges   [numGauges]atomic.Int64
	stageNS  [numStages]atomic.Int64
	hists    [numHists][HistBuckets]atomic.Int64

	netMu sync.Mutex
	nets  map[int]*NetStat

	trace *TraceSink

	debugMu sync.Mutex
	debug   io.Writer
}

// New returns an empty Recorder with no trace or debug sink attached.
func New() *Recorder { return &Recorder{} }

// SetTrace attaches a trace sink writing JSONL events to w. Passing nil
// detaches tracing.
func (r *Recorder) SetTrace(w io.Writer) *TraceSink {
	if w == nil {
		r.trace = nil
		return nil
	}
	r.trace = NewTraceSink(w)
	return r.trace
}

// SetDebug directs Debugf output to w (nil silences it).
func (r *Recorder) SetDebug(w io.Writer) {
	r.debugMu.Lock()
	r.debug = w
	r.debugMu.Unlock()
}

// EnsureDebug returns r with a debug writer attached, defaulting to
// standard error; a nil r is promoted to a fresh Recorder. It exists so
// library code can honor a "log diagnostics" option without referencing
// os.Stderr itself (the sadplint stderr rule reserves that for this
// package).
func EnsureDebug(r *Recorder) *Recorder {
	if r == nil {
		r = New()
	}
	r.debugMu.Lock()
	if r.debug == nil {
		r.debug = os.Stderr
	}
	r.debugMu.Unlock()
	return r
}

// Add adds n to a counter. No-op on a nil Recorder.
func (r *Recorder) Add(c CounterID, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// Inc adds one to a counter. No-op on a nil Recorder.
func (r *Recorder) Inc(c CounterID) {
	if r == nil {
		return
	}
	r.counters[c].Add(1)
}

// Max raises a gauge to v if v exceeds its current value.
func (r *Recorder) Max(g GaugeID, v int64) {
	if r == nil {
		return
	}
	for {
		cur := r.gauges[g].Load()
		if v <= cur || r.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// AddStage accumulates wall time into a stage.
func (r *Recorder) AddStage(s StageID, d time.Duration) {
	if r == nil {
		return
	}
	r.stageNS[s].Add(int64(d))
}

// nop is the shared no-op closer returned by Span on a nil Recorder, so the
// disabled path does not allocate.
var nop = func() {}

// Span starts timing a stage and returns the function that stops it:
//
//	defer rec.Span(obs.StageRoute)()
func (r *Recorder) Span(s StageID) func() {
	if r == nil {
		return nop
	}
	start := time.Now()                                          //lint:allow wallclock stage timers are the sanctioned wall-clock sink; trace events never carry time
	return func() { r.stageNS[s].Add(int64(time.Since(start))) } //lint:allow wallclock stage timers are the sanctioned wall-clock sink
}

// Tracing reports whether trace events would be recorded. Hot paths use it
// to skip building event fields entirely.
func (r *Recorder) Tracing() bool { return r != nil && r.trace != nil }

// Trace emits one structured event. Callers on hot paths should guard with
// Tracing() — the variadic field list allocates regardless of sink state.
func (r *Recorder) Trace(ev string, fields ...Field) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.emit(ev, fields)
}

// TraceErr returns the first write error of the attached trace sink, if any.
func (r *Recorder) TraceErr() error {
	if r == nil || r.trace == nil {
		return nil
	}
	return r.trace.Err()
}

// Debugf writes one human-readable diagnostic line to the debug writer, if
// one is attached. No-op otherwise.
func (r *Recorder) Debugf(format string, args ...any) {
	if r == nil {
		return
	}
	r.debugMu.Lock()
	w := r.debug
	r.debugMu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, format, args...)
}

// Snapshot copies the current registry state. A nil Recorder yields the
// zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for i := range r.counters {
		s.Counters[i] = r.counters[i].Load()
	}
	for i := range r.gauges {
		s.Gauges[i] = r.gauges[i].Load()
	}
	for i := range r.stageNS {
		s.StageNS[i] = r.stageNS[i].Load()
	}
	for i := range r.hists {
		for j := range r.hists[i] {
			s.Hists[i][j] = r.hists[i][j].Load()
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a Recorder's registry. The zero value
// is an empty snapshot. Per-net attribution (NetStats) is variable-size and
// deliberately NOT part of the snapshot; consumers read it straight off the
// Recorder.
type Snapshot struct {
	Counters [numCounters]int64
	Gauges   [numGauges]int64
	StageNS  [numStages]int64
	Hists    [numHists][HistBuckets]int64
}

// Accumulate merges o into s: counters and stage times are summed, gauges
// (high-water marks) are maxed. The bench harness uses it to fold per-cell
// snapshots into one aggregate in canonical cell order, so a parallel run
// merges to exactly the serial run's totals.
func (s *Snapshot) Accumulate(o *Snapshot) {
	for i := range s.Counters {
		s.Counters[i] += o.Counters[i]
	}
	for i := range s.Gauges {
		if o.Gauges[i] > s.Gauges[i] {
			s.Gauges[i] = o.Gauges[i]
		}
	}
	for i := range s.StageNS {
		s.StageNS[i] += o.StageNS[i]
	}
	for i := range s.Hists {
		for j := range s.Hists[i] {
			s.Hists[i][j] += o.Hists[i][j]
		}
	}
}

// ZeroFamily zeroes every counter and histogram whose name starts with
// prefix (e.g. "sched.", "decomp."). Equivalence tests use it to drop the
// metric families that legitimately differ between configurations — the
// sched.* family exists only in parallel runs, the decomp.* family shrinks
// under the memo cache — before comparing snapshots byte for byte.
func (s *Snapshot) ZeroFamily(prefix string) {
	for i := CounterID(0); i < numCounters; i++ {
		if strings.HasPrefix(i.String(), prefix) {
			s.Counters[i] = 0
		}
	}
	for i := HistID(0); i < numHists; i++ {
		if strings.HasPrefix(i.String(), prefix) {
			s.Hists[i] = [HistBuckets]int64{}
		}
	}
}

// Counter returns one counter's value.
func (s *Snapshot) Counter(c CounterID) int64 { return s.Counters[c] }

// Gauge returns one gauge's high-water mark.
func (s *Snapshot) Gauge(g GaugeID) int64 { return s.Gauges[g] }

// Stage returns one stage's accumulated wall time.
func (s *Snapshot) Stage(st StageID) time.Duration { return time.Duration(s.StageNS[st]) }

// EachCounter calls f for every counter in declaration order.
func (s *Snapshot) EachCounter(f func(name string, v int64)) {
	for i := CounterID(0); i < numCounters; i++ {
		f(i.String(), s.Counters[i])
	}
}

// EachStage calls f for every stage in declaration order.
func (s *Snapshot) EachStage(f func(name string, d time.Duration)) {
	for i := StageID(0); i < numStages; i++ {
		f(i.String(), time.Duration(s.StageNS[i]))
	}
}

// CountersString renders counters, gauges and histograms as "name value"
// lines in declaration order. It contains no durations, so for a
// deterministic workload the string is identical across runs (used by the
// determinism regression tests). Histogram names carry the same family
// prefixes as counters ("sched.", "decomp."), so equivalence dumps that
// zero a counter family by prefix zero its histograms the same way.
func (s *Snapshot) CountersString() string {
	var b strings.Builder
	for i := CounterID(0); i < numCounters; i++ {
		fmt.Fprintf(&b, "counter %-24s %d\n", i.String(), s.Counters[i])
	}
	for i := GaugeID(0); i < numGauges; i++ {
		fmt.Fprintf(&b, "gauge   %-24s %d\n", i.String(), s.Gauges[i])
	}
	for i := HistID(0); i < numHists; i++ {
		b.WriteString(histString(i, s.Hists[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the full snapshot: counters, gauges, then stage wall
// times. Stage lines are wall-clock measurements and differ run to run.
func (s *Snapshot) String() string {
	var b strings.Builder
	b.WriteString(s.CountersString())
	for i := StageID(0); i < numStages; i++ {
		fmt.Fprintf(&b, "stage   %-24s %v\n", i.String(), time.Duration(s.StageNS[i]))
	}
	return b.String()
}
