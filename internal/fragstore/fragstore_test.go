package fragstore

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
)

func TestAddQueryRemove(t *testing.T) {
	fs := New()
	fs.Add(1, []geom.Rect{{X0: 0, Y0: 0, X1: 5, Y1: 1}})
	fs.Add(2, []geom.Rect{{X0: 0, Y0: 3, X1: 5, Y1: 4}, {X0: 10, Y0: 10, X1: 11, Y1: 15}})

	// Queries are bucket-coarse: they may report extra fragments from the
	// same bucket (callers re-check geometry) but never miss an
	// intersecting one and never repeat a fragment.
	seenRects := map[geom.Rect]int{}
	fs.Query(geom.Rect{X0: 0, Y0: 0, X1: 6, Y1: 6}, func(f Frag) { seenRects[f.Rect]++ })
	if seenRects[geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 1}] != 1 ||
		seenRects[geom.Rect{X0: 0, Y0: 3, X1: 5, Y1: 4}] != 1 {
		t.Fatalf("query missed or repeated fragments: %v", seenRects)
	}
	for r, n := range seenRects {
		if n != 1 {
			t.Fatalf("fragment %v reported %d times", r, n)
		}
	}

	if got := fs.NetRects(2); len(got) != 2 {
		t.Fatalf("NetRects: %v", got)
	}
	if ids := fs.NetIDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("NetIDs: %v", ids)
	}
	if !fs.Has(1) || fs.Has(3) {
		t.Fatal("Has wrong")
	}

	fs.RemoveNet(1)
	seen := map[int]int{}
	fs.Query(geom.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20}, func(f Frag) { seen[f.Net]++ })
	if seen[1] != 0 || seen[2] != 2 {
		t.Fatalf("after removal: %v", seen)
	}
	if fs.Has(1) {
		t.Fatal("removed net still present")
	}
}

func TestQueryDedup(t *testing.T) {
	fs := New()
	// One big fragment spanning many buckets must be reported once.
	fs.Add(7, []geom.Rect{{X0: 0, Y0: 0, X1: 100, Y1: 1}})
	count := 0
	fs.Query(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 2}, func(f Frag) { count++ })
	if count != 1 {
		t.Fatalf("dedup failed: %d", count)
	}
}

func TestCellsByLayer(t *testing.T) {
	path := []grid.Cell{
		{X: 0, Y: 0, L: 0}, {X: 1, Y: 0, L: 0}, {X: 1, Y: 0, L: 1},
		{X: 1, Y: 1, L: 1}, {X: 1, Y: 0, L: 1}, // duplicate cell
	}
	by := CellsByLayer(path, 3)
	if len(by[0]) != 2 || len(by[1]) != 2 || len(by[2]) != 0 {
		t.Fatalf("split: %v", by)
	}
}
