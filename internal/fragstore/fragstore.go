// Package fragstore indexes routed wire fragments (the Theorem 3
// rectangles of Section III-A, in grid-cell coordinates) per layer for
// scenario detection, with removal support for rip-up — infrastructure
// shared by the paper's router and the baseline routers.
package fragstore

import (
	"sort"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
)

// Frag is one rectangle fragment of a net's wiring on one layer, in cell
// coordinates (Theorem 3 fragmentation).
type Frag struct {
	Net   int
	Rect  geom.Rect
	alive bool
}

// fragStore indexes the routed fragments of one layer for scenario
// detection; it supports removal for rip-up.
type Store struct {
	frags   []Frag
	byNet   map[int][]int32
	buckets map[geom.Pt][]int32
	bucket  int
}

func New() *Store {
	return &Store{
		byNet:   make(map[int][]int32),
		buckets: make(map[geom.Pt][]int32),
		bucket:  16, // cells per bucket
	}
}

func (fs *Store) keyRange(r geom.Rect) (x0, y0, x1, y1 int) {
	return fdiv(r.X0, fs.bucket), fdiv(r.Y0, fs.bucket),
		fdiv(r.X1-1, fs.bucket), fdiv(r.Y1-1, fs.bucket)
}

// add registers the fragments of net on this layer and returns their ids.
func (fs *Store) Add(net int, rects []geom.Rect) []int32 {
	ids := make([]int32, 0, len(rects))
	for _, r := range rects {
		id := int32(len(fs.frags))
		fs.frags = append(fs.frags, Frag{Net: net, Rect: r, alive: true})
		fs.byNet[net] = append(fs.byNet[net], id)
		x0, y0, x1, y1 := fs.keyRange(r)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				k := geom.Pt{X: x, Y: y}
				fs.buckets[k] = append(fs.buckets[k], id)
			}
		}
		ids = append(ids, id)
	}
	return ids
}

// removeNet tombstones all fragments of a net (rip-up).
func (fs *Store) RemoveNet(net int) {
	for _, id := range fs.byNet[net] {
		fs.frags[id].alive = false
	}
	delete(fs.byNet, net)
}

// query invokes fn once per live fragment whose bucket range intersects r.
func (fs *Store) Query(r geom.Rect, fn func(f Frag)) {
	seen := make(map[int32]bool, 8)
	x0, y0, x1, y1 := fs.keyRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, id := range fs.buckets[geom.Pt{X: x, Y: y}] {
				if seen[id] || !fs.frags[id].alive {
					continue
				}
				seen[id] = true
				fn(fs.frags[id])
			}
		}
	}
}

// netRects returns the live rects of a net.
func (fs *Store) NetRects(net int) []geom.Rect {
	ids := fs.byNet[net]
	out := make([]geom.Rect, 0, len(ids))
	for _, id := range ids {
		if fs.frags[id].alive {
			out = append(out, fs.frags[id].Rect)
		}
	}
	return out
}

// NetIDs returns the sorted net ids with live fragments.
func (fs *Store) NetIDs() []int {
	out := make([]int, 0, len(fs.byNet))
	for n := range fs.byNet {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Has reports whether the net has live fragments.
func (fs *Store) Has(net int) bool { return len(fs.byNet[net]) > 0 }

// CellsByLayer splits a routed path into per-layer cell sets.
func CellsByLayer(path []grid.Cell, layers int) [][]geom.Pt {
	out := make([][]geom.Pt, layers)
	seen := make(map[grid.Cell]bool, len(path))
	for _, c := range path {
		if seen[c] {
			continue
		}
		seen[c] = true
		out[c.L] = append(out[c.L], geom.Pt{X: c.X, Y: c.Y})
	}
	return out
}

func fdiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
