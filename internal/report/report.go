// Package report formats evaluation results in the style of the paper's
// Section IV tables and provides the log-log least-squares fit used for
// the Fig. 20 empirical complexity estimate.
package report

import (
	"fmt"
	"math"
	"strings"

	"sadproute/internal/bench"
	"sadproute/internal/obs"
)

// Table renders rows of per-benchmark metrics grouped by algorithm, in the
// layout of the paper's Tables III/IV, followed by the "Comp." ratio row
// normalized against the reference algorithm (ours = 1.000).
func Table(title string, rows []bench.Metrics, ref bench.Algo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-14s %8s %9s %12s %6s %10s\n",
		"Circuit", "Algorithm", "#Net", "Rout.(%)", "Overlay(u)", "#C", "CPU(s)")
	for _, m := range rows {
		if m.NA {
			fmt.Fprintf(&b, "%-8s %-14s %8d %9s %12s %6s %10s\n",
				m.Bench, m.Algo, m.Nets, "NA", "NA", "NA", fmt.Sprintf(">%.0f", m.CPU.Seconds()))
			continue
		}
		fmt.Fprintf(&b, "%-8s %-14s %8d %9.2f %12.1f %6d %10.2f\n",
			m.Bench, m.Algo, m.Nets, m.RoutabilityPct, m.OverlayUnits,
			m.Conflicts+m.HardOverlays, m.CPU.Seconds())
	}
	b.WriteString(compRow(rows, ref))
	return b.String()
}

// compRow computes the paper's "Comp." normalization: per algorithm, the
// ratio of its summed metric to the reference algorithm's, with the
// reference at 1.000. NA rows are excluded from both sums.
func compRow(rows []bench.Metrics, ref bench.Algo) string {
	type agg struct {
		rout, overlay, cpu float64
		conf               int
		n                  int
	}
	perAlgo := map[string]*agg{}
	var order []string
	// Only compare on benchmarks where both the algo and the reference
	// completed.
	completed := map[string]map[string]bench.Metrics{}
	for _, m := range rows {
		if completed[m.Bench] == nil {
			completed[m.Bench] = map[string]bench.Metrics{}
		}
		completed[m.Bench][m.Algo] = m
	}
	for _, m := range rows {
		if m.NA {
			continue
		}
		r, ok := completed[m.Bench][string(ref)]
		if !ok || r.NA {
			continue
		}
		a := perAlgo[m.Algo]
		if a == nil {
			a = &agg{}
			perAlgo[m.Algo] = a
			order = append(order, m.Algo)
		}
		a.rout += m.RoutabilityPct / nz(r.RoutabilityPct)
		a.overlay += m.OverlayUnits / nz(r.OverlayUnits)
		a.cpu += m.CPU.Seconds() / nz(r.CPU.Seconds())
		a.conf += m.Conflicts + m.HardOverlays
		a.n++
	}
	var b strings.Builder
	b.WriteString("Comp. (vs " + string(ref) + ", geometric over completed benches):\n")
	for _, name := range order {
		a := perAlgo[name]
		if a.n == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-14s rout x%.4f  overlay x%.3f  CPU x%.3f  totalC %d\n",
			name, a.rout/float64(a.n), a.overlay/float64(a.n), a.cpu/float64(a.n), a.conf)
	}
	return b.String()
}

// StageTable renders the per-stage wall-time breakdown recorded by the
// observability layer for each benchmark row, followed by the headline
// search-effort counters. Only instrumented rows appear: baseline rows
// carry just the minimal StageTotal/StageEvaluate snapshot (their counters
// are zero — see bench.Metrics.Obs) and are skipped.
func StageTable(title string, rows []bench.Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %8s %9s %9s %9s %9s %9s %9s %9s\n",
		"Circuit", "#Net", "route", "window", "flip", "repair", "decomp", "eval", "total")
	for _, m := range rows {
		s := m.Obs
		if s.Counter(obs.CtrRouteAttempts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %8d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			m.Bench, m.Nets,
			s.Stage(obs.StageRoute).Seconds(),
			s.Stage(obs.StageWindowCheck).Seconds(),
			s.Stage(obs.StageColorFlip).Seconds(),
			s.Stage(obs.StageFinalRepair).Seconds(),
			s.Stage(obs.StageDecompose).Seconds(),
			s.Stage(obs.StageEvaluate).Seconds(),
			s.Stage(obs.StageTotal).Seconds())
	}
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %12s %12s %12s\n",
		"Circuit", "#Net", "attempts", "ripups", "A*nodes", "decomps", "flipruns")
	for _, m := range rows {
		s := m.Obs
		if s.Counter(obs.CtrRouteAttempts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %8d %12d %12d %12d %12d %12d\n",
			m.Bench, m.Nets,
			s.Counter(obs.CtrRouteAttempts), s.Counter(obs.CtrRouteRipups),
			s.Counter(obs.CtrAstarExpanded), s.Counter(obs.CtrDecompositions),
			s.Counter(obs.CtrFlipRuns))
	}
	return b.String()
}

func nz(v float64) float64 {
	if v == 0 {
		return 1e-9
	}
	return v
}

// LogLogFit fits y = c * x^k by least squares in log space and returns the
// exponent k and coefficient c — the paper's Fig. 20 "empirical time
// complexity ~ n^1.42" analysis.
func LogLogFit(xs, ys []float64) (k, c float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	n := 0
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	fn := float64(n)
	k = (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
	c = math.Exp((sy - k*sx) / fn)
	return k, c
}
