package report

import (
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/rules"
)

// TestTableParallelMatchesSerial renders the same (benchmark × algorithm)
// matrix through the serial and parallel harness and requires the emitted
// tables to be byte-identical — the user-visible form of the harness's
// canonical-merge guarantee. Wall-clock columns are neutralized by zeroing
// CPU and stage times before rendering, exactly as any two runs of the
// same binary would otherwise differ.
func TestTableParallelMatchesSerial(t *testing.T) {
	specs := []bench.Spec{
		{Name: "repA", Nets: 50, Tracks: 30, Layers: 3, Seed: 21, PinCandidates: 1, AvgHPWL: 5, Blockages: 1},
		{Name: "repB", Nets: 70, Tracks: 36, Layers: 3, Seed: 22, PinCandidates: 1, AvgHPWL: 5, Blockages: 1},
	}
	algos := []bench.Algo{bench.AlgoOurs, bench.AlgoTrimGreedy, bench.AlgoCutNoMerge}
	var cells []bench.Cell
	for _, sp := range specs {
		for _, a := range algos {
			cells = append(cells, bench.Cell{Spec: sp, Algo: a})
		}
	}
	render := func(jobs int) (string, string) {
		h := bench.Harness{Jobs: jobs, Cfg: bench.RunConfig{Rules: rules.Node10nm()}}
		rows, err := h.Run(cells)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range rows {
			rows[i].CPU = 0
			for j := range rows[i].Obs.StageNS {
				rows[i].Obs.StageNS[j] = 0
			}
		}
		return Table("parallel-vs-serial", rows, bench.AlgoOurs),
			StageTable("stages", rows)
	}
	serialTab, serialStages := render(1)
	parallelTab, parallelStages := render(4)
	if serialTab != parallelTab {
		t.Errorf("rendered tables differ:\n--- jobs=1\n%s\n--- jobs=4\n%s", serialTab, parallelTab)
	}
	if serialStages != parallelStages {
		t.Errorf("stage tables differ:\n--- jobs=1\n%s\n--- jobs=4\n%s", serialStages, parallelStages)
	}
}
