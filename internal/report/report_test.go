package report

import (
	"math"
	"strings"
	"testing"
	"time"

	"sadproute/internal/bench"
)

func TestLogLogFitRecoversExponent(t *testing.T) {
	// y = 3 * x^1.42
	var xs, ys []float64
	for _, x := range []float64{100, 300, 1000, 5000, 20000} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.42))
	}
	k, c := LogLogFit(xs, ys)
	if math.Abs(k-1.42) > 1e-9 || math.Abs(c-3) > 1e-6 {
		t.Fatalf("fit k=%v c=%v", k, c)
	}
}

func TestLogLogFitDegenerate(t *testing.T) {
	if k, _ := LogLogFit([]float64{1}, []float64{1}); !math.IsNaN(k) {
		t.Fatal("single point must be NaN")
	}
	if k, _ := LogLogFit([]float64{0, 0}, []float64{1, 2}); !math.IsNaN(k) {
		t.Fatal("non-positive xs must be NaN")
	}
}

func TestTableFormatting(t *testing.T) {
	rows := []bench.Metrics{
		{Bench: "T1", Algo: "ours", Nets: 100, RoutabilityPct: 95, OverlayUnits: 10, CPU: time.Second},
		{Bench: "T1", Algo: "base", Nets: 100, RoutabilityPct: 80, OverlayUnits: 100, Conflicts: 5, CPU: 2 * time.Second},
		{Bench: "T2", Algo: "base", Nets: 200, NA: true, CPU: time.Minute},
	}
	out := Table("test table", rows, "ours")
	if !strings.Contains(out, "NA") {
		t.Error("NA row missing")
	}
	if !strings.Contains(out, "overlay x10.000") {
		t.Errorf("comp ratio missing:\n%s", out)
	}
	if !strings.Contains(out, "rout x0.8421") {
		t.Errorf("routability ratio missing:\n%s", out)
	}
}
