// Package rules defines SADP design-rule sets (paper Section II-B) and the
// consistency relations the paper assumes between them (equations (1)-(3)).
package rules

import "fmt"

// Set holds the seven SADP design rules of the paper, all in nanometers.
type Set struct {
	WLine    int // w_line: minimum metal-line width
	WSpacer  int // w_spacer: spacer width = minimum metal spacing on grid
	WCut     int // w_cut: minimum cut-pattern width
	WCore    int // w_core: minimum core-pattern width
	DCut     int // d_cut: minimum cut-to-cut spacing
	DCore    int // d_core: minimum core-to-core spacing (merge below this)
	DOverlap int // d_overlap: cut-over-spacer overlap length
}

// Node10nm returns the 10 nm-node rule set used throughout the paper's
// evaluation: w_line = w_spacer = w_cut = w_core = 20 nm,
// d_cut = d_core = 30 nm.
func Node10nm() Set {
	return Set{
		WLine:    20,
		WSpacer:  20,
		WCut:     20,
		WCore:    20,
		DCut:     30,
		DCore:    30,
		DOverlap: 5,
	}
}

// Pitch returns the routing-track pitch, w_line + w_spacer.
func (s Set) Pitch() int { return s.WLine + s.WSpacer }

// DIndepSq returns the square of d_indep = sqrt(2)*(w_line + 2*w_spacer),
// the independence distance of Theorem 1. Squared form keeps all distance
// comparisons in exact integer arithmetic.
func (s Set) DIndepSq() int {
	d := s.WLine + 2*s.WSpacer
	return 2 * d * d
}

// Validate checks the paper's rule relations:
//
//	(1) w_line == w_spacer
//	(2) w_cut == w_core < d_cut == d_core
//	(3) d_core < w_line + 2*w_spacer - 2*d_overlap
//
// plus basic positivity. It returns a descriptive error for the first
// violated relation.
func (s Set) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"w_line", s.WLine}, {"w_spacer", s.WSpacer}, {"w_cut", s.WCut},
		{"w_core", s.WCore}, {"d_cut", s.DCut}, {"d_core", s.DCore},
	} {
		if v.val <= 0 {
			return fmt.Errorf("rules: %s must be positive, got %d", v.name, v.val)
		}
	}
	if s.DOverlap < 0 {
		return fmt.Errorf("rules: d_overlap must be non-negative, got %d", s.DOverlap)
	}
	if s.WLine != s.WSpacer {
		return fmt.Errorf("rules: relation (1) violated: w_line (%d) != w_spacer (%d)", s.WLine, s.WSpacer)
	}
	if s.WCut != s.WCore {
		return fmt.Errorf("rules: relation (2) violated: w_cut (%d) != w_core (%d)", s.WCut, s.WCore)
	}
	if s.DCut != s.DCore {
		return fmt.Errorf("rules: relation (2) violated: d_cut (%d) != d_core (%d)", s.DCut, s.DCore)
	}
	if !(s.WCut < s.DCut) {
		return fmt.Errorf("rules: relation (2) violated: w_cut (%d) must be < d_cut (%d)", s.WCut, s.DCut)
	}
	if !(s.DCore < s.WLine+2*s.WSpacer-2*s.DOverlap) {
		return fmt.Errorf("rules: relation (3) violated: d_core (%d) must be < w_line+2*w_spacer-2*d_overlap (%d)",
			s.DCore, s.WLine+2*s.WSpacer-2*s.DOverlap)
	}
	return nil
}
