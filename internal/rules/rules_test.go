package rules

import "testing"

func TestNode10nmValid(t *testing.T) {
	ds := Node10nm()
	if err := ds.Validate(); err != nil {
		t.Fatalf("paper rules must validate: %v", err)
	}
	if ds.Pitch() != 40 {
		t.Fatalf("pitch = %d, want 40", ds.Pitch())
	}
	// d_indep = sqrt(2)*(20+40) nm -> squared = 7200.
	if ds.DIndepSq() != 7200 {
		t.Fatalf("d_indep^2 = %d, want 7200", ds.DIndepSq())
	}
}

func TestValidateRelations(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Set)
	}{
		{"relation1", func(s *Set) { s.WSpacer = 25 }},
		{"relation2-wcut", func(s *Set) { s.WCut = 25 }},
		{"relation2-dcut", func(s *Set) { s.DCut = 25 }},
		{"relation2-order", func(s *Set) { s.DCut, s.DCore = 20, 20 }},
		{"relation3", func(s *Set) { s.DOverlap = 20 }},
		{"positivity", func(s *Set) { s.WLine = 0; s.WSpacer = 0 }},
	}
	for _, c := range cases {
		ds := Node10nm()
		c.mod(&ds)
		if err := ds.Validate(); err == nil {
			t.Errorf("%s: expected validation failure", c.name)
		}
	}
}
