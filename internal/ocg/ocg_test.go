package ocg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sadproute/internal/scenario"
)

func hardDiff() scenario.Profile {
	var p scenario.Profile
	p.Type = "1-a"
	p.Forbidden[scenario.CC], p.Forbidden[scenario.SS] = true, true
	return p
}

func hardSame() scenario.Profile {
	var p scenario.Profile
	p.Type = "1-b"
	p.Forbidden[scenario.CS], p.Forbidden[scenario.SC] = true, true
	return p
}

func soft(cost int) scenario.Profile {
	var p scenario.Profile
	p.Type = "3-a"
	p.Cost[scenario.CS], p.Cost[scenario.SC] = cost, cost
	return p
}

func TestOddCycleDetection(t *testing.T) {
	g := New()
	// Triangle of different-color constraints: classic odd cycle.
	if odd, inf := g.AddScenario(1, 2, hardDiff()); odd || inf {
		t.Fatal("first edge cannot be a cycle")
	}
	if odd, inf := g.AddScenario(2, 3, hardDiff()); odd || inf {
		t.Fatal("second edge cannot be a cycle")
	}
	odd, inf := g.AddScenario(1, 3, hardDiff())
	if !odd || inf {
		t.Fatalf("closing triangle must report odd cycle (odd=%v inf=%v)", odd, inf)
	}
}

func TestEvenCycleOK(t *testing.T) {
	g := New()
	g.AddScenario(1, 2, hardDiff())
	g.AddScenario(2, 3, hardDiff())
	if odd, _ := g.AddScenario(1, 3, hardSame()); odd {
		t.Fatal("diff+diff+same is an even (consistent) cycle")
	}
}

func TestContradictionDetection(t *testing.T) {
	g := New()
	g.AddScenario(1, 2, hardDiff())
	_, inf := g.AddScenario(1, 2, hardSame())
	if !inf {
		t.Fatal("same pair with diff+same constraints must be infeasible")
	}
}

func TestRemoveNetClearsOddCycle(t *testing.T) {
	g := New()
	g.AddScenario(1, 2, hardDiff())
	g.AddScenario(2, 3, hardDiff())
	g.AddScenario(1, 3, hardDiff())
	if g.OddCycles == 0 {
		t.Fatal("expected an odd cycle")
	}
	g.RemoveNet(3)
	if g.OddCycles != 0 {
		t.Fatalf("odd cycle must vanish after removing a participant, got %d", g.OddCycles)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("one edge should remain, got %d", g.EdgeCount())
	}
}

func TestAggregation(t *testing.T) {
	g := New()
	g.AddScenario(1, 2, soft(20))
	g.AddScenario(1, 2, soft(30))
	e := g.EdgeBetween(1, 2)
	if e == nil || e.Count != 2 || e.Prof.Cost[scenario.CS] != 50 {
		t.Fatalf("aggregation wrong: %+v", e)
	}
}

func TestProfileOrientation(t *testing.T) {
	g := New()
	var p scenario.Profile
	p.Cost[scenario.CS] = 77 // A core, B second costs 77
	g.AddScenario(5, 2, p)   // stored with A=2 after normalization
	e := g.EdgeBetween(2, 5)
	if e == nil {
		t.Fatal("edge missing")
	}
	// Oriented back for net 5 as role A, CS must cost 77 again.
	if got := e.ProfileFor(5).Cost[scenario.CS]; got != 77 {
		t.Fatalf("oriented cost = %d, want 77", got)
	}
	if got := e.ProfileFor(2).Cost[scenario.SC]; got != 77 {
		t.Fatalf("mirror cost = %d, want 77", got)
	}
}

func TestComponent(t *testing.T) {
	g := New()
	g.AddScenario(1, 2, soft(1))
	g.AddScenario(2, 3, soft(1))
	g.AddScenario(7, 8, soft(1))
	comp := g.Component(1)
	if len(comp) != 3 || comp[0] != 1 || comp[2] != 3 {
		t.Fatalf("component: %v", comp)
	}
	if len(g.ComponentEdges(comp)) != 2 {
		t.Fatal("component edges wrong")
	}
}

// TestQuickParityMatchesBruteForce: the incremental odd-cycle detector must
// agree with brute-force 2-coloring feasibility on random hard-edge graphs.
func TestQuickParityMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		g := New()
		type edge struct{ a, b, parity int }
		var edges []edge
		anyOdd := false
		for i := 0; i < 12; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			parity := rng.Intn(2)
			prof := hardSame()
			if parity == 1 {
				prof = hardDiff()
			}
			odd, inf := g.AddScenario(a, b, prof)
			edges = append(edges, edge{a, b, parity})
			if odd || inf {
				anyOdd = true
			}
		}
		// Brute force: is there a 2-coloring satisfying all edges?
		feasible := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, e := range edges {
				if ((mask>>e.a)^(mask>>e.b))&1 != e.parity {
					ok = false
					break
				}
			}
			if ok {
				feasible = true
				break
			}
		}
		return anyOdd != feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
