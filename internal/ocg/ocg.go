// Package ocg implements the paper's overlay constraint graph (Section
// III-B): one graph per routing layer, a vertex per routed net, and an
// aggregated scenario-profile edge per net pair. Hard color relations
// (same-color / different-color constraints from types 1-a, 1-b, 2-a and
// conflict-forbidden assignments) feed an incremental parity union-find —
// the constant-time odd-cycle detector the paper adapts from LELE
// decomposition — while nonhard relations carry the side-overlay cost
// matrices consumed by pseudo-coloring and the color-flipping DP.
//
// The paper models same-color constraints with dummy vertices and reduces
// even hard cycles into super vertices; both devices are subsumed here by
// carrying signed parities directly in the union-find and full cost
// matrices on the edges, which is expressively equivalent and keeps
// AddScenario amortized near-constant.
package ocg

import (
	"sort"

	"sadproute/internal/scenario"
)

// Edge aggregates every potential overlay scenario detected between one
// ordered net pair (A < B): costs add, forbidden/conflict flags accumulate.
type Edge struct {
	A, B  int
	Prof  scenario.Profile
	Count int // number of aggregated scenarios
}

// Other returns the edge endpoint that is not n.
func (e *Edge) Other(n int) int {
	if e.A == n {
		return e.B
	}
	return e.A
}

// ProfileFor returns the edge profile oriented so that n plays role A.
func (e *Edge) ProfileFor(n int) scenario.Profile {
	if e.A == n {
		return e.Prof
	}
	return swapProfile(e.Prof)
}

func swapProfile(p scenario.Profile) scenario.Profile {
	q := p
	for a := scenario.CC; a <= scenario.SS; a++ {
		q.Cost[a.Swap()] = p.Cost[a]
		q.Forbidden[a.Swap()] = p.Forbidden[a]
		q.Conflict[a.Swap()] = p.Conflict[a]
	}
	return q
}

// HardKind classifies an aggregated edge for the parity structure.
type HardKind uint8

const (
	Soft HardKind = iota
	HardSame
	HardDiff
	Contradiction // both same and diff forbidden: no feasible assignment
)

// Kind returns the parity classification of the aggregated profile.
func Kind(p scenario.Profile) HardKind {
	sameBad := p.Forbidden[scenario.CC] && p.Forbidden[scenario.SS]
	diffBad := p.Forbidden[scenario.CS] && p.Forbidden[scenario.SC]
	switch {
	case sameBad && diffBad:
		return Contradiction
	case sameBad:
		return HardDiff
	case diffBad:
		return HardSame
	default:
		return Soft
	}
}

// Graph is one layer's overlay constraint graph.
type Graph struct {
	edges map[[2]int]*Edge
	adj   map[int][]*Edge

	pf      parityForest
	pfDirty bool
	// OddCycles counts hard-constraint odd cycles currently present (kept
	// nonzero until the offending edges are removed by rip-up).
	OddCycles int
}

// New returns an empty overlay constraint graph.
func New() *Graph {
	return &Graph{
		edges: make(map[[2]int]*Edge),
		adj:   make(map[int][]*Edge),
		pf:    newParityForest(),
	}
}

// AddScenario merges one scenario profile (oriented a→b) into the graph.
// It reports whether the addition created a hard-constraint odd cycle or an
// infeasible (contradictory) edge — either condition obliges the router to
// rip up the newly routed net.
func (g *Graph) AddScenario(a, b int, p scenario.Profile) (oddCycle, infeasible bool) {
	if a == b {
		return false, false
	}
	if a > b {
		a, b = b, a
		p = swapProfile(p)
	}
	key := [2]int{a, b}
	e := g.edges[key]
	prevKind := Soft
	if e == nil {
		e = &Edge{A: a, B: b, Prof: p, Count: 1}
		g.edges[key] = e
		g.adj[a] = append(g.adj[a], e)
		g.adj[b] = append(g.adj[b], e)
	} else {
		prevKind = Kind(e.Prof)
		for i := scenario.CC; i <= scenario.SS; i++ {
			e.Prof.Cost[i] += p.Cost[i]
			e.Prof.Forbidden[i] = e.Prof.Forbidden[i] || p.Forbidden[i]
			e.Prof.Conflict[i] = e.Prof.Conflict[i] || p.Conflict[i]
		}
		if e.Prof.Type != p.Type {
			e.Prof.Type = e.Prof.Type + "+" + p.Type
		}
		e.Count++
	}
	k := Kind(e.Prof)
	if k == Contradiction {
		return false, true
	}
	if k == prevKind || k == Soft {
		return false, false
	}
	if g.pfDirty {
		g.rebuildParity()
		return g.OddCycles > 0, false
	}
	if !g.pf.union(a, b, parityOf(k)) {
		g.OddCycles++
		return true, false
	}
	return false, false
}

func parityOf(k HardKind) int {
	if k == HardDiff {
		return 1
	}
	return 0
}

// RemoveNet deletes every edge incident to net n (rip-up) and schedules a
// parity rebuild.
func (g *Graph) RemoveNet(n int) {
	es := g.adj[n]
	if len(es) == 0 {
		return
	}
	delete(g.adj, n)
	for _, e := range es {
		o := e.Other(n)
		delete(g.edges, [2]int{e.A, e.B})
		lst := g.adj[o]
		for i, x := range lst {
			if x == e {
				lst[i] = lst[len(lst)-1]
				g.adj[o] = lst[:len(lst)-1]
				break
			}
		}
	}
	g.pfDirty = true
	g.rebuildParity()
}

// rebuildParity reconstructs the parity forest from the surviving hard
// edges and recounts odd cycles.
func (g *Graph) rebuildParity() {
	g.pf = newParityForest()
	g.OddCycles = 0
	// Deterministic order: sort edge keys.
	keys := make([][2]int, 0, len(g.edges))
	for k, e := range g.edges {
		if kk := Kind(e.Prof); kk == HardSame || kk == HardDiff {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := g.edges[k]
		if !g.pf.union(e.A, e.B, parityOf(Kind(e.Prof))) {
			g.OddCycles++
		}
	}
	g.pfDirty = false
}

// EdgeBetween returns the aggregated edge between two nets, or nil.
func (g *Graph) EdgeBetween(a, b int) *Edge {
	if a > b {
		a, b = b, a
	}
	return g.edges[[2]int{a, b}]
}

// Edges returns the edges incident to net n (do not modify).
func (g *Graph) Edges(n int) []*Edge { return g.adj[n] }

// EdgeCount returns the number of aggregated edges in the graph.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Component returns the nets connected to n (including n) through any
// edges, in sorted order.
func (g *Graph) Component(n int) []int {
	seen := map[int]bool{n: true}
	stack := []int{n}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			o := e.Other(v)
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ComponentEdges returns the unique edges among the given nets.
func (g *Graph) ComponentEdges(nets []int) []*Edge {
	in := make(map[int]bool, len(nets))
	for _, n := range nets {
		in[n] = true
	}
	var out []*Edge
	for _, n := range nets {
		for _, e := range g.adj[n] {
			if e.A == n && in[e.B] { // emit once, from the A side
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// parityForest is a union-find with edge parities: parity 0 links vertices
// constrained to the same color, parity 1 to different colors. union
// reports false when the new relation closes an odd (inconsistent) cycle.
type parityForest struct {
	parent map[int]int
	par    map[int]int
}

func newParityForest() parityForest {
	return parityForest{parent: make(map[int]int), par: make(map[int]int)}
}

func (f parityForest) find(x int) (root, parity int) {
	p, ok := f.parent[x]
	if !ok {
		f.parent[x] = x
		f.par[x] = 0
		return x, 0
	}
	if p == x {
		return x, 0
	}
	r, rp := f.find(p)
	// Path compression with parity accumulation.
	f.parent[x] = r
	f.par[x] ^= rp
	return r, f.par[x]
}

func (f parityForest) union(a, b, parity int) bool {
	ra, pa := f.find(a)
	rb, pb := f.find(b)
	if ra == rb {
		return pa^pb == parity
	}
	f.parent[ra] = rb
	f.par[ra] = pa ^ pb ^ parity
	return true
}
