package geom

import "sort"

// FragmentCells decomposes a set of unit cells (e.g. the grid cells occupied
// by one net on one layer) into maximal straight run rectangles, the
// fragmentation step of the paper's Theorem 3: every rectilinear polygon is
// fragmented into rectangles before potential-overlay-scenario
// classification.
//
// The decomposition emits every maximal horizontal run of length >= 2 and
// every maximal vertical run of length >= 2 as a 1-track-wide Rect (in cell
// coordinates, half-open), plus a 1x1 Rect for each isolated cell that
// belongs to no run. A corner cell of an L-shaped path is part of both its
// horizontal and its vertical run; the resulting overlap is harmless for
// pairwise scenario classification because both rects belong to the same
// polygon.
//
// The result is deterministic: rects are sorted by (Y0, X0, X1, Y1).
func FragmentCells(cells []Pt) []Rect {
	if len(cells) == 0 {
		return nil
	}
	set := make(map[Pt]bool, len(cells))
	for _, c := range cells {
		set[c] = true
	}
	inRun := make(map[Pt]bool, len(cells))
	var out []Rect

	// Maximal horizontal runs.
	for _, c := range cells {
		if set[Pt{c.X - 1, c.Y}] {
			continue // not a run start
		}
		x1 := c.X + 1
		for set[Pt{x1, c.Y}] {
			x1++
		}
		if x1-c.X >= 2 {
			out = append(out, Rect{c.X, c.Y, x1, c.Y + 1})
			for x := c.X; x < x1; x++ {
				inRun[Pt{x, c.Y}] = true
			}
		}
	}
	// Maximal vertical runs.
	for _, c := range cells {
		if set[Pt{c.X, c.Y - 1}] {
			continue
		}
		y1 := c.Y + 1
		for set[Pt{c.X, y1}] {
			y1++
		}
		if y1-c.Y >= 2 {
			out = append(out, Rect{c.X, c.Y, c.X + 1, y1})
			for y := c.Y; y < y1; y++ {
				inRun[Pt{c.X, y}] = true
			}
		}
	}
	// Isolated cells.
	for _, c := range cells {
		if !inRun[c] {
			out = append(out, Rect{c.X, c.Y, c.X + 1, c.Y + 1})
			inRun[c] = true
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
	return out
}

// CellsOfRect expands a cell-coordinate Rect back into its unit cells.
func CellsOfRect(r Rect) []Pt {
	cells := make([]Pt, 0, r.Area())
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			cells = append(cells, Pt{x, y})
		}
	}
	return cells
}
