// Package geom provides integer geometry primitives for SADP layout
// processing — shared infrastructure beneath every paper section rather
// than an algorithm of its own. All coordinates are integers; the unit is
// chosen by the caller (nanometers for mask geometry, track indices for
// routing-grid geometry).
//
// Rectangles use half-open extents: a Rect covers points p with
// X0 <= p.X < X1 and Y0 <= p.Y < Y1. A Rect with X1 <= X0 or Y1 <= Y0 is
// empty.
package geom

import "fmt"

// Pt is a 2-D integer point.
type Pt struct {
	X, Y int
}

// Add returns the translation of p by q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns the translation of p by -q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Pt) Manhattan(q Pt) int { return abs(p.X-q.X) + abs(p.Y-q.Y) }

func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a half-open axis-aligned rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is a convenience constructor that canonicalizes its arguments so the
// result is never inverted.
func R(x0, y0, x1, y1 int) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Empty reports whether r covers no points.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// W returns the width of r (zero if empty).
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height of r (zero if empty).
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the area of r.
func (r Rect) Area() int { return r.W() * r.H() }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsRect reports whether s is entirely inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0),
		Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1),
		Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and s; if one is empty the other is
// returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0),
		Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1),
		Y1: max(r.Y1, s.Y1),
	}
}

// Expand grows r by d on every side (shrinks when d is negative).
func (r Rect) Expand(d int) Rect {
	out := Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Translate shifts r by p.
func (r Rect) Translate(p Pt) Rect {
	return Rect{r.X0 + p.X, r.Y0 + p.Y, r.X1 + p.X, r.Y1 + p.Y}
}

// GapX returns the horizontal clearance between r and s: 0 when their X
// extents overlap or touch, otherwise the size of the open gap.
func (r Rect) GapX(s Rect) int {
	switch {
	case s.X0 >= r.X1:
		return s.X0 - r.X1
	case r.X0 >= s.X1:
		return r.X0 - s.X1
	default:
		return 0
	}
}

// GapY returns the vertical clearance between r and s (see GapX).
func (r Rect) GapY(s Rect) int {
	switch {
	case s.Y0 >= r.Y1:
		return s.Y0 - r.Y1
	case r.Y0 >= s.Y1:
		return r.Y0 - s.Y1
	default:
		return 0
	}
}

// DistSq returns the squared Euclidean distance between the closest
// boundary points of r and s (0 when they intersect or touch).
func (r Rect) DistSq(s Rect) int {
	dx := r.GapX(s)
	dy := r.GapY(s)
	return dx*dx + dy*dy
}

// OverlapX returns the length of the shared X interval of r and s
// (0 when disjoint in X).
func (r Rect) OverlapX(s Rect) int {
	lo := max(r.X0, s.X0)
	hi := min(r.X1, s.X1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// OverlapY returns the length of the shared Y interval of r and s.
func (r Rect) OverlapY(s Rect) int {
	lo := max(r.Y0, s.Y0)
	hi := min(r.Y1, s.Y1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Center returns the center point of r, rounded down.
func (r Rect) Center() Pt { return Pt{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Orientation describes the long axis of a rectangle.
type Orientation int

const (
	// Square rects (W == H) report OrientNone.
	OrientNone Orientation = iota
	OrientH                // wider than tall
	OrientV                // taller than wide
)

// Orient returns the dominant orientation of r.
func (r Rect) Orient() Orientation {
	switch {
	case r.W() > r.H():
		return OrientH
	case r.H() > r.W():
		return OrientV
	default:
		return OrientNone
	}
}

func (o Orientation) String() string {
	switch o {
	case OrientH:
		return "H"
	case OrientV:
		return "V"
	default:
		return "·"
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
