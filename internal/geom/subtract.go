package geom

// Subtract returns r minus s as up to four disjoint rectangles. The pieces
// are emitted in bottom, top, left, right order; empty pieces are omitted.
func (r Rect) Subtract(s Rect) []Rect {
	if r.Empty() {
		return nil
	}
	x := r.Intersect(s)
	if x.Empty() {
		return []Rect{r}
	}
	if x == r {
		return nil
	}
	out := make([]Rect, 0, 4)
	if x.Y0 > r.Y0 { // bottom slab
		out = append(out, Rect{r.X0, r.Y0, r.X1, x.Y0})
	}
	if x.Y1 < r.Y1 { // top slab
		out = append(out, Rect{r.X0, x.Y1, r.X1, r.Y1})
	}
	if x.X0 > r.X0 { // left slab
		out = append(out, Rect{r.X0, x.Y0, x.X0, x.Y1})
	}
	if x.X1 < r.X1 { // right slab
		out = append(out, Rect{x.X1, x.Y0, r.X1, x.Y1})
	}
	return out
}

// SubtractAll removes every rect in subs from each rect in rs.
func SubtractAll(rs []Rect, subs []Rect) []Rect {
	cur := rs
	for _, s := range subs {
		var next []Rect
		for _, r := range cur {
			next = append(next, r.Subtract(s)...)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}
