package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(10, 0, 0, 20) // canonicalizes
	if r != (Rect{0, 0, 10, 20}) {
		t.Fatalf("R canonicalization: %v", r)
	}
	if r.W() != 10 || r.H() != 20 || r.Area() != 200 {
		t.Fatalf("dims wrong: %v", r)
	}
	if !r.Contains(Pt{0, 0}) || r.Contains(Pt{10, 0}) {
		t.Fatal("half-open containment wrong")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	if x := a.Intersect(b); x != (Rect{5, 5, 10, 10}) {
		t.Fatalf("intersect: %v", x)
	}
	if u := a.Union(b); u != (Rect{0, 0, 15, 15}) {
		t.Fatalf("union: %v", u)
	}
	if a.Intersects(Rect{10, 0, 20, 10}) {
		t.Fatal("touching rects must not intersect (half-open)")
	}
}

func TestGapsAndDist(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{13, 14, 20, 20}
	if a.GapX(b) != 3 || a.GapY(b) != 4 {
		t.Fatalf("gaps: %d %d", a.GapX(b), a.GapY(b))
	}
	if a.DistSq(b) != 25 {
		t.Fatalf("distsq: %d", a.DistSq(b))
	}
	if a.DistSq(Rect{5, 5, 8, 8}) != 0 {
		t.Fatal("overlapping rects must have zero distance")
	}
}

func TestOrient(t *testing.T) {
	if (Rect{0, 0, 10, 1}).Orient() != OrientH ||
		(Rect{0, 0, 1, 10}).Orient() != OrientV ||
		(Rect{0, 0, 2, 2}).Orient() != OrientNone {
		t.Fatal("orientation wrong")
	}
}

// TestQuickSubtract checks r.Subtract(s) partitions r \ s exactly.
func TestQuickSubtract(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rr := func() Rect {
			x, y := rng.Intn(20), rng.Intn(20)
			return Rect{x, y, x + 1 + rng.Intn(10), y + 1 + rng.Intn(10)}
		}
		r, s := rr(), rr()
		pieces := r.Subtract(s)
		// Pieces must be disjoint, inside r, outside s, and cover r \ s.
		area := 0
		for i, p := range pieces {
			if p.Empty() || !r.ContainsRect(p) || p.Intersects(s) {
				return false
			}
			for j := i + 1; j < len(pieces); j++ {
				if p.Intersects(pieces[j]) {
					return false
				}
			}
			area += p.Area()
		}
		return area == r.Area()-r.Intersect(s).Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentCells(t *testing.T) {
	// L-shape: horizontal run of 4 plus vertical run of 3 sharing a corner.
	var cells []Pt
	for x := 0; x < 4; x++ {
		cells = append(cells, Pt{x, 0})
	}
	for y := 1; y < 3; y++ {
		cells = append(cells, Pt{3, y})
	}
	frags := FragmentCells(cells)
	if len(frags) != 2 {
		t.Fatalf("want 2 fragments, got %v", frags)
	}
	// Every cell covered by at least one fragment.
	for _, c := range cells {
		found := false
		for _, f := range frags {
			if f.Contains(c) {
				found = true
			}
		}
		if !found {
			t.Fatalf("cell %v uncovered by %v", c, frags)
		}
	}
}

func TestFragmentIsolated(t *testing.T) {
	frags := FragmentCells([]Pt{{5, 5}})
	if len(frags) != 1 || frags[0] != (Rect{5, 5, 6, 6}) {
		t.Fatalf("got %v", frags)
	}
}

// TestQuickFragmentCovers: fragmentation covers exactly the input cells.
func TestQuickFragmentCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := map[Pt]bool{}
		var cells []Pt
		// Random walk to create wire-like shapes.
		x, y := 10, 10
		for i := 0; i < 30; i++ {
			p := Pt{x, y}
			if !set[p] {
				set[p] = true
				cells = append(cells, p)
			}
			if rng.Intn(2) == 0 {
				x += rng.Intn(3) - 1
			} else {
				y += rng.Intn(3) - 1
			}
		}
		frags := FragmentCells(cells)
		covered := map[Pt]bool{}
		for _, fr := range frags {
			for _, c := range CellsOfRect(fr) {
				if !set[c] {
					return false // fragment outside the input
				}
				covered[c] = true
			}
		}
		return len(covered) == len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
