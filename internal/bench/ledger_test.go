package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// ledgerRows routes the harness suite at the given jobs/net-workers and
// returns the rows.
func ledgerRows(t *testing.T, jobs, netWorkers int) []Metrics {
	t.Helper()
	cfg := RunConfig{Rules: rules.Node10nm()}
	if netWorkers > 1 {
		opt := router.Defaults()
		opt.NetWorkers = netWorkers
		cfg.RouterOptions = &opt
	}
	rows, err := Harness{Jobs: jobs, Cfg: cfg}.Run(harnessCells())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestLedgerDeterministicBytes is the ledger half of the byte-identity
// acceptance criterion: the "det" section of BENCH_*.json is identical
// across runs, -jobs 1/4 and -net-workers 1/4; wall-clock lives only in
// the timing/env sections.
func TestLedgerDeterministicBytes(t *testing.T) {
	var want []byte
	for _, cfg := range []struct{ jobs, workers int }{
		{1, 1}, {4, 1}, {1, 4}, {4, 4}, {1, 1},
	} {
		l := NewLedger("test", cfg.jobs)
		l.Add("suite", ledgerRows(t, cfg.jobs, cfg.workers))
		got, err := l.DeterministicBytes()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			i := 0
			for i < len(want) && i < len(got) && want[i] == got[i] {
				i++
			}
			lo := max(i-200, 0)
			t.Fatalf("jobs=%d workers=%d: deterministic ledger bytes diverge at %d:\n--- want\n...%s\n--- got\n...%s",
				cfg.jobs, cfg.workers, i, want[lo:min(i+200, len(want))], got[lo:min(i+200, len(got))])
		}
	}
}

// TestLedgerSections checks the three-section split: sched.* metrics land
// in "sched" (never "det"), wall time and allocs in "timing", and the det
// section carries counters, histograms and the attribution head.
func TestLedgerSections(t *testing.T) {
	rows := ledgerRows(t, 1, 4)
	l := NewLedger("sections", 1)
	l.Add("suite", rows)
	var ours *LedgerCell
	for i := range l.Cells {
		if l.Cells[i].Algo == string(AlgoOurs) {
			ours = &l.Cells[i]
			break
		}
	}
	if ours == nil {
		t.Fatal("no AlgoOurs cell in ledger")
	}
	for name := range ours.Det.Counters {
		if strings.HasPrefix(name, "sched.") {
			t.Errorf("sched counter %q leaked into det section", name)
		}
	}
	if len(ours.Sched.Counters) == 0 {
		t.Error("net-workers run has no sched counters in sched section")
	}
	if len(ours.Det.Counters) == 0 || len(ours.Det.Hists) == 0 {
		t.Errorf("det section missing metrics: %+v", ours.Det)
	}
	if h, ok := ours.Det.Hists["astar.expanded_per_search"]; !ok {
		t.Error("det section missing astar histogram")
	} else if len(h.Le) != obs.HistBuckets-1 || len(h.Counts) != obs.HistBuckets {
		t.Errorf("histogram shape: le=%d counts=%d", len(h.Le), len(h.Counts))
	}
	if len(ours.Det.TopNets) == 0 {
		t.Error("det section missing top_nets")
	}
	for i := 1; i < len(ours.Det.TopNets); i++ {
		a, b := ours.Det.TopNets[i-1], ours.Det.TopNets[i]
		if a.Expanded < b.Expanded || (a.Expanded == b.Expanded && a.Net > b.Net) {
			t.Errorf("top_nets not ranked: %+v before %+v", a, b)
		}
	}
	if ours.Timing.WallNS <= 0 {
		t.Error("timing.wall_ns not populated")
	}
	if ours.Timing.AllocBytes <= 0 {
		t.Error("timing.alloc_bytes not populated")
	}
	if len(ours.Timing.StagesNS) == 0 {
		t.Error("timing.stages_ns not populated")
	}
}

// TestLedgerRoundTrip writes a ledger to disk and reads it back.
func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	l := NewLedger("roundtrip", 2)
	l.Add("suite", ledgerRows(t, 1, 1))
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "roundtrip" || got.Schema != LedgerSchema || len(got.Cells) != len(l.Cells) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Env.Jobs != 2 || got.Env.Go == "" || got.Env.RunWallNS <= 0 {
		t.Fatalf("env not stamped: %+v", got.Env)
	}
	wantBytes, _ := l.DeterministicBytes()
	gotBytes, _ := got.DeterministicBytes()
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("deterministic bytes changed across serialize/parse round trip")
	}
}

// TestLedgerSchemaMismatch proves ReadLedger refuses foreign schemas
// instead of silently comparing incompatible files.
func TestLedgerSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999, "rev": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLedger(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}
