// Package bench generates synthetic benchmark netlists with the scale and
// density profile of the paper's Test1-Test10 designs (proprietary in the
// original; see DESIGN.md for the substitution argument) and provides the
// harness that routes them and measures the paper's evaluation metrics —
// the machinery behind the evaluation section (Section IV, Tables III/IV
// and Fig. 20). The parallel Harness fans (benchmark × algorithm) cells
// across a worker pool and merges results in canonical order, so tables
// and traces are identical to the serial run's.
package bench

import (
	"fmt"
	"math/rand" //lint:allow wallclock every generator is seeded from Spec.Seed; no global/unseeded source

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name          string
	Nets          int
	Tracks        int // die width/height in routing tracks (pitch 40 nm)
	Layers        int
	Seed          int64
	PinCandidates int // 1 = fixed pins; >1 = multiple pin candidate locations
	AvgHPWL       int // mean pin-to-pin half-perimeter in tracks
	Blockages     int
}

// SizeUM returns the die edge in micrometers at the 10 nm node (40 nm
// pitch).
func (s Spec) SizeUM() float64 { return float64(s.Tracks) * 0.04 }

// PaperSpecs returns the five benchmark sizes of the paper's Tables III/IV:
// 1.5k/2.7k/5.5k/12k/28k nets on 6.8/9.6/16/24/36 um dies with three
// routing layers. fixedPins selects the Test1-5 family (Table III); with
// multi=3 candidate locations per pin the Test6-10 family (Table IV).
func PaperSpecs(fixedPins bool) []Spec {
	type row struct {
		nets, tracks int
	}
	rows := []row{{1500, 170}, {2700, 240}, {5500, 400}, {12000, 600}, {28000, 900}}
	cands, base, seedBase := 1, 1, int64(1000)
	if !fixedPins {
		cands, base, seedBase = 3, 6, 2000
	}
	out := make([]Spec, len(rows))
	for i, r := range rows {
		out[i] = Spec{
			Name:          fmt.Sprintf("Test%d", base+i),
			Nets:          r.nets,
			Tracks:        r.tracks,
			Layers:        3,
			Seed:          seedBase + int64(i),
			PinCandidates: cands,
			AvgHPWL:       r.tracks / 10,
			Blockages:     r.nets / 150,
		}
	}
	return out
}

// Generate builds a reproducible random netlist for the spec: uniformly
// placed two-pin nets with bounded half-perimeter, globally unique pin
// cells, and a few macro-like blockages.
func Generate(s Spec) *netlist.Netlist {
	rng := rand.New(rand.NewSource(s.Seed))
	nl := &netlist.Netlist{
		Name:   s.Name,
		W:      s.Tracks,
		H:      s.Tracks,
		Layers: s.Layers,
	}

	blocked := make(map[geom.Pt]bool)
	for i := 0; i < s.Blockages; i++ {
		w := 2 + rng.Intn(s.Tracks/20+1)
		h := 2 + rng.Intn(s.Tracks/20+1)
		x := rng.Intn(s.Tracks - w)
		y := rng.Intn(s.Tracks - h)
		l := rng.Intn(s.Layers)
		r := geom.Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
		nl.Blockages = append(nl.Blockages, netlist.Blockage{L: l, Rect: r})
		if l == 0 {
			for yy := r.Y0; yy < r.Y1; yy++ {
				for xx := r.X0; xx < r.X1; xx++ {
					blocked[geom.Pt{X: xx, Y: yy}] = true
				}
			}
		}
	}

	used := make(map[geom.Pt]bool)
	free := func(x, y int) bool {
		if x < 0 || x >= s.Tracks || y < 0 || y >= s.Tracks {
			return false
		}
		p := geom.Pt{X: x, Y: y}
		return !used[p] && !blocked[p]
	}
	take := func(x, y int) grid.Cell {
		used[geom.Pt{X: x, Y: y}] = true
		return grid.Cell{X: x, Y: y, L: 0}
	}

	// Pin candidates cluster within a small neighborhood of the primary
	// location, mimicking multiple legal pin access points.
	makePin := func(x, y int) (netlist.Pin, bool) {
		if !free(x, y) {
			return netlist.Pin{}, false
		}
		pin := netlist.Pin{Candidates: []grid.Cell{take(x, y)}}
		for len(pin.Candidates) < s.PinCandidates {
			dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
			nx, ny := x+dx, y+dy
			if !free(nx, ny) {
				// Dense corners may not fit all candidates; accept fewer
				// after a bounded number of tries.
				if rng.Intn(8) == 0 {
					break
				}
				continue
			}
			pin.Candidates = append(pin.Candidates, take(nx, ny))
		}
		return pin, true
	}

	for len(nl.Nets) < s.Nets {
		ax, ay := rng.Intn(s.Tracks), rng.Intn(s.Tracks)
		// Half-perimeter between 2 and ~2*AvgHPWL, uniformly.
		hp := 2 + rng.Intn(2*s.AvgHPWL)
		dx := rng.Intn(hp + 1)
		dy := hp - dx
		if rng.Intn(2) == 0 {
			dx = -dx
		}
		if rng.Intn(2) == 0 {
			dy = -dy
		}
		bx, by := ax+dx, ay+dy
		if !free(ax, ay) || !free(bx, by) || (ax == bx && ay == by) {
			continue
		}
		a, _ := makePin(ax, ay)
		b, ok := makePin(bx, by)
		if !ok {
			continue
		}
		nl.Nets = append(nl.Nets, netlist.Net{
			ID:   len(nl.Nets),
			Name: fmt.Sprintf("n%d", len(nl.Nets)),
			A:    a,
			B:    b,
		})
	}
	return nl
}
