// Package bench generates synthetic benchmark netlists with the scale and
// density profile of the paper's Test1-Test10 designs (proprietary in the
// original; see DESIGN.md for the substitution argument) and provides the
// harness that routes them and measures the paper's evaluation metrics —
// the machinery behind the evaluation section (Section IV, Tables III/IV
// and Fig. 20). The parallel Harness fans (benchmark × algorithm) cells
// across a worker pool and merges results in canonical order, so tables
// and traces are identical to the serial run's.
package bench

import (
	"fmt"
	"math/rand" //lint:allow wallclock every generator is seeded from Spec.Seed; no global/unseeded source

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name          string
	Nets          int
	Tracks        int // die width/height in routing tracks (pitch 40 nm)
	Layers        int
	Seed          int64
	PinCandidates int // 1 = fixed pins; >1 = multiple pin candidate locations
	AvgHPWL       int // mean pin-to-pin half-perimeter in tracks
	Blockages     int
	// MacroBlockages adds that many macro-scale blockages (edge Tracks/8
	// to Tracks/4) before the standard small ones — the "huge" family's
	// obstacle profile. The field is rng-gated: at zero (every spec
	// predating it) the generator draws nothing for it, so previously
	// published seeds keep producing byte-identical netlists (see the
	// determinism contract in cmd/benchgen).
	MacroBlockages int
}

// SizeUM returns the die edge in micrometers at the 10 nm node (40 nm
// pitch).
func (s Spec) SizeUM() float64 { return float64(s.Tracks) * 0.04 }

// PaperSpecs returns the five benchmark sizes of the paper's Tables III/IV:
// 1.5k/2.7k/5.5k/12k/28k nets on 6.8/9.6/16/24/36 um dies with three
// routing layers. fixedPins selects the Test1-5 family (Table III); with
// multi=3 candidate locations per pin the Test6-10 family (Table IV).
func PaperSpecs(fixedPins bool) []Spec {
	type row struct {
		nets, tracks int
	}
	rows := []row{{1500, 170}, {2700, 240}, {5500, 400}, {12000, 600}, {28000, 900}}
	cands, base, seedBase := 1, 1, int64(1000)
	if !fixedPins {
		cands, base, seedBase = 3, 6, 2000
	}
	out := make([]Spec, len(rows))
	for i, r := range rows {
		out[i] = Spec{
			Name:          fmt.Sprintf("Test%d", base+i),
			Nets:          r.nets,
			Tracks:        r.tracks,
			Layers:        3,
			Seed:          seedBase + int64(i),
			PinCandidates: cands,
			AvgHPWL:       r.tracks / 10,
			Blockages:     r.nets / 150,
		}
	}
	return out
}

// HugeSpecs returns the corridor-routing "huge" family: dies larger than
// the paper's biggest, a few dozen long nets (sparse congestion, two
// orders of magnitude fewer nets per track than Test1-10), and full-stack
// macro slabs whose faces force real detours. The profile is what
// router.Options.SparseSearch is for: dense A* floods slab pockets —
// growing with die area until it exhausts its expansion budget — while
// the corridor graph crosses them in a handful of interval-sized hops.
// Parameters (including seeds) are pinned to instances every net of which
// the sparse engine routes to 100%.
func HugeSpecs() []Spec {
	type row struct {
		nets, tracks, avg, mb, bl int
		seed                      int64
	}
	rows := []row{
		{60, 700, 250, 8, 6, 3001},
		{70, 1200, 350, 10, 8, 3011},
		{80, 1400, 450, 10, 8, 3007},
	}
	out := make([]Spec, len(rows))
	for i, r := range rows {
		out[i] = Spec{
			Name:           fmt.Sprintf("Huge%d", i+1),
			Nets:           r.nets,
			Tracks:         r.tracks,
			Layers:         3,
			Seed:           r.seed,
			PinCandidates:  1,
			AvgHPWL:        r.avg,
			Blockages:      r.bl,
			MacroBlockages: r.mb,
		}
	}
	return out
}

// Generate builds a reproducible random netlist for the spec: uniformly
// placed two-pin nets with bounded half-perimeter, globally unique pin
// cells, and a few macro-like blockages.
func Generate(s Spec) *netlist.Netlist {
	rng := rand.New(rand.NewSource(s.Seed))
	nl := &netlist.Netlist{
		Name:   s.Name,
		W:      s.Tracks,
		H:      s.Tracks,
		Layers: s.Layers,
	}

	blocked := make(map[geom.Pt]bool)
	var shadows []geom.Rect
	place := func(l int, r geom.Rect) {
		nl.Blockages = append(nl.Blockages, netlist.Blockage{L: l, Rect: r})
		if l == 0 {
			for yy := r.Y0; yy < r.Y1; yy++ {
				for xx := r.X0; xx < r.X1; xx++ {
					blocked[geom.Pt{X: xx, Y: yy}] = true
				}
			}
		}
		shadows = append(shadows, r)
	}
	addBlockage := func(w, h int) {
		x := rng.Intn(s.Tracks - w)
		y := rng.Intn(s.Tracks - h)
		place(rng.Intn(s.Layers), geom.Rect{X0: x, Y0: y, X1: x + w, Y1: y + h})
	}
	// Macros keep a channel of at least Tracks/8 between each other and the
	// die edge. Narrow gaps between macro walls saturate after a handful of
	// committed nets and strand later long nets with no ripup small enough
	// to help; wide channels keep the huge family's routability near 100%,
	// which is what makes it a fair dense-vs-corridor perf benchmark.
	macroOK := func(r geom.Rect) bool {
		gap := s.Tracks / 8
		if r.X0 < gap || r.Y0 < gap || r.X1 > s.Tracks-gap || r.Y1 > s.Tracks-gap {
			return false
		}
		for _, o := range shadows {
			if r.X0 < o.X1+gap && o.X0 < r.X1+gap && r.Y0 < o.Y1+gap && o.Y0 < r.Y1+gap {
				return false
			}
		}
		return true
	}
	// Hard macros block every routing layer (RAM/IP blocks own their full
	// stack), so detours around them are real detours, not layer hops.
	addMacro := func(w, h int) {
		var r geom.Rect
		for try := 0; ; try++ {
			x := rng.Intn(s.Tracks - w)
			y := rng.Intn(s.Tracks - h)
			r = geom.Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
			if macroOK(r) || try == 63 {
				break
			}
		}
		for l := 0; l < s.Layers; l++ {
			place(l, r)
		}
	}
	// The huge family keeps pins out of every blockage's projection on any
	// layer: a pin under a macro shadow may be reachable only through its
	// own layer and the surrounding pin/blockage clutter then strands it.
	// Near-full routability is what makes the family a fair perf benchmark.
	// Gated on MacroBlockages so pre-existing specs keep their exact pin
	// draws (see the determinism contract in cmd/benchgen).
	shadowed := func(x, y int) bool {
		if s.MacroBlockages == 0 {
			return false
		}
		for _, r := range shadows {
			if x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1 {
				return true
			}
		}
		return false
	}
	// Macro slabs: elongated (RAM-like), random orientation. The slab shape
	// is what makes dense search expensive on the huge family — a straight
	// pin-to-pin line hitting a slab mid-face floods the A* frontier along
	// the whole face before the detour pays off.
	for i := 0; i < s.MacroBlockages; i++ {
		long := s.Tracks/4 + rng.Intn(s.Tracks/4+1)
		short := s.Tracks/24 + rng.Intn(s.Tracks/24+1)
		if rng.Intn(2) == 0 {
			addMacro(long, short)
		} else {
			addMacro(short, long)
		}
	}
	for i := 0; i < s.Blockages; i++ {
		addBlockage(2+rng.Intn(s.Tracks/20+1), 2+rng.Intn(s.Tracks/20+1))
	}

	used := make(map[geom.Pt]bool)
	free := func(x, y int) bool {
		if x < 0 || x >= s.Tracks || y < 0 || y >= s.Tracks {
			return false
		}
		p := geom.Pt{X: x, Y: y}
		return !used[p] && !blocked[p] && !shadowed(x, y)
	}
	take := func(x, y int) grid.Cell {
		used[geom.Pt{X: x, Y: y}] = true
		return grid.Cell{X: x, Y: y, L: 0}
	}

	// Pin candidates cluster within a small neighborhood of the primary
	// location, mimicking multiple legal pin access points.
	makePin := func(x, y int) (netlist.Pin, bool) {
		if !free(x, y) {
			return netlist.Pin{}, false
		}
		pin := netlist.Pin{Candidates: []grid.Cell{take(x, y)}}
		for len(pin.Candidates) < s.PinCandidates {
			dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
			nx, ny := x+dx, y+dy
			if !free(nx, ny) {
				// Dense corners may not fit all candidates; accept fewer
				// after a bounded number of tries.
				if rng.Intn(8) == 0 {
					break
				}
				continue
			}
			pin.Candidates = append(pin.Candidates, take(nx, ny))
		}
		return pin, true
	}

	for len(nl.Nets) < s.Nets {
		ax, ay := rng.Intn(s.Tracks), rng.Intn(s.Tracks)
		// Half-perimeter between 2 and ~2*AvgHPWL, uniformly.
		hp := 2 + rng.Intn(2*s.AvgHPWL)
		dx := rng.Intn(hp + 1)
		dy := hp - dx
		if rng.Intn(2) == 0 {
			dx = -dx
		}
		if rng.Intn(2) == 0 {
			dy = -dy
		}
		bx, by := ax+dx, ay+dy
		if !free(ax, ay) || !free(bx, by) || (ax == bx && ay == by) {
			continue
		}
		a, _ := makePin(ax, ay)
		b, ok := makePin(bx, by)
		if !ok {
			continue
		}
		nl.Nets = append(nl.Nets, netlist.Net{
			ID:   len(nl.Nets),
			Name: fmt.Sprintf("n%d", len(nl.Nets)),
			A:    a,
			B:    b,
		})
	}
	return nl
}
