package bench

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/netlist"
)

func TestGenerateDeterministic(t *testing.T) {
	sp := Spec{Name: "g", Nets: 100, Tracks: 48, Layers: 3, Seed: 5, PinCandidates: 2, AvgHPWL: 5, Blockages: 3}
	a := Generate(sp)
	b := Generate(sp)
	if len(a.Nets) != len(b.Nets) || len(a.Nets) != 100 {
		t.Fatalf("net counts: %d vs %d", len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		if a.Nets[i].A.Candidates[0] != b.Nets[i].A.Candidates[0] {
			t.Fatal("generation not deterministic")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUniquePins(t *testing.T) {
	nl := Generate(Spec{Name: "g", Nets: 200, Tracks: 64, Layers: 3, Seed: 1, PinCandidates: 3, AvgHPWL: 6})
	seen := map[geom.Pt]bool{}
	for _, n := range nl.Nets {
		for _, pin := range []netlist.Pin{n.A, n.B} {
			for _, c := range pin.Candidates {
				pt := geom.Pt{X: c.X, Y: c.Y}
				if seen[pt] {
					t.Fatalf("pin cell %v reused", pt)
				}
				seen[pt] = true
			}
		}
	}
}

func TestPaperSpecsShape(t *testing.T) {
	fixed := PaperSpecs(true)
	multi := PaperSpecs(false)
	if len(fixed) != 5 || len(multi) != 5 {
		t.Fatal("want 5 specs per family")
	}
	if fixed[0].Nets != 1500 || fixed[4].Nets != 28000 {
		t.Fatalf("net counts: %+v", fixed)
	}
	if fixed[0].PinCandidates != 1 || multi[0].PinCandidates != 3 {
		t.Fatal("candidate counts wrong")
	}
	if multi[0].Name != "Test6" || fixed[0].Name != "Test1" {
		t.Fatal("names wrong")
	}
	if got := fixed[4].SizeUM(); got != 36 {
		t.Fatalf("Test5 die = %v um, want 36", got)
	}
}

// TestHugeSpecsGenerate pins the shape of the corridor-routing family and
// the macro-placement invariants Generate promises for it: full-stack
// slabs with a Tracks/8 channel between macros and the die edge, and no
// pin under any blockage's projection on any layer.
func TestHugeSpecsGenerate(t *testing.T) {
	specs := HugeSpecs()
	if len(specs) != 3 {
		t.Fatalf("want 3 huge specs, got %d", len(specs))
	}
	for _, sp := range specs {
		if sp.MacroBlockages == 0 || sp.Layers != 3 || sp.PinCandidates != 1 {
			t.Fatalf("%s: unexpected profile %+v", sp.Name, sp)
		}
		nl := Generate(sp)
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if len(nl.Nets) != sp.Nets || nl.W != sp.Tracks {
			t.Fatalf("%s: generated %d nets on %d tracks", sp.Name, len(nl.Nets), nl.W)
		}
		// Full-stack macros: every layer-0 macro rect must appear on all
		// layers. Count rects per layer; macros contribute equally.
		perLayer := make([]int, sp.Layers)
		var rects []geom.Rect
		for _, b := range nl.Blockages {
			perLayer[b.L]++
			rects = append(rects, b.Rect)
		}
		if perLayer[1] < sp.MacroBlockages || perLayer[2] < sp.MacroBlockages {
			t.Fatalf("%s: macros are not full-stack: per-layer rects %v", sp.Name, perLayer)
		}
		// No pin inside any blockage's XY projection.
		for _, n := range nl.Nets {
			for _, pin := range []netlist.Pin{n.A, n.B} {
				for _, c := range pin.Candidates {
					for _, r := range rects {
						if c.X >= r.X0 && c.X < r.X1 && c.Y >= r.Y0 && c.Y < r.Y1 {
							t.Fatalf("%s: pin %v under blockage shadow %v", sp.Name, c, r)
						}
					}
				}
			}
		}
		// Byte-level determinism: the huge family must be reproducible.
		if b := Generate(sp); len(b.Blockages) != len(nl.Blockages) || b.Blockages[0] != nl.Blockages[0] {
			t.Fatalf("%s: generation not deterministic", sp.Name)
		}
	}
}
