package bench

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/netlist"
)

func TestGenerateDeterministic(t *testing.T) {
	sp := Spec{Name: "g", Nets: 100, Tracks: 48, Layers: 3, Seed: 5, PinCandidates: 2, AvgHPWL: 5, Blockages: 3}
	a := Generate(sp)
	b := Generate(sp)
	if len(a.Nets) != len(b.Nets) || len(a.Nets) != 100 {
		t.Fatalf("net counts: %d vs %d", len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		if a.Nets[i].A.Candidates[0] != b.Nets[i].A.Candidates[0] {
			t.Fatal("generation not deterministic")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUniquePins(t *testing.T) {
	nl := Generate(Spec{Name: "g", Nets: 200, Tracks: 64, Layers: 3, Seed: 1, PinCandidates: 3, AvgHPWL: 6})
	seen := map[geom.Pt]bool{}
	for _, n := range nl.Nets {
		for _, pin := range []netlist.Pin{n.A, n.B} {
			for _, c := range pin.Candidates {
				pt := geom.Pt{X: c.X, Y: c.Y}
				if seen[pt] {
					t.Fatalf("pin cell %v reused", pt)
				}
				seen[pt] = true
			}
		}
	}
}

func TestPaperSpecsShape(t *testing.T) {
	fixed := PaperSpecs(true)
	multi := PaperSpecs(false)
	if len(fixed) != 5 || len(multi) != 5 {
		t.Fatal("want 5 specs per family")
	}
	if fixed[0].Nets != 1500 || fixed[4].Nets != 28000 {
		t.Fatalf("net counts: %+v", fixed)
	}
	if fixed[0].PinCandidates != 1 || multi[0].PinCandidates != 3 {
		t.Fatal("candidate counts wrong")
	}
	if multi[0].Name != "Test6" || fixed[0].Name != "Test1" {
		t.Fatal("names wrong")
	}
	if got := fixed[4].SizeUM(); got != 36 {
		t.Fatalf("Test5 die = %v um, want 36", got)
	}
}
