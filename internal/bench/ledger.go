// Ledger is the continuous benchmark ledger: a machine-readable
// BENCH_<rev>.json capturing what each experiment cell did (deterministic
// work metrics) and what it cost (wall-clock and allocation measurements),
// so perf claims are diffable across revisions (cmd/benchdiff) instead of
// hand-pasted into EXPERIMENTS.md.
//
// The schema separates three trust levels per cell, and consumers must not
// mix them:
//
//   - "det" is byte-identical across runs, machines, -jobs and
//     -net-workers for a fixed spec: result metrics, counters, gauges,
//     histograms and the per-net attribution top list. The determinism
//     tests compare ledgers on this section alone (DeterministicBytes).
//   - "sched" is deterministic only for a fixed NetWorkers configuration
//     (empty on serial runs, identical for every NetWorkers >= 2): the
//     sched.* counter and histogram family, plus the ripup.* episode
//     speculation family, which likewise engages only with spare workers.
//   - "timing" is wall-clock and allocation measurement — never
//     reproducible, compared only with noise thresholds (cmd/benchdiff).
//
// Top-level "env" records the run environment (Go version, CPU count,
// jobs) and is likewise nondeterministic.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"sadproute/internal/obs"
)

// LedgerSchema versions the BENCH_*.json format; benchdiff refuses to
// compare ledgers of different schemas.
const LedgerSchema = 1

// Ledger accumulates experiment rows and serializes them as BENCH_<rev>.json.
type Ledger struct {
	Schema int          `json:"schema"`
	Rev    string       `json:"rev"`
	Cells  []LedgerCell `json:"cells"`
	Env    LedgerEnv    `json:"env"`

	start time.Time
}

// LedgerCell is one (experiment × benchmark × algorithm) row.
type LedgerCell struct {
	Exp    string       `json:"exp"`
	Bench  string       `json:"bench"`
	Algo   string       `json:"algo"`
	Det    LedgerDet    `json:"det"`
	Sched  LedgerSched  `json:"sched"`
	Timing LedgerTiming `json:"timing"`
}

// Key identifies the cell across ledgers (benchdiff matches on it).
func (c *LedgerCell) Key() string { return c.Exp + "/" + c.Bench + "/" + c.Algo }

// LedgerDet is the deterministic section: byte-identical across runs,
// machines, -jobs and -net-workers for a fixed spec and rules set.
type LedgerDet struct {
	Nets         int     `json:"nets"`
	NA           bool    `json:"na,omitempty"`
	Routability  float64 `json:"routability_pct"`
	OverlayNM    int     `json:"overlay_nm"`
	Conflicts    int     `json:"conflicts"`
	HardOverlays int     `json:"hard_overlays"`
	Violations   int     `json:"violations"`
	Wirelength   int     `json:"wirelength"`
	Vias         int     `json:"vias"`
	Ripups       int     `json:"ripups"`
	// Counters and Gauges hold the nonzero, non-sched metrics by name
	// (encoding/json emits map keys sorted, so the bytes are stable).
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Hists holds each non-empty, non-sched histogram's full bucket-count
	// array plus its inclusive upper bounds (the last bucket is overflow).
	Hists map[string]LedgerHist `json:"hists,omitempty"`
	// TopNets is the head of the per-net work attribution table, ranked by
	// expanded nodes descending (net id ascending on ties).
	TopNets []LedgerNet `json:"top_nets,omitempty"`
}

// LedgerSched is the configuration-dependent section: the sched.* family,
// empty on serial runs and identical for every NetWorkers >= 2.
type LedgerSched struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Hists    map[string]LedgerHist `json:"hists,omitempty"`
}

// LedgerHist is one serialized histogram.
type LedgerHist struct {
	Le     []int64 `json:"le"` // inclusive upper bounds of buckets 0..n-2
	Counts []int64 `json:"counts"`
}

// LedgerNet is one row of the serialized attribution table.
type LedgerNet struct {
	Net      int   `json:"net"`
	Attempts int64 `json:"attempts"`
	Searches int64 `json:"searches"`
	Expanded int64 `json:"expanded"`
	Ripups   int64 `json:"ripups"`
	Fails    int64 `json:"fails,omitempty"`
}

// LedgerTiming is the wall-clock section — measurement, never identity.
// Allocation deltas are process-wide (runtime.MemStats), so under a
// parallel harness they include concurrent cells' allocations; compare
// them only across equal -jobs settings and with generous thresholds.
type LedgerTiming struct {
	WallNS       int64            `json:"wall_ns"` // StageTotal of the cell
	CPUNS        int64            `json:"cpu_ns"`  // Metrics.CPU (routing only)
	StagesNS     map[string]int64 `json:"stages_ns,omitempty"`
	AllocBytes   int64            `json:"alloc_bytes,omitempty"`
	AllocObjects int64            `json:"alloc_objects,omitempty"`
}

// LedgerEnv records the run environment.
type LedgerEnv struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	Jobs   int    `json:"jobs"`
	// RunWallNS is the wall time from NewLedger to Finish — the whole
	// experiment sweep, including harness overhead between cells.
	RunWallNS int64 `json:"run_wall_ns"`
}

// topNetsLimit bounds the serialized attribution table per cell; the full
// table is available to tracetool via the trace, the ledger keeps the head
// that regression triage actually reads.
const topNetsLimit = 16

// NewLedger starts an empty ledger for one revision and stamps the
// environment.
func NewLedger(rev string, jobs int) *Ledger {
	return &Ledger{
		Schema: LedgerSchema,
		Rev:    rev,
		Env: LedgerEnv{
			Go:     runtime.Version(),
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(),
			Jobs:   jobs,
		},
		start: time.Now(), //lint:allow wallclock ledger run-duration stamp; timing section only, never in det
	}
}

// Add appends one experiment's rows to the ledger in row (canonical)
// order.
func (l *Ledger) Add(exp string, rows []Metrics) {
	for i := range rows {
		l.Cells = append(l.Cells, makeCell(exp, &rows[i]))
	}
}

// Finish stamps the total run wall time. Write calls it implicitly if the
// caller has not.
func (l *Ledger) Finish() {
	if l.Env.RunWallNS == 0 && !l.start.IsZero() {
		l.Env.RunWallNS = int64(time.Since(l.start)) //lint:allow wallclock ledger run-duration stamp; timing section only, never in det
	}
}

func makeCell(exp string, m *Metrics) LedgerCell {
	c := LedgerCell{
		Exp:   exp,
		Bench: m.Bench,
		Algo:  m.Algo,
		Det: LedgerDet{
			Nets:         m.Nets,
			NA:           m.NA,
			Routability:  m.RoutabilityPct,
			OverlayNM:    m.OverlayNM,
			Conflicts:    m.Conflicts,
			HardOverlays: m.HardOverlays,
			Violations:   m.Violations,
			Wirelength:   m.Wirelength,
			Vias:         m.Vias,
			Ripups:       m.Ripups,
		},
		Timing: LedgerTiming{
			WallNS:       m.Obs.StageNS[obs.StageTotal],
			CPUNS:        int64(m.CPU),
			AllocBytes:   m.AllocBytes,
			AllocObjects: m.AllocObjects,
		},
	}
	m.Obs.EachCounter(func(name string, v int64) {
		if v == 0 {
			return
		}
		if isSchedMetric(name) {
			if c.Sched.Counters == nil {
				c.Sched.Counters = map[string]int64{}
			}
			c.Sched.Counters[name] = v
			return
		}
		if c.Det.Counters == nil {
			c.Det.Counters = map[string]int64{}
		}
		c.Det.Counters[name] = v
	})
	for g := obs.GaugeID(0); int(g) < len(m.Obs.Gauges); g++ {
		if v := m.Obs.Gauges[g]; v != 0 {
			if c.Det.Gauges == nil {
				c.Det.Gauges = map[string]int64{}
			}
			c.Det.Gauges[g.String()] = v
		}
	}
	m.Obs.EachHist(func(id obs.HistID, name string, counts [obs.HistBuckets]int64) {
		empty := true
		for _, n := range counts {
			if n != 0 {
				empty = false
				break
			}
		}
		if empty {
			return
		}
		bounds := id.Bounds()
		h := LedgerHist{Le: append([]int64(nil), bounds[:]...), Counts: append([]int64(nil), counts[:]...)}
		if isSchedMetric(name) {
			if c.Sched.Hists == nil {
				c.Sched.Hists = map[string]LedgerHist{}
			}
			c.Sched.Hists[name] = h
			return
		}
		if c.Det.Hists == nil {
			c.Det.Hists = map[string]LedgerHist{}
		}
		c.Det.Hists[name] = h
	})
	m.Obs.EachStage(func(name string, d time.Duration) {
		if d == 0 {
			return
		}
		if c.Timing.StagesNS == nil {
			c.Timing.StagesNS = map[string]int64{}
		}
		c.Timing.StagesNS[name] = int64(d)
	})
	c.Det.TopNets = topNets(m.NetStats, topNetsLimit)
	return c
}

// isSchedMetric reports whether a metric belongs to an execution-strategy
// family (see package comment): sched.* varies with NetWorkers, ripup.*
// with Options.RipupSpec, sparse.* with Options.SparseSearch. All describe
// how the result was computed, not what was computed, so the det section
// excludes them.
func isSchedMetric(name string) bool {
	return (len(name) >= 6 && name[:6] == "sched.") ||
		(len(name) >= 6 && name[:6] == "ripup.") ||
		(len(name) >= 7 && name[:7] == "sparse.")
}

// topNets ranks the attribution table by expanded nodes descending, net id
// ascending on ties, and keeps the head.
func topNets(stats []obs.NetStat, limit int) []LedgerNet {
	idx := make([]int, len(stats))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := &stats[idx[a]], &stats[idx[b]]
		if sa.Expanded != sb.Expanded {
			return sa.Expanded > sb.Expanded
		}
		return sa.Net < sb.Net
	})
	if len(idx) > limit {
		idx = idx[:limit]
	}
	out := make([]LedgerNet, 0, len(idx))
	for _, i := range idx {
		st := &stats[i]
		out = append(out, LedgerNet{
			Net:      st.Net,
			Attempts: st.Attempts,
			Searches: st.Searches,
			Expanded: st.Expanded,
			Ripups:   st.RipupTotal(),
			Fails:    st.Fails,
		})
	}
	return out
}

// Write serializes the ledger as indented JSON. encoding/json sorts map
// keys, so for fixed content the bytes are stable.
func (l *Ledger) Write(w io.Writer) error {
	l.Finish()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// WriteFile writes the ledger to path, surfacing close errors (a full disk
// at close must not produce a silently truncated baseline).
func (l *Ledger) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLedger parses a BENCH_*.json file.
func ReadLedger(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if l.Schema != LedgerSchema {
		return nil, fmt.Errorf("%s: ledger schema %d, want %d", path, l.Schema, LedgerSchema)
	}
	return &l, nil
}

// DeterministicBytes serializes only the invariant identity of the ledger:
// rev, and each cell's key plus "det" section. Two runs of the same
// revision and specs must produce identical bytes at any -jobs or
// -net-workers — the determinism tests enforce exactly this.
func (l *Ledger) DeterministicBytes() ([]byte, error) {
	type detCell struct {
		Key string    `json:"key"`
		Det LedgerDet `json:"det"`
	}
	out := struct {
		Schema int       `json:"schema"`
		Rev    string    `json:"rev"`
		Cells  []detCell `json:"cells"`
	}{Schema: l.Schema, Rev: l.Rev}
	for i := range l.Cells {
		out.Cells = append(out.Cells, detCell{Key: l.Cells[i].Key(), Det: l.Cells[i].Det})
	}
	return json.MarshalIndent(out, "", "  ")
}
