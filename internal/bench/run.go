package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"sadproute/internal/baseline"
	"sadproute/internal/decomp"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// Metrics is one row of the paper's evaluation tables.
type Metrics struct {
	Bench  string
	Algo   string
	Nets   int
	SizeUM float64
	// NA marks runs aborted on time budget (the paper's "NA" entries).
	NA bool

	RoutabilityPct float64
	OverlayUnits   float64 // total side-overlay length in w_line units
	OverlayNM      int
	Conflicts      int // #C: cut conflicts (cut process) or trim conflicts
	HardOverlays   int
	Violations     int
	CPU            time.Duration
	Wirelength     int
	Vias           int
	Ripups         int

	// Obs is the observability snapshot of the run. AlgoOurs populates it
	// fully: per-stage wall times plus the router/oracle counters. Baseline
	// algorithms are uninstrumented, so their rows carry only a minimal
	// snapshot — StageEvaluate (oracle measurement time) and StageTotal
	// (routing CPU plus evaluation); every counter and gauge stays zero.
	// See docs/trace-schema.md ("Metrics.Obs asymmetry") before comparing
	// counter columns across algorithms.
	Obs obs.Snapshot
	// NetStats is the per-net work attribution table of the run, in
	// canonical net order. AlgoOurs only; the ledger serializes its head.
	NetStats []obs.NetStat
	// AllocBytes/AllocObjects are process-wide runtime.MemStats deltas over
	// the run (AlgoOurs only) — measurement, not identity: under a parallel
	// harness they include concurrent cells' allocations. They feed the
	// ledger's timing section and are never compared byte for byte.
	AllocBytes   int64
	AllocObjects int64
}

// Algo identifies one router under comparison.
type Algo string

const (
	AlgoOurs           Algo = "ours"
	AlgoTrimGreedy     Algo = "gao-pan-trim"  // ref [11]
	AlgoCutNoMerge     Algo = "cut-no-merge"  // ref [16]
	AlgoTrimExhaustive Algo = "du-exhaustive" // ref [10]
)

// RunConfig tunes a harness run.
type RunConfig struct {
	Rules rules.Set
	// Budget aborts baseline runs that exceed it (0 = unlimited). It is
	// enforced by per-cell context cancellation: the exhaustive baseline
	// aborts mid-sweep as soon as the deadline passes.
	Budget time.Duration
	// Context, when non-nil, is the parent of the per-run budget context;
	// canceling it aborts budgeted baseline runs early. The parallel
	// Harness threads its group context through here so one failing cell
	// stops the sweeps of cells still pending. Nil means Background.
	Context context.Context
	// RouterOptions overrides the paper defaults for AlgoOurs (nil = defaults).
	RouterOptions *router.Options
}

// Run routes the netlist with the chosen algorithm and measures the
// result with the matching decomposition oracle. Metrics with NA=true are
// returned when the algorithm exceeded the budget; an unknown algorithm is
// an error.
func Run(nl *netlist.Netlist, algo Algo, cfg RunConfig) (Metrics, error) {
	m := Metrics{
		Bench:  nl.Name,
		Algo:   string(algo),
		Nets:   len(nl.Nets),
		SizeUM: float64(nl.W) * float64(cfg.Rules.Pitch()) / 1000,
	}
	switch algo {
	case AlgoOurs:
		opt := router.Defaults()
		if cfg.RouterOptions != nil {
			opt = *cfg.RouterOptions
		}
		rec := opt.Obs
		if rec == nil {
			rec = obs.New()
			opt.Obs = rec
		}
		var ms0 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		stopTotal := rec.Span(obs.StageTotal)
		res := router.Route(nl, cfg.Rules, opt)
		m.RoutabilityPct = res.Routability()
		m.CPU = res.CPU
		m.Wirelength = res.WirelengthCells
		m.Vias = res.Vias
		stopEval := rec.Span(obs.StageEvaluate)
		_, tot := res.DecomposeLayersR(rec)
		applyTotals(&m, tot)
		stopEval()
		stopTotal()
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		m.AllocBytes = int64(ms1.TotalAlloc - ms0.TotalAlloc)
		m.AllocObjects = int64(ms1.Mallocs - ms0.Mallocs)
		m.Obs = rec.Snapshot()
		m.NetStats = rec.NetStats()
		m.Ripups = int(m.Obs.Counter(obs.CtrRouteRipups))
	case AlgoTrimGreedy:
		out := baseline.TrimGreedy{}.Run(nl, cfg.Rules)
		fillBaseline(&m, out)
	case AlgoCutNoMerge:
		out := baseline.CutNoMerge{}.Run(nl, cfg.Rules)
		fillBaseline(&m, out)
	case AlgoTrimExhaustive:
		ctx := cfg.Context
		if ctx == nil {
			ctx = context.Background()
		}
		if cfg.Budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.Budget)
			defer cancel()
		}
		out := baseline.TrimExhaustive{}.RunCtx(ctx, nl, cfg.Rules)
		if out == nil {
			m.NA = true
			m.CPU = cfg.Budget
			return m, nil
		}
		fillBaseline(&m, out)
	default:
		return Metrics{}, fmt.Errorf("bench: unknown algorithm %q", string(algo))
	}
	return m, nil
}

func fillBaseline(m *Metrics, out *baseline.Out) {
	m.RoutabilityPct = out.Routability()
	m.CPU = out.CPU
	m.Wirelength = out.WirelengthCells
	m.Vias = out.Vias
	m.Ripups = out.Ripups
	// Baselines are uninstrumented; give their rows the minimal snapshot
	// documented on Metrics.Obs: evaluation wall time measured here, total
	// = routing CPU + evaluation. Counters stay zero.
	rec := obs.New()
	stopEval := rec.Span(obs.StageEvaluate)
	fill(m, out.Layouts, out.Trim)
	stopEval()
	m.Obs = rec.Snapshot()
	m.Obs.StageNS[obs.StageTotal] = int64(out.CPU) + m.Obs.StageNS[obs.StageEvaluate]
}

// fill measures the colored layouts with the matching oracle. For cut-
// process results #C counts cut conflicts; hard overlays are reported
// separately (for the no-merge baseline they are decomposition failures
// and are folded into #C, since that router has no cut-based escape).
func fill(m *Metrics, layouts []decomp.Layout, trim bool) {
	var tot decomp.Totals
	if trim {
		_, tot = decomp.DecomposeTrimLayers(layouts)
	} else {
		_, tot = decomp.DecomposeLayers(layouts)
	}
	applyTotals(m, tot)
}

// applyTotals copies the oracle aggregates into the table row.
func applyTotals(m *Metrics, tot decomp.Totals) {
	m.OverlayUnits = tot.SideOverlayUnits
	m.OverlayNM = tot.SideOverlayNM
	m.Conflicts = tot.Conflicts
	m.HardOverlays = tot.HardOverlays
	m.Violations = tot.Violations
}
