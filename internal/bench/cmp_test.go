package bench

import (
	"testing"
	"time"

	"sadproute/internal/rules"
)

// TestCompareSmall runs our router and two baselines on one small instance
// and checks the paper's qualitative ordering: ours is conflict-free with
// the smallest overlay.
func TestCompareSmall(t *testing.T) {
	cfg := RunConfig{Rules: rules.Node10nm(), Budget: 2 * time.Minute}
	sp := Spec{Name: "cmp", Nets: 200, Tracks: 64, Layers: 3, Seed: 5, PinCandidates: 1, AvgHPWL: 6, Blockages: 2}
	ours := Run(Generate(sp), AlgoOurs, cfg)
	gp := Run(Generate(sp), AlgoTrimGreedy, cfg)
	nm := Run(Generate(sp), AlgoCutNoMerge, cfg)
	for _, m := range []Metrics{ours, gp, nm} {
		t.Logf("%-14s rout=%.1f%% overlay=%.1fu conf=%d hard=%d viol=%d cpu=%v",
			m.Algo, m.RoutabilityPct, m.OverlayUnits, m.Conflicts, m.HardOverlays, m.Violations, m.CPU)
	}
	if ours.Conflicts+ours.HardOverlays != 0 {
		t.Errorf("ours must be conflict-free")
	}
	if !(ours.OverlayUnits < gp.OverlayUnits && ours.OverlayUnits < nm.OverlayUnits) {
		t.Errorf("ours must have the smallest overlay")
	}
}
