package bench

import (
	"testing"
	"time"

	"sadproute/internal/rules"
)

// TestCompareSmall runs our router and two baselines on one small instance
// and checks the paper's qualitative ordering: ours is conflict-free with
// the smallest overlay.
func TestCompareSmall(t *testing.T) {
	cfg := RunConfig{Rules: rules.Node10nm(), Budget: 2 * time.Minute}
	sp := Spec{Name: "cmp", Nets: 200, Tracks: 64, Layers: 3, Seed: 5, PinCandidates: 1, AvgHPWL: 6, Blockages: 2}
	mustRun := func(algo Algo) Metrics {
		m, err := Run(Generate(sp), algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ours := mustRun(AlgoOurs)
	gp := mustRun(AlgoTrimGreedy)
	nm := mustRun(AlgoCutNoMerge)
	for _, m := range []Metrics{ours, gp, nm} {
		t.Logf("%-14s rout=%.1f%% overlay=%.1fu conf=%d hard=%d viol=%d cpu=%v",
			m.Algo, m.RoutabilityPct, m.OverlayUnits, m.Conflicts, m.HardOverlays, m.Violations, m.CPU)
	}
	if ours.Conflicts+ours.HardOverlays != 0 {
		t.Errorf("ours must be conflict-free")
	}
	if !(ours.OverlayUnits < gp.OverlayUnits && ours.OverlayUnits < nm.OverlayUnits) {
		t.Errorf("ours must have the smallest overlay")
	}
}

// TestRunUnknownAlgo pins the error contract: library code must not panic.
func TestRunUnknownAlgo(t *testing.T) {
	sp := Spec{Name: "bad-algo", Nets: 2, Tracks: 12, Layers: 2, Seed: 1, PinCandidates: 1, AvgHPWL: 4}
	if _, err := Run(Generate(sp), Algo("no-such-algo"), RunConfig{Rules: rules.Node10nm()}); err == nil {
		t.Fatal("Run must return an error for an unknown algorithm")
	}
}
