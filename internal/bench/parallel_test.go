package bench

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sadproute/internal/obs"
	"sadproute/internal/rules"
)

// harnessCells is a small (2 benchmarks × 3 algorithms) matrix exercising
// our router and both quick baselines. The exhaustive baseline is covered
// separately (TestHarnessBudgetNA) because its cost is quadratic in pins.
func harnessCells() []Cell {
	specs := []Spec{
		{Name: "parA", Nets: 60, Tracks: 32, Layers: 3, Seed: 11, PinCandidates: 1, AvgHPWL: 5, Blockages: 1},
		{Name: "parB", Nets: 80, Tracks: 40, Layers: 3, Seed: 12, PinCandidates: 1, AvgHPWL: 5, Blockages: 1},
	}
	algos := []Algo{AlgoOurs, AlgoTrimGreedy, AlgoCutNoMerge}
	var cells []Cell
	for _, sp := range specs {
		for _, a := range algos {
			cells = append(cells, Cell{Spec: sp, Algo: a})
		}
	}
	return cells
}

// stripWallClock zeroes the only nondeterministic Metrics fields — CPU,
// the stage wall-time accumulators, and the process-wide allocation deltas
// (which include concurrent cells' allocations under a parallel harness) —
// leaving counters, gauges, histograms, per-net attribution and all
// routing/oracle metrics intact for exact comparison.
func stripWallClock(rows []Metrics) []Metrics {
	out := make([]Metrics, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].CPU = 0
		out[i].AllocBytes = 0
		out[i].AllocObjects = 0
		for j := range out[i].Obs.StageNS {
			out[i].Obs.StageNS[j] = 0
		}
	}
	return out
}

// memSink is an in-memory trace WriteCloser keyed by cell, safe for
// concurrent opens from harness workers.
type memSink struct {
	mu   sync.Mutex
	bufs map[string]*bytes.Buffer
}

type memFile struct{ *bytes.Buffer }

func (memFile) Close() error { return nil }

func (m *memSink) open(c Cell) (*memFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bufs == nil {
		m.bufs = map[string]*bytes.Buffer{}
	}
	b := &bytes.Buffer{}
	m.bufs[c.String()] = b
	return &memFile{b}, nil
}

// TestHarnessParallelMatchesSerial is the tentpole's contract: -jobs 4 and
// -jobs 1 produce identical Metrics slices (modulo wall-clock fields),
// identical per-cell traces byte for byte, and identical aggregate
// counters.
func TestHarnessParallelMatchesSerial(t *testing.T) {
	cells := harnessCells()
	run := func(jobs int) ([]Metrics, map[string]*bytes.Buffer) {
		sink := &memSink{}
		h := Harness{
			Jobs:        jobs,
			Cfg:         RunConfig{Rules: rules.Node10nm()},
			TraceWriter: func(c Cell) (io.WriteCloser, error) { return sink.open(c) },
		}
		rows, err := h.Run(cells)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return rows, sink.bufs
	}

	serial, serialTr := run(1)
	parallel, parallelTr := run(4)

	if len(serial) != len(cells) || len(parallel) != len(cells) {
		t.Fatalf("row count: serial %d, parallel %d, want %d", len(serial), len(parallel), len(cells))
	}
	s, p := stripWallClock(serial), stripWallClock(parallel)
	for i := range s {
		if !reflect.DeepEqual(s[i], p[i]) {
			t.Errorf("cell %s: serial and parallel Metrics differ:\nserial:   %+v\nparallel: %+v",
				cells[i], s[i], p[i])
		}
	}

	// Canonical order: row i must describe cell i.
	for i, c := range cells {
		if serial[i].Bench != c.Spec.Name || serial[i].Algo != string(c.Algo) {
			t.Errorf("row %d out of canonical order: got %s/%s, want %s", i, serial[i].Bench, serial[i].Algo, c)
		}
	}

	// Per-cell traces are byte-identical; only ours-cells have traces.
	if len(serialTr) != 2 || len(parallelTr) != 2 {
		t.Fatalf("trace count: serial %d, parallel %d, want 2 (one per ours-cell)", len(serialTr), len(parallelTr))
	}
	for name, sb := range serialTr {
		pb, ok := parallelTr[name]
		if !ok {
			t.Fatalf("parallel run missing trace %s", name)
		}
		if sb.Len() == 0 {
			t.Fatalf("trace %s is empty", name)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Errorf("trace %s differs between serial and parallel runs", name)
		}
	}

	// The canonical-order aggregate merges identically.
	sa, pa := AggregateObs(serial), AggregateObs(parallel)
	if sa.CountersString() != pa.CountersString() {
		t.Errorf("aggregate snapshots differ:\n--- serial\n%s--- parallel\n%s",
			sa.CountersString(), pa.CountersString())
	}
	if sa.Counter(obs.CtrRouteAttempts) == 0 {
		t.Error("aggregate lost the ours-cells' counters")
	}
}

// failingCloser is a trace sink whose Close reports a deferred write
// failure, the way a buffered file on a full disk does.
type failingCloser struct{ io.Writer }

func (failingCloser) Close() error { return errors.New("disk full at close") }

// TestHarnessTraceCloseError proves the harness surfaces trace-sink close
// errors instead of publishing a silently truncated trace.
func TestHarnessTraceCloseError(t *testing.T) {
	sp := Spec{Name: "closeerr", Nets: 4, Tracks: 12, Layers: 2, Seed: 3, PinCandidates: 1, AvgHPWL: 4}
	h := Harness{
		Jobs:        1,
		Cfg:         RunConfig{Rules: rules.Node10nm()},
		TraceWriter: func(Cell) (io.WriteCloser, error) { return failingCloser{io.Discard}, nil },
	}
	_, err := h.Run([]Cell{{Spec: sp, Algo: AlgoOurs}})
	if err == nil || !strings.Contains(err.Error(), "disk full at close") {
		t.Fatalf("close error swallowed: %v", err)
	}
	if !strings.Contains(err.Error(), "closing trace") {
		t.Fatalf("error lacks close context: %v", err)
	}
}

// TestHarnessErrorDeterministic pins the failure contract: the harness
// reports the lowest-indexed failing cell regardless of scheduling.
func TestHarnessErrorDeterministic(t *testing.T) {
	sp := Spec{Name: "err", Nets: 4, Tracks: 12, Layers: 2, Seed: 3, PinCandidates: 1, AvgHPWL: 4}
	cells := []Cell{
		{Spec: sp, Algo: AlgoOurs},
		{Spec: sp, Algo: Algo("bogus-a")},
		{Spec: sp, Algo: Algo("bogus-b")},
	}
	for _, jobs := range []int{1, 3} {
		h := Harness{Jobs: jobs, Cfg: RunConfig{Rules: rules.Node10nm()}}
		_, err := h.Run(cells)
		if err == nil {
			t.Fatalf("jobs=%d: want error for unknown algorithm", jobs)
		}
		if !strings.Contains(err.Error(), "bogus-a") {
			t.Errorf("jobs=%d: error must name the first failing cell, got %v", jobs, err)
		}
	}
}

// TestHarnessBudgetNA proves the context-based budget path: an absurdly
// small budget turns the exhaustive baseline's row into the paper's NA.
func TestHarnessBudgetNA(t *testing.T) {
	sp := Spec{Name: "na", Nets: 40, Tracks: 28, Layers: 3, Seed: 9, PinCandidates: 3, AvgHPWL: 5}
	h := Harness{Jobs: 2, Cfg: RunConfig{Rules: rules.Node10nm(), Budget: time.Nanosecond}}
	rows, err := h.Run([]Cell{{Spec: sp, Algo: AlgoTrimExhaustive}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].NA {
		t.Errorf("want NA under a 1 ns budget, got %+v", rows[0])
	}
}
