package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"sadproute/internal/obs"
	"sadproute/internal/router"
)

// Cell is one (benchmark × algorithm) unit of the evaluation matrix —
// the independent work item the parallel harness schedules. Reproducing
// one of the paper's tables is a slice of Cells.
type Cell struct {
	Spec Spec
	Algo Algo
}

// String names the cell for trace files and diagnostics.
func (c Cell) String() string { return fmt.Sprintf("%s-%s", c.Spec.Name, c.Algo) }

// Harness fans (benchmark × algorithm) cells out across a worker pool and
// merges the results in canonical order (the order of the input cells), so
// a parallel run is indistinguishable from a serial one: identical Metrics
// slices, identical rendered tables, identical per-cell traces — only
// wall-clock fields (Metrics.CPU, Snapshot.StageNS) differ, as they do
// between any two runs. Every cell gets a private obs.Recorder, so counters
// and JSONL trace events never interleave across workers.
//
// Cells are independent: each worker generates its own netlist from the
// cell's Spec (Generate is a pure function of the Spec) and routes it on
// its own grid, sharing only the pooled A* engine allocations
// (astar.Acquire) with cells it runs later itself.
type Harness struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	// Jobs == 1 reproduces the historical serial harness exactly.
	Jobs int
	// Cfg is the shared run configuration. A RouterOptions.Obs recorder set
	// here is ignored: sharing one recorder across workers would interleave
	// traces, so the harness installs a private Recorder per cell instead.
	Cfg RunConfig
	// TraceWriter, when non-nil, opens one JSONL trace sink per AlgoOurs
	// cell (baselines are uninstrumented and never call it). The harness
	// closes the writer when the cell finishes.
	TraceWriter func(c Cell) (io.WriteCloser, error)
}

// Run executes every cell and returns the metrics in input order. On
// failure it returns the error of the lowest-indexed failing cell —
// deterministic regardless of scheduling — and cancels the context handed
// to cells still pending (aborting exhaustive-baseline sweeps promptly).
func (h Harness) Run(cells []Cell) ([]Metrics, error) {
	jobs := h.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(cells) {
		jobs = len(cells)
	}
	results := make([]Metrics, len(cells))
	errs := make([]error, len(cells))

	parent := h.Cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	if jobs <= 1 {
		for i, c := range cells {
			results[i], errs[i] = h.runCell(ctx, c)
			if errs[i] != nil {
				return nil, fmt.Errorf("cell %s: %w", c, errs[i])
			}
		}
		return results, nil
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = h.runCell(ctx, cells[i])
				if errs[i] != nil {
					cancel() // stop handing out work; pending cells abort
				}
			}
		}()
	}
	for i := range cells {
		if ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell %s: %w", cells[i], err)
		}
	}
	return results, nil
}

// runCell generates and routes one cell with a private recorder (and trace
// sink, if configured). Both sink write errors (Recorder.TraceErr) and the
// trace writer's close error are surfaced: a buffered file writer may only
// discover a full disk at Close, and swallowing that would publish a
// silently truncated trace.
func (h Harness) runCell(ctx context.Context, c Cell) (m Metrics, err error) {
	cfg := h.Cfg
	cfg.Context = ctx
	var rec *obs.Recorder
	if c.Algo == AlgoOurs {
		opt := router.Defaults()
		if cfg.RouterOptions != nil {
			opt = *cfg.RouterOptions
		}
		rec = obs.New()
		if h.TraceWriter != nil {
			w, werr := h.TraceWriter(c)
			if werr != nil {
				return Metrics{}, werr
			}
			defer func() {
				if cerr := w.Close(); cerr != nil && err == nil {
					m, err = Metrics{}, fmt.Errorf("closing trace for %s: %w", c, cerr)
				}
			}()
			rec.SetTrace(w)
		}
		opt.Obs = rec
		cfg.RouterOptions = &opt
	}
	m, err = Run(Generate(c.Spec), c.Algo, cfg)
	if err != nil {
		return Metrics{}, err
	}
	if err := rec.TraceErr(); err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// AggregateObs folds the per-cell observability snapshots of rows, in row
// order, into one aggregate: counters and stage times sum, gauges max.
// Because the harness returns rows in canonical order, the aggregate of a
// parallel run equals the serial run's byte for byte (CountersString).
func AggregateObs(rows []Metrics) obs.Snapshot {
	var agg obs.Snapshot
	for i := range rows {
		agg.Accumulate(&rows[i].Obs)
	}
	return agg
}
