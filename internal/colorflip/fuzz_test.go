package colorflip

import (
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/ocg"
	"sadproute/internal/rules"
	"sadproute/internal/scenario"
)

// FuzzColorFlip checks the flipping DP (Theorem 4) against brute force:
// build an overlay constraint graph from fuzzed wire geometry, enumerate
// all 2^n color assignments, and require Optimize to hit the exact optimum
// of the spanning-tree objective it minimizes. Also checks determinism and
// that feasible results satisfy every hard edge when no odd cycle exists.
func FuzzColorFlip(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{7, 200, 13, 13, 14, 15, 80, 81, 82, 3, 9, 27, 81, 243, 729 % 256})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ds := rules.Node10nm()
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		n := 2 + next()%8 // 2..9 nets: brute force stays tiny
		wires := make([]geom.Rect, n)
		for i := range wires {
			horiz := next()%2 == 1
			fixed := next() % 12
			c0 := next() % 12
			c1 := c0 + 1 + next()%8
			if horiz {
				wires[i] = geom.Rect{X0: c0, Y0: fixed, X1: c1 + 1, Y1: fixed + 1}
			} else {
				wires[i] = geom.Rect{X0: fixed, Y0: c0, X1: fixed + 1, Y1: c1 + 1}
			}
		}
		g := ocg.New()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if prof, ok := scenario.Classify(wires[i], wires[j], ds); ok {
					g.AddScenario(i, j, prof)
				}
			}
		}
		nets := make([]int, n)
		for i := range nets {
			nets[i] = i
		}

		res := Optimize(g, nets)
		res2 := Optimize(g, nets)
		if res.Cost != res2.Cost || res.Feasible != res2.Feasible {
			t.Fatalf("Optimize is nondeterministic: %+v vs %+v", res, res2)
		}
		for k, v := range res.Colors {
			if res2.Colors[k] != v {
				t.Fatalf("Optimize colors nondeterministic at net %d", k)
			}
		}

		// Brute-force the exact objective the DP minimizes: the sum of
		// oriented assignment costs over the maximum spanning tree.
		tree := maxSpanningTree(nets, g.ComponentEdges(nets))
		treeCost := func(colors []decomp.Color) int {
			total := 0
			for _, e := range tree {
				total = addSat(total, assignCostRaw(e.Prof, colors[e.A], colors[e.B]))
			}
			return total
		}
		best := inf
		colors := make([]decomp.Color, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := range colors {
				colors[i] = decomp.Core
				if mask&(1<<i) != 0 {
					colors[i] = decomp.Second
				}
			}
			if c := treeCost(colors); c < best {
				best = c
			}
		}
		if res.Cost != best {
			t.Fatalf("DP cost %d != brute-force optimum %d (n=%d, %d tree edges)",
				res.Cost, best, n, len(tree))
		}
		if res.Feasible != (best < inf) {
			t.Fatalf("Feasible=%v but brute-force optimum is %d", res.Feasible, best)
		}

		// The DP's own assignment must achieve its reported cost.
		got := make([]decomp.Color, n)
		for i := range got {
			got[i] = res.Colors[i]
		}
		if c := treeCost(got); c != res.Cost {
			t.Fatalf("returned assignment costs %d, reported %d", c, res.Cost)
		}

		// With no odd cycle, a feasible assignment satisfies every hard
		// edge of the graph — tree or not (even hard cycles are implied).
		if g.OddCycles == 0 && res.Feasible {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					e := g.EdgeBetween(i, j)
					if e == nil {
						continue
					}
					switch ocg.Kind(e.Prof) {
					case ocg.HardDiff:
						if got[i] == got[j] {
							t.Fatalf("hard-diff edge (%d,%d) violated by %v", i, j, got)
						}
					case ocg.HardSame:
						if got[i] != got[j] {
							t.Fatalf("hard-same edge (%d,%d) violated by %v", i, j, got)
						}
					}
				}
			}
		}
	})
}
