// Package colorflip implements the paper's linear-time color flipping
// algorithm (Section III-C): extract a maximum spanning tree from each
// overlay-constraint-graph component (hard edges outweigh any nonhard
// total), split every vertex into a core and a second node to form the
// flipping graph, and run the dynamic program of equation (4) from the
// leaves to the root; backtracing yields the optimal color assignment of
// the tree in O(V+E) (Theorem 4).
//
// It also provides the O(1) pseudo-coloring step used right after a net is
// routed (line 11 of the paper's Fig. 19).
package colorflip

import (
	"sort"

	"sadproute/internal/decomp"
	"sadproute/internal/obs"
	"sadproute/internal/ocg"
	"sadproute/internal/scenario"
)

// inf is an effectively infinite cost for forbidden assignments.
const inf = int(1) << 40

// PseudoColor picks the color of a freshly routed net n that minimizes the
// overlay cost against its already-colored neighbors. Uncolored neighbors
// contribute their cheapest option. Ties prefer Second: an uncommitted
// pattern keeps more flexibility for later assistant-core sharing.
func PseudoColor(g *ocg.Graph, n int, colors map[int]decomp.Color) decomp.Color {
	return PseudoColorLocked(g, n, colors, nil)
}

// PseudoColorLocked is PseudoColor honoring per-net color locks (nets whose
// color is pinned by the cut-conflict check).
func PseudoColorLocked(g *ocg.Graph, n int, colors map[int]decomp.Color, locked map[int]decomp.Color) decomp.Color {
	if c, ok := locked[n]; ok && c != decomp.Unassigned {
		return c
	}
	costOf := func(c decomp.Color) int {
		total := 0
		for _, e := range g.Edges(n) {
			o := e.Other(n)
			oc, ok := colors[o]
			if ok && oc != decomp.Unassigned {
				total = addSat(total, assignCost2(e, n, c, oc))
				continue
			}
			// Neighbor not colored yet: assume its best response.
			best := inf
			for _, occ := range [2]decomp.Color{decomp.Core, decomp.Second} {
				if v := assignCost2(e, n, c, occ); v < best {
					best = v
				}
			}
			total = addSat(total, best)
		}
		return total
	}
	cc := costOf(decomp.Core)
	cs := costOf(decomp.Second)
	if cc < cs {
		return decomp.Core
	}
	return decomp.Second
}

// assignCost2 orients the edge so that net n plays the first role.
func assignCost2(e *ocg.Edge, n int, cn, co decomp.Color) int {
	if e.A == n {
		return assignCostRaw(e.Prof, cn, co)
	}
	return assignCostRaw(e.Prof, co, cn)
}

func assignCostRaw(p scenario.Profile, ca, cb decomp.Color) int {
	a := scenario.Of(ca, cb)
	if p.Forbidden[a] {
		return inf
	}
	return p.Cost[a]
}

// Result reports one flipping run.
type Result struct {
	Colors map[int]decomp.Color
	// Cost is the DP tree cost of the chosen assignment (inf if the tree
	// admits no feasible assignment).
	Cost int
	// Feasible is false when some hard constraint cannot be satisfied.
	Feasible bool
}

// Optimize computes the optimal color assignment of one OCG component
// containing the given nets, considering the component's maximum spanning
// tree (nonhard off-tree edges are ignored, as in the paper).
func Optimize(g *ocg.Graph, nets []int) Result {
	return OptimizeLocked(g, nets, nil)
}

// OptimizeLocked is Optimize honoring per-net color locks: a locked net
// takes infinite cost for the opposite color, so the DP routes flexibility
// around it.
func OptimizeLocked(g *ocg.Graph, nets []int, locked map[int]decomp.Color) Result {
	return OptimizeLockedR(g, nets, locked, nil)
}

// OptimizeLockedR is OptimizeLocked reporting to an observability recorder:
// DP runs, infeasible components, and the component-size high-water mark.
// A nil rec is the un-instrumented fast path.
func OptimizeLockedR(g *ocg.Graph, nets []int, locked map[int]decomp.Color, rec *obs.Recorder) Result {
	res := optimizeLocked(g, nets, locked)
	if rec != nil {
		rec.Inc(obs.CtrFlipRuns)
		rec.Max(obs.GaugeFlipComponentPeak, int64(len(nets)))
		if !res.Feasible {
			rec.Inc(obs.CtrFlipInfeasible)
		}
	}
	return res
}

func optimizeLocked(g *ocg.Graph, nets []int, locked map[int]decomp.Color) Result {
	vcost := func(n int, c decomp.Color) int {
		if lc, ok := locked[n]; ok && lc != decomp.Unassigned && lc != c {
			return inf
		}
		return 0
	}
	res := Result{Colors: make(map[int]decomp.Color, len(nets)), Feasible: true}
	if len(nets) == 0 {
		return res
	}
	edges := g.ComponentEdges(nets)
	tree := maxSpanningTree(nets, edges)

	idx := make(map[int]int, len(nets))
	for i, n := range nets {
		idx[n] = i
	}
	adjT := make([][]*ocg.Edge, len(nets))
	for _, e := range tree {
		adjT[idx[e.A]] = append(adjT[idx[e.A]], e)
		adjT[idx[e.B]] = append(adjT[idx[e.B]], e)
	}

	visited := make([]bool, len(nets))
	var costC, costS []int
	costC = make([]int, len(nets))
	costS = make([]int, len(nets))
	choiceC := make([][]decomp.Color, len(nets)) // chosen child colors if parent is Core
	choiceS := make([][]decomp.Color, len(nets))
	children := make([][]int, len(nets))

	total := 0
	for root := range nets {
		if visited[root] {
			continue
		}
		// Iterative post-order DFS over this tree component.
		order := make([]int, 0, 8)
		parentEdge := make(map[int]*ocg.Edge)
		stack := []int{root}
		visited[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			for _, e := range adjT[v] {
				o := idx[e.Other(nets[v])]
				if !visited[o] {
					visited[o] = true
					parentEdge[o] = e
					children[v] = append(children[v], o)
					stack = append(stack, o)
				}
			}
		}
		// Leaves-to-root accumulation (equation (4)).
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			cC, cS := vcost(nets[v], decomp.Core), vcost(nets[v], decomp.Second)
			chC := make([]decomp.Color, len(children[v]))
			chS := make([]decomp.Color, len(children[v]))
			for k, ch := range children[v] {
				e := parentEdge[ch]
				bC, colC := bestChild(e, nets[v], nets[ch], decomp.Core, costC[ch], costS[ch])
				bS, colS := bestChild(e, nets[v], nets[ch], decomp.Second, costC[ch], costS[ch])
				cC = addSat(cC, bC)
				cS = addSat(cS, bS)
				chC[k], chS[k] = colC, colS
			}
			costC[v], costS[v] = cC, cS
			choiceC[v], choiceS[v] = chC, chS
		}
		// Choose the root color and backtrace.
		rootColor := decomp.Second
		best := costS[root]
		if costC[root] < costS[root] {
			rootColor, best = decomp.Core, costC[root]
		}
		if best >= inf {
			res.Feasible = false
		}
		total = addSat(total, best)
		var assign func(v int, c decomp.Color)
		assign = func(v int, c decomp.Color) {
			res.Colors[nets[v]] = c
			ch := choiceS[v]
			if c == decomp.Core {
				ch = choiceC[v]
			}
			for k, child := range children[v] {
				assign(child, ch[k])
			}
		}
		assign(root, rootColor)
	}
	res.Cost = total
	return res
}

// bestChild returns the cheaper child option (cost and child color) given
// the parent's color on tree edge e.
func bestChild(e *ocg.Edge, parentNet, childNet int, pc decomp.Color, childCostC, childCostS int) (int, decomp.Color) {
	vc := addSat(childCostC, edgeCostOriented(e, parentNet, pc, decomp.Core))
	vs := addSat(childCostS, edgeCostOriented(e, parentNet, pc, decomp.Second))
	if vc <= vs {
		return vc, decomp.Core
	}
	return vs, decomp.Second
}

func edgeCostOriented(e *ocg.Edge, parentNet int, pc, cc decomp.Color) int {
	if e.A == parentNet {
		return assignCostRaw(e.Prof, pc, cc)
	}
	return assignCostRaw(e.Prof, cc, pc)
}

func addSat(a, b int) int {
	s := a + b
	if s > inf {
		return inf
	}
	return s
}

// maxSpanningTree selects a maximum-weight spanning forest: hard edges
// carry a weight larger than any nonhard total so they are always kept
// (their constraints must bind), nonhard edges weigh their maximum
// potential side-overlay length.
func maxSpanningTree(nets []int, edges []*ocg.Edge) []*ocg.Edge {
	const hardBoost = 1 << 30
	w := func(e *ocg.Edge) int {
		k := ocg.Kind(e.Prof)
		max := 0
		for _, c := range e.Prof.Cost {
			if c > max {
				max = c
			}
		}
		if k == ocg.HardSame || k == ocg.HardDiff || k == ocg.Contradiction {
			return hardBoost + max
		}
		return max
	}
	sorted := make([]*ocg.Edge, len(edges))
	copy(sorted, edges)
	sort.SliceStable(sorted, func(i, j int) bool { return w(sorted[i]) > w(sorted[j]) })

	parent := make(map[int]int, len(nets))
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	var tree []*ocg.Edge
	for _, e := range sorted {
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		tree = append(tree, e)
	}
	return tree
}
