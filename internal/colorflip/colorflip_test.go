package colorflip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sadproute/internal/decomp"
	"sadproute/internal/ocg"
	"sadproute/internal/scenario"
)

func softProfile(rng *rand.Rand) scenario.Profile {
	var p scenario.Profile
	p.Type = "rand"
	for a := scenario.CC; a <= scenario.SS; a++ {
		p.Cost[a] = rng.Intn(5) * 20
	}
	// Keep symmetric-feasible: never forbid everything.
	if rng.Intn(3) == 0 {
		p.Forbidden[scenario.CC], p.Forbidden[scenario.SS] = true, true
	} else if rng.Intn(3) == 0 {
		p.Forbidden[scenario.CS], p.Forbidden[scenario.SC] = true, true
	}
	return p
}

// treeCost evaluates an assignment over the given edges (inf-free check).
func treeCost(edges []*ocg.Edge, colors map[int]decomp.Color) (int, bool) {
	total := 0
	for _, e := range edges {
		a := scenario.Of(colors[e.A], colors[e.B])
		if e.Prof.Forbidden[a] {
			return 0, false
		}
		total += e.Prof.Cost[a]
	}
	return total, true
}

// TestQuickDPOptimalOnTrees is the Theorem 4 property test: on random TREE
// constraint graphs the flipping DP must find an assignment whose cost
// equals the brute-force optimum.
func TestQuickDPOptimalOnTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := ocg.New()
		// Random tree: connect node i to a random earlier node.
		for i := 1; i < n; i++ {
			parent := rng.Intn(i)
			g.AddScenario(parent, i, softProfile(rng))
		}
		nets := make([]int, n)
		for i := range nets {
			nets[i] = i
		}
		res := Optimize(g, nets)

		edges := g.ComponentEdges(g.Component(0))
		// Brute force optimum.
		best := -1
		for mask := 0; mask < 1<<n; mask++ {
			cols := map[int]decomp.Color{}
			for i := 0; i < n; i++ {
				cols[i] = decomp.Core
				if mask&(1<<i) != 0 {
					cols[i] = decomp.Second
				}
			}
			if c, ok := treeCost(edges, cols); ok && (best < 0 || c < best) {
				best = c
			}
		}
		got, ok := treeCost(edges, res.Colors)
		if best < 0 {
			return !res.Feasible || !ok
		}
		return ok && got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDPRespectsLocks: a locked net keeps its color and the rest adapts.
func TestDPRespectsLocks(t *testing.T) {
	g := ocg.New()
	var diff scenario.Profile
	diff.Forbidden[scenario.CC], diff.Forbidden[scenario.SS] = true, true
	g.AddScenario(0, 1, diff)
	g.AddScenario(1, 2, diff)
	locks := map[int]decomp.Color{0: decomp.Second}
	res := OptimizeLocked(g, []int{0, 1, 2}, locks)
	if !res.Feasible {
		t.Fatal("chain must be feasible")
	}
	if res.Colors[0] != decomp.Second || res.Colors[1] != decomp.Core || res.Colors[2] != decomp.Second {
		t.Fatalf("lock not honored: %v", res.Colors)
	}
}

// TestPseudoColorPicksCheapest: against a single core neighbor with a
// same-color preference, the new net must take core.
func TestPseudoColorPicksCheapest(t *testing.T) {
	g := ocg.New()
	var p scenario.Profile
	p.Cost[scenario.CS], p.Cost[scenario.SC] = 40, 40 // different colors cost
	g.AddScenario(0, 1, p)
	colors := map[int]decomp.Color{0: decomp.Core}
	if got := PseudoColor(g, 1, colors); got != decomp.Core {
		t.Fatalf("pseudo color = %v, want core", got)
	}
	colors[0] = decomp.Second
	if got := PseudoColor(g, 1, colors); got != decomp.Second {
		t.Fatalf("pseudo color = %v, want second", got)
	}
}

// TestHardEdgesAlwaysSatisfied: on random graphs (with cycles), every hard
// edge that the parity structure accepted must be satisfied by the DP
// result — off-tree hard edges close even cycles, which tree assignments
// satisfy automatically.
func TestHardEdgesAlwaysSatisfied(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		g := ocg.New()
		for i := 0; i < 2*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			var p scenario.Profile
			if rng.Intn(2) == 0 {
				p.Forbidden[scenario.CC], p.Forbidden[scenario.SS] = true, true
			} else {
				p.Forbidden[scenario.CS], p.Forbidden[scenario.SC] = true, true
			}
			if odd, inf := g.AddScenario(a, b, p); odd || inf {
				return true // infeasible graphs are out of scope here
			}
		}
		nets := g.Component(0)
		res := Optimize(g, nets)
		if !res.Feasible {
			return true
		}
		for _, e := range g.ComponentEdges(nets) {
			a := scenario.Of(res.Colors[e.A], res.Colors[e.B])
			if e.Prof.Forbidden[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
