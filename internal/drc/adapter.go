package drc

import "sadproute/internal/decomp"

// This file is the only bridge between the verifier and the oracle's
// types. It performs pure type conversion — no geometry processing — so
// the two implementations stay independent.

// FromDecomp converts one oracle layout plus the synthesized core-mask
// material into the verifier's cut-process input. The material list is the
// oracle's output (assistant cores and merge bridges); the verifier checks
// its legality rather than trusting it.
func FromDecomp(ly decomp.Layout, mats []decomp.Mat) Layer {
	out := Layer{Die: ly.Die}
	for _, p := range ly.Pats {
		out.Targets = append(out.Targets, Target{
			Net:        p.Net,
			Second:     p.Color == decomp.Second,
			Unassigned: p.Color == decomp.Unassigned,
			Rects:      p.Rects,
		})
	}
	for _, m := range mats {
		if m.Kind != decomp.MatCoreTarget {
			out.Extra = append(out.Extra, m.Rect)
		}
	}
	return out
}

// FromTrim converts one oracle layout into the verifier's trim-process
// input (the trim process synthesizes no extra material).
func FromTrim(ly decomp.Layout) Layer {
	out := FromDecomp(ly, nil)
	out.Trim = true
	return out
}
