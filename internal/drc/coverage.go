package drc

import "sort"

// span is a half-open integer interval [lo, hi). Spans with hi <= lo are
// empty. The verifier carries its own 1-D coverage arithmetic instead of
// reusing package interval: the whole point of this package is that a bug
// in the oracle's support code cannot cancel out in the checker.
type span struct{ lo, hi int }

func (s span) empty() bool { return s.hi <= s.lo }
func (s span) length() int {
	if s.empty() {
		return 0
	}
	return s.hi - s.lo
}

// clip restricts s to the window [lo, hi).
func (s span) clip(lo, hi int) span {
	if s.lo < lo {
		s.lo = lo
	}
	if s.hi > hi {
		s.hi = hi
	}
	return s
}

// coverage accumulates raw spans and normalizes on demand.
type coverage struct{ raw []span }

func (c *coverage) add(s span) {
	if !s.empty() {
		c.raw = append(c.raw, s)
	}
}

// union returns the sorted union of the accumulated spans with overlapping
// and touching spans coalesced into maximal runs.
func (c *coverage) union() []span {
	if len(c.raw) == 0 {
		return nil
	}
	sorted := make([]span, len(c.raw))
	copy(sorted, c.raw)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].lo != sorted[j].lo {
			return sorted[i].lo < sorted[j].lo
		}
		return sorted[i].hi < sorted[j].hi
	})
	out := sorted[:1]
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.lo <= last.hi {
			if s.hi > last.hi {
				last.hi = s.hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// subtractSpans returns a \ b. Both inputs must be normalized (sorted,
// disjoint, non-touching); the result is normalized.
func subtractSpans(a, b []span) []span {
	var out []span
	bi := 0
	for _, s := range a {
		cur := s
		for bi < len(b) && b[bi].hi <= cur.lo {
			bi++
		}
		for j := bi; j < len(b) && b[j].lo < cur.hi; j++ {
			if b[j].lo > cur.lo {
				out = append(out, span{cur.lo, b[j].lo})
			}
			if b[j].hi >= cur.hi {
				cur.hi = cur.lo // fully consumed
				break
			}
			cur.lo = b[j].hi
		}
		if !cur.empty() {
			out = append(out, cur)
		}
	}
	return out
}

// intersectSpans returns a ∩ b for normalized inputs; the result is
// normalized.
func intersectSpans(a, b []span) []span {
	var out []span
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].lo
		if b[j].lo > lo {
			lo = b[j].lo
		}
		hi := a[i].hi
		if b[j].hi < hi {
			hi = b[j].hi
		}
		if lo < hi {
			out = append(out, span{lo, hi})
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return out
}

func totalSpanLen(spans []span) int {
	t := 0
	for _, s := range spans {
		t += s.length()
	}
	return t
}
