package drc_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/drc"
	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

var ds = rules.Node10nm()

func die() geom.Rect { return geom.R(-400, -400, 1200, 1200) }

// vwire returns a vertical 20nm wire at track t spanning nm rows [y0,y1).
func vwire(t, y0, y1 int) geom.Rect { return geom.R(40*t, y0, 40*t+20, y1) }

func layer(targets ...drc.Target) drc.Layer {
	return drc.Layer{Die: die(), Targets: targets}
}

func TestLoneCoreWireIsClean(t *testing.T) {
	rep := drc.CheckLayer(layer(drc.Target{Net: 1, Rects: []geom.Rect{vwire(2, 0, 100)}}), ds)
	if !rep.Clean() || rep.SideOverlayNM != 0 || rep.TipOverlayNM != 0 {
		t.Fatalf("lone core wire not clean: %+v", rep)
	}
}

func TestBareSecondWireFullyCutDefined(t *testing.T) {
	// No assist material at all: every boundary section of the second wire
	// is defined by the cut mask.
	rep := drc.CheckLayer(layer(drc.Target{Net: 1, Second: true, Rects: []geom.Rect{vwire(2, 0, 100)}}), ds)
	if rep.SideOverlayNM != 200 {
		t.Errorf("side overlay = %d, want 200", rep.SideOverlayNM)
	}
	if rep.TipOverlayNM != 40 {
		t.Errorf("tip overlay = %d, want 40", rep.TipOverlayNM)
	}
	if rep.HardOverlays != 2 {
		t.Errorf("hard overlays = %d, want 2", rep.HardOverlays)
	}
	// The two full-length side cuts flank a w_line-wide wire: d_cut conflict.
	if rep.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", rep.Conflicts)
	}
}

func TestAssistedSecondWireIsClean(t *testing.T) {
	r := vwire(2, 0, 100)
	out0, out1 := ds.WSpacer, ds.WSpacer+ds.WCore
	ring := []geom.Rect{
		{X0: r.X0 - out1, Y0: r.Y0 - out1, X1: r.X0 - out0, Y1: r.Y1 + out1},
		{X0: r.X1 + out0, Y0: r.Y0 - out1, X1: r.X1 + out1, Y1: r.Y1 + out1},
		{X0: r.X0 - out1, Y0: r.Y0 - out1, X1: r.X1 + out1, Y1: r.Y0 - out0},
		{X0: r.X0 - out1, Y0: r.Y1 + out0, X1: r.X1 + out1, Y1: r.Y1 + out1},
	}
	ly := layer(drc.Target{Net: 1, Second: true, Rects: []geom.Rect{r}})
	ly.Extra = ring
	rep := drc.CheckLayer(ly, ds)
	if !rep.Clean() || rep.SideOverlayNM != 0 || rep.TipOverlayNM != 0 {
		t.Fatalf("assisted second wire not clean: %+v", rep)
	}
}

func TestMergeBridgeInducesHardOverlays(t *testing.T) {
	// Two core wires one pitch apart must merge; the bridge is cut-removed,
	// so both facing boundaries become cut-defined end to end.
	a, b := vwire(0, 0, 100), vwire(1, 0, 100)
	ly := layer(
		drc.Target{Net: 1, Rects: []geom.Rect{a}},
		drc.Target{Net: 2, Rects: []geom.Rect{b}},
	)
	ly.Extra = []geom.Rect{geom.R(a.X1, 0, b.X0, 100)}
	rep := drc.CheckLayer(ly, ds)
	if len(rep.RuleErrs) != 0 {
		t.Fatalf("unexpected rule errors: %v", rep.RuleErrs)
	}
	if rep.SideOverlayNM != 200 || rep.HardOverlays != 2 {
		t.Errorf("side=%d hard=%d, want 200/2", rep.SideOverlayNM, rep.HardOverlays)
	}
	// Without the bridge the same material is an unmerged-core rule error.
	ly.Extra = nil
	rep = drc.CheckLayer(ly, ds)
	if !hasErr(rep.RuleErrs, "unmerged core material") {
		t.Errorf("missing unmerged-core error: %v", rep.RuleErrs)
	}
}

func TestAbutmentViolation(t *testing.T) {
	rep := drc.CheckLayer(layer(
		drc.Target{Net: 1, Rects: []geom.Rect{geom.R(0, 0, 20, 100)}},
		drc.Target{Net: 2, Rects: []geom.Rect{geom.R(20, 0, 40, 100)}},
	), ds)
	if len(rep.Violations) == 0 {
		t.Fatal("abutting different-net targets produced no violation")
	}
	if got := fmt.Sprint(rep.BadNets); got != "[1 2]" {
		t.Errorf("BadNets = %s, want [1 2]", got)
	}
}

func TestSpacingWidthDieRuleErrs(t *testing.T) {
	ly := drc.Layer{
		Die: geom.R(0, 0, 200, 200),
		Targets: []drc.Target{
			{Net: 1, Rects: []geom.Rect{geom.R(0, 0, 20, 100)}},
			{Net: 2, Rects: []geom.Rect{geom.R(30, 0, 50, 100)}},  // 10nm gap
			{Net: 3, Rects: []geom.Rect{geom.R(100, 0, 110, 60)}}, // 10nm wide
			{Net: 4, Rects: []geom.Rect{geom.R(160, 0, 180, 300)}, Second: true},
		},
	}
	rep := drc.CheckLayer(ly, ds)
	for _, want := range []string{"w_spacer", "w_line", "outside die"} {
		if !hasErr(rep.RuleErrs, want) {
			t.Errorf("missing %q rule error in %v", want, rep.RuleErrs)
		}
	}
}

func TestUnassignedPattern(t *testing.T) {
	rep := drc.CheckLayer(layer(
		drc.Target{Net: 7, Unassigned: true, Rects: []geom.Rect{vwire(2, 0, 100)}},
	), ds)
	if len(rep.Violations) != 1 || len(rep.BadNets) != 1 || rep.BadNets[0] != 7 {
		t.Fatalf("unassigned pattern not flagged: %+v", rep)
	}
}

func TestMaterialOverlappingSecondTarget(t *testing.T) {
	ly := layer(drc.Target{Net: 1, Second: true, Rects: []geom.Rect{vwire(2, 0, 100)}})
	ly.Extra = []geom.Rect{geom.R(70, 0, 100, 100)} // overlaps the wire body
	rep := drc.CheckLayer(ly, ds)
	if !hasErr(rep.RuleErrs, "overlaps second target") {
		t.Errorf("missing overlap error: %v", rep.RuleErrs)
	}
}

func TestTrimConflicts(t *testing.T) {
	// Same-color wires one pitch apart (20nm gap < d_core) conflict under
	// the trim process; at two pitches (60nm) they are safe.
	ly := layer(
		drc.Target{Net: 1, Rects: []geom.Rect{vwire(0, 0, 100)}},
		drc.Target{Net: 2, Rects: []geom.Rect{vwire(1, 0, 100)}},
		drc.Target{Net: 3, Rects: []geom.Rect{vwire(3, 0, 100)}},
	)
	ly.Trim = true
	rep := drc.CheckLayer(ly, ds)
	if rep.Conflicts != 1 {
		t.Errorf("trim conflicts = %d, want 1", rep.Conflicts)
	}
	// Core boundaries are mask-defined: no overlays in trim mode.
	if rep.SideOverlayNM != 0 || rep.TipOverlayNM != 0 {
		t.Errorf("trim core overlays = %d/%d, want 0/0", rep.SideOverlayNM, rep.TipOverlayNM)
	}
}

func TestConnectivity(t *testing.T) {
	split := []drc.Layer{
		{Die: die(), Targets: []drc.Target{
			{Net: 1, Rects: []geom.Rect{vwire(0, 0, 100), vwire(3, 0, 100)}},
		}},
	}
	rep := drc.CheckDesign(split, ds)
	if len(rep.ConnErrs) != 1 {
		t.Fatalf("disconnected net not reported: %v", rep.ConnErrs)
	}
	// Join the halves through layer 2 with overlapping via landings.
	joined := []drc.Layer{
		split[0],
		{Die: die(), Targets: []drc.Target{
			{Net: 1, Rects: []geom.Rect{geom.R(0, 40, 140, 60)}},
		}},
	}
	rep = drc.CheckDesign(joined, ds)
	if len(rep.ConnErrs) != 0 {
		t.Fatalf("connected net reported broken: %v", rep.ConnErrs)
	}
}

func hasErr(errs []string, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

// CompareOracle cross-checks one layout between the oracle and the
// verifier and returns the list of disagreements on the measured
// quantities (and, unless the oracle reported merge-bridge violations —
// a category the verifier intentionally classifies differently — the
// implicated net sets).
func compareOracle(ly decomp.Layout, trim bool) []string {
	var res *decomp.Result
	var lay drc.Layer
	if trim {
		res = decomp.DecomposeTrim(ly)
		lay = drc.FromTrim(ly)
	} else {
		res = decomp.DecomposeCut(ly)
		lay = drc.FromDecomp(ly, res.Materials)
	}
	rep := drc.CheckLayer(lay, ly.Rules)

	var out []string
	if rep.SideOverlayNM != res.SideOverlayNM {
		out = append(out, fmt.Sprintf("side overlay: drc=%d oracle=%d", rep.SideOverlayNM, res.SideOverlayNM))
	}
	if rep.TipOverlayNM != res.TipOverlayNM {
		out = append(out, fmt.Sprintf("tip overlay: drc=%d oracle=%d", rep.TipOverlayNM, res.TipOverlayNM))
	}
	if rep.HardOverlays != res.HardOverlays {
		out = append(out, fmt.Sprintf("hard overlays: drc=%d oracle=%d", rep.HardOverlays, res.HardOverlays))
	}
	if rep.Conflicts != len(res.Conflicts) {
		out = append(out, fmt.Sprintf("conflicts: drc=%d oracle=%d", rep.Conflicts, len(res.Conflicts)))
	}
	if !hasErr(res.Violations, "merge bridge") {
		want := append([]int(nil), res.BadNets...)
		sort.Ints(want)
		if fmt.Sprint(rep.BadNets) != fmt.Sprint(want) {
			out = append(out, fmt.Sprintf("bad nets: drc=%v oracle=%v", rep.BadNets, want))
		}
	}
	return out
}

// TestRandomizedOracleAgreement drives both implementations over seeded
// random on-grid layouts (the geometry class the routers emit) and demands
// exact agreement.
func TestRandomizedOracleAgreement(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, mode := range []string{"cut", "cut-naive", "trim"} {
			ly := randomLayout(rand.New(rand.NewSource(seed)), mode == "cut-naive")
			diffs := compareOracle(ly, mode == "trim")
			if len(diffs) > 0 {
				t.Errorf("seed %d mode %s: %v", seed, mode, diffs)
			}
		}
	}
}

// randomLayout builds an on-grid layout: 20nm wires on a 40nm pitch with
// random colors, lengths and positions, mimicking router output geometry.
func randomLayout(rng *rand.Rand, naive bool) decomp.Layout {
	ly := decomp.Layout{Rules: ds, Die: geom.R(-400, -400, 2000, 2000), NaiveAssists: naive}
	pitch := ds.Pitch()
	// nm extent of a run of k grid cells starting at cell s.
	run := func(s, k int) (int, int) { return s * pitch, (s+k-1)*pitch + ds.WLine }
	nPats := 3 + rng.Intn(8)
	for i := 0; i < nPats; i++ {
		p := decomp.Pattern{Net: i, Color: decomp.Core}
		if rng.Intn(2) == 0 {
			p.Color = decomp.Second
		}
		if rng.Intn(12) == 0 {
			p.Color = decomp.Unassigned
		}
		for r := 0; r < 1+rng.Intn(2); r++ {
			t, s, k := rng.Intn(12), rng.Intn(12), 1+rng.Intn(6)
			a0, a1 := run(s, k)
			w0, w1 := run(t, 1)
			if rng.Intn(2) == 0 {
				p.Rects = append(p.Rects, geom.R(w0, a0, w1, a1)) // vertical
			} else {
				p.Rects = append(p.Rects, geom.R(a0, w0, a1, w1)) // horizontal
			}
		}
		ly.Pats = append(ly.Pats, p)
	}
	return ly
}
