package drc_test

import (
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
)

// FuzzDRCAgreesWithOracle is the differential bench suite's adversary:
// arbitrary (including off-grid) geometry must produce identical measured
// verdicts from the independent verifier and the decomposition oracle, in
// both the cut and the trim process. compareOracle applies the one
// documented carve-out: layouts where the oracle reports merge-bridge
// violations skip the BadNets comparison (the verifier classifies those
// differently by design).
func FuzzDRCAgreesWithOracle(f *testing.F) {
	f.Add([]byte{2, 1, 0, 10, 10, 5, 5, 2, 1, 60, 10, 5, 5}, false)
	f.Add([]byte{4, 2, 1, 40, 40, 11, 50, 1, 0, 90, 40, 11, 50}, true)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, data []byte, trim bool) {
		ly := fuzzDRCLayout(data)
		for _, d := range compareOracle(ly, trim) {
			t.Errorf("verifier/oracle disagreement (trim=%v): %s", trim, d)
		}
	})
}

// fuzzDRCLayout decodes bytes into a small layout; totally defined on any
// byte string.
func fuzzDRCLayout(data []byte) decomp.Layout {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	ly := decomp.Layout{
		Rules: ds,
		Die:   geom.Rect{X0: -400, Y0: -400, X1: 1600, Y1: 1600},
	}
	n := 1 + next()%6
	for i := 0; i < n; i++ {
		color := decomp.Color(next() % 3)
		var rects []geom.Rect
		for k := 0; k < 1+next()%2; k++ {
			x0 := next()*5 - 200
			y0 := next()*5 - 200
			w := 10 + next()%61
			h := 10 + next()%61
			rects = append(rects, geom.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + h})
		}
		ly.Pats = append(ly.Pats, decomp.Pattern{Net: i, Color: color, Rects: rects})
	}
	return ly
}
