// Package drc is an independent design-rule verifier for SADP cut-process
// (and trim-process) layouts — repository infrastructure with no paper
// section of its own: it enforces the process rules of Section II against
// the oracle rather than implementing a paper algorithm. It takes only raw per-layer geometry plus the
// process rules and re-derives every verdict from scratch: per-net
// connectivity, minimum width and spacing, side/tip/hard overlay
// measurement and cut-mask d_cut conflicts. It deliberately shares no code
// with the decomposition oracle in package decomp — it has its own interval
// arithmetic, its own spatial index and its own boundary classification —
// so the two implementations can be cross-checked differentially: any
// disagreement on a layout is a bug in one of them.
//
// Division of labor with the oracle:
//
//   - The measured quantities (SideOverlayNM, TipOverlayNM, HardOverlays,
//     Conflicts) and the decomposition-failure Violations/BadNets use the
//     oracle's published semantics and must agree exactly.
//   - RuleErrs are checks outside the oracle's scope: minimum width,
//     minimum spacing (including the different-net short/abutment classes
//     the router must rule out by construction), die containment,
//     synthesized core-mask material legality (minimum width, the d_core
//     merge fixpoint, spacer encroachment on second patterns). The w_cut
//     mergeability rule needs no geometric check of its own: rule relation
//     (2) (w_cut <= d_cut) makes the d_cut flank check subsume it.
//
// The verifier does not re-synthesize assistant cores or merge bridges —
// synthesis is a design choice, not a rule — but it independently verifies
// that the material handed to it is legal under the process rules.
package drc

import (
	"fmt"
	"sort"

	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// Target is one pattern: one net's fragmented geometry on one layer.
type Target struct {
	Net int
	// Second marks the pattern as spacer-defined (second mask); otherwise
	// it is printed by the core mask.
	Second bool
	// Unassigned marks a pattern with no mask assignment: a decomposition
	// failure. The verifier records the violation and treats the pattern as
	// core, mirroring the oracle so measurements stay comparable.
	Unassigned bool
	Rects      []geom.Rect // nm, half-open
}

// Layer is the verifier's input for one routing layer.
type Layer struct {
	Die     geom.Rect
	Trim    bool // trim-process layer: no assists/bridges, trim-mask rules
	Targets []Target
	// Extra is the synthesized non-target core-mask material (assistant
	// cores and merge bridges) whose legality the verifier checks. Unused
	// in trim mode.
	Extra []geom.Rect
}

// LayerReport is the verdict on one layer.
type LayerReport struct {
	SideOverlayNM int
	TipOverlayNM  int
	HardOverlays  int
	Conflicts     int
	// Violations are decomposition failures in the oracle's sense
	// (unassigned patterns, different-net targets abutting).
	Violations []string
	// BadNets lists the nets implicated in Violations, sorted and deduped.
	BadNets []int
	// RuleErrs are independent rule checks outside the oracle's scope.
	RuleErrs []string
}

// Clean reports whether the layer passed every check with zero overlay
// violations (hard overlays and conflicts) — soft side/tip overlay length
// is a quality metric, not a failure.
func (lr *LayerReport) Clean() bool {
	return lr.HardOverlays == 0 && lr.Conflicts == 0 &&
		len(lr.Violations) == 0 && len(lr.RuleErrs) == 0
}

// Report is the verdict on a whole design.
type Report struct {
	Layers []*LayerReport
	// ConnErrs lists nets whose metal is not a single connected component
	// across all layers.
	ConnErrs []string
}

// Clean reports whether every layer is clean and every net connected.
func (r *Report) Clean() bool {
	for _, lr := range r.Layers {
		if !lr.Clean() {
			return false
		}
	}
	return len(r.ConnErrs) == 0
}

// trect is one flattened target rectangle.
type trect struct {
	pat, net int
	second   bool
	rect     geom.Rect
}

// mrect is one rectangle of core-mask material; pat >= 0 identifies a
// core-printed target pattern, pat < 0 synthesized material.
type mrect struct {
	pat  int
	rect geom.Rect
}

type layerCheck struct {
	ds   rules.Set
	ly   Layer
	ts   []trect
	ms   []mrect
	tix  *stripeIndex
	mix  *stripeIndex
	rep  *LayerReport
	bad  map[int]bool
	seen map[[2]int]bool // deduped net pairs for spacing errors
}

// CheckLayer verifies one layer and returns its report.
func CheckLayer(ly Layer, ds rules.Set) *LayerReport {
	c := &layerCheck{
		ds:   ds,
		ly:   ly,
		rep:  &LayerReport{},
		bad:  make(map[int]bool),
		seen: make(map[[2]int]bool),
	}
	c.flatten()
	c.buildIndexes()
	for ti := range c.ts {
		c.checkTargetRect(ti)
	}
	for ti := range c.ts {
		if ly.Trim && !c.ts[ti].second {
			continue // trim: core boundaries are mask-defined, no overlays
		}
		c.measure(ti)
	}
	if ly.Trim {
		c.trimConflicts()
	} else {
		c.checkMaterial()
	}
	c.rep.BadNets = sortedKeys(c.bad)
	return c.rep
}

// CheckDesign verifies every layer and the cross-layer per-net
// connectivity of the whole design.
func CheckDesign(layers []Layer, ds rules.Set) *Report {
	rep := &Report{Layers: make([]*LayerReport, len(layers))}
	for i, ly := range layers {
		rep.Layers[i] = CheckLayer(ly, ds)
	}
	rep.ConnErrs = checkConnectivity(layers)
	return rep
}

func (c *layerCheck) violation(net int, format string, args ...any) {
	c.rep.Violations = append(c.rep.Violations, fmt.Sprintf(format, args...))
	c.bad[net] = true
}

func (c *layerCheck) ruleErr(format string, args ...any) {
	c.rep.RuleErrs = append(c.rep.RuleErrs, fmt.Sprintf(format, args...))
}

func (c *layerCheck) flatten() {
	for pi, t := range c.ly.Targets {
		if t.Unassigned {
			c.violation(t.Net, "pattern %d (net %d) has no mask assignment", pi, t.Net)
		}
		second := t.Second && !t.Unassigned
		for _, r := range t.Rects {
			if r.Empty() {
				continue
			}
			c.ts = append(c.ts, trect{pat: pi, net: t.Net, second: second, rect: r})
		}
	}
	for _, t := range c.ts {
		if !t.second {
			c.ms = append(c.ms, mrect{pat: t.pat, rect: t.rect})
		}
	}
	if !c.ly.Trim {
		for _, r := range c.ly.Extra {
			if !r.Empty() {
				c.ms = append(c.ms, mrect{pat: -1, rect: r})
			}
		}
	}
}

func (c *layerCheck) buildIndexes() {
	w := 4 * c.ds.Pitch()
	c.tix = newStripeIndex(w)
	for i, t := range c.ts {
		c.tix.add(i, t.rect)
	}
	c.mix = newStripeIndex(w)
	for i, m := range c.ms {
		c.mix.add(i, m.rect)
	}
}

// checkTargetRect runs the per-rectangle rule checks: minimum width, die
// containment and different-net minimum spacing.
func (c *layerCheck) checkTargetRect(ti int) {
	t := c.ts[ti]
	r := t.rect
	ds := c.ds
	if r.W() < ds.WLine || r.H() < ds.WLine {
		c.ruleErr("net %d rect %v narrower than w_line=%d", t.net, r, ds.WLine)
	}
	if !c.ly.Die.ContainsRect(r) {
		c.ruleErr("net %d rect %v outside die %v", t.net, r, c.ly.Die)
	}
	// Different-net clearance must be at least w_spacer: closer metal
	// either shorts or starves the spacer. Edge abutment (a positive-length
	// shared edge) is the oracle's "targets abut" violation and is reported
	// by measure(); everything else below w_spacer is a RuleErr.
	c.tix.each(r.Expand(ds.WSpacer), func(oi int, or geom.Rect) {
		if oi <= ti {
			return
		}
		o := c.ts[oi]
		if o.net == t.net {
			return
		}
		key := netPair(t.net, o.net)
		if c.seen[key] {
			return
		}
		switch {
		case r.Intersects(or):
			c.seen[key] = true
			c.ruleErr("nets %d and %d short: %v overlaps %v", t.net, o.net, r, or)
		case edgeAbut(r, or):
			// reported as a decomposition violation by measure()
		default:
			if g := linfGap(r, or); g < ds.WSpacer {
				c.seen[key] = true
				c.ruleErr("nets %d and %d spaced %dnm < w_spacer=%d (%v vs %v)",
					t.net, o.net, g, ds.WSpacer, r, or)
			}
		}
	})
}

// edgeAbut reports whether two disjoint rects share an edge section of
// positive length.
func edgeAbut(a, b geom.Rect) bool {
	if (a.X1 == b.X0 || b.X1 == a.X0) && a.OverlapY(b) > 0 {
		return true
	}
	if (a.Y1 == b.Y0 || b.Y1 == a.Y0) && a.OverlapX(b) > 0 {
		return true
	}
	return false
}

// linfGap returns the L-infinity clearance between two rects (0 when they
// overlap or touch).
func linfGap(a, b geom.Rect) int {
	gx, gy := a.GapX(b), a.GapY(b)
	if gx > gy {
		return gx
	}
	return gy
}

// netPair normalizes a net pair into a dedup key.
func netPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// side enumerates the four boundaries of a rectangle in the verifier's own
// parametrization: the span interval along the boundary, the 1-unit field
// row immediately outside it, and whether the boundary is a wire tip.
type side struct {
	spanLo, spanHi int  // extent along the boundary
	rowLo          int  // low edge of the 1-unit outside field row
	horiz          bool // boundary runs along X (top/bottom)
	tip            bool
}

func sidesOf(r geom.Rect) [4]side {
	horizWire := r.W() > r.H()
	vertWire := r.H() > r.W()
	return [4]side{
		{r.Y0, r.Y1, r.X0 - 1, false, horizWire}, // left
		{r.Y0, r.Y1, r.X1, false, horizWire},     // right
		{r.X0, r.X1, r.Y0 - 1, true, vertWire},   // bottom
		{r.X0, r.X1, r.Y1, true, vertWire},       // top
	}
}

// extents returns o's extents along the span axis and perpendicular to it.
func (s side) extents(o geom.Rect) (alo, ahi, plo, phi int) {
	if s.horiz {
		return o.X0, o.X1, o.Y0, o.Y1
	}
	return o.Y0, o.Y1, o.X0, o.X1
}

// rowCovered reports whether a perpendicular extent [plo,phi) covers the
// whole 1-unit field row starting at rowLo.
func (s side) rowCovered(plo, phi int) bool {
	return plo <= s.rowLo && phi >= s.rowLo+1
}

// measure classifies every boundary section of one target rectangle as
// interior (same-polygon seam), spacer-protected, or cut-defined overlay,
// then pairs opposite-side overlays closer than d_cut into conflicts.
//
// A boundary section is cut-defined exactly when the field row immediately
// outside it is neither covered by other target metal nor covered by
// spacer. Spacer covers the row where core-mask material lies within
// w_spacer of it — unless that material itself reaches the row, in which
// case the cut (which removes non-target material) defines the section.
func (c *layerCheck) measure(ti int) {
	t := c.ts[ti]
	r := t.rect
	ds := c.ds
	ws := ds.WSpacer

	var ovBySide [4][]span
	sides := sidesOf(r)
	for si, sd := range sides {
		var interior, touch, prot coverage

		// Other targets covering the outside row: same-pattern rects are
		// polygon seams; different-pattern metal there is an abutment
		// violation (but still not a cut boundary).
		c.tix.each(r.Expand(1), func(oi int, or geom.Rect) {
			if oi == ti {
				return
			}
			alo, ahi, plo, phi := sd.extents(or)
			if !sd.rowCovered(plo, phi) {
				return
			}
			iv := span{alo, ahi}.clip(sd.spanLo, sd.spanHi)
			if iv.empty() {
				return
			}
			o := c.ts[oi]
			if o.pat != t.pat {
				c.violation(t.net, "targets of nets %d and %d abut at %v", t.net, o.net, r)
				c.violation(o.net, "targets of nets %d and %d abut (mirror)", t.net, o.net)
			}
			interior.add(iv)
		})

		// Core-mask material: material reaching the row is cut-defined
		// (unless it is this pattern's own printed core — a seam); material
		// within w_spacer of the row lays spacer over it.
		c.mix.each(r.Expand(ws+1), func(mi int, mr geom.Rect) {
			m := c.ms[mi]
			alo, ahi, plo, phi := sd.extents(mr)
			if sd.rowCovered(plo, phi) {
				iv := span{alo, ahi}.clip(sd.spanLo, sd.spanHi)
				if m.pat >= 0 && m.pat == t.pat {
					interior.add(iv)
				} else {
					touch.add(iv)
				}
				return
			}
			if sd.rowCovered(plo-ws, phi+ws) {
				prot.add(span{alo - ws, ahi + ws}.clip(sd.spanLo, sd.spanHi))
			}
		})

		full := []span{{sd.spanLo, sd.spanHi}}
		ov := subtractSpans(
			subtractSpans(full, interior.union()),
			subtractSpans(prot.union(), touch.union()),
		)
		ovBySide[si] = ov
		for _, iv := range ov {
			if sd.tip {
				c.rep.TipOverlayNM += iv.length()
				continue
			}
			c.rep.SideOverlayNM += iv.length()
			if iv.length() > ds.WLine {
				c.rep.HardOverlays++
			}
		}
	}

	if c.ly.Trim {
		return // trim edges cover rather than flank: no d_cut pairing
	}
	// Opposing cut regions closer than d_cut across the wire body.
	if r.W() < ds.DCut {
		c.rep.Conflicts += len(intersectSpans(ovBySide[0], ovBySide[1]))
	}
	if r.H() < ds.DCut {
		c.rep.Conflicts += len(intersectSpans(ovBySide[2], ovBySide[3]))
	}
}

// trimConflicts reports same-mask spacing conflicts of the trim process:
// two same-color patterns with a positive L-infinity gap under d_core
// cannot be separated (no merge technique exists), counted once per
// pattern pair.
func (c *layerCheck) trimConflicts() {
	dcore := c.ds.DCore
	pairs := make(map[[2]int]bool)
	for i := range c.ts {
		a := c.ts[i]
		c.tix.each(a.rect.Expand(dcore), func(j int, br geom.Rect) {
			if j <= i {
				return
			}
			b := c.ts[j]
			if a.second != b.second {
				return
			}
			g := linfGap(a.rect, br)
			if g == 0 || g >= dcore {
				return
			}
			pairs[netPair(a.pat, b.pat)] = true
		})
	}
	c.rep.Conflicts += len(pairs)
}

// checkMaterial verifies the synthesized core-mask material (cut mode):
// minimum width, the d_core merge fixpoint (no two distinct mask blobs may
// remain closer than d_core) and spacer encroachment on second patterns.
func (c *layerCheck) checkMaterial() {
	ds := c.ds
	if len(c.ms) == 0 {
		return
	}
	// Minimum width applies to printed target material; sacrificial
	// material (assists, bridges) may dip under w_core where it lies over
	// spacer — a waivable core-mask MRC violation (Section II-B), e.g. the
	// thin fallback corner bridge or a bridge meeting a d_core-trimmed
	// assist edge.
	for _, m := range c.ms {
		if m.pat >= 0 && (m.rect.W() < ds.WCore || m.rect.H() < ds.WCore) {
			c.ruleErr("core material %v narrower than w_core=%d", m.rect, ds.WCore)
		}
	}
	// Blobs: touching or overlapping material prints as one mask shape.
	uf := newUnionFind(len(c.ms))
	for i := range c.ms {
		c.mix.each(c.ms[i].rect.Expand(1), func(j int, jr geom.Rect) {
			if j <= i {
				return
			}
			if linfGap(c.ms[i].rect, jr) == 0 {
				uf.unite(i, j)
			}
		})
	}
	reported := make(map[[2]int]bool)
	for i := range c.ms {
		c.mix.each(c.ms[i].rect.Expand(ds.DCore), func(j int, jr geom.Rect) {
			if j <= i || uf.root(i) == uf.root(j) {
				return
			}
			if g := linfGap(c.ms[i].rect, jr); g > 0 && g < ds.DCore {
				key := netPair(uf.root(i), uf.root(j))
				if !reported[key] {
					reported[key] = true
					c.ruleErr("unmerged core material: %v and %v spaced %dnm < d_core=%d",
						c.ms[i].rect, jr, g, ds.DCore)
				}
			}
		})
	}
	// Core-mask material overlapping a second target destroys the target
	// outright. Mere proximity under w_spacer is not an error: the pinched
	// boundary becomes cut-defined and is already measured as overlay.
	for ti := range c.ts {
		t := c.ts[ti]
		if !t.second {
			continue
		}
		c.mix.each(t.rect, func(mi int, mr geom.Rect) {
			if mr.Intersects(t.rect) {
				c.ruleErr("core material %v overlaps second target of net %d", mr, t.net)
			}
		})
	}
}

// unionFind is the verifier's own disjoint-set forest.
type unionFind struct{ up []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{up: make([]int, n)}
	for i := range u.up {
		u.up[i] = i
	}
	return u
}

func (u *unionFind) root(x int) int {
	r := x
	for u.up[r] != r {
		r = u.up[r]
	}
	for u.up[x] != r {
		u.up[x], x = r, u.up[x]
	}
	return r
}

func (u *unionFind) unite(a, b int) { u.up[u.root(a)] = u.root(b) }

// checkConnectivity verifies that every net's metal forms one connected
// component: rects on the same layer connect when they overlap or share an
// edge of positive length; rects on adjacent layers connect through a via
// wherever their footprints overlap.
func checkConnectivity(layers []Layer) []string {
	type piece struct {
		layer int
		rect  geom.Rect
	}
	byNet := make(map[int][]piece)
	for li, ly := range layers {
		for _, t := range ly.Targets {
			for _, r := range t.Rects {
				if !r.Empty() {
					byNet[t.Net] = append(byNet[t.Net], piece{li, r})
				}
			}
		}
	}
	var errs []string
	for _, net := range sortedKeys2(byNet) {
		ps := byNet[net]
		if len(ps) < 2 {
			continue
		}
		uf := newUnionFind(len(ps))
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				dl := ps[i].layer - ps[j].layer
				if dl < 0 {
					dl = -dl
				}
				switch dl {
				case 0:
					if ps[i].rect.Intersects(ps[j].rect) || edgeAbut(ps[i].rect, ps[j].rect) {
						uf.unite(i, j)
					}
				case 1:
					if ps[i].rect.Intersects(ps[j].rect) {
						uf.unite(i, j)
					}
				}
			}
		}
		comps := make(map[int]bool)
		for i := range ps {
			comps[uf.root(i)] = true
		}
		if len(comps) > 1 {
			errs = append(errs, fmt.Sprintf("net %d metal is disconnected (%d components)", net, len(comps)))
		}
	}
	return errs
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys2[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
