package drc

import "sadproute/internal/geom"

// stripeIndex is a one-axis striped spatial index over rectangles: every
// rectangle is registered in the fixed-width X stripes it overlaps, and a
// query visits the stripes its window covers. It is intentionally a
// different data structure from the oracle's uniform-grid bucket index so
// an indexing bug cannot cancel out across the two implementations.
type stripeIndex struct {
	width  int
	rects  []geom.Rect
	strips map[int][]int32
	seen   []int32 // per-rect visit stamp for query deduplication
	stamp  int32
}

func newStripeIndex(width int) *stripeIndex {
	if width <= 0 {
		width = 1
	}
	return &stripeIndex{width: width, strips: make(map[int][]int32)}
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// add registers rect i. Rects must be added with consecutive ids starting
// at 0.
func (ix *stripeIndex) add(i int, r geom.Rect) {
	for len(ix.rects) <= i {
		ix.rects = append(ix.rects, geom.Rect{})
		ix.seen = append(ix.seen, 0)
	}
	ix.rects[i] = r
	if r.Empty() {
		return
	}
	for s := floorDiv(r.X0, ix.width); s <= floorDiv(r.X1-1, ix.width); s++ {
		ix.strips[s] = append(ix.strips[s], int32(i))
	}
}

// each calls fn for every registered rect whose closure intersects the
// closure of q (i.e. including rects that merely touch q), each at most
// once, in unspecified order. Callers apply their own precise predicates.
func (ix *stripeIndex) each(q geom.Rect, fn func(i int, r geom.Rect)) {
	ix.stamp++
	for s := floorDiv(q.X0, ix.width); s <= floorDiv(q.X1, ix.width); s++ {
		for _, id := range ix.strips[s] {
			if ix.seen[id] == ix.stamp {
				continue
			}
			ix.seen[id] = ix.stamp
			r := ix.rects[id]
			if r.X0 <= q.X1 && q.X0 <= r.X1 && r.Y0 <= q.Y1 && q.Y0 <= r.Y1 {
				fn(int(id), r)
			}
		}
	}
}
