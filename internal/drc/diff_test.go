package drc_test

import (
	"testing"
	"time"

	"sadproute/internal/baseline"
	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/drc"
	"sadproute/internal/router"
)

// TestDifferentialBenchSuite is the adversarial cross-check the verifier
// exists for: route scaled-down instances of the paper's benchmark family
// with our router and all three baselines, evaluate the layouts with the
// decomposition oracle, and demand that the independent verifier agrees on
// every layer of every run with zero discrepancies — any disagreement is a
// bug in one of the two implementations. It additionally requires the
// verifier's own rule checks (spacing, width, material legality,
// connectivity), which the oracle does not perform, to come back clean on
// every router's output.
func TestDifferentialBenchSuite(t *testing.T) {
	specs := []bench.Spec{
		{Name: "diff-s1", Nets: 150, Tracks: 56, Layers: 3, Seed: 11, PinCandidates: 1, AvgHPWL: 6, Blockages: 2},
		{Name: "diff-s2", Nets: 250, Tracks: 72, Layers: 3, Seed: 12, PinCandidates: 3, AvgHPWL: 7, Blockages: 3},
		{Name: "diff-s3", Nets: 400, Tracks: 96, Layers: 4, Seed: 13, PinCandidates: 1, AvgHPWL: 8, Blockages: 4},
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			runAllAlgos(t, sp, false)
		})
	}
	// The exhaustive baseline is orders of magnitude slower: one tiny
	// instance keeps it in the suite without dominating the runtime.
	t.Run("diff-tiny-exhaustive", func(t *testing.T) {
		sp := bench.Spec{Name: "diff-tiny", Nets: 40, Tracks: 28, Layers: 2, Seed: 14, PinCandidates: 2, AvgHPWL: 5, Blockages: 1}
		runAllAlgos(t, sp, true)
	})
}

func runAllAlgos(t *testing.T, sp bench.Spec, withExhaustive bool) {
	t.Run("ours", func(t *testing.T) {
		res := router.Route(bench.Generate(sp), ds, router.Defaults())
		crossCheck(t, res.Layouts(), false, false)
	})
	t.Run("gao-pan-trim", func(t *testing.T) {
		out := baseline.TrimGreedy{}.Run(bench.Generate(sp), ds)
		crossCheck(t, out.Layouts, out.Trim, false)
	})
	t.Run("cut-no-merge", func(t *testing.T) {
		out := baseline.CutNoMerge{}.Run(bench.Generate(sp), ds)
		crossCheck(t, out.Layouts, out.Trim, true)
	})
	if !withExhaustive {
		return
	}
	t.Run("du-exhaustive", func(t *testing.T) {
		out := baseline.TrimExhaustive{Budget: 5 * time.Minute}.Run(bench.Generate(sp), ds)
		if out == nil {
			t.Fatal("exhaustive baseline hit its budget on a tiny instance")
		}
		crossCheck(t, out.Layouts, out.Trim, false)
	})
}

// crossCheck compares oracle and verifier verdicts layer by layer.
// naive marks decompositions whose merge-happy assist synthesis (the
// cut-no-merge baseline) may legitimately produce overlay-heavy layouts;
// the agreement requirement is identical either way.
func crossCheck(t *testing.T, layouts []decomp.Layout, trim, naive bool) {
	t.Helper()
	_ = naive
	var layers []drc.Layer
	for li, ly := range layouts {
		diffs := compareOracle(ly, trim)
		for _, d := range diffs {
			t.Errorf("layer %d: %s", li, d)
		}
		if trim {
			layers = append(layers, drc.FromTrim(ly))
		} else {
			res := decomp.DecomposeCut(ly)
			if hasErr(res.Violations, "merge bridge") {
				// Would weaken the BadNets comparison above; on-grid router
				// output should never produce one.
				t.Errorf("layer %d: oracle reported a merge-bridge violation: %v", li, res.Violations)
			}
			layers = append(layers, drc.FromDecomp(ly, res.Materials))
		}
	}
	rep := drc.CheckDesign(layers, ds)
	for li, lr := range rep.Layers {
		for _, e := range lr.RuleErrs {
			t.Errorf("layer %d: independent rule check failed on router output: %s", li, e)
		}
	}
	for _, e := range rep.ConnErrs {
		t.Errorf("connectivity: %s", e)
	}
}
