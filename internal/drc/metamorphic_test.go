package drc_test

import (
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/drc"
	"sadproute/internal/geom"
	"sadproute/internal/router"
)

// The metamorphic suite mirrors the one in internal/decomp, but aimed at
// the verifier: CheckLayer's verdict is a property of the layer's shape,
// so rigid transforms of the verifier INPUT — translation by whole pitches
// and the track-aligned horizontal mirror — must not change it. The
// verifier's stripe index and scan loops are all coordinate-driven, which
// makes these transforms sharp detectors of origin or left/right bias, and
// the check is fully independent of the oracle's own equivariance.

// drcVerdict is the transform-invariant signature of a layer report.
type drcVerdict struct {
	SideNM, TipNM  int
	Hard, Conf     int
	Viol, Bad, Err int
}

func drcVerdictOf(lr *drc.LayerReport) drcVerdict {
	return drcVerdict{
		SideNM: lr.SideOverlayNM,
		TipNM:  lr.TipOverlayNM,
		Hard:   lr.HardOverlays,
		Conf:   lr.Conflicts,
		Viol:   len(lr.Violations),
		Bad:    len(lr.BadNets),
		Err:    len(lr.RuleErrs),
	}
}

// mapLayer applies a rect transform to every piece of geometry in a layer.
func mapLayer(ly drc.Layer, f func(geom.Rect) geom.Rect) drc.Layer {
	out := ly
	out.Die = f(ly.Die)
	out.Targets = make([]drc.Target, len(ly.Targets))
	for i, tg := range ly.Targets {
		q := tg
		q.Rects = make([]geom.Rect, len(tg.Rects))
		for j, r := range tg.Rects {
			q.Rects[j] = f(r)
		}
		out.Targets[i] = q
	}
	out.Extra = make([]geom.Rect, len(ly.Extra))
	for i, r := range ly.Extra {
		out.Extra[i] = f(r)
	}
	return out
}

func translateDRC(ly drc.Layer, dx, dy int) drc.Layer {
	d := geom.Pt{X: dx, Y: dy}
	return mapLayer(ly, func(r geom.Rect) geom.Rect { return r.Translate(d) })
}

// mirrorDRC reflects the layer about the vertical axis that maps routing
// track x onto track W-1-x (see internal/decomp's metamorphic suite for
// the derivation of the axis).
func mirrorDRC(ly drc.Layer) drc.Layer {
	s := ly.Die.X0 + ly.Die.X1 - ds.Pitch() + ds.WLine
	return mapLayer(ly, func(r geom.Rect) geom.Rect {
		return geom.Rect{X0: s - r.X1, Y0: r.Y0, X1: s - r.X0, Y1: r.Y1}
	})
}

// metamorphicDRCLayers routes two small benchmarks and converts every
// non-empty layout into verifier input, both in cut-process form (with the
// oracle's synthesized material to exercise the material legality checks)
// and trim-process form.
func metamorphicDRCLayers(t *testing.T) []drc.Layer {
	t.Helper()
	specs := []bench.Spec{
		{Name: "drcMetaA", Nets: 90, Tracks: 40, Layers: 3, Seed: 401, PinCandidates: 1, AvgHPWL: 5, Blockages: 2},
		{Name: "drcMetaB", Nets: 70, Tracks: 36, Layers: 3, Seed: 402, PinCandidates: 2, AvgHPWL: 6, Blockages: 1},
	}
	var out []drc.Layer
	for _, sp := range specs {
		res := router.Route(bench.Generate(sp), ds, router.Defaults())
		if res.Routed == 0 {
			t.Fatalf("%s: routed nothing", sp.Name)
		}
		for _, ly := range res.Layouts() {
			if len(ly.Pats) == 0 {
				continue
			}
			out = append(out, drc.FromDecomp(ly, decomp.DecomposeCut(ly).Materials))
			out = append(out, drc.FromTrim(ly))
		}
	}
	if len(out) == 0 {
		t.Fatal("no layers generated")
	}
	return out
}

// TestDRCTranslationInvariance: translating the verifier input by whole
// routing pitches preserves the verdict.
func TestDRCTranslationInvariance(t *testing.T) {
	p := ds.Pitch()
	offsets := []geom.Pt{{X: p, Y: -2 * p}, {X: -100 * p, Y: 100 * p}, {X: 3 * p, Y: p}}
	for i, ly := range metamorphicDRCLayers(t) {
		base := drcVerdictOf(drc.CheckLayer(ly, ds))
		for _, d := range offsets {
			got := drcVerdictOf(drc.CheckLayer(translateDRC(ly, d.X, d.Y), ds))
			if got != base {
				t.Errorf("layer %d (trim=%v) translate %v: verdict changed\nbase: %+v\ngot:  %+v",
					i, ly.Trim, d, base, got)
			}
		}
	}
}

// TestDRCMirrorInvariance: the track-aligned horizontal mirror preserves
// the verdict, and mirroring twice reproduces it exactly (involution).
func TestDRCMirrorInvariance(t *testing.T) {
	for i, ly := range metamorphicDRCLayers(t) {
		base := drcVerdictOf(drc.CheckLayer(ly, ds))
		m := mirrorDRC(ly)
		got := drcVerdictOf(drc.CheckLayer(m, ds))
		if got != base {
			t.Errorf("layer %d (trim=%v) mirror: verdict changed\nbase: %+v\ngot:  %+v",
				i, ly.Trim, base, got)
		}
		back := drcVerdictOf(drc.CheckLayer(mirrorDRC(m), ds))
		if back != base {
			t.Errorf("layer %d (trim=%v) double-mirror: verdict changed\nbase: %+v\ngot:  %+v",
				i, ly.Trim, base, back)
		}
	}
}
