// Package netlist models the router's input (paper Section II, problem
// input; Section IV's two benchmark families): two-pin nets whose pins
// have one or more candidate locations (fixed pins for Table III, multiple
// pin candidate locations for Table IV), plus routing blockages, on a
// W x H x Layers grid.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/rules"
)

// Pin is one net terminal with one or more candidate locations; the router
// picks exactly one.
type Pin struct {
	Candidates []grid.Cell
}

// Fixed reports whether the pin has a single candidate location.
func (p Pin) Fixed() bool { return len(p.Candidates) == 1 }

// Net is a two-pin net.
type Net struct {
	ID   int
	Name string
	A, B Pin
}

// HPWL returns the half-perimeter wirelength lower bound between the
// closest candidate pair (used for net ordering).
func (n Net) HPWL() int {
	best := -1
	for _, a := range n.A.Candidates {
		for _, b := range n.B.Candidates {
			d := absi(a.X-b.X) + absi(a.Y-b.Y) + absi(a.L-b.L)
			if best < 0 || d < best {
				best = d
			}
		}
	}
	return best
}

// Blockage is a rectangle of forbidden cells on one layer.
type Blockage struct {
	L    int
	Rect geom.Rect // cell coordinates, half-open
}

// Netlist is a routing problem instance.
type Netlist struct {
	Name         string
	W, H, Layers int
	Nets         []Net
	Blockages    []Blockage
}

// Validate checks that every pin candidate and blockage lies on the grid
// and that nets have at least one candidate per pin.
func (nl *Netlist) Validate() error {
	if nl.W <= 0 || nl.H <= 0 || nl.Layers <= 0 {
		return fmt.Errorf("netlist: invalid grid %dx%dx%d", nl.W, nl.H, nl.Layers)
	}
	bounds := geom.Rect{X1: nl.W, Y1: nl.H}
	for i, n := range nl.Nets {
		if n.ID != i {
			return fmt.Errorf("netlist: net %d has id %d; ids must be dense", i, n.ID)
		}
		for _, pin := range []Pin{n.A, n.B} {
			if len(pin.Candidates) == 0 {
				return fmt.Errorf("netlist: net %d has a pin without candidates", i)
			}
			for _, c := range pin.Candidates {
				if c.X < 0 || c.X >= nl.W || c.Y < 0 || c.Y >= nl.H || c.L < 0 || c.L >= nl.Layers {
					return fmt.Errorf("netlist: net %d pin candidate %v off grid", i, c)
				}
			}
		}
	}
	for _, b := range nl.Blockages {
		if b.L < 0 || b.L >= nl.Layers || !bounds.ContainsRect(b.Rect) {
			return fmt.Errorf("netlist: blockage %v/%d off grid", b.Rect, b.L)
		}
	}
	return nil
}

// BuildGrid allocates a routing grid with the netlist's blockages applied.
func (nl *Netlist) BuildGrid(ds rules.Set) *grid.Grid {
	g := grid.New(nl.W, nl.H, nl.Layers, ds)
	for _, b := range nl.Blockages {
		g.Block(b.L, b.Rect)
	}
	return g
}

// Write serializes the netlist in the package's plain-text format:
//
//	name <string>
//	grid <W> <H> <Layers>
//	blockage <layer> <x0> <y0> <x1> <y1>
//	net <name> <cands A> -> <cands B>
//
// where a candidate list is (x,y,l) terms separated by '|'.
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "name %s\n", nl.Name)
	fmt.Fprintf(bw, "grid %d %d %d\n", nl.W, nl.H, nl.Layers)
	for _, b := range nl.Blockages {
		fmt.Fprintf(bw, "blockage %d %d %d %d %d\n", b.L, b.Rect.X0, b.Rect.Y0, b.Rect.X1, b.Rect.Y1)
	}
	for _, n := range nl.Nets {
		fmt.Fprintf(bw, "net %s %s -> %s\n", n.Name, fmtPin(n.A), fmtPin(n.B))
	}
	return bw.Flush()
}

func fmtPin(p Pin) string {
	parts := make([]string, len(p.Candidates))
	for i, c := range p.Candidates {
		parts[i] = fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.L)
	}
	return strings.Join(parts, "|")
}

// Read parses the plain-text format produced by Write.
func Read(r io.Reader) (*Netlist, error) {
	nl := &Netlist{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) >= 2 {
				nl.Name = fields[1]
			}
		case "grid":
			if len(fields) != 4 {
				return nil, fmt.Errorf("netlist: line %d: grid wants 3 ints", lineNo)
			}
			if _, err := fmt.Sscanf(line, "grid %d %d %d", &nl.W, &nl.H, &nl.Layers); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
		case "blockage":
			var b Blockage
			if _, err := fmt.Sscanf(line, "blockage %d %d %d %d %d",
				&b.L, &b.Rect.X0, &b.Rect.Y0, &b.Rect.X1, &b.Rect.Y1); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			nl.Blockages = append(nl.Blockages, b)
		case "net":
			if len(fields) != 5 || fields[3] != "->" {
				return nil, fmt.Errorf("netlist: line %d: net wants 'net NAME A -> B'", lineNo)
			}
			a, err := parsePin(fields[2])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			b, err := parsePin(fields[4])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			nl.Nets = append(nl.Nets, Net{ID: len(nl.Nets), Name: fields[1], A: a, B: b})
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func parsePin(s string) (Pin, error) {
	var p Pin
	for _, part := range strings.Split(s, "|") {
		var c grid.Cell
		if _, err := fmt.Sscanf(part, "(%d,%d,%d)", &c.X, &c.Y, &c.L); err != nil {
			return Pin{}, fmt.Errorf("bad pin candidate %q: %v", part, err)
		}
		p.Candidates = append(p.Candidates, c)
	}
	return p, nil
}

func absi(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
