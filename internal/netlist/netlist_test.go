package netlist

import (
	"bytes"
	"strings"
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/rules"
)

func sample() *Netlist {
	return &Netlist{
		Name: "t", W: 16, H: 16, Layers: 3,
		Blockages: []Blockage{{L: 1, Rect: geom.Rect{X0: 2, Y0: 2, X1: 5, Y1: 4}}},
		Nets: []Net{
			{ID: 0, Name: "n0",
				A: Pin{Candidates: []grid.Cell{{X: 1, Y: 1}}},
				B: Pin{Candidates: []grid.Cell{{X: 9, Y: 9}, {X: 9, Y: 8, L: 1}}}},
			{ID: 1, Name: "n1",
				A: Pin{Candidates: []grid.Cell{{X: 3, Y: 7}}},
				B: Pin{Candidates: []grid.Cell{{X: 3, Y: 12}}}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	nl := sample()
	var buf bytes.Buffer
	if err := nl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != nl.Name || got.W != nl.W || len(got.Nets) != len(nl.Nets) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Nets[0].B.Candidates[1] != (grid.Cell{X: 9, Y: 8, L: 1}) {
		t.Fatalf("candidate mismatch: %+v", got.Nets[0].B)
	}
	if len(got.Blockages) != 1 || got.Blockages[0].Rect != nl.Blockages[0].Rect {
		t.Fatalf("blockage mismatch: %+v", got.Blockages)
	}
}

func TestValidateRejectsOffGrid(t *testing.T) {
	nl := sample()
	nl.Nets[1].A.Candidates[0].X = 99
	if err := nl.Validate(); err == nil {
		t.Fatal("off-grid pin must fail validation")
	}
}

func TestValidateRejectsSparseIDs(t *testing.T) {
	nl := sample()
	nl.Nets[1].ID = 5
	if err := nl.Validate(); err == nil {
		t.Fatal("non-dense ids must fail validation")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("grid 4 4 1\nbogus directive\n")); err == nil {
		t.Fatal("unknown directive must error")
	}
	if _, err := Read(strings.NewReader("grid 4 4 1\nnet x (1,1,0) >> (2,2,0)\n")); err == nil {
		t.Fatal("malformed net must error")
	}
}

func TestHPWL(t *testing.T) {
	n := Net{
		A: Pin{Candidates: []grid.Cell{{X: 0, Y: 0}}},
		B: Pin{Candidates: []grid.Cell{{X: 3, Y: 4}, {X: 1, Y: 1}}},
	}
	if n.HPWL() != 2 {
		t.Fatalf("HPWL should take the closest pair, got %d", n.HPWL())
	}
}

func TestBuildGridAppliesBlockages(t *testing.T) {
	nl := sample()
	g := nl.BuildGrid(rules.Node10nm())
	if g.At(grid.Cell{X: 3, Y: 3, L: 1}) != grid.Blocked {
		t.Fatal("blockage not applied")
	}
	if g.At(grid.Cell{X: 3, Y: 3, L: 0}) != grid.Free {
		t.Fatal("wrong layer blocked")
	}
}
