// Package interval implements 1-D integer interval-set algebra —
// infrastructure with no paper section of its own. It is the workhorse of
// the layout-decomposition oracle: side-overlay measurement,
// spacer-protection coverage, and cut-conflict detection are all expressed
// as unions, intersections and subtractions of half-open intervals along a
// pattern boundary.
package interval

import (
	"fmt"
	"sort"
)

// Iv is a half-open interval [Lo, Hi). An Iv with Hi <= Lo is empty.
type Iv struct {
	Lo, Hi int
}

// Empty reports whether iv covers nothing.
func (iv Iv) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the length of iv (zero if empty).
func (iv Iv) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Iv) Intersect(o Iv) Iv {
	r := Iv{maxi(iv.Lo, o.Lo), mini(iv.Hi, o.Hi)}
	if r.Empty() {
		return Iv{}
	}
	return r
}

// Overlaps reports whether iv and o share at least one point.
func (iv Iv) Overlaps(o Iv) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

func (iv Iv) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// Set is a set of disjoint, sorted, non-touching intervals. The zero value
// is an empty set ready to use.
type Set struct {
	ivs []Iv
}

// NewSet builds a Set from arbitrary (possibly overlapping, unsorted)
// intervals.
func NewSet(ivs ...Iv) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	out := &Set{ivs: make([]Iv, len(s.ivs))}
	copy(out.ivs, s.ivs)
	return out
}

// Reset empties s, keeping its backing storage for reuse.
func (s *Set) Reset() { s.ivs = s.ivs[:0] }

// CopyFrom replaces s's contents with o's, reusing s's backing storage.
func (s *Set) CopyFrom(o *Set) { s.ivs = append(s.ivs[:0], o.ivs...) }

// Add inserts iv, merging with any interval it overlaps or touches.
func (s *Set) Add(iv Iv) {
	if iv.Empty() {
		return
	}
	// Find insertion window: all intervals with Hi >= iv.Lo and Lo <= iv.Hi
	// merge with iv (touching intervals coalesce).
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= iv.Lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= iv.Hi {
		if s.ivs[j].Lo < iv.Lo {
			iv.Lo = s.ivs[j].Lo
		}
		if s.ivs[j].Hi > iv.Hi {
			iv.Hi = s.ivs[j].Hi
		}
		j++
	}
	// Splice [i, j) down to the single merged interval in place; only a
	// pure insertion (j == i) can grow the slice.
	if j == i {
		s.ivs = append(s.ivs, Iv{})
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = iv
		return
	}
	s.ivs[i] = iv
	s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
}

// AddSet inserts every interval of o into s.
func (s *Set) AddSet(o *Set) {
	for _, iv := range o.ivs {
		s.Add(iv)
	}
}

// Subtract removes iv from the set.
func (s *Set) Subtract(iv Iv) {
	if iv.Empty() || len(s.ivs) == 0 {
		return
	}
	// The affected window [i, j): intervals strictly before i end at or
	// before iv.Lo, intervals from j start at or after iv.Hi; the window
	// collapses to at most a left remnant and a right remnant.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi > iv.Lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo < iv.Hi {
		j++
	}
	if i == j {
		return
	}
	var keep [2]Iv
	nk := 0
	if s.ivs[i].Lo < iv.Lo {
		keep[nk] = Iv{s.ivs[i].Lo, iv.Lo}
		nk++
	}
	if s.ivs[j-1].Hi > iv.Hi {
		keep[nk] = Iv{iv.Hi, s.ivs[j-1].Hi}
		nk++
	}
	// Splice the remnants over the window in place; only a split of a
	// single interval into two (nk == 2, window of one) can grow the slice.
	if nk > j-i {
		s.ivs = append(s.ivs, Iv{})
		copy(s.ivs[j+1:], s.ivs[j:])
		j++
	}
	copy(s.ivs[i:], keep[:nk])
	s.ivs = append(s.ivs[:i+nk], s.ivs[j:]...)
}

// SubtractSet removes every interval of o from s.
func (s *Set) SubtractSet(o *Set) {
	for _, iv := range o.ivs {
		s.Subtract(iv)
	}
}

// IntersectSet keeps only the parts of s covered by o.
func (s *Set) IntersectSet(o *Set) {
	var out []Iv
	for _, a := range s.ivs {
		for _, b := range o.ivs {
			x := a.Intersect(b)
			if !x.Empty() {
				out = append(out, x)
			}
		}
	}
	s.ivs = out
}

// Complement returns within \ s, i.e. the uncovered parts of the given span.
func (s *Set) Complement(within Iv) *Set {
	out := NewSet(within)
	for _, iv := range s.ivs {
		out.Subtract(iv)
	}
	return out
}

// TotalLen returns the summed length of all intervals.
func (s *Set) TotalLen() int {
	t := 0
	for _, iv := range s.ivs {
		t += iv.Len()
	}
	return t
}

// Intervals returns the disjoint sorted intervals of s. The returned slice
// must not be modified.
func (s *Set) Intervals() []Iv { return s.ivs }

// Len returns the number of disjoint intervals.
func (s *Set) Len() int { return len(s.ivs) }

// Covers reports whether iv is fully covered by s.
func (s *Set) Covers(iv Iv) bool {
	if iv.Empty() {
		return true
	}
	for _, cur := range s.ivs {
		if cur.Lo <= iv.Lo && cur.Hi >= iv.Hi {
			return true
		}
	}
	return false
}

// Contains reports whether point x is covered by s.
func (s *Set) Contains(x int) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi > x })
	return i < len(s.ivs) && s.ivs[i].Lo <= x
}

// MaxRunLen returns the length of the longest interval in s (0 if empty).
func (s *Set) MaxRunLen() int {
	m := 0
	for _, iv := range s.ivs {
		if l := iv.Len(); l > m {
			m = l
		}
	}
	return m
}

func (s *Set) String() string {
	return fmt.Sprint(s.ivs)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
