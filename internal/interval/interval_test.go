package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddMergesOverlapsAndTouches(t *testing.T) {
	s := NewSet(Iv{0, 10}, Iv{20, 30})
	if s.Len() != 2 {
		t.Fatalf("want 2 intervals, got %v", s)
	}
	s.Add(Iv{10, 20}) // touches both: everything coalesces
	if s.Len() != 1 || s.TotalLen() != 30 {
		t.Fatalf("want one [0,30), got %v", s)
	}
}

func TestSubtractSplits(t *testing.T) {
	s := NewSet(Iv{0, 100})
	s.Subtract(Iv{40, 60})
	if s.Len() != 2 || s.TotalLen() != 80 {
		t.Fatalf("got %v", s)
	}
	if !s.Covers(Iv{0, 40}) || !s.Covers(Iv{60, 100}) || s.Covers(Iv{39, 41}) {
		t.Fatalf("coverage wrong: %v", s)
	}
}

func TestComplement(t *testing.T) {
	s := NewSet(Iv{10, 20}, Iv{30, 40})
	c := s.Complement(Iv{0, 50})
	want := []Iv{{0, 10}, {20, 30}, {40, 50}}
	got := c.Intervals()
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestIntersectSet(t *testing.T) {
	a := NewSet(Iv{0, 10}, Iv{20, 30})
	b := NewSet(Iv{5, 25})
	a.IntersectSet(b)
	if a.TotalLen() != 10 || a.Len() != 2 {
		t.Fatalf("got %v", a)
	}
}

func TestContainsAndMaxRun(t *testing.T) {
	s := NewSet(Iv{5, 8}, Iv{12, 20})
	for _, c := range []struct {
		x    int
		want bool
	}{{4, false}, {5, true}, {7, true}, {8, false}, {12, true}, {19, true}, {20, false}} {
		if s.Contains(c.x) != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.x, !c.want, c.want)
		}
	}
	if s.MaxRunLen() != 8 {
		t.Errorf("MaxRunLen = %d, want 8", s.MaxRunLen())
	}
}

// TestQuickSetMatchesBitmap cross-checks the interval set against a naive
// boolean-array model under random operation sequences.
func TestQuickSetMatchesBitmap(t *testing.T) {
	const span = 200
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Set{}
		var bits [span]bool
		for op := 0; op < 40; op++ {
			lo := rng.Intn(span)
			hi := lo + rng.Intn(span-lo)
			iv := Iv{lo, hi}
			if rng.Intn(2) == 0 {
				s.Add(iv)
				for i := lo; i < hi; i++ {
					bits[i] = true
				}
			} else {
				s.Subtract(iv)
				for i := lo; i < hi; i++ {
					bits[i] = false
				}
			}
		}
		total := 0
		for i := 0; i < span; i++ {
			if bits[i] {
				total++
			}
			if s.Contains(i) != bits[i] {
				return false
			}
		}
		// Intervals must be sorted, disjoint, non-touching.
		prev := -1
		for _, iv := range s.Intervals() {
			if iv.Empty() || iv.Lo <= prev {
				return false
			}
			prev = iv.Hi
		}
		return s.TotalLen() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
