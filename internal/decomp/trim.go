package decomp

// DecomposeTrim runs the SADP trim-process oracle used by the baseline
// routers (the processes of refs. [10] and [11] in the paper).
//
// The trim process has no merge technique and (in the published baseline
// routers) no assistant core patterns, so:
//
//   - two core patterns closer than d_core are a decomposition conflict
//     (the core mask cannot print them and a cut cannot separate a merger);
//   - two second (trim-defined) patterns closer than the mask spacing rule
//     (d_core, the "minimum coloring distance") are a trim conflict — the
//     classic parallel-line-end conflict;
//   - a second-pattern boundary is protected only where a neighboring core
//     pattern's spacer happens to reach it; every other second boundary
//     section is defined directly by the trim mask and is an overlay.
//
// Core-pattern boundaries are mask-defined and never carry overlays.
func DecomposeTrim(ly Layout) *Result {
	e := Acquire()
	defer e.Release()
	return e.DecomposeTrim(ly)
}

// DecomposeTrim runs the trim-process oracle on the engine's scratch
// state; the returned Result shares nothing with the engine.
func (e *Engine) DecomposeTrim(ly Layout) *Result {
	res := &Result{}
	e.collectTargets(ly, res)
	ts, tix := e.ts, &e.tix

	// Core targets are the only material: no assists, no bridges.
	e.mats = e.mats[:0]
	for _, t := range ts {
		if t.color == Core {
			e.mats = append(e.mats, Mat{Kind: MatCoreTarget, Pat: t.pat, Rect: t.rect})
		}
	}
	e.mix.reset(indexCell(ly))
	for i, m := range e.mats {
		e.mix.add(i, m.Rect)
	}

	// Same-mask spacing conflicts, deduplicated per pattern pair.
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	for i := range ts {
		a := ts[i]
		tix.query(a.rect.Expand(ly.Rules.DCore), func(j int) {
			if j <= i {
				return
			}
			b := ts[j]
			if a.color != b.color {
				return
			}
			// Same-polygon slots conflict too: trim has no merge technique.
			gap, ok := gapLinf(a.rect, b.rect)
			if !ok || gap >= ly.Rules.DCore {
				return
			}
			key := pair{mini(a.pat, b.pat), maxi(a.pat, b.pat)}
			if seen[key] {
				return
			}
			seen[key] = true
			res.Conflicts = append(res.Conflicts, CutConflict{
				Pat: a.pat, Rect: bridgeRect(a.rect, b.rect),
				Lo: 0, Hi: 0,
			})
		})
	}

	// Overlays: second-pattern boundaries only. Opposite-side trim edges are
	// not d_cut conflicts (the trim mask covers, rather than flanks, the
	// pattern), so conflicts found by measureRect are discarded.
	for ti := range ts {
		if ts[ti].color != Second {
			continue
		}
		nc := len(res.Conflicts)
		e.measureRect(ly, ti, res)
		res.Conflicts = res.Conflicts[:nc]
	}
	res.Materials = append([]Mat(nil), e.mats...)
	res.SideOverlayUnits = float64(res.SideOverlayNM) / float64(ly.Rules.WLine) //lint:allow float reporting-only: the paper quotes overlay in fractional w_line units
	return res
}

// DecomposeTrimLayers runs DecomposeTrim on every layer.
func DecomposeTrimLayers(layers []Layout) ([]*Result, Totals) {
	out := make([]*Result, len(layers))
	var tot Totals
	for i, ly := range layers {
		out[i] = DecomposeTrim(ly)
		tot.Accumulate(out[i])
	}
	return out, tot
}
