package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// TestTipToTipMergeCut reproduces the paper's Fig. 2(c)/(d): two tip-to-tip
// patterns on one track merge on the core mask and are separated by a cut
// pattern, inducing only non-critical tip overlays.
func TestTipToTipMergeCut(t *testing.T) {
	a := wire(true, 5, 0, 4)
	b := wire(true, 5, 5, 9)
	for _, asg := range [][2]Color{{Core, Core}, {Second, Second}} {
		res := DecomposeCut(twoPatternLayout(a, b, asg[0], asg[1]))
		if res.SideOverlayNM != 0 || res.HardOverlays != 0 || len(res.Conflicts) != 0 {
			t.Errorf("%v%v: SO=%d hard=%d conf=%d, want clean",
				asg[0], asg[1], res.SideOverlayNM, res.HardOverlays, len(res.Conflicts))
		}
		if res.TipOverlayNM == 0 {
			t.Errorf("%v%v: expected tip overlays at the separating cut", asg[0], asg[1])
		}
	}
}

// TestOddCycleMergeCut reproduces Fig. 2(a)/(b): an odd cycle of must-differ
// adjacencies is trim-undecomposable for every coloring but cut-decomposable.
func TestOddCycleMergeCut(t *testing.T) {
	ds := rules.Node10nm()
	a := []geom.Rect{nmWire(ds, false, 2, 0, 8)}
	b := []geom.Rect{nmWire(ds, false, 3, 0, 8)}
	c := []geom.Rect{
		nmWire(ds, false, 4, 0, 10),
		nmWire(ds, true, 10, 1, 4),
		nmWire(ds, false, 1, 8, 10),
	}
	build := func(ca, cb, cc Color) Layout {
		return Layout{Rules: ds, Die: geom.Rect{X0: -200, Y0: -200, X1: 800, Y1: 800},
			Pats: []Pattern{
				{Net: 0, Color: ca, Rects: a},
				{Net: 1, Color: cb, Rects: b},
				{Net: 2, Color: cc, Rects: c},
			}}
	}
	colors := []Color{Core, Second}
	trimOK, cutOK := false, false
	for _, ca := range colors {
		for _, cb := range colors {
			for _, cc := range colors {
				if r := DecomposeTrim(build(ca, cb, cc)); len(r.Conflicts)+r.HardOverlays == 0 {
					trimOK = true
				}
				if r := DecomposeCut(build(ca, cb, cc)); len(r.Conflicts)+r.HardOverlays+len(r.Violations) == 0 {
					cutOK = true
				}
			}
		}
	}
	if trimOK {
		t.Error("odd cycle must be trim-undecomposable for every coloring")
	}
	if !cutOK {
		t.Error("odd cycle must be cut-decomposable (merge technique)")
	}
}

func nmWire(ds rules.Set, horiz bool, fixed, c0, c1 int) geom.Rect {
	p, w := ds.Pitch(), ds.WLine
	if horiz {
		return geom.Rect{X0: c0 * p, Y0: fixed * p, X1: c1*p + w, Y1: fixed*p + w}
	}
	return geom.Rect{X0: fixed * p, Y0: c0 * p, X1: fixed*p + w, Y1: c1*p + w}
}

// TestQuickIndependence is the Theorem 1 property test: random pattern
// pairs at distance >= d_indep never induce side overlays, conflicts or
// violations under any coloring.
func TestQuickIndependence(t *testing.T) {
	ds := rules.Node10nm()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random wires in cell coordinates.
		a := cwire(rng.Intn(2) == 0, 5, 0, 1+rng.Intn(6))
		b := cwire(rng.Intn(2) == 0, 5, 0, 1+rng.Intn(6))
		dx := rng.Intn(12)
		dy := rng.Intn(12)
		b = b.Translate(geom.Pt{X: dx, Y: dy}) // cell coords
		// Keep only pairs that Theorem 2 classifies as independent.
		xt := trackGapCells(a.X0, a.X1, b.X0, b.X1)
		yt := trackGapCells(a.Y0, a.Y1, b.Y0, b.Y1)
		dependent := (xt == 0 && yt <= 2) || (yt == 0 && xt <= 2) ||
			(xt >= 1 && yt >= 1 && xt+yt <= 3)
		if dependent || (xt == 0 && yt == 0) {
			return true
		}
		// Convert to nm.
		anm := cellsToNM(a, ds)
		bnm := cellsToNM(b, ds)
		for _, ca := range []Color{Core, Second} {
			for _, cb := range []Color{Core, Second} {
				ly := Layout{Rules: ds,
					Die:  geom.Rect{X0: -800, Y0: -800, X1: 2000, Y1: 2000},
					Pats: []Pattern{{Net: 0, Color: ca, Rects: []geom.Rect{anm}}, {Net: 1, Color: cb, Rects: []geom.Rect{bnm}}}}
				res := DecomposeCut(ly)
				if res.SideOverlayNM != 0 || len(res.Conflicts) != 0 || len(res.Violations) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// cwire builds a straight wire in cell coordinates.
func cwire(horiz bool, fixed, c0, c1 int) geom.Rect {
	if horiz {
		return geom.Rect{X0: c0, Y0: fixed, X1: c1 + 1, Y1: fixed + 1}
	}
	return geom.Rect{X0: fixed, Y0: c0, X1: fixed + 1, Y1: c1 + 1}
}

func trackGapCells(a0, a1, b0, b1 int) int {
	switch {
	case b0 >= a1:
		return b0 - a1 + 1
	case a0 >= b1:
		return a0 - b1 + 1
	default:
		return 0
	}
}

func cellsToNM(r geom.Rect, ds rules.Set) geom.Rect {
	p, w := ds.Pitch(), ds.WLine
	return geom.Rect{X0: r.X0 * p, Y0: r.Y0 * p, X1: (r.X1-1)*p + w, Y1: (r.Y1-1)*p + w}
}

// TestTrimNoAssistOverlay: in the trim process a lone second wire has both
// long sides fully exposed (no assistant cores) — the overlay source the
// paper attributes to refs. [10]/[11].
func TestTrimNoAssistOverlay(t *testing.T) {
	ds := rules.Node10nm()
	w := nmWire(ds, true, 5, 0, 4) // 180 nm long
	ly := Layout{Rules: ds, Die: geom.Rect{X0: -400, Y0: -400, X1: 1000, Y1: 1000},
		Pats: []Pattern{{Net: 0, Color: Second, Rects: []geom.Rect{w}}}}
	res := DecomposeTrim(ly)
	if res.SideOverlayNM != 2*180 {
		t.Fatalf("trim overlay = %d, want both sides (360)", res.SideOverlayNM)
	}
	// The same wire under the cut process gets assistant cores: clean.
	cut := DecomposeCut(ly)
	if cut.SideOverlayNM != 0 {
		t.Fatalf("cut-process overlay = %d, want 0 (assists)", cut.SideOverlayNM)
	}
}

// TestTrimConflicts: same-mask adjacency conflicts per pattern pair.
func TestTrimConflicts(t *testing.T) {
	a := wire(true, 5, 0, 4)
	b := wire(true, 6, 0, 4)
	res := DecomposeTrim(twoPatternLayout(a, b, Core, Core))
	if len(res.Conflicts) != 1 {
		t.Fatalf("adjacent same-mask pair: %d conflicts, want 1", len(res.Conflicts))
	}
	res = DecomposeTrim(twoPatternLayout(a, b, Core, Second))
	if len(res.Conflicts) != 0 {
		t.Fatalf("different masks: %d conflicts, want 0", len(res.Conflicts))
	}
}

// TestTotalsAccumulate: multi-layer aggregation.
func TestTotalsAccumulate(t *testing.T) {
	a := wire(true, 5, 0, 4)
	b := wire(true, 6, 0, 4)
	bad := twoPatternLayout(a, b, Core, Core) // hard overlays
	ok := twoPatternLayout(a, b, Core, Second)
	results, tot := DecomposeLayers([]Layout{bad, ok})
	if len(results) != 2 {
		t.Fatal("want two layer results")
	}
	if tot.HardOverlays != 2 || tot.SideOverlayNM != 360 {
		t.Fatalf("totals wrong: %+v", tot)
	}
}

// TestDieClipping: assist flanks outside the die are dropped, exposing the
// boundary-side of a second pattern placed at the die edge.
func TestDieClipping(t *testing.T) {
	ds := rules.Node10nm()
	w := nmWire(ds, true, 0, 0, 4) // at the very bottom of the die
	ly := Layout{Rules: ds, Die: geom.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000},
		Pats: []Pattern{{Net: 0, Color: Second, Rects: []geom.Rect{w}}}}
	res := DecomposeCut(ly)
	if res.SideOverlayNM == 0 {
		t.Fatal("bottom flank cannot fit inside the die: expected overlay")
	}
}
