package decomp_test

import (
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// benchLayouts routes a small instance once and returns its per-layer
// layouts — the same geometry profile the router's window checks and
// repair passes feed the oracle.
func benchLayouts(b *testing.B) []decomp.Layout {
	b.Helper()
	ds := rules.Node10nm()
	sp := bench.Spec{Name: "bench", Nets: 120, Tracks: 40, Layers: 3, Seed: 77,
		PinCandidates: 1, AvgHPWL: 5, Blockages: 2}
	res := router.Route(bench.Generate(sp), ds, router.Defaults())
	if res.Routed == 0 {
		b.Fatal("routed nothing")
	}
	var out []decomp.Layout
	for _, ly := range res.Layouts() {
		if len(ly.Pats) > 0 {
			out = append(out, ly)
		}
	}
	if len(out) == 0 {
		b.Fatal("no layouts")
	}
	return out
}

// windowOf trims a layout down to window-check size: the first n patterns,
// matching the handful of nets a windowResolve layout carries.
func windowOf(ly decomp.Layout, n int) decomp.Layout {
	if len(ly.Pats) < n {
		n = len(ly.Pats)
	}
	w := ly
	w.Pats = ly.Pats[:n]
	return w
}

// BenchmarkDecomposeWindow is the windowResolve-shaped call: a small
// multi-net window decomposed over and over (the rip-up loop's hot path).
func BenchmarkDecomposeWindow(b *testing.B) {
	ly := windowOf(benchLayouts(b)[0], 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.DecomposeCutR(ly, nil)
	}
}

// BenchmarkDecomposeWindowEngine is the same call on a held engine — the
// loop shape of DecomposeLayersR and the cache's miss path.
func BenchmarkDecomposeWindowEngine(b *testing.B) {
	ly := windowOf(benchLayouts(b)[0], 8)
	e := decomp.Acquire()
	defer e.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DecomposeCut(ly, nil)
	}
}

// BenchmarkDecomposeWindowCached is the memoized window check: every
// iteration after the first is a content-addressed hit.
func BenchmarkDecomposeWindowCached(b *testing.B) {
	ly := windowOf(benchLayouts(b)[0], 8)
	c := decomp.NewCache(0)
	rec := obs.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecomposeCut(ly, rec)
	}
}

// BenchmarkDecomposeFull decomposes a whole routed layer — the repair
// pass / final metrics shape.
func BenchmarkDecomposeFull(b *testing.B) {
	lys := benchLayouts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.DecomposeCutR(lys[i%len(lys)], nil)
	}
}
