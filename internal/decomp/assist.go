package decomp

import (
	"sort"

	"sadproute/internal/geom"
	"sadproute/internal/interval"
	"sadproute/internal/rules"
)

// tgt is one target rectangle with its ownership metadata.
type tgt struct {
	pat   int
	net   int
	color Color
	rect  geom.Rect
}

// collectTargets flattens the layout's patterns into the engine's target
// list plus a spatial index over it. Unassigned patterns are recorded as
// violations and treated as core so that processing can continue.
func (e *Engine) collectTargets(ly Layout, res *Result) {
	e.ts = e.ts[:0]
	for pi, p := range ly.Pats {
		c := p.Color
		if c == Unassigned {
			res.addViolationNet(p.Net, "pattern %d (net %d) has no mask assignment", pi, p.Net)
			c = Core
		}
		for _, r := range p.Rects {
			if r.Empty() {
				continue
			}
			e.ts = append(e.ts, tgt{pat: pi, net: p.Net, color: c, rect: r})
		}
	}
	e.tix.reset(indexCell(ly))
	for i, t := range e.ts {
		e.tix.add(i, t.rect)
	}
}

func indexCell(ly Layout) int {
	// A handful of track pitches per bucket keeps proximity queries local.
	return 5 * ly.Rules.Pitch()
}

// buildAssists synthesizes assistant core patterns for every second-colored
// target rectangle: the four slabs of the L-infinity ring at spacer distance
// w_spacer with width w_core. The synthesis applies the paper's implicit
// optimization policy:
//
//   - Tip slabs (protecting a wire end cap) are dropped when they would
//     merge with a foreign core target: a tip overlay is non-critical, so
//     trading it away avoids the merge-induced side overlay on the core.
//   - Side slabs are trimmed back to d_core clearance from a foreign core
//     target when the trimmed slab still spans the entire side it protects
//     (the wrap-around overhang is sacrificed); when the side would lose
//     flank coverage the merge is unavoidable — exactly the paper's type
//     2-b mechanism ("the assistant core patterns must be merged").
//   - No slab may come closer than w_spacer to ANY second target (its
//     spacer would destroy that target); the slab's own pattern sits at
//     exactly w_spacer, the self-aligned fit.
//   - Slabs never overlap core targets (subtracted), respect the die, and
//     every surviving piece obeys the core minimum width w_core.
//
// Assist-assist proximity is left to the merge stage: merged or bridged
// assists are harmless because the cut boundary then touches no target.
// Surviving slabs append to e.mats.
func (e *Engine) buildAssists(ly Layout) {
	ds := ly.Rules
	ws, wc := ds.WSpacer, ds.WCore
	out0, out1 := ws, ws+wc
	ts, tix := e.ts, &e.tix
	near := e.near[:0]
	for _, t := range ts {
		if t.color != Second {
			continue
		}
		r := t.rect
		type slab struct {
			rect  geom.Rect
			horiz bool        // slab's long axis runs along X
			span  interval.Iv // the side interval the slab must flank
			tip   bool
		}
		slabs := [4]slab{
			{geom.Rect{X0: r.X0 - out1, Y0: r.Y0 - out1, X1: r.X0 - out0, Y1: r.Y1 + out1},
				false, interval.Iv{Lo: r.Y0, Hi: r.Y1}, isTip(r, SideLeft)},
			{geom.Rect{X0: r.X1 + out0, Y0: r.Y0 - out1, X1: r.X1 + out1, Y1: r.Y1 + out1},
				false, interval.Iv{Lo: r.Y0, Hi: r.Y1}, isTip(r, SideRight)},
			{geom.Rect{X0: r.X0 - out1, Y0: r.Y0 - out1, X1: r.X1 + out1, Y1: r.Y0 - out0},
				true, interval.Iv{Lo: r.X0, Hi: r.X1}, isTip(r, SideBottom)},
			{geom.Rect{X0: r.X0 - out1, Y0: r.Y1 + out0, X1: r.X1 + out1, Y1: r.Y1 + out1},
				true, interval.Iv{Lo: r.X0, Hi: r.X1}, isTip(r, SideTop)},
		}
		for _, sl := range slabs {
			f, ok := sl.rect, true
			if !ly.NaiveAssists {
				f, ok = e.shapeSlab(ds, sl.rect, sl.horiz, sl.span, sl.tip, t.pat)
			}
			if !ok {
				continue
			}
			f = f.Intersect(ly.Die)
			if f.Empty() {
				continue
			}
			// Subtract in target order, not index-bucket order: the union is
			// order-independent but the rect decomposition (and with it which
			// slivers fall under the w_core minimum) is not, and bucket scan
			// order follows absolute coordinates.
			pieces := append(e.pieces[:0], f)
			near = near[:0]
			tix.query(f.Expand(ws), func(oi int) { near = append(near, oi) })
			sort.Ints(near)
			for _, oi := range near {
				if len(pieces) == 0 {
					break
				}
				o := ts[oi]
				var sub geom.Rect
				if o.color == Second {
					sub = o.rect.Expand(ws)
				} else {
					sub = o.rect
				}
				pieces = geom.SubtractAll(pieces, []geom.Rect{sub})
			}
			for _, pc := range pieces {
				if pc.W() >= wc && pc.H() >= wc {
					e.mats = append(e.mats, Mat{Kind: MatAssist, Pat: t.pat, Rect: pc})
				}
			}
			e.pieces = pieces[:0]
		}
	}
	e.near = near[:0]
}

// shapeSlab applies the drop/trim policy against foreign core targets and
// returns the (possibly shortened) slab, or ok=false when a tip slab is
// dropped.
func (e *Engine) shapeSlab(ds rules.Set, f geom.Rect, horiz bool, span interval.Iv, tip bool, ownPat int) (geom.Rect, bool) {
	ts, tix := e.ts, &e.tix
	dcore := ds.DCore
	drop := false
	along := &e.along
	along.Reset()
	along.Add(alongIv(f, horiz))
	// The trim below mutates `along` step by step, so the outcome depends
	// on the order foreign cores are considered; canonicalize to target
	// order (bucket-scan order tracks absolute coordinates).
	near := e.shapeNear[:0]
	tix.query(f.Expand(dcore), func(oi int) { near = append(near, oi) })
	sort.Ints(near)
	e.shapeNear = near[:0]
	for _, oi := range near {
		o := ts[oi]
		if o.color != Core || o.pat == ownPat {
			continue
		}
		cur := setToRect(f, along, horiz)
		if cur.Empty() {
			continue
		}
		gap, positive := gapLinf(cur, o.rect)
		if !positive || gap >= dcore {
			continue
		}
		if tip {
			drop = true
			break
		}
		// Try trimming the along-extent to d_core clearance.
		oa := alongIv(o.rect, horiz)
		trial := &e.trial
		trial.CopyFrom(along)
		trial.Subtract(interval.Iv{Lo: oa.Lo - dcore, Hi: oa.Hi + dcore})
		trimmed := false
		for _, iv := range trial.Intervals() {
			if iv.Lo <= span.Lo && iv.Hi >= span.Hi {
				along.Reset()
				along.Add(iv)
				trimmed = true
				break
			}
		}
		if trimmed {
			continue
		}
		// Full clearance is impossible. When the foreign core directly
		// faces the protected span, drop the wrap-around overhang so the
		// unavoidable merge is as short as possible (the merged cut then
		// lands only on the directly facing extent). When the contact is
		// wrap-only, keep the wrap: the merge lands on a tip, which is
		// non-critical.
		if oa.Overlaps(span) {
			cur2 := along.Intervals()
			if len(cur2) == 1 && (cur2[0].Lo < span.Lo || cur2[0].Hi > span.Hi) {
				along.Reset()
				along.Add(span)
			}
		}
	}
	if drop {
		return geom.Rect{}, false
	}
	return setToRect(f, along, horiz), true
}

func alongIv(r geom.Rect, horiz bool) interval.Iv {
	if horiz {
		return interval.Iv{Lo: r.X0, Hi: r.X1}
	}
	return interval.Iv{Lo: r.Y0, Hi: r.Y1}
}

// setToRect rebuilds the slab rect with its along-extent replaced by the
// single interval held in set (empty rect when the set is empty).
func setToRect(f geom.Rect, set *interval.Set, horiz bool) geom.Rect {
	ivs := set.Intervals()
	if len(ivs) == 0 {
		return geom.Rect{}
	}
	iv := ivs[0]
	if horiz {
		return geom.Rect{X0: iv.Lo, Y0: f.Y0, X1: iv.Hi, Y1: f.Y1}
	}
	return geom.Rect{X0: f.X0, Y0: iv.Lo, X1: f.X1, Y1: iv.Hi}
}
