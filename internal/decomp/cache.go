package decomp

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"

	"sadproute/internal/obs"
)

// DefaultCacheCap is the entry bound of a Cache built with NewCache(0):
// large enough that a full routing run's window checks rarely evict, small
// enough that a pathological run stays bounded.
const DefaultCacheCap = 4096

// Cache memoizes DecomposeCut by layout content. The key is the canonical
// byte serialization of (Rules, Die, NaiveAssists, patterns sorted by net
// with colors and rects); entries are found via an FNV-1a hash of that
// serialization and verified against the full key bytes, so hash
// collisions cannot alias two layouts. Eviction is deterministic FIFO:
// when the cache is full, the oldest entry leaves, independent of hit
// pattern, so two runs with the same call sequence keep identical
// contents.
//
// A hit returns the stored *Result unchanged. Cached Results are SHARED
// and must be treated as immutable by every caller (Result carries the
// //sadp:immutable marker, so the sadplint immutable rule rejects writes
// outside this package); Paranoid mode retains deep copies so CheckIntegrity can
// prove nobody wrote to them.
//
// A Cache is single-goroutine state, like the Engine: the router's window
// checks and repair passes run serially even under Options.NetWorkers.
// Methods are nil-safe; a nil *Cache degrades to the uncached oracle.
type Cache struct {
	// Paranoid retains a private deep copy of every stored Result;
	// CheckIntegrity compares the shared Results against the copies to
	// detect callers mutating cache-owned data. Debug/test facility.
	Paranoid bool

	cap     int
	buckets map[uint64][]*cacheEntry
	fifo    []*cacheEntry // insertion order, oldest first
	key     []byte        // serialization scratch
	order   []int         // pattern sort scratch
	eng     *Engine       // owned scratch engine for misses
	builds  int64         // canonical key serializations (KeyBuilds)
}

type cacheEntry struct {
	hash uint64
	key  []byte
	res  *Result
	snap *Result // deep copy, Paranoid only
}

// NewCache returns an empty cache bounded to capacity entries
// (DefaultCacheCap when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:     capacity,
		buckets: make(map[uint64][]*cacheEntry),
		eng:     &Engine{},
	}
}

// Len returns the number of cached layouts.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.fifo)
}

// DecomposeCut returns the memoized decomposition of ly, running the
// oracle only on the first sighting of a layout. A nil receiver is the
// uncached oracle. Hits increment only decomp.cache_hits — the decomp.*
// work counters record real oracle runs, so equivalence tests zero the
// whole family when diffing cached vs uncached snapshots.
func (c *Cache) DecomposeCut(ly Layout, rec *obs.Recorder) *Result {
	if c == nil {
		return DecomposeCutR(ly, rec)
	}
	h := c.buildKey(ly)
	for _, ent := range c.buckets[h] {
		if ent.hash == h && bytesEqual(ent.key, c.key) {
			rec.Inc(obs.CtrDecompCacheHits)
			return ent.res
		}
	}
	rec.Inc(obs.CtrDecompCacheMisses)
	// Copy the key bytes BEFORE running the oracle, not after: c.key is
	// shared serialization scratch, and a caller layered on this cache
	// (the incremental decomposition engine computes sub-layouts through
	// it) may re-enter DecomposeCut while the miss is being filled. The
	// copy pins this entry's key so a nested buildKey cannot clobber it —
	// and the entry is stored from the copy, never re-serialized
	// (BenchmarkDecompCacheMiss asserts exactly one build per lookup).
	key := append([]byte(nil), c.key...)
	res := c.eng.DecomposeCut(ly, rec)
	ent := &cacheEntry{hash: h, key: key, res: res}
	if c.Paranoid {
		ent.snap = deepCopyResult(res)
	}
	if len(c.fifo) >= c.cap {
		c.evictOldest(rec)
	}
	c.buckets[h] = append(c.buckets[h], ent)
	c.fifo = append(c.fifo, ent)
	return res
}

// evictOldest removes the FIFO head from both the queue and its bucket.
func (c *Cache) evictOldest(rec *obs.Recorder) {
	old := c.fifo[0]
	copy(c.fifo, c.fifo[1:])
	c.fifo = c.fifo[:len(c.fifo)-1]
	b := c.buckets[old.hash]
	for i, ent := range b {
		if ent == old {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(c.buckets, old.hash)
	} else {
		c.buckets[old.hash] = b
	}
	rec.Inc(obs.CtrDecompCacheEvictions)
}

// CheckIntegrity compares every shared Result against its Paranoid-mode
// deep copy and reports the first divergence — evidence that a caller
// wrote through a cached *Result. Nil when the cache is consistent, nil
// receiver, or Paranoid was never set.
func (c *Cache) CheckIntegrity() error {
	if c == nil {
		return nil
	}
	for i, ent := range c.fifo {
		if ent.snap == nil {
			continue
		}
		if !reflect.DeepEqual(ent.res, ent.snap) {
			return fmt.Errorf("decomp cache entry %d mutated after caching (shared Result written to)", i)
		}
	}
	return nil
}

// KeyBuilds returns how many canonical key serializations the cache has
// performed — exactly one per DecomposeCut lookup. Regression guard for
// the miss path: a reintroduced re-serialization (e.g. rebuilding the key
// to store the entry after the oracle ran) doubles this per miss, which
// BenchmarkDecompCacheMiss asserts against.
func (c *Cache) KeyBuilds() int64 {
	if c == nil {
		return 0
	}
	return c.builds
}

// buildKey serializes ly into c.key canonically and returns its FNV-1a
// hash. Patterns are ordered by net id (stable for duplicates), so any
// two layouts with the same geometry, rules and coloring — however their
// pattern lists are ordered — share one entry.
func (c *Cache) buildKey(ly Layout) uint64 {
	c.builds++
	c.key, c.order = layoutKey(c.key[:0], c.order[:0], ly)
	return fnv1a(c.key)
}

// layoutKey appends the canonical byte serialization of ly to k: rules,
// die, assist mode, then the patterns sorted by net id (stable for
// duplicates) with colors and rects. Shared by the memo cache (entry
// keys) and the incremental engine (unchanged-layout detection and delta
// keys, which are simply the canonical keys of sub-layouts). order is
// sort scratch; the (possibly regrown) key and scratch are returned for
// reuse.
func layoutKey(k []byte, order []int, ly Layout) ([]byte, []int) {
	k = appendInts(k, ly.Rules.WLine, ly.Rules.WSpacer, ly.Rules.WCut,
		ly.Rules.WCore, ly.Rules.DCut, ly.Rules.DCore, ly.Rules.DOverlap)
	k = appendInts(k, ly.Die.X0, ly.Die.Y0, ly.Die.X1, ly.Die.Y1)
	if ly.NaiveAssists {
		k = append(k, 1)
	} else {
		k = append(k, 0)
	}
	order = order[:0]
	for i := range ly.Pats {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ly.Pats[order[a]].Net < ly.Pats[order[b]].Net
	})
	k = appendInts(k, len(ly.Pats))
	for _, pi := range order {
		p := &ly.Pats[pi]
		k = appendInts(k, p.Net, int(p.Color), len(p.Rects))
		for _, r := range p.Rects {
			k = appendInts(k, r.X0, r.Y0, r.X1, r.Y1)
		}
	}
	return k, order[:0]
}

func appendInts(k []byte, vs ...int) []byte {
	for _, v := range vs {
		k = binary.AppendVarint(k, int64(v))
	}
	return k
}

// fnv1a is the 64-bit FNV-1a hash (inlined to avoid the hash.Hash
// allocation of hash/fnv on this per-window-check path).
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deepCopyResult clones a Result including every slice (all elements are
// plain values, so one level suffices).
func deepCopyResult(r *Result) *Result {
	cp := *r
	cp.Overlays = append([]Overlay(nil), r.Overlays...)
	cp.Conflicts = append([]CutConflict(nil), r.Conflicts...)
	cp.Violations = append([]string(nil), r.Violations...)
	cp.BadNets = append([]int(nil), r.BadNets...)
	cp.Materials = append([]Mat(nil), r.Materials...)
	return &cp
}
