package decomp

import "sadproute/internal/geom"

// gapLinf returns the L-infinity clearance between two rects and whether
// they are disjoint with a positive gap.
func gapLinf(a, b geom.Rect) (int, bool) {
	gx, gy := a.GapX(b), a.GapY(b)
	if gx == 0 && gy == 0 {
		return 0, false // overlapping or touching: already one blob
	}
	if gx > gy {
		return gx, true
	}
	return gy, true
}

// bridgeRect returns the rectangle spanning the gap between two disjoint
// rects: the overlap interval on the aligned axis (or the open gap interval
// for corner-diagonal pairs) crossed with the gap interval.
func bridgeRect(a, b geom.Rect) geom.Rect {
	var x0, x1, y0, y1 int
	if a.OverlapX(b) > 0 {
		x0, x1 = maxi(a.X0, b.X0), mini(a.X1, b.X1)
	} else if a.X1 <= b.X0 {
		x0, x1 = a.X1, b.X0
	} else {
		x0, x1 = b.X1, a.X0
	}
	if a.OverlapY(b) > 0 {
		y0, y1 = maxi(a.Y0, b.Y0), mini(a.Y1, b.Y1)
	} else if a.Y1 <= b.Y0 {
		y0, y1 = a.Y1, b.Y0
	} else {
		y0, y1 = b.Y1, a.Y0
	}
	return geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// dsu is a plain union-find over material indices; material rects that touch
// or overlap are one mask blob and never need bridging.
type dsu struct{ p []int }

func newDSU(n int) *dsu {
	d := &dsu{p: make([]int, n)}
	for i := range d.p {
		d.p[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

func (d *dsu) union(a, b int) { d.p[d.find(a)] = d.find(b) }

// grow extends the forest to n elements.
func (d *dsu) grow(n int) {
	for len(d.p) < n {
		d.p = append(d.p, len(d.p))
	}
}

// buildBridges realizes the merge technique: any two pieces of core-mask
// material in different blobs closer than d_core cannot coexist on the core
// mask, so they are merged; the merge material is removed by the cut mask,
// inducing overlays where it touches target boundaries.
//
//   - Straight merges (the pair overlaps in one axis) get a thin bridge
//     spanning the gap.
//   - Corner merges (diagonal pairs) get a thick bridge — the corner gap
//     square expanded by w_core so the mask connection meets minimum width;
//     it legitimately overlaps its two parents. When the thick bridge would
//     collide with an unrelated target (or encroach a second pattern), and a
//     parent is an assistant core, the assist is trimmed back to d_core
//     clearance instead (real decomposers sacrifice optional assist material
//     before breaking a target).
//
// Bridging iterates until no blob pair remains within d_core.
func buildBridges(ly Layout, mats []Mat, ts []tgt, tix *rectIndex, res *Result) []Mat {
	ds := ly.Rules
	comp := newDSU(len(mats))
	for iter := 0; iter < 6; iter++ {
		comp.grow(len(mats))
		ix := newRectIndex(indexCell(ly))
		for i, m := range mats {
			ix.add(i, m.Rect)
		}
		// Unite touching blobs first so bridges never span through material.
		for i := range mats {
			if mats[i].Rect.Empty() {
				continue
			}
			ix.query(mats[i].Rect.Expand(1), func(j int) {
				if j <= i || mats[j].Rect.Empty() {
					return
				}
				if _, positive := gapLinf(mats[i].Rect, mats[j].Rect); !positive {
					comp.union(i, j)
				}
			})
		}
		var added []Mat
		for i := range mats {
			a := mats[i]
			if a.Rect.Empty() {
				continue
			}
			ix.query(a.Rect.Expand(ds.DCore), func(j int) {
				if j <= i {
					return
				}
				b := mats[j]
				if b.Rect.Empty() || comp.find(i) == comp.find(j) {
					return
				}
				gap, positive := gapLinf(a.Rect, b.Rect)
				if !positive || gap >= ds.DCore {
					return
				}
				br := bridgeRect(a.Rect, b.Rect)
				// Diagonal pairs include the degenerate case where the two
				// rects touch in one axis projection (zero-width cross):
				// without special handling the bridge is empty and the pair
				// would be marked merged while staying physically apart —
				// two printed features under d_core. Widen the touch line
				// to w_core so the connection is real.
				corner := a.Rect.OverlapX(b.Rect) <= 0 && a.Rect.OverlapY(b.Rect) <= 0
				if corner {
					if br.X1 <= br.X0 {
						br.X0, br.X1 = br.X0-ds.WCore/2, br.X0+ds.WCore/2
					}
					if br.Y1 <= br.Y0 {
						br.Y0, br.Y1 = br.Y0-ds.WCore/2, br.Y0+ds.WCore/2
					}
					thick := br.Expand(ds.WCore)
					switch {
					case !bridgeCollision(ly, thick, a.Rect, b.Rect, ts, tix):
						br = thick
					case trimAssistPair(ds.DCore, ds.WCore, mats, i, j):
						return // proximity resolved by trimming the assist
					default:
						// Fall back to the point-contact corner bridge: it
						// lies entirely in the spacing cross, and core-mask
						// MRC violations over spacer are waivable (Ma et
						// al., cited in Section II-B). No overlay results.
					}
				} else {
					reportBridge(ly, br, a.Rect, b.Rect, ts, tix, res)
				}
				if !br.Empty() {
					added = append(added, Mat{Kind: MatBridge, Pat: -1, Rect: br})
				}
				comp.grow(len(mats) + len(added))
				comp.union(i, j)
			})
		}
		if len(added) == 0 {
			break
		}
		base := len(mats)
		mats = append(mats, added...)
		comp.grow(len(mats))
		// A bridge belongs to the blob it connects.
		for k := base; k < len(mats); k++ {
			comp.union(k, k) // ensure slot exists; adjacency unite happens next iter
		}
	}
	// Count the surviving mask blobs (distinct components over non-empty
	// material) for the observability snapshot.
	comp.grow(len(mats))
	roots := map[int]bool{}
	for i := range mats {
		if !mats[i].Rect.Empty() {
			roots[comp.find(i)] = true
		}
	}
	res.Blobs = len(roots)
	return mats
}

// bridgeCollision reports whether a (thick) bridge hits target geometry
// other than its own parents.
func bridgeCollision(ly Layout, br, pa, pb geom.Rect, ts []tgt, tix *rectIndex) bool {
	ws := ly.Rules.WSpacer
	hit := false
	tix.query(br.Expand(ws), func(oi int) {
		if hit {
			return
		}
		o := ts[oi]
		if o.rect == pa || o.rect == pb {
			return
		}
		if br.Intersects(o.rect) {
			hit = true
			return
		}
		if o.color == Second && br.Intersects(o.rect.Expand(ws)) {
			hit = true
		}
	})
	return hit
}

// reportBridge records violations for a bridge that collides with targets.
func reportBridge(ly Layout, br, pa, pb geom.Rect, ts []tgt, tix *rectIndex, res *Result) {
	ws := ly.Rules.WSpacer
	tix.query(br.Expand(ws), func(oi int) {
		o := ts[oi]
		if o.rect == pa || o.rect == pb {
			return
		}
		if br.Intersects(o.rect) {
			res.addViolationNet(o.net, "merge bridge %v overlaps target of net %d", br, o.net)
			return
		}
		if o.color == Second && br.Intersects(o.rect.Expand(ws)) {
			res.addViolationNet(o.net, "merge bridge %v encroaches on second pattern of net %d", br, o.net)
		}
	})
}

// trimAssistPair tries to pull one assistant-core parent of a corner pair
// back to d_core clearance, shrinking along whichever axis preserves the
// core minimum width. It mutates mats in place and reports success.
func trimAssistPair(dcore, wc int, mats []Mat, i, j int) bool {
	for _, k := range [2]int{i, j} {
		o := j
		if k == j {
			o = i
		}
		if mats[k].Kind != MatAssist {
			continue
		}
		if nr, ok := trimAway(mats[k].Rect, mats[o].Rect, dcore, wc); ok {
			mats[k].Rect = nr
			return true
		}
	}
	return false
}

// trimAway shrinks rect a away from rect b until their gap along one axis
// reaches at least d, preferring the axis where a keeps the most extent.
func trimAway(a, b geom.Rect, d, minw int) (geom.Rect, bool) {
	var cands []geom.Rect
	// Shrink in X.
	if a.X1 <= b.X0 { // a is west of b
		c := a
		c.X1 = b.X0 - d
		cands = append(cands, c)
	} else if b.X1 <= a.X0 {
		c := a
		c.X0 = b.X1 + d
		cands = append(cands, c)
	}
	// Shrink in Y.
	if a.Y1 <= b.Y0 {
		c := a
		c.Y1 = b.Y0 - d
		cands = append(cands, c)
	} else if b.Y1 <= a.Y0 {
		c := a
		c.Y0 = b.Y1 + d
		cands = append(cands, c)
	}
	best := geom.Rect{}
	ok := false
	for _, c := range cands {
		if c.W() < minw || c.H() < minw {
			continue
		}
		if !ok || c.Area() > best.Area() {
			best, ok = c, true
		}
	}
	return best, ok
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
