package decomp

import (
	"sort"

	"sadproute/internal/geom"
)

// gapLinf returns the L-infinity clearance between two rects and whether
// they are disjoint with a positive gap.
func gapLinf(a, b geom.Rect) (int, bool) {
	gx, gy := a.GapX(b), a.GapY(b)
	if gx == 0 && gy == 0 {
		return 0, false // overlapping or touching: already one blob
	}
	if gx > gy {
		return gx, true
	}
	return gy, true
}

// bridgeRect returns the rectangle spanning the gap between two disjoint
// rects: the overlap interval on the aligned axis (or the open gap interval
// for corner-diagonal pairs) crossed with the gap interval.
func bridgeRect(a, b geom.Rect) geom.Rect {
	var x0, x1, y0, y1 int
	if a.OverlapX(b) > 0 {
		x0, x1 = maxi(a.X0, b.X0), mini(a.X1, b.X1)
	} else if a.X1 <= b.X0 {
		x0, x1 = a.X1, b.X0
	} else {
		x0, x1 = b.X1, a.X0
	}
	if a.OverlapY(b) > 0 {
		y0, y1 = maxi(a.Y0, b.Y0), mini(a.Y1, b.Y1)
	} else if a.Y1 <= b.Y0 {
		y0, y1 = a.Y1, b.Y0
	} else {
		y0, y1 = b.Y1, a.Y0
	}
	return geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// dsu is a plain union-find over material indices; material rects that touch
// or overlap are one mask blob and never need bridging.
type dsu struct{ p []int }

// reset re-initializes the union-find for n elements, reusing its backing
// array (pooled engines rebuild connectivity every merge iteration).
func (d *dsu) reset(n int) {
	if cap(d.p) < n {
		d.p = make([]int, n)
	} else {
		d.p = d.p[:n]
	}
	for i := range d.p {
		d.p[i] = i
	}
}

func (d *dsu) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

func (d *dsu) union(a, b int) { d.p[d.find(a)] = d.find(b) }

// buildBridges realizes the merge technique: any two pieces of core-mask
// material in different blobs closer than d_core cannot coexist on the core
// mask, so they are merged; the merge material is removed by the cut mask,
// inducing overlays where it touches target boundaries.
//
//   - Straight merges (the pair overlaps in one axis) get a thin bridge
//     spanning the gap.
//   - Corner merges (diagonal pairs) get a thick bridge — the corner gap
//     square expanded by w_core so the mask connection meets minimum width;
//     it legitimately overlaps its two parents. When the thick bridge would
//     collide with an unrelated target (or encroach a second pattern), and a
//     parent is an assistant core, the assist is trimmed back to d_core
//     clearance instead (real decomposers sacrifice optional assist material
//     before breaking a target).
//
// Bridging iterates until no blob pair remains within d_core. Each iteration
// resolves ALL close cross-blob pairs against a geometry snapshot taken at
// its start: physically, every pair of mask features under d_core coalesces
// (the merge is not a choice of spanning subset), and algorithmically no
// decision ever observes a mid-iteration union or trim. The outcome is then
// a function of the layout geometry alone — material enumeration order
// (which tracks absolute coordinates) cannot influence the verdict, so
// rigid transforms of the layout preserve it.
func (e *Engine) buildBridges(ly Layout, res *Result) {
	ds := ly.Rules
	mats, ts, tix := e.mats, e.ts, &e.tix
	for iter := 0; iter < 6; iter++ {
		// Connectivity is rebuilt from the actual geometry every iteration:
		// a trim can pull an assist off material it used to touch, and a
		// stale union would then hide the fresh sub-d_core gap forever.
		comp := &e.comp
		comp.reset(len(mats))
		ix := &e.bix
		ix.reset(indexCell(ly))
		for i, m := range mats {
			ix.add(i, m.Rect)
		}
		// Unite touching blobs first so bridges never span through material.
		for i := range mats {
			if mats[i].Rect.Empty() {
				continue
			}
			ix.query(mats[i].Rect.Expand(1), func(j int) {
				if j <= i || mats[j].Rect.Empty() {
					return
				}
				if _, positive := gapLinf(mats[i].Rect, mats[j].Rect); !positive {
					comp.union(i, j)
				}
			})
		}

		// Snapshot the geometry and collect every cross-blob pair closer
		// than d_core. The pair set is determined by the snapshot, not by
		// any processing order.
		snap := e.snap[:0]
		for i := range mats {
			snap = append(snap, mats[i].Rect)
		}
		e.snap = snap
		pairs := e.pairs[:0]
		for i := range mats {
			if snap[i].Empty() {
				continue
			}
			ix.query(snap[i].Expand(ds.DCore), func(j int) {
				if j <= i || snap[j].Empty() || comp.find(i) == comp.find(j) {
					return
				}
				if gap, positive := gapLinf(snap[i], snap[j]); positive && gap < ds.DCore {
					pairs = append(pairs, matPair{i, j})
				}
			})
		}
		e.pairs = pairs[:0]
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].i != pairs[b].i {
				return pairs[a].i < pairs[b].i
			}
			return pairs[a].j < pairs[b].j
		})

		// Widen the degenerate diagonal case where the two rects touch in
		// one axis projection (zero-width cross): without this the bridge
		// is empty and the pair would be marked merged while staying
		// physically apart — two printed features under d_core.
		cornerBridge := func(a, b geom.Rect) geom.Rect {
			br := bridgeRect(a, b)
			if br.X1 <= br.X0 {
				br.X0, br.X1 = br.X0-ds.WCore/2, br.X0+ds.WCore/2
			}
			if br.Y1 <= br.Y0 {
				br.Y0, br.Y1 = br.Y0-ds.WCore/2, br.Y0+ds.WCore/2
			}
			return br
		}

		added := e.added[:0]
		if e.trimRect == nil {
			e.trimRect = map[int]geom.Rect{} // assist index -> intersected trim result
			e.trimPend = map[int][]matPair{} // assist index -> pairs relying on that trim
		} else {
			clear(e.trimRect)
			clear(e.trimPend)
		}
		trimRect, trimPend := e.trimRect, e.trimPend
		for _, p := range pairs {
			a, b := snap[p.i], snap[p.j]
			var br geom.Rect
			if a.OverlapX(b) <= 0 && a.OverlapY(b) <= 0 {
				br = cornerBridge(a, b)
				thick := br.Expand(ds.WCore)
				switch nr, k, ok := trimRequest(ds.DCore, ds.WCore, mats, snap, p.i, p.j); {
				case !bridgeCollision(ly, thick, a, b, ts, tix):
					br = thick
				case ok:
					// Proximity resolvable by trimming the assist parent.
					// Trims against several partners intersect — the
					// intersection clears each of them and is commutative,
					// so the request order is immaterial.
					if cur, have := trimRect[k]; have {
						nr = cur.Intersect(nr)
					}
					trimRect[k] = nr
					trimPend[k] = append(trimPend[k], p)
					continue
				default:
					// Fall back to the point-contact corner bridge: it
					// lies entirely in the spacing cross, and core-mask
					// MRC violations over spacer are waivable (Ma et
					// al., cited in Section II-B). No overlay results.
				}
			} else {
				br = bridgeRect(a, b)
				reportBridge(ly, br, a, b, ts, tix, res)
			}
			if !br.Empty() {
				added = append(added, Mat{Kind: MatBridge, Pat: -1, Rect: br})
			}
		}

		// Apply trims whose intersected result still meets the core
		// minimum; pairs whose trim collapsed revert to point-contact
		// bridges (real decomposers sacrifice optional assist material
		// before breaking a target).
		tks := e.tks[:0]
		for k := range trimRect {
			tks = append(tks, k)
		}
		sort.Ints(tks)
		e.tks = tks[:0]
		trimmed := false
		for _, k := range tks {
			nr := trimRect[k]
			if !nr.Empty() && nr.W() >= ds.WCore && nr.H() >= ds.WCore {
				mats[k].Rect = nr
				trimmed = true
				continue
			}
			for _, p := range trimPend[k] {
				added = append(added, Mat{Kind: MatBridge, Pat: -1, Rect: cornerBridge(snap[p.i], snap[p.j])})
			}
		}

		// A trim-only iteration is not a fixed point: the trim may have
		// opened a sub-d_core gap to formerly-touching material, which the
		// next iteration's rebuilt connectivity will catch and bridge.
		e.added = added[:0]
		if len(added) == 0 && !trimmed {
			break
		}
		mats = append(mats, added...)
	}
	e.mats = mats
	// Count the surviving mask blobs (distinct touching-components over
	// non-empty material) for the observability snapshot.
	comp := &e.comp
	comp.reset(len(mats))
	ix := &e.bix
	ix.reset(indexCell(ly))
	for i, m := range mats {
		ix.add(i, m.Rect)
	}
	for i := range mats {
		if mats[i].Rect.Empty() {
			continue
		}
		ix.query(mats[i].Rect.Expand(1), func(j int) {
			if j <= i || mats[j].Rect.Empty() {
				return
			}
			if _, positive := gapLinf(mats[i].Rect, mats[j].Rect); !positive {
				comp.union(i, j)
			}
		})
	}
	roots := map[int]bool{}
	for i := range mats {
		if !mats[i].Rect.Empty() {
			roots[comp.find(i)] = true
		}
	}
	res.Blobs = len(roots)
}

// bridgeCollision reports whether a (thick) bridge hits target geometry
// other than its own parents.
func bridgeCollision(ly Layout, br, pa, pb geom.Rect, ts []tgt, tix *rectIndex) bool {
	ws := ly.Rules.WSpacer
	hit := false
	tix.query(br.Expand(ws), func(oi int) {
		if hit {
			return
		}
		o := ts[oi]
		if o.rect == pa || o.rect == pb {
			return
		}
		if br.Intersects(o.rect) {
			hit = true
			return
		}
		if o.color == Second && br.Intersects(o.rect.Expand(ws)) {
			hit = true
		}
	})
	return hit
}

// reportBridge records violations for a bridge that collides with targets.
func reportBridge(ly Layout, br, pa, pb geom.Rect, ts []tgt, tix *rectIndex, res *Result) {
	ws := ly.Rules.WSpacer
	tix.query(br.Expand(ws), func(oi int) {
		o := ts[oi]
		if o.rect == pa || o.rect == pb {
			return
		}
		if br.Intersects(o.rect) {
			res.addViolationNet(o.net, "merge bridge %v overlaps target of net %d", br, o.net)
			return
		}
		if o.color == Second && br.Intersects(o.rect.Expand(ws)) {
			res.addViolationNet(o.net, "merge bridge %v encroaches on second pattern of net %d", br, o.net)
		}
	})
}

// trimRequest tries to pull one assistant-core parent of a corner pair back
// to d_core clearance from the other, computing against the snapshot
// geometry. When both parents are trimmable assists it keeps the one that
// retains the most material — an orientation-free criterion, so mirrored
// layouts make the mirrored choice.
func trimRequest(dcore, wc int, mats []Mat, snap []geom.Rect, i, j int) (geom.Rect, int, bool) {
	best, bk, ok := geom.Rect{}, 0, false
	for _, k := range [2]int{i, j} {
		o := i + j - k
		if mats[k].Kind != MatAssist {
			continue
		}
		if nr, got := trimAway(snap[k], snap[o], dcore, wc); got {
			if !ok || nr.Area() > best.Area() {
				best, bk, ok = nr, k, true
			}
		}
	}
	return best, bk, ok
}

// trimAway shrinks rect a away from rect b until their gap along one axis
// reaches at least d, preferring the axis where a keeps the most extent.
func trimAway(a, b geom.Rect, d, minw int) (geom.Rect, bool) {
	var cands []geom.Rect
	// Shrink in X.
	if a.X1 <= b.X0 { // a is west of b
		c := a
		c.X1 = b.X0 - d
		cands = append(cands, c)
	} else if b.X1 <= a.X0 {
		c := a
		c.X0 = b.X1 + d
		cands = append(cands, c)
	}
	// Shrink in Y.
	if a.Y1 <= b.Y0 {
		c := a
		c.Y1 = b.Y0 - d
		cands = append(cands, c)
	} else if b.Y1 <= a.Y0 {
		c := a
		c.Y0 = b.Y1 + d
		cands = append(cands, c)
	}
	best := geom.Rect{}
	ok := false
	for _, c := range cands {
		if c.W() < minw || c.H() < minw {
			continue
		}
		if !ok || c.Area() > best.Area() {
			best, ok = c, true
		}
	}
	return best, ok
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
