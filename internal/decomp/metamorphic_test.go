package decomp_test

import (
	"testing"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// The metamorphic suite checks the oracle's geometric equivariance: the
// decomposition verdict (hard overlays, cut conflicts, violations) and
// the total overlay lengths are properties of the layout's shape, so
// rigid transforms of the plane — translation and horizontal mirroring —
// must not change them. Scan order, tie-breaking and indexing inside the
// oracle are all coordinate-driven, which makes these transforms sharp
// detectors of accidental left/right or origin bias.

// verdict is the transform-invariant signature of a decomposition.
type verdict struct {
	SideNM, TipNM       int
	Hard, Conf, Viol    int
	Overlays, Materials int
}

func verdictOf(r *decomp.Result) verdict {
	return verdict{
		SideNM:    r.SideOverlayNM,
		TipNM:     r.TipOverlayNM,
		Hard:      r.HardOverlays,
		Conf:      len(r.Conflicts),
		Viol:      len(r.Violations),
		Overlays:  len(r.Overlays),
		Materials: len(r.Materials),
	}
}

func translateLayout(ly decomp.Layout, dx, dy int) decomp.Layout {
	d := geom.Pt{X: dx, Y: dy}
	out := ly
	out.Die = ly.Die.Translate(d)
	out.Pats = make([]decomp.Pattern, len(ly.Pats))
	for i, p := range ly.Pats {
		q := p
		q.Rects = make([]geom.Rect, len(p.Rects))
		for j, r := range p.Rects {
			q.Rects[j] = r.Translate(d)
		}
		out.Pats[i] = q
	}
	return out
}

// mirrorLayout reflects the layout (die included) about the vertical
// axis that maps routing track x onto track W-1-x, i.e. x -> S-x in nm
// with S = Die.X0 + Die.X1 - pitch + w_line. Grid-aligned wires map to
// grid-aligned wires, so the mirrored layout is exactly what routing the
// mirrored instance would produce — the invariance the suite asserts is
// over grid transforms, not arbitrary sub-track reflections.
func mirrorLayout(ly decomp.Layout) decomp.Layout {
	s := ly.Die.X0 + ly.Die.X1 - ly.Rules.Pitch() + ly.Rules.WLine
	flip := func(r geom.Rect) geom.Rect {
		return geom.Rect{X0: s - r.X1, Y0: r.Y0, X1: s - r.X0, Y1: r.Y1}
	}
	out := ly
	out.Die = flip(ly.Die)
	out.Pats = make([]decomp.Pattern, len(ly.Pats))
	for i, p := range ly.Pats {
		q := p
		q.Rects = make([]geom.Rect, len(p.Rects))
		for j, r := range p.Rects {
			q.Rects[j] = flip(r)
		}
		out.Pats[i] = q
	}
	return out
}

// metamorphicLayouts routes two small benchmarks and returns every
// non-empty per-layer layout — realistic colored geometry with assists,
// bridges, and a few residual overlays to keep the totals non-trivial.
func metamorphicLayouts(t *testing.T) []decomp.Layout {
	t.Helper()
	ds := rules.Node10nm()
	specs := []bench.Spec{
		{Name: "metaA", Nets: 90, Tracks: 40, Layers: 3, Seed: 401, PinCandidates: 1, AvgHPWL: 5, Blockages: 2},
		{Name: "metaB", Nets: 70, Tracks: 36, Layers: 3, Seed: 402, PinCandidates: 2, AvgHPWL: 6, Blockages: 1},
	}
	var out []decomp.Layout
	for _, sp := range specs {
		res := router.Route(bench.Generate(sp), ds, router.Defaults())
		if res.Routed == 0 {
			t.Fatalf("%s: routed nothing", sp.Name)
		}
		for _, ly := range res.Layouts() {
			if len(ly.Pats) > 0 {
				out = append(out, ly)
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no layouts generated")
	}
	return out
}

// TestDecompTranslationInvariance: translating the layout by whole
// routing pitches preserves the verdict. (Sub-pitch offsets can flip the
// parity of midpoint divisions inside the oracle and are not part of the
// invariance contract — the routing grid itself moves in pitch steps.)
func TestDecompTranslationInvariance(t *testing.T) {
	p := rules.Node10nm().Pitch()
	offsets := []geom.Pt{{X: p, Y: -2 * p}, {X: -100 * p, Y: 100 * p}, {X: 3 * p, Y: p}}
	for i, ly := range metamorphicLayouts(t) {
		base := verdictOf(decomp.DecomposeCut(ly))
		for _, d := range offsets {
			got := verdictOf(decomp.DecomposeCut(translateLayout(ly, d.X, d.Y)))
			if got != base {
				t.Errorf("layout %d translate %v: verdict changed\nbase: %+v\ngot:  %+v", i, d, base, got)
			}
		}
	}
}

// TestDecompMirrorInvariance: reflecting the layout about the die's
// vertical center line preserves the verdict. Mirroring twice must also
// reproduce the original layout's result exactly (involution).
func TestDecompMirrorInvariance(t *testing.T) {
	for i, ly := range metamorphicLayouts(t) {
		base := verdictOf(decomp.DecomposeCut(ly))
		m := mirrorLayout(ly)
		got := verdictOf(decomp.DecomposeCut(m))
		if got != base {
			t.Errorf("layout %d mirror: verdict changed\nbase: %+v\ngot:  %+v", i, base, got)
		}
		back := verdictOf(decomp.DecomposeCut(mirrorLayout(m)))
		if back != base {
			t.Errorf("layout %d double-mirror: verdict changed\nbase: %+v\ngot:  %+v", i, base, back)
		}
	}
}

// TestIncrementalMetamorphicInvariance runs the incremental engine over a
// remove-one-net edit of every routed layout (baseline = layout minus its
// best-isolated pattern, next = full layout) and asserts two things: the
// incremental verdict equals the full recompute's, and it is invariant
// under pitch-multiple translation and mirroring — the same transforms the
// plain oracle is checked against above. The engine is free to splice or
// fall back per layout; the suite as a whole must splice at least once so
// the invariance claim actually covers the splice path (twoClusters from
// the unit tests is appended to guarantee that even if every routed layer
// is too dense to splice).
func TestIncrementalMetamorphicInvariance(t *testing.T) {
	p := rules.Node10nm().Pitch()
	transforms := []struct {
		name string
		f    func(decomp.Layout) decomp.Layout
	}{
		{"identity", func(l decomp.Layout) decomp.Layout { return l }},
		{"translate", func(l decomp.Layout) decomp.Layout { return translateLayout(l, 3*p, -2*p) }},
		{"mirror", mirrorLayout},
	}
	layouts := append(metamorphicLayouts(t), twoClusters())
	var splices int64
	for i, ly := range layouts {
		if len(ly.Pats) < 2 {
			continue
		}
		drop := isolatedPattern(ly)
		base := verdictOf(decomp.DecomposeCut(ly))
		for _, tr := range transforms {
			full := tr.f(ly)
			prev := full
			prev.Pats = append(append([]decomp.Pattern(nil), full.Pats[:drop]...), full.Pats[drop+1:]...)
			rec := obs.New()
			inc := decomp.NewIncremental(decomp.NewCache(0))
			inc.Paranoid = true
			inc.DecomposeCut(prev, rec)
			got := verdictOf(inc.DecomposeCut(full, rec))
			if got != base {
				t.Errorf("layout %d %s: incremental verdict changed\nbase: %+v\ngot:  %+v", i, tr.name, base, got)
			}
			if err := inc.Check(); err != nil {
				t.Errorf("layout %d %s: %v", i, tr.name, err)
			}
			snap := rec.Snapshot()
			splices += snap.Counter(obs.CtrDecompIncSplices)
		}
	}
	if splices == 0 {
		t.Error("incremental path never spliced; the invariance claim covered only fallbacks")
	}
}

// isolatedPattern returns the index of the pattern with the largest
// minimum bounding-box gap to every other pattern — the edit most likely
// to keep the dirty region local.
func isolatedPattern(ly decomp.Layout) int {
	bbox := func(p *decomp.Pattern) geom.Rect {
		b := p.Rects[0]
		for _, r := range p.Rects[1:] {
			b = b.Union(r)
		}
		return b
	}
	best, bestGap := 0, -1
	for i := range ly.Pats {
		bi := bbox(&ly.Pats[i])
		gap := int(^uint(0) >> 1)
		for j := range ly.Pats {
			if j == i {
				continue
			}
			bj := bbox(&ly.Pats[j])
			gx, gy := bi.GapX(bj), bi.GapY(bj)
			g := gx
			if gy > g {
				g = gy
			}
			if g < gap {
				gap = g
			}
		}
		if gap > bestGap {
			best, bestGap = i, gap
		}
	}
	return best
}

// TestDecompNaiveAssistsInvariance repeats both transforms with the
// ref.-[16]-style naive assist synthesis, which exercises the merge-heavy
// code paths the optimized synthesis avoids.
func TestDecompNaiveAssistsInvariance(t *testing.T) {
	layouts := metamorphicLayouts(t)
	for i, ly := range layouts {
		ly.NaiveAssists = true
		base := verdictOf(decomp.DecomposeCut(ly))
		p := ly.Rules.Pitch()
		for name, tr := range map[string]decomp.Layout{
			"translate": translateLayout(ly, 3*p, -7*p),
			"mirror":    mirrorLayout(ly),
		} {
			got := verdictOf(decomp.DecomposeCut(tr))
			if got != base {
				t.Errorf("layout %d naive %s: verdict changed\nbase: %+v\ngot:  %+v", i, name, base, got)
			}
		}
	}
}
