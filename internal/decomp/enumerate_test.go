package decomp

import (
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// cellRect converts a grid cell (track coordinates) to its metal rectangle
// in nm for the 10 nm-node rules: pitch 40, line width 20.
func cellRect(cx, cy int) geom.Rect {
	const pitch, w = 40, 20
	return geom.Rect{X0: cx * pitch, Y0: cy * pitch, X1: cx*pitch + w, Y1: cy*pitch + w}
}

// wire builds a straight wire rect spanning cells [c0,c1] along the given
// axis at fixed cross coordinate.
func wire(horiz bool, fixed, c0, c1 int) geom.Rect {
	if horiz {
		a := cellRect(c0, fixed)
		b := cellRect(c1, fixed)
		return a.Union(b)
	}
	a := cellRect(fixed, c0)
	b := cellRect(fixed, c1)
	return a.Union(b)
}

// scenarioGeoms are the canonical two-pattern configurations of the 11
// potential overlay scenarios (Theorem 2), keyed by (Xmin, Ymin, Dir).
type scenGeom struct {
	name string
	a, b geom.Rect
}

func scenarioGeoms() []scenGeom {
	return []scenGeom{
		{"(0,1,par)", wire(true, 5, 0, 4), wire(true, 6, 0, 4)},
		{"(0,2,par)", wire(true, 5, 0, 4), wire(true, 7, 0, 4)},
		{"(1,0,par)", wire(true, 5, 0, 4), wire(true, 5, 5, 9)},
		{"(2,0,par)", wire(true, 5, 0, 4), wire(true, 5, 6, 10)},
		{"(0,1,perp)", wire(false, 2, 6, 10), wire(true, 5, 0, 4)},
		{"(0,2,perp)", wire(false, 2, 7, 11), wire(true, 5, 0, 4)},
		{"(1,1,par)", wire(true, 5, 0, 4), wire(true, 6, 5, 9)},
		{"(1,2,par)", wire(true, 5, 0, 4), wire(true, 7, 5, 9)},
		{"(2,1,par)", wire(true, 5, 0, 4), wire(true, 6, 6, 10)},
		{"(1,1,perp)", wire(false, 2, 6, 10), wire(true, 5, 3, 7)},
		{"(1,2,perp)", wire(false, 2, 6, 10), wire(true, 4, 3, 7)},
	}
}

func twoPatternLayout(a, b geom.Rect, ca, cb Color) Layout {
	return Layout{
		Rules: rules.Node10nm(),
		Die:   geom.Rect{X0: -400, Y0: -400, X1: 800, Y1: 800},
		Pats: []Pattern{
			{Net: 0, Color: ca, Rects: []geom.Rect{a}},
			{Net: 1, Color: cb, Rects: []geom.Rect{b}},
		},
	}
}

// TestEnumerateScenarios prints the oracle's verdict for every scenario and
// color assignment — the data behind the paper's Table II and Figs. 24-34.
// Run with -v to see the table.
func TestEnumerateScenarios(t *testing.T) {
	asg := []struct {
		name   string
		ca, cb Color
	}{
		{"CC", Core, Core}, {"CS", Core, Second},
		{"SC", Second, Core}, {"SS", Second, Second},
	}
	for _, g := range scenarioGeoms() {
		for _, as := range asg {
			ly := twoPatternLayout(g.a, g.b, as.ca, as.cb)
			res := DecomposeCut(ly)
			t.Logf("%-11s %s: SO=%3d nm (%.1f u) hard=%d conf=%d tip=%3d viol=%d",
				g.name, as.name, res.SideOverlayNM, res.SideOverlayUnits,
				res.HardOverlays, len(res.Conflicts), res.TipOverlayNM, len(res.Violations))
		}
	}
}
