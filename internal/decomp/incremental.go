package decomp

import (
	"fmt"
	"reflect"
	"sort"

	"sadproute/internal/geom"
	"sadproute/internal/obs"
)

// Incremental wraps the decomposition oracle with dirty-region reuse: when
// a layer changes by a few nets (the shape of every rip-up episode), it
// re-derives only the patterns whose materials could interact with the
// change and splices their fresh verdict into the previous Result instead
// of re-running the oracle over the whole layer.
//
// The splice is sound because material influence is local. Assistant cores
// reach at most w_spacer+w_core beyond their second pattern and are shaped
// by targets within d_core of that ring; merges happen under d_core;
// overlay measurement reads material within w_spacer+1 of a target; cut
// conflict pairing is gated at d_cut. So two groups of geometry separated
// by at least
//
//	d_sep = w_spacer + w_core + d_core + d_cut + 2
//
// decompose independently: neither group's materials, overlays or
// conflicts depend on the other. Incremental grows the changed-net set to
// a fixpoint under a dilation of
//
//	reach = d_sep + (w_spacer + 2*w_core + d_core)
//
// (the parenthesized term bounds how far synthesized material can extend
// beyond its generating patterns: assist ring plus a thick corner bridge),
// so at the fixpoint the untouched side is at least d_sep from everything
// the re-decomposed side can produce. A direct seam check re-verifies that
// distance at splice time and falls back to a full recompute if it ever
// fails — the splice path never guesses.
//
// Delta keys: the affected sub-layout is decomposed through the shared
// content-addressed Cache when one is attached, so the canonical key of
// the sub-layout is the delta key — repeated rip-ups of the same net hit
// the memo instead of re-running the oracle.
//
// Counters: an unchanged layout returns the previous Result and counts
// decomp.incremental_hits; a successful splice counts
// decomp.incremental_splices; a fallback to full recompute (first sighting
// excluded) counts decomp.incremental_fallbacks. The splice path runs the
// oracle over a sub-layout, so the decomp.* work counters differ from an
// uncached run — equivalence tests zero the decomp.* family, exactly as
// they already do for the memo cache.
//
// Like the Engine and the Cache, an Incremental is single-goroutine state;
// methods are nil-safe and a nil *Incremental degrades to the plain
// oracle. Results it returns are shared and immutable like cached ones.
type Incremental struct {
	// Paranoid re-runs the full oracle after every splice and records the
	// first divergence for Check. The spliced result is still returned, so
	// behavior is identical with Paranoid on or off. Debug/test facility.
	Paranoid bool

	cache *Cache  // optional shared memo for full and sub-layout runs
	eng   *Engine // private oracle: cacheless runs and Paranoid checks
	blobs dsu     // blob-count scratch

	prev    *Result
	prevLy  Layout // deep copy; callers may reuse their backing arrays
	prevKey []byte
	key     []byte // canonical-key scratch
	order   []int
	err     error // first Paranoid divergence
}

// NewIncremental returns an incremental decomposer layered on cache (which
// may be nil: full and sub-layout recomputes then use a private engine).
func NewIncremental(cache *Cache) *Incremental {
	return &Incremental{cache: cache, eng: &Engine{}}
}

// DecomposeCut returns the decomposition of ly, reusing as much of the
// previous call's verdict as the dirty region allows. A nil receiver is
// the uncached oracle.
func (inc *Incremental) DecomposeCut(ly Layout, rec *obs.Recorder) *Result {
	if inc == nil {
		return DecomposeCutR(ly, rec)
	}
	inc.key, inc.order = layoutKey(inc.key[:0], inc.order[:0], ly)
	if inc.prev != nil && bytesEqual(inc.key, inc.prevKey) {
		rec.Inc(obs.CtrDecompIncHits)
		return inc.prev
	}
	var res *Result
	if inc.prev != nil {
		if res = inc.trySplice(ly, rec); res != nil {
			rec.Inc(obs.CtrDecompIncSplices)
			if inc.Paranoid && inc.err == nil {
				inc.err = compareResults(res, inc.eng.DecomposeCut(ly, nil))
			}
		} else {
			rec.Inc(obs.CtrDecompIncFallbacks)
		}
	}
	if res == nil {
		res = inc.full(ly, rec)
	}
	inc.remember(ly, res)
	return res
}

// Check reports the first Paranoid-mode divergence between a spliced
// result and its full recompute. Nil on a nil receiver, with Paranoid
// unset, or when every splice matched.
func (inc *Incremental) Check() error {
	if inc == nil {
		return nil
	}
	return inc.err
}

// full runs the whole-layout oracle, through the shared cache when one is
// attached.
func (inc *Incremental) full(ly Layout, rec *obs.Recorder) *Result {
	if inc.cache != nil {
		return inc.cache.DecomposeCut(ly, rec)
	}
	return inc.eng.DecomposeCut(ly, rec)
}

// remember stores ly (deep-copied) and res as the baseline for the next
// call. inc.key must still hold ly's canonical key.
func (inc *Incremental) remember(ly Layout, res *Result) {
	pats := make([]Pattern, len(ly.Pats))
	for i, p := range ly.Pats {
		pats[i] = Pattern{Net: p.Net, Color: p.Color, Rects: append([]geom.Rect(nil), p.Rects...)}
	}
	inc.prevLy = Layout{Rules: ly.Rules, Die: ly.Die, Pats: pats, NaiveAssists: ly.NaiveAssists}
	inc.prevKey = append(inc.prevKey[:0], inc.key...)
	inc.prev = res
}

// trySplice attempts the incremental path against the stored baseline and
// returns the spliced Result, or nil when only a full recompute is sound
// (configuration changed, a verdict carries violations, the dirty region
// swallowed the layer, or the seam check failed).
func (inc *Incremental) trySplice(ly Layout, rec *obs.Recorder) *Result {
	prev, prevLy := inc.prev, &inc.prevLy
	if ly.Rules != prevLy.Rules || ly.Die != prevLy.Die || ly.NaiveAssists != prevLy.NaiveAssists {
		return nil
	}
	// Violations poison the splice: BadNets and violation strings cannot be
	// regionalized (a violation names nets from both sides of any cut).
	if len(prev.Violations) > 0 || len(prev.BadNets) > 0 {
		return nil
	}
	prevByNet := make(map[int]int, len(prevLy.Pats))
	for i, p := range prevLy.Pats {
		if _, dup := prevByNet[p.Net]; dup {
			return nil
		}
		prevByNet[p.Net] = i
	}
	newByNet := make(map[int]int, len(ly.Pats))
	for i, p := range ly.Pats {
		if _, dup := newByNet[p.Net]; dup {
			return nil
		}
		newByNet[p.Net] = i
	}

	changed := make(map[int]bool)
	for net, pi := range prevByNet {
		ni, ok := newByNet[net]
		if !ok || !samePattern(&prevLy.Pats[pi], &ly.Pats[ni]) {
			changed[net] = true
		}
	}
	for net := range newByNet {
		if _, ok := prevByNet[net]; !ok {
			changed[net] = true
		}
	}
	if len(changed) == 0 {
		// Canonical keys differ yet content matches: unreachable, but a
		// full recompute is always a safe answer.
		return nil
	}

	ds := ly.Rules
	dsep := ds.WSpacer + ds.WCore + ds.DCore + ds.DCut + 2
	reach := dsep + ds.WSpacer + 2*ds.WCore + ds.DCore

	// Grow the affected-net set A to a fixpoint: the region is every piece
	// of A geometry (old rects, new rects, previously owned materials)
	// dilated by reach; any new pattern or previous material intersecting
	// it joins. Bridges are ownerless — an intersecting bridge is marked
	// affected and its own dilation pulls its parent materials in, so no
	// bridge ever straddles the seam.
	prevMats := prev.Materials
	matAffected := make([]bool, len(prevMats))
	inA := make(map[int]bool)
	var region []geom.Rect
	addRect := func(r geom.Rect) {
		if !r.Empty() {
			region = append(region, r.Expand(reach))
		}
	}
	addNet := func(net int) {
		if inA[net] {
			return
		}
		inA[net] = true
		if ni, ok := newByNet[net]; ok {
			for _, r := range ly.Pats[ni].Rects {
				addRect(r)
			}
		}
		if pi, ok := prevByNet[net]; ok {
			for _, r := range prevLy.Pats[pi].Rects {
				addRect(r)
			}
			for mi := range prevMats {
				if prevMats[mi].Pat == pi {
					matAffected[mi] = true
					addRect(prevMats[mi].Rect)
				}
			}
		}
	}
	seeds := make([]int, 0, len(changed))
	for net := range changed {
		seeds = append(seeds, net)
	}
	sort.Ints(seeds)
	for _, net := range seeds {
		addNet(net)
	}
	intersectsRegion := func(r geom.Rect) bool {
		for _, q := range region {
			if r.Intersects(q) {
				return true
			}
		}
		return false
	}
	for grew := true; grew; {
		grew = false
		for i := range ly.Pats {
			p := &ly.Pats[i]
			if inA[p.Net] {
				continue
			}
			for _, r := range p.Rects {
				if intersectsRegion(r) {
					addNet(p.Net)
					grew = true
					break
				}
			}
		}
		for mi := range prevMats {
			m := &prevMats[mi]
			if matAffected[mi] || !intersectsRegion(m.Rect) {
				continue
			}
			if m.Pat >= 0 {
				addNet(prevLy.Pats[m.Pat].Net)
			} else {
				matAffected[mi] = true
				addRect(m.Rect)
			}
			grew = true
		}
	}

	subIdx := make([]int, 0, len(ly.Pats))
	for i, p := range ly.Pats {
		if inA[p.Net] {
			subIdx = append(subIdx, i)
		}
	}
	if len(subIdx) == len(ly.Pats) {
		return nil // the dirty region swallowed the whole layer
	}
	// Unaffected nets must keep their relative order: target indices follow
	// pattern order, and tie-breaks in assist shaping follow target order.
	// Router layouts enumerate nets in a fixed order, so this never fires
	// there; it guards direct callers.
	pseq := make([]int, 0, len(prevLy.Pats))
	for _, p := range prevLy.Pats {
		if !inA[p.Net] {
			pseq = append(pseq, p.Net)
		}
	}
	nseq := make([]int, 0, len(ly.Pats))
	for _, p := range ly.Pats {
		if !inA[p.Net] {
			nseq = append(nseq, p.Net)
		}
	}
	if len(pseq) != len(nseq) {
		return nil
	}
	for i := range pseq {
		if pseq[i] != nseq[i] {
			return nil
		}
	}

	// Decompose the affected sub-layout; its canonical key is the delta key
	// when a shared cache is attached.
	sub := Layout{Rules: ds, Die: ly.Die, NaiveAssists: ly.NaiveAssists,
		Pats: make([]Pattern, 0, len(subIdx))}
	for _, i := range subIdx {
		sub.Pats = append(sub.Pats, ly.Pats[i])
	}
	subRes := inc.full(sub, rec)
	if len(subRes.Violations) > 0 || len(subRes.BadNets) > 0 {
		return nil
	}

	// Seam check: everything the re-decomposed side produced or contains
	// must clear d_sep against everything kept. The closure guarantees this
	// by construction; the check is cheap insurance that turns a closure
	// bug into a fallback instead of a wrong verdict.
	var aSide, uSide []geom.Rect
	for _, m := range subRes.Materials {
		aSide = append(aSide, m.Rect)
	}
	for _, i := range subIdx {
		aSide = append(aSide, ly.Pats[i].Rects...)
	}
	for mi := range prevMats {
		if !matAffected[mi] {
			uSide = append(uSide, prevMats[mi].Rect)
		}
	}
	for i := range ly.Pats {
		if !inA[ly.Pats[i].Net] {
			uSide = append(uSide, ly.Pats[i].Rects...)
		}
	}
	var abb geom.Rect
	for i, a := range aSide {
		if i == 0 {
			abb = a
		} else {
			abb = abb.Union(a)
		}
	}
	abb = abb.Expand(dsep)
	for _, u := range uSide {
		if !u.Intersects(abb) {
			continue
		}
		for _, a := range aSide {
			if u.Intersects(a.Expand(dsep)) {
				return nil // seam narrower than d_sep
			}
		}
	}

	// Splice. Overlays and conflicts are emitted pattern-major by the
	// oracle, so reassembling them per new pattern — sub slices for
	// affected nets, previous slices for the rest, Pat remapped — yields
	// exactly the full-run order.
	subPos := make(map[int]int, len(subIdx))
	for j, i := range subIdx {
		subPos[i] = j
	}
	prevOv := groupStarts(len(prevLy.Pats), len(prev.Overlays), func(k int) int { return prev.Overlays[k].Pat })
	subOv := groupStarts(len(sub.Pats), len(subRes.Overlays), func(k int) int { return subRes.Overlays[k].Pat })
	prevCf := groupStarts(len(prevLy.Pats), len(prev.Conflicts), func(k int) int { return prev.Conflicts[k].Pat })
	subCf := groupStarts(len(sub.Pats), len(subRes.Conflicts), func(k int) int { return subRes.Conflicts[k].Pat })
	if prevOv == nil || subOv == nil || prevCf == nil || subCf == nil {
		return nil
	}
	res := &Result{}
	for pi := range ly.Pats {
		net := ly.Pats[pi].Net
		if sp, ok := subPos[pi]; ok {
			for k := subOv[sp]; k < subOv[sp+1]; k++ {
				o := subRes.Overlays[k]
				o.Pat = pi
				res.Overlays = append(res.Overlays, o)
			}
			for k := subCf[sp]; k < subCf[sp+1]; k++ {
				c := subRes.Conflicts[k]
				c.Pat = pi
				res.Conflicts = append(res.Conflicts, c)
			}
		} else {
			pp := prevByNet[net]
			for k := prevOv[pp]; k < prevOv[pp+1]; k++ {
				o := prev.Overlays[k]
				o.Pat = pi
				res.Overlays = append(res.Overlays, o)
			}
			for k := prevCf[pp]; k < prevCf[pp+1]; k++ {
				c := prev.Conflicts[k]
				c.Pat = pi
				res.Conflicts = append(res.Conflicts, c)
			}
		}
	}
	// Aggregates are recomputed from the spliced overlays with the exact
	// formulas the oracle uses, so they match a full run bit-for-bit.
	for _, o := range res.Overlays {
		if o.Tip {
			res.TipOverlayNM += o.Len()
		} else {
			res.SideOverlayNM += o.Len()
		}
		if o.Hard {
			res.HardOverlays++
		}
	}
	res.SideOverlayUnits = float64(res.SideOverlayNM) / float64(ds.WLine) //lint:allow float reporting-only: same fractional w_line units as the oracle

	// Materials in canonical order: cores then assists, pattern-major in
	// the new order, then bridges sorted by rect. Bridge emission order in
	// a full run depends on merge-iteration interleaving that a splice
	// cannot reproduce, so both sides of any comparison canonicalize
	// (compareResults does the same to the full recompute).
	appendKind := func(kind MatKind) {
		for pi := range ly.Pats {
			if sp, ok := subPos[pi]; ok {
				for mi := range subRes.Materials {
					if m := &subRes.Materials[mi]; m.Kind == kind && m.Pat == sp {
						res.Materials = append(res.Materials, Mat{Kind: kind, Pat: pi, Rect: m.Rect})
					}
				}
			} else {
				pp := prevByNet[ly.Pats[pi].Net]
				for mi := range prevMats {
					if m := &prevMats[mi]; m.Kind == kind && m.Pat == pp {
						res.Materials = append(res.Materials, Mat{Kind: kind, Pat: pi, Rect: m.Rect})
					}
				}
			}
		}
	}
	appendKind(MatCoreTarget)
	appendKind(MatAssist)
	nb := len(res.Materials)
	for mi := range prevMats {
		if m := &prevMats[mi]; m.Kind == MatBridge && !matAffected[mi] {
			res.Materials = append(res.Materials, *m)
		}
	}
	for mi := range subRes.Materials {
		if m := &subRes.Materials[mi]; m.Kind == MatBridge {
			res.Materials = append(res.Materials, *m)
		}
	}
	sortBridges(res.Materials[nb:])

	// Blob count: the seam separates the sides by more than d_core, so no
	// mask blob straddles it and the counts add.
	var affected []geom.Rect
	for mi := range prevMats {
		if matAffected[mi] {
			affected = append(affected, prevMats[mi].Rect)
		}
	}
	res.Blobs = prev.Blobs - blobCount(&inc.blobs, affected) + subRes.Blobs
	return res
}

// samePattern reports content equality (color and rects; net ids already
// matched by construction).
func samePattern(a, b *Pattern) bool {
	if a.Color != b.Color || len(a.Rects) != len(b.Rects) {
		return false
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			return false
		}
	}
	return true
}

// groupStarts returns starts such that starts[p]..starts[p+1] is the index
// range of pattern p's entries, or nil if the entries are not sorted by
// pattern (then they cannot be spliced per pattern).
func groupStarts(nPats, n int, pat func(int) int) []int {
	starts := make([]int, nPats+1)
	cur := -1
	for k := 0; k < n; k++ {
		p := pat(k)
		if p < cur || p < 0 || p >= nPats {
			return nil
		}
		for cur < p {
			cur++
			starts[cur] = k
		}
	}
	for cur < nPats {
		cur++
		starts[cur] = n
	}
	return starts
}

// sortBridges orders bridge materials by rectangle, stably — the canonical
// bridge order shared by splices and compareResults.
func sortBridges(ms []Mat) {
	sort.SliceStable(ms, func(i, j int) bool {
		a, b := ms[i].Rect, ms[j].Rect
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
}

// blobCount counts connected components among rects under the same
// touch-or-overlap criterion the oracle's merge loop uses.
func blobCount(d *dsu, rs []geom.Rect) int {
	d.reset(len(rs))
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if _, disjoint := gapLinf(rs[i], rs[j]); !disjoint {
				d.union(i, j)
			}
		}
	}
	n := 0
	for i := range rs {
		if d.find(i) == i {
			n++
		}
	}
	return n
}

// canonMaterials rewrites a material list into canonical order: cores in
// stored order, assists in stored order, bridges sorted by rect. Full-run
// results already store cores and assists pattern-major, so only bridges
// move.
func canonMaterials(ms []Mat) []Mat {
	out := make([]Mat, 0, len(ms))
	for _, m := range ms {
		if m.Kind == MatCoreTarget {
			out = append(out, m)
		}
	}
	for _, m := range ms {
		if m.Kind == MatAssist {
			out = append(out, m)
		}
	}
	nb := len(out)
	for _, m := range ms {
		if m.Kind == MatBridge {
			out = append(out, m)
		}
	}
	sortBridges(out[nb:])
	return out
}

// compareResults reports the first difference between a spliced result and
// a full recompute, with materials canonicalized on both sides. Nil when
// they agree.
func compareResults(got, want *Result) error {
	if got.SideOverlayNM != want.SideOverlayNM || got.TipOverlayNM != want.TipOverlayNM ||
		got.HardOverlays != want.HardOverlays || got.SideOverlayUnits != want.SideOverlayUnits {
		return fmt.Errorf("incremental splice aggregates diverge: got side=%d tip=%d hard=%d, want side=%d tip=%d hard=%d",
			got.SideOverlayNM, got.TipOverlayNM, got.HardOverlays,
			want.SideOverlayNM, want.TipOverlayNM, want.HardOverlays)
	}
	if got.Blobs != want.Blobs {
		return fmt.Errorf("incremental splice blob count diverges: got %d want %d", got.Blobs, want.Blobs)
	}
	if !reflect.DeepEqual(got.Overlays, want.Overlays) {
		return fmt.Errorf("incremental splice overlays diverge (%d vs %d entries)", len(got.Overlays), len(want.Overlays))
	}
	if !reflect.DeepEqual(got.Conflicts, want.Conflicts) {
		return fmt.Errorf("incremental splice conflicts diverge (%d vs %d entries)", len(got.Conflicts), len(want.Conflicts))
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) || !reflect.DeepEqual(got.BadNets, want.BadNets) {
		return fmt.Errorf("incremental splice violations diverge (%d vs %d)", len(got.Violations), len(want.Violations))
	}
	if !reflect.DeepEqual(canonMaterials(got.Materials), canonMaterials(want.Materials)) {
		return fmt.Errorf("incremental splice materials diverge (%d vs %d entries)", len(got.Materials), len(want.Materials))
	}
	return nil
}
