package decomp

import "sadproute/internal/obs"

// DecomposeCut runs the SADP cut-process decomposition oracle on one layer:
//
//  1. core-colored targets become core-mask material;
//  2. assistant cores are synthesized around second-colored targets;
//  3. material closer than d_core is merged with bridge rectangles (the
//     merge technique), iterated to a fixpoint;
//  4. every target boundary is classified as interior / spacer-protected /
//     cut-defined, yielding side overlays, tip overlays and hard overlays;
//  5. opposing cut regions closer than d_cut over a target are reported as
//     cut conflicts.
//
// The returned Result always exists; decomposition failures surface as
// Violations, hard overlays and conflicts rather than errors.
func DecomposeCut(ly Layout) *Result { return DecomposeCutR(ly, nil) }

// DecomposeCutR is DecomposeCut reporting to an observability recorder
// (decomposition count, blob/bridge/assist material counts, overlay
// fragment count, and StageDecompose wall time). A nil rec is the
// un-instrumented fast path. It borrows a pooled scratch engine for the
// single call; loops decomposing many layouts should Acquire an Engine
// once instead.
func DecomposeCutR(ly Layout, rec *obs.Recorder) *Result {
	e := Acquire()
	defer e.Release()
	return e.DecomposeCut(ly, rec)
}

// DecomposeCut runs the cut-process oracle on the engine's scratch state.
// The returned Result shares nothing with the engine and must be treated
// as immutable once handed to a Cache (the sadplint immutable rule
// enforces this outside the package).
func (e *Engine) DecomposeCut(ly Layout, rec *obs.Recorder) *Result {
	defer rec.Span(obs.StageDecompose)()
	res := &Result{}
	e.collectTargets(ly, res)

	e.mats = e.mats[:0]
	for _, t := range e.ts {
		if t.color == Core {
			e.mats = append(e.mats, Mat{Kind: MatCoreTarget, Pat: t.pat, Rect: t.rect})
		}
	}
	e.buildAssists(ly)
	e.buildBridges(ly, res)

	e.mix.reset(indexCell(ly))
	for i, m := range e.mats {
		e.mix.add(i, m.Rect)
	}
	for ti := range e.ts {
		e.measureRect(ly, ti, res)
	}
	res.Materials = append([]Mat(nil), e.mats...)
	res.SideOverlayUnits = float64(res.SideOverlayNM) / float64(ly.Rules.WLine) //lint:allow float reporting-only: the paper quotes overlay in fractional w_line units
	if rec != nil {
		rec.Inc(obs.CtrDecompositions)
		rec.Add(obs.CtrDecompBlobs, int64(res.Blobs))
		rec.Observe(obs.HistDecompBlobs, int64(res.Blobs))
		var bridges, assists int64
		for _, m := range e.mats {
			switch m.Kind {
			case MatBridge:
				bridges++
			case MatAssist:
				assists++
			}
		}
		rec.Add(obs.CtrDecompBridges, bridges)
		rec.Add(obs.CtrDecompAssists, assists)
		rec.Add(obs.CtrDecompOverlayFrags, int64(len(res.Overlays)))
	}
	return res
}

// DecomposeLayers runs DecomposeCut on every layer and merges the results
// into per-layer slices plus an aggregate.
func DecomposeLayers(layers []Layout) ([]*Result, Totals) {
	return DecomposeLayersR(layers, nil)
}

// DecomposeLayersR is DecomposeLayers reporting to an observability
// recorder (see DecomposeCutR).
func DecomposeLayersR(layers []Layout, rec *obs.Recorder) ([]*Result, Totals) {
	e := Acquire()
	defer e.Release()
	out := make([]*Result, len(layers))
	var tot Totals
	for i, ly := range layers {
		out[i] = e.DecomposeCut(ly, rec)
		tot.Accumulate(out[i])
	}
	return out, tot
}

// Totals aggregates decomposition metrics across layers.
type Totals struct {
	SideOverlayNM    int
	SideOverlayUnits float64 //lint:allow float reporting-only metric, never fed back into geometry
	TipOverlayNM     int
	HardOverlays     int
	Conflicts        int
	Violations       int
}

// Accumulate folds one layer's result into the totals.
func (t *Totals) Accumulate(r *Result) {
	t.SideOverlayNM += r.SideOverlayNM
	t.SideOverlayUnits += r.SideOverlayUnits //lint:allow float reporting-only metric, never fed back into geometry
	t.TipOverlayNM += r.TipOverlayNM
	t.HardOverlays += r.HardOverlays
	t.Conflicts += len(r.Conflicts)
	t.Violations += len(r.Violations)
}
