// Package decomp implements the SADP layout-decomposition oracle (the
// process model of paper Section II and its merge technique): given a
// colored layout (every pattern assigned to the core mask or to the second
// mask) it synthesizes assistant core patterns, merges core material closer
// than d_core (the paper's merge technique, realized as bridge rectangles
// covered by the cut mask), derives spacer protection, and measures side
// overlays, tip overlays, hard overlays and cut conflicts. It supports both
// the SADP cut process (the paper's contribution) and the SADP trim process
// (used by the baseline routers).
//
// The oracle is the ground truth of this reproduction: the router's
// incremental bookkeeping (package scenario) is validated against it, and
// the paper's Table II / Figs. 24-34 enumerations are regenerated from it.
//
// Geometry model: all coordinates are integer nanometers; rectangles are
// half-open. Dilation (spacer growth, merge reach) uses the L-infinity
// metric — square spacer corners, exactly as drawn in the paper's figures.
// On the routing grid (pitch = w_line + w_spacer, all pattern gaps multiples
// of w_spacer) the L-infinity and Euclidean merge criteria coincide for
// d_core = 30 nm, so no behavior is lost relative to a round-corner model.
package decomp

import (
	"fmt"

	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// Color is a mask assignment of a pattern.
type Color uint8

const (
	// Unassigned patterns make a layout undecomposable.
	Unassigned Color = iota
	// Core patterns are printed directly by the core mask.
	Core
	// Second patterns are defined by spacer gaps plus the cut/trim mask.
	Second
)

func (c Color) String() string {
	switch c {
	case Core:
		return "C"
	case Second:
		return "S"
	default:
		return "?"
	}
}

// Flip returns the opposite mask assignment (Unassigned flips to itself).
func (c Color) Flip() Color {
	switch c {
	case Core:
		return Second
	case Second:
		return Core
	default:
		return Unassigned
	}
}

// Pattern is one net's target geometry on one routing layer, fragmented
// into rectangles (Theorem 3).
type Pattern struct {
	Net   int
	Color Color
	Rects []geom.Rect // nm coordinates
}

// Layout is the input of the oracle: one routing layer's colored patterns.
type Layout struct {
	Rules rules.Set
	Die   geom.Rect // nm; assist material is clipped to the die
	Pats  []Pattern
	// NaiveAssists disables the optimizing assistant-core synthesis
	// (tip-slab dropping and side-slab trimming): full rings are always
	// placed and merge freely with main cores. This models the
	// decomposer of the paper's ref. [16], whose core/assist mergers
	// cause the severe overlays of Fig. 22.
	NaiveAssists bool
}

// MatKind identifies the origin of a piece of core-mask material.
type MatKind uint8

const (
	// MatCoreTarget is a target pattern assigned to the core mask.
	MatCoreTarget MatKind = iota
	// MatAssist is an assistant core pattern flanking a second pattern.
	MatAssist
	// MatBridge is merge material spanning a sub-d_core gap; it is always
	// removed by the cut mask and induces overlays where it touches targets.
	MatBridge
)

func (k MatKind) String() string {
	switch k {
	case MatCoreTarget:
		return "core"
	case MatAssist:
		return "assist"
	default:
		return "bridge"
	}
}

// Mat is one rectangle of core-mask material.
type Mat struct {
	Kind MatKind
	Pat  int // owning pattern index; -1 for bridges
	Rect geom.Rect
}

// Side identifies one of the four sides of a rectangle.
type Side uint8

const (
	SideLeft Side = iota
	SideRight
	SideBottom
	SideTop
)

func (s Side) String() string {
	return [...]string{"left", "right", "bottom", "top"}[s]
}

// Overlay is one maximal boundary section of a target pattern that is
// defined directly by the cut/trim mask instead of being protected by a
// spacer.
type Overlay struct {
	Pat  int       // pattern index
	Rect geom.Rect // the target rect whose boundary carries the overlay
	Side Side
	Lo   int  // interval along the side (x for top/bottom, y for left/right)
	Hi   int  // nm, half-open
	Tip  bool // true for tip overlays (non-critical, excluded from length)
	Hard bool // true when a side overlay exceeds w_line
}

// Len returns the overlay length in nm.
func (o Overlay) Len() int { return o.Hi - o.Lo }

// CutConflict is a cut-mask (or trim-mask) minimum-distance violation over a
// target pattern: two mask openings flank the pattern closer than d_cut.
type CutConflict struct {
	Pat  int
	Rect geom.Rect
	Lo   int // shared projection interval, nm
	Hi   int
	Tips bool // conflict between the two tip cuts of a short wire
}

// Result summarizes one layer's decomposition. The memo cache (Cache)
// shares one *Result among every caller asking about the same layout;
// consumers must clone before mutating.
//
//sadp:immutable — shared via the decomposition memo cache.
type Result struct {
	// SideOverlayNM is the total length of non-tip overlays in nm.
	// SideOverlayUnits is the same in w_line units (the paper's metric).
	SideOverlayNM    int
	SideOverlayUnits float64 //lint:allow float reporting-only metric, never fed back into geometry
	TipOverlayNM     int
	HardOverlays     int
	Overlays         []Overlay
	Conflicts        []CutConflict
	// Violations are decomposition failures that the paper's router rules
	// out by construction: spacer material encroaching on a second target,
	// targets of different nets touching, or unassigned colors.
	Violations []string
	// BadNets lists the nets implicated in Violations (deduplicated).
	BadNets []int
	// Materials is the full synthesized core-mask material list (targets,
	// assists, bridges) for rendering and inspection.
	Materials []Mat
	// Blobs is the number of connected core-mask material components after
	// merging (observability: how fragmented the core mask ended up).
	Blobs int
}

func (r *Result) addViolation(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// addViolationNet records a violation implicating the given net.
func (r *Result) addViolationNet(net int, format string, args ...any) {
	r.addViolation(format, args...)
	for _, n := range r.BadNets {
		if n == net {
			return
		}
	}
	r.BadNets = append(r.BadNets, net)
}

// ConflictCount returns the number of cut (or trim) conflicts.
func (r *Result) ConflictCount() int { return len(r.Conflicts) }
