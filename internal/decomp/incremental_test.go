package decomp_test

import (
	"reflect"
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/obs"
	"sadproute/internal/rules"
)

// wire returns a one-rect pattern for net at (x, y) with size w x h.
func wire(net int, c decomp.Color, x, y, w, h int) decomp.Pattern {
	return decomp.Pattern{Net: net, Color: c, Rects: []geom.Rect{{X0: x, Y0: y, X1: x + w, Y1: y + h}}}
}

// twoClusters builds a layout with two groups of nets far enough apart
// (1000 nm on a 40 nm pitch) that mutating one group can never dirty the
// other: the guaranteed-splice fixture.
func twoClusters() decomp.Layout {
	return decomp.Layout{
		Rules: rules.Node10nm(),
		Die:   geom.Rect{X0: -400, Y0: -400, X1: 1600, Y1: 1600},
		Pats: []decomp.Pattern{
			wire(0, decomp.Core, 0, 0, 200, 20),
			wire(1, decomp.Second, 0, 40, 200, 20),
			wire(2, decomp.Core, 0, 1000, 200, 20),
			wire(3, decomp.Second, 0, 1040, 200, 20),
		},
	}
}

// assertSameVerdict compares every exported field of a spliced result
// against a fresh full recompute; materials are compared by count only
// (their canonical-order equality is what Paranoid mode proves).
func assertSameVerdict(t *testing.T, got, want *decomp.Result) {
	t.Helper()
	if got.SideOverlayNM != want.SideOverlayNM || got.TipOverlayNM != want.TipOverlayNM ||
		got.HardOverlays != want.HardOverlays || got.SideOverlayUnits != want.SideOverlayUnits {
		t.Fatalf("aggregates diverge: got %d/%d/%d want %d/%d/%d",
			got.SideOverlayNM, got.TipOverlayNM, got.HardOverlays,
			want.SideOverlayNM, want.TipOverlayNM, want.HardOverlays)
	}
	if got.Blobs != want.Blobs {
		t.Fatalf("blob count diverges: got %d want %d", got.Blobs, want.Blobs)
	}
	if !reflect.DeepEqual(got.Overlays, want.Overlays) {
		t.Fatalf("overlays diverge:\ngot  %+v\nwant %+v", got.Overlays, want.Overlays)
	}
	if !reflect.DeepEqual(got.Conflicts, want.Conflicts) {
		t.Fatalf("conflicts diverge:\ngot  %+v\nwant %+v", got.Conflicts, want.Conflicts)
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) || !reflect.DeepEqual(got.BadNets, want.BadNets) {
		t.Fatalf("violations diverge: got %v/%v want %v/%v", got.Violations, got.BadNets, want.Violations, want.BadNets)
	}
	if len(got.Materials) != len(want.Materials) {
		t.Fatalf("material count diverges: got %d want %d", len(got.Materials), len(want.Materials))
	}
}

func incCounters(rec *obs.Recorder) (hits, splices, fallbacks int64) {
	s := rec.Snapshot()
	return s.Counter(obs.CtrDecompIncHits), s.Counter(obs.CtrDecompIncSplices), s.Counter(obs.CtrDecompIncFallbacks)
}

func TestIncrementalUnchangedLayoutHits(t *testing.T) {
	ly := twoClusters()
	rec := obs.New()
	inc := decomp.NewIncremental(nil)
	inc.Paranoid = true
	r1 := inc.DecomposeCut(ly, rec)
	r2 := inc.DecomposeCut(ly, rec)
	if r1 != r2 {
		t.Fatal("unchanged layout did not return the memoized Result")
	}
	if h, s, f := incCounters(rec); h != 1 || s != 0 || f != 0 {
		t.Fatalf("counters hits/splices/fallbacks = %d/%d/%d, want 1/0/0", h, s, f)
	}
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalSpliceOnIsolatedChange(t *testing.T) {
	lyA := twoClusters()
	lyB := twoClusters()
	// Move the far cluster's core net right by five pitches; its second
	// pattern joins the dirty region, the near cluster must not.
	lyB.Pats[2].Rects[0] = lyB.Pats[2].Rects[0].Translate(geom.Pt{X: 200})
	rec := obs.New()
	inc := decomp.NewIncremental(nil)
	inc.Paranoid = true
	inc.DecomposeCut(lyA, rec)
	got := inc.DecomposeCut(lyB, rec)
	if h, s, f := incCounters(rec); s != 1 || f != 0 {
		t.Fatalf("counters hits/splices/fallbacks = %d/%d/%d, want splice without fallback", h, s, f)
	}
	assertSameVerdict(t, got, decomp.DecomposeCut(lyB))
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
	// A third call with the same layout hits the new baseline.
	if again := inc.DecomposeCut(lyB, rec); again != got {
		t.Fatal("spliced result was not memoized as the new baseline")
	}
}

func TestIncrementalSpliceOnNetRemoval(t *testing.T) {
	lyA := twoClusters()
	lyB := twoClusters()
	lyB.Pats = lyB.Pats[:3] // drop net 3 (far cluster's second pattern)
	rec := obs.New()
	inc := decomp.NewIncremental(nil)
	inc.Paranoid = true
	inc.DecomposeCut(lyA, rec)
	got := inc.DecomposeCut(lyB, rec)
	if _, s, f := incCounters(rec); s != 1 || f != 0 {
		t.Fatalf("splices/fallbacks = %d/%d, want 1/0", s, f)
	}
	assertSameVerdict(t, got, decomp.DecomposeCut(lyB))
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalFallbackWhenRegionSwallowsLayer(t *testing.T) {
	// All four nets within one influence radius: any change dirties
	// everything and the splice must fall back.
	dense := decomp.Layout{
		Rules: rules.Node10nm(),
		Die:   geom.Rect{X0: -400, Y0: -400, X1: 1600, Y1: 1600},
		Pats: []decomp.Pattern{
			wire(0, decomp.Core, 0, 0, 200, 20),
			wire(1, decomp.Second, 0, 40, 200, 20),
			wire(2, decomp.Core, 0, 80, 200, 20),
			wire(3, decomp.Second, 0, 120, 200, 20),
		},
	}
	mut := dense
	mut.Pats = append([]decomp.Pattern(nil), dense.Pats...)
	mut.Pats[0] = wire(0, decomp.Core, 40, 0, 200, 20)
	rec := obs.New()
	inc := decomp.NewIncremental(nil)
	inc.Paranoid = true
	got := inc.DecomposeCut(dense, rec)
	assertSameVerdict(t, got, decomp.DecomposeCut(dense))
	got = inc.DecomposeCut(mut, rec)
	if _, s, f := incCounters(rec); s != 0 || f != 1 {
		t.Fatalf("splices/fallbacks = %d/%d, want 0/1", s, f)
	}
	assertSameVerdict(t, got, decomp.DecomposeCut(mut))
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalFallbackOnViolations(t *testing.T) {
	ly := twoClusters()
	ly.Pats[0].Color = decomp.Unassigned // poisons the baseline verdict
	mut := twoClusters()
	mut.Pats[0].Color = decomp.Unassigned
	mut.Pats[2].Rects[0] = mut.Pats[2].Rects[0].Translate(geom.Pt{X: 200})
	rec := obs.New()
	inc := decomp.NewIncremental(nil)
	inc.Paranoid = true
	inc.DecomposeCut(ly, rec)
	got := inc.DecomposeCut(mut, rec)
	if _, s, f := incCounters(rec); s != 0 || f != 1 {
		t.Fatalf("splices/fallbacks = %d/%d, want 0/1 (violations cannot splice)", s, f)
	}
	assertSameVerdict(t, got, decomp.DecomposeCut(mut))
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalNilReceiver(t *testing.T) {
	var inc *decomp.Incremental
	ly := twoClusters()
	got := inc.DecomposeCut(ly, nil)
	assertSameVerdict(t, got, decomp.DecomposeCut(ly))
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalDeltaKeysHitCache: sub-layouts are decomposed through the
// attached memo cache, so flipping a net back and forth re-uses the cached
// delta verdicts instead of re-running the oracle.
func TestIncrementalDeltaKeysHitCache(t *testing.T) {
	lyA := twoClusters()
	lyB := twoClusters()
	lyB.Pats[2].Rects[0] = lyB.Pats[2].Rects[0].Translate(geom.Pt{X: 200})
	cache := decomp.NewCache(0)
	rec := obs.New()
	inc := decomp.NewIncremental(cache)
	inc.Paranoid = true
	inc.DecomposeCut(lyA, rec)
	inc.DecomposeCut(lyB, rec)
	snap := rec.Snapshot()
	before := snap.Counter(obs.CtrDecompCacheHits)
	inc.DecomposeCut(lyA, rec) // same dirty region as before, reversed
	inc.DecomposeCut(lyB, rec)
	if _, s, f := incCounters(rec); s != 3 || f != 0 {
		t.Fatalf("splices/fallbacks = %d/%d, want 3/0", s, f)
	}
	snap = rec.Snapshot()
	after := snap.Counter(obs.CtrDecompCacheHits)
	if after <= before {
		t.Fatalf("delta keys never hit the cache (hits %d -> %d)", before, after)
	}
	if err := inc.Check(); err != nil {
		t.Fatal(err)
	}
}

// mutateLayout applies a few byte-driven edits to a deep copy of ly: move
// a rect, recolor a pattern, delete a pattern, or add one under a fresh
// net id. Total: every byte string yields a valid layout.
func mutateLayout(ly decomp.Layout, data []byte) decomp.Layout {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	out := translateLayout(ly, 0, 0) // deep copy
	maxNet := 0
	for _, p := range out.Pats {
		if p.Net > maxNet {
			maxNet = p.Net
		}
	}
	for op := 1 + next()%3; op > 0; op-- {
		if len(out.Pats) == 0 {
			break
		}
		switch next() % 4 {
		case 0:
			p := &out.Pats[next()%len(out.Pats)]
			r := &p.Rects[next()%len(p.Rects)]
			*r = r.Translate(geom.Pt{X: next()*5 - 320, Y: next()*5 - 320})
		case 1:
			out.Pats[next()%len(out.Pats)].Color = decomp.Color(next() % 3)
		case 2:
			i := next() % len(out.Pats)
			out.Pats = append(out.Pats[:i], out.Pats[i+1:]...)
		case 3:
			x0, y0 := next()*5-200, next()*5-200
			maxNet++
			out.Pats = append(out.Pats, decomp.Pattern{
				Net:   maxNet,
				Color: decomp.Color(next() % 3),
				Rects: []geom.Rect{{X0: x0, Y0: y0, X1: x0 + 10 + next()%61, Y1: y0 + 10 + next()%61}},
			})
		}
	}
	return out
}

// FuzzIncrementalDecompEquivalence drives the incremental engine through a
// fuzzed baseline layout, a fuzzed mutation, and the reverse edit, and
// requires the spliced verdicts to match full recomputes exactly — both
// through the exported fields and through Paranoid mode's canonical
// material comparison. Splice-or-fallback is the engine's own choice; the
// result must be right either way.
func FuzzIncrementalDecompEquivalence(f *testing.F) {
	f.Add([]byte{2, 1, 0, 10, 10, 5, 5, 2, 1, 60, 10, 5, 5}, []byte{1, 0, 0, 0, 200, 10})
	f.Add([]byte{5, 0, 1, 3, 3, 7, 9, 1, 1, 100, 100, 30, 30, 2, 0, 50, 50, 20, 20}, []byte{2, 2, 1, 3, 2, 40, 200, 1, 9})
	f.Add([]byte{}, []byte{3, 3, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ly1 := fuzzLayout(a)
		ly2 := mutateLayout(ly1, b)
		rec := obs.New()
		inc := decomp.NewIncremental(decomp.NewCache(0))
		inc.Paranoid = true
		for _, ly := range []decomp.Layout{ly1, ly2, ly1} {
			got := inc.DecomposeCut(ly, rec)
			want := decomp.DecomposeCut(ly)
			if got.SideOverlayNM != want.SideOverlayNM || got.TipOverlayNM != want.TipOverlayNM ||
				got.HardOverlays != want.HardOverlays || got.SideOverlayUnits != want.SideOverlayUnits ||
				got.Blobs != want.Blobs ||
				!reflect.DeepEqual(got.Overlays, want.Overlays) ||
				!reflect.DeepEqual(got.Conflicts, want.Conflicts) ||
				!reflect.DeepEqual(got.Violations, want.Violations) ||
				!reflect.DeepEqual(got.BadNets, want.BadNets) ||
				len(got.Materials) != len(want.Materials) {
				t.Fatalf("incremental verdict diverges from full recompute\ngot  %+v\nwant %+v", got, want)
			}
			if err := inc.Check(); err != nil {
				t.Fatal(err)
			}
		}
		s := rec.Snapshot()
		if n := s.Counter(obs.CtrDecompIncHits) + s.Counter(obs.CtrDecompIncSplices) +
			s.Counter(obs.CtrDecompIncFallbacks); n != 2 {
			t.Fatalf("hit+splice+fallback = %d after two incremental calls, want 2", n)
		}
	})
}
