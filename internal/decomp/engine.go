package decomp

import (
	"sync"

	"sadproute/internal/geom"
	"sadproute/internal/interval"
)

// Engine is the oracle's reusable scratch state: target lists, spatial
// indexes, the per-iteration union-find of the merge stage, and the
// interval sets of the boundary measurement. One decomposition allocates
// only its Result; everything intermediate lives in the engine and is
// reused by the next call, mirroring the astar engine pool.
//
// An Engine is single-goroutine state: Acquire one, run any number of
// decompositions, Release it. Results returned by engine methods never
// alias engine scratch, so they stay valid (and immutable — see Cache)
// after Release.
type Engine struct {
	// Targets and their spatial index (collectTargets).
	ts  []tgt
	tix rectIndex
	// Core-mask material and its index (DecomposeCut/DecomposeTrim).
	mats []Mat
	mix  rectIndex
	// Merge-stage scratch (buildBridges): per-iteration connectivity,
	// geometry snapshot, cross-blob pair list and bridge accumulator.
	comp     dsu
	bix      rectIndex
	snap     []geom.Rect
	pairs    []matPair
	added    []Mat
	trimRect map[int]geom.Rect
	trimPend map[int][]matPair
	tks      []int
	// Assist-synthesis scratch (buildAssists/shapeSlab).
	near      []int
	shapeNear []int
	pieces    []geom.Rect
	along     interval.Set
	trial     interval.Set
	// Boundary-measurement scratch (measureRect): per-side overlay sets
	// plus the interior/protection accumulators and the pair-conflict
	// intersection buffer.
	sideOv   [4]interval.Set
	interior interval.Set
	covered  interval.Set
	matTouch interval.Set
	xset     interval.Set
}

// matPair is one cross-blob material pair of a merge iteration.
type matPair struct{ i, j int }

var enginePool = sync.Pool{New: func() any { return &Engine{} }}

// Acquire returns a scratch engine from the process-wide pool.
func Acquire() *Engine { return enginePool.Get().(*Engine) }

// Release returns the engine to the pool. The caller must not use e
// afterwards; Results it produced remain valid.
func (e *Engine) Release() { enginePool.Put(e) }
