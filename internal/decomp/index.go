package decomp

import "sadproute/internal/geom"

// rectIndex is a uniform-bucket spatial index over rectangles, used for all
// proximity queries in the oracle (assist keepouts, merge-pair search,
// boundary-protection coverage). Bucket size is a few track pitches so a
// query touches O(1) buckets for the short interaction ranges of SADP rules.
type rectIndex struct {
	cell  int
	m     map[geom.Pt][]int32
	n     int
	stamp []int32
	cur   int32
}

func newRectIndex(cell int) *rectIndex {
	if cell <= 0 {
		cell = 200
	}
	return &rectIndex{cell: cell, m: make(map[geom.Pt][]int32)}
}

// reset empties the index for reuse (pooled engines), keeping the bucket
// map's storage. The stamp table survives across uses — entries from an
// earlier life are always below the ever-increasing query stamp — but the
// stamp must not wrap, so a long-lived engine re-zeros it well before
// int32 overflow.
func (ix *rectIndex) reset(cell int) {
	if cell <= 0 {
		cell = 200
	}
	if ix.m == nil {
		ix.m = make(map[geom.Pt][]int32)
	} else {
		for k, v := range ix.m {
			ix.m[k] = v[:0]
		}
	}
	ix.cell = cell
	ix.n = 0
	if ix.cur > 1<<30 {
		for i := range ix.stamp {
			ix.stamp[i] = 0
		}
		ix.cur = 0
	}
}

func (ix *rectIndex) buckets(r geom.Rect) (bx0, by0, bx1, by1 int) {
	return floordiv(r.X0, ix.cell), floordiv(r.Y0, ix.cell),
		floordiv(r.X1-1, ix.cell), floordiv(r.Y1-1, ix.cell)
}

// add registers rect r under integer id. Ids must be assigned densely from
// zero in insertion order.
func (ix *rectIndex) add(id int, r geom.Rect) {
	if r.Empty() {
		// Keep the stamp table aligned with ids even for empty rects.
		if id >= ix.n {
			ix.n = id + 1
		}
		return
	}
	bx0, by0, bx1, by1 := ix.buckets(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			k := geom.Pt{X: bx, Y: by}
			ix.m[k] = append(ix.m[k], int32(id))
		}
	}
	if id >= ix.n {
		ix.n = id + 1
	}
}

// query calls fn exactly once for every registered id whose rect's buckets
// intersect r's buckets. Callers re-check precise geometry themselves.
func (ix *rectIndex) query(r geom.Rect, fn func(id int)) {
	if r.Empty() {
		return
	}
	if len(ix.stamp) < ix.n {
		ix.stamp = make([]int32, ix.n)
		ix.cur = 0
	}
	ix.cur++
	bx0, by0, bx1, by1 := ix.buckets(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, id := range ix.m[geom.Pt{X: bx, Y: by}] {
				if ix.stamp[id] == ix.cur {
					continue
				}
				ix.stamp[id] = ix.cur
				fn(int(id))
			}
		}
	}
}

func floordiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
