package decomp

import (
	"reflect"
	"testing"

	"sadproute/internal/geom"
	"sadproute/internal/obs"
	"sadproute/internal/rules"
)

// snapCtr reads one counter off a fresh snapshot.
func snapCtr(rec *obs.Recorder, c obs.CounterID) int64 {
	s := rec.Snapshot()
	return s.Counter(c)
}

// cacheLayout builds a small two-net layout whose geometry is easy to
// permute for the canonicalization tests.
func cacheLayout(ca, cb Color) Layout {
	ds := rules.Node10nm()
	p, w := ds.Pitch(), ds.WLine
	return Layout{
		Rules: ds,
		Die:   geom.Rect{X0: -200, Y0: -200, X1: 20 * p, Y1: 20 * p},
		Pats: []Pattern{
			{Net: 3, Color: ca, Rects: []geom.Rect{{X0: 0, Y0: 2 * p, X1: 8*p + w, Y1: 2*p + w}}},
			{Net: 7, Color: cb, Rects: []geom.Rect{{X0: 0, Y0: 3 * p, X1: 6*p + w, Y1: 3*p + w}}},
		},
	}
}

func TestCacheHitReturnsSharedResult(t *testing.T) {
	c := NewCache(0)
	rec := obs.New()
	ly := cacheLayout(Core, Second)
	r1 := c.DecomposeCut(ly, rec)
	r2 := c.DecomposeCut(ly, rec)
	if r1 != r2 {
		t.Fatal("second identical decomposition did not return the cached Result")
	}
	s := rec.Snapshot()
	if got := s.Counter(obs.CtrDecompCacheHits); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
	if got := s.Counter(obs.CtrDecompCacheMisses); got != 1 {
		t.Errorf("cache_misses = %d, want 1", got)
	}
	if got := s.Counter(obs.CtrDecompositions); got != 1 {
		t.Errorf("decompositions = %d, want 1 (hit must not re-run the oracle)", got)
	}
}

func TestCacheMatchesUncachedOracle(t *testing.T) {
	c := NewCache(0)
	for _, colors := range [][2]Color{{Core, Core}, {Core, Second}, {Second, Core}, {Second, Second}} {
		ly := cacheLayout(colors[0], colors[1])
		cached := c.DecomposeCut(ly, nil)
		fresh := DecomposeCut(ly)
		if !reflect.DeepEqual(cached, fresh) {
			t.Errorf("%v%v: cached result differs from uncached oracle\ncached: %+v\nfresh:  %+v",
				colors[0], colors[1], cached, fresh)
		}
	}
}

// TestCacheCanonicalPatternOrder: the key sorts patterns by net, so a
// permuted pattern list hits the entry of the original layout.
func TestCacheCanonicalPatternOrder(t *testing.T) {
	c := NewCache(0)
	rec := obs.New()
	ly := cacheLayout(Core, Second)
	r1 := c.DecomposeCut(ly, rec)
	perm := ly
	perm.Pats = []Pattern{ly.Pats[1], ly.Pats[0]}
	r2 := c.DecomposeCut(perm, rec)
	if r1 != r2 {
		t.Error("net-permuted pattern list missed the cache; key is not canonical")
	}
}

func TestCacheDistinguishesColorings(t *testing.T) {
	c := NewCache(0)
	a := c.DecomposeCut(cacheLayout(Core, Second), nil)
	b := c.DecomposeCut(cacheLayout(Second, Core), nil)
	if a == b {
		t.Fatal("different colorings shared one cache entry")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

// TestCacheCollisionVerified: an entry whose hash matches but whose key
// bytes differ must not be returned — inject a forged entry under the
// layout's own hash and check the lookup still runs the oracle.
func TestCacheCollisionVerified(t *testing.T) {
	c := NewCache(0)
	rec := obs.New()
	ly := cacheLayout(Core, Second)
	h := c.buildKey(ly)
	bogus := &Result{SideOverlayNM: -12345}
	c.buckets[h] = append(c.buckets[h], &cacheEntry{hash: h, key: []byte("forged"), res: bogus})
	c.fifo = append(c.fifo, c.buckets[h][0])
	got := c.DecomposeCut(ly, rec)
	if got == bogus {
		t.Fatal("hash collision returned the wrong entry; full-key verification missing")
	}
	if snapCtr(rec, obs.CtrDecompCacheMisses) != 1 {
		t.Error("collision lookup should count as a miss")
	}
}

func TestCacheEvictionFIFO(t *testing.T) {
	c := NewCache(2)
	rec := obs.New()
	lys := []Layout{
		cacheLayout(Core, Core),
		cacheLayout(Core, Second),
		cacheLayout(Second, Second),
	}
	for _, ly := range lys {
		c.DecomposeCut(ly, rec)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", c.Len())
	}
	if got := snapCtr(rec, obs.CtrDecompCacheEvictions); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// The oldest entry (lys[0]) left; the two youngest still hit.
	before := snapCtr(rec, obs.CtrDecompCacheHits)
	c.DecomposeCut(lys[1], rec)
	c.DecomposeCut(lys[2], rec)
	if got := snapCtr(rec, obs.CtrDecompCacheHits) - before; got != 2 {
		t.Errorf("young entries: %d hits, want 2", got)
	}
	if snapCtr(rec, obs.CtrDecompCacheMisses) != 3 {
		t.Errorf("misses = %d, want 3 (no re-miss of young entries)", snapCtr(rec, obs.CtrDecompCacheMisses))
	}
	c.DecomposeCut(lys[0], rec) // evicted: must miss again
	if got := snapCtr(rec, obs.CtrDecompCacheMisses); got != 4 {
		t.Errorf("misses = %d, want 4 after re-requesting the evicted entry", got)
	}
}

func TestCacheNilReceiver(t *testing.T) {
	var c *Cache
	ly := cacheLayout(Core, Second)
	got := c.DecomposeCut(ly, nil)
	want := DecomposeCut(ly)
	if !reflect.DeepEqual(got, want) {
		t.Error("nil cache must behave as the uncached oracle")
	}
	if c.Len() != 0 {
		t.Error("nil cache Len must be 0")
	}
	if err := c.CheckIntegrity(); err != nil {
		t.Errorf("nil cache CheckIntegrity: %v", err)
	}
}

func TestCacheParanoidCatchesMutation(t *testing.T) {
	c := NewCache(0)
	c.Paranoid = true
	res := c.DecomposeCut(cacheLayout(Core, Second), nil)
	if err := c.CheckIntegrity(); err != nil {
		t.Fatalf("pristine cache flagged: %v", err)
	}
	res.SideOverlayNM++ // the forbidden write the immutable lint rule guards against
	if err := c.CheckIntegrity(); err == nil {
		t.Fatal("mutation of a cached Result went undetected")
	}
	res.SideOverlayNM--
	if err := c.CheckIntegrity(); err != nil {
		t.Fatalf("restored cache still flagged: %v", err)
	}
}
