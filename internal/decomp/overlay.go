package decomp

import (
	"sadproute/internal/geom"
	"sadproute/internal/interval"
)

// measureRect computes the overlay intervals on all four sides of one target
// rectangle and the cut conflicts the opposing cuts induce, appending both to
// res.
//
// A boundary section of a target is:
//   - interior, when another rectangle of the same pattern covers the field
//     immediately outside it (polygon fragmentation seams);
//   - protected, when the immediately-outside field belongs to the spacer,
//     i.e. lies within w_spacer (L-infinity) of core-mask material;
//   - an overlay otherwise: the section is defined directly by the cut mask,
//     either because raw field touches it or because merge/assist material
//     (which the cut removes) touches it.
//
// Overlays on the two short ends of a wire are tip overlays (non-critical);
// overlays on long sides are side overlays, hard when longer than w_line.
func (e *Engine) measureRect(ly Layout, ti int, res *Result) {
	ts, tix, mats, mix := e.ts, &e.tix, e.mats, &e.mix
	t := ts[ti]
	r := t.rect
	ds := ly.Rules
	ws := ds.WSpacer

	var sideSets [4]*interval.Set // overlay intervals per side (engine scratch)

	for _, side := range [...]Side{SideLeft, SideRight, SideBottom, SideTop} {
		span, b, outPos, horiz := sideGeom(r, side)
		interior := &e.interior
		interior.Reset()
		covered := &e.covered
		covered.Reset()
		matTouch := &e.matTouch
		matTouch.Reset()

		// Same-pattern targets covering the outside row are polygon seams;
		// different-net targets there are abutment violations.
		tix.query(r.Expand(1), func(oi int) {
			if oi == ti {
				return
			}
			o := ts[oi]
			alo, ahi, plo, phi := project(o.rect, horiz)
			if !touches(b, plo, phi, outPos) {
				return
			}
			iv := interval.Iv{Lo: alo, Hi: ahi}.Intersect(span)
			if iv.Empty() {
				return
			}
			if o.pat != t.pat {
				res.addViolationNet(t.net, "targets of nets %d and %d abut at %v side %s", t.net, o.net, r, side)
				res.addViolationNet(o.net, "targets of nets %d and %d abut (mirror)", t.net, o.net)
			}
			interior.Add(iv)
		})

		// Core-mask material: touching material is cut-defined (overlay
		// unless it is this pattern's own printed core), nearby material
		// contributes spacer protection.
		mix.query(r.Expand(ws+1), func(mi int) {
			m := mats[mi]
			alo, ahi, plo, phi := project(m.Rect, horiz)
			if touches(b, plo, phi, outPos) {
				// Own-pattern core fragments are polygon seams, not cuts.
				if m.Kind == MatCoreTarget && m.Pat == t.pat {
					interior.Add(interval.Iv{Lo: alo, Hi: ahi}.Intersect(span))
				} else {
					matTouch.Add(interval.Iv{Lo: alo, Hi: ahi}.Intersect(span))
				}
				return
			}
			if coveredPerp(b, plo, phi, outPos, ws) {
				covered.Add(interval.Iv{Lo: alo - ws, Hi: ahi + ws}.Intersect(span))
			}
		})

		// overlay = span - interior - (covered - matTouch)
		ov := &e.sideOv[side]
		ov.Reset()
		ov.Add(span)
		ov.SubtractSet(interior)
		prot := covered
		prot.SubtractSet(matTouch)
		ov.SubtractSet(prot)

		tip := isTip(r, side)
		sideSets[side] = ov
		for _, iv := range ov.Intervals() {
			o := Overlay{
				Pat: t.pat, Rect: r, Side: side,
				Lo: iv.Lo, Hi: iv.Hi, Tip: tip,
			}
			if tip {
				res.TipOverlayNM += iv.Len()
			} else {
				res.SideOverlayNM += iv.Len()
				if iv.Len() > ds.WLine {
					o.Hard = true
					res.HardOverlays++
				}
			}
			res.Overlays = append(res.Overlays, o)
		}
	}

	// Cut conflicts: cuts flanking the wire on opposite sides closer than
	// d_cut over the target (paper Section III-D). Opposite side overlays of
	// a w_line-wide wire are d_cut-violating by rule relation (2).
	addPairConflicts := func(a, bSide Side, across int) {
		if across >= ds.DCut {
			return
		}
		x := &e.xset
		x.CopyFrom(sideSets[a])
		x.IntersectSet(sideSets[bSide])
		for _, iv := range x.Intervals() {
			res.Conflicts = append(res.Conflicts, CutConflict{
				Pat: t.pat, Rect: r, Lo: iv.Lo, Hi: iv.Hi,
				Tips: isTip(r, a),
			})
		}
	}
	addPairConflicts(SideLeft, SideRight, r.W())
	addPairConflicts(SideBottom, SideTop, r.H())
}

// sideGeom returns the span interval along a side, the boundary coordinate,
// whether outward is the positive direction, and whether the span runs along
// the X axis.
func sideGeom(r geom.Rect, s Side) (span interval.Iv, b int, outPos, horiz bool) {
	switch s {
	case SideLeft:
		return interval.Iv{Lo: r.Y0, Hi: r.Y1}, r.X0, false, false
	case SideRight:
		return interval.Iv{Lo: r.Y0, Hi: r.Y1}, r.X1, true, false
	case SideBottom:
		return interval.Iv{Lo: r.X0, Hi: r.X1}, r.Y0, false, true
	default: // SideTop
		return interval.Iv{Lo: r.X0, Hi: r.X1}, r.Y1, true, true
	}
}

// project returns o's extents along the span axis (alo, ahi) and the
// perpendicular axis (plo, phi).
func project(o geom.Rect, horiz bool) (alo, ahi, plo, phi int) {
	if horiz {
		return o.X0, o.X1, o.Y0, o.Y1
	}
	return o.Y0, o.Y1, o.X0, o.X1
}

// touches reports whether a rect with perpendicular extent [plo,phi) covers
// the field row immediately outside a boundary at coordinate b.
func touches(b, plo, phi int, outPos bool) bool {
	if outPos {
		return plo <= b && phi > b
	}
	return phi >= b && plo < b
}

// coveredPerp reports whether material at perpendicular extent [plo,phi)
// places spacer over the field immediately outside a boundary at b:
// within w_spacer outward (inclusive) or strictly within w_spacer inward.
func coveredPerp(b, plo, phi int, outPos bool, ws int) bool {
	if outPos {
		return plo-b <= ws && b-phi < ws
	}
	return b-phi <= ws && plo-b < ws
}

// isTip reports whether a side of r is a wire end cap rather than a long
// side. Square rects have no tips: every boundary is treated as a side.
func isTip(r geom.Rect, s Side) bool {
	switch r.Orient() {
	case geom.OrientH:
		return s == SideLeft || s == SideRight
	case geom.OrientV:
		return s == SideTop || s == SideBottom
	default:
		return false
	}
}
