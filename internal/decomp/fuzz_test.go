package decomp_test

import (
	"reflect"
	"testing"

	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/rules"
)

// fuzzLayout decodes arbitrary bytes into a small layout: wire-like rects
// (on- or off-grid — the oracle must stay robust either way) with fuzzed
// colors. The decoding is total: every byte string yields a valid input.
func fuzzLayout(data []byte) decomp.Layout {
	ds := rules.Node10nm()
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	ly := decomp.Layout{
		Rules: ds,
		Die:   geom.Rect{X0: -400, Y0: -400, X1: 1600, Y1: 1600},
	}
	n := 1 + next()%6
	for i := 0; i < n; i++ {
		color := decomp.Color(next() % 3) // Unassigned, Core, Second
		var rects []geom.Rect
		for k := 0; k < 1+next()%2; k++ {
			x0 := next()*5 - 200
			y0 := next()*5 - 200
			w := 10 + next()%61
			h := 10 + next()%61
			rects = append(rects, geom.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + h})
		}
		ly.Pats = append(ly.Pats, decomp.Pattern{Net: i, Color: color, Rects: rects})
	}
	ly.NaiveAssists = next()%2 == 1
	return ly
}

// FuzzDecomposeCut stresses the decomposition oracle on arbitrary
// geometry: it must never panic, must be deterministic, and its aggregate
// metrics must stay self-consistent.
func FuzzDecomposeCut(f *testing.F) {
	f.Add([]byte{2, 1, 0, 10, 10, 5, 5, 2, 1, 60, 10, 5, 5})
	f.Add([]byte{5, 0, 1, 3, 3, 7, 9, 1, 1, 100, 100, 30, 30, 2, 0, 50, 50, 20, 20})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ly := fuzzLayout(data)
		res := decomp.DecomposeCut(ly)
		if again := decomp.DecomposeCut(ly); !reflect.DeepEqual(res, again) {
			t.Fatal("DecomposeCut is nondeterministic on identical input")
		}
		if res.SideOverlayNM < 0 || res.TipOverlayNM < 0 || res.HardOverlays < 0 {
			t.Fatalf("negative overlay metrics: %+v", res)
		}
		wantUnits := float64(res.SideOverlayNM) / float64(ly.Rules.WLine)
		if res.SideOverlayUnits != wantUnits {
			t.Fatalf("SideOverlayUnits=%v, want %v", res.SideOverlayUnits, wantUnits)
		}
		for _, m := range res.Materials {
			if m.Rect.Empty() {
				t.Fatalf("oracle emitted empty material rect %+v", m)
			}
		}
		// The trim decomposition shares the measurement core; keep it under
		// the same no-panic/determinism net.
		tr := decomp.DecomposeTrim(ly)
		if again := decomp.DecomposeTrim(ly); !reflect.DeepEqual(tr, again) {
			t.Fatal("DecomposeTrim is nondeterministic on identical input")
		}
	})
}
