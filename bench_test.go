// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure; see DESIGN.md §5 for the experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// The Table III/IV benches use scaled-down instances so a full -bench=.
// sweep stays laptop-friendly; cmd/experiments runs the paper-scale
// versions.
package sadp

import (
	"fmt"
	"testing"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/report"
	"sadproute/internal/router"
	"sadproute/internal/rules"
	"sadproute/internal/scenario"
)

func smallInstance(seed int64, cands int) *Netlist {
	return bench.Generate(bench.Spec{
		Name: "bench", Nets: 200, Tracks: 64, Layers: 3,
		Seed: seed, PinCandidates: cands, AvgHPWL: 6, Blockages: 2,
	})
}

// BenchmarkTable2ScenarioOracle regenerates the Table II color-rule data:
// oracle decomposition of every canonical scenario under every assignment.
func BenchmarkTable2ScenarioOracle(b *testing.B) {
	ds := rules.Node10nm()
	cells := func(horiz bool, fixed, c0, c1 int) geom.Rect {
		if horiz {
			return geom.Rect{X0: c0, Y0: fixed, X1: c1 + 1, Y1: fixed + 1}
		}
		return geom.Rect{X0: fixed, Y0: c0, X1: fixed + 1, Y1: c1 + 1}
	}
	nm := func(r geom.Rect) geom.Rect {
		p, w := ds.Pitch(), ds.WLine
		return geom.Rect{X0: r.X0 * p, Y0: r.Y0 * p, X1: (r.X1-1)*p + w, Y1: (r.Y1-1)*p + w}
	}
	pairs := [][2]geom.Rect{
		{cells(true, 5, 0, 4), cells(true, 6, 0, 4)},
		{cells(true, 5, 0, 4), cells(true, 7, 0, 4)},
		{cells(true, 5, 0, 4), cells(true, 5, 5, 9)},
		{cells(false, 2, 6, 10), cells(true, 5, 0, 4)},
		{cells(true, 5, 0, 4), cells(true, 6, 5, 9)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pr := range pairs {
			if _, ok := scenario.Classify(pr[0], pr[1], ds); !ok {
				continue
			}
			for a := scenario.CC; a <= scenario.SS; a++ {
				ca, cb := a.Colors()
				ly := decomp.Layout{Rules: ds,
					Die: geom.Rect{X0: -400, Y0: -400, X1: 1000, Y1: 1000},
					Pats: []decomp.Pattern{
						{Net: 0, Color: ca, Rects: []geom.Rect{nm(pr[0])}},
						{Net: 1, Color: cb, Rects: []geom.Rect{nm(pr[1])}},
					}}
				decomp.DecomposeCut(ly)
			}
		}
	}
}

// BenchmarkTable3Ours / TrimBaseline / CutNoMerge regenerate one Table III
// row each on a scaled instance (fixed pins).
func BenchmarkTable3Ours(b *testing.B) {
	benchAlgo(b, bench.AlgoOurs, 1)
}

func BenchmarkTable3TrimBaseline(b *testing.B) {
	benchAlgo(b, bench.AlgoTrimGreedy, 1)
}

func BenchmarkTable3CutNoMerge(b *testing.B) {
	benchAlgo(b, bench.AlgoCutNoMerge, 1)
}

// BenchmarkTable4Ours / Exhaustive regenerate Table IV rows (multiple pin
// candidate locations).
func BenchmarkTable4Ours(b *testing.B) {
	benchAlgo(b, bench.AlgoOurs, 3)
}

func BenchmarkTable4Exhaustive(b *testing.B) {
	benchAlgo(b, bench.AlgoTrimExhaustive, 3)
}

func benchAlgo(b *testing.B, algo bench.Algo, cands int) {
	b.ReportAllocs()
	cfg := bench.RunConfig{Rules: rules.Node10nm(), Budget: 5 * time.Minute}
	var last bench.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		last, err = bench.Run(smallInstance(11, cands), algo, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.RoutabilityPct, "routability%")
	b.ReportMetric(last.OverlayUnits, "overlay-units")
	b.ReportMetric(float64(last.Conflicts+last.HardOverlays), "#C")
}

// BenchmarkFig20Scaling measures the runtime-vs-nets series and reports the
// fitted exponent (paper: ~ n^1.42).
func BenchmarkFig20Scaling(b *testing.B) {
	b.ReportAllocs()
	sizes := []struct {
		nets, tracks int
	}{{100, 48}, {200, 64}, {400, 96}, {800, 128}}
	var k float64
	for i := 0; i < b.N; i++ {
		var xs, ys []float64
		for _, s := range sizes {
			nl := bench.Generate(bench.Spec{
				Name: fmt.Sprintf("f20-%d", s.nets), Nets: s.nets, Tracks: s.tracks,
				Layers: 3, Seed: 20, PinCandidates: 1, AvgHPWL: s.tracks / 10, Blockages: 2,
			})
			res := router.Route(nl, rules.Node10nm(), router.Defaults())
			xs = append(xs, float64(s.nets))
			ys = append(ys, res.CPU.Seconds())
		}
		k, _ = report.LogLogFit(xs, ys)
	}
	b.ReportMetric(k, "exponent")
}

// BenchmarkFig21OddCycle regenerates the Fig. 21 micro-demonstration.
func BenchmarkFig21OddCycle(b *testing.B) {
	ds := rules.Node10nm()
	w := func(horiz bool, fixed, c0, c1 int) geom.Rect {
		p, wl := ds.Pitch(), ds.WLine
		if horiz {
			return geom.Rect{X0: c0 * p, Y0: fixed * p, X1: c1*p + wl, Y1: fixed*p + wl}
		}
		return geom.Rect{X0: fixed * p, Y0: c0 * p, X1: fixed*p + wl, Y1: c1*p + wl}
	}
	ly := decomp.Layout{Rules: ds, Die: geom.Rect{X0: -200, Y0: -200, X1: 800, Y1: 800},
		Pats: []decomp.Pattern{
			{Net: 0, Color: decomp.Second, Rects: []geom.Rect{w(false, 2, 0, 8)}},
			{Net: 1, Color: decomp.Core, Rects: []geom.Rect{w(false, 3, 0, 8)}},
			{Net: 2, Color: decomp.Second, Rects: []geom.Rect{
				w(false, 4, 0, 10), w(true, 10, 1, 4), w(false, 1, 8, 10)}},
		}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := decomp.DecomposeCut(ly)
		if res.HardOverlays != 0 || len(res.Conflicts) != 0 {
			b.Fatal("odd cycle must decompose cleanly")
		}
	}
}

// Ablation benches: the design choices DESIGN.md calls out.
func BenchmarkAblationNoColorFlip(b *testing.B) {
	benchAblation(b, func(o *router.Options) { o.ColorFlip = false })
}
func BenchmarkAblationNoGamma(b *testing.B) {
	benchAblation(b, func(o *router.Options) { o.Gamma2 = 0 })
}
func BenchmarkAblationNoWindow(b *testing.B) {
	benchAblation(b, func(o *router.Options) { o.WindowCheck = false })
}
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, func(o *router.Options) {}) }

func benchAblation(b *testing.B, mod func(*router.Options)) {
	b.ReportAllocs()
	var overlay float64
	for i := 0; i < b.N; i++ {
		opt := router.Defaults()
		mod(&opt)
		res := router.Route(smallInstance(13, 1), rules.Node10nm(), opt)
		_, tot := decomp.DecomposeLayers(res.Layouts())
		overlay = tot.SideOverlayUnits
	}
	b.ReportMetric(overlay, "overlay-units")
}

// BenchmarkDecomposeOracle measures raw oracle throughput on a routed
// medium instance (the substrate cost of every evaluation in the tables).
func BenchmarkDecomposeOracle(b *testing.B) {
	res := router.Route(smallInstance(17, 1), rules.Node10nm(), router.Defaults())
	layouts := res.Layouts()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		decomp.DecomposeLayers(layouts)
	}
}

// BenchmarkDecompCacheMiss measures the memo cache's miss path — key
// serialization, oracle run, entry store — on a stream of distinct
// layouts, and doubles as a regression guard: the miss path must
// serialize the canonical key exactly once per lookup (the stored entry
// reuses the bytes built for the probe). Rebuilding the key to store the
// entry would double KeyBuilds and fail the assertion, not just slow the
// benchmark down.
func BenchmarkDecompCacheMiss(b *testing.B) {
	res := router.Route(smallInstance(23, 1), rules.Node10nm(), router.Defaults())
	layouts := res.Layouts()
	var nonEmpty []decomp.Layout
	for _, ly := range layouts {
		if len(ly.Pats) > 0 {
			nonEmpty = append(nonEmpty, ly)
		}
	}
	if len(nonEmpty) == 0 {
		b.Fatal("routed instance produced no layouts")
	}
	b.ResetTimer()
	b.ReportAllocs()
	var lookups int64
	c := decomp.NewCache(0)
	for i := 0; i < b.N; i++ {
		// The per-iteration deep copy is setup, not cache work: shift the
		// die by one pitch per iteration — same workload shape, distinct
		// canonical key, so every lookup is a miss until the FIFO wraps
		// (and wrap evictions are part of the measured path).
		b.StopTimer()
		ly := nonEmpty[i%len(nonEmpty)]
		d := geom.Pt{X: (i + 1) * rules.Node10nm().Pitch()}
		shifted := ly
		shifted.Die = ly.Die.Translate(d)
		shifted.Pats = make([]decomp.Pattern, len(ly.Pats))
		for j, p := range ly.Pats {
			q := p
			q.Rects = make([]geom.Rect, len(p.Rects))
			for k, r := range p.Rects {
				q.Rects[k] = r.Translate(d)
			}
			shifted.Pats[j] = q
		}
		b.StartTimer()
		c.DecomposeCut(shifted, nil)
		lookups++
	}
	b.StopTimer()
	if got := c.KeyBuilds(); got != lookups {
		b.Fatalf("miss path regression: %d key serializations for %d lookups (want exactly one each)", got, lookups)
	}
}

// BenchmarkAStar measures the search engine on an empty grid.
func BenchmarkAStar(b *testing.B) {
	nl := smallInstance(19, 1)
	ds := rules.Node10nm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		router.Route(nl, ds, router.Options{
			Alpha: 1, Beta: 1, MaxRipup: 0, MaxExpand: 400000,
		})
		b.StopTimer()
		nl = smallInstance(19, 1)
		b.StartTimer()
	}
}
