package sadp

import (
	"bytes"
	"fmt"
	"testing"

	"sadproute/internal/obs"
)

// intraparSpecs are the benchmarks of the intra-instance parallelism
// equivalence suite: varied density, pin multiplicity and blockage count,
// small enough that each routes 5x (serial + four worker counts) in
// seconds yet large enough that waves regularly hold many nets.
var intraparSpecs = []Spec{
	{Name: "eqA", Nets: 140, Tracks: 56, Layers: 3, Seed: 301, PinCandidates: 1, AvgHPWL: 5, Blockages: 2},
	{Name: "eqB", Nets: 120, Tracks: 48, Layers: 3, Seed: 302, PinCandidates: 2, AvgHPWL: 6, Blockages: 3},
	{Name: "eqC", Nets: 200, Tracks: 72, Layers: 3, Seed: 303, PinCandidates: 3, AvgHPWL: 7, Blockages: 4},
}

// routeDump routes one spec at the given worker count and returns a
// canonical dump of everything observable about the run — paths, colors,
// wirelength, decomposition totals, obs counters, and the raw JSONL trace
// bytes. Stage times and CPU are wall-clock and excluded; the sched.*
// counters are zeroed because they exist only in parallel runs (every
// other counter must match the serial run exactly).
func routeDump(t *testing.T, sp Spec, workers int) (string, string) {
	t.Helper()
	nl := Generate(sp)
	opt := Defaults()
	opt.NetWorkers = workers
	rec := NewRecorder()
	var tr bytes.Buffer
	rec.SetTrace(&tr)
	opt.Obs = rec
	res := Route(nl, Node10nm(), opt)
	if err := rec.TraceErr(); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	snap.ZeroFamily("sched.")
	var b bytes.Buffer
	fmt.Fprintf(&b, "routed=%d failed=%d wl=%d vias=%d\n",
		res.Routed, res.Failed, res.WirelengthCells, res.Vias)
	b.WriteString(snap.CountersString())
	// Per-net attribution is driven entirely by the serial commit phase, so
	// the table — unlike the sched.* family — must match the serial run
	// exactly, in canonical net order.
	b.WriteString(obs.NetStatsString(rec.NetStats()))
	fmt.Fprintf(&b, "paths=%v\n", res.Paths)
	fmt.Fprintf(&b, "colors=%v\n", res.Colors)
	layers, tot := Evaluate(res)
	fmt.Fprintf(&b, "totals=%+v\n", tot)
	for i, lr := range layers {
		fmt.Fprintf(&b, "layer%d: so=%d tip=%d hard=%d conf=%d\n",
			i, lr.SideOverlayNM, lr.TipOverlayNM, lr.HardOverlays, len(lr.Conflicts))
	}
	return b.String(), tr.String()
}

// TestIntraParallelMatchesSerial is the tentpole's equivalence guarantee:
// routing with Options.NetWorkers in {1, 2, 4, 8} produces a byte-identical
// result — paths, colors, overlay totals, every non-sched counter, and the
// JSONL trace stream — to the serial router on every benchmark of the
// suite. CI runs this test under -race as well, so the speculative phase
// is also checked for data races at every worker count.
func TestIntraParallelMatchesSerial(t *testing.T) {
	for _, sp := range intraparSpecs {
		t.Run(sp.Name, func(t *testing.T) {
			want, wantTr := routeDump(t, sp, 0)
			for _, w := range []int{1, 2, 4, 8} {
				got, gotTr := routeDump(t, sp, w)
				if got != want {
					t.Fatalf("NetWorkers=%d diverges from serial:\n--- serial\n%s\n--- workers=%d\n%s",
						w, want, w, got)
				}
				if gotTr != wantTr {
					i := 0
					for i < len(wantTr) && i < len(gotTr) && wantTr[i] == gotTr[i] {
						i++
					}
					lo := i - 120
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("NetWorkers=%d trace diverges from serial at byte %d:\n--- serial\n...%s\n--- workers=%d\n...%s",
						w, i, wantTr[lo:min(i+120, len(wantTr))], w, gotTr[lo:min(i+120, len(gotTr))])
				}
			}
		})
	}
}

// TestIntraParallelSpeculationEngages guards against the scheduler
// silently degenerating to serial (e.g. waves of size one everywhere):
// across the suite, parallel runs must both validate some speculative
// searches and exercise the retry path at least once somewhere — the
// equivalence test above is only meaningful if both paths run.
func TestIntraParallelSpeculationEngages(t *testing.T) {
	var hits, retries, waves int64
	for _, sp := range intraparSpecs {
		nl := Generate(sp)
		opt := Defaults()
		opt.NetWorkers = 4
		rec := NewRecorder()
		opt.Obs = rec
		Route(nl, Node10nm(), opt)
		snap := rec.Snapshot()
		hits += snap.Counter(obs.CtrSchedSpecHits)
		retries += snap.Counter(obs.CtrSchedSpecRetries)
		waves += snap.Counter(obs.CtrSchedWaves)
		if got, want := snap.Counter(obs.CtrSchedSpecHits)+snap.Counter(obs.CtrSchedSpecRetries),
			snap.Counter(obs.CtrSchedSpecSearches); got > want {
			t.Errorf("%s: consumed %d speculative results but only %d were produced", sp.Name, got, want)
		}
	}
	if waves == 0 {
		t.Fatal("scheduler never formed a wave")
	}
	if hits == 0 {
		t.Error("no speculative search was ever validated: the parallel path is degenerate")
	}
	if retries == 0 {
		t.Log("note: no speculative retry occurred on this suite (validation path untested here; covered by fuzz)")
	}
}
