module sadproute

go 1.22
