// Command benchdiff compares two benchmark ledgers (BENCH_<rev>.json,
// written by experiments -bench-json) and flags wall-clock regressions
// with noise-aware thresholds:
//
//	benchdiff old.json new.json                # exit 1 on regression
//	benchdiff -threshold 1.5 old.json new.json # tolerate 50% noise
//	benchdiff -advisory old.json new.json      # report, always exit 0
//
// A cell regresses only when its wall time exceeds BOTH gates: the ratio
// threshold (new > old × -threshold) and the absolute floor (new − old >
// -min-delta). The two gates together keep microsecond cells from
// tripping the ratio test and long cells from hiding behind it.
//
// Timing sections are measurement, not identity (see internal/bench
// ledger docs): benchdiff warns when the two ledgers ran with different
// -jobs or core counts, and reports deterministic-section drift
// (wirelength, conflicts, counters) separately — det drift is a behavior
// change to explain in review, not a perf regression.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sadproute/internal/bench"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run diffs the two ledgers named by args and returns the process exit
// code: 0 clean (or -advisory), 1 when a regression was flagged.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		threshold = fs.Float64("threshold", 1.30, "ratio gate: flag when new wall > old wall x this")
		minDelta  = fs.Duration("min-delta", 100*time.Millisecond, "absolute gate: and new - old exceeds this")
		advisory  = fs.Bool("advisory", false, "report regressions but exit 0 (CI advisory mode)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stdout, "usage: benchdiff [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, nil
		}
		return 0, err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 0, fmt.Errorf("want exactly 2 ledger paths, got %d", fs.NArg())
	}
	oldL, err := bench.ReadLedger(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newL, err := bench.ReadLedger(fs.Arg(1))
	if err != nil {
		return 0, err
	}

	regressions := diff(stdout, oldL, newL, *threshold, *minDelta)
	if regressions > 0 && !*advisory {
		return 1, nil
	}
	return 0, nil
}

// diff renders the comparison and returns the regression count.
func diff(w io.Writer, oldL, newL *bench.Ledger, threshold float64, minDelta time.Duration) int {
	fmt.Fprintf(w, "benchdiff %s -> %s (threshold %.2fx, min-delta %s)\n",
		oldL.Rev, newL.Rev, threshold, minDelta)
	if oldL.Env.Jobs != newL.Env.Jobs || oldL.Env.NumCPU != newL.Env.NumCPU {
		fmt.Fprintf(w, "WARNING: environments differ (jobs %d->%d, cpus %d->%d); timings are noisy across configs\n",
			oldL.Env.Jobs, newL.Env.Jobs, oldL.Env.NumCPU, newL.Env.NumCPU)
	}

	oldByKey := make(map[string]*bench.LedgerCell, len(oldL.Cells))
	for i := range oldL.Cells {
		oldByKey[oldL.Cells[i].Key()] = &oldL.Cells[i]
	}
	seen := make(map[string]bool, len(newL.Cells))

	var regressions, improved, drifted int
	fmt.Fprintf(w, "\n%-40s %12s %12s %8s  %s\n", "cell", "old wall", "new wall", "ratio", "verdict")
	for i := range newL.Cells {
		nc := &newL.Cells[i]
		key := nc.Key()
		seen[key] = true
		oc, ok := oldByKey[key]
		if !ok {
			fmt.Fprintf(w, "%-40s %12s %12s %8s  new cell (no baseline)\n", key, "-",
				fmtNS(nc.Timing.WallNS), "-")
			continue
		}
		ratio := 0.0
		if oc.Timing.WallNS > 0 {
			ratio = float64(nc.Timing.WallNS) / float64(oc.Timing.WallNS)
		}
		delta := time.Duration(nc.Timing.WallNS - oc.Timing.WallNS)
		verdict := "ok"
		switch {
		case oc.Timing.WallNS > 0 && ratio > threshold && delta > minDelta:
			verdict = fmt.Sprintf("REGRESSION (+%s)", delta.Round(time.Millisecond))
			regressions++
		case oc.Timing.WallNS > 0 && ratio < 1/threshold && -delta > minDelta:
			verdict = fmt.Sprintf("improved (%s)", delta.Round(time.Millisecond))
			improved++
		}
		fmt.Fprintf(w, "%-40s %12s %12s %7.2fx  %s\n",
			key, fmtNS(oc.Timing.WallNS), fmtNS(nc.Timing.WallNS), ratio, verdict)
		if note := detDrift(oc, nc); note != "" {
			fmt.Fprintf(w, "%-40s   det drift: %s\n", "", note)
			drifted++
		}
	}
	for i := range oldL.Cells {
		if key := oldL.Cells[i].Key(); !seen[key] {
			fmt.Fprintf(w, "%-40s %12s %12s %8s  cell missing from new ledger\n",
				key, fmtNS(oldL.Cells[i].Timing.WallNS), "-", "-")
		}
	}

	fmt.Fprintf(w, "\n%d cells: %d regression(s), %d improved, %d with det drift\n",
		len(newL.Cells), regressions, improved, drifted)
	return regressions
}

// detDrift summarizes deterministic-section changes between matched
// cells. Any drift means the revisions do different work on the same
// spec — legitimate when an algorithm changed, but it must be visible.
func detDrift(oc, nc *bench.LedgerCell) string {
	ob, _ := json.Marshal(oc.Det)
	nb, _ := json.Marshal(nc.Det)
	if string(ob) == string(nb) {
		return ""
	}
	var notes []byte
	add := func(name string, o, n int64) {
		if o != n {
			notes = fmt.Appendf(notes, " %s %d->%d", name, o, n)
		}
	}
	add("wirelength", int64(oc.Det.Wirelength), int64(nc.Det.Wirelength))
	add("vias", int64(oc.Det.Vias), int64(nc.Det.Vias))
	add("conflicts", int64(oc.Det.Conflicts), int64(nc.Det.Conflicts))
	add("overlay_nm", int64(oc.Det.OverlayNM), int64(nc.Det.OverlayNM))
	add("ripups", int64(oc.Det.Ripups), int64(nc.Det.Ripups))
	add("violations", int64(oc.Det.Violations), int64(nc.Det.Violations))
	if len(notes) == 0 {
		return "counters/hists/attribution changed (result metrics identical)"
	}
	return string(notes[1:])
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
