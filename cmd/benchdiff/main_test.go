package main

import (
	"path/filepath"
	"strings"
	"testing"

	"sadproute/internal/bench"
)

// testLedger builds a small synthetic ledger; wallNS scales every cell's
// wall time so tests can inject slowdowns.
func testLedger(rev string, wallScale int64) *bench.Ledger {
	l := bench.NewLedger(rev, 1)
	l.Env.Jobs, l.Env.NumCPU = 1, 8 // pin so the env warning stays off
	for _, c := range []struct {
		bench  string
		wallNS int64
		wl     int
	}{
		{"Test1-t", 400e6, 1200},
		{"Test2-t", 900e6, 2500},
	} {
		l.Cells = append(l.Cells, bench.LedgerCell{
			Exp: "table3", Bench: c.bench, Algo: "ours",
			Det: bench.LedgerDet{
				Nets: 50, Wirelength: c.wl, Vias: 80, Ripups: 3,
				Counters: map[string]int64{"router.attempts": 55},
			},
			Timing: bench.LedgerTiming{WallNS: c.wallNS * wallScale, CPUNS: c.wallNS * wallScale},
		})
	}
	return l
}

func writeLedger(t *testing.T, l *bench.Ledger, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIdenticalLedgersPass is half of the acceptance criterion: two
// identical ledgers diff clean with exit code 0.
func TestIdenticalLedgersPass(t *testing.T) {
	a := writeLedger(t, testLedger("seed", 1), "BENCH_a.json")
	b := writeLedger(t, testLedger("seed", 1), "BENCH_b.json")
	var out strings.Builder
	code, err := run([]string{a, b}, &out)
	if err != nil {
		t.Fatalf("diff failed: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("identical ledgers exited %d:\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("identical ledgers flagged a regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

// TestInjectedSlowdownFlagged is the other half: a 2x slowdown trips the
// default 1.30x/100ms gates and exits 1.
func TestInjectedSlowdownFlagged(t *testing.T) {
	old := writeLedger(t, testLedger("seed", 1), "BENCH_old.json")
	slow := writeLedger(t, testLedger("head", 2), "BENCH_new.json")
	var out strings.Builder
	code, err := run([]string{old, slow}, &out)
	if err != nil {
		t.Fatalf("diff failed: %v\n%s", err, out.String())
	}
	if code != 1 {
		t.Fatalf("2x slowdown exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "2 regression(s)") {
		t.Fatalf("2x slowdown not flagged on both cells:\n%s", out.String())
	}

	// -advisory reports the same regressions but exits 0 for CI.
	out.Reset()
	code, err = run([]string{"-advisory", old, slow}, &out)
	if err != nil || code != 0 {
		t.Fatalf("advisory mode: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("advisory mode hid the regression:\n%s", out.String())
	}
}

// TestNoiseGates proves both gates must trip: a big ratio on a tiny cell
// (under -min-delta) and a small ratio on a big cell both pass.
func TestNoiseGates(t *testing.T) {
	old := testLedger("seed", 1)
	niu := testLedger("head", 1)
	niu.Cells[0].Timing.WallNS = old.Cells[0].Timing.WallNS / 100 * 100 // unchanged
	// Tiny cell: 3x ratio but only +20ms absolute — under the 100ms floor.
	old.Cells[0].Timing.WallNS = 10e6
	niu.Cells[0].Timing.WallNS = 30e6
	// Big cell: +200ms absolute but only 1.22x — under the 1.30x ratio.
	old.Cells[1].Timing.WallNS = 900e6
	niu.Cells[1].Timing.WallNS = 1100e6
	a := writeLedger(t, old, "BENCH_old.json")
	b := writeLedger(t, niu, "BENCH_new.json")
	var out strings.Builder
	code, err := run([]string{a, b}, &out)
	if err != nil || code != 0 {
		t.Fatalf("noise within gates flagged: code=%d err=%v\n%s", code, err, out.String())
	}
}

// TestDetDriftReported proves deterministic-section changes surface as
// notes without failing the diff.
func TestDetDriftReported(t *testing.T) {
	old := testLedger("seed", 1)
	niu := testLedger("head", 1)
	niu.Cells[1].Det.Wirelength += 40
	a := writeLedger(t, old, "BENCH_old.json")
	b := writeLedger(t, niu, "BENCH_new.json")
	var out strings.Builder
	code, err := run([]string{a, b}, &out)
	if err != nil || code != 0 {
		t.Fatalf("det drift must not fail the diff: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "det drift") || !strings.Contains(out.String(), "wirelength 2500->2540") {
		t.Fatalf("det drift not reported:\n%s", out.String())
	}
}

// TestCellSetChanges reports added and removed cells.
func TestCellSetChanges(t *testing.T) {
	old := testLedger("seed", 1)
	niu := testLedger("head", 1)
	niu.Cells[0].Bench = "Test9-t" // renames: one missing, one new
	a := writeLedger(t, old, "BENCH_old.json")
	b := writeLedger(t, niu, "BENCH_new.json")
	var out strings.Builder
	if _, err := run([]string{a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "new cell") || !strings.Contains(out.String(), "missing from new ledger") {
		t.Fatalf("cell set changes not reported:\n%s", out.String())
	}
}

// TestBadArgs pins the CLI error contract.
func TestBadArgs(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"only-one.json"}, &out); err == nil {
		t.Fatal("one path should error")
	}
	if _, err := run([]string{"a.json", "b.json"}, &out); err == nil {
		t.Fatal("unreadable ledgers should error")
	}
	if code, err := run([]string{"-h"}, &out); err != nil || code != 0 {
		t.Fatalf("-h: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "usage: benchdiff") {
		t.Fatalf("-h did not print usage:\n%s", out.String())
	}
}
