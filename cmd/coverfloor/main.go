// Command coverfloor enforces the repository's per-package statement
// coverage floors (coverage-floors.tsv at the repo root):
//
//	go test ./... -coverprofile=/tmp/cover.out
//	coverfloor -profile /tmp/cover.out -floors coverage-floors.tsv
//
// It fails (exit 1) when any package's coverage drops below its floor,
// when a package in the profile has no floor (new packages must declare
// one), or when a floor references a package absent from the profile
// (stale floors must be pruned). Regenerate the floors file after an
// intentional coverage change with:
//
//	coverfloor -profile /tmp/cover.out -write > coverage-floors.tsv
//
// -write emits each package's current coverage minus a small slack
// (-slack, default 2 points) rounded down to one decimal, so ordinary
// test-order jitter never trips the gate but a deleted test does.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "coverfloor:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("coverfloor", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		profile = fs.String("profile", "", "cover profile from `go test -coverprofile`")
		floors  = fs.String("floors", "coverage-floors.tsv", "TSV file of package -> minimum coverage percent")
		write   = fs.Bool("write", false, "print a fresh floors file to stdout instead of checking")
		slack   = fs.Float64("slack", 2.0, "percentage points subtracted from current coverage when writing floors")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *profile == "" {
		fs.Usage()
		return errors.New("missing -profile")
	}

	cov, err := coverageByPackage(*profile)
	if err != nil {
		return err
	}
	pkgs := make([]string, 0, len(cov))
	for p := range cov {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	if *write {
		for _, p := range pkgs {
			f := cov[p] - *slack
			if f < 0 {
				f = 0
			}
			// Round down to one decimal so the floor never exceeds intent.
			fmt.Fprintf(stdout, "%s\t%.1f\n", p, float64(int(f*10))/10)
		}
		return nil
	}

	want, err := readFloors(*floors)
	if err != nil {
		return err
	}
	var failures []string
	for _, p := range pkgs {
		floor, ok := want[p]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: %.1f%% covered but has no floor in %s — add one", p, cov[p], *floors))
			continue
		}
		if cov[p] < floor {
			failures = append(failures, fmt.Sprintf("%s: %.1f%% covered, floor is %.1f%%", p, cov[p], floor))
		}
		delete(want, p)
	}
	stale := make([]string, 0, len(want))
	for p := range want {
		stale = append(stale, p)
	}
	sort.Strings(stale)
	for _, p := range stale {
		failures = append(failures, fmt.Sprintf("%s: floor declared but package absent from profile — prune it", p))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL", f)
		}
		return fmt.Errorf("%d coverage floor violation(s)", len(failures))
	}
	fmt.Fprintf(stdout, "coverage floors hold for %d packages\n", len(pkgs))
	return nil
}

// coverageByPackage parses a cover profile into per-package statement
// coverage percentages. Duplicate blocks (possible under -coverpkg) keep
// the maximum observed count.
func coverageByPackage(profilePath string) (map[string]float64, error) {
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type block struct {
		stmts, count int
	}
	blocks := map[string]block{} // "file:range" -> block
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:sl.sc,el.ec numStmts count
		sp := strings.LastIndexByte(line, ' ')
		sp2 := strings.LastIndexByte(line[:sp], ' ')
		if sp < 0 || sp2 < 0 {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err1 := strconv.Atoi(line[sp2+1 : sp])
		count, err2 := strconv.Atoi(line[sp+1:])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("malformed profile line: %q", line)
		}
		key := line[:sp2]
		b := blocks[key]
		b.stmts = stmts
		if count > b.count {
			b.count = count
		}
		blocks[key] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	type tally struct {
		total, covered int
	}
	per := map[string]*tally{}
	for key, b := range blocks {
		colon := strings.LastIndexByte(key, ':')
		if colon < 0 {
			return nil, fmt.Errorf("malformed block key: %q", key)
		}
		pkg := path.Dir(key[:colon])
		t := per[pkg]
		if t == nil {
			t = &tally{}
			per[pkg] = t
		}
		t.total += b.stmts
		if b.count > 0 {
			t.covered += b.stmts
		}
	}
	out := make(map[string]float64, len(per))
	for pkg, t := range per {
		if t.total == 0 {
			continue
		}
		out[pkg] = 100 * float64(t.covered) / float64(t.total)
	}
	return out, nil
}

// readFloors parses the TSV floors file: "package<TAB>percent" per line,
// '#' comments and blank lines ignored.
func readFloors(floorsPath string) (map[string]float64, error) {
	f, err := os.Open(floorsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package<TAB>percent\", got %q", floorsPath, lineno, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad percent %q", floorsPath, lineno, fields[1])
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}
