package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
sadproute/internal/foo/a.go:10.2,12.3 3 1
sadproute/internal/foo/a.go:14.2,15.3 1 0
sadproute/internal/bar/b.go:1.2,2.3 2 5
sadproute/internal/bar/b.go:1.2,2.3 2 0
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCoverageByPackage(t *testing.T) {
	cov, err := coverageByPackage(writeFile(t, "cover.out", sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	// foo: 3 of 4 statements covered; bar: duplicate block keeps max count.
	if got := cov["sadproute/internal/foo"]; got != 75 {
		t.Errorf("foo coverage = %v, want 75", got)
	}
	if got := cov["sadproute/internal/bar"]; got != 100 {
		t.Errorf("bar coverage = %v, want 100", got)
	}
}

func TestCheckModes(t *testing.T) {
	profile := writeFile(t, "cover.out", sampleProfile)
	cases := []struct {
		name, floors string
		wantErr      string
	}{
		{"holds", "sadproute/internal/foo\t70.0\nsadproute/internal/bar\t99.0\n", ""},
		{"below", "sadproute/internal/foo\t80.0\nsadproute/internal/bar\t99.0\n", "violation"},
		{"missing floor", "sadproute/internal/foo\t70.0\n", "violation"},
		{"stale floor", "sadproute/internal/foo\t70.0\nsadproute/internal/bar\t99.0\nsadproute/internal/gone\t10.0\n", "violation"},
		{"comments and blanks ok", "# floors\n\nsadproute/internal/foo\t70.0\nsadproute/internal/bar\t99.0\n", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			floors := writeFile(t, "floors.tsv", c.floors)
			var out strings.Builder
			err := run([]string{"-profile", profile, "-floors", floors}, &out)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v\n%s", err, out.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q\n%s", err, c.wantErr, out.String())
			}
		})
	}
}

func TestWriteMode(t *testing.T) {
	profile := writeFile(t, "cover.out", sampleProfile)
	var out strings.Builder
	if err := run([]string{"-profile", profile, "-write", "-slack", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	want := "sadproute/internal/bar\t98.0\nsadproute/internal/foo\t73.0\n"
	if out.String() != want {
		t.Errorf("-write output:\n%q\nwant:\n%q", out.String(), want)
	}
	// The emitted file must round-trip through the checker cleanly.
	floors := writeFile(t, "floors.tsv", out.String())
	var check strings.Builder
	if err := run([]string{"-profile", profile, "-floors", floors}, &check); err != nil {
		t.Fatalf("freshly written floors do not hold: %v\n%s", err, check.String())
	}
}
