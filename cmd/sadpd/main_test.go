package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sadproute/internal/serve"
)

// syncBuf is a goroutine-safe writer: run() writes from the daemon
// goroutine while the test polls for the listen line.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`sadpd listening on (\S+)`)

// startDaemon runs the daemon on a free port and returns its base URL,
// the signal channel that stops it, the output buffer, and a channel
// carrying run's error.
func startDaemon(t *testing.T, args ...string) (string, chan os.Signal, *syncBuf, chan error) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	out := &syncBuf{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, sig)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], sig, out, errc
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed the listen line:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitDone polls the job until it is terminal, failing unless it is done.
func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State.Terminal() {
			if st.State != serve.StateDone {
				t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonLifecycle boots the daemon, submits the checked-in example
// job over real HTTP, fetches the result, then shuts down via the signal
// path and checks the drain log.
func TestDaemonLifecycle(t *testing.T) {
	reqBody, err := os.ReadFile("../../examples/api/request.json")
	if err != nil {
		t.Fatalf("reading example request: %v", err)
	}
	base, sig, out, errc := startDaemon(t, "-workers", "2", "-queue", "4")

	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, ack)
	}
	wantAck, err := os.ReadFile("../../examples/api/submit-response.json")
	if err != nil {
		t.Fatalf("reading example ack: %v", err)
	}
	if !bytes.Equal(ack, wantAck) {
		t.Errorf("live ack %s diverges from examples/api/submit-response.json %s", ack, wantAck)
	}
	waitDone(t, base, "j1")

	resp, err = http.Get(base + "/v1/jobs/j1/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	res, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantRes, err := os.ReadFile("../../examples/api/result.json")
	if err != nil {
		t.Fatalf("reading example result: %v", err)
	}
	if !bytes.Equal(res, wantRes) {
		t.Errorf("live result (%d bytes) diverges from examples/api/result.json (%d bytes)", len(res), len(wantRes))
	}

	sig <- os.Interrupt
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(time.Minute):
		t.Fatalf("daemon did not stop\n%s", out.String())
	}
	log := out.String()
	if !strings.Contains(log, "sadpd draining") || !strings.Contains(log, "sadpd stopped") {
		t.Errorf("missing drain/stop lines in log:\n%s", log)
	}
}

// TestDaemonJournalRecovery runs the daemon twice on the same journal:
// the second boot must restore the first run's finished job and continue
// the ID sequence.
func TestDaemonJournalRecovery(t *testing.T) {
	reqBody, err := os.ReadFile("../../examples/api/request.json")
	if err != nil {
		t.Fatalf("reading example request: %v", err)
	}
	journal := filepath.Join(t.TempDir(), "jobs.jsonl")

	base, sig, out, errc := startDaemon(t, "-journal", journal)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitDone(t, base, "j1")
	sig <- os.Interrupt
	if err := <-errc; err != nil {
		t.Fatalf("first run: %v\n%s", err, out.String())
	}

	base2, sig2, out2, errc2 := startDaemon(t, "-journal", journal)
	resp, err = http.Get(base2 + "/v1/jobs/j1/result")
	if err != nil {
		t.Fatalf("GET recovered result: %v", err)
	}
	var recovered serve.Result
	err = json.NewDecoder(resp.Body).Decode(&recovered)
	resp.Body.Close()
	if err != nil || recovered.State != serve.StateDone {
		t.Fatalf("recovered result: err=%v state=%s", err, recovered.State)
	}

	resp, err = http.Post(base2+"/v1/jobs", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST after recovery: %v", err)
	}
	var ack serve.SubmitResponse
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if ack.ID != "j2" {
		t.Errorf("post-recovery ID %s, want j2", ack.ID)
	}
	waitDone(t, base2, "j2")
	sig2 <- os.Interrupt
	if err := <-errc2; err != nil {
		t.Fatalf("second run: %v\n%s", err, out2.String())
	}
}

// TestFlags covers the CLI error paths.
func TestFlags(t *testing.T) {
	var out syncBuf
	if err := run([]string{"-h"}, &out, nil); err != nil {
		t.Errorf("-h: %v", err)
	}
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-journal", filepath.Join(t.TempDir(), "nodir", "j.jsonl")}, &out, nil); err == nil {
		t.Error("unopenable journal accepted")
	}
}
