// Command sadpd is the routing-as-a-service daemon: a long-lived HTTP
// server that accepts netlist+rules routing jobs as JSON, runs them on a
// bounded worker pool, and streams per-job progress over SSE. API
// reference: docs/sadpd-api.md; operations runbook: docs/operations.md.
//
//	sadpd -addr :8080 -workers 4 -queue 32
//	sadpd -addr :8080 -journal jobs.jsonl      # restart recovery
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions get 503,
// queued and running jobs finish (or are cancelled at -drain-timeout),
// then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sadproute/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sig); err != nil {
		fmt.Fprintln(os.Stderr, "sadpd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it serves until a value arrives on
// sig (tests send on their own channel; main wires SIGINT/SIGTERM), then
// drains and shuts down.
func run(args []string, stdout io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("sadpd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = fs.Int("workers", serve.DefaultWorkers, "concurrent routing jobs (see docs/operations.md for sizing vs per-job net_workers)")
		queue        = fs.Int("queue", serve.DefaultQueueDepth, "admission queue depth; full queue answers 429 + Retry-After")
		journal      = fs.String("journal", "", "append-only JSONL job journal; replayed on startup for restart recovery")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM before in-flight jobs are cancelled")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	cfg := serve.Config{Workers: *workers, QueueDepth: *queue}
	var jf *os.File
	if *journal != "" {
		var err error
		jf, err = os.OpenFile(*journal, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		defer jf.Close()
		cfg.Journal = jf
	}
	srv := serve.New(cfg)
	if jf != nil {
		// Replay the existing journal, then leave the offset at EOF so new
		// records append after the replayed ones.
		if err := srv.Recover(jf); err != nil {
			return fmt.Errorf("replaying journal %s: %w", *journal, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sadpd listening on %s (workers=%d queue=%d)\n", ln.Addr(), *workers, *queue)

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sig:
	}
	fmt.Fprintf(stdout, "sadpd draining (timeout %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stdout, "sadpd drain: %v\n", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
	}
	fmt.Fprintln(stdout, "sadpd stopped")
	return nil
}
