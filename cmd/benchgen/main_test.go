package main

import (
	"strings"
	"testing"

	"sadproute"
)

func TestHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(b.String(), "-nets") {
		t.Fatalf("-h did not print flag usage:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestTinyInstance(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nets", "8", "-tracks", "16", "-layers", "2", "-seed", "7"}, &b); err != nil {
		t.Fatalf("generating a tiny netlist failed: %v", err)
	}
	nl, err := sadp.ReadNetlist(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("emitted netlist does not parse back: %v\n%s", err, b.String())
	}
	if len(nl.Nets) != 8 || nl.W != 16 || nl.Layers != 2 {
		t.Fatalf("round-trip mismatch: %d nets, %dx%d, %d layers",
			len(nl.Nets), nl.W, nl.H, nl.Layers)
	}
}
