package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sadproute"
)

func TestHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(b.String(), "-nets") {
		t.Fatalf("-h did not print flag usage:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestTinyInstance(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nets", "8", "-tracks", "16", "-layers", "2", "-seed", "7"}, &b); err != nil {
		t.Fatalf("generating a tiny netlist failed: %v", err)
	}
	nl, err := sadp.ReadNetlist(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("emitted netlist does not parse back: %v\n%s", err, b.String())
	}
	if len(nl.Nets) != 8 || nl.W != 16 || nl.Layers != 2 {
		t.Fatalf("round-trip mismatch: %d nets, %dx%d, %d layers",
			len(nl.Nets), nl.W, nl.H, nl.Layers)
	}
}

// TestDeterminismContract pins the command doc's contract: the same seed
// and flags produce byte-identical output on every run, and the rng-gated
// MacroBlockages extension did not shift the draw sequence of pre-existing
// specs (a zero-valued gate must consume zero draws).
func TestDeterminismContract(t *testing.T) {
	args := []string{"-nets", "40", "-tracks", "64", "-seed", "11", "-cands", "2"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed and flags produced different bytes")
	}
	// The huge family is deterministic too.
	g1 := sadp.Generate(sadp.HugeSpecs()[0])
	g2 := sadp.Generate(sadp.HugeSpecs()[0])
	var h1, h2 strings.Builder
	if err := sadp.WriteNetlist(&h1, g1); err != nil {
		t.Fatal(err)
	}
	if err := sadp.WriteNetlist(&h2, g2); err != nil {
		t.Fatal(err)
	}
	if h1.String() != h2.String() {
		t.Fatal("huge family generation is not deterministic")
	}
}

func TestHugeSuite(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-huge", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, sp := range sadp.HugeSpecs() {
		data, err := os.ReadFile(filepath.Join(dir, sp.Name+".nl"))
		if err != nil {
			t.Fatalf("missing %s: %v", sp.Name, err)
		}
		nl, err := sadp.ReadNetlist(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("%s does not parse back: %v", sp.Name, err)
		}
		if len(nl.Nets) != sp.Nets || nl.W != sp.Tracks {
			t.Fatalf("%s round-trip mismatch: %d nets %d tracks", sp.Name, len(nl.Nets), nl.W)
		}
	}
}
