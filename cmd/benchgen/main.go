// Command benchgen writes synthetic benchmark netlists in the repository's
// plain-text format:
//
//	benchgen -nets 1500 -tracks 170 -seed 1 > test1.nl
//	benchgen -paper -out bench/          # the Test1-10 analogue suite
//	benchgen -huge -out bench/           # the large-die sparse-congestion family
//
// Determinism contract: the same seed and flags always produce a
// byte-identical netlist, across runs, machines and releases. Generator
// changes may only consume new random draws behind fields that default to
// zero (see bench.Spec.MacroBlockages for the pattern), so every published
// spec keeps reproducing the bytes it produced when it was published.
// TestDeterminismContract pins this.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sadproute"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		nets   = fs.Int("nets", 1500, "number of two-pin nets")
		tracks = fs.Int("tracks", 170, "die width/height in routing tracks")
		layers = fs.Int("layers", 3, "routing layers")
		seed   = fs.Int64("seed", 1, "generator seed")
		cands  = fs.Int("cands", 1, "pin candidate locations per pin")
		hpwl   = fs.Int("hpwl", 0, "mean net half-perimeter in tracks (0 = tracks/10)")
		paper  = fs.Bool("paper", false, "emit the full Test1-10 analogue suite")
		huge   = fs.Bool("huge", false, "emit the large-die sparse-congestion Huge1-3 family")
		outDir = fs.String("out", ".", "output directory for -paper/-huge")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *paper || *huge {
		var suite []sadp.Spec
		if *paper {
			suite = append(sadp.PaperSpecs(true), sadp.PaperSpecs(false)...)
		}
		if *huge {
			suite = append(suite, sadp.HugeSpecs()...)
		}
		for _, sp := range suite {
			nl := sadp.Generate(sp)
			path := filepath.Join(*outDir, sp.Name+".nl")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := sadp.WriteNetlist(f, nl); err != nil {
				f.Close()
				return err
			}
			f.Close()
			fmt.Fprintf(stdout, "wrote %s (%d nets, %d tracks)\n", path, sp.Nets, sp.Tracks)
		}
		return nil
	}

	h := *hpwl
	if h == 0 {
		h = *tracks / 10
	}
	nl := sadp.Generate(sadp.Spec{
		Name:          fmt.Sprintf("gen-%d-%d-%d", *nets, *tracks, *seed),
		Nets:          *nets,
		Tracks:        *tracks,
		Layers:        *layers,
		Seed:          *seed,
		PinCandidates: *cands,
		AvgHPWL:       h,
		Blockages:     *nets / 150,
	})
	return sadp.WriteNetlist(stdout, nl)
}
