// Command benchgen writes synthetic benchmark netlists in the repository's
// plain-text format:
//
//	benchgen -nets 1500 -tracks 170 -seed 1 > test1.nl
//	benchgen -paper -out bench/          # the Test1-10 analogue suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sadproute"
)

func main() {
	var (
		nets   = flag.Int("nets", 1500, "number of two-pin nets")
		tracks = flag.Int("tracks", 170, "die width/height in routing tracks")
		layers = flag.Int("layers", 3, "routing layers")
		seed   = flag.Int64("seed", 1, "generator seed")
		cands  = flag.Int("cands", 1, "pin candidate locations per pin")
		hpwl   = flag.Int("hpwl", 0, "mean net half-perimeter in tracks (0 = tracks/10)")
		paper  = flag.Bool("paper", false, "emit the full Test1-10 analogue suite")
		outDir = flag.String("out", ".", "output directory for -paper")
	)
	flag.Parse()

	if *paper {
		for _, fixed := range []bool{true, false} {
			for _, sp := range sadp.PaperSpecs(fixed) {
				nl := sadp.Generate(sp)
				path := filepath.Join(*outDir, sp.Name+".nl")
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := sadp.WriteNetlist(f, nl); err != nil {
					fatal(err)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "wrote %s (%d nets, %d tracks)\n", path, sp.Nets, sp.Tracks)
			}
		}
		return
	}

	h := *hpwl
	if h == 0 {
		h = *tracks / 10
	}
	nl := sadp.Generate(sadp.Spec{
		Name:          fmt.Sprintf("gen-%d-%d-%d", *nets, *tracks, *seed),
		Nets:          *nets,
		Tracks:        *tracks,
		Layers:        *layers,
		Seed:          *seed,
		PinCandidates: *cands,
		AvgHPWL:       h,
		Blockages:     *nets / 150,
	})
	if err := sadp.WriteNetlist(os.Stdout, nl); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
