package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"sadproute/internal/serve"
)

// TestLoadPolling drives the generator against an in-process server with
// the polling follower and checks the tally.
func TestLoadPolling(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-n", "3", "-c", "2",
		"-nets", "8", "-tracks", "16", "-net-workers", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done 3 failed 0 canceled 0") {
		t.Errorf("unexpected tally:\n%s", out.String())
	}
}

// TestLoadSSE follows jobs over the events stream instead of polling.
func TestLoadSSE(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-n", "2", "-c", "2",
		"-nets", "8", "-tracks", "16", "-sse",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done 2 failed 0") {
		t.Errorf("unexpected tally:\n%s", out.String())
	}
}

// TestLoadRetriesQueueFull exercises the 429-retry path: one worker, a
// depth-1 queue and more client concurrency than capacity force
// admission rejections that the generator must absorb.
func TestLoadRetriesQueueFull(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain(context.Background())

	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-n", "6", "-c", "6",
		"-nets", "6", "-tracks", "16",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done 6 failed 0") {
		t.Errorf("unexpected tally:\n%s", out.String())
	}
}

// TestLoadFlags covers the CLI error paths.
func TestLoadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h: %v", err)
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("-n 0 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
