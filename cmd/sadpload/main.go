// Command sadpload is the load generator for the sadpd daemon: it
// synthesizes benchmark netlists (internal/bench, seeded), submits them as
// routing jobs over HTTP with bounded client concurrency, follows each job
// to a terminal state (polling or SSE), and reports the outcome tally.
// The soak recipe in docs/operations.md drives it against a -race build
// of sadpd to prove N concurrent jobs × M net_workers compose.
//
//	sadpload -addr http://127.0.0.1:8080 -n 16 -c 4 -nets 150 -net-workers 4
//	sadpload -addr http://127.0.0.1:8080 -n 4 -sse      # follow via SSE
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sadpload:", err)
		os.Exit(1)
	}
}

// outcome tallies terminal job states client-side.
type outcome struct {
	done, failed, canceled, rejected, errored atomic.Int64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sadpload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8080", "sadpd base URL")
		n          = fs.Int("n", 8, "total jobs to submit")
		c          = fs.Int("c", 4, "concurrent client workers")
		nets       = fs.Int("nets", 120, "nets per generated benchmark")
		tracks     = fs.Int("tracks", 48, "die width/height in tracks")
		layers     = fs.Int("layers", 3, "routing layers")
		seed       = fs.Int64("seed", 1, "base PRNG seed; job i uses seed+i")
		netWorkers = fs.Int("net-workers", 0, "per-job net_workers option")
		useSSE     = fs.Bool("sse", false, "follow jobs over SSE instead of polling")
		timeout    = fs.Duration("timeout", 5*time.Minute, "per-job completion deadline")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *n <= 0 || *c <= 0 {
		return errors.New("-n and -c must be positive")
	}

	client := &http.Client{}
	var tally outcome
	start := time.Now()
	var wg sync.WaitGroup
	var next atomic.Int64
	workers := *c
	if workers > *n {
		workers = *n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				if err := oneJob(client, *addr, i, jobSpec{
					nets: *nets, tracks: *tracks, layers: *layers,
					seed: *seed + int64(i), netWorkers: *netWorkers,
					sse: *useSSE, timeout: *timeout,
				}, &tally); err != nil {
					tally.errored.Add(1)
					fmt.Fprintf(stdout, "job %d: %v\n", i, err)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Fprintf(stdout, "submitted %d jobs (%d workers, %d nets x %d tracks, net_workers=%d)\n",
		*n, workers, *nets, *tracks, *netWorkers)
	fmt.Fprintf(stdout, "done %d failed %d canceled %d rejected-retried %d client-errors %d\n",
		tally.done.Load(), tally.failed.Load(), tally.canceled.Load(),
		tally.rejected.Load(), tally.errored.Load())
	fmt.Fprintf(stdout, "wall %.2fs (%.2f jobs/s)\n", wall.Seconds(), float64(*n)/wall.Seconds())
	if tally.failed.Load() > 0 || tally.errored.Load() > 0 {
		return errors.New("some jobs did not complete")
	}
	return nil
}

type jobSpec struct {
	nets, tracks, layers int
	seed                 int64
	netWorkers           int
	sse                  bool
	timeout              time.Duration
}

// oneJob generates, submits (retrying 429s per Retry-After), and follows
// one job to a terminal state.
func oneJob(client *http.Client, addr string, i int, spec jobSpec, tally *outcome) error {
	nl := bench.Generate(bench.Spec{
		Name: fmt.Sprintf("load-%d", i), Nets: spec.nets, Tracks: spec.tracks,
		Layers: spec.layers, Seed: spec.seed, PinCandidates: 1,
		AvgHPWL: spec.tracks / 4, Blockages: 2,
	})
	var nltext strings.Builder
	if err := nl.Write(&nltext); err != nil {
		return err
	}
	req := serve.Request{
		Name:    nl.Name,
		Netlist: nltext.String(),
	}
	if spec.netWorkers > 0 {
		nw := spec.netWorkers
		req.Options = &serve.OptionsPayload{NetWorkers: &nw}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	deadline := time.Now().Add(spec.timeout)
	var id string
	for {
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			tally.rejected.Add(1)
			if time.Now().After(deadline) {
				return errors.New("admission retries exhausted")
			}
			time.Sleep(time.Second)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("submit: %s: %s", resp.Status, msg)
		}
		var ack serve.SubmitResponse
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil {
			return err
		}
		id = ack.ID
		break
	}

	var state serve.State
	if spec.sse {
		state, err = followSSE(client, addr, id)
	} else {
		state, err = pollStatus(client, addr, id, deadline)
	}
	if err != nil {
		return err
	}
	switch state {
	case serve.StateDone:
		tally.done.Add(1)
	case serve.StateCanceled:
		tally.canceled.Add(1)
	default:
		tally.failed.Add(1)
	}
	return nil
}

// pollStatus polls GET /v1/jobs/{id} until the state is terminal.
func pollStatus(client *http.Client, addr, id string, deadline time.Time) (serve.State, error) {
	for {
		resp, err := client.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if st.State.Terminal() {
			return st.State, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s still %s at deadline", id, st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// followSSE streams GET /v1/jobs/{id}/events until the `end` event and
// returns the terminal state it carries.
func followSSE(client *http.Client, addr, id string) (serve.State, error) {
	resp, err := client.Get(addr + "/v1/jobs/" + id + "/events")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "end":
			var st serve.JobStatus
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				return "", err
			}
			return st.State, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("job %s: SSE stream ended without an end event", id)
}
