package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// ripuppar measures the two rip-up accelerations on the largest benchmark
// of the chosen scale: incremental dirty-region decomposition
// (Options.IncrementalDecomp) and episode speculation on the serial
// rip-up phases (Options.RipupSpec), separately and combined. One routing
// run per configuration, one at a time, so wall clocks are unpolluted by
// sibling runs.
//
// Output discipline: every line prefixed "det" is deterministic for a
// fixed spec — configuration labels, result fingerprints and the
// identical verdicts — and CI diffs exactly those lines between a
// -net-workers 4 and a -net-workers 1 invocation. Timing lines (no
// prefix) carry wall-clock noise and the machine-independent
// serial/makespan stage pair: ripup_serial sums the episode pre-search
// durations, ripup_makespan is their LPT critical path on the worker
// count, so serial/makespan bounds the episode-phase speedup with every
// worker on its own core even when CI cores are oversubscribed.
func ripuppar(ds rules.Set, scale string, netWorkers int) (string, error) {
	specs := specsFor(scale, true)
	sp := specs[len(specs)-1]
	specW := netWorkers
	if specW < 2 {
		specW = 4
	}

	type cfg struct {
		label     string
		inc, spec bool
		workers   int
	}
	cfgs := []cfg{
		{"serial", false, false, 1},
		{"incremental", true, false, 1},
		{"speculative", false, true, specW},
		{"combined", true, true, specW},
	}

	type runRow struct {
		cfg                        cfg
		wall                       time.Duration
		serial, makespan           time.Duration
		searches, adopted, wasted  int64
		incHits, splices, fallback int64
		fingerprint                string
		routed, failed, wl, vias   int
	}

	route := func(c cfg) runRow {
		nl := bench.Generate(sp)
		opt := router.Defaults()
		opt.IncrementalDecomp = c.inc
		opt.RipupSpec = c.spec
		opt.NetWorkers = c.workers
		rec := obs.New()
		opt.Obs = rec
		res := router.Route(nl, ds, opt)
		snap := rec.Snapshot()
		// The fingerprint covers everything deterministic about the run:
		// route shape, per-net attribution, and every counter outside the
		// three execution-strategy families (sched.* and ripup.* exist only
		// with workers, decomp.* varies with the memo/incremental setup).
		snap.ZeroFamily("sched.")
		snap.ZeroFamily("decomp.")
		snap.ZeroFamily("ripup.")
		var fp bytes.Buffer
		fmt.Fprintf(&fp, "routed=%d failed=%d wl=%d vias=%d paths=%v colors=%v\n",
			res.Routed, res.Failed, res.WirelengthCells, res.Vias, res.Paths, res.Colors)
		fp.WriteString(snap.CountersString())
		fp.WriteString(obs.NetStatsString(rec.NetStats()))
		s := rec.Snapshot()
		return runRow{
			cfg:         c,
			wall:        time.Duration(s.StageNS[obs.StageRoute]),
			serial:      time.Duration(s.StageNS[obs.StageRipupSerial]),
			makespan:    time.Duration(s.StageNS[obs.StageRipupMakespan]),
			searches:    s.Counter(obs.CtrRipupSpecSearches),
			adopted:     s.Counter(obs.CtrRipupSpecAdopted),
			wasted:      s.Counter(obs.CtrRipupSpecWasted),
			incHits:     s.Counter(obs.CtrDecompIncHits),
			splices:     s.Counter(obs.CtrDecompIncSplices),
			fallback:    s.Counter(obs.CtrDecompIncFallbacks),
			fingerprint: fmt.Sprintf("%x", sha256.Sum256(fp.Bytes()))[:16],
			routed:      res.Routed, failed: res.Failed,
			wl: res.WirelengthCells, vias: res.Vias,
		}
	}

	var rows []runRow
	for _, c := range cfgs {
		rows = append(rows, route(c))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "ripuppar — rip-up acceleration (%s, %d nets, one run at a time)\n\n", sp.Name, sp.Nets)
	base := rows[0]
	for _, r := range rows {
		ident := "yes"
		if r.fingerprint != base.fingerprint {
			ident = "NO"
		}
		fmt.Fprintf(&b, "det %-12s routed=%d failed=%d wl=%d vias=%d fingerprint=%s identical=%s\n",
			r.cfg.label, r.routed, r.failed, r.wl, r.vias, r.fingerprint, ident)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s %8s %10s %12s %14s %8s %6s %8s %7s %8s %8s %9s\n",
		"config", "workers", "wall(s)", "serial(s)", "makespan(s)", "ripup-x",
		"spec#", "adopted", "wasted", "inchits", "splices", "fallbacks")
	for _, r := range rows {
		ripupX := 1.0
		if r.makespan > 0 {
			ripupX = float64(r.serial) / float64(r.makespan)
		}
		fmt.Fprintf(&b, "%-12s %8d %10.3f %12.3f %14.3f %8.2f %6d %8d %7d %8d %8d %9d\n",
			r.cfg.label, r.cfg.workers, r.wall.Seconds(), r.serial.Seconds(),
			r.makespan.Seconds(), ripupX, r.searches, r.adopted, r.wasted,
			r.incHits, r.splices, r.fallback)
	}
	b.WriteString("\nripup-x = serial/makespan: the episode pre-search phase's speedup bound with every\n")
	b.WriteString("worker on its own core (LPT critical path over the measured search durations).\n")
	b.WriteString("det lines (fingerprint = sha256 over route shape, per-net attribution and all\n")
	b.WriteString("non-sched/decomp/ripup counters) are identical for any -net-workers value.\n")
	for _, r := range rows {
		if r.fingerprint != base.fingerprint {
			return b.String(), fmt.Errorf("ripuppar: %s result diverges from serial", r.cfg.label)
		}
	}
	return b.String(), nil
}
