package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/report"
	"sadproute/internal/router"
	"sadproute/internal/rules"
	"sadproute/internal/scenario"
)

// harness carries the scheduling knobs shared by the routing-heavy
// experiments and builds one bench.Harness per (specs × algos) matrix.
type harness struct {
	jobs       int
	netWorkers int  // intra-instance: concurrent nets within one routing run
	noCache    bool // route with the decomposition memo cache disabled
	sparse     bool // route ours-cells with the corridor routing graph
	budget     time.Duration
	traceDir   string
	ledger     *bench.Ledger // nil unless -bench-json; rows append per experiment
}

// runCells routes every (spec × algo) cell across the worker pool and
// returns metrics in canonical (spec-major, algo-minor) order, appending
// them to the benchmark ledger (if enabled) under the experiment name.
// Experiments run sequentially, so the ledger needs no locking.
func (h harness) runCells(exp string, ds rules.Set, specs []bench.Spec, algos []bench.Algo) ([]bench.Metrics, error) {
	cells := make([]bench.Cell, 0, len(specs)*len(algos))
	for _, sp := range specs {
		for _, a := range algos {
			cells = append(cells, bench.Cell{Spec: sp, Algo: a})
		}
	}
	bh := bench.Harness{
		Jobs: h.jobs,
		Cfg:  bench.RunConfig{Rules: ds, Budget: h.budget},
	}
	if h.netWorkers > 1 || h.noCache || h.sparse {
		opt := router.Defaults()
		opt.NetWorkers = h.netWorkers
		opt.DecompCache = !h.noCache
		opt.SparseSearch = h.sparse
		bh.Cfg.RouterOptions = &opt
	}
	if h.traceDir != "" {
		bh.TraceWriter = func(c bench.Cell) (io.WriteCloser, error) {
			return os.Create(filepath.Join(h.traceDir, c.String()+".jsonl"))
		}
	}
	rows, err := bh.Run(cells)
	if err != nil {
		return nil, err
	}
	if h.ledger != nil {
		h.ledger.Add(exp, rows)
	}
	return rows, nil
}

// table2 regenerates the paper's Table II: for each potential overlay
// scenario, the color rule, the minimum side overlay under the rule, and
// the maximum when it is violated — straight from the scenario profiles
// (which the test suite pins to the decomposition oracle).
func table2(ds rules.Set) string {
	var b strings.Builder
	b.WriteString("Table II — color rules of the potential overlay scenarios\n")
	b.WriteString("(costs in w_line units for the canonical 5-track configurations;\n")
	b.WriteString(" F = forbidden: hard overlay or type-A cut conflict)\n\n")
	fmt.Fprintf(&b, "%-11s %-5s %8s %8s %8s %8s %10s %7s %7s\n",
		"geometry", "type", "CC", "CS", "SC", "SS", "rule", "minSO", "maxSO")
	for _, c := range canonicalScenarios() {
		prof, ok := scenario.Classify(c.a, c.b, ds)
		if !ok {
			fmt.Fprintf(&b, "%-11s %-5s %8s %8s %8s %8s %10s %7s %7s\n",
				c.name, "-", "0", "0", "0", "0", "any", "0", "0")
			continue
		}
		cell := func(a scenario.Assign) string {
			s := fmt.Sprintf("%.1f", float64(prof.Cost[a])/float64(ds.WLine))
			if prof.Forbidden[a] {
				s += "F"
			}
			return s
		}
		minSO, maxSO := prof.Floor(), 0
		for a := scenario.CC; a <= scenario.SS; a++ {
			if prof.Cost[a] > maxSO {
				maxSO = prof.Cost[a]
			}
		}
		fmt.Fprintf(&b, "%-11s %-5s %8s %8s %8s %8s %10s %7.1f %7.1f\n",
			c.name, prof.Type, cell(scenario.CC), cell(scenario.CS),
			cell(scenario.SC), cell(scenario.SS), ruleOf(prof),
			float64(minSO)/float64(ds.WLine), float64(maxSO)/float64(ds.WLine))
	}
	return b.String()
}

func ruleOf(p scenario.Profile) string {
	switch {
	case p.HardDiff():
		return "diff!"
	case p.HardSame():
		return "same!"
	case p.Cost[scenario.SS] == 0 && p.Cost[scenario.CC] > 0 &&
		p.Cost[scenario.CS] > 0 && p.Cost[scenario.SC] > 0:
		return "both-S"
	case p.Floor() > 0:
		return "unavoid"
	default:
		return "soft"
	}
}

type canon struct {
	name string
	a, b geom.Rect
}

func cellWire(horiz bool, fixed, c0, c1 int) geom.Rect {
	if horiz {
		return geom.Rect{X0: c0, Y0: fixed, X1: c1 + 1, Y1: fixed + 1}
	}
	return geom.Rect{X0: fixed, Y0: c0, X1: fixed + 1, Y1: c1 + 1}
}

func canonicalScenarios() []canon {
	return []canon{
		{"(0,1,par)", cellWire(true, 5, 0, 4), cellWire(true, 6, 0, 4)},
		{"(0,2,par)", cellWire(true, 5, 0, 4), cellWire(true, 7, 0, 4)},
		{"(1,0,par)", cellWire(true, 5, 0, 4), cellWire(true, 5, 5, 9)},
		{"(2,0,par)", cellWire(true, 5, 0, 4), cellWire(true, 5, 6, 10)},
		{"(0,1,perp)", cellWire(false, 2, 6, 10), cellWire(true, 5, 0, 4)},
		{"(0,2,perp)", cellWire(false, 2, 7, 11), cellWire(true, 5, 0, 4)},
		{"(1,1,par)", cellWire(true, 5, 0, 4), cellWire(true, 6, 5, 9)},
		{"(1,2,par)", cellWire(true, 5, 0, 4), cellWire(true, 7, 5, 9)},
		{"(2,1,par)", cellWire(true, 5, 0, 4), cellWire(true, 6, 6, 10)},
		{"(1,1,perp)", cellWire(false, 2, 6, 10), cellWire(true, 5, 3, 7)},
		{"(1,2,perp)", cellWire(false, 2, 6, 10), cellWire(true, 4, 3, 7)},
	}
}

// appendix reproduces the Figs. 24-34 enumeration: the oracle's verdict
// for every scenario and color assignment.
func appendix(ds rules.Set) string {
	var b strings.Builder
	b.WriteString("Appendix — color assignments for the potential overlay scenarios\n")
	b.WriteString("(oracle-measured side overlay, hard overlays and cut conflicts per\n")
	b.WriteString(" assignment; reproduces the paper's Figs. 24-34)\n\n")
	for _, c := range canonicalScenarios() {
		for a := scenario.CC; a <= scenario.SS; a++ {
			ca, cb := a.Colors()
			ly := decomp.Layout{
				Rules: ds,
				Die:   geom.Rect{X0: -400, Y0: -400, X1: 1000, Y1: 1000},
				Pats: []decomp.Pattern{
					{Net: 0, Color: ca, Rects: []geom.Rect{cellNM(c.a, ds)}},
					{Net: 1, Color: cb, Rects: []geom.Rect{cellNM(c.b, ds)}},
				},
			}
			res := decomp.DecomposeCut(ly)
			fmt.Fprintf(&b, "%-11s %v: SO=%5.1fu tip=%5.1fu hard=%d conflicts=%d\n",
				c.name, a, res.SideOverlayUnits,
				float64(res.TipOverlayNM)/float64(ds.WLine),
				res.HardOverlays, len(res.Conflicts))
		}
	}
	return b.String()
}

func cellNM(r geom.Rect, ds rules.Set) geom.Rect {
	p, w := ds.Pitch(), ds.WLine
	return geom.Rect{X0: r.X0 * p, Y0: r.Y0 * p, X1: (r.X1-1)*p + w, Y1: (r.Y1-1)*p + w}
}

// table3 reproduces Table III: fixed-pin benchmarks, ours vs the trim
// baseline [11] and the no-merge cut baseline [16].
func table3(ds rules.Set, scale string, h harness) (string, error) {
	rows, err := h.runCells("table3", ds, specsFor(scale, true),
		[]bench.Algo{bench.AlgoOurs, bench.AlgoTrimGreedy, bench.AlgoCutNoMerge})
	if err != nil {
		return "", err
	}
	return report.Table("Table III — fixed pin locations (#C = conflicts + hard overlays)", rows, bench.AlgoOurs), nil
}

// table4 reproduces Table IV: multiple pin candidate locations, ours vs
// the exhaustive multi-candidate baseline [10].
func table4(ds rules.Set, scale string, h harness) (string, error) {
	rows, err := h.runCells("table4", ds, specsFor(scale, false),
		[]bench.Algo{bench.AlgoOurs, bench.AlgoTrimExhaustive})
	if err != nil {
		return "", err
	}
	return report.Table("Table IV — multiple pin candidate locations", rows, bench.AlgoOurs), nil
}

// fig20 measures our router's runtime across instance sizes and fits the
// empirical complexity exponent (paper: ~ n^1.42). Cells run in parallel;
// each CPU measurement is the cell's own routing time, which shares cores
// with concurrent cells — pass -jobs 1 for exclusive-core timing.
func fig20(ds rules.Set, scale string, h harness) (string, error) {
	rows, err := h.runCells("fig20", ds, specsFor(scale, true), []bench.Algo{bench.AlgoOurs})
	if err != nil {
		return "", err
	}
	var xs, ys []float64
	var b strings.Builder
	b.WriteString("Fig. 20 — runtime vs number of nets (ours)\n")
	fmt.Fprintf(&b, "%10s %12s\n", "#nets", "CPU(s)")
	for _, m := range rows {
		xs = append(xs, float64(m.Nets))
		ys = append(ys, m.CPU.Seconds())
		fmt.Fprintf(&b, "%10d %12.3f\n", m.Nets, m.CPU.Seconds())
	}
	k, c := report.LogLogFit(xs, ys)
	fmt.Fprintf(&b, "\nleast-squares fit: CPU ~ %.3g * n^%.2f (paper reports n^1.42)\n", c, k)
	return b.String(), nil
}

// stages renders the observability layer's per-stage wall-time breakdown
// and search-effort counters for our router across the benchmark suite —
// the profile behind the paper's runtime discussion (Section IV).
func stages(ds rules.Set, scale string, h harness) (string, error) {
	rows, err := h.runCells("stages", ds, specsFor(scale, true), []bench.Algo{bench.AlgoOurs})
	if err != nil {
		return "", err
	}
	return report.StageTable("Stage timing — ours (wall seconds per pipeline stage)", rows), nil
}
