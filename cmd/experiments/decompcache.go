package main

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// decompcache measures the decomposition memo cache on the largest
// benchmark of the chosen scale: one routing run with the cache off, one
// with it on, strictly one at a time so the stage wall clocks are not
// polluted by sibling cells. For each run it reports the window-check and
// final-repair stage wall times, the oracle-run and cache counters, the
// hit rate, and — the property the tentpole guarantees — whether the
// result is byte-identical to the uncached run.
//
// The fingerprint zeroes the whole decomp.* metric family (counters and
// histograms): a cache hit returns the stored Result without re-running
// the oracle, so the work metrics (decompositions, blobs, bridges,
// assists, overlay fragments, the blob-count histogram) legitimately
// differ between the two runs. Everything else — route shape,
// wirelength, decomposition totals, every other counter — must match
// exactly.
func decompcache(ds rules.Set, scale string) (string, error) {
	specs := specsFor(scale, true)
	sp := specs[len(specs)-1]

	type runRow struct {
		cached               bool
		window, repair, eval time.Duration
		oracleRuns           int64
		hits, misses, evicts int64
		fingerprint          string
	}

	route := func(cached bool) runRow {
		nl := bench.Generate(sp)
		opt := router.Defaults()
		opt.DecompCache = cached
		rec := obs.New()
		opt.Obs = rec
		res := router.Route(nl, ds, opt)
		stopEval := rec.Span(obs.StageEvaluate)
		_, tot := res.DecomposeLayersR(rec)
		stopEval()
		snap := rec.Snapshot()
		snap.ZeroFamily("decomp.")
		var fp bytes.Buffer
		fmt.Fprintf(&fp, "routed=%d failed=%d wl=%d vias=%d paths=%v\ntotals=%+v\n",
			res.Routed, res.Failed, res.WirelengthCells, res.Vias, res.Paths, tot)
		fp.WriteString(snap.CountersString())
		s := rec.Snapshot()
		return runRow{
			cached:      cached,
			window:      time.Duration(s.StageNS[obs.StageWindowCheck]),
			repair:      time.Duration(s.StageNS[obs.StageFinalRepair]),
			eval:        time.Duration(s.StageNS[obs.StageEvaluate]),
			oracleRuns:  s.Counter(obs.CtrDecompositions),
			hits:        s.Counter(obs.CtrDecompCacheHits),
			misses:      s.Counter(obs.CtrDecompCacheMisses),
			evicts:      s.Counter(obs.CtrDecompCacheEvictions),
			fingerprint: fp.String(),
		}
	}

	off := route(false)
	on := route(true)

	var b strings.Builder
	fmt.Fprintf(&b, "decompcache — content-addressed decomposition memo (%s, %d nets, one run at a time)\n\n",
		sp.Name, sp.Nets)
	fmt.Fprintf(&b, "%8s %12s %12s %10s %10s %8s %8s %8s %8s %10s\n",
		"cache", "window(s)", "repair(s)", "eval(s)", "oracle#", "hits", "misses", "evicts", "hit%", "identical")
	for _, r := range []runRow{off, on} {
		state := "off"
		if r.cached {
			state = "on"
		}
		hitPct := 0.0
		if r.hits+r.misses > 0 {
			hitPct = 100 * float64(r.hits) / float64(r.hits+r.misses)
		}
		ident := "yes"
		if r.fingerprint != off.fingerprint {
			ident = "NO"
		}
		fmt.Fprintf(&b, "%8s %12.3f %12.3f %10.3f %10d %8d %8d %8d %7.1f%% %10s\n",
			state, r.window.Seconds(), r.repair.Seconds(), r.eval.Seconds(),
			r.oracleRuns, r.hits, r.misses, r.evicts, hitPct, ident)
	}
	b.WriteString("\noracle# counts real decomposition runs; with the cache on, hits answer without one.\n")
	b.WriteString("identical compares route shape, oracle totals and all non-decomp counters to the uncached run.\n")
	if on.fingerprint != off.fingerprint {
		return b.String(), fmt.Errorf("decompcache: cached result diverges from uncached run")
	}
	return b.String(), nil
}
