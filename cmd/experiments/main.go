// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §5 for the experiment index):
//
//	experiments -which table2                 # Table II  (color rules)
//	experiments -which table3 -scale paper    # Table III (fixed pins)
//	experiments -which table4 -scale paper    # Table IV  (pin candidates)
//	experiments -which fig20                  # Fig. 20   (runtime scaling)
//	experiments -which fig21,fig22 -out out/  # Figs. 21/22 (SVG + ASCII)
//	experiments -which appendix               # Figs. 24-34 enumeration
//	experiments -which ablation               # design-choice ablations
//	experiments -which stages                 # per-stage timing breakdown
//	experiments -which decompcache            # decomposition memo on/off
//	experiments -which ripuppar               # rip-up accelerations on/off
//	experiments -which sparsehuge             # corridor search on the huge family
//
// -scale small shrinks the benchmark sizes for quick runs; -scale paper
// uses the paper's 1.5k-28k-net sizes; -scale tiny is the CI smoke size.
//
// Routing-heavy experiments (table3, table4, fig20, stages) fan their
// (benchmark × algorithm) cells out across -jobs workers (default
// runtime.NumCPU(); -jobs 1 is the historical serial behavior). Results
// merge in canonical order, so the emitted tables are identical for any
// -jobs value — only the CPU columns carry wall-clock noise, as between
// any two runs. -tracedir writes one deterministic JSONL trace per
// ours-cell.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/rules"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		which  = fs.String("which", "table2", "comma list: table2,table3,table4,fig20,fig21,fig22,stages,netpar,ripuppar,decompcache,sparsehuge,golden,appendix,ablation,all")
		scale  = fs.String("scale", "small", "benchmark scale: tiny | small | medium | paper")
		outDir = fs.String("out", "results", "output directory")
		budget = fs.Duration("budget", 30*time.Minute, "per-run time budget for the exhaustive baseline")
		jobs   = fs.Int("jobs", runtime.NumCPU(), "parallel (benchmark x algorithm) cells; 1 = serial")
		netW   = fs.Int("net-workers", 0, "concurrent nets within each routing run (internal/sched); <2 = serial, result byte-identical either way")
		dcache = fs.Bool("decomp-cache", true, "memoize the decomposition oracle by layout content (internal/decomp); result byte-identical either way")
		sparse = fs.Bool("sparse", false, "route ours-cells with the corridor routing graph (router.Options.SparseSearch); below the HPWL gate the result is byte-identical")
		trDir  = fs.String("tracedir", "", "write one JSONL trace per ours-cell into this directory")
		bjson  = fs.String("bench-json", "", "write a benchmark ledger: a *.json path is used verbatim, anything else is a directory for BENCH_<rev>.json")
		rev    = fs.String("rev", "dev", "revision label stamped into the benchmark ledger")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if *trDir != "" {
		if err := os.MkdirAll(*trDir, 0o755); err != nil {
			return err
		}
	}
	sel := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		sel[strings.TrimSpace(w)] = true
	}
	all := sel["all"]
	ds := rules.Node10nm()

	emit := func(name string, fn func() (string, error)) error {
		if !all && !sel[name] {
			return nil
		}
		start := time.Now()
		text, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(*outDir, name+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s (%.1fs) -> %s\n%s\n", name, time.Since(start).Seconds(), path, text)
		return nil
	}

	h := harness{jobs: *jobs, netWorkers: *netW, noCache: !*dcache, sparse: *sparse, budget: *budget, traceDir: *trDir}
	var ledgerPath string
	if *bjson != "" {
		h.ledger = bench.NewLedger(*rev, *jobs)
		ledgerPath = *bjson
		if !strings.HasSuffix(ledgerPath, ".json") {
			if err := os.MkdirAll(ledgerPath, 0o755); err != nil {
				return err
			}
			ledgerPath = filepath.Join(ledgerPath, "BENCH_"+*rev+".json")
		}
	}
	experiments := []struct {
		name string
		fn   func() (string, error)
	}{
		{"table2", func() (string, error) { return table2(ds), nil }},
		{"appendix", func() (string, error) { return appendix(ds), nil }},
		{"table3", func() (string, error) { return table3(ds, *scale, h) }},
		{"table4", func() (string, error) { return table4(ds, *scale, h) }},
		{"fig20", func() (string, error) { return fig20(ds, *scale, h) }},
		{"stages", func() (string, error) { return stages(ds, *scale, h) }},
		{"netpar", func() (string, error) { return netpar(ds, *scale) }},
		{"ripuppar", func() (string, error) { return ripuppar(ds, *scale, *netW) }},
		{"decompcache", func() (string, error) { return decompcache(ds, *scale) }},
		{"sparsehuge", func() (string, error) { return sparsehuge(ds, *scale, h) }},
		{"golden", func() (string, error) { return golden(ds, *outDir, h) }},
		{"fig21", func() (string, error) { return fig21(ds, *outDir) }},
		{"fig22", func() (string, error) { return fig22(ds, *outDir) }},
		{"ablation", func() (string, error) { return ablation(ds, *scale) }},
	}
	for _, e := range experiments {
		if err := emit(e.name, e.fn); err != nil {
			return err
		}
	}
	if h.ledger != nil {
		if err := h.ledger.WriteFile(ledgerPath); err != nil {
			return fmt.Errorf("bench ledger: %w", err)
		}
		fmt.Fprintf(stdout, "== bench ledger (%d cells) -> %s\n", len(h.ledger.Cells), ledgerPath)
	}
	return nil
}

// specsFor scales the paper's benchmark suite.
func specsFor(scale string, fixedPins bool) []bench.Spec {
	specs := bench.PaperSpecs(fixedPins)
	switch scale {
	case "paper":
		return specs
	case "medium":
		return specs[:3]
	case "tiny": // CI smoke: seconds even under -race
		out := make([]bench.Spec, 0, 2)
		for _, s := range specs[:2] {
			s.Nets /= 20
			s.Tracks /= 4
			s.AvgHPWL = 4
			s.Blockages /= 20
			s.Name = fmt.Sprintf("%s-t", s.Name)
			out = append(out, s)
		}
		return out
	default: // small: shrink everything
		out := make([]bench.Spec, 0, 3)
		for i, s := range specs[:3] {
			s.Nets /= 5
			s.Tracks /= 2
			s.AvgHPWL = s.Tracks / 10
			if s.AvgHPWL < 4 {
				s.AvgHPWL = 4
			}
			s.Blockages /= 5
			s.Name = fmt.Sprintf("%s-s", s.Name)
			out = append(out, s)
			_ = i
		}
		return out
	}
}
