package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sadproute/internal/bench"
	"sadproute/internal/colorflip"
	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/ocg"
	"sadproute/internal/render"
	"sadproute/internal/router"
	"sadproute/internal/rules"
	"sadproute/internal/scenario"
)

// oddCycleLayout builds the Fig. 21/22 micro-layout: three nets whose
// constraint cycle is odd — A and B are adjacent (different colors
// required), B and C are adjacent (different colors required), and C runs
// back alongside A with a single-track overlap, closing the cycle. In the
// trim process this layout is undecomposable; the cut process merges the
// short A/C adjacency and separates it with a cut pattern (the paper's
// Fig. 2(b) / Fig. 21 demonstration).
func oddCycleLayout(ds rules.Set) (cells [][]geom.Rect, names []string) {
	// Cell-coordinate wire fragments for three nets.
	a := []geom.Rect{cellWire(false, 2, 0, 8)} // vertical, col 2
	b := []geom.Rect{cellWire(false, 3, 0, 8)} // vertical, col 3
	c := []geom.Rect{                          // hook: col 4 up, across row 10, down col 1
		cellWire(false, 4, 0, 10),
		cellWire(true, 10, 1, 4),
		cellWire(false, 1, 8, 10),
	}
	return [][]geom.Rect{a, b, c}, []string{"A", "B", "C"}
}

// colorOddCycle runs the paper's machinery on the micro layout: scenario
// classification, overlay constraint graph, color-flipping DP.
func colorOddCycle(ds rules.Set, nets [][]geom.Rect) []decomp.Color {
	g := ocg.New()
	for i := range nets {
		for j := i + 1; j < len(nets); j++ {
			for _, ra := range nets[i] {
				for _, rb := range nets[j] {
					if prof, ok := scenario.Classify(ra, rb, ds); ok {
						g.AddScenario(i, j, prof)
					}
				}
			}
		}
	}
	ids := make([]int, len(nets))
	for i := range ids {
		ids[i] = i
	}
	res := colorflip.Optimize(g, ids)
	out := make([]decomp.Color, len(nets))
	for i := range nets {
		out[i] = res.Colors[i]
	}
	return out
}

func microLayout(ds rules.Set, nets [][]geom.Rect, colors []decomp.Color, naive bool) decomp.Layout {
	ly := decomp.Layout{
		Rules:        ds,
		Die:          geom.Rect{X0: -200, Y0: -200, X1: 460*2 + 200, Y1: 460*2 + 200},
		NaiveAssists: naive,
	}
	for i, rects := range nets {
		nm := make([]geom.Rect, len(rects))
		for k, r := range rects {
			nm[k] = cellNM(r, ds)
		}
		ly.Pats = append(ly.Pats, decomp.Pattern{Net: i, Color: colors[i], Rects: nm})
	}
	return ly
}

// fig21 renders the odd cycle decomposed by our algorithm (merge + cut).
func fig21(ds rules.Set, outDir string) (string, error) {
	nets, names := oddCycleLayout(ds)
	colors := colorOddCycle(ds, nets)
	ly := microLayout(ds, nets, colors, false)
	res := decomp.DecomposeCut(ly)
	return renderMicro("Fig. 21 — ours: odd cycle decomposed by merge+cut",
		outDir, "fig21.svg", ly, res, names, colors, ds)
}

// fig22 renders the paper's Fig. 22 failure mode of ref. [16]: a second
// pattern whose (naively synthesized) assistant cores merge with the core
// patterns two tracks away on both sides; the cuts removing the merged
// assists run along the cores' full facing boundaries — severe side
// overlays. [16] fixes colors at routing time, so nothing repairs this.
func fig22(ds rules.Set, outDir string) (string, error) {
	nets := [][]geom.Rect{
		{cellWire(false, 1, 0, 8)}, // core wire
		{cellWire(false, 3, 0, 8)}, // second wire between them
		{cellWire(false, 5, 0, 8)}, // core wire
	}
	names := []string{"A", "B", "C"}
	colors := []decomp.Color{decomp.Core, decomp.Second, decomp.Core}
	ly := microLayout(ds, nets, colors, true)
	res := decomp.DecomposeCut(ly)
	return renderMicro("Fig. 22 — [16]-style: core/assist mergers induce severe overlays",
		outDir, "fig22.svg", ly, res, names, colors, ds)
}

func renderMicro(title, outDir, svgName string, ly decomp.Layout, res *decomp.Result, names []string, colors []decomp.Color, ds rules.Set) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	for i, n := range names {
		fmt.Fprintf(&b, "net %s -> %v\n", n, colors[i])
	}
	fmt.Fprintf(&b, "side overlay: %.1f units, hard: %d, cut conflicts: %d\n\n",
		res.SideOverlayUnits, res.HardOverlays, len(res.Conflicts))
	window := geom.Rect{X0: -80, Y0: -80, X1: 300, Y1: 520}
	b.WriteString(render.ASCII(ly, res, window, ds.Pitch()))
	f, err := os.Create(filepath.Join(outDir, svgName))
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := render.SVG(f, ly, res, window); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nSVG written to %s\n", filepath.Join(outDir, svgName))
	return b.String(), nil
}

// ablation quantifies the design choices DESIGN.md calls out: color
// flipping, the type-2-b routing penalty, the window conflict check, and
// the rip-up budget.
func ablation(ds rules.Set, scale string) (string, error) {
	sp := specsFor(scale, true)[0]
	cfg := bench.RunConfig{Rules: ds}
	var rows []bench.Metrics

	variants := []struct {
		name string
		mod  func(*router.Options)
	}{
		{"full", func(o *router.Options) {}},
		{"no-colorflip", func(o *router.Options) { o.ColorFlip = false }},
		{"no-gamma", func(o *router.Options) { o.Gamma2 = 0 }},
		{"no-window", func(o *router.Options) { o.WindowCheck = false }},
		{"no-repair", func(o *router.Options) { o.FinalRepair = false }},
		{"ripup-0", func(o *router.Options) { o.MaxRipup = 0 }},
	}
	for _, v := range variants {
		opt := router.Defaults()
		v.mod(&opt)
		m, err := bench.Run(bench.Generate(sp), bench.AlgoOurs, bench.RunConfig{Rules: cfg.Rules, RouterOptions: &opt})
		if err != nil {
			return "", err
		}
		m.Algo = v.name
		rows = append(rows, m)
	}
	var b strings.Builder
	b.WriteString("Ablation — our router with individual mechanisms disabled\n")
	fmt.Fprintf(&b, "%-14s %9s %12s %6s %6s %10s\n", "variant", "Rout.(%)", "Overlay(u)", "#C", "hard", "CPU(s)")
	for _, m := range rows {
		fmt.Fprintf(&b, "%-14s %9.2f %12.1f %6d %6d %10.2f\n",
			m.Algo, m.RoutabilityPct, m.OverlayUnits, m.Conflicts, m.HardOverlays, m.CPU.Seconds())
	}
	return b.String(), nil
}
