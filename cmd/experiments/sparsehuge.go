package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/drc"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// sparsehuge measures Options.SparseSearch on the huge benchmark family
// (bench.HugeSpecs): every cell dense, then every cell with the corridor
// graph, one run at a time on one core, which is the configuration the
// lever exists for (it disables itself under NetWorkers). The sparse run
// of each instance is additionally decomposed and DRC-checked end to end
// — the corridor engine must not cost any of the paper's guarantees.
//
// Output discipline: "det" lines are deterministic for a fixed spec —
// result shape, guarantee counters and a fingerprint over route shape,
// per-net attribution and all counters outside the execution-strategy
// families. Dense and sparse fingerprints legitimately differ (the
// corridor engine adopts equal-cost, not identical, paths); each line is
// stable run to run, which is what CI diffs. Timing lines carry
// wall-clock noise and are reported, never compared.
func sparsehuge(ds rules.Set, scale string, h harness) (string, error) {
	specs := bench.HugeSpecs()
	if scale == "tiny" {
		// CI/test mode: the smallest instance exercises the whole pipeline
		// (both configs, ledger cells, DRC) in about a second.
		specs = specs[:1]
	}

	type runRow struct {
		spec                       bench.Spec
		label                      string
		routeWall, totalWall       time.Duration
		expansions                 int64
		searches, fallbacks, nodes int64
		routedPct                  float64
		routed, failed, wl, vias   int
		conf, hard, viol           int
		fingerprint                string
	}

	route := func(sp bench.Spec, sparse bool) (runRow, bench.Metrics) {
		opt := router.Defaults()
		opt.SparseSearch = sparse
		rec := obs.New()
		opt.Obs = rec
		cfg := bench.RunConfig{Rules: ds, RouterOptions: &opt}
		m, err := bench.Run(bench.Generate(sp), bench.AlgoOurs, cfg)
		if err != nil {
			panic(err) // AlgoOurs never errors; keep the row type simple
		}
		label := "dense"
		if sparse {
			label = "sparse"
			// Separate ledger key: "ours" rows stay comparable with every
			// other experiment's dense cells.
			m.Algo = "ours-sparse"
		}
		snap := m.Obs
		fpSnap := snap
		fpSnap.ZeroFamily("sched.")
		fpSnap.ZeroFamily("decomp.")
		fpSnap.ZeroFamily("ripup.")
		var fp bytes.Buffer
		fmt.Fprintf(&fp, "rt=%.2f wl=%d vias=%d conf=%d hard=%d viol=%d\n",
			m.RoutabilityPct, m.Wirelength, m.Vias, m.Conflicts, m.HardOverlays, m.Violations)
		fp.WriteString(fpSnap.CountersString())
		fp.WriteString(obs.NetStatsString(m.NetStats))
		return runRow{
			spec:       sp,
			label:      label,
			routeWall:  snap.Stage(obs.StageRoute),
			totalWall:  snap.Stage(obs.StageTotal),
			expansions: snap.Counter(obs.CtrAstarExpanded),
			searches:   snap.Counter(obs.CtrSparseSearches),
			fallbacks:  snap.Counter(obs.CtrSparseFallbacks),
			nodes:      snap.Counter(obs.CtrSparseNodes),
			routedPct:  m.RoutabilityPct,
			routed:     int(m.RoutabilityPct/100*float64(sp.Nets) + 0.5),
			failed:     sp.Nets - int(m.RoutabilityPct/100*float64(sp.Nets)+0.5),
			wl:         m.Wirelength, vias: m.Vias,
			conf: m.Conflicts, hard: m.HardOverlays, viol: m.Violations,
			fingerprint: fmt.Sprintf("%x", sha256.Sum256(fp.Bytes()))[:16],
		}, m
	}

	// Full-instance DRC on the sparse-routed design: decompose every layer
	// and check the mask rules plus connectivity.
	drcCheck := func(sp bench.Spec) error {
		opt := router.Defaults()
		opt.SparseSearch = true
		res := router.Route(bench.Generate(sp), ds, opt)
		layouts := res.Layouts()
		results, tot := decomp.DecomposeLayers(layouts)
		if tot.Conflicts != 0 || tot.HardOverlays != 0 || tot.Violations != 0 {
			return fmt.Errorf("%s: sparse run breaks guarantees: conf=%d hard=%d viol=%d",
				sp.Name, tot.Conflicts, tot.HardOverlays, tot.Violations)
		}
		var layers []drc.Layer
		for l, ly := range layouts {
			layers = append(layers, drc.FromDecomp(ly, results[l].Materials))
		}
		if rep := drc.CheckDesign(layers, ds); !rep.Clean() {
			return fmt.Errorf("%s: DRC violations on sparse-routed design", sp.Name)
		}
		return nil
	}

	var rows []runRow
	var metrics []bench.Metrics
	for _, sp := range specs {
		for _, sparse := range [2]bool{false, true} {
			r, m := route(sp, sparse)
			rows = append(rows, r)
			metrics = append(metrics, m)
		}
		if err := drcCheck(sp); err != nil {
			return "", err
		}
	}
	if h.ledger != nil {
		h.ledger.Add("sparsehuge", metrics)
	}

	var b strings.Builder
	b.WriteString("sparsehuge — corridor search on the huge family (1 core, one run at a time)\n\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "det %-6s %-6s rt=%.1f wl=%d vias=%d conf=%d hard=%d viol=%d fingerprint=%s\n",
			r.spec.Name, r.label, r.routedPct, r.wl, r.vias, r.conf, r.hard, r.viol, r.fingerprint)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-6s %-6s %9s %10s %12s %8s %10s %9s %8s %7s\n",
		"bench", "config", "nets", "route(s)", "expansions", "sparse#", "fallbacks", "nodes", "route-x", "exp-x")
	for i := 0; i < len(rows); i += 2 {
		d, s := rows[i], rows[i+1]
		routeX := float64(d.routeWall) / float64(s.routeWall)
		expX := float64(d.expansions) / float64(s.expansions+1)
		fmt.Fprintf(&b, "%-6s %-6s %9d %10.3f %12d %8d %10d %9d %8s %7s\n",
			d.spec.Name, d.label, d.spec.Nets, d.routeWall.Seconds(), d.expansions, 0, 0, 0, "", "")
		fmt.Fprintf(&b, "%-6s %-6s %9d %10.3f %12d %8d %10d %9d %7.2fx %6.1fx\n",
			s.spec.Name, s.label, s.spec.Nets, s.routeWall.Seconds(), s.expansions,
			s.searches, s.fallbacks, s.nodes, routeX, expX)
	}
	b.WriteString("\nroute-x/exp-x = dense/sparse StageRoute wall and dense A* expansion ratios.\n")
	b.WriteString("The sparse run of every instance is decomposed and DRC-checked; a violation\n")
	b.WriteString("fails the experiment. det fingerprints are per-row reproducibility keys —\n")
	b.WriteString("dense and sparse adopt equal-cost, not identical, paths.\n")
	return b.String(), nil
}
