package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sadproute/internal/bench"
	"sadproute/internal/rules"
	"sadproute/internal/scenario"
)

// The golden experiment freezes the deterministic core of the paper's
// tables into tab-separated files under results/golden/. Every column is
// a pure function of the benchmark seed and the design rules — no CPU or
// stage-time columns, no budget-dependent algorithms (the exhaustive
// baseline is excluded) — so the files are byte-stable across machines,
// -jobs values and -net-workers values. TestGoldenTables diffs freshly
// computed tables against the checked-in files; regenerate after an
// intentional algorithm change with:
//
//	go run ./cmd/experiments -which golden -out results/golden

// goldenTable2TSV renders Table II (scenario color rules) as TSV.
func goldenTable2TSV(ds rules.Set) string {
	var b strings.Builder
	b.WriteString("geometry\ttype\tCC\tCS\tSC\tSS\trule\tminSO\tmaxSO\n")
	for _, c := range canonicalScenarios() {
		prof, ok := scenario.Classify(c.a, c.b, ds)
		if !ok {
			fmt.Fprintf(&b, "%s\t-\t0\t0\t0\t0\tany\t0.0\t0.0\n", c.name)
			continue
		}
		cell := func(a scenario.Assign) string {
			s := fmt.Sprintf("%.1f", float64(prof.Cost[a])/float64(ds.WLine))
			if prof.Forbidden[a] {
				s += "F"
			}
			return s
		}
		minSO, maxSO := prof.Floor(), 0
		for a := scenario.CC; a <= scenario.SS; a++ {
			if prof.Cost[a] > maxSO {
				maxSO = prof.Cost[a]
			}
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.1f\t%.1f\n",
			c.name, prof.Type, cell(scenario.CC), cell(scenario.CS),
			cell(scenario.SC), cell(scenario.SS), ruleOf(prof),
			float64(minSO)/float64(ds.WLine), float64(maxSO)/float64(ds.WLine))
	}
	return b.String()
}

// goldenTable3TSV renders Table III at tiny scale with the three
// deterministic algorithms as TSV, wall-clock columns omitted.
func goldenTable3TSV(ds rules.Set, h harness) (string, error) {
	rows, err := h.runCells("golden", ds, specsFor("tiny", true),
		[]bench.Algo{bench.AlgoOurs, bench.AlgoTrimGreedy, bench.AlgoCutNoMerge})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("bench\talgo\tnets\troutability_pct\toverlay_units\toverlay_nm\tconflicts\thard\tviolations\twirelength\tvias\tripups\n")
	for _, m := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%d\t%.2f\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.Bench, m.Algo, m.Nets, m.RoutabilityPct, m.OverlayUnits, m.OverlayNM,
			m.Conflicts, m.HardOverlays, m.Violations, m.Wirelength, m.Vias, m.Ripups)
	}
	return b.String(), nil
}

// golden writes both TSV files into outDir.
func golden(ds rules.Set, outDir string, h harness) (string, error) {
	t2 := goldenTable2TSV(ds)
	t3, err := goldenTable3TSV(ds, h)
	if err != nil {
		return "", err
	}
	for _, f := range []struct{ name, content string }{
		{"table2.tsv", t2},
		{"table3.tsv", t3},
	} {
		if err := os.WriteFile(filepath.Join(outDir, f.name), []byte(f.content), 0o644); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("wrote table2.tsv (%d bytes) and table3.tsv (%d bytes) to %s\n",
		len(t2), len(t3), outDir), nil
}
