package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sadproute/internal/bench"
)

func TestHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(b.String(), "-which") {
		t.Fatalf("-h did not print flag usage:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

// TestTinyInstance regenerates Table II — the one experiment that needs no
// routing — into a temp dir and checks both the console and the file copy.
func TestTinyInstance(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-which", "table2", "-out", dir}, &b); err != nil {
		t.Fatalf("table2 failed: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "Table II") {
		t.Fatalf("console output missing Table II:\n%s", b.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "color rules") {
		t.Fatalf("table2.txt content unexpected:\n%s", data)
	}
}

// TestBenchLedger runs a routing experiment at the CI smoke scale with
// -bench-json pointing at a directory and checks that a parseable
// BENCH_<rev>.json ledger lands there with one cell per (spec × algo).
func TestBenchLedger(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	args := []string{"-which", "table3", "-scale", "tiny", "-out", dir,
		"-jobs", "2", "-bench-json", dir, "-rev", "smoke"}
	if err := run(args, &b); err != nil {
		t.Fatalf("table3 with -bench-json failed: %v\n%s", err, b.String())
	}
	path := filepath.Join(dir, "BENCH_smoke.json")
	l, err := bench.ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rev != "smoke" || l.Env.Jobs != 2 || l.Env.RunWallNS <= 0 {
		t.Fatalf("ledger header not stamped: rev=%q env=%+v", l.Rev, l.Env)
	}
	if want := 2 * 3; len(l.Cells) != want { // 2 tiny specs × 3 algorithms
		t.Fatalf("ledger has %d cells, want %d", len(l.Cells), want)
	}
	for i := range l.Cells {
		if l.Cells[i].Exp != "table3" {
			t.Fatalf("cell %d tagged %q, want table3", i, l.Cells[i].Exp)
		}
	}
	if !strings.Contains(b.String(), path) {
		t.Fatalf("console output does not mention the ledger path:\n%s", b.String())
	}

	// A path ending in .json is used verbatim.
	exact := filepath.Join(dir, "custom.json")
	b.Reset()
	if err := run([]string{"-which", "golden", "-out", dir, "-bench-json", exact}, &b); err != nil {
		t.Fatalf("golden with verbatim -bench-json failed: %v\n%s", err, b.String())
	}
	if l, err = bench.ReadLedger(exact); err != nil {
		t.Fatal(err)
	} else if len(l.Cells) == 0 || l.Cells[0].Exp != "golden" {
		t.Fatalf("verbatim-path ledger unexpected: %+v", l.Cells)
	}
}

// TestDecompCacheExperiment runs the memo-cache experiment at the CI
// smoke scale: it routes the largest tiny benchmark with the cache off
// and on, and errors out by itself if the two runs are not
// byte-identical, so a pass here is also an equivalence check.
func TestDecompCacheExperiment(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-which", "decompcache", "-scale", "tiny", "-out", dir}, &b); err != nil {
		t.Fatalf("decompcache failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, w := range []string{"hits", "identical", "decompcache —"} {
		if !strings.Contains(out, w) {
			t.Fatalf("decompcache output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "NO") {
		t.Fatalf("decompcache reported a divergent run:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "decompcache.txt")); err != nil {
		t.Fatal(err)
	}
}

// TestRipupparExperiment runs the rip-up acceleration experiment at the
// CI smoke scale. The experiment fingerprints every configuration and
// errors out on divergence itself, so a pass doubles as an equivalence
// check on the incremental/speculative rip-up paths.
func TestRipupparExperiment(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-which", "ripuppar", "-scale", "tiny", "-out", dir, "-net-workers", "3"}, &b); err != nil {
		t.Fatalf("ripuppar failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, w := range []string{"det serial", "det incremental", "det speculative", "det combined", "fingerprint="} {
		if !strings.Contains(out, w) {
			t.Fatalf("ripuppar output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "identical=NO") {
		t.Fatalf("ripuppar reported a divergent configuration:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "ripuppar.txt")); err != nil {
		t.Fatal(err)
	}
}

// TestSparsehugeExperiment runs the corridor-search experiment on the
// smallest huge instance (tiny scale): both configs route, every sparse
// run is DRC-checked inside the experiment, and the ledger carries both
// the dense and the relabeled ours-sparse cells.
func TestSparsehugeExperiment(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.json")
	var b strings.Builder
	if err := run([]string{"-which", "sparsehuge", "-scale", "tiny", "-out", dir, "-bench-json", ledger}, &b); err != nil {
		t.Fatalf("sparsehuge failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, w := range []string{"det Huge1  dense", "det Huge1  sparse", "fingerprint=", "route-x"} {
		if !strings.Contains(out, w) {
			t.Fatalf("sparsehuge output missing %q:\n%s", w, out)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "sparsehuge.txt")); err != nil {
		t.Fatal(err)
	}
	l, err := bench.ReadLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]bool{}
	for _, c := range l.Cells {
		if c.Exp == "sparsehuge" {
			algos[c.Algo] = true
		}
	}
	if !algos["ours"] || !algos["ours-sparse"] {
		t.Fatalf("ledger missing sparsehuge cells: %v", algos)
	}
}
