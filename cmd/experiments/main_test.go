package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(b.String(), "-which") {
		t.Fatalf("-h did not print flag usage:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

// TestTinyInstance regenerates Table II — the one experiment that needs no
// routing — into a temp dir and checks both the console and the file copy.
func TestTinyInstance(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-which", "table2", "-out", dir}, &b); err != nil {
		t.Fatalf("table2 failed: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "Table II") {
		t.Fatalf("console output missing Table II:\n%s", b.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "color rules") {
		t.Fatalf("table2.txt content unexpected:\n%s", data)
	}
}

// TestDecompCacheExperiment runs the memo-cache experiment at the CI
// smoke scale: it routes the largest tiny benchmark with the cache off
// and on, and errors out by itself if the two runs are not
// byte-identical, so a pass here is also an equivalence check.
func TestDecompCacheExperiment(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-which", "decompcache", "-scale", "tiny", "-out", dir}, &b); err != nil {
		t.Fatalf("decompcache failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, w := range []string{"hits", "identical", "decompcache —"} {
		if !strings.Contains(out, w) {
			t.Fatalf("decompcache output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "NO") {
		t.Fatalf("decompcache reported a divergent run:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "decompcache.txt")); err != nil {
		t.Fatal(err)
	}
}
