package main

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"sadproute/internal/bench"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// netpar measures the intra-instance parallel net scheduler on the
// largest benchmark of the chosen scale: one routing run per worker
// count, strictly one at a time (no cell-level parallelism, so the route
// wall clock is not polluted by sibling cells). For each run it reports
// the route-stage wall time, the speculative-phase stage timers, the
// scheduler counters, and — the property the tentpole guarantees —
// whether the result is byte-identical to the serial run.
//
// On a box with fewer free cores than workers the wall column cannot
// show the speedup; the spec_serial/spec_makespan pair measures it
// machine-independently: spec_serial is the summed duration of the
// wave-parallel first searches, spec_makespan their LPT-packed critical
// path on the given worker count. projected = wall - serial + makespan
// is the route wall time with every worker on its own core.
func netpar(ds rules.Set, scale string) (string, error) {
	specs := specsFor(scale, true)
	sp := specs[len(specs)-1]

	type runRow struct {
		workers             int
		wall, spec          time.Duration
		serial, makespan    time.Duration
		waves, specSearches int64
		hits, retries       int64
		fingerprint         string
	}

	route := func(workers int) runRow {
		nl := bench.Generate(sp)
		opt := router.Defaults()
		opt.NetWorkers = workers
		rec := obs.New()
		opt.Obs = rec
		res := router.Route(nl, ds, opt)
		snap := rec.Snapshot()
		// The fingerprint covers everything deterministic about the run:
		// route shape, decomposition totals, and every metric except the
		// sched.* family (absent by definition in the serial run).
		snap.ZeroFamily("sched.")
		var fp bytes.Buffer
		fmt.Fprintf(&fp, "routed=%d failed=%d wl=%d vias=%d paths=%v\n",
			res.Routed, res.Failed, res.WirelengthCells, res.Vias, res.Paths)
		fp.WriteString(snap.CountersString())
		s := rec.Snapshot()
		return runRow{
			workers:      workers,
			wall:         time.Duration(s.StageNS[obs.StageRoute]),
			spec:         time.Duration(s.StageNS[obs.StageSpeculate]),
			serial:       time.Duration(s.StageNS[obs.StageSpecSerial]),
			makespan:     time.Duration(s.StageNS[obs.StageSpecMakespan]),
			waves:        s.Counter(obs.CtrSchedWaves),
			specSearches: s.Counter(obs.CtrSchedSpecSearches),
			hits:         s.Counter(obs.CtrSchedSpecHits),
			retries:      s.Counter(obs.CtrSchedSpecRetries),
			fingerprint:  fp.String(),
		}
	}

	var rows []runRow
	for _, w := range []int{1, 2, 4} {
		rows = append(rows, route(w))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "netpar — intra-instance parallel routing (%s, %d nets, -net-workers sweep, one run at a time)\n\n",
		sp.Name, sp.Nets)
	fmt.Fprintf(&b, "%8s %10s %10s %12s %14s %8s %12s %7s %6s %6s %8s %10s\n",
		"workers", "wall(s)", "spec(s)", "serial(s)", "makespan(s)", "spec-x", "proj(s)", "waves", "spec#", "hits", "retries", "identical")
	base := rows[0]
	for _, r := range rows {
		projected := r.wall - r.serial + r.makespan
		specX := 1.0
		if r.makespan > 0 {
			specX = float64(r.serial) / float64(r.makespan)
		}
		ident := "yes"
		if r.fingerprint != base.fingerprint {
			ident = "NO"
		}
		fmt.Fprintf(&b, "%8d %10.3f %10.3f %12.3f %14.3f %8.2f %12.3f %7d %6d %6d %8d %10s\n",
			r.workers, r.wall.Seconds(), r.spec.Seconds(), r.serial.Seconds(),
			r.makespan.Seconds(), specX, projected.Seconds(),
			r.waves, r.specSearches, r.hits, r.retries, ident)
	}
	b.WriteString("\nspec-x = serial/makespan: the wall-clock speedup of the speculative search phase\n")
	b.WriteString("with every worker on its own core (LPT critical path over the measured durations).\n")
	b.WriteString("proj = wall - serial + makespan: the route wall time when each worker has its own core.\n")
	b.WriteString("identical compares route shape, decomposition totals and all non-sched counters to workers=1.\n")
	for _, r := range rows {
		if r.fingerprint != base.fingerprint {
			return b.String(), fmt.Errorf("netpar: workers=%d result diverges from serial", r.workers)
		}
	}
	return b.String(), nil
}
