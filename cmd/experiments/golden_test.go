package main

import (
	"os"
	"strings"
	"testing"

	"sadproute/internal/rules"
)

// TestGoldenTables recomputes the golden TSVs and diffs them against the
// checked-in files: any drift in the scenario classification, the router,
// the baselines, or the decomposition oracle shows up as a line-level
// diff here. After an INTENTIONAL algorithm change, regenerate with
//
//	go run ./cmd/experiments -which golden -out results/golden
//
// and review the diff like any other code change.
func TestGoldenTables(t *testing.T) {
	ds := rules.Node10nm()

	check := func(name, got string) {
		t.Helper()
		path := "../../results/golden/" + name
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden file: %v (regenerate with `go run ./cmd/experiments -which golden -out results/golden`)", err)
		}
		if string(want) == got {
			return
		}
		wantLines := strings.Split(string(want), "\n")
		gotLines := strings.Split(got, "\n")
		for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
			var w, g string
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if w != g {
				t.Errorf("%s line %d differs\nwant: %q\ngot:  %q", name, i+1, w, g)
			}
		}
		t.Fatalf("%s drifted from the checked-in golden file; if the change is intentional, regenerate with `go run ./cmd/experiments -which golden -out results/golden`", name)
	}

	check("table2.tsv", goldenTable2TSV(ds))

	t3, err := goldenTable3TSV(ds, harness{jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	check("table3.tsv", t3)
}
