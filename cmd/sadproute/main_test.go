package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sadproute"
)

func TestHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(b.String(), "-in") {
		t.Fatalf("-h did not print flag usage:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestMissingInput(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("missing -in should error")
	}
}

func TestTinyInstance(t *testing.T) {
	nl := sadp.Generate(sadp.Spec{
		Name: "smoke", Nets: 6, Tracks: 14, Layers: 2, Seed: 3,
		PinCandidates: 1, AvgHPWL: 4,
	})
	path := filepath.Join(t.TempDir(), "smoke.nl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sadp.WriteNetlist(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var b strings.Builder
	if err := run([]string{"-in", path, "-svg", t.TempDir()}, &b); err != nil {
		t.Fatalf("routing the tiny instance failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"design", "routability", "cut conflicts", "layer0.svg"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
