package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sadproute"
)

func TestHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-h"}, &b); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(b.String(), "-in") {
		t.Fatalf("-h did not print flag usage:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestMissingInput(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("missing -in should error")
	}
}

func TestTinyInstance(t *testing.T) {
	nl := sadp.Generate(sadp.Spec{
		Name: "smoke", Nets: 6, Tracks: 14, Layers: 2, Seed: 3,
		PinCandidates: 1, AvgHPWL: 4,
	})
	path := filepath.Join(t.TempDir(), "smoke.nl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sadp.WriteNetlist(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var b strings.Builder
	if err := run([]string{"-in", path, "-svg", t.TempDir()}, &b); err != nil {
		t.Fatalf("routing the tiny instance failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"design", "routability", "cut conflicts", "layer0.svg"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceAndMetrics exercises the observability flags: the trace must be
// non-empty well-formed JSONL with dense sequence numbers, and -metrics must
// print the counter snapshot.
func TestTraceAndMetrics(t *testing.T) {
	nl := sadp.Generate(sadp.Spec{
		Name: "obs", Nets: 8, Tracks: 16, Layers: 2, Seed: 5,
		PinCandidates: 1, AvgHPWL: 4,
	})
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.nl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sadp.WriteNetlist(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()

	trace := filepath.Join(dir, "trace.jsonl")
	var b strings.Builder
	if err := run([]string{"-in", path, "-trace", trace, "-metrics"}, &b); err != nil {
		t.Fatalf("run with -trace/-metrics failed: %v\n%s", err, b.String())
	}
	for _, want := range []string{"metrics:", "counter astar.searches", "stage   route", "rip-ups"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q:\n%s", want, b.String())
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("trace file is empty")
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v: %q", i, err, line)
		}
		seq, ok := ev["seq"].(float64)
		if !ok || int(seq) != i+1 {
			t.Fatalf("trace line %d has seq %v, want %d", i, ev["seq"], i+1)
		}
		if _, ok := ev["ev"].(string); !ok {
			t.Fatalf("trace line %d missing ev field: %q", i, line)
		}
	}
}

// TestResultDump checks -result writes the canonical deterministic dump:
// the paper-metrics header plus paths and colors, identical across runs.
func TestResultDump(t *testing.T) {
	nl := sadp.Generate(sadp.Spec{
		Name: "dump", Nets: 8, Tracks: 16, Layers: 2, Seed: 11,
		PinCandidates: 1, AvgHPWL: 4,
	})
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.nl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sadp.WriteNetlist(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()

	first := filepath.Join(dir, "r1.txt")
	second := filepath.Join(dir, "r2.txt")
	for _, out := range []string{first, second} {
		var b strings.Builder
		if err := run([]string{"-in", path, "-result", out}, &b); err != nil {
			t.Fatalf("run with -result failed: %v\n%s", err, b.String())
		}
		if !strings.Contains(b.String(), "wrote "+out) {
			t.Errorf("stdout missing write confirmation:\n%s", b.String())
		}
	}
	data1, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"design dump", "routability", "path ", "color "} {
		if !strings.Contains(string(data1), want) {
			t.Errorf("result dump missing %q:\n%s", want, data1)
		}
	}
	data2, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(data1) != string(data2) {
		t.Error("-result dump is not byte-identical across runs")
	}
}

// TestProfiles checks the pprof flags produce non-empty profile files.
func TestProfiles(t *testing.T) {
	nl := sadp.Generate(sadp.Spec{
		Name: "prof", Nets: 6, Tracks: 14, Layers: 2, Seed: 9,
		PinCandidates: 1, AvgHPWL: 4,
	})
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.nl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sadp.WriteNetlist(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	if err := run([]string{"-in", path, "-cpuprofile", cpu, "-memprofile", mem}, &b); err != nil {
		t.Fatalf("run with profiles failed: %v\n%s", err, b.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
