// Command sadproute routes a netlist file with the overlay-aware SADP
// detailed router, evaluates the result with the decomposition oracle, and
// optionally renders it:
//
//	sadproute -in design.nl            # route, print metrics
//	sadproute -in design.nl -svg out/  # also write per-layer SVGs
//	sadproute -in design.nl -no-flip   # ablate the color-flipping DP
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sadproute"
	"sadproute/internal/decomp"
	"sadproute/internal/render"
)

func main() {
	var (
		in      = flag.String("in", "", "netlist file (see package netlist for the format)")
		svgDir  = flag.String("svg", "", "directory for per-layer SVG renderings (optional)")
		noFlip  = flag.Bool("no-flip", false, "disable the color-flipping DP")
		noGamma = flag.Bool("no-gamma", false, "disable the type-2-b routing penalty")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	nl, err := sadp.ReadNetlist(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	opt := sadp.Defaults()
	if *noFlip {
		opt.ColorFlip = false
	}
	if *noGamma {
		opt.Gamma2 = 0
	}
	ds := sadp.Node10nm()
	res := sadp.Route(nl, ds, opt)
	layers, tot := sadp.Evaluate(res)

	fmt.Printf("design        : %s (%d nets, %dx%d tracks, %d layers)\n",
		nl.Name, len(nl.Nets), nl.W, nl.H, nl.Layers)
	fmt.Printf("routability   : %.2f%% (%d routed, %d failed)\n", res.Routability(), res.Routed, res.Failed)
	fmt.Printf("wirelength    : %d tracks, %d vias, %d rip-ups\n", res.WirelengthCells, res.Vias, res.Ripups)
	fmt.Printf("side overlay  : %.1f units (%d nm), tips %d nm\n", tot.SideOverlayUnits, tot.SideOverlayNM, tot.TipOverlayNM)
	fmt.Printf("hard overlays : %d\n", tot.HardOverlays)
	fmt.Printf("cut conflicts : %d\n", tot.Conflicts)
	fmt.Printf("violations    : %d\n", tot.Violations)
	fmt.Printf("CPU           : %v\n", res.CPU)

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fatal(err)
		}
		for l, ly := range res.Layouts() {
			path := filepath.Join(*svgDir, fmt.Sprintf("layer%d.svg", l))
			out, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			r := decomp.DecomposeCut(ly)
			if err := render.SVG(out, ly, r, ly.Die); err != nil {
				fatal(err)
			}
			out.Close()
			fmt.Printf("wrote %s\n", path)
		}
		_ = layers
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sadproute:", err)
	os.Exit(1)
}
