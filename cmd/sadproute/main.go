// Command sadproute routes a netlist file with the overlay-aware SADP
// detailed router, evaluates the result with the decomposition oracle, and
// optionally renders it:
//
//	sadproute -in design.nl            # route, print metrics
//	sadproute -in design.nl -svg out/  # also write per-layer SVGs
//	sadproute -in design.nl -no-flip   # ablate the color-flipping DP
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sadproute"
	"sadproute/internal/decomp"
	"sadproute/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sadproute:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sadproute", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		in      = fs.String("in", "", "netlist file (see package netlist for the format)")
		svgDir  = fs.String("svg", "", "directory for per-layer SVG renderings (optional)")
		noFlip  = fs.Bool("no-flip", false, "disable the color-flipping DP")
		noGamma = fs.Bool("no-gamma", false, "disable the type-2-b routing penalty")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *in == "" {
		fs.Usage()
		return errors.New("missing -in netlist file")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	nl, err := sadp.ReadNetlist(f)
	f.Close()
	if err != nil {
		return err
	}

	opt := sadp.Defaults()
	if *noFlip {
		opt.ColorFlip = false
	}
	if *noGamma {
		opt.Gamma2 = 0
	}
	ds := sadp.Node10nm()
	res := sadp.Route(nl, ds, opt)
	_, tot := sadp.Evaluate(res)

	fmt.Fprintf(stdout, "design        : %s (%d nets, %dx%d tracks, %d layers)\n",
		nl.Name, len(nl.Nets), nl.W, nl.H, nl.Layers)
	fmt.Fprintf(stdout, "routability   : %.2f%% (%d routed, %d failed)\n", res.Routability(), res.Routed, res.Failed)
	fmt.Fprintf(stdout, "wirelength    : %d tracks, %d vias, %d rip-ups\n", res.WirelengthCells, res.Vias, res.Ripups)
	fmt.Fprintf(stdout, "side overlay  : %.1f units (%d nm), tips %d nm\n", tot.SideOverlayUnits, tot.SideOverlayNM, tot.TipOverlayNM)
	fmt.Fprintf(stdout, "hard overlays : %d\n", tot.HardOverlays)
	fmt.Fprintf(stdout, "cut conflicts : %d\n", tot.Conflicts)
	fmt.Fprintf(stdout, "violations    : %d\n", tot.Violations)
	fmt.Fprintf(stdout, "CPU           : %v\n", res.CPU)

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for l, ly := range res.Layouts() {
			path := filepath.Join(*svgDir, fmt.Sprintf("layer%d.svg", l))
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			r := decomp.DecomposeCut(ly)
			if err := render.SVG(out, ly, r, ly.Die); err != nil {
				out.Close()
				return err
			}
			out.Close()
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	return nil
}
