// Command sadproute routes a netlist file with the overlay-aware SADP
// detailed router, evaluates the result with the decomposition oracle, and
// optionally renders it:
//
//	sadproute -in design.nl               # route, print metrics
//	sadproute -in design.nl -svg out/     # also write per-layer SVGs
//	sadproute -in design.nl -no-flip      # ablate the color-flipping DP
//	sadproute -in design.nl -trace t.jsonl -metrics  # observability
//	sadproute -in design.nl -result r.txt            # canonical result dump
//	sadproute -in design.nl -cpuprofile cpu.pprof    # profiling
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"sadproute"
	"sadproute/internal/decomp"
	"sadproute/internal/obs"
	"sadproute/internal/render"
	"sadproute/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sadproute:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("sadproute", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		in         = fs.String("in", "", "netlist file (see package netlist for the format)")
		svgDir     = fs.String("svg", "", "directory for per-layer SVG renderings (optional)")
		noFlip     = fs.Bool("no-flip", false, "disable the color-flipping DP")
		netWorkers = fs.Int("net-workers", 0, "concurrent nets within the routing run (internal/sched); <2 = serial, result byte-identical either way")
		dcache     = fs.Bool("decomp-cache", true, "memoize the decomposition oracle by layout content (internal/decomp); result byte-identical either way")
		sparseOn   = fs.Bool("sparse", false, "route long nets on the corridor graph (internal/sparse); serial runs only, adopted paths are dense-cost-optimal")
		noGamma    = fs.Bool("no-gamma", false, "disable the type-2-b routing penalty")
		traceFile  = fs.String("trace", "", "write a deterministic JSONL trace of the run to this file")
		resultFile = fs.String("result", "", "write the canonical deterministic result dump (summary, paths, colors, counters; no wall-clock) to this file — byte-identical to the sadpd daemon's result_text for the same input")
		metrics    = fs.Bool("metrics", false, "print the full counter/gauge/stage-timing snapshot")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *in == "" {
		fs.Usage()
		return errors.New("missing -in netlist file")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	nl, err := sadp.ReadNetlist(f)
	f.Close()
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		cf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opt := sadp.Defaults()
	opt.NetWorkers = *netWorkers
	opt.DecompCache = *dcache
	opt.SparseSearch = *sparseOn
	if *noFlip {
		opt.ColorFlip = false
	}
	if *noGamma {
		opt.Gamma2 = 0
	}
	rec := sadp.NewRecorder()
	opt.Obs = rec
	var traceOut *os.File
	if *traceFile != "" {
		traceOut, err = os.Create(*traceFile)
		if err != nil {
			return err
		}
		// Surface the close error: the OS may only report a failed flush
		// (full disk, dead NFS handle) at Close, and swallowing it would
		// publish a silently truncated trace as if it were complete.
		defer func() {
			if cerr := traceOut.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing trace %s: %w", *traceFile, cerr)
			}
		}()
		rec.SetTrace(traceOut)
	}

	ds := sadp.Node10nm()
	stopTotal := rec.Span(obs.StageTotal)
	res := sadp.Route(nl, ds, opt)
	stopEval := rec.Span(obs.StageEvaluate)
	_, tot := sadp.EvaluateR(res, rec)
	stopEval()
	stopTotal()
	snap := rec.Snapshot()

	if *resultFile != "" {
		txt := serve.RenderResultText(nl, res, tot, &snap)
		if err := os.WriteFile(*resultFile, []byte(txt), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *resultFile)
	}

	fmt.Fprintf(stdout, "design        : %s (%d nets, %dx%d tracks, %d layers)\n",
		nl.Name, len(nl.Nets), nl.W, nl.H, nl.Layers)
	fmt.Fprintf(stdout, "routability   : %.2f%% (%d routed, %d failed)\n", res.Routability(), res.Routed, res.Failed)
	fmt.Fprintf(stdout, "wirelength    : %d tracks, %d vias, %d rip-ups\n",
		res.WirelengthCells, res.Vias, snap.Counter(obs.CtrRouteRipups))
	fmt.Fprintf(stdout, "side overlay  : %.1f units (%d nm), tips %d nm\n", tot.SideOverlayUnits, tot.SideOverlayNM, tot.TipOverlayNM)
	fmt.Fprintf(stdout, "hard overlays : %d\n", tot.HardOverlays)
	fmt.Fprintf(stdout, "cut conflicts : %d\n", tot.Conflicts)
	fmt.Fprintf(stdout, "violations    : %d\n", tot.Violations)
	fmt.Fprintf(stdout, "CPU           : %v\n", res.CPU)

	if *metrics {
		fmt.Fprintf(stdout, "\nmetrics:\n%s", snap.String())
	}
	if traceOut != nil {
		if err := rec.TraceErr(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *traceFile)
	}

	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for l, ly := range res.Layouts() {
			path := filepath.Join(*svgDir, fmt.Sprintf("layer%d.svg", l))
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			r := decomp.DecomposeCut(ly)
			if err := render.SVG(out, ly, r, ly.Die); err != nil {
				out.Close()
				return err
			}
			out.Close()
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	return nil
}
