// Command tracetool analyzes the deterministic JSONL traces written by
// the router (sadproute -trace, experiments -tracedir) offline:
//
//	tracetool trace.jsonl                      # human-readable report
//	tracetool -json trace.jsonl                # stable-schema JSON
//	tracetool -top 20 trace.jsonl              # longer expensive-net list
//	tracetool -ledger BENCH_x.json trace.jsonl # add stage/cache rollups
//
// The report covers the questions a routing regression triage starts
// with: how the attempt/fail mix looks, which layers burned window checks
// and recovered overlay, which nets were most expensive, and the rip-up
// causality — which net's commit triggered which re-searches, and how
// deep the triggered chains ran.
//
// Traces carry no wall-clock by design (they are byte-identical across
// runs), so stage timings and cache effectiveness come from a benchmark
// ledger (-ledger, see internal/bench): that section is measurement, not
// identity, and is excluded when comparing -json output byte for byte.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"sadproute/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		asJSON = fs.Bool("json", false, "emit the report as stable-schema JSON")
		topK   = fs.Int("top", 10, "length of the most-expensive-nets list")
		ledger = fs.String("ledger", "", "benchmark ledger (BENCH_*.json) for the stage/cache rollup")
		cell   = fs.String("cell", "", "ledger cell key substring (default: first ours cell)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stdout, "usage: tracetool [flags] TRACE.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly 1 trace file, got %d", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := Analyze(f, *topK)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	if *ledger != "" {
		l, err := bench.ReadLedger(*ledger)
		if err != nil {
			return err
		}
		lr, err := ledgerRollup(l, *cell)
		if err != nil {
			return err
		}
		rep.Ledger = lr
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.Render(stdout)
}

// ReportSchema versions the -json output; consumers pin on it.
const ReportSchema = 1

// Report is the stable -json schema. Every field except Ledger is a pure
// function of the trace bytes, so two identical traces produce identical
// reports.
type Report struct {
	Schema int              `json:"schema"`
	Events int64            `json:"events"`
	ByType map[string]int64 `json:"by_type"`

	Routing RoutingReport `json:"routing"`
	Layers  []LayerReport `json:"layers"`
	TopNets []NetReport   `json:"top_nets"`
	Ripups  RipupReport   `json:"ripups"`
	Repair  RepairReport  `json:"repair"`

	// Ledger is the wall-clock/cache rollup from -ledger — measurement,
	// not identity; omit it when diffing reports byte for byte.
	Ledger *LedgerReport `json:"ledger,omitempty"`
}

// RoutingReport aggregates the attempt/ok/fail mix.
type RoutingReport struct {
	Attempts     int64            `json:"attempts"`
	Routed       int64            `json:"routed"`
	Failed       int64            `json:"failed"`
	FailByReason map[string]int64 `json:"fail_by_reason,omitempty"`
	MaxAttempt   int64            `json:"max_attempt"` // 0-based, as traced
}

// LayerReport rolls window-check and color-flip activity up per layer.
type LayerReport struct {
	Layer         int   `json:"layer"`
	WindowChecks  int64 `json:"window_checks"`
	Clean         int64 `json:"clean"`
	Resolved      int64 `json:"resolved"`
	Ripup         int64 `json:"ripup"`
	ColorFlips    int64 `json:"color_flips"`
	FlipsFeasible int64 `json:"flips_feasible"`
	// Overlay recovered by the flip DP on this layer: sum over
	// overlay_delta events of before_nm - after_nm.
	RecoveredNM int64 `json:"recovered_nm"`
}

// NetReport is one row of the most-expensive-nets list, ranked by
// attempts descending, rip-ups descending, net id ascending.
type NetReport struct {
	Net      int   `json:"net"`
	Attempts int64 `json:"attempts"`
	Ripups   int64 `json:"ripups"`
	Fails    int64 `json:"fails"`
	WL       int64 `json:"wl"`   // from the final route_ok, 0 if never routed
	Vias     int64 `json:"vias"` // likewise
}

// RipupReport is the causality analysis: every rip-up extends a chain —
// a blocker rip continues the chain of the net whose commit displaced it
// (the "for" net), any other cause deepens the net's own chain — and a
// successful route resets the net's chain. Deep chains mean one commit
// cascaded through many re-searches.
type RipupReport struct {
	Total       int64            `json:"total"`
	ByCause     map[string]int64 `json:"by_cause,omitempty"`
	ChainDepths []ChainDepth     `json:"chain_depths,omitempty"`
	MaxChain    int64            `json:"max_chain"`
	// TopTriggers ranks nets by how many blocker rip-ups their commits
	// caused (rip-ups caused descending, net ascending).
	TopTriggers []Trigger `json:"top_triggers,omitempty"`
}

// ChainDepth is one row of the chain-depth distribution.
type ChainDepth struct {
	Depth int64 `json:"depth"`
	Count int64 `json:"count"`
}

// Trigger is one row of the rip-up causality ranking.
type Trigger struct {
	Net    int   `json:"net"`
	Caused int64 `json:"caused"`
}

// RepairReport summarizes the final-repair stage.
type RepairReport struct {
	Passes    int64   `json:"passes"`
	Offenders []int64 `json:"offenders,omitempty"` // per pass
	Dropped   int64   `json:"dropped"`             // route_fail reason=repair_drop
}

// LedgerReport is the optional nondeterministic rollup (see Report.Ledger).
type LedgerReport struct {
	Cell      string           `json:"cell"`
	WallNS    int64            `json:"wall_ns"`
	StagesNS  map[string]int64 `json:"stages_ns,omitempty"`
	CacheHits int64            `json:"cache_hits"`
	CacheMiss int64            `json:"cache_misses"`
}

// event is the union of every trace event's fields (docs/trace-schema.md).
// Pointers distinguish "absent" from zero where zero is meaningful.
type event struct {
	Seq     int64  `json:"seq"`
	Ev      string `json:"ev"`
	Net     *int   `json:"net"`
	Attempt int64  `json:"attempt"`
	WL      int64  `json:"wl"`
	Vias    int64  `json:"vias"`
	Reason  string `json:"reason"`
	Cause   string `json:"cause"`
	For     *int   `json:"for"`
	Layer   *int   `json:"layer"`
	Outcome string `json:"outcome"`
	Feas    int64  `json:"feasible"`
	Before  int64  `json:"before_nm"`
	After   int64  `json:"after_nm"`
	Pass    int64  `json:"pass"`
	Offend  int64  `json:"offenders"`
}

// netAgg accumulates one net's trace activity.
type netAgg struct {
	net      int
	attempts int64
	ripups   int64
	fails    int64
	wl, vias int64
	depth    int64 // current rip-up chain depth (causality state)
}

// Analyze reads one JSONL trace and builds the report. It validates the
// seq chain: a gap or reordering means the trace was truncated or
// interleaved, and an analysis of it would silently lie.
func Analyze(r io.Reader, topK int) (*Report, error) {
	rep := &Report{Schema: ReportSchema, ByType: map[string]int64{}}
	nets := map[int]*netAgg{}
	layers := map[int]*LayerReport{}
	ripCause := map[string]int64{}
	depthDist := map[int64]int64{}
	triggers := map[int]int64{}

	netOf := func(e *event) (*netAgg, error) {
		if e.Net == nil {
			return nil, fmt.Errorf("seq %d: %s event without net", e.Seq, e.Ev)
		}
		a := nets[*e.Net]
		if a == nil {
			a = &netAgg{net: *e.Net}
			nets[*e.Net] = a
		}
		return a, nil
	}
	layerOf := func(e *event) (*LayerReport, error) {
		if e.Layer == nil {
			return nil, fmt.Errorf("seq %d: %s event without layer", e.Seq, e.Ev)
		}
		l := layers[*e.Layer]
		if l == nil {
			l = &LayerReport{Layer: *e.Layer}
			layers[*e.Layer] = l
		}
		return l, nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var lastSeq int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", rep.Events+1, err)
		}
		if e.Seq != lastSeq+1 {
			return nil, fmt.Errorf("seq %d follows %d: trace truncated or interleaved", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		rep.Events++
		rep.ByType[e.Ev]++

		switch e.Ev {
		case "route_attempt":
			a, err := netOf(&e)
			if err != nil {
				return nil, err
			}
			a.attempts++
			rep.Routing.Attempts++
			if e.Attempt > rep.Routing.MaxAttempt {
				rep.Routing.MaxAttempt = e.Attempt
			}
		case "route_ok":
			a, err := netOf(&e)
			if err != nil {
				return nil, err
			}
			rep.Routing.Routed++
			a.wl, a.vias = e.WL, e.Vias
			a.depth = 0 // a committed route ends its rip-up chain
		case "route_fail":
			a, err := netOf(&e)
			if err != nil {
				return nil, err
			}
			rep.Routing.Failed++
			a.fails++
			if rep.Routing.FailByReason == nil {
				rep.Routing.FailByReason = map[string]int64{}
			}
			rep.Routing.FailByReason[e.Reason]++
			if e.Reason == "repair_drop" {
				rep.Repair.Dropped++
			}
		case "ripup":
			a, err := netOf(&e)
			if err != nil {
				return nil, err
			}
			a.ripups++
			rep.Ripups.Total++
			ripCause[e.Cause]++
			d := a.depth + 1
			if e.Cause == "blocker" && e.For != nil {
				// The chain continues from the net whose commit displaced
				// this one, not from this net's own history.
				f, err := netOf(&event{Seq: e.Seq, Ev: e.Ev, Net: e.For})
				if err != nil {
					return nil, err
				}
				d = f.depth + 1
				triggers[*e.For]++
			}
			a.depth = d
			depthDist[d]++
			if d > rep.Ripups.MaxChain {
				rep.Ripups.MaxChain = d
			}
		case "window_check":
			l, err := layerOf(&e)
			if err != nil {
				return nil, err
			}
			l.WindowChecks++
			switch e.Outcome {
			case "clean":
				l.Clean++
			case "resolved":
				l.Resolved++
			case "ripup":
				l.Ripup++
			}
		case "color_flip":
			l, err := layerOf(&e)
			if err != nil {
				return nil, err
			}
			l.ColorFlips++
			if e.Feas != 0 {
				l.FlipsFeasible++
			}
		case "overlay_delta":
			l, err := layerOf(&e)
			if err != nil {
				return nil, err
			}
			l.RecoveredNM += e.Before - e.After
		case "repair_pass":
			rep.Repair.Passes++
			rep.Repair.Offenders = append(rep.Repair.Offenders, e.Offend)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.Events == 0 {
		return nil, errors.New("empty trace")
	}

	for i := 0; ; i++ {
		l, ok := layers[i]
		if !ok {
			break
		}
		rep.Layers = append(rep.Layers, *l)
	}
	if len(rep.Layers) != len(layers) {
		return nil, fmt.Errorf("trace names %d layers but they are not contiguous from 0", len(layers))
	}

	rep.Ripups.ByCause = ripCause
	if len(ripCause) == 0 {
		rep.Ripups.ByCause = nil
	}
	for d, n := range depthDist {
		rep.Ripups.ChainDepths = append(rep.Ripups.ChainDepths, ChainDepth{Depth: d, Count: n})
	}
	sort.Slice(rep.Ripups.ChainDepths, func(a, b int) bool {
		return rep.Ripups.ChainDepths[a].Depth < rep.Ripups.ChainDepths[b].Depth
	})
	for n, c := range triggers {
		rep.Ripups.TopTriggers = append(rep.Ripups.TopTriggers, Trigger{Net: n, Caused: c})
	}
	sort.Slice(rep.Ripups.TopTriggers, func(a, b int) bool {
		ta, tb := rep.Ripups.TopTriggers[a], rep.Ripups.TopTriggers[b]
		if ta.Caused != tb.Caused {
			return ta.Caused > tb.Caused
		}
		return ta.Net < tb.Net
	})
	if len(rep.Ripups.TopTriggers) > topK {
		rep.Ripups.TopTriggers = rep.Ripups.TopTriggers[:topK]
	}

	all := make([]*netAgg, 0, len(nets))
	for _, a := range nets {
		all = append(all, a)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.attempts != b.attempts {
			return a.attempts > b.attempts
		}
		if a.ripups != b.ripups {
			return a.ripups > b.ripups
		}
		return a.net < b.net
	})
	if len(all) > topK {
		all = all[:topK]
	}
	for _, a := range all {
		rep.TopNets = append(rep.TopNets, NetReport{
			Net: a.net, Attempts: a.attempts, Ripups: a.ripups,
			Fails: a.fails, WL: a.wl, Vias: a.vias,
		})
	}
	return rep, nil
}

// ledgerRollup picks one ledger cell (first ours cell, or the first whose
// key contains the substring) and extracts the timing/cache summary.
func ledgerRollup(l *bench.Ledger, sub string) (*LedgerReport, error) {
	for i := range l.Cells {
		c := &l.Cells[i]
		if sub != "" && !strings.Contains(c.Key(), sub) {
			continue
		}
		if sub == "" && c.Algo != string(bench.AlgoOurs) {
			continue
		}
		return &LedgerReport{
			Cell:      c.Key(),
			WallNS:    c.Timing.WallNS,
			StagesNS:  c.Timing.StagesNS,
			CacheHits: c.Det.Counters["decomp.cache_hits"],
			CacheMiss: c.Det.Counters["decomp.cache_misses"],
		}, nil
	}
	return nil, fmt.Errorf("no ledger cell matches %q", sub)
}

// Render writes the human-readable report.
func (rep *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "trace: %d events\n", rep.Events)
	types := make([]string, 0, len(rep.ByType))
	for t := range rep.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(w, "  %-14s %6d\n", t, rep.ByType[t])
	}

	fmt.Fprintf(w, "\nrouting: %d attempts, %d routed, %d failed (max attempt %d)\n",
		rep.Routing.Attempts, rep.Routing.Routed, rep.Routing.Failed, rep.Routing.MaxAttempt)
	for _, r := range sortedKeys(rep.Routing.FailByReason) {
		fmt.Fprintf(w, "  fail %-12s %6d\n", r, rep.Routing.FailByReason[r])
	}

	fmt.Fprintf(w, "\n%5s %8s %8s %8s %8s %6s %6s %12s\n",
		"layer", "winchk", "clean", "resolved", "ripup", "flips", "feas", "recovered")
	for _, l := range rep.Layers {
		fmt.Fprintf(w, "%5d %8d %8d %8d %8d %6d %6d %10dnm\n",
			l.Layer, l.WindowChecks, l.Clean, l.Resolved, l.Ripup,
			l.ColorFlips, l.FlipsFeasible, l.RecoveredNM)
	}

	fmt.Fprintf(w, "\ntop nets by attempts:\n%6s %9s %7s %6s %6s %5s\n",
		"net", "attempts", "ripups", "fails", "wl", "vias")
	for _, n := range rep.TopNets {
		fmt.Fprintf(w, "%6d %9d %7d %6d %6d %5d\n",
			n.Net, n.Attempts, n.Ripups, n.Fails, n.WL, n.Vias)
	}

	fmt.Fprintf(w, "\nrip-ups: %d total, longest causal chain %d\n", rep.Ripups.Total, rep.Ripups.MaxChain)
	for _, c := range sortedKeys(rep.Ripups.ByCause) {
		fmt.Fprintf(w, "  cause %-10s %6d\n", c, rep.Ripups.ByCause[c])
	}
	if len(rep.Ripups.ChainDepths) > 0 {
		fmt.Fprintf(w, "  chain depth:")
		for _, d := range rep.Ripups.ChainDepths {
			fmt.Fprintf(w, " %d:%d", d.Depth, d.Count)
		}
		fmt.Fprintln(w)
	}
	if len(rep.Ripups.TopTriggers) > 0 {
		fmt.Fprintf(w, "  top triggering nets:")
		for _, t := range rep.Ripups.TopTriggers {
			fmt.Fprintf(w, " net%d:%d", t.Net, t.Caused)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nrepair: %d passes, offenders %v, %d nets dropped\n",
		rep.Repair.Passes, rep.Repair.Offenders, rep.Repair.Dropped)

	if rep.Ledger != nil {
		fmt.Fprintf(w, "\nledger cell %s (wall-clock section — measurement, not identity):\n", rep.Ledger.Cell)
		fmt.Fprintf(w, "  wall %.3fs\n", float64(rep.Ledger.WallNS)/1e9)
		for _, s := range sortedKeys(rep.Ledger.StagesNS) {
			fmt.Fprintf(w, "  stage %-16s %10.3fs\n", s, float64(rep.Ledger.StagesNS[s])/1e9)
		}
		hm := rep.Ledger.CacheHits + rep.Ledger.CacheMiss
		if hm > 0 {
			fmt.Fprintf(w, "  decomp cache: %d/%d hits (%.1f%%)\n",
				rep.Ledger.CacheHits, hm, 100*float64(rep.Ledger.CacheHits)/float64(hm))
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
