package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sadproute/internal/bench"
)

const goldenTrace = "../../results/golden/trace-gen.jsonl"

// TestGoldenJSON diffs tracetool -json on the checked-in fixture trace
// against the checked-in report: any drift in the report schema or the
// analysis shows up line by line here. After an INTENTIONAL change,
// regenerate with
//
//	go run ./cmd/tracetool -json results/golden/trace-gen.jsonl > results/golden/tracetool-gen.json
//
// and review the diff like any other code change. (The fixture trace
// itself regenerates with benchgen -nets 80 -tracks 40 -seed 7 piped
// through sadproute -trace; CI replays that pipeline too.)
func TestGoldenJSON(t *testing.T) {
	want, err := os.ReadFile("../../results/golden/tracetool-gen.json")
	if err != nil {
		t.Fatalf("reading golden report: %v (regenerate per the comment above)", err)
	}
	var out strings.Builder
	if err := run([]string{"-json", goldenTrace}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() == string(want) {
		return
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(out.String(), "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("report line %d differs\nwant: %q\ngot:  %q", i+1, w, g)
		}
	}
	t.Fatal("tracetool -json drifted from results/golden/tracetool-gen.json; regenerate if intentional")
}

// TestJSONDeterministic runs the analyzer twice on the same trace; the
// -json bytes must be identical (maps serialize sorted, slices are
// explicitly ordered).
func TestJSONDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-json", goldenTrace}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-json", goldenTrace}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two runs on the same trace produced different -json bytes")
	}
}

// TestTextReport smoke-checks the human rendering on the fixture.
func TestTextReport(t *testing.T) {
	var out strings.Builder
	if err := run([]string{goldenTrace}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace:", "routing:", "top nets", "rip-ups:", "repair:", "chain depth:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, out.String())
		}
	}
}

// trace builds a JSONL trace from event lines, stamping seq.
func trace(lines ...string) string {
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "{\"seq\":%d,%s}\n", i+1, l)
	}
	return b.String()
}

func analyzeString(t *testing.T, s string, topK int) *Report {
	t.Helper()
	rep, err := Analyze(strings.NewReader(s), topK)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCausalityChains pins the chain-depth algorithm: a blocker rip-up
// continues the chain of its triggering net, any other cause deepens the
// net's own chain, and a committed route resets the chain.
func TestCausalityChains(t *testing.T) {
	rep := analyzeString(t, trace(
		`"ev":"route_attempt","net":1,"attempt":0`,
		`"ev":"route_ok","net":1,"attempt":0,"wl":4,"vias":0`,
		// Net 2's commit displaces net 1: chain depth 1, trigger 2.
		`"ev":"ripup","net":1,"cause":"blocker","for":2`,
		// Net 3's commit displaces net 1 again before it re-routes; net 3
		// has depth 0, so the chain restarts at depth 1 (not 2).
		`"ev":"ripup","net":1,"cause":"blocker","for":3`,
		// Net 1's own window rip-up deepens its chain: depth 2.
		`"ev":"ripup","net":1,"cause":"window"`,
		// Net 1 now triggers net 4 at depth 3 — the cascade propagates.
		`"ev":"ripup","net":4,"cause":"blocker","for":1`,
		// Net 1 commits; its chain resets.
		`"ev":"route_ok","net":1,"attempt":2,"wl":6,"vias":1`,
		// A fresh self-rip for net 1 starts over at depth 1.
		`"ev":"ripup","net":1,"cause":"infeasible"`,
	), 10)
	if rep.Ripups.Total != 5 || rep.Ripups.MaxChain != 3 {
		t.Fatalf("total=%d max=%d, want 5/3", rep.Ripups.Total, rep.Ripups.MaxChain)
	}
	wantDepths := []ChainDepth{{1, 3}, {2, 1}, {3, 1}}
	if len(rep.Ripups.ChainDepths) != len(wantDepths) {
		t.Fatalf("chain depths %+v, want %+v", rep.Ripups.ChainDepths, wantDepths)
	}
	for i, w := range wantDepths {
		if rep.Ripups.ChainDepths[i] != w {
			t.Errorf("depth row %d = %+v, want %+v", i, rep.Ripups.ChainDepths[i], w)
		}
	}
	// Triggers: nets 1, 2, 3 each caused one blocker rip-up; ties break
	// by ascending net id.
	want := []Trigger{{1, 1}, {2, 1}, {3, 1}}
	if len(rep.Ripups.TopTriggers) != 3 {
		t.Fatalf("triggers %+v, want %+v", rep.Ripups.TopTriggers, want)
	}
	for i, w := range want {
		if rep.Ripups.TopTriggers[i] != w {
			t.Errorf("trigger %d = %+v, want %+v", i, rep.Ripups.TopTriggers[i], w)
		}
	}
	if rep.Ripups.ByCause["blocker"] != 3 || rep.Ripups.ByCause["window"] != 1 || rep.Ripups.ByCause["infeasible"] != 1 {
		t.Errorf("by_cause %+v", rep.Ripups.ByCause)
	}
}

// TestTopNetRanking pins the expensive-net ordering and the topK cut.
func TestTopNetRanking(t *testing.T) {
	rep := analyzeString(t, trace(
		`"ev":"route_attempt","net":5,"attempt":0`,
		`"ev":"route_ok","net":5,"attempt":0,"wl":3,"vias":0`,
		`"ev":"route_attempt","net":7,"attempt":0`,
		`"ev":"ripup","net":7,"cause":"infeasible"`,
		`"ev":"route_attempt","net":7,"attempt":1`,
		`"ev":"route_ok","net":7,"attempt":1,"wl":9,"vias":2`,
		`"ev":"route_attempt","net":2,"attempt":0`,
		`"ev":"route_fail","net":2,"reason":"no_path"`,
	), 2)
	if len(rep.TopNets) != 2 {
		t.Fatalf("topK cut not applied: %+v", rep.TopNets)
	}
	if rep.TopNets[0].Net != 7 || rep.TopNets[0].Attempts != 2 || rep.TopNets[0].WL != 9 || rep.TopNets[0].Vias != 2 {
		t.Errorf("rank 0 = %+v, want net 7 with 2 attempts wl 9", rep.TopNets[0])
	}
	// Nets 2 and 5 tie at 1 attempt, 0 rip-ups; net 2 wins by id.
	if rep.TopNets[1].Net != 2 || rep.TopNets[1].Fails != 1 {
		t.Errorf("rank 1 = %+v, want net 2 with 1 fail", rep.TopNets[1])
	}
	if rep.Routing.MaxAttempt != 1 || rep.Routing.FailByReason["no_path"] != 1 {
		t.Errorf("routing rollup %+v", rep.Routing)
	}
}

// TestSeqValidation proves truncated or interleaved traces are rejected
// rather than silently misanalyzed.
func TestSeqValidation(t *testing.T) {
	bad := "{\"seq\":1,\"ev\":\"route_attempt\",\"net\":0,\"attempt\":0}\n" +
		"{\"seq\":3,\"ev\":\"route_ok\",\"net\":0,\"attempt\":0}\n"
	if _, err := Analyze(strings.NewReader(bad), 10); err == nil || !strings.Contains(err.Error(), "seq 3 follows 1") {
		t.Fatalf("seq gap not rejected: %v", err)
	}
	if _, err := Analyze(strings.NewReader(""), 10); err == nil {
		t.Fatal("empty trace not rejected")
	}
	if _, err := Analyze(strings.NewReader("not json\n"), 10); err == nil {
		t.Fatal("malformed line not rejected")
	}
}

// TestLedgerRollup wires a ledger into the report via -ledger/-cell.
func TestLedgerRollup(t *testing.T) {
	l := bench.NewLedger("t", 1)
	l.Cells = append(l.Cells, bench.LedgerCell{
		Exp: "table3", Bench: "gen", Algo: "ours",
		Det: bench.LedgerDet{Counters: map[string]int64{
			"decomp.cache_hits": 30, "decomp.cache_misses": 10,
		}},
		Timing: bench.LedgerTiming{WallNS: 5e8, StagesNS: map[string]int64{"route": 4e8}},
	})
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-ledger", path, goldenTrace}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ledger cell table3/gen/ours", "30/40 hits (75.0%)", "stage route"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("ledger rollup missing %q:\n%s", want, out.String())
		}
	}
	if err := run([]string{"-ledger", path, "-cell", "nosuch", goldenTrace}, &out); err == nil {
		t.Fatal("unmatched -cell should error")
	}
}

// TestBadArgs pins the CLI error contract.
func TestBadArgs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing trace path should error")
	}
	if err := run([]string{"/definitely/not/a/trace.jsonl"}, &out); err == nil {
		t.Fatal("unreadable trace should error")
	}
	out.Reset()
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(out.String(), "usage: tracetool") {
		t.Fatalf("-h did not print usage:\n%s", out.String())
	}
}
