// Package gorout seeds violations of the goroutine rule: only the
// blessed pool packages may spawn goroutines in internal/.
package gorout

// Spawn trips the rule: a stray goroutine outside the pools.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// SpawnAllowed is the documented escape hatch.
func SpawnAllowed(ch chan int) {
	go func() { ch <- 2 }() //lint:allow goroutine fixture: documented one-off
}
