// Package immut declares a marked immutable type: the home package may
// write its fields (it builds values before publication), everyone else
// trips the immutable rule.
package immut

// Snapshot is a cached, shared value.
//
//sadp:immutable — shared via the fixture's content-addressed cache.
type Snapshot struct {
	Count int
	Tags  []string
}

// New builds a Snapshot; home-package writes stay silent.
func New() *Snapshot {
	s := &Snapshot{}
	s.Count = 1
	return s
}
