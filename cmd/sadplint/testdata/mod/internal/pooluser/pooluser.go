// Package pooluser seeds violations and clean idioms of the poolleak
// rule: every Acquire into a local must reach a Release on all paths.
package pooluser

import "fixture/internal/astar"

// LeakEarlyReturn trips poolleak: the early return path skips Release.
func LeakEarlyReturn(g int, bad bool) int {
	e := astar.Acquire(g)
	if bad {
		return 0
	}
	e.Release()
	return 1
}

// LeakPanic trips poolleak: the explicit panic edge has no defer.
func LeakPanic(g int, bad bool) {
	e := astar.Acquire(g)
	if bad {
		panic("bad") //lint:allow panic fixture: exercising the poolleak panic edge
	}
	e.Release()
}

// LeakConditionalDefer trips poolleak: the defer is registered on one
// branch only; the fallthrough path exits with the handle open.
func LeakConditionalDefer(g int, bad bool) {
	e := astar.Acquire(g)
	if bad {
		defer e.Release()
	}
}

// OKDefer is the preferred idiom: the defer covers every edge, panics
// included.
func OKDefer(g int, bad bool) {
	e := astar.Acquire(g)
	defer e.Release()
	if bad {
		panic("bad") //lint:allow panic fixture: defers run on panic, so this path is covered
	}
}

// OKAllPaths releases explicitly on every return edge.
func OKAllPaths(g int, bad bool) int {
	e := astar.Acquire(g)
	if bad {
		e.Release()
		return 0
	}
	e.Release()
	return 1
}

// OKLoop acquires and releases inside each loop iteration.
func OKLoop(g, n int) {
	for i := 0; i < n; i++ {
		e := astar.Acquire(g)
		e.Release()
	}
}

// OKDeferClosure releases through a deferred closure.
func OKDeferClosure(g int) {
	e := astar.Acquire(g)
	defer func() { e.Release() }()
}

// OKSliceDefer shows ownership transfer at birth: engines acquired
// straight into slice elements are not tracked intraprocedurally; the
// deferred closure releases them.
func OKSliceDefer(g, n int) {
	engs := make([]*astar.Engine, n)
	for i := range engs {
		engs[i] = astar.Acquire(g)
	}
	defer func() {
		for _, e := range engs {
			e.Release()
		}
	}()
}

// OKReturnTransfer hands the open handle to the caller: transfer ends
// tracking (the caller owns the release).
func OKReturnTransfer(g int) *astar.Engine {
	e := astar.Acquire(g)
	return e
}

// OKArgTransfer passes the handle to another owner.
func OKArgTransfer(g int) {
	e := astar.Acquire(g)
	astar.Sink(e)
}

// OKAllowed is the documented escape hatch.
func OKAllowed(g int, bad bool) {
	e := astar.Acquire(g) //lint:allow poolleak fixture: deliberate leak proving the escape hatch
	if bad {
		return
	}
	e.Release()
}

// LeakReturnReceiver trips poolleak: the handle is only used as a method
// receiver in the return — the result leaves, the handle does not, and
// nothing releases it (the exact shape of a dropped defer in DecomposeCutR).
func LeakReturnReceiver(g int) int {
	e := astar.Acquire(g)
	return e.Grind()
}

// OKReturnReceiver mirrors the real one-shot pooled-call idiom: a defer
// covers every edge while the return uses the handle as a receiver.
func OKReturnReceiver(g int) int {
	e := astar.Acquire(g)
	defer e.Release()
	return e.Grind()
}

// OKIntermediateReceiver: a receiver call assigned to a local does not
// end tracking; the later Release still counts.
func OKIntermediateReceiver(g int) int {
	e := astar.Acquire(g)
	n := e.Grind()
	e.Release()
	return n
}
