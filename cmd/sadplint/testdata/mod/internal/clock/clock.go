// Package clock seeds violations of the wallclock rule: internal/ code
// must not read wall-clock time or import math/rand.
package clock

import (
	"math/rand"
	"time"
)

// Stamp trips the rule: a wall-clock read in library code.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed trips the rule three times: Now, Sleep, and Since.
func Elapsed() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}

// Roll leans on the banned math/rand import (flagged at the import).
func Roll() int { return rand.Int() }

// Timed is the documented escape hatch for reporting-only metrics.
func Timed() time.Duration {
	t0 := time.Now()      //lint:allow wallclock fixture: reporting-only timing metric
	return time.Since(t0) //lint:allow wallclock fixture: reporting-only timing metric
}

// Budget stays silent: time.Duration arithmetic is not a clock read.
func Budget(d time.Duration) bool { return d > time.Second }
