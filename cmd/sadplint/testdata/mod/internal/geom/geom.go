// Package geom seeds violations of the float rule: this fixture path is
// one of the integer-grid packages sadplint protects.
package geom

// Ratio trips the rule three times: two float64 conversions and one
// floating-point division.
func Ratio(a, b int) float64 {
	return float64(a) / float64(b)
}

// Half trips the rule with a float literal.
func Half() float64 { // this float64 is flagged too
	return 0.5
}

// Scaled shows compound float assignment with no float token on the line.
func Scaled(x float64) float64 {
	x += 1
	return x
}

// Pct is whitelisted with a justification.
func Pct(done, total int) float64 { //lint:allow float fixture: presentation-only percentage
	//lint:allow float fixture: presentation-only percentage
	return 100 * float64(done) / float64(total)
}
