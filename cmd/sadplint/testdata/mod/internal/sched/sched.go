// Package sched mirrors the real deterministic worker pool: it is on the
// goroutine rule's allowlist, so its go statements stay silent.
package sched

import "sync"

// Run fans fn across n tasks.
func Run(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
