package nodoc

// Answer exists only so the package is non-empty; the violation here is
// the missing package comment above the package clause.
func Answer() int { return 42 }
