// Package consumer seeds violations of the marker-driven immutable rule
// against the decomp fixture's marked Result type.
package consumer

import "fixture/internal/decomp"

// Mutate trips the immutable rule three ways: direct field write, write
// through an indexed element, and increment.
func Mutate(r *decomp.Result) {
	r.SideOverlayNM = 0
	r.Overlays[0].Hard = false
	r.SideOverlayNM++
}

// MutateAllowed is the documented escape hatch for code that provably
// owns its Result.
func MutateAllowed(r *decomp.Result) {
	r.SideOverlayNM = 0 //lint:allow immutable fixture: freshly cloned, never cached
}

// Read stays silent: only writes trip the rule.
func Read(r *decomp.Result) int {
	return r.SideOverlayNM
}
