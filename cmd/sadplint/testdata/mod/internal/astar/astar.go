// Package astar mirrors the pooled-engine API of the real internal/astar:
// Acquire hands out a handle the poolleak rule tracks to its Release.
package astar

// Engine is a pooled scratch engine.
type Engine struct{ g int }

// Acquire returns a pooled engine bound to g.
func Acquire(g int) *Engine { return &Engine{g: g} }

// Release returns the engine to the pool.
func (e *Engine) Release() { e.g = 0 }

// Sink is an arbitrary consumer used by the ownership-transfer fixtures.
func Sink(e *Engine) {}

// Grind is an arbitrary method used by the receiver-use fixtures.
func (e *Engine) Grind() int { return e.g }
