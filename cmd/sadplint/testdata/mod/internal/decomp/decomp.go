// Package decomp mirrors the real oracle package: it owns Result, so
// writes to Result fields inside it are legal.
package decomp

// Result mirrors the real decomposition Result: data the memo cache
// shares among callers, immutable outside this package.
//
//sadp:immutable — shared by the fixture memo cache.
type Result struct {
	SideOverlayNM int
	Overlays      []Overlay
}

// Overlay is one measured overlay fragment.
type Overlay struct{ Hard bool }

// New builds a Result; field writes inside the owning package stay silent.
func New() *Result {
	r := &Result{}
	r.SideOverlayNM = 1
	return r
}
