// Package immutuser seeds violations of the marker-driven immutable rule
// against a marked type that is NOT the decomp fixture — proving the rule
// follows the //sadp:immutable marker, not a hardcoded type.
package immutuser

import "fixture/internal/immut"

// Mutate trips the immutable rule three ways.
func Mutate(s *immut.Snapshot) {
	s.Count = 7
	s.Tags[0] = "x"
	s.Count++
}

// MutateAllowed is the escape hatch for a provably-private clone.
func MutateAllowed(s *immut.Snapshot) {
	s.Count = 7 //lint:allow immutable fixture: freshly cloned, never cached
}
