// Package serve mirrors the real sadpd job-server pool: it is on the
// goroutine rule's allowlist, so its bounded worker-pool go statements
// stay silent.
package serve

import "sync"

// Pool drains a job queue with a fixed worker count.
type Pool struct {
	queue chan int
	wg    sync.WaitGroup
}

// Start launches the workers.
func (p *Pool) Start(workers int, run func(int)) {
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				run(j)
			}
		}()
	}
}
