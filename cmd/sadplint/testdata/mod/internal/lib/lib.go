// Package lib seeds violations of the panic, getenv, and maprange rules.
package lib

import (
	"fmt"
	"io"
	"os"
	"sort"
)

// Explode trips the panic rule: library code must return errors.
func Explode() {
	panic("boom")
}

// NewCounter is constructor validation: its panic is allowed by name.
func NewCounter(n int) int {
	if n < 0 {
		panic("lib: negative count")
	}
	return n
}

// Keys trips the maprange rule: the slice is never sorted here.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the clean idiom: collect, then sort.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump trips the maprange rule by writing straight from the loop.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Debug trips the getenv rule: a hidden behavior switch.
func Debug() bool {
	return os.Getenv("FIXTURE_DEBUG") != ""
}

// DebugAllowed is the documented escape hatch.
func DebugAllowed() bool {
	return os.Getenv("FIXTURE_OK") != "" //lint:allow getenv fixture: documented in README
}

// Malformed has a directive without a justification: the directive itself
// is a finding, and it suppresses nothing.
func Malformed() bool {
	return os.Getenv("FIXTURE_BAD") != "" //lint:allow getenv
}

// Log trips the stderr rule: library diagnostics must go through the
// observability recorder, not straight to the process stderr.
func Log(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// LogAllowed is the documented escape hatch for the stderr rule.
func LogAllowed(msg string) {
	fmt.Fprintln(os.Stderr, msg) //lint:allow stderr fixture: documented fallback writer
}

// Pick trips the taint maprange rule the old syntactic pass missed: the
// chosen key escapes the loop and reaches ordered output after it.
func Pick(w io.Writer, m map[string]int) {
	var picked string
	for k := range m {
		if len(k) > 3 {
			picked = k
		}
	}
	fmt.Fprintln(w, picked)
}

// Derived trips the taint rule through an intermediate variable.
func Derived(m map[string]int) []string {
	var out []string
	for k := range m {
		k2 := k + "!"
		out = append(out, k2)
	}
	return out
}

// Sum stays silent under the taint rule: numeric accumulation is
// order-independent even though it ranges a map.
func Sum(w io.Writer, m map[string]int) {
	total := 0
	for _, v := range m {
		total += v
	}
	fmt.Fprintf(w, "%d\n", total)
}

// Tally stays silent: per-entry output is a constant, so iteration order
// cannot show in the bytes written.
func Tally(w io.Writer, m map[string]int) {
	for range m {
		fmt.Fprint(w, ".")
	}
}

// EmitSorted stays silent: the sort kills the taint before emission.
func EmitSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// Unknown has a directive naming a rule that does not exist: the
// directive is a finding and suppresses nothing.
func Unknown() bool {
	return os.Getenv("FIXTURE_UNK") != "" //lint:allow nosuchrule rules must come from the catalogue
}
