// Package lib seeds violations of the panic, getenv, and maprange rules.
package lib

import (
	"fmt"
	"io"
	"os"
	"sort"
)

// Explode trips the panic rule: library code must return errors.
func Explode() {
	panic("boom")
}

// NewCounter is constructor validation: its panic is allowed by name.
func NewCounter(n int) int {
	if n < 0 {
		panic("lib: negative count")
	}
	return n
}

// Keys trips the maprange rule: the slice is never sorted here.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the clean idiom: collect, then sort.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump trips the maprange rule by writing straight from the loop.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Debug trips the getenv rule: a hidden behavior switch.
func Debug() bool {
	return os.Getenv("FIXTURE_DEBUG") != ""
}

// DebugAllowed is the documented escape hatch.
func DebugAllowed() bool {
	return os.Getenv("FIXTURE_OK") != "" //lint:allow getenv fixture: documented in README
}

// Malformed has a directive without a justification: the directive itself
// is a finding, and it suppresses nothing.
func Malformed() bool {
	return os.Getenv("FIXTURE_BAD") != "" //lint:allow getenv
}

// Log trips the stderr rule: library diagnostics must go through the
// observability recorder, not straight to the process stderr.
func Log(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// LogAllowed is the documented escape hatch for the stderr rule.
func LogAllowed(msg string) {
	fmt.Fprintln(os.Stderr, msg) //lint:allow stderr fixture: documented fallback writer
}
