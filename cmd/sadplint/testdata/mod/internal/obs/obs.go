// Package obs mirrors the real internal/obs: it is the one library package
// allowed to reference os.Stderr (the default debug destination).
package obs

import (
	"fmt"
	"os"
)

// Debugf writes to the sanctioned default diagnostic stream.
func Debugf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format, args...)
}
