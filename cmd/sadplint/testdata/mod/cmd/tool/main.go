// Command tool shows that the panic rule only applies to library
// packages: this panic must not be flagged.
package main

func main() {
	panic("commands may crash loudly")
}
