package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source for CFG tests.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// reaches reports whether the exit node is reachable from entry by
// following successor edges.
func reaches(from, to *cfgNode) bool {
	seen := map[*cfgNode]bool{}
	var walk func(n *cfgNode) bool
	walk = func(n *cfgNode) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, s := range n.succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// nodeFor finds the unique CFG node owning a statement of the given
// dynamic type, failing the test on zero or multiple matches.
func nodeFor[T ast.Stmt](t *testing.T, g *funcCFG) *cfgNode {
	t.Helper()
	var found *cfgNode
	for _, n := range g.nodes {
		if _, ok := n.stmt.(T); ok {
			if found != nil {
				t.Fatal("multiple nodes match the statement type")
			}
			found = n
		}
	}
	if found == nil {
		t.Fatal("no node matches the statement type")
	}
	return found
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(parseBody(t, "x := 1\ny := x\n_ = y"))
	if !reaches(g.entry, g.exit) {
		t.Error("straight-line body must reach exit")
	}
	// 3 statements + synthetic exit
	if len(g.nodes) != 4 {
		t.Errorf("got %d nodes, want 4", len(g.nodes))
	}
	for _, n := range g.nodes {
		if n != g.exit && len(n.succs) != 1 {
			t.Errorf("straight-line node has %d successors", len(n.succs))
		}
	}
}

func TestCFGIfElse(t *testing.T) {
	g := buildCFG(parseBody(t, "if x := 1; x > 0 {\n\treturn\n} else {\n\tx--\n}"))
	cond := nodeFor[*ast.IfStmt](t, g)
	if len(cond.succs) != 2 {
		t.Fatalf("if condition has %d successors, want 2 (then/else)", len(cond.succs))
	}
	ret := nodeFor[*ast.ReturnStmt](t, g)
	if len(ret.succs) != 1 || ret.succs[0] != g.exit {
		t.Error("return must edge straight to exit")
	}
	// the init statement x := 1 gets its own node before the condition
	init := nodeFor[*ast.AssignStmt](t, g)
	if g.entry != init || init.succs[0] != cond {
		t.Error("if init should be the entry node feeding the condition")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildCFG(parseBody(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}"))
	cond := nodeFor[*ast.ForStmt](t, g)
	if len(cond.succs) != 2 {
		t.Fatalf("for condition has %d successors, want 2 (body/after)", len(cond.succs))
	}
	post := nodeFor[*ast.IncDecStmt](t, g)
	if len(post.succs) != 1 || post.succs[0] != cond {
		t.Error("post statement must back-edge to the condition")
	}
}

func TestCFGInfiniteForOnlyExitsViaBreak(t *testing.T) {
	g := buildCFG(parseBody(t, "for {\n\t_ = 1\n}"))
	if reaches(g.entry, g.exit) {
		t.Error("for{} without break must not reach exit")
	}
	g = buildCFG(parseBody(t, "for {\n\tbreak\n}"))
	if !reaches(g.entry, g.exit) {
		t.Error("for{} with break must reach exit")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildCFG(parseBody(t, `outer:
	for i := 0; i < 3; i++ {
		for {
			if i > 1 {
				break outer
			}
			continue outer
		}
	}`))
	// break outer must bypass the inner for{}: exit reachable even though
	// the inner loop has no own break.
	if !reaches(g.entry, g.exit) {
		t.Error("break outer must reach past both loops to exit")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(parseBody(t, `switch x := 1; x {
	case 1:
		fallthrough
	case 2:
		return
	default:
		_ = x
	}`))
	disp := nodeFor[*ast.SwitchStmt](t, g)
	if len(disp.succs) != 3 {
		t.Errorf("switch with default dispatches to %d entries, want 3", len(disp.succs))
	}
	ft := nodeFor[*ast.BranchStmt](t, g)
	ret := nodeFor[*ast.ReturnStmt](t, g)
	if len(ft.succs) != 1 || ft.succs[0] != ret {
		t.Error("fallthrough must edge into the next case body")
	}
}

func TestCFGSwitchNoDefaultFallsThrough(t *testing.T) {
	g := buildCFG(parseBody(t, "switch 1 {\ncase 1:\n\treturn\n}\n_ = 2"))
	disp := nodeFor[*ast.SwitchStmt](t, g)
	// one case entry + the no-default edge to the following statement
	if len(disp.succs) != 2 {
		t.Errorf("switch without default has %d successors, want 2", len(disp.succs))
	}
}

func TestCFGPanicIsTerminal(t *testing.T) {
	g := buildCFG(parseBody(t, "panic(\"boom\")\n_ = 1"))
	var panicNode *cfgNode
	for _, n := range g.nodes {
		if es, ok := n.stmt.(*ast.ExprStmt); ok {
			if _, isCall := es.X.(*ast.CallExpr); isCall {
				panicNode = n
			}
		}
	}
	if panicNode == nil {
		t.Fatal("panic node not found")
	}
	if len(panicNode.succs) != 1 || panicNode.succs[0] != g.exit {
		t.Error("panic(...) must edge straight to exit, not fall through")
	}
}

func TestCFGGotoForwardAndBackward(t *testing.T) {
	g := buildCFG(parseBody(t, "x := 0\nagain:\nx++\nif x < 3 {\n\tgoto again\n}\ngoto done\n_ = x\ndone:\nreturn"))
	if !reaches(g.entry, g.exit) {
		t.Error("goto-shaped body must reach exit")
	}
	// preds of exit include the final return
	ret := nodeFor[*ast.ReturnStmt](t, g)
	found := false
	for _, p := range g.preds[g.exit] {
		if p == ret {
			found = true
		}
	}
	if !found {
		t.Error("exit preds must include the return node")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(parseBody(t, `ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	default:
		return
	}`))
	sel := nodeFor[*ast.SelectStmt](t, g)
	if len(sel.succs) != 2 {
		t.Errorf("select has %d successors, want 2 (one per clause)", len(sel.succs))
	}
}

func TestIdsetOps(t *testing.T) {
	a := idset{1: {}, 2: {}}
	b := idset{2: {}, 3: {}}
	u := union(a, b)
	if !u.has(1) || !u.has(2) || !u.has(3) || len(u) != 3 {
		t.Errorf("union = %v", u)
	}
	if u.has(1) && len(a) != 2 {
		t.Error("union must not mutate its left operand")
	}
	if got := union(a, idset{}); !got.equal(a) {
		t.Error("union with empty right should be identity")
	}
	if got := union(nil, b); !got.equal(b) {
		t.Error("union with nil left should clone right")
	}
	if a.equal(b) || !a.equal(a.clone()) {
		t.Error("equal/clone misbehave")
	}
}

// TestForwardFlowJoin checks the may-analysis join: a fact generated on
// one branch of an if survives to the statement after the join.
func TestForwardFlowJoin(t *testing.T) {
	g := buildCFG(parseBody(t, "if 1 > 0 {\n\t_ = 1\n} else {\n\t_ = 2\n}\n_ = 3"))
	// generate fact 1 at the then-branch node (_ = 1) only
	facts := forwardFlow(g, func(n *cfgNode, in idset) idset {
		if as, ok := n.stmt.(*ast.AssignStmt); ok {
			if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "1" {
				out := in.clone()
				out[1] = struct{}{}
				return out
			}
		}
		return in
	})
	if !facts[g.exit].has(1) {
		t.Error("fact generated on one branch must reach exit (may-analysis)")
	}
}

// TestForwardFlowKill checks that a kill on the only path stops the fact.
func TestForwardFlowKill(t *testing.T) {
	g := buildCFG(parseBody(t, "_ = 1\n_ = 2\n_ = 3"))
	facts := forwardFlow(g, func(n *cfgNode, in idset) idset {
		as, ok := n.stmt.(*ast.AssignStmt)
		if !ok {
			return in
		}
		lit := as.Rhs[0].(*ast.BasicLit)
		switch lit.Value {
		case "1":
			out := in.clone()
			out[7] = struct{}{}
			return out
		case "2":
			out := in.clone()
			delete(out, 7)
			return out
		}
		return in
	})
	if facts[g.exit].has(7) {
		t.Error("fact killed on the only path must not reach exit")
	}
}

// TestForwardFlowLoopFixpoint: a fact generated inside a loop must
// propagate around the back edge to the loop condition's in-set.
func TestForwardFlowLoopFixpoint(t *testing.T) {
	g := buildCFG(parseBody(t, "var i int\nfor i < 3 {\n\t_ = i\n\ti++\n}"))
	body := nodeFor[*ast.AssignStmt](t, g)
	facts := forwardFlow(g, func(n *cfgNode, in idset) idset {
		if n == body {
			out := in.clone()
			out[9] = struct{}{}
			return out
		}
		return in
	})
	cond := nodeFor[*ast.ForStmt](t, g)
	if !facts[cond].has(9) {
		t.Error("fact from the loop body must flow around the back edge")
	}
	if !facts[g.exit].has(9) {
		t.Error("fact from the loop body must reach exit via the cond-false edge")
	}
}

// TestLocalInspectPruning: localInspect on a compound statement must visit
// only the node-local expressions, not nested bodies or func literals.
func TestLocalInspectPruning(t *testing.T) {
	body := parseBody(t, "if recover() != nil {\n\tdrop()\n}\n_ = func() { inner() }")
	var calls []string
	collect := func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				calls = append(calls, id.Name)
			}
		}
		return true
	}
	localInspect(body.List[0], collect) // the if: only its condition
	localInspect(body.List[1], collect) // the assignment: func lit body pruned
	for _, c := range calls {
		if c == "drop" || c == "inner" {
			t.Errorf("localInspect leaked into a nested body: saw call %q", c)
		}
	}
	if len(calls) != 1 || calls[0] != "recover" {
		t.Errorf("expected only the recover() condition call, got %v", calls)
	}
}

func TestFuncBodies(t *testing.T) {
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", `package p
func a() { _ = func() {} }
func b()
var v = func() int { return 0 }
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(funcBodies(file)); got != 3 {
		t.Errorf("funcBodies found %d bodies, want 3 (a, its literal, v's literal)", got)
	}
}
