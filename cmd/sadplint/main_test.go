package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// runLint is a helper returning the report text and whether findings (or
// another error) were reported.
func runLint(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

// TestFixtureFindings proves every rule fires on the seeded violation
// module under testdata, and that whitelisted or out-of-scope variants
// stay silent.
func TestFixtureFindings(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod")
	if err == nil {
		t.Fatalf("expected findings on the fixture module, got a clean run:\n%s", out)
	}
	want := []string{
		// float rule, internal/geom fixture: type names, literal, division
		// between typed operands, compound assignment with no float token
		"internal/geom/geom.go:7:22: [float] float64 in integer-grid package",
		"internal/geom/geom.go:8:9: [float] float64 in integer-grid package",
		"internal/geom/geom.go:8:20: [float] floating-point / in integer-grid package",
		"internal/geom/geom.go:13:9: [float] float literal 0.5 in integer-grid package",
		"internal/geom/geom.go:18:4: [float] floating-point += in integer-grid package",
		// panic rule
		"internal/lib/lib.go:13:2: [panic] panic in library func Explode",
		// maprange rule, syntactic-era cases: unsorted append and a
		// tainted direct write inside the loop
		"internal/lib/lib.go:28:9: [maprange] slice \"out\" collects map-derived values in random order",
		"internal/lib/lib.go:46:3: [maprange] Fprintf called with a map-range-derived value",
		// maprange rule, taint-only cases the syntactic pass missed: a key
		// picked inside the loop and emitted after it, and an append of a
		// derived intermediate
		"internal/lib/lib.go:86:2: [maprange] Fprintln called with a map-range-derived value",
		"internal/lib/lib.go:94:9: [maprange] slice \"out\" collects map-derived values in random order",
		// getenv rule: plain read, and the malformed-directive one
		"internal/lib/lib.go:52:9: [getenv] os.Getenv read",
		"internal/lib/lib.go:63:9: [getenv] os.Getenv read",
		// malformed and unknown-rule directives are themselves findings
		"internal/lib/lib.go:63:40: [directive] lint:allow needs a rule name and a justification",
		"internal/lib/lib.go:132:40: [directive] lint:allow names unknown rule \"nosuchrule\"",
		// stderr rule: direct write in library code
		"internal/lib/lib.go:69:15: [stderr] os.Stderr in library code",
		// pkgdoc rule: internal/ package without a package comment
		"internal/nodoc/nodoc.go:1:9: [pkgdoc] package internal/nodoc has no package comment",
		// immutable rule via the //sadp:immutable marker on the decomp
		// fixture's Result (the retired resultwrite special case) ...
		"internal/consumer/consumer.go:10:2: [immutable] write through decomp.Result field SideOverlayNM",
		"internal/consumer/consumer.go:11:2: [immutable] write through decomp.Result field Overlays",
		"internal/consumer/consumer.go:12:2: [immutable] ++ through decomp.Result field SideOverlayNM",
		// ... and on an unrelated marked type, proving it is marker-driven
		"internal/immutuser/immutuser.go:10:2: [immutable] write through immut.Snapshot field Count",
		"internal/immutuser/immutuser.go:11:2: [immutable] write through immut.Snapshot field Tags",
		"internal/immutuser/immutuser.go:12:2: [immutable] ++ through immut.Snapshot field Count",
		// poolleak rule: early return, panic edge, conditional defer
		"internal/pooluser/pooluser.go:9:7: [poolleak] pool handle e acquired here is not Released on every path",
		"internal/pooluser/pooluser.go:19:7: [poolleak] pool handle e acquired here is not Released on every path",
		"internal/pooluser/pooluser.go:29:7: [poolleak] pool handle e acquired here is not Released on every path",
		// ... and the receiver-only-use leak: `return e.Grind()` does not
		// transfer ownership of e
		"internal/pooluser/pooluser.go:111:7: [poolleak] pool handle e acquired here is not Released on every path",
		// wallclock rule: banned import and the three clock reads
		"internal/clock/clock.go:6:2: [wallclock] import math/rand in internal/",
		"internal/clock/clock.go:12:9: [wallclock] time.Now in internal/",
		"internal/clock/clock.go:17:8: [wallclock] time.Now in internal/",
		"internal/clock/clock.go:18:2: [wallclock] time.Sleep in internal/",
		"internal/clock/clock.go:19:9: [wallclock] time.Since in internal/",
		// goroutine rule: stray goroutine outside the pools
		"internal/gorout/gorout.go:7:2: [goroutine] go statement outside the blessed worker pools",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("missing expected finding %q in output:\n%s", w, out)
		}
	}
	donts := []string{
		"geom.go:23",                // whitelisted percentage signature line
		"geom.go:25",                // whitelisted percentage body line
		"lib.go:19",                 // panic inside NewCounter is constructor validation
		"lib.go:36",                 // sorted map collection is the clean idiom
		"lib.go:57",                 // whitelisted getenv
		"lib.go:74",                 // whitelisted stderr write
		"lib.go:99",                 // Sum: numeric accumulation is order-independent
		"lib.go:103",                // Sum's Fprintf of the untainted total
		"lib.go:110",                // Tally: constant emission per entry
		"lib.go:121",                // EmitSorted: append into a sorted slice
		"lib.go:125",                // EmitSorted: emission after the sort killed the taint
		"obs.go",                    // internal/obs owns the sanctioned os.Stderr default
		"cmd/tool",                  // panic rule does not apply to commands
		"consumer.go:19",            // whitelisted immutable write
		"internal/decomp/decomp.go", // the owning package may write Result fields
		"immut.go",                  // home package builds Snapshots before publication
		"immutuser.go:17",           // whitelisted immutable write
		"pooluser.go:37",            // OKDefer
		"pooluser.go:46",            // OKAllPaths
		"pooluser.go:57",            // OKLoop
		"pooluser.go:65",            // OKDeferClosure
		"pooluser.go:73",            // OKSliceDefer: transfer at birth
		"pooluser.go:86",            // OKReturnTransfer
		"pooluser.go:92",            // OKArgTransfer
		"pooluser.go:98",            // whitelisted poolleak
		"pooluser.go:118",           // OKReturnReceiver: defer + receiver-use return
		"pooluser.go:126",           // OKIntermediateReceiver: receiver call then Release
		"clock.go:26",               // whitelisted wallclock reads
		"clock.go:27",               // whitelisted wallclock reads
		"clock.go:31",               // Duration arithmetic is not a clock read
		"gorout.go:12",              // whitelisted goroutine
		"internal/sched/sched.go",   // allowlisted pool package may spawn
		"internal/serve/serve.go",   // allowlisted job-server pool may spawn
	}
	for _, d := range donts {
		if strings.Contains(out, d) {
			t.Errorf("unexpected finding mentioning %q in output:\n%s", d, out)
		}
	}
}

// TestPatternSelection lints only one fixture package and expects findings
// from the other to be absent.
func TestPatternSelection(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "./internal/geom")
	if err == nil {
		t.Fatalf("expected float findings, got clean run:\n%s", out)
	}
	if strings.Contains(out, "lib.go") {
		t.Errorf("pattern ./internal/geom leaked findings from internal/lib:\n%s", out)
	}
	if !strings.Contains(out, "geom.go") {
		t.Errorf("pattern ./internal/geom produced no geom findings:\n%s", out)
	}
}

// TestMarkerCrossesPatterns proves the //sadp:immutable marker table is
// built module-wide: linting only the consumer package still sees the
// marker declared in the (unselected) decomp fixture package.
func TestMarkerCrossesPatterns(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "./internal/consumer")
	if err == nil {
		t.Fatalf("expected immutable findings, got clean run:\n%s", out)
	}
	if !strings.Contains(out, "[immutable] write through decomp.Result field SideOverlayNM") {
		t.Errorf("marker from unselected package not honored:\n%s", out)
	}
}

// TestJSONOutput locks the machine-readable schema: file/line/col/rule/msg.
func TestJSONOutput(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "-json", "./internal/gorout")
	if err == nil {
		t.Fatalf("expected findings, got clean run:\n%s", out)
	}
	var got []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}
	if jerr := json.Unmarshal([]byte(out), &got); jerr != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", jerr, out)
	}
	if len(got) != 1 {
		t.Fatalf("want exactly 1 finding from internal/gorout, got %d:\n%s", len(got), out)
	}
	f := got[0]
	if f.File != "internal/gorout/gorout.go" || f.Line != 7 || f.Col != 2 || f.Rule != "goroutine" || f.Msg == "" {
		t.Errorf("unexpected JSON finding: %+v", f)
	}
}

// TestJSONCleanRunEmitsEmptyArray keeps the schema stable for tooling:
// a clean selection still prints a JSON array.
func TestJSONCleanRunEmitsEmptyArray(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "-json", "./internal/sched")
	if err != nil {
		t.Fatalf("internal/sched fixture should be clean: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run should print [], got:\n%s", out)
	}
}

// TestServePoolAllowlisted pins the goroutine-rule allowlist entry for the
// sadpd job-server pool: its worker-spawning fixture lints clean, so the
// real internal/serve needs no //lint:allow escape hatches.
func TestServePoolAllowlisted(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "-json", "./internal/serve")
	if err != nil {
		t.Fatalf("internal/serve fixture should be clean: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run should print [], got:\n%s", out)
	}
}

// TestGitHubOutput checks the workflow-command annotation format CI uses
// to surface findings inline on PRs.
func TestGitHubOutput(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "-github", "./internal/gorout")
	if err == nil {
		t.Fatalf("expected findings, got clean run:\n%s", out)
	}
	want := "::error file=internal/gorout/gorout.go,line=7,col=2,title=sadplint goroutine::"
	if !strings.Contains(out, want) {
		t.Errorf("missing annotation %q in output:\n%s", want, out)
	}
	if _, err := runLint(t, "-dir", "testdata/mod", "-json", "-github"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-json -github together should error, got %v", err)
	}
}

// TestGitHubEscape covers the workflow-command data escapes.
func TestGitHubEscape(t *testing.T) {
	if got := githubEscape("50% done\r\nnext"); got != "50%25 done%0D%0Anext" {
		t.Errorf("githubEscape = %q", got)
	}
}

// TestRepoIsClean is the acceptance gate: the real module lints clean
// with every rule — the four dataflow/deep rules included — enabled.
func TestRepoIsClean(t *testing.T) {
	out, err := runLint(t, "-dir", "../..", "./...")
	if err != nil {
		t.Fatalf("sadplint must exit clean on the repo: %v\n%s", err, out)
	}
}

// TestHelpAndBadFlag covers the CLI contract used by CI.
func TestHelpAndBadFlag(t *testing.T) {
	if out, err := runLint(t, "-h"); err != nil {
		t.Fatalf("-h should succeed, got %v\n%s", err, out)
	} else if !strings.Contains(out, "usage: sadplint") {
		t.Fatalf("-h did not print usage:\n%s", out)
	}
	if _, err := runLint(t, "-definitely-not-a-flag"); err == nil {
		t.Fatal("bad flag should error")
	}
}
