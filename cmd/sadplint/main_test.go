package main

import (
	"strings"
	"testing"
)

// runLint is a helper returning the report text and whether findings (or
// another error) were reported.
func runLint(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

// TestFixtureFindings proves every rule fires on the seeded violation
// module under testdata, and that whitelisted or out-of-scope variants
// stay silent.
func TestFixtureFindings(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod")
	if err == nil {
		t.Fatalf("expected findings on the fixture module, got a clean run:\n%s", out)
	}
	want := []string{
		// float rule, internal/geom fixture: type names, literal, division
		// between typed operands, compound assignment with no float token
		"internal/geom/geom.go:7:22: [float] float64 in integer-grid package",
		"internal/geom/geom.go:8:9: [float] float64 in integer-grid package",
		"internal/geom/geom.go:8:20: [float] floating-point / in integer-grid package",
		"internal/geom/geom.go:13:9: [float] float literal 0.5 in integer-grid package",
		"internal/geom/geom.go:18:4: [float] floating-point += in integer-grid package",
		// panic rule
		"internal/lib/lib.go:13:2: [panic] panic in library func Explode",
		// maprange rule: unsorted append and direct write
		"internal/lib/lib.go:27:2: [maprange] slice \"out\" collects map keys/values in random order",
		"internal/lib/lib.go:46:3: [maprange] Fprintf called inside map iteration",
		// getenv rule: plain read, and the malformed-directive one
		"internal/lib/lib.go:52:9: [getenv] os.Getenv read",
		"internal/lib/lib.go:63:9: [getenv] os.Getenv read",
		// malformed directive is itself a finding
		"internal/lib/lib.go:63:40: [directive] lint:allow needs a rule name and a justification",
		// stderr rule: direct write in library code
		"internal/lib/lib.go:69:15: [stderr] os.Stderr in library code",
		// pkgdoc rule: internal/ package without a package comment
		"internal/nodoc/nodoc.go:1:9: [pkgdoc] package internal/nodoc has no package comment",
		// resultwrite rule: direct write, indexed-element write, increment
		"internal/consumer/consumer.go:9:2: [resultwrite] write through decomp.Result field SideOverlayNM",
		"internal/consumer/consumer.go:10:2: [resultwrite] write through decomp.Result field Overlays",
		"internal/consumer/consumer.go:11:2: [resultwrite] ++ through decomp.Result field SideOverlayNM",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("missing expected finding %q in output:\n%s", w, out)
		}
	}
	donts := []string{
		"geom.go:23",                // whitelisted percentage signature line
		"geom.go:25",                // whitelisted percentage body line
		"lib.go:19",                 // panic inside NewCounter is constructor validation
		"lib.go:36",                 // sorted map collection is the clean idiom
		"lib.go:57",                 // whitelisted getenv
		"lib.go:74",                 // whitelisted stderr write
		"obs.go",                    // internal/obs owns the sanctioned os.Stderr default
		"cmd/tool",                  // panic rule does not apply to commands
		"consumer.go:18",            // whitelisted resultwrite
		"internal/decomp/decomp.go", // the owning package may write Result fields
	}
	for _, d := range donts {
		if strings.Contains(out, d) {
			t.Errorf("unexpected finding mentioning %q in output:\n%s", d, out)
		}
	}
}

// TestPatternSelection lints only one fixture package and expects findings
// from the other to be absent.
func TestPatternSelection(t *testing.T) {
	out, err := runLint(t, "-dir", "testdata/mod", "./internal/geom")
	if err == nil {
		t.Fatalf("expected float findings, got clean run:\n%s", out)
	}
	if strings.Contains(out, "lib.go") {
		t.Errorf("pattern ./internal/geom leaked findings from internal/lib:\n%s", out)
	}
	if !strings.Contains(out, "geom.go") {
		t.Errorf("pattern ./internal/geom produced no geom findings:\n%s", out)
	}
}

// TestRepoIsClean is the acceptance gate: the real module lints clean.
func TestRepoIsClean(t *testing.T) {
	out, err := runLint(t, "-dir", "../..", "./...")
	if err != nil {
		t.Fatalf("sadplint must exit clean on the repo: %v\n%s", err, out)
	}
}

// TestHelpAndBadFlag covers the CLI contract used by CI.
func TestHelpAndBadFlag(t *testing.T) {
	if out, err := runLint(t, "-h"); err != nil {
		t.Fatalf("-h should succeed, got %v\n%s", err, out)
	} else if !strings.Contains(out, "usage: sadplint") {
		t.Fatalf("-h did not print usage:\n%s", out)
	}
	if _, err := runLint(t, "-definitely-not-a-flag"); err == nil {
		t.Fatal("bad flag should error")
	}
}
