package main

import "go/ast"

// This file builds a per-function control-flow graph from the go/ast of a
// function body. The CFG is the substrate for the dataflow rules
// (poolleak, the taint-mode maprange): nodes are individual statements,
// edges are possible successors, and a single synthetic exit node stands
// for every way out of the function — falling off the end, any return,
// and any explicit panic (deferred calls still run on panic, which is why
// rules treat a reached `defer` as covering panic edges too).
//
// Compound statements are decomposed so that each executable step gets
// its own node: an `if` contributes its condition (init statements get
// separate nodes), a `for` contributes init/cond/post nodes with the back
// edge through post, a `range` contributes one per-iteration binding
// node, and switch/select contribute a dispatch node fanning out to the
// clause bodies. Function literals are opaque at the enclosing function's
// nodes — their bodies are separate CFGs — except that rules may peek
// inside `defer func() { ... }()` closures deliberately.

// cfgNode is one executable step. stmt is nil only for the synthetic
// exit node.
type cfgNode struct {
	stmt  ast.Stmt
	succs []*cfgNode
}

// funcCFG is the control-flow graph of one function body. nodes holds
// every node in creation order (source order), which the rules use for
// deterministic reporting; exit is the unique sink.
type funcCFG struct {
	entry *cfgNode
	exit  *cfgNode
	nodes []*cfgNode
	preds map[*cfgNode][]*cfgNode
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	c := &funcCFG{exit: &cfgNode{}}
	b := &cfgBuilder{cfg: c, labels: map[string]*cfgNode{}}
	c.entry = b.stmts(body.List, c.exit)
	c.nodes = append(c.nodes, c.exit)
	for _, p := range b.gotos {
		if dst, ok := b.labels[p.label]; ok {
			p.node.succs = append(p.node.succs, dst)
		} else {
			p.node.succs = append(p.node.succs, c.exit)
		}
	}
	c.preds = map[*cfgNode][]*cfgNode{}
	for _, n := range c.nodes {
		for _, s := range n.succs {
			c.preds[s] = append(c.preds[s], n)
		}
	}
	return c
}

// loopTarget is one enclosing breakable/continuable construct.
type loopTarget struct {
	label    string
	breakDst *cfgNode
	contDst  *cfgNode // nil for switch/select (not continuable)
}

type gotoPatch struct {
	node  *cfgNode
	label string
}

type cfgBuilder struct {
	cfg    *funcCFG
	loops  []loopTarget
	labels map[string]*cfgNode
	gotos  []gotoPatch
	// pendingLabel names the label attached to the next loop/switch built,
	// so `break L` / `continue L` can resolve to it.
	pendingLabel string
	// fallthroughDst is the entry of the next case body while building a
	// switch clause.
	fallthroughDst *cfgNode
}

func (b *cfgBuilder) newNode(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.cfg.nodes = append(b.cfg.nodes, n)
	return n
}

// stmts builds the list back to front so each statement knows its
// successor, returning the entry of the list (next when empty).
func (b *cfgBuilder) stmts(list []ast.Stmt, next *cfgNode) *cfgNode {
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next)
	}
	return next
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue to its destination node.
func (b *cfgBuilder) findTarget(label string, cont bool) *cfgNode {
	for i := len(b.loops) - 1; i >= 0; i-- {
		t := b.loops[i]
		if cont && t.contDst == nil {
			continue
		}
		if label == "" || t.label == label {
			if cont {
				return t.contDst
			}
			return t.breakDst
		}
	}
	return b.cfg.exit
}

// stmt builds the subgraph for one statement and returns its entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, next *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, next)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		entry := b.stmt(s.Stmt, next)
		b.pendingLabel = ""
		b.labels[s.Label.Name] = entry
		return entry

	case *ast.ReturnStmt:
		n := b.newNode(s)
		n.succs = []*cfgNode{b.cfg.exit}
		return n

	case *ast.BranchStmt:
		n := b.newNode(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			n.succs = []*cfgNode{b.findTarget(label, false)}
		case "continue":
			n.succs = []*cfgNode{b.findTarget(label, true)}
		case "goto":
			b.gotos = append(b.gotos, gotoPatch{n, label})
		case "fallthrough":
			dst := b.fallthroughDst
			if dst == nil {
				dst = next
			}
			n.succs = []*cfgNode{dst}
		}
		return n

	case *ast.IfStmt:
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next)
		}
		thenEntry := b.stmts(s.Body.List, next)
		cond := b.newNode(s)
		cond.succs = []*cfgNode{thenEntry, elseEntry}
		if s.Init != nil {
			init := b.newNode(s.Init)
			init.succs = []*cfgNode{cond}
			return init
		}
		return cond

	case *ast.ForStmt:
		label := b.takeLabel()
		cond := b.newNode(s)
		post := cond
		if s.Post != nil {
			post = b.newNode(s.Post)
			post.succs = []*cfgNode{cond}
		}
		b.loops = append(b.loops, loopTarget{label: label, breakDst: next, contDst: post})
		bodyEntry := b.stmts(s.Body.List, post)
		b.loops = b.loops[:len(b.loops)-1]
		if s.Cond != nil {
			cond.succs = []*cfgNode{bodyEntry, next}
		} else {
			cond.succs = []*cfgNode{bodyEntry} // for{}: leave only via break
		}
		if s.Init != nil {
			init := b.newNode(s.Init)
			init.succs = []*cfgNode{cond}
			return init
		}
		return cond

	case *ast.RangeStmt:
		label := b.takeLabel()
		rn := b.newNode(s)
		b.loops = append(b.loops, loopTarget{label: label, breakDst: next, contDst: rn})
		bodyEntry := b.stmts(s.Body.List, rn)
		b.loops = b.loops[:len(b.loops)-1]
		rn.succs = []*cfgNode{bodyEntry, next}
		return rn

	case *ast.SwitchStmt:
		entry := b.switchClauses(s, s.Body.List, next, true)
		if s.Init != nil {
			init := b.newNode(s.Init)
			init.succs = []*cfgNode{entry}
			return init
		}
		return entry

	case *ast.TypeSwitchStmt:
		entry := b.switchClauses(s, s.Body.List, next, false)
		if s.Init != nil {
			init := b.newNode(s.Init)
			init.succs = []*cfgNode{entry}
			return init
		}
		return entry

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.newNode(s)
		b.loops = append(b.loops, loopTarget{label: label, breakDst: next})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			bodyEntry := b.stmts(comm.Body, next)
			if comm.Comm != nil {
				bodyEntry = b.stmt(comm.Comm, bodyEntry)
			}
			sel.succs = append(sel.succs, bodyEntry)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(sel.succs) == 0 {
			sel.succs = []*cfgNode{b.cfg.exit} // empty select blocks forever
		}
		return sel

	default:
		// Plain statements: assignments, expressions, declarations, defer,
		// go, send, inc/dec, empty. An explicit panic or process exit does
		// not fall through.
		n := b.newNode(s)
		if isTerminalCall(s) {
			n.succs = []*cfgNode{b.cfg.exit}
		} else {
			n.succs = []*cfgNode{next}
		}
		return n
	}
}

// switchClauses builds the dispatch node and clause bodies of a (type)
// switch. Clauses are built back to front so fallthrough can target the
// following clause's body.
func (b *cfgBuilder) switchClauses(s ast.Stmt, clauses []ast.Stmt, next *cfgNode, allowFall bool) *cfgNode {
	label := b.takeLabel()
	disp := b.newNode(s)
	b.loops = append(b.loops, loopTarget{label: label, breakDst: next})
	hasDefault := false
	savedFall := b.fallthroughDst
	entries := make([]*cfgNode, len(clauses))
	follow := next
	for i := len(clauses) - 1; i >= 0; i-- {
		cc := clauses[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if allowFall {
			b.fallthroughDst = follow
		}
		entries[i] = b.stmts(cc.Body, next)
		follow = entries[i]
	}
	b.fallthroughDst = savedFall
	b.loops = b.loops[:len(b.loops)-1]
	disp.succs = append(disp.succs, entries...)
	if !hasDefault {
		disp.succs = append(disp.succs, next)
	}
	return disp
}

// isTerminalCall reports whether a plain statement never falls through:
// an explicit panic(...) or os.Exit(...) call.
func isTerminalCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
	}
	return false
}

// localInspect visits the expressions that are evaluated at node n's own
// step, pruning nested statements that own separate CFG nodes and the
// bodies of function literals (which execute elsewhere).
func localInspect(s ast.Stmt, fn func(ast.Node) bool) {
	if s == nil {
		return
	}
	visit := func(n ast.Node) {
		if n != nil {
			ast.Inspect(n, pruneFuncLit(fn))
		}
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		visit(s.Cond)
	case *ast.ForStmt:
		visit(s.Cond)
	case *ast.RangeStmt:
		visit(s.X)
		visit(s.Key)
		visit(s.Value)
	case *ast.SwitchStmt:
		visit(s.Tag)
	case *ast.TypeSwitchStmt:
		visit(s.Assign)
	case *ast.SelectStmt, *ast.BlockStmt, *ast.LabeledStmt, *ast.CaseClause, *ast.CommClause:
		// nothing executes at these beyond what nested nodes own
	default:
		visit(s)
	}
}

// pruneFuncLit wraps an inspector so it never descends into function
// literal bodies.
func pruneFuncLit(fn func(ast.Node) bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	}
}

// funcBodies collects every function body in a file — declarations and
// literals — each of which gets its own CFG and dataflow run.
func funcBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		}
		return true
	})
	return out
}
