package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// lintPkg is one parsed and type-checked package of the module under lint.
type lintPkg struct {
	importPath string
	relDir     string // slash-separated dir relative to the module root ("." for root)
	files      []*ast.File
	info       *types.Info
	tpkg       *types.Package
}

// loader parses every non-test Go file under a module root and type-checks
// the packages in dependency order, so intra-module imports resolve to real
// packages and expression types (maps, floats) are available to the rules.
//
// Type checking is deliberately lenient: standard-library imports come from
// a source importer and degrade to empty placeholder packages when they
// cannot be loaded, and type errors are ignored. The rules only need
// partial type information; the compiler remains the authority on validity.
type loader struct {
	fset     *token.FileSet
	root     string
	module   string
	pkgs     map[string]*lintPkg // by import path
	std      types.Importer
	fallback map[string]*types.Package
	checking map[string]bool
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:     token.NewFileSet(),
		root:     abs,
		module:   mod,
		pkgs:     make(map[string]*lintPkg),
		fallback: make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	if err := l.parseAll(); err != nil {
		return nil, err
	}
	for _, p := range l.sorted() {
		l.check(p)
	}
	return l, nil
}

// modulePath reads the module declaration out of root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module declaration in %s/go.mod", root)
}

// parseAll walks the module tree and parses every non-test Go file,
// grouping files into packages by directory. testdata, vendor, and hidden
// directories are skipped, matching the go tool's convention.
func (l *loader) parseAll() error {
	return filepath.WalkDir(l.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		ip := l.module
		if rel != "." {
			ip = l.module + "/" + rel
		}
		p := l.pkgs[ip]
		if p == nil {
			p = &lintPkg{importPath: ip, relDir: rel}
			l.pkgs[ip] = p
		}
		p.files = append(p.files, file)
		return nil
	})
}

func (l *loader) sorted() []*lintPkg {
	out := make([]*lintPkg, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].importPath < out[j].importPath })
	return out
}

// check type-checks p, recursively checking intra-module dependencies
// first. Cycles (illegal in Go anyway) fall back to placeholder packages.
func (l *loader) check(p *lintPkg) {
	if p.tpkg != nil || l.checking[p.importPath] {
		return
	}
	l.checking[p.importPath] = true
	defer func() { l.checking[p.importPath] = false }()
	for _, f := range p.files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if dep, ok := l.pkgs[ip]; ok {
				l.check(dep)
			}
		}
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(error) {}, // lenient: partial info is enough
	}
	tpkg, _ := conf.Check(p.importPath, l.fset, p.files, info)
	p.tpkg, p.info = tpkg, info
}

// importPkg resolves an import for the type checker: intra-module packages
// come from the loader itself, everything else from the source importer,
// degrading to an empty placeholder so checking always proceeds.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dep, ok := l.pkgs[path]; ok {
		l.check(dep)
		if dep.tpkg != nil {
			return dep.tpkg, nil
		}
	}
	if l.std != nil {
		if tp, err := l.std.Import(path); err == nil && tp != nil {
			return tp, nil
		}
	}
	if tp, ok := l.fallback[path]; ok {
		return tp, nil
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	tp := types.NewPackage(path, base)
	tp.MarkComplete()
	l.fallback[path] = tp
	return tp, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// match reports whether the package's directory matches a command-line
// pattern: "./..." selects everything, "./x/..." selects a subtree, and
// "./x" or "x" selects one directory.
func (p *lintPkg) match(pattern string) bool {
	pat := strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return p.relDir == sub || strings.HasPrefix(p.relDir, sub+"/")
	}
	return p.relDir == pat
}
