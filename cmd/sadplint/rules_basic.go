package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The syntactic rules: violations visible from a single expression or
// declaration, no control-flow reasoning needed. Each registers itself
// with the engine in rule.go; the dataflow rules live in their own files.

const (
	ruleFloat  = "float"  // floating point in integer-grid geometry packages
	rulePanic  = "panic"  // panic in library code outside constructor validation
	ruleGetenv = "getenv" // undocumented environment-variable read
	ruleStderr = "stderr" // direct os.Stderr write in library code
	rulePkgDoc = "pkgdoc" // internal/ package without a package comment
)

// floatPkgs are the packages where the paper's integer-grid model forbids
// floating point entirely; every exception needs an explicit whitelist.
var floatPkgs = map[string]bool{
	"internal/geom":   true,
	"internal/decomp": true,
	"internal/grid":   true,
}

func init() {
	register(ruleDef{
		name: ruleGetenv,
		doc:  "os.Getenv/os.LookupEnv reads must be documented and whitelisted",
		file: checkGetenv,
	})
	register(ruleDef{
		name: rulePanic,
		doc:  "no panic in library packages outside New*/Must* constructor validation",
		file: checkPanic,
	})
	register(ruleDef{
		name: ruleStderr,
		doc:  "no direct os.Stderr references in internal/ (diagnostics go through internal/obs)",
		file: checkStderr,
	})
	register(ruleDef{
		name: ruleFloat,
		doc:  "no floating point in the integer-grid packages (geom, decomp, grid)",
		file: checkFloat,
	})
	register(ruleDef{
		name: rulePkgDoc,
		doc:  "every internal/ package opens with a package comment (not suppressible)",
		pkg:  checkPkgDoc,
	})
}

// checkPkgDoc enforces the ARCHITECTURE.md contract that every internal/
// package opens with a package comment stating its role (and, where one
// exists, the paper section it implements). The finding anchors at the
// package clause of the package's first file and — being a package-level
// property, not a line-level one — cannot be suppressed with lint:allow.
func checkPkgDoc(l *loader, p *lintPkg) []finding {
	if !strings.HasPrefix(p.relDir, "internal/") || len(p.files) == 0 {
		return nil
	}
	for _, file := range p.files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			return nil
		}
	}
	return []finding{{
		pos:  l.fset.Position(p.files[0].Name.Pos()),
		rule: rulePkgDoc,
		msg:  fmt.Sprintf("package %s has no package comment; document its role and paper section", p.relDir),
	}}
}

// checkGetenv flags every os.Getenv / os.LookupEnv call: hidden behavior
// switches must be documented, which the whitelist justification records.
func checkGetenv(c *pass) {
	ast.Inspect(c.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "os" {
			return true
		}
		if sel.Sel.Name == "Getenv" || sel.Sel.Name == "LookupEnv" {
			c.report(sel.Pos(), ruleGetenv,
				"os.%s read: environment switches must be documented and whitelisted", sel.Sel.Name)
		}
		return true
	})
}

// checkStderr flags os.Stderr references in library packages (internal/...):
// diagnostics must flow through the internal/obs recorder so callers control
// the destination and tests can capture it. internal/obs itself is exempt —
// it holds the one sanctioned os.Stderr default (Recorder.EnsureDebug).
func checkStderr(c *pass) {
	if !c.inInternal() || c.p.relDir == "internal/obs" {
		return
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "os" || sel.Sel.Name != "Stderr" {
			return true
		}
		c.report(sel.Pos(), ruleStderr,
			"os.Stderr in library code: route diagnostics through internal/obs (Recorder.Debugf / trace events)")
		return true
	})
}

// checkPanic flags panic calls in library packages (internal/...). Panics
// guarding constructor arguments (functions named New* or Must*) are the
// one accepted idiom.
func checkPanic(c *pass) {
	if !c.inInternal() {
		return
	}
	for _, decl := range c.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "Must") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				c.report(call.Pos(), rulePanic,
					"panic in library func %s: return an error instead", fd.Name.Name)
			}
			return true
		})
	}
}

// checkFloat flags floating point in the integer-grid packages: float
// literals, float type names, and arithmetic whose operands type-check as
// floating point (catching float struct fields combined without any float
// token on the line).
func checkFloat(c *pass) {
	if !floatPkgs[c.p.relDir] {
		return
	}
	isFloat := func(t types.Type) bool {
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.FLOAT || n.Kind == token.IMAG {
				c.report(n.Pos(), ruleFloat, "float literal %s in integer-grid package", n.Value)
			}
		case *ast.Ident:
			switch n.Name {
			case "float32", "float64", "complex64", "complex128":
				c.report(n.Pos(), ruleFloat, "%s in integer-grid package", n.Name)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat(c.typeOf(n.X)) || isFloat(c.typeOf(n.Y)) {
					c.report(n.OpPos, ruleFloat, "floating-point %s in integer-grid package", n.Op)
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloat(c.typeOf(n.Lhs[0])) {
					c.report(n.TokPos, ruleFloat, "floating-point %s in integer-grid package", n.Tok)
				}
			}
		}
		return true
	})
}
