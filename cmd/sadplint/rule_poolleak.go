package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolleak: every pool handle acquired into a local variable must reach a
// Release on ALL control-flow paths out of the function. The pooled
// engines (internal/astar, internal/decomp — any internal package whose
// Acquire the call resolves to) back long-lived servers: a handle that
// escapes the pool on even one early-return path is a slow starvation
// leak that no test catches until sadpd has been up for a week.
//
// The analysis is an intraprocedural forward may-analysis over the
// function CFG: an Acquire into a local generates an "open" fact; the
// fact is killed by
//
//   - v.Release() executed on the path,
//   - defer v.Release() (or a defer closure that calls v.Release())
//     executed on the path — defers also run on panic, so a reached defer
//     covers the panic edges, which is why it is the preferred idiom, and
//   - ownership transfer: v stored into a field/element/another variable,
//     passed as a call argument, returned, sent on a channel, or captured
//     by a non-defer closure. Transfer ends intraprocedural tracking; the
//     new owner's path is its own function's problem. A plain receiver
//     use — v.Compute(), including `return v.Compute()` — is NOT a
//     transfer: only the method's result leaves the function.
//
// Acquires assigned directly into fields or elements (c.eng =
// astar.Acquire(g)) are ownership transfers at birth and are not tracked.
// A handle still open on any path into the exit node — including paths
// through explicit panic(...) statements with no defer registered — is
// reported at its Acquire site.

const rulePoolLeak = "poolleak"

func init() {
	register(ruleDef{
		name: rulePoolLeak,
		doc:  "pool Acquire results must be Released on every path (defer or all return/panic edges)",
		file: checkPoolLeak,
	})
}

func checkPoolLeak(c *pass) {
	for _, body := range funcBodies(c.file) {
		checkPoolLeakFunc(c, body)
	}
}

// tracked is one local pool handle under analysis.
type trackedHandle struct {
	obj types.Object
	pos token.Pos // the Acquire call, where a leak is reported
}

func checkPoolLeakFunc(c *pass, body *ast.BlockStmt) {
	// First sweep: find Acquire-into-local sites. No sites, no CFG.
	var handles []trackedHandle
	ids := map[types.Object]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals get their own run
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) || !c.isPoolAcquire(call) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue // field/element target: ownership transfer at birth
			}
			obj := c.objectOf(id)
			if obj == nil {
				continue
			}
			if _, seen := ids[obj]; !seen {
				ids[obj] = len(handles)
				handles = append(handles, trackedHandle{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	cfg := c.cfgFor(body)
	transfer := func(n *cfgNode, in idset) idset {
		out := in
		gen := func(id int) {
			if !out.has(id) {
				out = out.clone()
				out[id] = struct{}{}
			}
		}
		kill := func(id int) {
			if out.has(id) {
				out = out.clone()
				delete(out, id)
			}
		}
		// Defer statements: a defer that releases (or captures) the handle
		// kills the fact at the point the defer is registered.
		if ds, ok := n.stmt.(*ast.DeferStmt); ok {
			for obj, id := range ids {
				if deferReleases(c, ds, obj) || exprMentionsObj(c, ds.Call, obj) {
					kill(id)
				}
			}
			return out
		}
		localInspect(n.stmt, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if ok && i < len(x.Lhs) && c.isPoolAcquire(call) {
						if lid, lok := ast.Unparen(x.Lhs[i]).(*ast.Ident); lok {
							if id, tracked := ids[c.objectOf(lid)]; tracked {
								gen(id)
								continue
							}
						}
					}
					// Any other RHS mentioning a handle — outside a plain
					// receiver position — is an alias / transfer: tracking
					// ends. `x := v.Compute()` keeps v tracked.
					for obj, id := range ids {
						if escapesObj(c, rhs, obj) {
							kill(id)
						}
					}
				}
			case *ast.CallExpr:
				// v.Release() kills; v.Method() is a plain receiver use;
				// v passed as an argument is a transfer.
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if rid, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if id, tracked := ids[c.objectOf(rid)]; tracked {
							if sel.Sel.Name == "Release" {
								kill(id)
							}
							// receiver use: fall through to scan args only
							for _, arg := range x.Args {
								for obj, aid := range ids {
									if escapesObj(c, arg, obj) {
										kill(aid)
									}
								}
							}
							return false
						}
					}
				}
				for _, arg := range x.Args {
					for obj, id := range ids {
						if escapesObj(c, arg, obj) {
							kill(id)
						}
					}
				}
				return false // args handled; don't rescan idents below
			case *ast.ReturnStmt:
				// `return v` transfers ownership; `return v.Compute()`
				// does not — only the method's result leaves.
				for _, res := range x.Results {
					for obj, id := range ids {
						if escapesObj(c, res, obj) {
							kill(id)
						}
					}
				}
			case *ast.SendStmt:
				for obj, id := range ids {
					if escapesObj(c, x.Value, obj) {
						kill(id)
					}
				}
			case *ast.FuncLit:
				// non-defer closure capturing the handle: transfer.
				for obj, id := range ids {
					if exprMentionsObj(c, x, obj) {
						kill(id)
					}
				}
				return false
			case *ast.CompositeLit:
				for obj, id := range ids {
					if exprMentionsObj(c, x, obj) {
						kill(id)
					}
				}
				return false
			}
			return true
		})
		return out
	}

	in := forwardFlow(cfg, transfer)
	open := in[cfg.exit]
	for i, h := range handles {
		if open.has(i) {
			c.report(h.pos, rulePoolLeak,
				"pool handle %s acquired here is not Released on every path (defer %s.Release() or release on all return/panic edges)",
				h.obj.Name(), h.obj.Name())
		}
	}
}

// deferReleases reports whether a defer statement releases obj: either
// `defer obj.Release()` directly or a deferred closure whose body calls
// obj.Release().
func deferReleases(c *pass, ds *ast.DeferStmt, obj types.Object) bool {
	if isReleaseCall(c, ds.Call, obj) {
		return true
	}
	lit, ok := ds.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(c, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseCall reports whether call is obj.Release() (or releases every
// element of a slice range whose expression is obj — the pooled-worker
// loop idiom is handled by the closure scan in deferReleases).
func isReleaseCall(c *pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.objectOf(id) == obj
}

// isPoolAcquire reports whether the call resolves to a function named
// Acquire declared in an internal/ package of this module (the pooled
// engines: internal/astar, internal/decomp, and any future oracle pool).
// Falls back to the syntactic astar.Acquire / decomp.Acquire shapes when
// type information is unavailable.
func (c *pass) isPoolAcquire(call *ast.CallExpr) bool {
	if fn := c.calleeFunc(call); fn != nil {
		if fn.Name() != "Acquire" || fn.Pkg() == nil {
			return false
		}
		path := fn.Pkg().Path()
		return strings.Contains(path, "internal/") || strings.HasPrefix(path, "internal/")
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && fun.Sel.Name == "Acquire" {
			return id.Name == "astar" || id.Name == "decomp"
		}
	case *ast.Ident:
		return fun.Name == "Acquire" && strings.HasSuffix(c.p.relDir, "decomp")
	}
	return false
}

// escapesObj reports whether the expression tree mentions obj anywhere
// except as the bare receiver of a method call: `v.Compute()` does not
// escape v, while `v`, `f(v)`, `&v`, `v.field`, and `S{h: v}` all do.
func escapesObj(c *pass, e ast.Node, obj types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	skip := map[ast.Node]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if found || skip[n] {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.objectOf(id) == obj {
					skip[sel] = true // receiver position: not an escape
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && c.objectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprMentionsObj reports whether the expression tree mentions obj as a
// bare identifier anywhere, receiver positions included (used for defer
// and closure-capture scans, where any capture matters).
func exprMentionsObj(c *pass, e ast.Node, obj types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.objectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
