// Command sadplint is the repo's custom static-analysis pass. It encodes
// invariants the Go compiler cannot check, as self-registering rules over
// a shared type-checked loader, per-function control-flow graphs, and a
// small intraprocedural dataflow framework (see rule.go, cfg.go,
// dataflow.go). The full catalogue with examples lives in
// docs/lint-rules.md; in brief:
//
//   - maprange: map-range-derived values must not reach appends or
//     ordered output (fmt print families, Write*, obs Trace/Debugf)
//     without an intervening sort — a taint-style dataflow check.
//   - poolleak: pool handles (astar.Acquire, decomp.Acquire, any
//     internal Acquire) bound to locals must reach a Release on every
//     CFG path: defer, or a release on all return/panic edges.
//   - wallclock: no time.Now/Since/Sleep/... reads and no math/rand in
//     internal/ — the determinism contract behind the byte-identical
//     trace and table guarantees.
//   - goroutine: `go` statements in internal/ only inside the blessed
//     worker pools (internal/sched, internal/bench).
//   - immutable: no writes through fields of `//sadp:immutable`-marked
//     types outside their home package (the memo-cache sharing contract;
//     generalizes the former resultwrite rule).
//   - float: no floating point in internal/geom, internal/decomp,
//     internal/grid — the paper's model is integer-grid.
//   - panic: no panic in library packages (internal/...) outside
//     constructor validation (New*/Must*).
//   - getenv: no undocumented os.Getenv/os.LookupEnv reads.
//   - stderr: no direct os.Stderr references in library packages;
//     internal/obs, which owns the sanctioned default, is exempt.
//   - pkgdoc: every internal/ package must open with a package comment.
//     Package-level; not suppressible.
//
// A finding is suppressed by a `//lint:allow <rule> <justification>`
// comment on the same line or the line above; the justification is
// mandatory and an unknown rule name is itself a finding. Built entirely
// on the standard library (go/parser, go/ast, go/token, go/types).
//
// Usage:
//
//	sadplint [-dir moduleRoot] [-json|-github] [patterns...]   # default pattern ./...
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errFindings) {
			fmt.Fprintln(os.Stderr, "sadplint:", err)
		}
		os.Exit(1)
	}
}

// errFindings marks a run that completed but reported findings.
var errFindings = errors.New("findings reported")

// jsonFinding is the stable machine-readable schema of one finding. The
// field set (file/line/col/rule/msg) is a compatibility contract: tools
// may add fields but never rename or remove these.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sadplint", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", ".", "module root directory to lint")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (stable schema: file/line/col/rule/msg)")
	asGitHub := fs.Bool("github", false, "emit findings as GitHub Actions error annotations")
	fs.Usage = func() {
		fmt.Fprintln(stdout, "usage: sadplint [-dir moduleRoot] [-json|-github] [patterns...]")
		fmt.Fprintln(stdout, "patterns default to ./...; e.g. ./internal/... or ./internal/decomp")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *asJSON && *asGitHub {
		return errors.New("-json and -github are mutually exclusive")
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := newLoader(*dir)
	if err != nil {
		return err
	}
	findings := lintModule(l, patterns)
	switch {
	case *asJSON:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.pos.Filename, Line: f.pos.Line, Col: f.pos.Column,
				Rule: f.rule, Msg: f.msg,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	case *asGitHub:
		for _, f := range findings {
			// https://docs.github.com/actions/reference/workflow-commands
			// Annotation messages must keep %, \r, \n escaped.
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=sadplint %s::%s\n",
				f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, githubEscape(f.msg))
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if n := len(findings); n > 0 {
		return fmt.Errorf("%d %w", n, errFindings)
	}
	return nil
}

// githubEscape escapes a message for the workflow-command data section.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
