// Command sadplint is the repo's custom static-analysis pass. It encodes
// invariants the Go compiler cannot check:
//
//   - maprange: no `for range` over a map feeding ordered output (slice
//     appends never sorted, or direct formatted writes) — map order is
//     random per run, the exact nondeterminism class that breaks
//     resumable/parallel routing.
//   - float: no floating point in internal/geom, internal/decomp,
//     internal/grid — the paper's model is integer-grid.
//   - panic: no panic in library packages (internal/...) outside
//     constructor validation (New*/Must*).
//   - getenv: no undocumented os.Getenv/os.LookupEnv reads.
//   - stderr: no direct os.Stderr references in library packages
//     (internal/...) — diagnostics flow through the internal/obs recorder;
//     internal/obs itself, which owns the sanctioned default, is exempt.
//   - pkgdoc: every internal/ package must open with a package comment
//     stating its role (and paper section where one applies) — the
//     contract behind ARCHITECTURE.md. Package-level; not suppressible.
//   - resultwrite: no writes through decomp.Result fields outside
//     internal/decomp — the decomposition memo cache shares one *Result
//     among every caller asking about the same layout, so consumers must
//     treat Results as immutable (clone first to mutate).
//
// A finding is suppressed by a `//lint:allow <rule> <justification>`
// comment on the same line or the line above; the justification is
// mandatory. Built entirely on the standard library (go/parser, go/ast,
// go/token, go/types).
//
// Usage:
//
//	sadplint [-dir moduleRoot] [patterns...]   # default pattern ./...
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errFindings) {
			fmt.Fprintln(os.Stderr, "sadplint:", err)
		}
		os.Exit(1)
	}
}

// errFindings marks a run that completed but reported findings.
var errFindings = errors.New("findings reported")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sadplint", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", ".", "module root directory to lint")
	fs.Usage = func() {
		fmt.Fprintln(stdout, "usage: sadplint [-dir moduleRoot] [patterns...]")
		fmt.Fprintln(stdout, "patterns default to ./...; e.g. ./internal/... or ./internal/decomp")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := newLoader(*dir)
	if err != nil {
		return err
	}
	findings := lintModule(l, patterns)
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if n := len(findings); n > 0 {
		return fmt.Errorf("%d %w", n, errFindings)
	}
	return nil
}
