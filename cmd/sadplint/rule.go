package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The rule engine. Every rule is a self-registering pass: its file calls
// register() from init() with a name, a one-line doc string, and a file-
// and/or package-level run function. The engine owns everything shared —
// loading, the `//lint:allow` directive index, the `//sadp:immutable`
// marker table, CFG construction and caching — so a rule is only its
// domain logic. docs/lint-rules.md catalogues the rules themselves.

// finding is one reported violation.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, f.msg)
}

// ruleDef describes one registered rule.
type ruleDef struct {
	name string
	doc  string
	// file runs once per file of every selected package.
	file func(*pass)
	// pkg runs once per selected package (for package-level properties
	// like pkgdoc that no single line owns).
	pkg func(l *loader, p *lintPkg) []finding
}

var registry []ruleDef

func register(r ruleDef) { registry = append(registry, r) }

// ruleDirective names the pseudo-rule for malformed or unknown lint
// directives; it is not registered (a broken directive must not be able
// to suppress itself).
const ruleDirective = "directive"

// knownRules returns the set of names valid in a lint:allow directive.
func knownRules() map[string]bool {
	out := make(map[string]bool, len(registry))
	for _, r := range registry {
		out[r.name] = true
	}
	return out
}

// typeKey identifies a named type across the module.
type typeKey struct {
	pkgPath string
	name    string
}

// markerTable is the module-wide result of the marker pre-pass: types
// whose declarations carry a `//sadp:immutable` doc-comment line.
type markerTable struct {
	immutable map[typeKey]bool
}

// lintModule runs every registered rule over the packages selected by
// patterns and returns the surviving findings sorted by position. Markers
// are collected from ALL packages first, so a rule can see a marked type
// declared in a package the patterns did not select.
func lintModule(l *loader, patterns []string) []finding {
	sort.Slice(registry, func(i, j int) bool { return registry[i].name < registry[j].name })
	markers := collectMarkers(l)
	known := knownRules()
	var out []finding
	for _, p := range l.sorted() {
		selected := false
		for _, pat := range patterns {
			if p.match(pat) {
				selected = true
				break
			}
		}
		if !selected {
			continue
		}
		for _, file := range p.files {
			out = append(out, lintFile(l, p, file, markers, known)...)
		}
		for _, r := range registry {
			if r.pkg != nil {
				out = append(out, r.pkg(l, p)...)
			}
		}
	}
	for i := range out {
		if rel, err := filepath.Rel(l.root, out[i].pos.Filename); err == nil {
			out[i].pos.Filename = filepath.ToSlash(rel)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.rule < b.rule
	})
	return out
}

// collectMarkers scans every package for `//sadp:immutable` lines in type
// declaration doc comments. The marker claims the type's values are
// shared after publication: writes through their fields outside the home
// package trip the immutable rule.
func collectMarkers(l *loader) *markerTable {
	m := &markerTable{immutable: map[typeKey]bool{}}
	for _, p := range l.sorted() {
		for _, file := range p.files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasMarker(gd.Doc, "sadp:immutable") || hasMarker(ts.Doc, "sadp:immutable") ||
						hasMarker(ts.Comment, "sadp:immutable") {
						m.immutable[typeKey{p.importPath, ts.Name.Name}] = true
					}
				}
			}
		}
	}
	return m
}

// hasMarker reports whether a comment group contains a `//<marker>` line
// (optionally followed by explanatory text after whitespace). Like Go's
// own directives, the marker must follow `//` immediately: `// sadp:...`
// with a space is prose, not a directive.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, cm := range cg.List {
		text, ok := strings.CutPrefix(cm.Text, "//"+marker)
		if !ok {
			continue
		}
		if text == "" || text[0] == ' ' || text[0] == '\t' {
			return true
		}
	}
	return false
}

// lintFile runs every file-level rule over one file and filters the
// findings through the lint:allow directives.
func lintFile(l *loader, p *lintPkg, file *ast.File, markers *markerTable, known map[string]bool) []finding {
	ps := &pass{
		l:       l,
		p:       p,
		file:    file,
		markers: markers,
		allow:   map[int]map[string]bool{},
		cfgs:    map[*ast.BlockStmt]*funcCFG{},
	}
	ps.collectDirectives(known)
	for _, r := range registry {
		if r.file != nil {
			r.file(ps)
		}
	}
	var kept []finding
	for _, f := range ps.findings {
		if f.rule != ruleDirective && (ps.allow[f.pos.Line][f.rule] || ps.allow[f.pos.Line-1][f.rule]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// pass is the per-file context handed to every file-level rule.
type pass struct {
	l        *loader
	p        *lintPkg
	file     *ast.File
	markers  *markerTable
	allow    map[int]map[string]bool // line -> rules allowed on that line
	findings []finding
	cfgs     map[*ast.BlockStmt]*funcCFG // shared CFG cache across rules
}

func (c *pass) report(pos token.Pos, rule, format string, args ...any) {
	c.findings = append(c.findings, finding{
		pos:  c.l.fset.Position(pos),
		rule: rule,
		msg:  fmt.Sprintf(format, args...),
	})
}

// inInternal reports whether the file's package is a library package
// (under internal/), where the library-only rules apply.
func (c *pass) inInternal() bool {
	return strings.HasPrefix(c.p.relDir, "internal/") || c.p.relDir == "internal"
}

// cfgFor returns the (cached) CFG of a function body.
func (c *pass) cfgFor(body *ast.BlockStmt) *funcCFG {
	if g, ok := c.cfgs[body]; ok {
		return g
	}
	g := buildCFG(body)
	c.cfgs[body] = g
	return g
}

// typeOf returns the checked type of e, or nil when type checking could
// not resolve it.
func (c *pass) typeOf(e ast.Expr) types.Type {
	if c.p.info == nil {
		return nil
	}
	if tv, ok := c.p.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objectOf resolves an identifier to its declared or used object, or nil.
func (c *pass) objectOf(id *ast.Ident) types.Object {
	if c.p.info == nil {
		return nil
	}
	if o := c.p.info.Defs[id]; o != nil {
		return o
	}
	return c.p.info.Uses[id]
}

// calleeFunc resolves a call expression's callee to a *types.Func (direct
// calls and method calls), or nil for indirect/unresolved calls.
func (c *pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.objectOf(id).(*types.Func)
	return fn
}

// collectDirectives indexes `//lint:allow <rule> <justification>` comments
// by line. A directive with no rule, an unknown rule name, or no
// justification is itself a finding and suppresses nothing.
func (c *pass) collectDirectives(known map[string]bool) {
	for _, cg := range c.file.Comments {
		for _, cm := range cg.List {
			rest, ok := strings.CutPrefix(cm.Text, "//lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				c.report(cm.Pos(), ruleDirective,
					"lint:allow needs a rule name and a justification: //lint:allow <rule> <why>")
				continue
			}
			if !known[fields[0]] {
				c.report(cm.Pos(), ruleDirective,
					"lint:allow names unknown rule %q (see docs/lint-rules.md for the catalogue)", fields[0])
				continue
			}
			line := c.l.fset.Position(cm.Pos()).Line
			if c.allow[line] == nil {
				c.allow[line] = map[string]bool{}
			}
			c.allow[line][fields[0]] = true
		}
	}
}
