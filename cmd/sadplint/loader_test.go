package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestModulePathErrors(t *testing.T) {
	if _, err := modulePath(t.TempDir()); err == nil {
		t.Error("missing go.mod should error")
	}
	root := writeModule(t, map[string]string{"go.mod": "go 1.22\n"})
	if _, err := modulePath(root); err == nil || !strings.Contains(err.Error(), "no module declaration") {
		t.Errorf("go.mod without module line: got %v", err)
	}
	root = writeModule(t, map[string]string{"go.mod": "module  example.com/m \n\ngo 1.22\n"})
	if mod, err := modulePath(root); err != nil || mod != "example.com/m" {
		t.Errorf("modulePath = %q, %v", mod, err)
	}
}

func TestLoaderSkipsAndGroups(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                 "module example.com/m\n",
		"main.go":                "package main\nfunc main() {}\n",
		"main_test.go":           "package main\nbroken {{{", // _test.go files are never parsed
		"internal/a/a.go":        "// Package a.\npackage a\nfunc A() int { return 1 }\n",
		"internal/a/a2.go":       "package a\nfunc A2() int { return A() }\n",
		"testdata/bad.go":        "not go at all",
		"internal/.hid/h.go":     "also not go",
		"internal/_skip/s.go":    "also not go",
		"internal/a/vendor/v.go": "also not go",
	})
	l, err := newLoader(root)
	if err != nil {
		t.Fatalf("newLoader: %v", err)
	}
	if l.module != "example.com/m" {
		t.Errorf("module = %q", l.module)
	}
	wantPkgs := map[string]string{
		"example.com/m":            ".",
		"example.com/m/internal/a": "internal/a",
	}
	if len(l.pkgs) != len(wantPkgs) {
		t.Errorf("loaded %d packages, want %d: %v", len(l.pkgs), len(wantPkgs), l.pkgs)
	}
	for ip, rel := range wantPkgs {
		p := l.pkgs[ip]
		if p == nil {
			t.Errorf("package %q not loaded", ip)
			continue
		}
		if p.relDir != rel {
			t.Errorf("package %q relDir = %q, want %q", ip, p.relDir, rel)
		}
		if p.tpkg == nil || p.info == nil {
			t.Errorf("package %q not type-checked", ip)
		}
	}
	if p := l.pkgs["example.com/m/internal/a"]; p != nil && len(p.files) != 2 {
		t.Errorf("internal/a grouped %d files, want 2", len(p.files))
	}
}

func TestLoaderParseError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"bad.go": "package main\nfunc {",
	})
	if _, err := newLoader(root); err == nil {
		t.Error("syntactically broken non-test file should fail loading")
	}
}

// TestImportFallback proves unknown imports degrade to complete placeholder
// packages instead of aborting the check.
func TestImportFallback(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"m.go":   "package m\nimport \"no.such.host/dep/thing\"\nvar X = thing.Y\n",
	})
	l, err := newLoader(root)
	if err != nil {
		t.Fatalf("newLoader: %v", err)
	}
	tp, err := l.importPkg("no.such.host/dep/thing")
	if err != nil || tp == nil {
		t.Fatalf("importPkg fallback: %v", err)
	}
	if tp.Name() != "thing" || !tp.Complete() {
		t.Errorf("placeholder package = name %q complete %v", tp.Name(), tp.Complete())
	}
	if again, _ := l.importPkg("no.such.host/dep/thing"); again != tp {
		t.Error("fallback packages should be cached and identity-stable")
	}
}

func TestMatchPatterns(t *testing.T) {
	cases := []struct {
		relDir, pattern string
		want            bool
	}{
		{"internal/geom", "./...", true},
		{".", "./...", true},
		{".", ".", true},
		{"internal/geom", "./internal/...", true},
		{"internal", "./internal/...", true},
		{"internal/geom", "./internal/geom", true},
		{"internal/geom", "internal/geom", true},
		{"internal/geometry", "./internal/geom", false},
		{"internal/geometry", "./internal/geom/...", false},
		{"cmd/tool", "./internal/...", false},
	}
	for _, c := range cases {
		p := &lintPkg{relDir: c.relDir}
		if got := p.match(c.pattern); got != c.want {
			t.Errorf("match(relDir=%q, %q) = %v, want %v", c.relDir, c.pattern, got, c.want)
		}
	}
}

// TestDirectiveParsing covers the lint:allow grammar edge cases on a
// synthetic module: missing justification, unknown rule, same-line and
// line-above placement, and the rule that directive findings cannot be
// suppressed by other directives.
func TestDirectiveParsing(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"internal/x/x.go": `// Package x exercises directive parsing.
package x

import "os"

func SameLine() string {
	return os.Getenv("A") //lint:allow getenv test: same-line directive
}

func LineAbove() string {
	//lint:allow getenv test: line-above directive
	return os.Getenv("B")
}

func NoJustification() string {
	return os.Getenv("C") //lint:allow getenv
}

func UnknownRule() string {
	return os.Getenv("D") //lint:allow bogusrule totally justified
}

func BareDirective() string {
	return os.Getenv("E") //lint:allow
}
`,
	})
	l, err := newLoader(root)
	if err != nil {
		t.Fatalf("newLoader: %v", err)
	}
	var lines []string
	for _, f := range lintModule(l, []string{"./..."}) {
		lines = append(lines, f.String())
	}
	out := strings.Join(lines, "\n")
	for _, w := range []string{
		"x.go:16:24: [directive] lint:allow needs a rule name and a justification",
		"x.go:16:9: [getenv]",
		"x.go:20:24: [directive] lint:allow names unknown rule \"bogusrule\"",
		"x.go:20:9: [getenv]",
		"x.go:24:24: [directive] lint:allow needs a rule name and a justification",
		"x.go:24:9: [getenv]",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in findings:\n%s", w, out)
		}
	}
	for _, d := range []string{"x.go:7", "x.go:12"} {
		if strings.Contains(out, d) {
			t.Errorf("directive failed to suppress finding at %s:\n%s", d, out)
		}
	}
}

// TestMarkerParsing covers the //sadp:immutable grammar: bare marker,
// marker with trailing text, marker in a TypeSpec doc of a grouped decl,
// and near-miss comments that must NOT register.
func TestMarkerParsing(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"internal/y/y.go": `// Package y exercises marker parsing.
package y

//sadp:immutable
type Bare struct{ N int }

//sadp:immutable — cached and shared.
type WithText struct{ N int }

type (
	// Grouped has a spec-level doc marker.
	//sadp:immutable
	Grouped struct{ N int }

	Plain struct{ N int }
)

// sadp:immutable — leading space disqualifies the marker line.
type NearMiss struct{ N int }

//sadp:immutableish
type Prefix struct{ N int }
`,
	})
	l, err := newLoader(root)
	if err != nil {
		t.Fatalf("newLoader: %v", err)
	}
	m := collectMarkers(l)
	want := map[string]bool{
		"Bare": true, "WithText": true, "Grouped": true,
		"Plain": false, "NearMiss": false, "Prefix": false,
	}
	for name, marked := range want {
		got := m.immutable[typeKey{"example.com/m/internal/y", name}]
		if got != marked {
			t.Errorf("marker on %s = %v, want %v", name, got, marked)
		}
	}
}
