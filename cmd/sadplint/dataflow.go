package main

// A minimal intraprocedural forward dataflow framework over funcCFG. The
// facts are sets of small integer ids — a tracked pool handle for
// poolleak, a tainted variable for the maprange taint pass — and the join
// is set union, i.e. may-analyses: a fact holds at a node if it holds on
// ANY path reaching it. That is the right polarity for both clients: a
// pool handle that is still open on any path to the exit is a leak, and a
// value that is map-order-derived on any path into a sink is
// nondeterministic.

// idset is a small immutable-by-convention set of fact ids.
type idset map[int]struct{}

func (s idset) has(id int) bool { _, ok := s[id]; return ok }

func (s idset) clone() idset {
	out := make(idset, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

func (s idset) equal(t idset) bool {
	if len(s) != len(t) {
		return false
	}
	for id := range s {
		if !t.has(id) {
			return false
		}
	}
	return true
}

// union returns s ∪ t, reusing s when t adds nothing.
func union(s, t idset) idset {
	if len(t) == 0 {
		return s
	}
	if len(s) == 0 {
		return t.clone()
	}
	out := s
	cloned := false
	for id := range t {
		if !out.has(id) {
			if !cloned {
				out = s.clone()
				cloned = true
			}
			out[id] = struct{}{}
		}
	}
	return out
}

// transferFunc computes a node's out-set from its in-set. It must treat
// the in-set as read-only and return a fresh (or identical) set.
type transferFunc func(n *cfgNode, in idset) idset

// forwardFlow solves the forward may-analysis to fixpoint and returns the
// in-set of every node. The iteration order follows cfg.nodes (source
// order), repeated until stable; function-sized graphs converge in a
// handful of passes.
func forwardFlow(cfg *funcCFG, transfer transferFunc) map[*cfgNode]idset {
	in := make(map[*cfgNode]idset, len(cfg.nodes))
	out := make(map[*cfgNode]idset, len(cfg.nodes))
	for {
		changed := false
		for _, n := range cfg.nodes {
			var inSet idset
			for _, p := range cfg.preds[n] {
				inSet = union(inSet, out[p])
			}
			if inSet == nil {
				inSet = idset{}
			}
			in[n] = inSet
			var outSet idset
			if n == cfg.exit {
				outSet = inSet
			} else {
				outSet = transfer(n, inSet)
			}
			if prev, ok := out[n]; !ok || !prev.equal(outSet) {
				out[n] = outSet
				changed = true
			}
		}
		if !changed {
			return in
		}
	}
}
