package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPoolLeakMutation is a mutation-style self-test of the poolleak rule:
// it copies the real module into a temp dir, deletes the `defer e.Release()`
// in internal/decomp/cut.go, and asserts the linter reports the leak. The
// repo itself lints clean (TestRepoIsClean), so this proves the clean run
// is the rule working — not the rule being inert.
func TestPoolLeakMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("copies the module tree")
	}
	root := copyModule(t, "../..")

	target := filepath.Join(root, "internal", "decomp", "cut.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	mutated, removed := removeFirstLine(string(src), "defer e.Release()")
	if !removed {
		t.Fatalf("internal/decomp/cut.go no longer contains `defer e.Release()`; update the mutation target")
	}
	if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := newLoader(root)
	if err != nil {
		t.Fatalf("newLoader on mutated copy: %v", err)
	}
	var hits []string
	for _, f := range lintModule(l, []string{"./..."}) {
		if f.rule == rulePoolLeak {
			hits = append(hits, f.String())
		}
	}
	if len(hits) == 0 {
		t.Fatal("poolleak did not fire on the mutated module: the rule would miss a real leak")
	}
	found := false
	for _, h := range hits {
		if strings.Contains(h, "internal/decomp/cut.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("poolleak fired, but not at the mutated file:\n%s", strings.Join(hits, "\n"))
	}
}

// copyModule copies go.mod and every non-test .go file of the module at
// src into a fresh temp dir, preserving layout.
func copyModule(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if rel != "go.mod" &&
			(!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		out := filepath.Join(dst, rel)
		if rerr := os.MkdirAll(filepath.Dir(out), 0o755); rerr != nil {
			return rerr
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// removeFirstLine deletes the first line containing needle.
func removeFirstLine(src, needle string) (string, bool) {
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		if strings.Contains(line, needle) {
			return strings.Join(append(lines[:i], lines[i+1:]...), "\n"), true
		}
	}
	return src, false
}
