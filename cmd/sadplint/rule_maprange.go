package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maprange: map-iteration-derived values must not reach ordered output
// without an intervening sort. Map iteration order is random per run —
// exactly the nondeterminism class that breaks the repo's byte-identical
// guarantees (parallel == serial tables, reproducible traces, golden
// files).
//
// Since PR 6 this is a taint-style dataflow pass over the function CFG,
// not a syntactic loop-body match. The key/value variables of a `for
// range` over a map are taint sources; taint propagates through
// assignments, string concatenation, function-call results and range over
// tainted slices; it is killed by a sort.*/slices.* call on the value and
// not propagated through commutative numeric accumulation (sum += v is
// order-independent, s += k is not) or the min/max builtins. Sinks are
//
//   - append into a slice that is never sorted in the function: the slice
//     accumulates values in random order (reported whether the append is
//     inside the loop or downstream of it), and
//   - ordered emission: fmt Print/Fprint families, Write/WriteString
//     method calls, and obs trace/debug emission (Trace, Debugf) with a
//     tainted argument — the trace sink's byte-identical contract dies
//     the moment a map-ordered value lands in it.
//
// The dataflow formulation both catches leaks the old syntactic rule
// missed (a value picked inside the loop and emitted after it) and stops
// flagging order-independent loop bodies (emitting a constant per entry).

const ruleMapRange = "maprange"

func init() {
	register(ruleDef{
		name: ruleMapRange,
		doc:  "map-range-derived values must not reach append/ordered output without a sort",
		file: checkMapRange,
	})
}

func checkMapRange(c *pass) {
	for _, body := range funcBodies(c.file) {
		checkMapRangeFunc(c, body)
	}
}

// taintState carries the per-function object<->id binding shared by the
// transfer function and the reporting pass.
type taintState struct {
	c    *pass
	ids  map[types.Object]int
	next int
}

func (t *taintState) idOf(obj types.Object) int {
	if obj == nil {
		return -1
	}
	if id, ok := t.ids[obj]; ok {
		return id
	}
	id := t.next
	t.next++
	t.ids[obj] = id
	return id
}

// tainted reports whether any identifier in the expression tree resolves
// to a tainted object. Function literals are opaque.
func (t *taintState) tainted(e ast.Expr, in idset) bool {
	if e == nil {
		return false
	}
	// min/max builtins fold commutatively: max over a map's values is the
	// same whatever the iteration order.
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
			if _, isFn := t.c.objectOf(id).(*types.Func); !isFn {
				return false
			}
		}
	}
	found := false
	ast.Inspect(e, pruneFuncLit(func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if tid, ok := t.ids[t.c.objectOf(id)]; ok && in.has(tid) {
				found = true
			}
		}
		return !found
	}))
	return found
}

func checkMapRangeFunc(c *pass, body *ast.BlockStmt) {
	// Cheap pre-scan: no map range (pruning nested literals, which get
	// their own run), no analysis.
	hasMapRange := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := c.typeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					hasMapRange = true
				}
			}
		}
		return !hasMapRange
	})
	if !hasMapRange {
		return
	}

	st := &taintState{c: c, ids: map[types.Object]int{}}
	sorted := sortTargets(body)
	cfg := c.cfgFor(body)
	transfer := func(n *cfgNode, in idset) idset { return st.transfer(n, in, sorted) }
	in := forwardFlow(cfg, transfer)

	// Reporting pass over nodes in source order (findings are re-sorted
	// globally, so node order only needs to be deterministic).
	for _, n := range cfg.nodes {
		if n.stmt == nil {
			continue
		}
		st.reportSinks(n, in[n], sorted)
	}
}

// rangeOverMap reports whether the range statement iterates a map.
func (t *taintState) rangeOverMap(rs *ast.RangeStmt) bool {
	typ := t.c.typeOf(rs.X)
	if typ == nil {
		return false
	}
	_, isMap := typ.Underlying().(*types.Map)
	return isMap
}

// transfer implements taint propagation for one CFG node.
func (t *taintState) transfer(n *cfgNode, in idset, sorted map[string]bool) idset {
	out := in
	set := func(id int, on bool) {
		if id < 0 {
			return
		}
		if on && !out.has(id) {
			out = out.clone()
			out[id] = struct{}{}
		} else if !on && out.has(id) {
			out = out.clone()
			delete(out, id)
		}
	}
	assignIdent := func(lhs ast.Expr, taint bool) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := t.c.objectOf(id); obj != nil {
				set(t.idOf(obj), taint)
			}
		}
		// Writes through fields/elements are not tracked (no strong
		// updates on aggregates; the append sink covers the common case).
	}

	switch s := n.stmt.(type) {
	case *ast.RangeStmt:
		if t.rangeOverMap(s) {
			assignIdent(s.Key, true)
			assignIdent(s.Value, true)
		} else {
			// Ranging a tainted slice yields tainted elements; the index
			// itself (0..n-1) is deterministic.
			el := t.tainted(s.X, in)
			if s.Value != nil {
				assignIdent(s.Value, el)
			}
			if s.Key != nil {
				if _, isArr := underlyingIndexable(t.c.typeOf(s.X)); !isArr {
					assignIdent(s.Key, el) // e.g. range over tainted string/chan
				} else {
					assignIdent(s.Key, false)
				}
			}
		}
	case *ast.AssignStmt:
		t.transferAssign(s, in, set, assignIdent)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					taint := false
					if len(vs.Values) == len(vs.Names) {
						taint = t.tainted(vs.Values[i], in)
					} else if len(vs.Values) == 1 {
						taint = t.tainted(vs.Values[0], in)
					}
					assignIdent(name, taint)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			assignIdent(as.Lhs[0], t.tainted(as.Rhs[0], in))
		}
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
		// A sort call kills the sorted value's taint from here on.
		localInspect(n.stmt, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				for _, obj := range sortCallTargets(call) {
					if o := t.c.objectOf(obj); o != nil {
						set(t.idOf(o), false)
					}
				}
			}
			return true
		})
	}
	return out
}

// transferAssign handles =, :=, and the compound operators. The set and
// assignIdent closures mutate the caller's out-set.
func (t *taintState) transferAssign(s *ast.AssignStmt, in idset,
	set func(int, bool), assignIdent func(ast.Expr, bool)) {
	_ = set
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				assignIdent(s.Lhs[i], t.tainted(s.Rhs[i], in))
			}
		} else if len(s.Rhs) == 1 {
			// Multi-value: x, ok := m[k] / f(...) — all targets share the
			// RHS's taint. Indexing a map with an untainted key is
			// deterministic, so only the expression's own taint counts.
			taint := t.tainted(s.Rhs[0], in)
			for _, lhs := range s.Lhs {
				assignIdent(lhs, taint)
			}
		}
	default:
		// Compound assignment. Numeric/boolean accumulation (sum += v,
		// n |= bit) is order-independent; string concatenation and
		// anything else order-dependent.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		if t.tainted(s.Rhs[0], in) && !isCommutativeAccum(t.c.typeOf(s.Lhs[0]), s.Tok) {
			assignIdent(s.Lhs[0], true)
		}
	}
}

// isCommutativeAccum reports whether a compound assignment on this type
// is order-independent: integer +/-/*/|/&/^, boolean, or float
// accumulation is; string concatenation is not.
func isCommutativeAccum(typ types.Type, tok token.Token) bool {
	if typ == nil {
		return false
	}
	b, ok := typ.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	if b.Info()&types.IsString != 0 {
		return false
	}
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return b.Info()&(types.IsInteger|types.IsFloat|types.IsBoolean) != 0
	}
	return false
}

// underlyingIndexable reports whether t is a slice or array (whose range
// keys are deterministic ints).
func underlyingIndexable(t types.Type) (types.Type, bool) {
	if t == nil {
		return nil, false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem(), true
	case *types.Array:
		return u.Elem(), true
	case *types.Pointer:
		return underlyingIndexable(u.Elem())
	}
	return nil, false
}

// reportSinks flags tainted values reaching order-sensitive sinks at one
// node.
func (t *taintState) reportSinks(n *cfgNode, in idset, sorted map[string]bool) {
	localInspect(n.stmt, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(x.Lhs) {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					continue
				}
				dst, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident)
				if !ok || sorted[dst.Name] {
					continue
				}
				for _, arg := range call.Args[1:] {
					if t.tainted(arg, in) {
						t.c.report(call.Pos(), ruleMapRange,
							"slice %q collects map-derived values in random order and is never sorted here", dst.Name)
						break
					}
				}
			}
		case *ast.CallExpr:
			name, isSink := sinkCall(x)
			if !isSink {
				return true
			}
			for _, arg := range x.Args {
				if t.tainted(arg, in) {
					t.c.report(x.Pos(), ruleMapRange,
						"%s called with a map-range-derived value: output is random per run (sort first)", name)
					break
				}
			}
		}
		return true
	})
}

// sinkCall classifies ordered-output calls: the fmt print families and
// writer/trace emission methods.
func sinkCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
		"Write", "WriteString", "WriteByte", "WriteRune",
		"Trace", "Debugf":
		return sel.Sel.Name, true
	}
	return "", false
}

// sortCallTargets returns the identifiers passed to a sort.*/slices.*
// call (unwrapping one conversion, for sort.Sort(byX(ids))).
func sortCallTargets(call *ast.CallExpr) []*ast.Ident {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); !ok || (id.Name != "sort" && id.Name != "slices") {
		return nil
	}
	var out []*ast.Ident
	for _, arg := range call.Args {
		switch a := arg.(type) {
		case *ast.Ident:
			out = append(out, a)
		case *ast.CallExpr:
			if len(a.Args) == 1 {
				if id, ok := a.Args[0].(*ast.Ident); ok {
					out = append(out, id)
				}
			}
		}
	}
	return out
}

// sortTargets collects identifiers that are passed to any sort.* or
// slices.* call anywhere in the function body — the flow-insensitive
// "is this slice ever sorted here" question the append sink asks.
func sortTargets(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, id := range sortCallTargets(call) {
			out[id.Name] = true
		}
		return true
	})
	return out
}
