package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// immutable: writes through fields of a `//sadp:immutable`-marked type
// outside its home package. The marker is a doc-comment line on the type
// declaration:
//
//	// Result summarizes one layer's decomposition.
//	//
//	//sadp:immutable — cached Results are shared by every caller.
//	type Result struct { ... }
//
// It claims the type's values are published to multiple readers (a memo
// cache, a content-addressed store), so any assignment or ++/-- whose
// target reaches through a field — directly, via an indexed element, or
// through a nested struct — corrupts data other holders rely on. The
// home package (where the type is declared) is exempt: it builds the
// values before publication. Callers needing a private copy clone first
// and whitelist the clone's ownership with lint:allow.
//
// This generalizes the PR 5 `resultwrite` rule, which hardcoded
// decomp.Result; the decomposition oracle now just carries the marker,
// and the TPL oracle's cache (ROADMAP) can tag its own types.

const ruleImmutable = "immutable"

func init() {
	register(ruleDef{
		name: ruleImmutable,
		doc:  "no writes through //sadp:immutable-marked struct fields outside the home package",
		file: checkImmutable,
	})
}

func checkImmutable(c *pass) {
	if len(c.markers.immutable) == 0 {
		return
	}
	flag := func(e ast.Expr, op string) {
		if typ, fld := c.immutableField(e); fld != "" {
			c.report(e.Pos(),
				ruleImmutable,
				"%s through %s field %s: //sadp:immutable values are shared outside their home package", op, typ, fld)
		}
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				flag(lhs, "write")
			}
		case *ast.IncDecStmt:
			flag(n.X, n.Tok.String())
		}
		return true
	})
}

// immutableField unwraps an assignment target down through parens, stars,
// indexes and selectors and returns the first field selected off a marked
// immutable value declared outside this package, with the type's display
// name; ("", "") when the target never touches one.
func (c *pass) immutableField(e ast.Expr) (string, string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if named := c.markedImmutable(c.typeOf(x.X)); named != "" {
				return named, x.Sel.Name
			}
			e = x.X
		default:
			return "", ""
		}
	}
}

// markedImmutable reports (by display name) whether t is (a pointer to) a
// named type carrying the //sadp:immutable marker whose home package is
// not the one being linted.
func (c *pass) markedImmutable(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if path == c.p.importPath {
		return "" // the home package builds values before publication
	}
	if !c.markers.immutable[typeKey{path, obj.Name()}] {
		return ""
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base + "." + obj.Name()
}
