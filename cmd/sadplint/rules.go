package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The rules encode repo invariants the compiler cannot see. Each finding
// carries the rule name so a `//lint:allow <rule> <justification>` comment
// on the same line (or the line above) can suppress it; the justification
// is mandatory.
const (
	ruleMapRange  = "maprange"  // map iteration feeding ordered output without a sort
	ruleFloat     = "float"     // floating point in integer-grid geometry packages
	rulePanic     = "panic"     // panic in library code outside constructor validation
	ruleGetenv    = "getenv"    // undocumented environment-variable read
	ruleStderr    = "stderr"    // direct os.Stderr write in library code
	ruleDirective = "directive" // malformed lint directive
	rulePkgDoc    = "pkgdoc"    // internal/ package without a package comment
	// resultwrite: write through a decomp.Result field outside
	// internal/decomp — cached Results are shared and immutable.
	ruleResultWrite = "resultwrite"
)

// floatPkgs are the packages where the paper's integer-grid model forbids
// floating point entirely; every exception needs an explicit whitelist.
var floatPkgs = map[string]bool{
	"internal/geom":   true,
	"internal/decomp": true,
	"internal/grid":   true,
}

type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, f.msg)
}

// lintModule runs every rule over the packages selected by patterns and
// returns the surviving findings sorted by position.
func lintModule(l *loader, patterns []string) []finding {
	var out []finding
	for _, p := range l.sorted() {
		selected := false
		for _, pat := range patterns {
			if p.match(pat) {
				selected = true
				break
			}
		}
		if !selected {
			continue
		}
		for _, file := range p.files {
			out = append(out, lintFile(l, p, file)...)
		}
		out = append(out, checkPkgDoc(l, p)...)
	}
	for i := range out {
		if rel, err := filepath.Rel(l.root, out[i].pos.Filename); err == nil {
			out[i].pos.Filename = filepath.ToSlash(rel)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.rule < b.rule
	})
	return out
}

// checkPkgDoc enforces the ARCHITECTURE.md contract that every internal/
// package opens with a package comment stating its role (and, where one
// exists, the paper section it implements). The finding anchors at the
// package clause of the package's first file and — being a package-level
// property, not a line-level one — cannot be suppressed with lint:allow.
func checkPkgDoc(l *loader, p *lintPkg) []finding {
	if !strings.HasPrefix(p.relDir, "internal/") || len(p.files) == 0 {
		return nil
	}
	for _, file := range p.files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			return nil
		}
	}
	return []finding{{
		pos:  l.fset.Position(p.files[0].Name.Pos()),
		rule: rulePkgDoc,
		msg:  fmt.Sprintf("package %s has no package comment; document its role and paper section", p.relDir),
	}}
}

func lintFile(l *loader, p *lintPkg, file *ast.File) []finding {
	c := &checker{l: l, p: p, file: file, allow: map[int]map[string]bool{}}
	c.collectDirectives()
	c.checkGetenv()
	c.checkPanic()
	c.checkMapRange()
	c.checkStderr()
	c.checkResultWrite()
	if floatPkgs[p.relDir] {
		c.checkFloat()
	}
	var kept []finding
	for _, f := range c.findings {
		if f.rule != ruleDirective && (c.allow[f.pos.Line][f.rule] || c.allow[f.pos.Line-1][f.rule]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

type checker struct {
	l        *loader
	p        *lintPkg
	file     *ast.File
	allow    map[int]map[string]bool // line -> rules allowed on that line
	findings []finding
}

func (c *checker) report(pos token.Pos, rule, format string, args ...any) {
	c.findings = append(c.findings, finding{
		pos:  c.l.fset.Position(pos),
		rule: rule,
		msg:  fmt.Sprintf(format, args...),
	})
}

// typeOf returns the checked type of e, or nil when type checking could
// not resolve it.
func (c *checker) typeOf(e ast.Expr) types.Type {
	if c.p.info == nil {
		return nil
	}
	if tv, ok := c.p.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// collectDirectives indexes `//lint:allow <rule> <justification>` comments
// by line. A directive with no rule or no justification is itself a
// finding and suppresses nothing.
func (c *checker) collectDirectives() {
	for _, cg := range c.file.Comments {
		for _, cm := range cg.List {
			rest, ok := strings.CutPrefix(cm.Text, "//lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				c.report(cm.Pos(), ruleDirective,
					"lint:allow needs a rule name and a justification: //lint:allow <rule> <why>")
				continue
			}
			line := c.l.fset.Position(cm.Pos()).Line
			if c.allow[line] == nil {
				c.allow[line] = map[string]bool{}
			}
			c.allow[line][fields[0]] = true
		}
	}
}

// checkGetenv flags every os.Getenv / os.LookupEnv call: hidden behavior
// switches must be documented, which the whitelist justification records.
func (c *checker) checkGetenv() {
	ast.Inspect(c.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "os" {
			return true
		}
		if sel.Sel.Name == "Getenv" || sel.Sel.Name == "LookupEnv" {
			c.report(sel.Pos(), ruleGetenv,
				"os.%s read: environment switches must be documented and whitelisted", sel.Sel.Name)
		}
		return true
	})
}

// checkStderr flags os.Stderr references in library packages (internal/...):
// diagnostics must flow through the internal/obs recorder so callers control
// the destination and tests can capture it. internal/obs itself is exempt —
// it holds the one sanctioned os.Stderr default (Recorder.EnsureDebug).
func (c *checker) checkStderr() {
	if !strings.HasPrefix(c.p.relDir, "internal/") && c.p.relDir != "internal" {
		return
	}
	if c.p.relDir == "internal/obs" {
		return
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "os" || sel.Sel.Name != "Stderr" {
			return true
		}
		c.report(sel.Pos(), ruleStderr,
			"os.Stderr in library code: route diagnostics through internal/obs (Recorder.Debugf / trace events)")
		return true
	})
}

// checkResultWrite flags assignments and ++/-- whose target reaches
// through a field of the decomposition oracle's Result type outside
// internal/decomp itself: the memo cache (internal/decomp.Cache) shares
// one *Result among every caller that asks about the same layout, so a
// write through any Result field — directly, via an indexed element, or
// through a nested struct — corrupts data other callers (and the cache's
// Paranoid integrity check) rely on. Callers needing a private copy must
// clone first and whitelist the clone's ownership.
func (c *checker) checkResultWrite() {
	if c.p.relDir == "internal/decomp" {
		return
	}
	flag := func(e ast.Expr, op string) {
		if fld := c.decompResultField(e); fld != "" {
			c.report(e.Pos(), ruleResultWrite,
				"%s through decomp.Result field %s: cached Results are shared and immutable outside internal/decomp", op, fld)
		}
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				flag(lhs, "write")
			}
		case *ast.IncDecStmt:
			flag(n.X, n.Tok.String())
		}
		return true
	})
}

// decompResultField unwraps an assignment target down through parens,
// stars, indexes and selectors and returns the first field selected off a
// decomp.Result value, or "" when the target never touches one.
func (c *checker) decompResultField(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if isDecompResult(c.typeOf(x.X)) {
				return x.Sel.Name
			}
			e = x.X
		default:
			return ""
		}
	}
}

// isDecompResult reports whether t is (a pointer to) the named type
// Result of a package whose import path ends in internal/decomp.
func isDecompResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Result" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/decomp" || strings.HasSuffix(path, "/internal/decomp")
}

// checkPanic flags panic calls in library packages (internal/...). Panics
// guarding constructor arguments (functions named New* or Must*) are the
// one accepted idiom.
func (c *checker) checkPanic() {
	if !strings.HasPrefix(c.p.relDir, "internal/") && c.p.relDir != "internal" {
		return
	}
	for _, decl := range c.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "Must") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				c.report(call.Pos(), rulePanic,
					"panic in library func %s: return an error instead", fd.Name.Name)
			}
			return true
		})
	}
}

// checkFloat flags floating point in the integer-grid packages: float
// literals, float type names, and arithmetic whose operands type-check as
// floating point (catching float struct fields combined without any float
// token on the line).
func (c *checker) checkFloat() {
	isFloat := func(t types.Type) bool {
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.FLOAT || n.Kind == token.IMAG {
				c.report(n.Pos(), ruleFloat, "float literal %s in integer-grid package", n.Value)
			}
		case *ast.Ident:
			switch n.Name {
			case "float32", "float64", "complex64", "complex128":
				c.report(n.Pos(), ruleFloat, "%s in integer-grid package", n.Name)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat(c.typeOf(n.X)) || isFloat(c.typeOf(n.Y)) {
					c.report(n.OpPos, ruleFloat, "floating-point %s in integer-grid package", n.Op)
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloat(c.typeOf(n.Lhs[0])) {
					c.report(n.TokPos, ruleFloat, "floating-point %s in integer-grid package", n.Tok)
				}
			}
		}
		return true
	})
}

// checkMapRange flags `for range` over a map that feeds ordered output:
// either appending to a slice that is never sorted in the same function,
// or writing formatted output directly from the loop body. Map iteration
// order is random per run — exactly the nondeterminism class that breaks
// resumable and parallel routing.
func (c *checker) checkMapRange() {
	for _, decl := range c.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sorted := sortTargets(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := c.typeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			c.checkMapLoopBody(rng, sorted)
			return true
		})
	}
}

// checkMapLoopBody inspects one map-range body for order-sensitive sinks.
func (c *checker) checkMapLoopBody(rng *ast.RangeStmt, sorted map[string]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					continue
				}
				dst, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if !sorted[dst.Name] {
					c.report(rng.For, ruleMapRange,
						"slice %q collects map keys/values in random order and is never sorted here", dst.Name)
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderedSink(sel.Sel.Name) {
				c.report(n.Pos(), ruleMapRange,
					"%s called inside map iteration: output order is random per run", sel.Sel.Name)
			}
		}
		return true
	})
}

// orderedSink reports whether a method name writes ordered output.
func orderedSink(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
		"Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// sortTargets collects identifiers that are passed to any sort.* call in
// the function body (unwrapping one conversion, for sort.Sort(byX(ids))).
func sortTargets(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || (id.Name != "sort" && id.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			switch a := arg.(type) {
			case *ast.Ident:
				out[a.Name] = true
			case *ast.CallExpr:
				if len(a.Args) == 1 {
					if id, ok := a.Args[0].(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return out
}
