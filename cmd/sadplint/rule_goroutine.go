package main

import "go/ast"

// goroutine: `go` statements in internal/ are legal only inside the
// blessed worker-pool packages. Every parallel construct in this repo —
// the cell harness (internal/bench), the intra-instance wave scheduler
// (internal/sched), the sadpd job-server pool (internal/serve) — funnels
// its concurrency through a fixed-size pool whose results are keyed by
// input (canonical-order merge, or per-job state owned by one worker at
// a time), which is what makes the parallel runs byte-identical to
// serial. A goroutine spawned anywhere else is exactly how that
// guarantee dies: side effects land in nondeterministic order and no
// equivalence test covers them. New pool packages join the allowlist
// here, with the same merge obligations.

const ruleGoroutine = "goroutine"

// goroutinePkgs are the packages allowed to spawn goroutines: the
// deterministic worker pools, plus the job-server pool whose routing
// work is single-goroutine per job (TestServeSoakByteIdentical holds it
// to the byte-identical-to-serial bar).
var goroutinePkgs = map[string]bool{
	"internal/sched": true,
	"internal/bench": true,
	"internal/serve": true,
}

func init() {
	register(ruleDef{
		name: ruleGoroutine,
		doc:  "go statements in internal/ only inside the blessed pools (internal/sched, internal/bench, internal/serve)",
		file: checkGoroutine,
	})
}

func checkGoroutine(c *pass) {
	if !c.inInternal() || goroutinePkgs[c.p.relDir] {
		return
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			c.report(g.Pos(), ruleGoroutine,
				"go statement outside the blessed worker pools (internal/sched, internal/bench, internal/serve): stray goroutines break the byte-identical-to-serial guarantee")
		}
		return true
	})
}
