package main

import (
	"go/ast"
	"go/types"
	"strconv"
)

// wallclock: internal/ packages must not read wall-clock time or import
// math/rand. The determinism contract behind every equivalence proof in
// this repo (byte-identical traces across -jobs and -net-workers, the
// golden tables, the decomp cache on/off diffs) is that nothing in
// internal/ depends on when or where it runs: trace events carry a
// monotonic sequence number, never a timestamp, and all randomness flows
// from explicit seeds (internal/bench's seeded generator).
//
// The sanctioned exceptions — CPU-time metrics in the router/baselines
// and the obs stage timers, which feed reporting columns and never
// geometry — carry `//lint:allow wallclock <why>` so every wall-clock
// read in library code is documented at the call site.

const ruleWallClock = "wallclock"

// wallClockFuncs are the banned time package functions. time.Duration
// arithmetic and formatting stay legal — only reading the clock is the
// hazard.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func init() {
	register(ruleDef{
		name: ruleWallClock,
		doc:  "no wall-clock reads (time.Now/Since/Sleep/...) or math/rand in internal/",
		file: checkWallClock,
	})
}

func checkWallClock(c *pass) {
	if !c.inInternal() {
		return
	}
	for _, imp := range c.file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			c.report(imp.Pos(), ruleWallClock,
				"import %s in internal/: randomness must flow from explicit seeds and be whitelisted", path)
		}
	}
	ast.Inspect(c.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "time" || !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		// Only the time package, not a local variable named `time`.
		if obj := c.objectOf(id); obj != nil {
			if _, isPkg := obj.(*types.PkgName); !isPkg {
				return true
			}
		}
		c.report(sel.Pos(), ruleWallClock,
			"time.%s in internal/: wall-clock reads break the determinism contract (lint:allow for timing metrics)",
			sel.Sel.Name)
		return true
	})
}
