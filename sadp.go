// Package sadp is the public facade of the SADP overlay-aware detailed
// router: a from-scratch implementation of Liu, Fang and Chang,
// "Overlay-Aware Detailed Routing for Self-Aligned Double Patterning
// Lithography Using the Cut Process" (DAC 2014 / IEEE TCAD 2016).
//
// The typical flow is:
//
//	nl, _ := sadp.ReadNetlist(f)                  // or sadp.Generate(spec)
//	res := sadp.Route(nl, sadp.Node10nm(), sadp.Defaults())
//	layers, totals := sadp.Evaluate(res)          // decomposition oracle
//	fmt.Printf("%.1f%% routed, %.1f overlay units, %d cut conflicts\n",
//	        res.Routability(), totals.SideOverlayUnits, totals.Conflicts)
//
// Route performs the paper's algorithm: overlay-constraint-graph-guided
// A* search, rip-up-and-reroute on hard odd cycles and cut conflicts,
// pseudo-coloring, and the linear-time color-flipping DP. Evaluate measures
// the result with the layout-decomposition oracle (assistant-core
// synthesis, merge bridges, spacer protection, overlay and cut-conflict
// extraction).
package sadp

import (
	"context"
	"io"

	"sadproute/internal/bench"
	"sadproute/internal/decomp"
	"sadproute/internal/geom"
	"sadproute/internal/grid"
	"sadproute/internal/netlist"
	"sadproute/internal/obs"
	"sadproute/internal/router"
	"sadproute/internal/rules"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Rules is an SADP design-rule set.
	Rules = rules.Set
	// Netlist is a routing problem instance.
	Netlist = netlist.Netlist
	// Net is a two-pin net with candidate pin locations.
	Net = netlist.Net
	// Pin is a net terminal.
	Pin = netlist.Pin
	// Options are the router parameters (paper defaults via Defaults).
	Options = router.Options
	// Result is a completed routing run.
	Result = router.Result
	// Layout is a per-layer colored-pattern input to the oracle.
	Layout = decomp.Layout
	// DecompResult is one layer's decomposition measurement.
	DecompResult = decomp.Result
	// Totals aggregates decomposition metrics across layers.
	Totals = decomp.Totals
	// Spec parameterizes the synthetic benchmark generator.
	Spec = bench.Spec
	// Color is a mask assignment (CoreMask or SecondMask).
	Color = decomp.Color
	// Pattern is one net's colored geometry on a layer.
	Pattern = decomp.Pattern
	// Rect is an axis-aligned half-open rectangle (nm or track units).
	Rect = geom.Rect
	// Cell addresses a routing-grid cell.
	Cell = grid.Cell
	// Blockage is a rectangle of forbidden cells on one layer.
	Blockage = netlist.Blockage
	// Recorder collects router metrics and trace events (attach one via
	// Options.Obs; a nil Recorder is a safe no-op).
	Recorder = obs.Recorder
	// ObsSnapshot is a point-in-time copy of a Recorder's counters, gauges
	// and per-stage wall times.
	ObsSnapshot = obs.Snapshot
)

// Mask assignments.
const (
	CoreMask   = decomp.Core
	SecondMask = decomp.Second
)

// NewRecorder returns an enabled observability recorder. Attach it through
// Options.Obs, then read Snapshot() after routing; call SetTrace to stream
// deterministic JSONL trace events.
func NewRecorder() *Recorder { return obs.New() }

// Node10nm returns the paper's 10 nm-node design rules.
func Node10nm() Rules { return rules.Node10nm() }

// Defaults returns the paper's router parameter settings
// (alpha = beta = 1, gamma = 1.5, f_threshold = 10 units, B = 3).
func Defaults() Options { return router.Defaults() }

// Route runs the overlay-aware detailed router.
func Route(nl *Netlist, ds Rules, opt Options) *Result {
	return router.Route(nl, ds, opt)
}

// RouteCtx is Route under a cancellable context (job cancellation and
// graceful drain in the sadpd daemon). The partial result and ctx.Err()
// are returned on cancellation; a never-cancelled context yields a
// result byte-identical to Route.
func RouteCtx(ctx context.Context, nl *Netlist, ds Rules, opt Options) (*Result, error) {
	return router.RouteCtx(ctx, nl, ds, opt)
}

// Evaluate decomposes a routing result with the cut-process oracle and
// returns per-layer results plus aggregate totals. Runs routed with
// Options.DecompCache (the default) answer from the run's decomposition
// memo, reusing entries the router's own conflict checks already paid
// for; the returned results are shared with the cache and must not be
// mutated.
func Evaluate(res *Result) ([]*DecompResult, Totals) {
	return res.DecomposeLayersR(nil)
}

// EvaluateR is Evaluate reporting oracle and cache counters to rec.
func EvaluateR(res *Result, rec *Recorder) ([]*DecompResult, Totals) {
	return res.DecomposeLayersR(rec)
}

// DecomposeCut runs the cut-process oracle on one layer's layout.
func DecomposeCut(ly Layout) *DecompResult { return decomp.DecomposeCut(ly) }

// DecomposeTrim runs the trim-process oracle (used for the baselines).
func DecomposeTrim(ly Layout) *DecompResult { return decomp.DecomposeTrim(ly) }

// Generate builds a reproducible synthetic benchmark netlist.
func Generate(spec Spec) *Netlist { return bench.Generate(spec) }

// PaperSpecs returns the paper's Test1-5 (fixedPins=true) or Test6-10
// (fixedPins=false) benchmark parameterizations.
func PaperSpecs(fixedPins bool) []Spec { return bench.PaperSpecs(fixedPins) }

// HugeSpecs returns the large-die low-congestion "huge" benchmark family
// that motivates Options.SparseSearch: a few dozen long nets threading
// full-stack macro slabs on dies larger than the paper's biggest.
func HugeSpecs() []Spec { return bench.HugeSpecs() }

// ReadNetlist parses the plain-text netlist format.
func ReadNetlist(r io.Reader) (*Netlist, error) { return netlist.Read(r) }

// WriteNetlist serializes a netlist in the plain-text format.
func WriteNetlist(w io.Writer, nl *Netlist) error { return nl.Write(w) }
