package sadp

import (
	"bytes"
	"fmt"
	"testing"

	"sadproute/internal/obs"
)

// cacheDump routes one spec with the given cache setting and worker count
// and returns the canonical run dump plus the raw JSONL trace bytes (see
// routeDump). Both the sched.* family (absent in serial runs) and the
// decomp.* family (a cache hit returns the stored Result without
// re-running the oracle, so the work counters legitimately differ) are
// zeroed; every other counter must match across configurations.
func cacheDump(t *testing.T, sp Spec, cache bool, workers int) (string, string) {
	t.Helper()
	nl := Generate(sp)
	opt := Defaults()
	opt.DecompCache = cache
	opt.NetWorkers = workers
	rec := NewRecorder()
	var tr bytes.Buffer
	rec.SetTrace(&tr)
	opt.Obs = rec
	res := Route(nl, Node10nm(), opt)
	if err := rec.TraceErr(); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	snap.ZeroFamily("sched.")
	snap.ZeroFamily("decomp.")
	var b bytes.Buffer
	fmt.Fprintf(&b, "routed=%d failed=%d wl=%d vias=%d\n",
		res.Routed, res.Failed, res.WirelengthCells, res.Vias)
	b.WriteString(snap.CountersString())
	// Per-net attribution happens in the serial commit phase and never in
	// the oracle, so the table must be identical with the cache on or off.
	b.WriteString(obs.NetStatsString(rec.NetStats()))
	fmt.Fprintf(&b, "paths=%v\n", res.Paths)
	fmt.Fprintf(&b, "colors=%v\n", res.Colors)
	layers, tot := Evaluate(res)
	fmt.Fprintf(&b, "totals=%+v\n", tot)
	for i, lr := range layers {
		fmt.Fprintf(&b, "layer%d: so=%d tip=%d hard=%d conf=%d\n",
			i, lr.SideOverlayNM, lr.TipOverlayNM, lr.HardOverlays, len(lr.Conflicts))
	}
	return b.String(), tr.String()
}

// TestDecompCacheMatchesUncached is the tentpole's equivalence guarantee:
// routing with the decomposition memo cache (Options.DecompCache, the
// default) produces a byte-identical result — paths, colors, overlay
// totals, every non-decomp/non-sched counter, and the JSONL trace stream
// — to the uncached oracle, serially and under intra-instance
// parallelism. CI also diffs the experiment harness's golden tables with
// the cache off against the committed (cached) goldens.
func TestDecompCacheMatchesUncached(t *testing.T) {
	for _, sp := range intraparSpecs {
		t.Run(sp.Name, func(t *testing.T) {
			want, wantTr := cacheDump(t, sp, false, 0)
			for _, cfg := range []struct {
				cache   bool
				workers int
			}{{true, 0}, {false, 4}, {true, 4}} {
				got, gotTr := cacheDump(t, sp, cfg.cache, cfg.workers)
				if got != want {
					t.Fatalf("cache=%v workers=%d diverges from uncached serial:\n--- uncached\n%s\n--- got\n%s",
						cfg.cache, cfg.workers, want, got)
				}
				if gotTr != wantTr {
					i := 0
					for i < len(wantTr) && i < len(gotTr) && wantTr[i] == gotTr[i] {
						i++
					}
					lo := max(i-120, 0)
					t.Fatalf("cache=%v workers=%d trace diverges at byte %d:\n--- uncached\n...%s\n--- got\n...%s",
						cfg.cache, cfg.workers, i, wantTr[lo:min(i+120, len(wantTr))],
						gotTr[lo:min(i+120, len(gotTr))])
				}
			}
		})
	}
}

// TestDecompCacheEngages guards against the cache silently degenerating
// to all-misses: across the equivalence suite, the window-check and
// final-metrics paths must score a substantial number of hits, or the
// equivalence test above proves nothing about the hit path.
func TestDecompCacheEngages(t *testing.T) {
	var hits, misses int64
	for _, sp := range intraparSpecs {
		nl := Generate(sp)
		opt := Defaults()
		rec := NewRecorder()
		opt.Obs = rec
		res := Route(nl, Node10nm(), opt)
		EvaluateR(res, rec)
		snap := rec.Snapshot()
		hits += snap.Counter(obs.CtrDecompCacheHits)
		misses += snap.Counter(obs.CtrDecompCacheMisses)
	}
	if hits == 0 {
		t.Fatal("no window check or evaluation ever hit the cache: the memo path is degenerate")
	}
	if misses == 0 {
		t.Fatal("no cache misses recorded: the oracle never actually ran")
	}
	t.Logf("cache engaged: %d hits, %d misses (%.1f%% hit rate)",
		hits, misses, 100*float64(hits)/float64(hits+misses))
}

// TestDecompCacheResultsImmutable enforces the shared-Result contract:
// after a full routing run plus evaluation under Options.DecompParanoid,
// every cached Result still matches the deep copy taken when it was
// stored — no router or metrics code wrote through shared cache data —
// and the check itself provably detects such a write.
func TestDecompCacheResultsImmutable(t *testing.T) {
	sp := intraparSpecs[0]
	nl := Generate(sp)
	opt := Defaults()
	opt.DecompParanoid = true
	res := Route(nl, Node10nm(), opt)
	layers, _ := Evaluate(res) // final metrics also run through the caches
	if err := res.DecompCacheCheck(); err != nil {
		t.Fatalf("routing or evaluation mutated a cached Result: %v", err)
	}
	// Prove the check has teeth: a write through a shared Result — exactly
	// what the sadplint immutable rule forbids — must be detected.
	layers[0].SideOverlayNM++ //lint:allow immutable deliberate forbidden write: proves DecompCacheCheck detects mutation
	if err := res.DecompCacheCheck(); err == nil {
		t.Fatal("mutating a cached Result went undetected")
	}
	layers[0].SideOverlayNM-- //lint:allow immutable restores the deliberate write above
	if err := res.DecompCacheCheck(); err != nil {
		t.Fatalf("restored cache still flagged: %v", err)
	}
}
